// Tracing-overhead smoke bench (DESIGN.md §12): the same distributed
// join with the full observability hot path mounted (causal tracer +
// flight recorder + health engine) and with all of it off. The
// instrumented run must stay
// within a 2% budget of the bare run — the "cheap enough to leave
// always on" claim, checked rather than asserted.
//
// Methodology, learned the hard way. The budget is enforced on *CPU
// time* (runtime/metrics user + GC seconds), not wall clock: on a
// small shared CI host the whole simulated rack timeshares a core or
// two, so wall clock jitters ±5% with scheduling noise while the work
// the instrumentation actually adds — stamping plus the GC cost of its
// allocations — lands directly in CPU seconds. The run is CPU-bound
// (unthrottled fabric — a throttled run would hide stamping cost inside
// wire waits), the variants alternate round-robin in one process (block
// ordering bills the later variant for the earlier one's heap growth:
// measured as a spurious 2× before interleaving), each measured run is
// bracketed by forced GCs so its garbage is collected — and billed —
// within its own interval, and the verdict is the median of the
// per-round paired differences (back-to-back bare/instrumented pairs
// cancel slow drift, the median discards rounds a host-load spike
// polluted). Gated behind RACKJOIN_TRACE_OVERHEAD so `go test ./...`
// stays deterministic; `make trace-overhead` runs it, `make check` runs
// it advisory (noise on shared machines is not a build failure).
package rackjoin_test

import (
	"os"
	"runtime"
	"runtime/metrics"
	"sort"
	"testing"
	"time"

	"rackjoin"
)

// cpuSeconds returns the process's cumulative non-idle Go CPU time
// (user + total GC). The forced GC both refreshes the runtime's CPU
// stats (they update on GC boundaries) and sweeps the caller's garbage
// into the interval that produced it.
func cpuSeconds() float64 {
	runtime.GC()
	samples := []metrics.Sample{
		{Name: "/cpu/classes/user:cpu-seconds"},
		{Name: "/cpu/classes/gc/total:cpu-seconds"},
	}
	metrics.Read(samples)
	var total float64
	for _, s := range samples {
		if s.Value.Kind() == metrics.KindFloat64 {
			total += s.Value.Float64()
		}
	}
	return total
}

func TestTraceOverheadBudget(t *testing.T) {
	if os.Getenv("RACKJOIN_TRACE_OVERHEAD") == "" {
		t.Skip("set RACKJOIN_TRACE_OVERHEAD=1 (or run `make trace-overhead`) to measure tracing overhead")
	}
	const (
		machines = 4
		cores    = 4
		rounds   = 9
		budget   = 0.02
	)
	c, err := rackjoin.NewCluster(machines, cores)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	inner, outer := rackjoin.GenerateWorkload(rackjoin.WorkloadConfig{
		InnerTuples: 1 << 18, OuterTuples: 1 << 20, Seed: 2015,
	}, machines)
	want := rackjoin.ExpectedJoin(outer)

	run := func(instrumented bool) (cpu float64, wall time.Duration) {
		cfg := rackjoin.DefaultJoinConfig()
		// The paper's evaluation buffer size (§6.2 settles on 64 KB), not
		// the laptop default 16 KB: per-message stamping cost is fixed,
		// so the overhead ratio is a property of the bytes-per-message
		// amortization and the claim is made at the paper's operating
		// point.
		cfg.BufferSize = 64 << 10
		var eng *rackjoin.HealthEngine
		if instrumented {
			// Fresh recorders per run: a run-long tracer is the real
			// deployment shape, and a shared one would grow its event
			// slab across rounds and bill later rounds for appends into
			// ever-larger copies. The health engine runs during the join at
			// its deployment cadence — its steady-state ticks land in the
			// window. Start (the baseline snapshot) happens outside it,
			// like recorder construction; the final diagnostic Step at
			// Stop is post-run reporting, like critical-path extraction,
			// and is budgeted separately below against the engine cadence.
			cfg.Trace = rackjoin.NewTracer()
			cfg.Flight = rackjoin.NewFlightRecorder(machines, rackjoin.DefaultFlightEvents)
			eng = rackjoin.NewHealthEngine(rackjoin.HealthOptions{
				Machines: machines, Registry: c.Metrics(), Flight: cfg.Flight,
			})
			eng.Start()
		}
		c0 := cpuSeconds()
		start := time.Now()
		res, err := rackjoin.Join(c, inner, outer, cfg)
		wall = time.Since(start)
		cpu = cpuSeconds() - c0
		eng.Stop()
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches != want.Matches {
			t.Fatalf("matches %d, want %d", res.Matches, want.Matches)
		}
		return cpu, wall
	}

	// Warm both paths (region allocation, page faults) outside the
	// measured rounds.
	run(true)
	run(false)

	diffs := make([]float64, 0, rounds)
	var offs []float64
	var wallOff, wallOn time.Duration
	for i := 0; i < rounds; i++ {
		off, wo := run(false)
		on, wn := run(true)
		diffs = append(diffs, on-off)
		offs = append(offs, off)
		wallOff += wo
		wallOn += wn
	}
	sort.Float64s(diffs)
	sort.Float64s(offs)
	overhead := diffs[len(diffs)/2] / offs[len(offs)/2]
	t.Logf("bare median %.1f ms cpu, median paired delta %+.1f ms cpu: overhead %+.2f%% (budget %.0f%%; mean wall %v bare, %v instrumented)",
		offs[len(offs)/2]*1e3, diffs[len(diffs)/2]*1e3, overhead*100, budget*100,
		(wallOff / rounds).Round(10*time.Microsecond), (wallOn / rounds).Round(10*time.Microsecond))
	if overhead > budget {
		t.Errorf("tracing overhead %.2f%% exceeds the %.0f%% budget", overhead*100, budget*100)
	}

	// Detector evaluation, budgeted at its own cadence: one engine Step
	// (snapshot → delta → detectors) recurs every HealthDefaultInterval,
	// so its steady-state cost is stepCPU/interval of one core — the
	// fraction a deployment pays regardless of run length. The registry
	// here carries a full run's series for all machines, which overstates
	// a per-host deployment by the rack size.
	eng := rackjoin.NewHealthEngine(rackjoin.HealthOptions{
		Machines: machines, Registry: c.Metrics(),
	})
	eng.Start()
	const steps = 50
	e0 := cpuSeconds()
	for i := 0; i < steps; i++ {
		eng.Step()
	}
	stepCPU := (cpuSeconds() - e0) / steps
	eng.Stop()
	evalFrac := stepCPU / rackjoin.HealthDefaultInterval.Seconds()
	t.Logf("health engine step %.2f ms cpu every %v: steady-state %.2f%% of one core (budget %.0f%%)",
		stepCPU*1e3, rackjoin.HealthDefaultInterval, evalFrac*100, budget*100)
	if evalFrac > budget {
		t.Errorf("health evaluation %.2f%% of one core exceeds the %.0f%% budget", evalFrac*100, budget*100)
	}
}
