// Package rackjoin is a faithful, fully-functional reproduction of
// "Rack-Scale In-Memory Join Processing using RDMA" (Barthels, Loesing,
// Alonso, Kossmann — SIGMOD 2015) as a Go library.
//
// It provides:
//
//   - a distributed radix hash join (the paper's contribution) running on
//     an in-process rack of simulated machines connected by a functional
//     RDMA verbs layer (one-sided and two-sided semantics, registered
//     memory regions, completion queues, buffer pools);
//   - the single-machine multi-core baselines the paper compares against
//     (parallel radix join with NUMA-aware task queues, no-partitioning
//     join);
//   - the paper's analytical model (Section 5, Eq. 1–14) with the
//     calibration constants of Eq. 15;
//   - a calibrated discrete-event simulator that reproduces the paper's
//     measured figures at full scale (billions of tuples) in seconds of
//     host time;
//   - workload generators for the paper's uniform, skewed (Zipf 1.05 /
//     1.20) and wide-tuple workloads.
//
// # Quick start
//
//	c, _ := rackjoin.NewCluster(4, 8)
//	defer c.Close()
//	inner, outer := rackjoin.GenerateWorkload(rackjoin.WorkloadConfig{
//		InnerTuples: 1 << 20, OuterTuples: 1 << 22, Seed: 1,
//	}, 4)
//	res, _ := rackjoin.Join(c, inner, outer, rackjoin.DefaultJoinConfig())
//	fmt.Println(res.Matches, res.Phases)
//
// See the examples/ directory for complete programs and cmd/experiments
// for regenerating every table and figure of the paper.
package rackjoin

import (
	"io"
	"time"

	"rackjoin/internal/agg"
	"rackjoin/internal/cluster"
	"rackjoin/internal/core"
	"rackjoin/internal/datagen"
	"rackjoin/internal/fabric"
	"rackjoin/internal/health"
	"rackjoin/internal/mcjoin"
	"rackjoin/internal/metrics"
	"rackjoin/internal/model"
	"rackjoin/internal/netsched"
	"rackjoin/internal/obsv"
	"rackjoin/internal/phase"
	"rackjoin/internal/radix"
	"rackjoin/internal/relation"
	"rackjoin/internal/sim"
	"rackjoin/internal/trace"
)

// Core distributed-join API (see internal/core for full documentation).
type (
	// Cluster is a simulated rack: machines with private memory connected
	// by an in-process RDMA fabric.
	Cluster = cluster.Cluster
	// ClusterConfig configures rack construction.
	ClusterConfig = cluster.Config
	// FabricConfig optionally throttles the interconnect so network-bound
	// behaviour is observable in wall-clock time.
	FabricConfig = fabric.Config
	// JoinConfig parameterises the distributed radix hash join.
	JoinConfig = core.Config
	// JoinResult reports matches, verification checksum, per-phase times
	// and network statistics.
	JoinResult = core.Result
	// Transport selects one-sided/two-sided RDMA or the TCP-like stream.
	Transport = core.Transport
	// Assignment selects the partition→machine assignment strategy.
	Assignment = core.Assignment
	// NetSchedPolicy selects the application-level communication schedule
	// of the all-to-all network pass (JoinConfig.NetSched, SimConfig.NetSched).
	NetSchedPolicy = netsched.Policy
	// PhaseTimes is the per-phase breakdown used across all engines.
	PhaseTimes = phase.Times
)

// KernelMode selects the exec-engine hot-loop implementations (partition
// scatter and probe kernels); set JoinConfig.Kernels, MCJoinConfig.Kernels
// or AggConfig.Kernels. KernelAuto (the zero value) picks per platform and
// pass shape; KernelScalar/KernelWC force one flavour for ablations.
type KernelMode = radix.Kernel

// Kernel modes.
const (
	KernelAuto   = radix.KernelAuto
	KernelScalar = radix.KernelScalar
	KernelWC     = radix.KernelWC
)

// Transports and assignment strategies.
const (
	TwoSided = core.TransportTwoSided
	OneSided = core.TransportOneSided
	Stream   = core.TransportStream
	TCP      = core.TransportTCP
	// OneSidedAtomic reserves remote write offsets with RDMA fetch-and-add
	// instead of histogram-derived placement.
	OneSidedAtomic = core.TransportOneSidedAtomic
	// OneSidedRead pulls staged partitions with one-sided READs.
	OneSidedRead = core.TransportOneSidedRead
	RoundRobin   = core.AssignRoundRobin
	SizeSorted   = core.AssignSizeSorted
)

// Communication-schedule policies for the network pass.
const (
	// NetSchedOff posts buffers as they fill (no schedule).
	NetSchedOff = netsched.Off
	// NetSchedRotate pairs senders and receivers round-robin.
	NetSchedRotate = netsched.Rotate
	// NetSchedWeighted sizes pairing rounds from the histogram demand.
	NetSchedWeighted = netsched.Weighted
)

// ParseNetSchedPolicy parses a communication-schedule policy name:
// "off", "rotate" or "weighted".
func ParseNetSchedPolicy(s string) (NetSchedPolicy, error) { return netsched.ParsePolicy(s) }

// Relation storage and workloads.
type (
	// Relation is a fixed-width tuple slab (8-byte key, 8-byte rid,
	// optional payload).
	Relation = relation.Relation
	// DistributedRelation is a relation fragmented across machines.
	DistributedRelation = relation.Distributed
	// WorkloadConfig describes one of the paper's workloads.
	WorkloadConfig = datagen.Config
	// Expected is the analytically known join outcome of a generated
	// workload, for verification.
	Expected = datagen.Expected
)

// Zipf skew factors of Section 6.5.
const (
	SkewLow  = datagen.SkewLow
	SkewHigh = datagen.SkewHigh
)

// SkewMode selects the heavy-hitter skew engine's behaviour
// (JoinConfig.Skew): off, detection only, or detection plus
// split-and-replicate repartitioning with mid-run splittable probe tasks.
type SkewMode = core.SkewMode

// Skew-engine modes.
const (
	SkewModeOff    = core.SkewOff
	SkewModeDetect = core.SkewDetect
	SkewModeSplit  = core.SkewSplit
)

// SkewStats reports the skew engine's decisions in a JoinResult.
type SkewStats = core.SkewStats

// ParseSkewMode parses a skew-engine mode name: "off", "detect" or
// "split".
func ParseSkewMode(s string) (SkewMode, error) { return core.ParseSkewMode(s) }

// Single-machine baselines.
type (
	// MCJoinConfig configures the multi-core baselines.
	MCJoinConfig = mcjoin.Config
	// MCJoinResult is their result type.
	MCJoinResult = mcjoin.Result
)

// Distributed aggregation (the Section 7 generalisation of the paper's
// techniques to other operators).
type (
	// AggConfig configures the distributed GROUP BY aggregation.
	AggConfig = agg.Config
	// AggResult is its result type.
	AggResult = agg.Result
)

// Analytical model and simulator.
type (
	// Model is the paper's analytical model for one deployment.
	Model = model.System
	// Network describes an interconnect (QDR, FDR, IPoIB).
	Network = model.Network
	// Workload holds input sizes in MB for the model.
	ModelWorkload = model.Workload
	// SimConfig describes one paper-scale simulated execution.
	SimConfig = sim.Config
	// SimResult is the simulated outcome.
	SimResult = sim.Result
	// SimMode selects interleaved/non-interleaved/stream communication.
	SimMode = sim.Mode
)

// Simulation modes.
const (
	Interleaved    = sim.ModeInterleaved
	NonInterleaved = sim.ModeNonInterleaved
	StreamMode     = sim.ModeStream
)

// Tracer records per-machine execution spans (set JoinConfig.Trace).
type Tracer = trace.Recorder

// NewTracer creates an execution tracer whose epoch is now.
func NewTracer() *Tracer { return trace.New() }

// CriticalPath is the result of walking a causal trace backward from join
// completion: the chain of spans and message edges that bounded the run,
// with the wall time attributed by phase, machine and link
// (Tracer.CriticalPath computes it).
type CriticalPath = trace.CriticalPath

// FlightRecorder keeps fixed-size per-machine rings of recent low-level
// events (verb postings, pool stalls, steals, readiness outcomes); set
// JoinConfig.Flight. Cheap enough to leave always on; dump it after a
// failure to see what led up to the abort.
type FlightRecorder = obsv.FlightRecorder

// NewFlightRecorder creates a flight recorder for a rack of machines
// retaining perMachine events each (≤ 0 selects the default size).
func NewFlightRecorder(machines, perMachine int) *FlightRecorder {
	return obsv.NewFlightRecorder(machines, perMachine)
}

// DefaultFlightEvents is the per-machine flight-recorder ring capacity
// used when callers do not size it explicitly.
const DefaultFlightEvents = obsv.DefaultFlightEvents

// Metrics registry (see internal/metrics). Every cluster owns a registry
// that collects device, fabric and join telemetry; Cluster.Metrics
// returns it, and JoinConfig.Metrics redirects the join-level series.
type (
	// MetricsRegistry is a concurrency-safe collection of named counters,
	// gauges and log-scale histograms.
	MetricsRegistry = metrics.Registry
	// MetricsScope is a registry view with pre-applied labels.
	MetricsScope = metrics.Scope
	// MetricSample is one series in a registry snapshot.
	MetricSample = metrics.Sample
	// MetricLabel is one key=value dimension of a metric series.
	MetricLabel = metrics.Label
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// L constructs a metric label.
func L(key, value string) MetricLabel { return metrics.L(key, value) }

// Observability plane (see internal/obsv): an HTTP exposition server
// (/metrics, /trace, /samples, /residual, /debug/pprof), a background
// sampler turning registry totals into run-long time series, and a
// model-residual profiler scoring measured phases against the §5 model.
type (
	// ObsvServer serves metrics, traces, samples and profiles over HTTP.
	ObsvServer = obsv.Server
	// ObsvOptions selects the backends an ObsvServer exposes.
	ObsvOptions = obsv.Options
	// Sampler snapshots registry deltas on an interval into a time series.
	Sampler = obsv.Sampler
	// Residual is a model-residual verdict: per-phase measured/predicted
	// ratios, the regime comparison and skew/straggler profile.
	Residual = obsv.Residual
	// ResidualConfig describes a finished run to the residual profiler.
	ResidualConfig = obsv.RunConfig
)

// NewObsvServer builds the observability HTTP server; Start binds it.
func NewObsvServer(o ObsvOptions) *ObsvServer { return obsv.NewServer(o) }

// Health plane (see internal/health): five online detectors — slow_link,
// straggler_machine, hot_partition, buffer_starvation, scheduler_stall —
// over the derived indicators of a running (or simulated) join, emitting
// structured diagnoses that name a culprit with evidence and confidence.
type (
	// HealthEngine evaluates a live registry on an interval and serves
	// /health on the obsv server (set ObsvOptions.Health).
	HealthEngine = health.Engine
	// HealthOptions configures a HealthEngine.
	HealthOptions = health.Options
	// Diagnosis is one detector verdict: culprit, evidence, confidence.
	Diagnosis = health.Diagnosis
	// HealthReport cross-checks diagnoses against the critical path and
	// the residual verdict.
	HealthReport = health.Report
)

// HealthDefaultInterval is the engine's default evaluation period.
const HealthDefaultInterval = health.DefaultInterval

// NewHealthEngine builds the online diagnosis engine; Start begins
// evaluation, Stop runs a final pass over the end-of-run state.
func NewHealthEngine(o HealthOptions) *HealthEngine { return health.NewEngine(o) }

// DiagnoseSim evaluates the health detectors over a finished simulated
// execution (post-run, using the simulator's exact link/stall ledgers).
func DiagnoseSim(cfg SimConfig, res *SimResult) []Diagnosis { return health.DiagnoseSim(cfg, res) }

// BuildHealthReport cross-checks diagnoses against the run's critical
// path and residual verdict; either cross-reference may be nil.
func BuildHealthReport(ds []Diagnosis, cp *CriticalPath, res *Residual) *HealthReport {
	return health.BuildReport(ds, cp, res)
}

// NewSampler creates a background sampler over reg. A nil out keeps the
// series only in memory (served via ObsvServer's /samples).
func NewSampler(reg *MetricsRegistry, interval time.Duration, out io.Writer) *Sampler {
	return obsv.NewSampler(reg, interval, out)
}

// ProfileResidual scores a finished run against the §5 analytical model
// and exports the verdict into reg (model_residual_ratio{phase} et al.).
func ProfileResidual(reg *MetricsRegistry, cfg ResidualConfig) *Residual {
	return obsv.ProfileResidual(reg, cfg)
}

// NewCluster builds a rack of machines×cores with an unthrottled fabric.
func NewCluster(machines, cores int) (*Cluster, error) {
	return cluster.New(cluster.Config{Machines: machines, CoresPerMachine: cores})
}

// NewThrottledCluster builds a rack whose per-host bandwidth is capped (in
// bytes/second), making network-bound effects visible in real time.
func NewThrottledCluster(machines, cores int, bytesPerSecond float64) (*Cluster, error) {
	return cluster.New(cluster.Config{
		Machines: machines, CoresPerMachine: cores,
		Fabric: fabric.Config{EgressBandwidth: bytesPerSecond, IngressBandwidth: bytesPerSecond},
	})
}

// DefaultJoinConfig returns laptop-scale defaults for the distributed
// join; PaperJoinConfig returns the paper's evaluation parameters (2×10
// radix bits, 64 KB buffers).
func DefaultJoinConfig() JoinConfig { return core.DefaultConfig() }

// PaperJoinConfig returns the paper's evaluation parameters.
func PaperJoinConfig() JoinConfig { return core.PaperConfig() }

// NewRelation allocates a relation of n tuples of the given width (16,
// 32 or 64 bytes: 8-byte key, 8-byte rid, optional payload).
func NewRelation(width, n int) *Relation { return relation.New(width, n) }

// ViewRelation wraps an existing byte slab as a relation without copying.
func ViewRelation(width int, data []byte) (*Relation, error) {
	return relation.View(width, data)
}

// GenerateWorkload materialises a workload fragmented over machines, with
// the even loading and range-partitioned record ids of Section 6.1.1.
func GenerateWorkload(cfg WorkloadConfig, machines int) (inner, outer *DistributedRelation) {
	return datagen.GenerateDistributed(cfg, machines)
}

// ExpectedJoin returns the analytically known outcome for a generated
// workload's outer relation (for result verification).
func ExpectedJoin(outer *DistributedRelation) Expected {
	return datagen.ExpectedJoin(outer.Gather())
}

// Join executes the distributed radix hash join on the cluster.
func Join(c *Cluster, inner, outer *DistributedRelation, cfg JoinConfig) (*JoinResult, error) {
	return core.Run(c, inner, outer, cfg)
}

// RadixJoin runs the single-machine parallel radix hash join baseline.
func RadixJoin(inner, outer *Relation, cfg MCJoinConfig) (*MCJoinResult, error) {
	return mcjoin.RadixJoin(inner, outer, cfg)
}

// NoPartitionJoin runs the no-partitioning hash join baseline.
func NoPartitionJoin(inner, outer *Relation, cfg MCJoinConfig) (*MCJoinResult, error) {
	return mcjoin.NoPartitionJoin(inner, outer, cfg)
}

// SortMergeJoin runs the massively parallel sort-merge (MPSM) join
// baseline of Albutiu et al. [2].
func SortMergeJoin(inner, outer *Relation, cfg MCJoinConfig) (*MCJoinResult, error) {
	return mcjoin.SortMergeJoin(inner, outer, cfg)
}

// DefaultAggConfig returns the distributed aggregation defaults.
func DefaultAggConfig() AggConfig { return agg.DefaultConfig() }

// Aggregate runs the distributed GROUP BY key → COUNT(*), SUM(rid)
// aggregation over the cluster using the paper's RDMA buffer techniques.
func Aggregate(c *Cluster, rel *DistributedRelation, cfg AggConfig) (*AggResult, error) {
	return agg.Run(c, rel, cfg)
}

// Simulate runs the calibrated paper-scale discrete-event simulation.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// BuildSimTrace converts a simulated execution into a causal trace with
// the span vocabulary of a real run, so the Chrome export and the
// critical-path analyzer work identically on simulated and measured
// executions. skews gives each simulated machine a skewed local clock;
// the recorder normalizes them back out (see Tracer.SetClockOffset).
func BuildSimTrace(cfg SimConfig, res *SimResult, skews []time.Duration) *Tracer {
	return sim.BuildTrace(cfg, res, skews)
}

// SimTraceSkews returns a deterministic alternating per-machine
// clock-skew vector for demonstrating trace clock normalization.
func SimTraceSkews(machines int, spread time.Duration) []time.Duration {
	return sim.TraceSkews(machines, spread)
}

// NewModel builds the analytical model for a rack on a network.
func NewModel(machines, cores int, net Network) Model {
	return model.NewSystem(machines, cores, net)
}

// The paper's two clusters and the IPoIB comparison network.
func QDR() Network   { return model.QDR() }
func FDR() Network   { return model.FDR() }
func IPoIB() Network { return model.IPoIB() }

// ModelWorkloadTuples converts tuple counts to model input sizes.
func ModelWorkloadTuples(rTuples, sTuples int64, width int) ModelWorkload {
	return model.WorkloadTuples(rTuples, sTuples, width)
}
