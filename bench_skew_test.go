// Benchmark of the skew engine (DESIGN.md §15): the paper-scale
// 128M ⋈ 2048M join simulated at 16 machines on QDR across a Zipf sweep
// θ ∈ {0, 0.5, 0.75, 1.0, 1.25, 1.5}, once with the engine off and once
// with heavy-hitter split-and-replicate on. The off→engine variant pairs
// yield the speedups; lag-s records the straggler gauge (slowest minus
// fastest machine), the number the engine exists to crush.
//
// `make bench-skew` formats the sweep into BENCH_skew.json via
// cmd/benchfmt, and TestSkewBaselineJSON enforces the acceptance
// criteria against that checked-in report: ≥ 1.5× speedup and ≥ 3× lag
// reduction at θ=1.25, within 3% of baseline at θ=0.
package rackjoin_test

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"

	"rackjoin"
)

func skewSweepConfig(theta float64, engine bool) rackjoin.SimConfig {
	return rackjoin.SimConfig{
		Machines: 16, Cores: 8, Net: rackjoin.QDR(),
		RTuples: 128 << 20, STuples: 2048 << 20,
		Skew: theta, SkewEngine: engine,
	}
}

func benchSkewSim(b *testing.B, theta float64, engine bool) {
	b.Helper()
	cfg := skewSweepConfig(theta, engine)
	var totalSec, lagSec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rackjoin.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		totalSec = res.Phases.Total().Seconds()
		max, min := math.Inf(-1), math.Inf(1)
		for _, pm := range res.PerMachine {
			t := pm.Total().Seconds()
			max, min = math.Max(max, t), math.Min(min, t)
		}
		lagSec = max - min
	}
	// The deterministic simulated join time is the figure of merit, so it
	// overrides the (noisy, host-side) ns/op column: the benchfmt
	// off→engine speedups and the TestSkewBaselineJSON regression gate
	// then compare modeled performance, not simulator speed on this host.
	b.ReportMetric(totalSec*1e9, "ns/op")
	b.ReportMetric(totalSec, "sim-total-s")
	b.ReportMetric(lagSec, "lag-s")
}

func BenchmarkSkewSweep(b *testing.B) {
	for _, theta := range []float64{0, 0.5, 0.75, 1.0, 1.25, 1.5} {
		for _, variant := range []struct {
			name   string
			engine bool
		}{{"off", false}, {"engine", true}} {
			theta, variant := theta, variant
			b.Run(fmt.Sprintf("z%.2f/%s", theta, variant.name), func(b *testing.B) {
				benchSkewSim(b, theta, variant.engine)
			})
		}
	}
}

// skewReport mirrors the cmd/benchfmt document shape, just enough to
// read the checked-in BENCH_skew.json back.
type skewReport struct {
	Benchmarks []struct {
		Name    string             `json:"name"`
		NsPerOp float64            `json:"ns_per_op"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

// TestSkewBaselineJSON enforces the skew-engine acceptance criteria
// against the checked-in BENCH_skew.json (regenerate with
// `make bench-skew`): at θ=1.25 the engine must be ≥ 1.5× faster with
// the straggler lag cut ≥ 3×, and at θ=0 it must stay within 3% of the
// baseline. The underlying simulation is deterministic, so the
// checked-in numbers are reproducible bit-for-bit, not host timings.
func TestSkewBaselineJSON(t *testing.T) {
	f, err := os.Open("BENCH_skew.json")
	if err != nil {
		t.Fatalf("missing checked-in skew baseline (run `make bench-skew`): %v", err)
	}
	defer f.Close()
	var rep skewReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	bench := func(name string) (ns, lag float64) {
		for _, b := range rep.Benchmarks {
			if b.Name == name {
				return b.NsPerOp, b.Metrics["lag-s"]
			}
		}
		t.Fatalf("BENCH_skew.json missing %q (run `make bench-skew`)", name)
		return 0, 0
	}

	offNs, offLag := bench("SkewSweep/z1.25/off")
	onNs, onLag := bench("SkewSweep/z1.25/engine")
	if speedup := offNs / onNs; speedup < 1.5 {
		t.Errorf("θ=1.25 speedup %.2f×, acceptance requires ≥ 1.5×", speedup)
	}
	if onLag*3 > offLag {
		t.Errorf("θ=1.25 straggler lag %.3fs → %.3fs, acceptance requires ≥ 3× reduction", offLag, onLag)
	}

	uOffNs, _ := bench("SkewSweep/z0.00/off")
	uOnNs, _ := bench("SkewSweep/z0.00/engine")
	if diff := math.Abs(uOnNs-uOffNs) / uOffNs; diff > 0.03 {
		t.Errorf("θ=0 engine overhead %.1f%%, acceptance requires ≤ 3%%", 100*diff)
	}
}
