module rackjoin

go 1.22
