package hashtable

import (
	"fmt"
	"math/rand"
	"testing"

	"rackjoin/internal/relation"
)

// Probe kernel benchmarks, scalar vs batched, at table sizes spanning
// L1-resident partitions up to directory-miss-dominated tables where the
// batched kernel's overlapped loads pay. Part of `make bench-kernels`.

func benchTable(n int) (*Table, *relation.Relation) {
	rng := rand.New(rand.NewSource(2015))
	build := relation.New(relation.Width16, n)
	for i := 0; i < n; i++ {
		build.SetKey(i, rng.Uint64())
	}
	outer := relation.New(relation.Width16, n)
	for i := 0; i < n; i++ {
		// Half hits, half misses: every probe walks a realistic chain mix.
		if i%2 == 0 {
			outer.SetKey(i, build.Key(rng.Intn(n)))
		} else {
			outer.SetKey(i, rng.Uint64())
		}
		outer.SetRID(i, uint64(i))
	}
	return Build(build), outer
}

func BenchmarkKernelProbeScalar(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 16, 1 << 20} {
		tbl, outer := benchTable(n)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.SetBytes(int64(outer.Size()))
			for i := 0; i < b.N; i++ {
				tbl.ProbeRelation(outer)
			}
		})
	}
}

func BenchmarkKernelProbeBatch(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 16, 1 << 20} {
		tbl, outer := benchTable(n)
		var scratch Batch
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.SetBytes(int64(outer.Size()))
			for i := 0; i < b.N; i++ {
				tbl.ProbeRelationBatch(outer, &scratch)
			}
		})
	}
}
