// Package hashtable implements the cache-conscious bucket-chained hash
// table used in the build-probe phase of the radix hash join, following
// the array-based layout of Balkesen et al. (reference [4] of the paper):
// a power-of-two bucket directory of int32 heads and a parallel next[]
// chain over the build-side tuple indexes. For cache-sized partitions the
// whole structure stays resident in the private CPU cache.
package hashtable

import (
	"encoding/binary"

	"rackjoin/internal/relation"
)

// fibMix is the 64-bit Fibonacci hashing multiplier. Tuples inside a radix
// partition share their low key bits, so the directory index must come
// from mixed high bits.
const fibMix = 0x9E3779B97F4A7C15

// Table is a read-only hash table over the tuples of one build-side
// partition.
type Table struct {
	rel    *relation.Relation
	bucket []int32 // 1-based tuple index of chain head; 0 = empty
	next   []int32 // 1-based successor
	shift  uint
}

// Build constructs a table over all tuples of rel. The directory is sized
// to the next power of two ≥ len(rel), giving a load factor ≤ 1.
func Build(rel *relation.Relation) *Table {
	n := rel.Len()
	size := 1
	for size < n {
		size <<= 1
	}
	if size < 2 {
		size = 2
	}
	t := &Table{
		rel:    rel,
		bucket: make([]int32, size),
		next:   make([]int32, n+1),
		shift:  64 - log2(uint64(size)),
	}
	for i := 0; i < n; i++ {
		b := t.slot(rel.Key(i))
		t.next[i+1] = t.bucket[b]
		t.bucket[b] = int32(i + 1)
	}
	return t
}

func (t *Table) slot(key uint64) uint64 {
	return (key * fibMix) >> t.shift
}

// Len returns the number of build-side tuples.
func (t *Table) Len() int { return t.rel.Len() }

// ProbeEach invokes fn with the build-side tuple index of every tuple
// whose key equals key.
func (t *Table) ProbeEach(key uint64, fn func(buildIdx int)) {
	for i := t.bucket[t.slot(key)]; i != 0; i = t.next[i] {
		if t.rel.Key(int(i-1)) == key {
			fn(int(i - 1))
		}
	}
}

// ProbeRelation probes the table with every tuple of outer and returns the
// number of matches and the verification checksum
// Σ (key + buildRID + probeRID) over all matches.
//
// This is the hot join kernel: it avoids closures and re-reads.
//
//rack:hotpath
func (t *Table) ProbeRelation(outer *relation.Relation) (matches, checksum uint64) {
	n := outer.Len()
	for i := 0; i < n; i++ {
		key := outer.Key(i)
		for j := t.bucket[t.slot(key)]; j != 0; j = t.next[j] {
			bi := int(j - 1)
			if t.rel.Key(bi) == key {
				matches++
				checksum += key + t.rel.RID(bi) + outer.RID(i)
			}
		}
	}
	return matches, checksum
}

// ProbeRange probes with outer tuples [lo, hi), the kernel behind the
// paper's skew handling (Section 4.3): a large outer partition is split
// into disjoint ranges probed by multiple threads against the same table,
// without synchronisation since accesses are read-only.
func (t *Table) ProbeRange(outer *relation.Relation, lo, hi int) (matches, checksum uint64) {
	return t.ProbeRelation(outer.Slice(lo, hi))
}

// Materialize probes the table with outer and appends one result record
// per match to out: <key, buildRID, probeRID>, 24 bytes little-endian.
// It returns the extended slice and the match count.
func (t *Table) Materialize(outer *relation.Relation, out []byte) ([]byte, uint64) {
	var matches uint64
	n := outer.Len()
	for i := 0; i < n; i++ {
		key := outer.Key(i)
		for j := t.bucket[t.slot(key)]; j != 0; j = t.next[j] {
			bi := int(j - 1)
			if t.rel.Key(bi) == key {
				matches++
				out = appendResult(out, key, t.rel.RID(bi), outer.RID(i))
			}
		}
	}
	return out, matches
}

// ResultWidth is the byte width of a materialised join result record.
const ResultWidth = 24

func appendResult(out []byte, key, buildRID, probeRID uint64) []byte {
	var rec [ResultWidth]byte
	binary.LittleEndian.PutUint64(rec[0:], key)
	binary.LittleEndian.PutUint64(rec[8:], buildRID)
	binary.LittleEndian.PutUint64(rec[16:], probeRID)
	return append(out, rec[:]...)
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
