package hashtable

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"rackjoin/internal/datagen"
	"rackjoin/internal/relation"
)

func buildRel(keys []uint64) *relation.Relation {
	r := relation.New(relation.Width16, len(keys))
	for i, k := range keys {
		r.SetKey(i, k)
		r.SetRID(i, k*10)
	}
	return r
}

func TestBuildAndProbeEach(t *testing.T) {
	tbl := Build(buildRel([]uint64{1, 2, 3, 4, 5}))
	if tbl.Len() != 5 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	var hits []int
	tbl.ProbeEach(3, func(i int) { hits = append(hits, i) })
	if len(hits) != 1 || hits[0] != 2 {
		t.Fatalf("hits = %v", hits)
	}
	tbl.ProbeEach(99, func(i int) { t.Fatal("unexpected match") })
}

func TestProbeDuplicateBuildKeys(t *testing.T) {
	tbl := Build(buildRel([]uint64{7, 7, 7, 2}))
	count := 0
	tbl.ProbeEach(7, func(int) { count++ })
	if count != 3 {
		t.Fatalf("duplicate key matches = %d, want 3", count)
	}
}

func TestProbeRelation(t *testing.T) {
	inner := buildRel([]uint64{1, 2, 3})
	outer := relation.New(relation.Width16, 4)
	keys := []uint64{2, 3, 3, 9}
	for i, k := range keys {
		outer.SetKey(i, k)
		outer.SetRID(i, uint64(i+100))
	}
	tbl := Build(inner)
	matches, checksum := tbl.ProbeRelation(outer)
	if matches != 3 {
		t.Fatalf("matches = %d, want 3", matches)
	}
	// (2,20,100)+(3,30,101)+(3,30,102)
	want := uint64(2+20+100) + uint64(3+30+101) + uint64(3+30+102)
	if checksum != want {
		t.Fatalf("checksum = %d, want %d", checksum, want)
	}
}

func TestProbeRangeSplitsCoverWhole(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 128, OuterTuples: 1000, Skew: datagen.SkewHigh, Seed: 11})
	tbl := Build(w.Inner)
	fullM, fullC := tbl.ProbeRelation(w.Outer)
	// Split the outer probe into 4 disjoint ranges (skew handling).
	var m, c uint64
	n := w.Outer.Len()
	for i := 0; i < 4; i++ {
		pm, pc := tbl.ProbeRange(w.Outer, n*i/4, n*(i+1)/4)
		m += pm
		c += pc
	}
	if m != fullM || c != fullC {
		t.Fatalf("split probe (%d,%d) != full probe (%d,%d)", m, c, fullM, fullC)
	}
}

func TestEmptyBuild(t *testing.T) {
	tbl := Build(relation.New(relation.Width16, 0))
	m, c := tbl.ProbeRelation(buildRel([]uint64{1, 2}))
	if m != 0 || c != 0 {
		t.Fatal("empty table produced matches")
	}
}

func TestMaterialize(t *testing.T) {
	inner := buildRel([]uint64{5})
	outer := relation.New(relation.Width16, 2)
	outer.SetKey(0, 5)
	outer.SetRID(0, 77)
	outer.SetKey(1, 6)
	outer.SetRID(1, 78)
	tbl := Build(inner)
	out, matches := tbl.Materialize(outer, nil)
	if matches != 1 || len(out) != ResultWidth {
		t.Fatalf("matches=%d len=%d", matches, len(out))
	}
	if binary.LittleEndian.Uint64(out[0:]) != 5 ||
		binary.LittleEndian.Uint64(out[8:]) != 50 ||
		binary.LittleEndian.Uint64(out[16:]) != 77 {
		t.Fatalf("bad record: %v", out)
	}
}

func TestLowBitClusteredKeys(t *testing.T) {
	// After radix partitioning all keys in a partition share low bits;
	// the table must still spread them (mixed high bits).
	keys := make([]uint64, 256)
	for i := range keys {
		keys[i] = uint64(i)<<12 | 0x5 // identical low 12 bits
	}
	tbl := Build(buildRel(keys))
	for _, k := range keys {
		n := 0
		tbl.ProbeEach(k, func(int) { n++ })
		if n != 1 {
			t.Fatalf("key %d matched %d times", k, n)
		}
	}
}

func TestWideTupleBuild(t *testing.T) {
	inner := relation.New(relation.Width64, 8)
	for i := 0; i < 8; i++ {
		inner.SetKey(i, uint64(i+1))
		inner.SetRID(i, uint64(i))
	}
	tbl := Build(inner)
	outer := relation.New(relation.Width64, 1)
	outer.SetKey(0, 3)
	outer.SetRID(0, 9)
	m, c := tbl.ProbeRelation(outer)
	if m != 1 || c != 3+2+9 {
		t.Fatalf("wide probe: m=%d c=%d", m, c)
	}
}

// Property: ProbeRelation agrees with a brute-force nested-loop join on
// arbitrary key multisets.
func TestPropertyProbeMatchesNestedLoop(t *testing.T) {
	f := func(innerKeys, outerKeys []uint8) bool {
		if len(innerKeys) == 0 {
			innerKeys = []uint8{1}
		}
		inner := relation.New(relation.Width16, len(innerKeys))
		for i, k := range innerKeys {
			inner.SetKey(i, uint64(k))
			inner.SetRID(i, uint64(i))
		}
		outer := relation.New(relation.Width16, len(outerKeys))
		for i, k := range outerKeys {
			outer.SetKey(i, uint64(k))
			outer.SetRID(i, uint64(1000+i))
		}
		tbl := Build(inner)
		m, c := tbl.ProbeRelation(outer)
		var bm, bc uint64
		for i := 0; i < outer.Len(); i++ {
			for j := 0; j < inner.Len(); j++ {
				if inner.Key(j) == outer.Key(i) {
					bm++
					bc += outer.Key(i) + inner.RID(j) + outer.RID(i)
				}
			}
		}
		return m == bm && c == bc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Materialize and ProbeRelation agree on match counts, and every
// materialised record joins correctly.
func TestPropertyMaterializeConsistent(t *testing.T) {
	f := func(seed int64) bool {
		w := datagen.Generate(datagen.Config{InnerTuples: 64, OuterTuples: 256, Seed: seed})
		tbl := Build(w.Inner)
		m1, _ := tbl.ProbeRelation(w.Outer)
		out, m2 := tbl.Materialize(w.Outer, nil)
		if m1 != m2 || len(out) != int(m2)*ResultWidth {
			return false
		}
		for off := 0; off < len(out); off += ResultWidth {
			key := binary.LittleEndian.Uint64(out[off:])
			buildRID := binary.LittleEndian.Uint64(out[off+8:])
			if buildRID != key-1 { // datagen invariant
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
