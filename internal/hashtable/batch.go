package hashtable

import (
	"rackjoin/internal/relation"
)

// Batched probe kernels. The scalar ProbeRelation loop serialises on the
// directory load of each probe key: hash, load bucket head (a random,
// usually-missing line for tables past L1), walk, repeat. The batched
// kernels split the loop into two passes over a small vector of keys —
// pass 1 hashes every key and loads its chain head, pass 2 walks the
// chains — so the independent directory loads of a whole batch are in
// flight together and their misses overlap instead of queueing.

// ProbeBatchSize is the number of probe keys processed per batch: large
// enough to saturate the load-miss window, small enough that the batch
// scratch (~5 KB) stays L1-resident.
const ProbeBatchSize = 256

// Batch is the reusable scratch of the batched probe kernels. Allocate
// one per worker and pass it to every call; nil-safe (a fresh scratch is
// allocated per call).
type Batch struct {
	keys  [ProbeBatchSize]uint64
	heads [ProbeBatchSize]int32
}

// Pair is one join match as build/probe tuple indexes, the closure-free
// alternative to ProbeEach for callers that post-process matches.
type Pair struct {
	Build int32
	Probe int32
}

// ProbeRangeBatch is the batched equivalent of ProbeRange: probes the
// table with outer tuples [lo, hi) and returns the match count and the
// Σ(key + buildRID + probeRID) checksum.
//
//rack:hotpath
func (t *Table) ProbeRangeBatch(outer *relation.Relation, lo, hi int, b *Batch) (matches, checksum uint64) {
	if b == nil {
		b = new(Batch)
	}
	for base := lo; base < hi; base += ProbeBatchSize {
		n := min(ProbeBatchSize, hi-base)
		for i := 0; i < n; i++ {
			key := outer.Key(base + i)
			b.keys[i] = key
			b.heads[i] = t.bucket[t.slot(key)]
		}
		for i := 0; i < n; i++ {
			key := b.keys[i]
			for j := b.heads[i]; j != 0; j = t.next[j] {
				bi := int(j - 1)
				if t.rel.Key(bi) == key {
					matches++
					checksum += key + t.rel.RID(bi) + outer.RID(base+i)
				}
			}
		}
	}
	return matches, checksum
}

// ProbeRelationBatch is the batched equivalent of ProbeRelation.
func (t *Table) ProbeRelationBatch(outer *relation.Relation, b *Batch) (matches, checksum uint64) {
	return t.ProbeRangeBatch(outer, 0, outer.Len(), b)
}

// MaterializeBatch is the batched equivalent of Materialize: appends one
// <key, buildRID, probeRID> record per match of outer tuples [lo, hi) to
// out, in the same order the scalar kernel produces, and returns the
// extended slice and match count.
func (t *Table) MaterializeBatch(outer *relation.Relation, lo, hi int, b *Batch, out []byte) ([]byte, uint64) {
	if b == nil {
		b = new(Batch)
	}
	var matches uint64
	for base := lo; base < hi; base += ProbeBatchSize {
		n := min(ProbeBatchSize, hi-base)
		for i := 0; i < n; i++ {
			key := outer.Key(base + i)
			b.keys[i] = key
			b.heads[i] = t.bucket[t.slot(key)]
		}
		for i := 0; i < n; i++ {
			key := b.keys[i]
			for j := b.heads[i]; j != 0; j = t.next[j] {
				bi := int(j - 1)
				if t.rel.Key(bi) == key {
					matches++
					out = appendResult(out, key, t.rel.RID(bi), outer.RID(base+i))
				}
			}
		}
	}
	return out, matches
}

// ProbePairs appends the (build, probe) index pair of every match of
// outer tuples [lo, hi) to pairs and returns the extended slice. Probe
// indexes are relative to outer.
func (t *Table) ProbePairs(outer *relation.Relation, lo, hi int, b *Batch, pairs []Pair) []Pair {
	if b == nil {
		b = new(Batch)
	}
	for base := lo; base < hi; base += ProbeBatchSize {
		n := min(ProbeBatchSize, hi-base)
		for i := 0; i < n; i++ {
			key := outer.Key(base + i)
			b.keys[i] = key
			b.heads[i] = t.bucket[t.slot(key)]
		}
		for i := 0; i < n; i++ {
			key := b.keys[i]
			for j := b.heads[i]; j != 0; j = t.next[j] {
				bi := j - 1
				if t.rel.Key(int(bi)) == key {
					pairs = append(pairs, Pair{Build: bi, Probe: int32(base + i)})
				}
			}
		}
	}
	return pairs
}
