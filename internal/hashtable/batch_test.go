package hashtable

import (
	"bytes"
	"math/rand"
	"testing"

	"rackjoin/internal/relation"
)

// buildRandom returns a build relation with keys drawn from [0, keySpace)
// so duplicate keys (multi-match chains) occur, plus an outer relation
// over the same space (some keys miss entirely).
func buildRandom(rng *rand.Rand, nBuild, nOuter, keySpace int) (build, outer *relation.Relation) {
	build = relation.New(relation.Width16, nBuild)
	for i := 0; i < nBuild; i++ {
		build.SetKey(i, uint64(rng.Intn(keySpace)))
		build.SetRID(i, uint64(i)|1<<32)
	}
	outer = relation.New(relation.Width16, nOuter)
	for i := 0; i < nOuter; i++ {
		outer.SetKey(i, uint64(rng.Intn(keySpace)))
		outer.SetRID(i, uint64(i)|1<<40)
	}
	return build, outer
}

// TestProbeBatchEquivalence: the batched kernels must produce the same
// match count and checksum as the scalar kernels on every shape,
// including batch-boundary-straddling and empty ranges.
func TestProbeBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var b Batch
	for _, shape := range []struct{ nb, no, space int }{
		{0, 0, 1},
		{1, 1, 1},
		{100, 37, 50},
		{1000, 1000, 100},                        // heavy duplicate chains
		{5000, ProbeBatchSize*3 + 17, 1 << 20},   // mostly misses, partial last batch
		{ProbeBatchSize, ProbeBatchSize, 1 << 8}, // exactly one batch
	} {
		build, outer := buildRandom(rng, shape.nb, shape.no, shape.space)
		tbl := Build(build)

		wantM, wantC := tbl.ProbeRelation(outer)
		gotM, gotC := tbl.ProbeRelationBatch(outer, &b)
		if gotM != wantM || gotC != wantC {
			t.Fatalf("shape %+v: batch = (%d, %#x), scalar = (%d, %#x)", shape, gotM, gotC, wantM, wantC)
		}
		// nil scratch allocates internally.
		gotM, gotC = tbl.ProbeRelationBatch(outer, nil)
		if gotM != wantM || gotC != wantC {
			t.Fatalf("shape %+v: nil-scratch batch diverges", shape)
		}

		// Sub-ranges, including ones that straddle batch boundaries.
		for trial := 0; trial < 8; trial++ {
			lo := rng.Intn(shape.no + 1)
			hi := lo + rng.Intn(shape.no+1-lo)
			wantM, wantC = tbl.ProbeRange(outer, lo, hi)
			gotM, gotC = tbl.ProbeRangeBatch(outer, lo, hi, &b)
			if gotM != wantM || gotC != wantC {
				t.Fatalf("shape %+v range [%d,%d): batch = (%d, %#x), scalar = (%d, %#x)",
					shape, lo, hi, gotM, gotC, wantM, wantC)
			}
		}
	}
}

// TestMaterializeBatchEquivalence: byte-identical result records in the
// same order as the scalar Materialize.
func TestMaterializeBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	build, outer := buildRandom(rng, 2000, ProbeBatchSize*2+13, 300)
	tbl := Build(build)

	want, wantM := tbl.Materialize(outer, nil)
	got, gotM := tbl.MaterializeBatch(outer, 0, outer.Len(), nil, nil)
	if gotM != wantM || !bytes.Equal(got, want) {
		t.Fatalf("MaterializeBatch diverges: %d vs %d matches, bytes equal = %v",
			gotM, wantM, bytes.Equal(got, want))
	}
	// Appending to a pre-filled slice keeps the prefix.
	prefix := []byte("prefix--")
	got, _ = tbl.MaterializeBatch(outer, 0, outer.Len(), nil, append([]byte(nil), prefix...))
	if !bytes.HasPrefix(got, prefix) || !bytes.Equal(got[len(prefix):], want) {
		t.Fatal("MaterializeBatch does not append to the given slice")
	}
}

// TestProbePairs: the pair stream must agree with ProbeEach per tuple.
func TestProbePairs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	build, outer := buildRandom(rng, 500, 700, 80)
	tbl := Build(build)

	var want []Pair
	for i := 0; i < outer.Len(); i++ {
		tbl.ProbeEach(outer.Key(i), func(bi int) {
			want = append(want, Pair{Build: int32(bi), Probe: int32(i)})
		})
	}
	got := tbl.ProbePairs(outer, 0, outer.Len(), nil, nil)
	if len(got) != len(want) {
		t.Fatalf("ProbePairs returned %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
