// Package cluster assembles simulated machines into a rack: each machine
// owns an RDMA device, a protection domain, a set of worker cores and a
// control-plane channel to every peer. Machines may exchange data only
// through the verbs layer — there is no shared memory between them — which
// preserves the machine boundaries the paper's algorithm is designed
// around.
//
// The control plane (small two-sided messages with pre-posted receives)
// provides the collectives the join needs: barriers and the all-gather of
// machine-level histograms (Section 4.1). The data plane is created by the
// join itself via ConnectQPs so that each worker thread can own its
// completion queues.
package cluster

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"sync"

	"rackjoin/internal/fabric"
	"rackjoin/internal/metrics"
	"rackjoin/internal/rdma"
)

// Config describes the simulated rack.
type Config struct {
	// Machines is the number of nodes (paper: 2–10).
	Machines int
	// CoresPerMachine is the number of worker threads per node (paper: 4
	// or 8).
	CoresPerMachine int
	// Fabric configures optional bandwidth throttling of the interconnect.
	Fabric fabric.Config
	// CtlBufSize is the control-plane message size limit. Zero means 64 KB
	// (large enough for machine-level histograms up to 2^12 partitions).
	CtlBufSize int
	// CtlBufCount is the number of pre-posted control receives per peer.
	// Zero means 16.
	CtlBufCount int
}

const (
	defaultCtlBufSize  = 64 << 10
	defaultCtlBufCount = 16
)

// Cluster is the simulated rack.
type Cluster struct {
	cfg      Config
	net      *rdma.Network
	machines []*Machine
}

// New builds the rack: devices, control-plane queue pairs and pre-posted
// receives for every ordered machine pair.
func New(cfg Config) (*Cluster, error) {
	if cfg.Machines < 1 {
		return nil, fmt.Errorf("cluster: need at least one machine, got %d", cfg.Machines)
	}
	if cfg.CoresPerMachine < 1 {
		return nil, fmt.Errorf("cluster: need at least one core per machine, got %d", cfg.CoresPerMachine)
	}
	if cfg.CtlBufSize == 0 {
		cfg.CtlBufSize = defaultCtlBufSize
	}
	if cfg.CtlBufCount == 0 {
		cfg.CtlBufCount = defaultCtlBufCount
	}
	c := &Cluster{cfg: cfg, net: rdma.NewNetwork(cfg.Fabric)}
	for i := 0; i < cfg.Machines; i++ {
		// Stamp the device's metric series with its owning machine so the
		// observability plane can join rdma_* counters against the join's
		// per-machine telemetry.
		dev := c.net.NewDeviceLabeled(metrics.L("machine", strconv.Itoa(i)))
		m := &Machine{
			ID:      i,
			cluster: c,
			Dev:     dev,
			PD:      dev.AllocPD(),
			Cores:   cfg.CoresPerMachine,
			ctl:     make(map[int]*ctlChannel),
		}
		c.machines = append(c.machines, m)
	}
	// Control plane: one QP pair per unordered machine pair.
	for i := 0; i < cfg.Machines; i++ {
		for j := i + 1; j < cfg.Machines; j++ {
			chI, chJ, err := newCtlPair(c.machines[i], c.machines[j], cfg)
			if err != nil {
				c.Close()
				return nil, err
			}
			c.machines[i].ctl[j] = chI
			c.machines[j].ctl[i] = chJ
		}
	}
	return c, nil
}

// Close drains the interconnect.
func (c *Cluster) Close() { c.net.Close() }

// Machines returns the machines of the rack.
func (c *Cluster) Machines() []*Machine { return c.machines }

// Machine returns machine m.
func (c *Cluster) Machine(m int) *Machine { return c.machines[m] }

// NumMachines returns the rack size.
func (c *Cluster) NumMachines() int { return len(c.machines) }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// FabricStats returns interconnect counters.
func (c *Cluster) FabricStats() fabric.Stats { return c.net.FabricStats() }

// Fabric exposes the rack's byte-moving substrate so harnesses can
// inject faults (fabric.DegradeLink, SlowMachine, DropBuffers) into a
// live cluster and validate that the health plane names the culprit.
func (c *Cluster) Fabric() *fabric.Fabric { return c.net.Fabric() }

// Metrics returns the metrics registry shared by the cluster's RDMA
// network and fabric. All device and link telemetry lands here; the join
// layer adds its own series to the same registry.
func (c *Cluster) Metrics() *metrics.Registry { return c.net.Metrics() }

// InstallVerbHook installs fn as the verb observer of every machine's
// device: it fires after each successful send-queue posting with the
// machine id, opcode name and wire size. nil uninstalls. The flight
// recorder uses this to keep a ring of the most recent verb activity.
func (c *Cluster) InstallVerbHook(fn func(machine int, op string, bytes int)) {
	for _, m := range c.machines {
		if fn == nil {
			m.Dev.SetEventHook(nil)
			continue
		}
		id := m.ID
		m.Dev.SetEventHook(func(op rdma.Opcode, bytes int) { fn(id, op.String(), bytes) })
	}
}

// ConnectQPs creates a connected queue-pair pair between machines a and b
// for the data plane. Each side gets the completion queues passed for it.
func (c *Cluster) ConnectQPs(a, b int, cfgA, cfgB rdma.QPConfig) (*rdma.QP, *rdma.QP, error) {
	qpA, err := c.machines[a].PD.CreateQP(cfgA)
	if err != nil {
		return nil, nil, err
	}
	qpB, err := c.machines[b].PD.CreateQP(cfgB)
	if err != nil {
		return nil, nil, err
	}
	if err := rdma.Connect(qpA, qpB); err != nil {
		return nil, nil, err
	}
	return qpA, qpB, nil
}

// RunAll runs fn on every core of every machine and waits for completion.
func (c *Cluster) RunAll(fn func(m *Machine, core int)) {
	var wg sync.WaitGroup
	for _, m := range c.machines {
		for core := 0; core < m.Cores; core++ {
			wg.Add(1)
			go func(m *Machine, core int) {
				defer wg.Done()
				fn(m, core)
			}(m, core)
		}
	}
	wg.Wait()
}

// RunPerMachine runs fn once per machine concurrently and waits.
func (c *Cluster) RunPerMachine(fn func(m *Machine)) {
	var wg sync.WaitGroup
	for _, m := range c.machines {
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			fn(m)
		}(m)
	}
	wg.Wait()
}

// Machine is one node of the rack.
type Machine struct {
	ID      int
	cluster *Cluster
	Dev     *rdma.Device
	PD      *rdma.ProtectionDomain
	Cores   int

	ctl map[int]*ctlChannel
}

// Cluster returns the owning cluster.
func (m *Machine) Cluster() *Cluster { return m.cluster }

// Metrics returns a view of the cluster registry scoped to this machine:
// every series created through it carries machine=<id>.
func (m *Machine) Metrics() *metrics.Scope {
	return m.cluster.Metrics().Scope(metrics.L("machine", strconv.Itoa(m.ID)))
}

// Peers returns the IDs of all other machines.
func (m *Machine) Peers() []int {
	peers := make([]int, 0, len(m.ctl))
	for p := range m.ctl {
		peers = append(peers, p)
	}
	return peers
}

// CtlSend sends a control message to peer and blocks until the send
// completes. Control-plane calls on one machine must come from a single
// goroutine at a time (the join's coordinator worker).
func (m *Machine) CtlSend(peer int, payload []byte) error {
	ch, ok := m.ctl[peer]
	if !ok {
		return fmt.Errorf("cluster: machine %d has no control channel to %d", m.ID, peer)
	}
	return ch.send(payload)
}

// CtlRecv blocks for the next control message from peer and returns its
// payload (copied).
func (m *Machine) CtlRecv(peer int) ([]byte, error) {
	ch, ok := m.ctl[peer]
	if !ok {
		return nil, fmt.Errorf("cluster: machine %d has no control channel to %d", m.ID, peer)
	}
	return ch.recv()
}

// Barrier blocks until every machine in the rack has entered the barrier.
// It is implemented with control messages through machine 0: a classic
// gather-release. All machines must call it, each from one goroutine.
func (m *Machine) Barrier() error {
	nm := m.cluster.NumMachines()
	if nm == 1 {
		return nil
	}
	if m.ID == 0 {
		for p := 1; p < nm; p++ {
			if _, err := m.CtlRecv(p); err != nil {
				return fmt.Errorf("barrier gather from %d: %w", p, err)
			}
		}
		for p := 1; p < nm; p++ {
			if err := m.CtlSend(p, []byte{1}); err != nil {
				return fmt.Errorf("barrier release to %d: %w", p, err)
			}
		}
		return nil
	}
	if err := m.CtlSend(0, []byte{1}); err != nil {
		return fmt.Errorf("barrier enter: %w", err)
	}
	if _, err := m.CtlRecv(0); err != nil {
		return fmt.Errorf("barrier release: %w", err)
	}
	return nil
}

// AllGather distributes data to every machine and returns the slice of all
// machines' contributions indexed by machine ID (the paper's machine-level
// histogram exchange). All machines must call it with their own data.
func (m *Machine) AllGather(data []byte) ([][]byte, error) {
	nm := m.cluster.NumMachines()
	out := make([][]byte, nm)
	own := make([]byte, len(data))
	copy(own, data)
	out[m.ID] = own
	// Send to higher IDs first, then receive from everyone, avoiding
	// send-queue dependence between peers (sends complete asynchronously;
	// the control channel blocks only on per-message completion, and
	// receives are pre-posted, so any order is deadlock-free).
	for p := 0; p < nm; p++ {
		if p == m.ID {
			continue
		}
		if err := m.CtlSend(p, data); err != nil {
			return nil, fmt.Errorf("all-gather send to %d: %w", p, err)
		}
	}
	for p := 0; p < nm; p++ {
		if p == m.ID {
			continue
		}
		buf, err := m.CtlRecv(p)
		if err != nil {
			return nil, fmt.Errorf("all-gather recv from %d: %w", p, err)
		}
		out[p] = buf
	}
	return out, nil
}

// AllGatherUint64 is AllGather for uint64 vectors (histograms).
func (m *Machine) AllGatherUint64(vec []uint64) ([][]uint64, error) {
	buf := make([]byte, 8*len(vec))
	for i, v := range vec {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	raw, err := m.AllGather(buf)
	if err != nil {
		return nil, err
	}
	out := make([][]uint64, len(raw))
	for i, b := range raw {
		if len(b)%8 != 0 {
			return nil, fmt.Errorf("all-gather: misaligned vector from %d", i)
		}
		v := make([]uint64, len(b)/8)
		for j := range v {
			v[j] = binary.LittleEndian.Uint64(b[8*j:])
		}
		out[i] = v
	}
	return out, nil
}

// Gather collects every machine's data at root (the paper's
// "predesignated coordinator" variant of the histogram exchange, Section
// 4.1). Non-root machines send their contribution and receive nothing;
// root receives all contributions indexed by machine ID (its own slot
// holds its own data). All machines must call it.
func (m *Machine) Gather(root int, data []byte) ([][]byte, error) {
	nm := m.cluster.NumMachines()
	if root < 0 || root >= nm {
		return nil, fmt.Errorf("cluster: gather root %d out of range", root)
	}
	if m.ID != root {
		return nil, m.CtlSend(root, data)
	}
	out := make([][]byte, nm)
	own := make([]byte, len(data))
	copy(own, data)
	out[m.ID] = own
	for p := 0; p < nm; p++ {
		if p == m.ID {
			continue
		}
		buf, err := m.CtlRecv(p)
		if err != nil {
			return nil, fmt.Errorf("gather recv from %d: %w", p, err)
		}
		out[p] = buf
	}
	return out, nil
}

// Broadcast distributes root's data to every machine; all machines call
// it and receive the same payload (root passes the source data, others
// pass nil).
func (m *Machine) Broadcast(root int, data []byte) ([]byte, error) {
	nm := m.cluster.NumMachines()
	if root < 0 || root >= nm {
		return nil, fmt.Errorf("cluster: broadcast root %d out of range", root)
	}
	if m.ID == root {
		for p := 0; p < nm; p++ {
			if p == m.ID {
				continue
			}
			if err := m.CtlSend(p, data); err != nil {
				return nil, fmt.Errorf("broadcast send to %d: %w", p, err)
			}
		}
		own := make([]byte, len(data))
		copy(own, data)
		return own, nil
	}
	buf, err := m.CtlRecv(root)
	if err != nil {
		return nil, fmt.Errorf("broadcast recv: %w", err)
	}
	return buf, nil
}

// GatherBroadcastUint64 performs the coordinator-based exchange of Section
// 4.1 for uint64 vectors: machines gather their vectors at root, root
// concatenates them in machine order and broadcasts the combination, and
// every machine returns the per-machine slices. It is the collective
// alternative to AllGatherUint64.
func (m *Machine) GatherBroadcastUint64(root int, vec []uint64) ([][]uint64, error) {
	buf := make([]byte, 8*len(vec))
	for i, v := range vec {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	parts, err := m.Gather(root, buf)
	if err != nil {
		return nil, err
	}
	var combined []byte
	if m.ID == root {
		for p, b := range parts {
			if len(b) != len(buf) {
				return nil, fmt.Errorf("cluster: gather vector from %d has %d bytes, want %d", p, len(b), len(buf))
			}
			combined = append(combined, b...)
		}
	}
	combined, err = m.Broadcast(root, combined)
	if err != nil {
		return nil, err
	}
	nm := m.cluster.NumMachines()
	if len(combined) != nm*len(buf) {
		return nil, fmt.Errorf("cluster: combined vector has %d bytes, want %d", len(combined), nm*len(buf))
	}
	out := make([][]uint64, nm)
	for p := 0; p < nm; p++ {
		v := make([]uint64, len(vec))
		base := p * len(buf)
		for j := range v {
			v[j] = binary.LittleEndian.Uint64(combined[base+8*j:])
		}
		out[p] = v
	}
	return out, nil
}
