package cluster

import (
	"sync"
	"sync/atomic"
	"testing"

	"rackjoin/internal/rdma"
)

func newTestCluster(t *testing.T, machines, cores int) *Cluster {
	t.Helper()
	c, err := New(Config{Machines: machines, CoresPerMachine: cores})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Machines: 0, CoresPerMachine: 1}); err == nil {
		t.Fatal("zero machines should fail")
	}
	if _, err := New(Config{Machines: 1, CoresPerMachine: 0}); err == nil {
		t.Fatal("zero cores should fail")
	}
}

func TestTopology(t *testing.T) {
	c := newTestCluster(t, 4, 8)
	if c.NumMachines() != 4 {
		t.Fatalf("NumMachines = %d", c.NumMachines())
	}
	for i, m := range c.Machines() {
		if m.ID != i || m.Cores != 8 {
			t.Fatalf("machine %d malformed", i)
		}
		if len(m.Peers()) != 3 {
			t.Fatalf("machine %d has %d peers", i, len(m.Peers()))
		}
		if c.Machine(i) != m {
			t.Fatal("Machine accessor mismatch")
		}
		if m.Cluster() != c {
			t.Fatal("Cluster back-pointer mismatch")
		}
	}
}

func TestCtlSendRecv(t *testing.T) {
	c := newTestCluster(t, 2, 1)
	done := make(chan error, 1)
	go func() {
		got, err := c.Machine(1).CtlRecv(0)
		if err == nil && string(got) != "histogram" {
			err = &mismatchErr{string(got)}
		}
		done <- err
	}()
	if err := c.Machine(0).CtlSend(1, []byte("histogram")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

type mismatchErr struct{ got string }

func (e *mismatchErr) Error() string { return "payload mismatch: " + e.got }

func TestCtlUnknownPeer(t *testing.T) {
	c := newTestCluster(t, 2, 1)
	if err := c.Machine(0).CtlSend(5, nil); err == nil {
		t.Fatal("unknown peer send should fail")
	}
	if _, err := c.Machine(0).CtlRecv(5); err == nil {
		t.Fatal("unknown peer recv should fail")
	}
	if err := c.Machine(0).CtlSend(1, make([]byte, defaultCtlBufSize+1)); err == nil {
		t.Fatal("oversized control message should fail")
	}
}

func TestCtlManyMessagesFIFO(t *testing.T) {
	c := newTestCluster(t, 2, 1)
	const n = 200
	errs := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			got, err := c.Machine(1).CtlRecv(0)
			if err != nil {
				errs <- err
				return
			}
			if len(got) != 1 || got[0] != byte(i) {
				errs <- &mismatchErr{string(got)}
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < n; i++ {
		if err := c.Machine(0).CtlSend(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	for _, nm := range []int{1, 2, 5} {
		c := newTestCluster(t, nm, 1)
		var phase atomic.Int32
		var wg sync.WaitGroup
		for _, m := range c.Machines() {
			wg.Add(1)
			go func(m *Machine) {
				defer wg.Done()
				phase.Add(1)
				if err := m.Barrier(); err != nil {
					t.Errorf("barrier: %v", err)
					return
				}
				// After the barrier, every machine must have entered.
				if got := phase.Load(); got != int32(nm) {
					t.Errorf("machine %d passed barrier with only %d/%d entered", m.ID, got, nm)
				}
			}(m)
		}
		wg.Wait()
	}
}

func TestBarrierRepeated(t *testing.T) {
	c := newTestCluster(t, 3, 1)
	var wg sync.WaitGroup
	for _, m := range c.Machines() {
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := m.Barrier(); err != nil {
					t.Errorf("barrier %d on %d: %v", i, m.ID, err)
					return
				}
			}
		}(m)
	}
	wg.Wait()
}

func TestAllGather(t *testing.T) {
	c := newTestCluster(t, 4, 1)
	var wg sync.WaitGroup
	for _, m := range c.Machines() {
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			got, err := m.AllGather([]byte{byte(m.ID), byte(m.ID * 2)})
			if err != nil {
				t.Errorf("machine %d: %v", m.ID, err)
				return
			}
			if len(got) != 4 {
				t.Errorf("machine %d: %d contributions", m.ID, len(got))
				return
			}
			for p, b := range got {
				if len(b) != 2 || b[0] != byte(p) || b[1] != byte(p*2) {
					t.Errorf("machine %d: bad contribution from %d: %v", m.ID, p, b)
				}
			}
		}(m)
	}
	wg.Wait()
}

func TestAllGatherUint64(t *testing.T) {
	c := newTestCluster(t, 3, 1)
	var wg sync.WaitGroup
	for _, m := range c.Machines() {
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			vec := []uint64{uint64(m.ID), 100 + uint64(m.ID), 200}
			got, err := m.AllGatherUint64(vec)
			if err != nil {
				t.Errorf("machine %d: %v", m.ID, err)
				return
			}
			for p, v := range got {
				if v[0] != uint64(p) || v[1] != 100+uint64(p) || v[2] != 200 {
					t.Errorf("machine %d: bad vector from %d: %v", m.ID, p, v)
				}
			}
		}(m)
	}
	wg.Wait()
}

func TestAllGatherRepeated(t *testing.T) {
	// Histograms for R and S are exchanged back-to-back; ensure channel
	// reuse across consecutive all-gathers is clean.
	c := newTestCluster(t, 3, 1)
	var wg sync.WaitGroup
	for _, m := range c.Machines() {
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				got, err := m.AllGather([]byte{byte(round), byte(m.ID)})
				if err != nil {
					t.Errorf("round %d machine %d: %v", round, m.ID, err)
					return
				}
				for p, b := range got {
					if b[0] != byte(round) || b[1] != byte(p) {
						t.Errorf("round %d: stale data from %d", round, p)
						return
					}
				}
			}
		}(m)
	}
	wg.Wait()
}

func TestRunAll(t *testing.T) {
	c := newTestCluster(t, 3, 4)
	var count atomic.Int32
	seen := make([][]bool, 3)
	for i := range seen {
		seen[i] = make([]bool, 4)
	}
	var mu sync.Mutex
	c.RunAll(func(m *Machine, core int) {
		count.Add(1)
		mu.Lock()
		seen[m.ID][core] = true
		mu.Unlock()
	})
	if count.Load() != 12 {
		t.Fatalf("ran %d workers, want 12", count.Load())
	}
	for i := range seen {
		for j := range seen[i] {
			if !seen[i][j] {
				t.Fatalf("machine %d core %d never ran", i, j)
			}
		}
	}
}

func TestRunPerMachine(t *testing.T) {
	c := newTestCluster(t, 5, 2)
	var count atomic.Int32
	c.RunPerMachine(func(m *Machine) { count.Add(1) })
	if count.Load() != 5 {
		t.Fatalf("ran %d, want 5", count.Load())
	}
}

func TestConnectQPs(t *testing.T) {
	c := newTestCluster(t, 2, 1)
	m0, m1 := c.Machine(0), c.Machine(1)
	scq0, rcq0 := m0.Dev.NewCQ(), m0.Dev.NewCQ()
	scq1, rcq1 := m1.Dev.NewCQ(), m1.Dev.NewCQ()
	qpA, qpB, err := c.ConnectQPs(0, 1,
		rdma.QPConfig{SendCQ: scq0, RecvCQ: rcq0},
		rdma.QPConfig{SendCQ: scq1, RecvCQ: rcq1})
	if err != nil {
		t.Fatal(err)
	}
	if qpA.Remote() != qpB || qpB.Remote() != qpA {
		t.Fatal("QPs not connected")
	}
	// One-sided write over the data plane.
	src, err := m0.PD.RegisterMemory(make([]byte, 64), 0)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := m1.PD.RegisterMemory(make([]byte, 64), rdma.AccessRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	copy(src.Bytes(), []byte("data plane payload"))
	if err := qpA.PostSend(rdma.SendWR{
		Op: rdma.OpWrite, Signaled: true,
		Local:  rdma.Segment{MR: src, Length: 18},
		Remote: rdma.RemoteSegment{RKey: dst.RKey()},
	}); err != nil {
		t.Fatal(err)
	}
	if cpl := scq0.Wait(); cpl.Err() != nil {
		t.Fatal(cpl.Err())
	}
	if string(dst.Bytes()[:18]) != "data plane payload" {
		t.Fatal("payload mismatch over data plane")
	}
}

func TestGatherBroadcast(t *testing.T) {
	c := newTestCluster(t, 4, 1)
	var wg sync.WaitGroup
	for _, m := range c.Machines() {
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			vec := []uint64{uint64(m.ID * 10), uint64(m.ID*10 + 1)}
			got, err := m.GatherBroadcastUint64(2, vec)
			if err != nil {
				t.Errorf("machine %d: %v", m.ID, err)
				return
			}
			for p, v := range got {
				if v[0] != uint64(p*10) || v[1] != uint64(p*10+1) {
					t.Errorf("machine %d: bad vector from %d: %v", m.ID, p, v)
				}
			}
		}(m)
	}
	wg.Wait()
}

func TestGatherAtRoot(t *testing.T) {
	c := newTestCluster(t, 3, 1)
	var wg sync.WaitGroup
	for _, m := range c.Machines() {
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			got, err := m.Gather(0, []byte{byte(m.ID + 1)})
			if err != nil {
				t.Errorf("machine %d: %v", m.ID, err)
				return
			}
			if m.ID != 0 {
				if got != nil {
					t.Errorf("non-root machine %d received gather output", m.ID)
				}
				return
			}
			for p, b := range got {
				if len(b) != 1 || b[0] != byte(p+1) {
					t.Errorf("root: bad contribution from %d: %v", p, b)
				}
			}
		}(m)
	}
	wg.Wait()
}

func TestBroadcastFromRoot(t *testing.T) {
	c := newTestCluster(t, 3, 1)
	var wg sync.WaitGroup
	for _, m := range c.Machines() {
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			var data []byte
			if m.ID == 1 {
				data = []byte("global histogram")
			}
			got, err := m.Broadcast(1, data)
			if err != nil {
				t.Errorf("machine %d: %v", m.ID, err)
				return
			}
			if string(got) != "global histogram" {
				t.Errorf("machine %d got %q", m.ID, got)
			}
		}(m)
	}
	wg.Wait()
}

func TestCollectiveRootValidation(t *testing.T) {
	c := newTestCluster(t, 2, 1)
	if _, err := c.Machine(0).Gather(9, nil); err == nil {
		t.Fatal("bad gather root should fail")
	}
	if _, err := c.Machine(0).Broadcast(-1, nil); err == nil {
		t.Fatal("bad broadcast root should fail")
	}
}

func TestDeviceMetricsCarryMachineLabel(t *testing.T) {
	c := newTestCluster(t, 3, 1)
	// Generate some device traffic so the counters exist.
	buf := make([]byte, 8)
	if _, err := c.Machine(0).PD.RegisterMemory(buf, rdma.AccessLocalWrite); err != nil {
		t.Fatal(err)
	}
	found := make(map[string]bool)
	for _, s := range c.Metrics().Snapshot() {
		if s.Labels["device"] != "" {
			if s.Labels["machine"] == "" {
				t.Fatalf("device series %s %v has no machine label", s.Name, s.Labels)
			}
			found[s.Labels["machine"]] = true
			if s.Labels["machine"] != s.Labels["device"] {
				t.Errorf("series %s: machine %q != device %q (one device per machine here)",
					s.Name, s.Labels["machine"], s.Labels["device"])
			}
		}
	}
	if len(found) != 3 {
		t.Fatalf("device series for %d machines, want 3", len(found))
	}
}

func TestMachineMetricsScope(t *testing.T) {
	c := newTestCluster(t, 2, 1)
	c.Machine(1).Metrics().Counter("test_counter").Add(7)
	for _, s := range c.Metrics().Snapshot() {
		if s.Name == "test_counter" {
			if s.Labels["machine"] != "1" || s.Value != 7 {
				t.Fatalf("test_counter: labels %v value %g", s.Labels, s.Value)
			}
			return
		}
	}
	t.Fatal("test_counter not in the cluster registry")
}
