package cluster

import (
	"fmt"

	"rackjoin/internal/rdma"
)

// ctlChannel is one machine's endpoint of a control-plane link to a peer:
// a dedicated queue pair with pre-posted fixed-size receives and a single
// rotating send buffer. Control traffic is low-rate and fully synchronous
// (each send waits for its completion), which keeps the channel trivially
// deadlock-free given pre-posted receives.
type ctlChannel struct {
	qp     *rdma.QP
	sendCQ *rdma.CompletionQueue
	recvCQ *rdma.CompletionQueue
	sendMR *rdma.MemoryRegion
	recvMR *rdma.MemoryRegion
	bufSz  int
}

// newCtlPair wires the control channels between machines a and b.
func newCtlPair(a, b *Machine, cfg Config) (*ctlChannel, *ctlChannel, error) {
	chA, err := newCtlChannel(a, cfg)
	if err != nil {
		return nil, nil, err
	}
	chB, err := newCtlChannel(b, cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := rdma.Connect(chA.qp, chB.qp); err != nil {
		return nil, nil, err
	}
	return chA, chB, nil
}

func newCtlChannel(m *Machine, cfg Config) (*ctlChannel, error) {
	ch := &ctlChannel{
		sendCQ: m.Dev.NewCQ(),
		recvCQ: m.Dev.NewCQ(),
		bufSz:  cfg.CtlBufSize,
	}
	var err error
	ch.qp, err = m.PD.CreateQP(rdma.QPConfig{
		SendCQ: ch.sendCQ,
		RecvCQ: ch.recvCQ,
		Depth:  cfg.CtlBufCount + 1,
	})
	if err != nil {
		return nil, err
	}
	ch.sendMR, err = m.PD.RegisterMemory(make([]byte, cfg.CtlBufSize), 0)
	if err != nil {
		return nil, err
	}
	ch.recvMR, err = m.PD.RegisterMemory(make([]byte, cfg.CtlBufSize*cfg.CtlBufCount), rdma.AccessLocalWrite)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.CtlBufCount; i++ {
		if err := ch.postRecvSlot(i); err != nil {
			return nil, err
		}
	}
	return ch, nil
}

func (ch *ctlChannel) postRecvSlot(slot int) error {
	return ch.qp.PostRecv(rdma.RecvWR{
		WRID:  uint64(slot),
		Local: rdma.Segment{MR: ch.recvMR, Offset: slot * ch.bufSz, Length: ch.bufSz},
	})
}

func (ch *ctlChannel) send(payload []byte) error {
	if len(payload) > ch.bufSz {
		return fmt.Errorf("cluster: control message of %d bytes exceeds buffer size %d", len(payload), ch.bufSz)
	}
	copy(ch.sendMR.Bytes(), payload)
	err := ch.qp.PostSend(rdma.SendWR{
		Op:       rdma.OpSend,
		Local:    rdma.Segment{MR: ch.sendMR, Length: len(payload)},
		Signaled: true,
	})
	if err != nil {
		return err
	}
	return ch.sendCQ.Wait().Err()
}

func (ch *ctlChannel) recv() ([]byte, error) {
	c := ch.recvCQ.Wait()
	if err := c.Err(); err != nil {
		return nil, err
	}
	slot := int(c.WRID)
	payload := make([]byte, c.Bytes)
	copy(payload, ch.recvMR.Bytes()[slot*ch.bufSz:slot*ch.bufSz+c.Bytes])
	if err := ch.postRecvSlot(slot); err != nil {
		return nil, err
	}
	return payload, nil
}
