// Package a exercises the goroutinelife pass: untied goroutines, ties
// through helper calls / method values / funclit-bound locals, deferred
// and non-deferred completion signals, the leak-on-error shape, and an
// invisible external body with and without a handle flowing in.
package a

import (
	"os"
	"os/signal"
	"sync"
	"time"
)

var (
	stop = make(chan struct{})
	done = make(chan struct{}, 1)
	fin  = make(chan struct{})
	out  = make(chan int)
	wg   sync.WaitGroup
)

func sink(int)    {}
func work() error { return nil }
func bad() bool   { return false }

// untied: nothing in the body consumes a stop signal or signals done.
func spawnUntied() {
	go func() { // want `goroutine is not tied to a stop channel`
		for i := 0; i < 10; i++ {
			sink(i)
		}
	}()
}

// tied: selects on stop.
func spawnSelect() {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				sink(0)
			}
		}
	}()
}

type engine struct{ stop chan struct{} }

func (e *engine) loop() {
	for {
		select {
		case <-e.stop:
			return
		default:
			sink(0)
		}
	}
}

// tied through one level: the loop method receives from e.stop.
func (e *engine) start() {
	go e.loop()
}

// tied via a method value bound once to a local.
func (e *engine) startIndirect() {
	f := e.loop
	go f()
}

// tied via a deferred WaitGroup.Done in a funclit-bound local.
func spawnScatter() {
	scatter := func() {
		defer wg.Done()
		sink(1)
	}
	wg.Add(1)
	go scatter()
}

// tied: the goroutine is the waiter.
func spawnWaiter() {
	go func() {
		wg.Wait()
		close(out)
	}()
}

// leak-on-error: the error path returns without sending.
func spawnLeaky() {
	go func() { // want `signals completion \(channel send\) on some paths but not all`
		if err := work(); err != nil {
			return
		}
		done <- struct{}{}
	}()
}

// all paths signal: both branches send before returning.
func spawnCovered() {
	go func() {
		if err := work(); err != nil {
			done <- struct{}{}
			return
		}
		done <- struct{}{}
	}()
}

func finish() { close(fin) }

// leak-on-error through a helper: finish closes fin, happy path only.
func spawnHelperLeaky() {
	go func() { // want `signals completion \(close\) on some paths but not all`
		if bad() {
			return
		}
		finish()
	}()
}

// invisible body, no handle flowing in: nothing can stop or await it.
func spawnExternal() {
	go time.Sleep(time.Second) // want `cannot see and passes it no context, channel, or WaitGroup`
}

// invisible body but a channel flows in: assumed tied.
func spawnNotify(ch chan os.Signal) {
	go signal.Notify(ch, os.Interrupt)
}

func recurA() { recurB() }
func recurB() { recurA() }

// mutual recursion must terminate; neither function is tied.
func spawnRecur() {
	go recurA() // want `goroutine is not tied to a stop channel`
}
