// Package goroutinelife checks that every goroutine started in the
// package is tied to something its owner can wait on or signal through:
// a stop/abort channel it receives from or selects on, a
// sync.WaitGroup, or a context. The long-lived components (health
// engine, obsv server, fabric links) are exactly where an untied
// goroutine turns into a leak per query once rackjoind runs multi-tenant
// — the daemon prerequisite from the ROADMAP.
//
// Classification, in order:
//
//   - tied: the body (seen through up to two levels of helper calls via
//     pathflow summaries) receives from or selects on a channel, ranges
//     over one, calls (*sync.WaitGroup).Wait, or consults a context —
//     the goroutine has a shutdown signal it listens to, or is itself
//     the waiter;
//   - signaling: the body's only link to its owner is a completion
//     signal — close(ch), (*sync.WaitGroup).Done, or a channel send. A
//     deferred signal covers every path. A non-deferred one is checked
//     against the CFG: if any path reaches the end of the function
//     without signaling (the classic early `return err`), the waiter
//     blocks forever and the pass reports it;
//   - untied: none of the above reachable from the body — reported.
//     For a `go` of a function outside the package (go srv.Serve(ln))
//     the body is invisible; the call is assumed tied only when a
//     context, channel, or WaitGroup flows in through the arguments.
package goroutinelife

import (
	"go/ast"
	"go/token"
	"go/types"

	"rackjoin/internal/analyzers/pathflow"
	"rackjoin/internal/analyzers/rackvet"
)

// Analyzer is the goroutinelife pass.
var Analyzer = &rackvet.Analyzer{
	Name: "goroutinelife",
	Doc:  "every goroutine must be tied to a stop channel, WaitGroup, or context, on every path",
	Run:  run,
}

// tieDepth bounds how many helper levels the tie search follows.
const tieDepth = 2

type analysis struct {
	pass *rackvet.Pass
	sums *pathflow.Summaries
}

func run(pass *rackvet.Pass) error {
	a := &analysis{
		pass: pass,
		sums: pathflow.NewSummaries(pass.Files, pass.TypesInfo),
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				a.check(g)
			}
			return true
		})
	}
	return nil
}

func (a *analysis) check(g *ast.GoStmt) {
	r := a.sums.ResolveExpr(g.Call.Fun)
	if r == nil {
		// Body declared outside the package. A context, channel, or
		// WaitGroup flowing in through the receiver or arguments is the
		// owner's handle on it; nothing flowing in means nothing can
		// stop it.
		if a.callCarriesTie(g.Call) {
			return
		}
		a.pass.Reportf(g.Pos(), "goroutine runs a function this package cannot see and passes it no context, channel, or WaitGroup; nothing can stop or await it")
		return
	}
	if a.tied(r.Body, tieDepth, nil) {
		return
	}
	kind, deferred, allPaths := a.signals(r.Body)
	if kind == "" {
		a.pass.Reportf(g.Pos(), "goroutine is not tied to a stop channel, WaitGroup, or context; it outlives its component")
		return
	}
	if deferred || allPaths {
		return
	}
	a.pass.Reportf(g.Pos(), "goroutine signals completion (%s) on some paths but not all; an early return leaks the waiter", kind)
}

// callCarriesTie reports whether call's receiver or arguments include a
// context, channel, or *sync.WaitGroup value.
func (a *analysis) callCarriesTie(call *ast.CallExpr) bool {
	exprs := append([]ast.Expr{}, call.Args...)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		exprs = append(exprs, sel.X)
	}
	for _, e := range exprs {
		if isTieType(a.pass.TypesInfo.TypeOf(e)) {
			return true
		}
	}
	return false
}

func isTieType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if named := rackvet.NamedType(t); named != nil {
		obj := named.Obj()
		if rackvet.PkgPathIs(obj, "context") && obj.Name() == "Context" {
			return true
		}
		if rackvet.PkgPathIs(obj, "sync") && obj.Name() == "WaitGroup" {
			return true
		}
	}
	return false
}

// tied reports whether body contains a shutdown-signal consumer:
// channel receive, select, range over a channel, WaitGroup.Wait, or a
// context method call — looking through up to depth levels of calls to
// functions in this package.
func (a *analysis) tied(body *ast.BlockStmt, depth int, visiting map[*ast.BlockStmt]bool) bool {
	if visiting[body] {
		return false
	}
	if visiting == nil {
		visiting = make(map[*ast.BlockStmt]bool)
	}
	visiting[body] = true
	defer delete(visiting, body)

	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // a nested goroutine's ties are its own
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := a.pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if a.isWaitGroupMethod(n, "Wait") || a.isContextCall(n) {
				found = true
				return false
			}
			if depth > 0 {
				if r := a.sums.ResolveCall(n); r != nil && a.tied(r.Body, depth-1, visiting) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func (a *analysis) isWaitGroupMethod(call *ast.CallExpr, name string) bool {
	fn := rackvet.Callee(a.pass.TypesInfo, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	recv := rackvet.ReceiverNamed(fn)
	return recv != nil && rackvet.PkgPathIs(recv.Obj(), "sync") && recv.Obj().Name() == "WaitGroup"
}

func (a *analysis) isContextCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	named := rackvet.NamedType(a.pass.TypesInfo.TypeOf(sel.X))
	return named != nil && rackvet.PkgPathIs(named.Obj(), "context") && named.Obj().Name() == "Context"
}

// isSignal reports whether n (an expression or statement part) performs
// a completion signal, looking through resolvable calls up to depth
// levels: close(ch), WaitGroup.Done, or a channel send. kind names the
// first signal found.
func (a *analysis) isSignal(n ast.Node, depth int) (kind string) {
	ast.Inspect(n, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			kind = "channel send"
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := a.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					kind = "close"
					return false
				}
			}
			if a.isWaitGroupMethod(n, "Done") {
				kind = "WaitGroup.Done"
				return false
			}
			if depth > 0 {
				if r := a.sums.ResolveCall(n); r != nil {
					if k := a.isSignal(r.Body, depth-1); k != "" {
						kind = k
					}
				}
			}
		}
		return kind == ""
	})
	return kind
}

// signals classifies body's completion signaling: kind of the first
// signal found ("" when none), whether any signal is deferred (covers
// every path), and — when not — whether every CFG path from entry to
// exit passes through a signaling statement.
func (a *analysis) signals(body *ast.BlockStmt) (kind string, deferred bool, allPaths bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			if k := a.isSignal(n.Call, tieDepth); k != "" {
				kind, deferred = k, true
			}
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				if k := a.isSignal(lit.Body, tieDepth); k != "" {
					kind, deferred = k, true
				}
			}
			return false
		}
		return true
	})
	if deferred {
		return kind, true, true
	}
	if kind == "" {
		if k := a.isSignal(body, tieDepth); k != "" {
			kind = k
		}
	}
	if kind == "" {
		return "", false, false
	}
	// Non-deferred signal: every path must pass a signaling node.
	g := pathflow.New(body)
	seen := map[ast.Stmt]bool{}
	stack := []ast.Stmt{}
	for _, s := range g.Succs(g.Entry()) {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s == g.Exit() {
			return kind, false, false // reached exit without signaling
		}
		if seen[s] {
			continue
		}
		seen[s] = true
		signaling := false
		for _, part := range pathflow.NodeParts(s) {
			if part != nil && a.isSignal(part, tieDepth) != "" {
				signaling = true
				break
			}
		}
		if signaling {
			continue // this path is covered
		}
		stack = append(stack, g.Succs(s)...)
	}
	return kind, false, true
}
