package goroutinelife_test

import (
	"testing"

	"rackjoin/internal/analyzers/goroutinelife"
	"rackjoin/internal/analyzers/vettest"
)

func TestGoroutineLife(t *testing.T) {
	vettest.Run(t, "testdata", goroutinelife.Analyzer, "a")
}
