package buflifecycle_test

import (
	"testing"

	"rackjoin/internal/analyzers/buflifecycle"
	"rackjoin/internal/analyzers/vettest"
)

func TestAnalyzer(t *testing.T) {
	vettest.Run(t, "testdata", buflifecycle.Analyzer, "a")
}
