// Package buflifecycle verifies the RDMA buffer-pool discipline of the
// network pass (DESIGN.md §2, paper §4.2.1): a buffer index handed out
// by a pool must, on every control-flow path, end up either posted
// (accounted via the pool's outstanding counter), released back to the
// free list, escaped into longer-lived state, or returned to the
// caller. An error return that drops the index leaks the buffer for the
// rest of the run — exactly the kind of slow pool bleed that shows up
// only as rising netpass_buffer_stalls_total much later.
//
// Tracked values:
//
//   - locals bound by `b, err := pool.acquire()` (or Get) where the
//     receiver is a *...Pool type;
//   - integer parameters named buf of functions that work with a
//     *...Pool type — the repo's convention for passing an owned,
//     not-yet-posted buffer (postBuffer).
//
// Consumption is any of: passing the index to a call that transfers
// ownership, storing it into a field/slice/map, capturing it in a
// closure, sending it on a channel, returning it, or incrementing an
// `outstanding` counter (the manual post bookkeeping). Whether a call
// transfers ownership is decided by looking one level into the callee
// via pathflow summaries: a helper whose body releases, posts, stores,
// or forwards its parameter consumes; one that only reads the bytes
// (the pool's buf() accessor) is transparent; an unresolvable callee
// is conservatively assumed to consume. Conversions like uint64(buf)
// in a work-request literal do not consume: a WRID copy does not
// return the buffer. Returns inside `if err != nil` blocks checking
// the acquire's own error are exempt — on that path the acquire failed
// and no buffer was handed out.
package buflifecycle

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rackjoin/internal/analyzers/pathflow"
	"rackjoin/internal/analyzers/rackvet"
)

// Analyzer is the buflifecycle pass.
var Analyzer = &rackvet.Analyzer{
	Name: "buflifecycle",
	Doc:  "check that RDMA pool buffers are posted, released, or escaped on all control-flow paths",
	Run:  run,
}

func run(pass *rackvet.Pass) error {
	sums := pathflow.NewSummaries(pass.Files, pass.TypesInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, sums, n.Type, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, sums, n.Type, n.Body)
			}
			return true
		})
	}
	return nil
}

// isPoolType reports whether t is (a pointer to) a named type whose
// name ends in Pool (bufferPool, resultPool, ...).
func isPoolType(t types.Type) bool {
	named := rackvet.NamedType(t)
	return named != nil && strings.HasSuffix(named.Obj().Name(), "Pool")
}

// isAcquire reports whether call acquires a buffer from a pool.
func isAcquire(pass *rackvet.Pass, call *ast.CallExpr) bool {
	fn := rackvet.Callee(pass.TypesInfo, call)
	if fn == nil || (fn.Name() != "acquire" && fn.Name() != "Get") {
		return false
	}
	return isPoolType(recvType(fn))
}

func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// usesPool reports whether any expression in body has a pool type —
// the gate for the owned-parameter rule.
func usesPool(pass *rackvet.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if tv, ok := pass.TypesInfo.Types[e]; ok && isPoolType(tv.Type) {
				found = true
			}
		}
		return true
	})
	return found
}

func checkFunc(pass *rackvet.Pass, sums *pathflow.Summaries, ftype *ast.FuncType, body *ast.BlockStmt) {
	var graph *pathflow.Graph
	ensureGraph := func() *pathflow.Graph {
		if graph == nil {
			graph = pathflow.New(body)
		}
		return graph
	}
	parents := rackvet.Parents(body)

	// Rule 1: locals bound from pool.acquire()/Get().
	rackvet.InspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAcquire(pass, call) {
			return true
		}
		parent := parents[call]
		as, ok := parent.(*ast.AssignStmt)
		if !ok {
			if _, ok := parent.(*ast.ExprStmt); ok {
				pass.Reportf(call.Pos(), "acquired buffer is discarded; it can never be posted or released")
			}
			return true
		}
		if len(as.Rhs) != 1 || as.Rhs[0] != call || len(as.Lhs) == 0 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true // stored straight into a field/element: escaped
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "acquired buffer is discarded; it can never be posted or released")
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return true
		}
		var errObj types.Object
		if len(as.Lhs) == 2 {
			if errID, ok := as.Lhs[1].(*ast.Ident); ok && errID.Name != "_" {
				if errObj = pass.TypesInfo.Defs[errID]; errObj == nil {
					errObj = pass.TypesInfo.Uses[errID]
				}
			}
		}
		g := ensureGraph()
		if !g.Contains(as) {
			return true
		}
		checkOwned(pass, sums, g, parents, as, call.Pos(), obj, errObj)
		return true
	})

	// Rule 2: owned buffer parameters (an int parameter named buf in a
	// function that works with a pool).
	if ftype.Params == nil {
		return
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			if name.Name != "buf" {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if basic, ok := obj.Type().Underlying().(*types.Basic); !ok || basic.Info()&types.IsInteger == 0 {
				continue
			}
			if !usesPool(pass, body) {
				continue
			}
			g := ensureGraph()
			checkOwned(pass, sums, g, parents, g.Entry(), name.Pos(), obj, nil)
		}
	}
}

// checkOwned runs the leak search for one owned buffer value.
func checkOwned(pass *rackvet.Pass, sums *pathflow.Summaries, graph *pathflow.Graph, parents map[ast.Node]ast.Node, def ast.Stmt, defPos token.Pos, obj, errObj types.Object) {
	info := pass.TypesInfo
	defLine := pass.Fset.Position(defPos).Line
	consumes := func(n ast.Node) bool { return consumesBuffer(info, sums, n, obj, seeDepth) }
	redefines := func(n ast.Node) bool { return rackvet.StoresTo(info, n, obj) }
	exempt := func(ret *ast.ReturnStmt) bool {
		return rackvet.InErrCheck(info, parents, ret, errObj)
	}
	for _, leak := range graph.Leaks(def, consumes, redefines, exempt) {
		switch leak.Kind {
		case pathflow.LeakReturn:
			pass.Reportf(leak.Pos, "buffer %q (acquired at line %d) may leak: this return neither posts nor releases it", obj.Name(), defLine)
		case pathflow.LeakRedefine:
			pass.Reportf(leak.Pos, "buffer %q overwritten while still neither posted nor released", obj.Name())
		case pathflow.LeakFuncEnd:
			pass.Reportf(defPos, "buffer %q is not posted or released on every path to the end of the function", obj.Name())
		}
	}
}

// seeDepth is how many levels of helper calls the pass resolves before
// falling back to the conservative every-call-consumes rule. Two
// levels lets a read-only helper that itself goes through the pool's
// accessor (checksum → pool.buf) stay transparent.
const seeDepth = 2

// consumesBuffer reports whether node consumes the buffer held in obj.
func consumesBuffer(info *types.Info, sums *pathflow.Summaries, node ast.Node, obj types.Object, depth int) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Escape-store: the index moves into longer-lived state
			// (ts.curBuf[p] = b).
			for i, rhs := range n.Rhs {
				if rackvet.IsIdentFor(info, rhs, obj) {
					if i < len(n.Lhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					found = true
				}
			}
			// Manual post bookkeeping: pool.outstanding += n.
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isOutstanding(n.Lhs[0]) {
				found = true
			}
		case *ast.IncDecStmt:
			if isOutstanding(n.X) {
				found = true
			}
		case *ast.SendStmt:
			if rackvet.IsIdentFor(info, n.Value, obj) {
				found = true
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if rackvet.IsIdentFor(info, res, obj) {
					found = true
				}
			}
		case *ast.FuncLit:
			// Captured by a closure: ownership escapes.
			if rackvet.MentionsObject(info, n, obj) {
				found = true
			}
			return false
		case *ast.CallExpr:
			if rackvet.IsConversion(info, n) {
				// uint64(buf) in a WRID is a copy, not a transfer; keep
				// walking the argument for real uses.
				return true
			}
			for i, arg := range n.Args {
				if rackvet.IsIdentFor(info, arg, obj) && callConsumes(info, sums, n, i, depth) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// callConsumes decides whether passing the buffer as argument i of
// call transfers ownership. An unresolvable callee is assumed to
// consume (the old conservative rule). A callee declared in this
// package is classified by its body: if the parameter is itself
// consumed there — released, posted, stored, sent, returned — the call
// transfers ownership; a body that only reads it (the pool's buf
// accessor, a checksum helper) is transparent and the caller still
// owns the buffer. This replaces the by-name whitelist single-function
// passes needed.
func callConsumes(info *types.Info, sums *pathflow.Summaries, call *ast.CallExpr, i int, depth int) bool {
	if depth <= 0 {
		return true
	}
	r := sums.ResolveCall(call)
	if r == nil || r.Type == nil || r.Body == nil {
		return true
	}
	param := sums.ParamObj(r.Type, i)
	if param == nil {
		return true // unnamed or variadic: cannot track, assume transfer
	}
	return consumesBuffer(info, sums, r.Body, param, depth-1)
}

// isOutstanding reports whether e is a selector of a field named
// outstanding (the pool's posted-transfer counter).
func isOutstanding(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "outstanding"
}
