// Package a exercises the buflifecycle analyzer.
package a

import "errors"

// bufferPool mirrors the netpass send-buffer pool: integer indices,
// acquire/release, a buf accessor for the bytes, and an outstanding
// counter bumped when an index is posted to the NIC.
type bufferPool struct {
	outstanding int
	free        chan int
}

func (p *bufferPool) acquire() (int, error) { return 0, nil }
func (p *bufferPool) Get() (int, error)     { return 0, nil }
func (p *bufferPool) release(b int)         { p.free <- b }
func (p *bufferPool) buf(b int) []byte      { return nil }

var errFull = errors.New("full")

func released(p *bufferPool) error {
	b, err := p.acquire()
	if err != nil {
		return err // exempt: the acquire failed, no buffer was handed out
	}
	p.release(b)
	return nil
}

func leakyReturn(p *bufferPool, fail bool) error {
	b, err := p.acquire()
	if err != nil {
		return err
	}
	if fail {
		return errFull // want `buffer "b" \(acquired at line \d+\) may leak: this return neither posts nor releases it`
	}
	p.release(b)
	return nil
}

func discarded(p *bufferPool) {
	p.acquire() // want `acquired buffer is discarded`
}

func blank(p *bufferPool) {
	_, _ = p.acquire() // want `acquired buffer is discarded`
}

func overwritten(p *bufferPool) {
	b, _ := p.acquire()
	b, _ = p.acquire() // want `buffer "b" overwritten while still neither posted nor released`
	p.release(b)
}

func posted(p *bufferPool, fail bool) error {
	b, err := p.Get()
	if err != nil {
		return err
	}
	if fail {
		return errFull // want `buffer "b" \(acquired at line \d+\) may leak`
	}
	wrid := uint64(b) // a WRID copy is a conversion, not a transfer
	_ = wrid
	p.outstanding++
	return nil
}

func handoff(p *bufferPool) {
	b, _ := p.acquire()
	p.free <- b // the receiver now owns the index
}

type sink struct{ cur int }

func escape(p *bufferPool, s *sink) {
	b, _ := p.acquire()
	s.cur = b // stored into longer-lived state
}

func forward(p *bufferPool) (int, error) {
	b, err := p.acquire()
	return b, err // ownership passes to the caller
}

// post mirrors netpass.postBuffer: the function owns buf (an index its
// caller acquired) and must post or release it on every path.
func post(p *bufferPool, buf int, fail bool) error {
	payload := p.buf(buf) // buf() only reads the bytes; not a transfer
	if len(payload) == 0 {
		return errFull // want `buffer "buf" \(acquired at line \d+\) may leak`
	}
	if fail {
		p.release(buf)
		return errFull
	}
	p.outstanding++
	return nil
}

func dropsOnFallthrough(p *bufferPool, buf int, ok bool) { // want `buffer "buf" is not posted or released on every path to the end of the function`
	if ok {
		p.release(buf)
	}
}

// unrelated has a buf parameter but never touches a pool: not tracked.
func unrelated(buf int) int { return buf * 2 }

// checksum reads the buffer's bytes without taking ownership; the pass
// resolves its body and sees no consumption. (Its parameter is not
// named buf: the owned-parameter convention is for owners.)
func checksum(p *bufferPool, idx int) byte {
	payload := p.buf(idx)
	var sum byte
	for _, c := range payload {
		sum ^= c
	}
	return sum
}

// releaseVia transfers ownership one level down: its body releases.
func releaseVia(p *bufferPool, buf int) {
	p.release(buf)
}

// helperReadOnly: a read-only helper call does not count as posting or
// releasing, so the happy path still leaks.
func helperReadOnly(p *bufferPool) error {
	b, err := p.acquire()
	if err != nil {
		return err
	}
	_ = checksum(p, b)
	return nil // want `buffer "b" \(acquired at line \d+\) may leak`
}

// helperConsumes: ownership passes through releaseVia into release.
func helperConsumes(p *bufferPool) error {
	b, err := p.acquire()
	if err != nil {
		return err
	}
	releaseVia(p, b)
	return nil
}
