package spanend_test

import (
	"testing"

	"rackjoin/internal/analyzers/spanend"
	"rackjoin/internal/analyzers/vettest"
)

func TestAnalyzer(t *testing.T) {
	vettest.Run(t, "testdata", spanend.Analyzer, "a")
}
