// Package spanend verifies that every trace span that is started is
// also ended on every control-flow path — the lostcancel rule applied
// to this repo's tracing idiom.
//
// A span start is any call to a function or method named Span or span
// whose single result is a closer function (trace.Recorder.Span and the
// core package's machineState.span helper both have this shape), or to
// one named Begin or begin returning (id, closer) — the causal-trace
// form, where the first result is the span's identity and the second the
// closer. A local wrapper whose body directly forwards such a call
// (`func phaseSpan(...) func() { return tr.Span(...) }`) counts as a
// span start too, resolved through pathflow summaries rather than by
// adding its name to the list. The closer must be called, deferred, or escape (returned,
// stored in a field, captured by a closure) on every path from the
// start; an early error return that skips it loses the span, which
// unbalances the Chrome trace export and the per-phase attribution built
// on it (DESIGN.md §4, PR 2; §12, PR 8).
package spanend

import (
	"go/ast"
	"go/types"

	"rackjoin/internal/analyzers/pathflow"
	"rackjoin/internal/analyzers/rackvet"
)

// Analyzer is the spanend pass.
var Analyzer = &rackvet.Analyzer{
	Name: "spanend",
	Doc:  "check that every trace span started is ended on all control-flow paths",
	Run:  run,
}

func run(pass *rackvet.Pass) error {
	sums := pathflow.NewSummaries(pass.Files, pass.TypesInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, sums, body)
			}
			return true
		})
	}
	return nil
}

// namedCloserIndex returns the result index of a span-start call's
// closer, or -1 when call is not a span start by name. Span/span return
// the closer as their only result; Begin/begin return (id, closer) with
// the closer second.
func namedCloserIndex(pass *rackvet.Pass, call *ast.CallExpr) int {
	fn := rackvet.Callee(pass.TypesInfo, call)
	if fn == nil {
		return -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	var idx int
	switch fn.Name() {
	case "Span", "span":
		idx = 0
	case "Begin", "begin":
		idx = 1
	default:
		return -1
	}
	if sig.Results().Len() != idx+1 {
		return -1
	}
	if _, isFunc := sig.Results().At(idx).Type().Underlying().(*types.Signature); !isFunc {
		return -1
	}
	return idx
}

// closerIndex extends namedCloserIndex one level interprocedurally: a
// call to a function in this package whose every return directly
// forwards a span-start call (`return t.Span(name)` or
// `return 0, tr.Span(x)`) is itself a span start, whatever it is
// named. Wrappers with synthesized or conditional closers are left
// alone — misclassifying one would produce false leaks, so only the
// direct-forward shape is resolved.
func closerIndex(pass *rackvet.Pass, sums *pathflow.Summaries, call *ast.CallExpr) int {
	if idx := namedCloserIndex(pass, call); idx >= 0 {
		return idx
	}
	r := sums.ResolveCall(call)
	if r == nil || r.Body == nil {
		return -1
	}
	idx := -1
	ok := true
	ast.Inspect(r.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			cand := -1
			if len(n.Results) == 1 {
				if c, isCall := ast.Unparen(n.Results[0]).(*ast.CallExpr); isCall {
					cand = namedCloserIndex(pass, c) // tuple forwarded whole
				}
			}
			if cand < 0 {
				for j, res := range n.Results {
					if c, isCall := ast.Unparen(res).(*ast.CallExpr); isCall && namedCloserIndex(pass, c) == 0 {
						cand = j
					}
				}
			}
			if cand < 0 || (idx >= 0 && idx != cand) {
				ok = false
			} else {
				idx = cand
			}
		}
		return true
	})
	if !ok {
		return -1
	}
	return idx
}

func checkFunc(pass *rackvet.Pass, sums *pathflow.Summaries, body *ast.BlockStmt) {
	var graph *pathflow.Graph
	parents := rackvet.Parents(body)

	rackvet.InspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		idx := closerIndex(pass, sums, call)
		if idx < 0 {
			return true
		}
		switch parent := parents[call].(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "result of span start is discarded; the span is never ended")
		case *ast.AssignStmt:
			if len(parent.Rhs) != 1 || parent.Rhs[0] != call || len(parent.Lhs) != idx+1 {
				return true
			}
			id, ok := parent.Lhs[idx].(*ast.Ident)
			if !ok {
				// Stored into a field or element: the closer escapes and
				// its lifecycle is managed elsewhere (e.g. the pipeline's
				// netSpanEnd, closed by the CAS winner).
				return true
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "span closer assigned to _; the span is never ended")
				return true
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				return true
			}
			if graph == nil {
				graph = pathflow.New(body)
			}
			if !graph.Contains(parent) {
				return true
			}
			checkDef(pass, graph, parent, call, obj)
		}
		return true
	})
}

// checkDef runs the leak search for one `closer := span(...)` binding.
func checkDef(pass *rackvet.Pass, graph *pathflow.Graph, def ast.Stmt, call *ast.CallExpr, obj types.Object) {
	defLine := pass.Fset.Position(call.Pos()).Line
	consumes := func(n ast.Node) bool {
		return rackvet.MentionsObject(pass.TypesInfo, n, obj)
	}
	redefines := func(n ast.Node) bool {
		return rackvet.StoresTo(pass.TypesInfo, n, obj)
	}
	for _, leak := range graph.Leaks(def, consumes, redefines, nil) {
		switch leak.Kind {
		case pathflow.LeakReturn:
			pass.Reportf(leak.Pos, "span closer %q (span started at line %d) is not called before this return", obj.Name(), defLine)
		case pathflow.LeakRedefine:
			pass.Reportf(leak.Pos, "span closer %q reassigned before the span started at line %d was ended", obj.Name(), defLine)
		case pathflow.LeakFuncEnd:
			pass.Reportf(call.Pos(), "span closer %q is not called on every path to the end of the function", obj.Name())
		}
	}
}
