// Package a exercises the spanend analyzer.
package a

import "errors"

type tracer struct{}

// Span mirrors trace.Recorder.Span: the single result is the closer.
func (t *tracer) Span(name string) func() { return func() {} }

// span mirrors the core package's lowercase helper.
func span(name string) func() { return func() {} }

var errBoom = errors.New("boom")

func deferred(t *tracer) error {
	end := t.Span("phase")
	defer end()
	return errBoom
}

func leakyReturn(t *tracer, fail bool) error {
	end := t.Span("phase")
	if fail {
		return errBoom // want `span closer "end" \(span started at line \d+\) is not called before this return`
	}
	end()
	return nil
}

func discarded(t *tracer) {
	t.Span("phase") // want `result of span start is discarded; the span is never ended`
}

func blank(t *tracer) {
	_ = t.Span("phase") // want `span closer assigned to _; the span is never ended`
}

func reassigned(t *tracer) {
	end := span("one")
	end = span("two") // want `span closer "end" reassigned before the span started at line \d+ was ended`
	end()
}

func notAllPaths(t *tracer, ok bool) {
	end := t.Span("phase") // want `span closer "end" is not called on every path to the end of the function`
	if ok {
		end()
	}
}

type holder struct{ end func() }

// escape: the closer moves into a field; its lifecycle is managed
// elsewhere (the pipeline's netSpanEnd idiom), so no report.
func escape(t *tracer, h *holder) {
	h.end = t.Span("phase")
}

// runShape is the regression for core.(*joinState).run: several early
// error returns between a phase span's start and its end.
func runShape(t *tracer, steps []func() error) error {
	end := t.Span("histogram")
	for _, s := range steps {
		if err := s(); err != nil {
			return err // want `span closer "end" \(span started at line \d+\) is not called before this return`
		}
	}
	end()
	return nil
}

// returned: the closer escapes to the caller, which owns ending it.
func returned(t *tracer) func() {
	end := t.Span("phase")
	return end
}
