// Package a exercises the spanend analyzer.
package a

import "errors"

type tracer struct{}

// Span mirrors trace.Recorder.Span: the single result is the closer.
func (t *tracer) Span(name string) func() { return func() {} }

// span mirrors the core package's lowercase helper.
func span(name string) func() { return func() {} }

var errBoom = errors.New("boom")

func deferred(t *tracer) error {
	end := t.Span("phase")
	defer end()
	return errBoom
}

func leakyReturn(t *tracer, fail bool) error {
	end := t.Span("phase")
	if fail {
		return errBoom // want `span closer "end" \(span started at line \d+\) is not called before this return`
	}
	end()
	return nil
}

func discarded(t *tracer) {
	t.Span("phase") // want `result of span start is discarded; the span is never ended`
}

func blank(t *tracer) {
	_ = t.Span("phase") // want `span closer assigned to _; the span is never ended`
}

func reassigned(t *tracer) {
	end := span("one")
	end = span("two") // want `span closer "end" reassigned before the span started at line \d+ was ended`
	end()
}

func notAllPaths(t *tracer, ok bool) {
	end := t.Span("phase") // want `span closer "end" is not called on every path to the end of the function`
	if ok {
		end()
	}
}

type holder struct{ end func() }

// escape: the closer moves into a field; its lifecycle is managed
// elsewhere (the pipeline's netSpanEnd idiom), so no report.
func escape(t *tracer, h *holder) {
	h.end = t.Span("phase")
}

// runShape is the regression for core.(*joinState).run: several early
// error returns between a phase span's start and its end.
func runShape(t *tracer, steps []func() error) error {
	end := t.Span("histogram")
	for _, s := range steps {
		if err := s(); err != nil {
			return err // want `span closer "end" \(span started at line \d+\) is not called before this return`
		}
	}
	end()
	return nil
}

// returned: the closer escapes to the caller, which owns ending it.
func returned(t *tracer) func() {
	end := t.Span("phase")
	return end
}

// spanID and Begin mirror the causal API: trace.Recorder.Begin returns
// the span's identity plus the closer as the second result.
type spanID uint64

func (t *tracer) Begin(machine int, kind, label string, parent spanID) (spanID, func(int64)) {
	return 1, func(int64) {}
}

// begin mirrors the core package's machineState.begin helper.
func begin(kind, label string, parent spanID) (spanID, func(int64)) {
	return 1, func(int64) {}
}

func beginDeferred(t *tracer) error {
	id, end := t.Begin(0, "run", "run", 0)
	defer end(0)
	_ = id
	return errBoom
}

func beginLeakyReturn(t *tracer, fail bool) error {
	_, end := t.Begin(0, "phase", "histogram", 0)
	if fail {
		return errBoom // want `span closer "end" \(span started at line \d+\) is not called before this return`
	}
	end(0)
	return nil
}

func beginDiscarded(t *tracer) {
	t.Begin(0, "phase", "histogram", 0) // want `result of span start is discarded; the span is never ended`
}

func beginBlankCloser(t *tracer) spanID {
	id, _ := t.Begin(0, "phase", "histogram", 0) // want `span closer assigned to _; the span is never ended`
	return id
}

func beginNotAllPaths(t *tracer, ok bool) {
	_, end := begin("phase", "histogram", 0) // want `span closer "end" is not called on every path to the end of the function`
	if ok {
		end(0)
	}
}

type causalHolder struct {
	id  spanID
	end func(int64)
}

// beginEscape: the closer moves into a field (the pipeline's bpEnd
// idiom); its lifecycle is managed elsewhere, so no report.
func beginEscape(t *tracer, h *causalHolder) {
	h.id, h.end = 0, nil
	id, end := t.Begin(0, "phase", "local+build-probe", 0)
	h.id = id
	h.end = end
}

// beginFieldAssign: closer assigned straight to a field — escapes.
func beginFieldAssign(t *tracer, h *causalHolder) {
	h.id, h.end = t.Begin(0, "phase", "network partition", 0)
}

// phaseSpan is a local wrapper: its body forwards Span's closer, so
// the pass resolves it as a span start without knowing its name.
func phaseSpan(t *tracer, name string) func() {
	return t.Span(name)
}

func wrapperDeferred(t *tracer) error {
	end := phaseSpan(t, "phase")
	defer end()
	return errBoom
}

func wrapperLeaky(t *tracer, fail bool) error {
	end := phaseSpan(t, "phase")
	if fail {
		return errBoom // want `span closer "end" \(span started at line \d+\) is not called before this return`
	}
	end()
	return nil
}

func wrapperDiscarded(t *tracer) {
	phaseSpan(t, "phase") // want `result of span start is discarded; the span is never ended`
}

// beginPhase forwards the causal tuple whole.
func beginPhase(t *tracer) (spanID, func(int64)) {
	return t.Begin(0, "phase", "wrapped", 0)
}

func wrapperBeginNotAllPaths(t *tracer, ok bool) {
	_, end := beginPhase(t) // want `span closer "end" is not called on every path to the end of the function`
	if ok {
		end(0)
	}
}

// guardedSpan has a conditional synthesized closer; the pass leaves it
// alone rather than guess, so no reports at its call sites.
func guardedSpan(t *tracer, on bool) func() {
	if !on {
		return func() {}
	}
	return t.Span("guarded")
}

func guardedUse(t *tracer) {
	end := guardedSpan(t, true)
	_ = end
}
