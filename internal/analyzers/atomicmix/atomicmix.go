// Package atomicmix enforces the repo's atomics discipline (DESIGN.md
// §9/§10: the scheduler's pending counts and the pipeline's readiness
// flags): a variable or struct field whose address is passed to a
// sync/atomic function anywhere in the package must never be read,
// written, or aliased plainly elsewhere — one plain access next to an
// atomic one is a data race the race detector only catches when a test
// happens to hit the interleaving.
//
// It additionally checks 64-bit alignment: a raw int64/uint64 field
// accessed with 64-bit sync/atomic functions must sit at an 8-byte
// offset under 32-bit (GOARCH=386/arm) layout, or the access faults
// there. The atomic.Int64-style wrapper types carry their own alignment
// guarantee and private fields, so code using them (as this repo does)
// cannot trip either rule; the pass exists to keep it that way.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"rackjoin/internal/analyzers/rackvet"
)

// Analyzer is the atomicmix pass.
var Analyzer = &rackvet.Analyzer{
	Name: "atomicmix",
	Doc:  "check that atomically-accessed variables are never accessed plainly and are 64-bit aligned on 32-bit targets",
	Run:  run,
}

func run(pass *rackvet.Pass) error {
	info := pass.TypesInfo

	// Pass 1: collect objects whose address flows into sync/atomic, and
	// remember the exact AST nodes of those sanctioned accesses.
	atomicObjs := make(map[types.Object]*ast.CallExpr) // object -> first atomic call site
	wide := make(map[types.Object]bool)                // accessed with a 64-bit atomic op
	sanctioned := make(map[ast.Node]bool)              // &x nodes inside atomic calls
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := rackvet.Callee(info, call)
			if fn == nil || !rackvet.PkgPathIs(fn, "sync/atomic") {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				// Methods of the atomic.Int64-style wrapper types are
				// safe by construction.
				return true
			}
			is64 := has64Suffix(fn.Name())
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				obj := addrTarget(info, un.X)
				if obj == nil {
					continue
				}
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = call
				}
				if is64 {
					wide[obj] = true
				}
				sanctioned[ast.Unparen(un.X)] = true
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: flag plain accesses and aliases of those objects.
	for _, f := range pass.Files {
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[n]; ok {
					if _, hot := atomicObjs[sel.Obj()]; hot && !sanctioned[n] {
						pass.Reportf(n.Pos(), "field %s is accessed with sync/atomic elsewhere (%s); plain access races with it",
							sel.Obj().Name(), atomicPos(pass, atomicObjs[sel.Obj()]))
					}
				}
				// Do not descend into n.Sel: the field identifier would
				// double-report. The receiver chain still needs a look.
				ast.Inspect(n.X, visit)
				return false
			case *ast.Ident:
				obj := info.Uses[n]
				if obj == nil {
					return true
				}
				if v, ok := obj.(*types.Var); ok && !v.IsField() {
					if _, hot := atomicObjs[obj]; hot && !sanctioned[n] {
						pass.Reportf(n.Pos(), "variable %s is accessed with sync/atomic elsewhere (%s); plain access races with it",
							obj.Name(), atomicPos(pass, atomicObjs[obj]))
					}
				}
			}
			return true
		}
		ast.Inspect(f, visit)
	}

	// Pass 3: 32-bit alignment of 64-bit atomically-accessed fields.
	sizes32 := types.SizesFor("gc", "386")
	for obj := range atomicObjs {
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() || !wide[obj] {
			continue
		}
		if basic, ok := v.Type().Underlying().(*types.Basic); !ok ||
			(basic.Kind() != types.Int64 && basic.Kind() != types.Uint64) {
			continue
		}
		if st, idx := owningStruct(pass.Pkg, v); st != nil {
			fields := make([]*types.Var, st.NumFields())
			for i := range fields {
				fields[i] = st.Field(i)
			}
			off := sizes32.Offsetsof(fields)[idx]
			if off%8 != 0 {
				pass.Reportf(v.Pos(), "field %s is at offset %d under 32-bit layout; 64-bit sync/atomic access requires 8-byte alignment (move it to the front of the struct or use atomic.%s)",
					v.Name(), off, wrapperFor(v.Type()))
			}
		}
	}
	return nil
}

// has64Suffix reports whether a sync/atomic function name operates on a
// 64-bit value.
func has64Suffix(name string) bool {
	return len(name) >= 2 && name[len(name)-2:] == "64"
}

// addrTarget resolves &x to the variable or field object x denotes.
func addrTarget(info *types.Info, x ast.Expr) types.Object {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
	}
	return nil
}

// owningStruct finds the struct type declared in pkg that contains
// field v, and v's index within it.
func owningStruct(pkg *types.Package, v *types.Var) (*types.Struct, int) {
	for _, name := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return st, i
			}
		}
	}
	return nil, -1
}

func wrapperFor(t types.Type) string {
	if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.Uint64 {
		return "Uint64"
	}
	return "Int64"
}

func atomicPos(pass *rackvet.Pass, call *ast.CallExpr) string {
	p := pass.Fset.Position(call.Pos())
	return p.String()
}
