// Package a exercises the atomicmix analyzer.
package a

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
}

func bump(s *stats) {
	atomic.AddInt64(&s.hits, 1)
}

func read(s *stats) int64 {
	return s.hits // want `field hits is accessed with sync/atomic elsewhere .*; plain access races with it`
}

func readAtomic(s *stats) int64 {
	return atomic.LoadInt64(&s.hits)
}

func plainOnly(s *stats) int64 {
	return s.misses // misses is never touched atomically
}

var ready int32

func set() { atomic.StoreInt32(&ready, 1) }

func peek() bool {
	return ready == 1 // want `variable ready is accessed with sync/atomic elsewhere .*; plain access races with it`
}

// misaligned: under GOARCH=386 layout int32 packs seq at offset 4, so a
// 64-bit atomic access faults there.
type misaligned struct {
	flag int32
	seq  uint64 // want `field seq is at offset 4 under 32-bit layout; 64-bit sync/atomic access requires 8-byte alignment \(move it to the front of the struct or use atomic.Uint64\)`
}

func tick(m *misaligned) {
	atomic.AddUint64(&m.seq, 1)
}

// wrapped: the atomic.Int64-style wrapper types carry their own
// alignment and privacy guarantees; nothing to report.
var total atomic.Int64

func wrapped() int64 {
	total.Add(1)
	return total.Load()
}
