package atomicmix_test

import (
	"testing"

	"rackjoin/internal/analyzers/atomicmix"
	"rackjoin/internal/analyzers/vettest"
)

func TestAnalyzer(t *testing.T) {
	vettest.Run(t, "testdata", atomicmix.Analyzer, "a")
}
