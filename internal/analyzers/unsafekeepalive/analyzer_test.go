package unsafekeepalive_test

import (
	"testing"

	"rackjoin/internal/analyzers/unsafekeepalive"
	"rackjoin/internal/analyzers/vettest"
)

func TestAnalyzer(t *testing.T) {
	vettest.Run(t, "testdata", unsafekeepalive.Analyzer, "a")
}
