// Package a exercises the unsafekeepalive analyzer.
package a

import (
	"reflect"
	"unsafe"
)

var data = []byte{1, 2, 3}

func stored() byte {
	p := unsafe.Pointer(&data[0])
	u := uintptr(p) + 1    // want `uintptr variable "u" holds a value derived from unsafe.Pointer`
	q := unsafe.Pointer(u) // want `unsafe.Pointer reconstructed from stored uintptr "u"`
	return *(*byte)(q)
}

func declared() {
	p := unsafe.Pointer(&data[0])
	var u uintptr = uintptr(p) // want `uintptr variable "u" holds a value derived from unsafe.Pointer`
	_ = u
}

// single completes the pointer arithmetic within one expression, which
// is the legal unsafeptr pattern: no uintptr ever hits a variable.
func single() byte {
	p := unsafe.Pointer(&data[0])
	q := unsafe.Pointer(uintptr(p) + 1)
	return *(*byte)(q)
}

func sliceHeader(b []byte) uintptr {
	h := (*reflect.SliceHeader)(unsafe.Pointer(&b)) // want `reflect.SliceHeader does not keep the backing array alive`
	return h.Data
}

func stringHeader(s string) uintptr {
	h := (*reflect.StringHeader)(unsafe.Pointer(&s)) // want `reflect.StringHeader does not keep the backing array alive`
	return h.Data
}

// modern is what the headers should be instead.
func modern(p *byte, n int) []byte {
	return unsafe.Slice(p, n)
}
