// Package unsafekeepalive polices the unsafe.Pointer idioms of the
// word-store kernels (internal/radix/wc_fast.go,
// internal/relation/wordcopy.go — DESIGN.md §8): derived pointers must
// stay typed as unsafe.Pointer so the GC keeps the backing slice alive
// and can update the pointer if it ever moves objects. The moment a
// pointer is parked in a uintptr variable it becomes an untracked
// integer — the backing object may be collected or moved between that
// statement and the next, which is exactly what -d=checkptr catches
// dynamically (the `make checkptr` target backs this pass at run time).
//
// Rules, mirroring the unsafe.Pointer conversion rules that go vet's
// unsafeptr check enforces dynamically:
//
//  1. no variable of type uintptr may hold a value derived from an
//     unsafe.Pointer (uintptr arithmetic must complete within a single
//     expression);
//  2. unsafe.Pointer must not be reconstructed from a stored uintptr
//     variable;
//  3. reflect.SliceHeader/StringHeader are banned outright — their
//     Data field has the same no-keepalive problem; unsafe.Slice and
//     unsafe.SliceData replaced them.
package unsafekeepalive

import (
	"go/ast"
	"go/types"

	"rackjoin/internal/analyzers/rackvet"
)

// Analyzer is the unsafekeepalive pass.
var Analyzer = &rackvet.Analyzer{
	Name: "unsafekeepalive",
	Doc:  "check that unsafe.Pointer derivations keep their backing objects alive (no uintptr round-trips, no reflect headers)",
	Run:  run,
}

func run(pass *rackvet.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					checkUintptrBinding(pass, n.Lhs[i], rhs)
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if i >= len(n.Names) {
						break
					}
					checkUintptrBinding(pass, n.Names[i], v)
				}
			case *ast.CallExpr:
				checkPointerFromUintptr(pass, n)
			case *ast.SelectorExpr:
				if obj := info.Uses[n.Sel]; obj != nil && rackvet.PkgPathIs(obj, "reflect") {
					if obj.Name() == "SliceHeader" || obj.Name() == "StringHeader" {
						pass.Reportf(n.Pos(), "reflect.%s does not keep the backing array alive; use unsafe.Slice/unsafe.SliceData", obj.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

func isUintptr(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uintptr
}

func isUnsafePtr(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.UnsafePointer
}

// checkUintptrBinding flags `u := uintptr(unsafe.Pointer(x))` and any
// other binding that parks a pointer-derived value in a uintptr
// variable (rule 1).
func checkUintptrBinding(pass *rackvet.Pass, lhs, rhs ast.Expr) {
	info := pass.TypesInfo
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil || !isUintptr(obj.Type()) {
		return
	}
	if exprDerivesFromPointer(info, rhs) {
		pass.Reportf(lhs.Pos(), "uintptr variable %q holds a value derived from unsafe.Pointer; the GC does not keep the backing object alive through a uintptr (keep it as unsafe.Pointer, e.g. via unsafe.Add)", id.Name)
	}
}

// exprDerivesFromPointer reports whether any subexpression of e has
// unsafe.Pointer type — i.e. e's value encodes a live address.
func exprDerivesFromPointer(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if sub, ok := n.(ast.Expr); ok {
			if tv, ok := info.Types[sub]; ok && tv.Type != nil && isUnsafePtr(tv.Type) {
				found = true
			}
		}
		return true
	})
	return found
}

// checkPointerFromUintptr flags unsafe.Pointer(u) where u involves a
// stored uintptr variable (rule 2). The single-expression form
// unsafe.Pointer(uintptr(p) + off) contains no uintptr-typed variable
// and stays legal.
func checkPointerFromUintptr(pass *rackvet.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if !rackvet.IsConversion(info, call) || len(call.Args) != 1 {
		return
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !isUnsafePtr(tv.Type) {
		return
	}
	arg := call.Args[0]
	if atv, ok := info.Types[arg]; !ok || !isUintptr(atv.Type) {
		return
	}
	var bad *ast.Ident
	ast.Inspect(arg, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && isUintptr(v.Type()) {
				bad = id
			}
		}
		return true
	})
	if bad != nil {
		pass.Reportf(call.Pos(), "unsafe.Pointer reconstructed from stored uintptr %q; the object it pointed to may have been collected or moved (complete pointer arithmetic within one expression)", bad.Name)
	}
}
