package hotalloc_test

import (
	"testing"

	"rackjoin/internal/analyzers/hotalloc"
	"rackjoin/internal/analyzers/vettest"
)

func TestHotAllocStatic(t *testing.T) {
	vettest.Run(t, "testdata", hotalloc.Analyzer, "a")
}
