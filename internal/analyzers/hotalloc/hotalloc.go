// Package hotalloc guards the kernels. A function annotated
// //rack:hotpath (scatter/probe/recv/scheduler inner loops) promises to
// run allocation-free per element; a heap allocation slipped into one
// shows up as a GC-driven cliff in the end-to-end numbers long after
// the offending diff merged. The pass fails the build instead:
//
//   - compiler escape analysis: the driver runs
//     `go build -gcflags=-m=1` and feeds the parsed "escapes to heap" /
//     "moved to heap" diagnostics in via SetEscapes; any such line
//     inside a hotpath function is reported. The Go build cache replays
//     compiler diagnostics on cache hits, so warm CI runs pay nothing.
//   - interface conversions: a concrete value passed to an interface
//     parameter (the fmt.Sprintf shape) boxes on every call.
//   - closure captures: a func literal capturing locals allocates its
//     environment; in a per-element loop that is one object per call.
//
// The static checks run even when no escape facts are loaded (fixture
// tests, editors); the escape check is the ground truth the CI leg and
// the canary test exercise end to end.
package hotalloc

import (
	"bufio"
	"bytes"
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"rackjoin/internal/analyzers/rackvet"
)

// Analyzer is the hotalloc pass.
var Analyzer = &rackvet.Analyzer{
	Name: "hotalloc",
	Doc:  "//rack:hotpath functions must not heap-allocate, box into interfaces, or capture closures",
	Run:  run,
}

// Escapes maps absolute file path → line → compiler escape messages.
type Escapes map[string]map[int][]string

var escapes Escapes

// SetEscapes installs compiler escape-analysis facts for subsequent
// runs of the pass. Pass nil to clear (static checks only).
func SetEscapes(e Escapes) { escapes = e }

// ParseEscapes extracts heap-escape diagnostics from the output of
// `go build -gcflags=-m=1`, run with dir as working directory (compiler
// paths are relative to it). Inlining and param-leak chatter is
// dropped; only allocation sites are kept.
func ParseEscapes(dir string, output []byte) Escapes {
	esc := make(Escapes)
	sc := bufio.NewScanner(bytes.NewReader(output))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		// path.go:LINE:COL: message
		parts := strings.SplitN(line, ":", 4)
		if len(parts) < 4 {
			continue
		}
		ln, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		path := parts[0]
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		if esc[path] == nil {
			esc[path] = make(map[int][]string)
		}
		msg := strings.TrimSpace(parts[3])
		esc[path][ln] = append(esc[path][ln], msg)
	}
	return esc
}

// IsHotpath reports whether decl carries the //rack:hotpath directive.
func IsHotpath(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), "//rack:hotpath") {
			return true
		}
	}
	return false
}

func run(pass *rackvet.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || !IsHotpath(decl) {
				continue
			}
			checkStatic(pass, decl)
			checkEscapes(pass, decl)
		}
	}
	return nil
}

// checkStatic reports interface boxing at call arguments and closures
// capturing variables from the enclosing function.
func checkStatic(pass *rackvet.Pass, decl *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkBoxing(pass, n)
		case *ast.FuncLit:
			if caps := captured(info, decl, n); len(caps) > 0 {
				pass.Reportf(n.Pos(), "closure in hotpath function %s captures %s (allocates its environment)",
					decl.Name.Name, strings.Join(caps, ", "))
			}
			return false // captures inside nested literals attributed to the outermost
		}
		return true
	})
}

// checkBoxing flags concrete values passed to interface parameters.
func checkBoxing(pass *rackvet.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if rackvet.IsConversion(info, call) {
		return
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // builtin (len, append, close)
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || !types.IsInterface(pt) || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "%s converted to interface %s in hotpath (boxes on every call)",
			at.String(), pt.String())
	}
}

// captured lists (sorted, deduplicated) names of variables the literal
// lit uses that are declared in decl but outside lit.
func captured(info *types.Info, decl *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos >= decl.Pos() && pos < decl.End() && (pos < lit.Pos() || pos >= lit.End()) {
			seen[v.Name()] = true
		}
		return true
	})
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// checkEscapes reports compiler-observed heap allocations inside decl.
func checkEscapes(pass *rackvet.Pass, decl *ast.FuncDecl) {
	if escapes == nil {
		return
	}
	tf := pass.Fset.File(decl.Pos())
	if tf == nil {
		return
	}
	byLine := escapes[tf.Name()]
	if byLine == nil {
		return
	}
	start := tf.Line(decl.Body.Pos())
	end := tf.Line(decl.Body.End())
	lines := make([]int, 0, 4)
	for ln := range byLine {
		if ln >= start && ln <= end {
			lines = append(lines, ln)
		}
	}
	sort.Ints(lines)
	for _, ln := range lines {
		for _, msg := range byLine[ln] {
			pass.Reportf(tf.LineStart(ln), "heap allocation in hotpath function %s: %s", decl.Name.Name, msg)
		}
	}
}
