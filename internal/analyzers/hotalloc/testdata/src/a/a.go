// Package a exercises hotalloc's static checks: interface boxing at
// call arguments and closures capturing locals, inside //rack:hotpath
// functions only. (The escape-analysis check needs the real compiler
// and is covered by the canary test, not this fixture.)
package a

func logf(format string, args ...any) {}

func observe(v any) {}

//rack:hotpath
func hotBox(v int) {
	logf("v=%d", v) // want `int converted to interface any in hotpath`
}

//rack:hotpath
func hotBoxDirect(v uint64) {
	observe(v) // want `uint64 converted to interface any in hotpath`
}

//rack:hotpath
func hotClosure(xs []int) int {
	total := 0
	add := func(x int) { total += x } // want `closure in hotpath function hotClosure captures total`
	for _, x := range xs {
		add(x)
	}
	return total
}

// Passing an []any through with ... does not box per element.
//
//rack:hotpath
func hotPassthrough(args []any) {
	logf("x", args...)
}

// Interface to interface is not a conversion the compiler boxes.
//
//rack:hotpath
func hotIface(e error) {
	observe(e)
}

// nil needs no box.
//
//rack:hotpath
func hotNil() {
	observe(nil)
}

// A closure that captures nothing costs nothing per call.
//
//rack:hotpath
func hotFreeClosure(xs []int) {
	f := func(x int) int { return x * 2 }
	for i, x := range xs {
		xs[i] = f(x)
	}
}

// Unannotated: the same sins go unreported here.
func coldBox(v int) {
	logf("v=%d", v)
	total := 0
	add := func(x int) { total += x }
	add(v)
}
