package hotalloc_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"rackjoin/internal/analyzers/hotalloc"
	"rackjoin/internal/analyzers/load"
	"rackjoin/internal/analyzers/rackvet"
)

// TestCanarySeededRegression is the end-to-end guarantee behind the CI
// leg: seed a heap allocation into a //rack:hotpath function, run the
// real compiler's escape analysis, and assert the pass reports it. If
// this test passes, a regression in the repo's kernels cannot slip
// through the rackvet leg silently.
func TestCanarySeededRegression(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module canary\n\ngo 1.22\n")
	write("hot.go", `package canary

type row struct{ k, v uint64 }

//rack:hotpath
func Scatter(dst []*row, k, v uint64) {
	dst[0] = &row{k, v}
}
`)

	cmd := exec.Command("go", "build", "-gcflags=-m=1", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	esc := hotalloc.ParseEscapes(dir, out)
	if len(esc) == 0 {
		t.Fatalf("no escape diagnostics parsed from compiler output:\n%s", out)
	}

	pkgs, err := load.Load(dir, ".")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]

	hotalloc.SetEscapes(esc)
	defer hotalloc.SetEscapes(nil)
	var got []string
	pass := &rackvet.Pass{
		Analyzer:  hotalloc.Analyzer,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Sizes:     pkg.Sizes,
		Report: func(d rackvet.Diagnostic) {
			got = append(got, d.Message)
		},
	}
	if err := hotalloc.Analyzer.Run(pass); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, msg := range got {
		if strings.Contains(msg, "heap allocation in hotpath function Scatter") {
			found = true
		}
	}
	if !found {
		t.Fatalf("seeded regression not caught; findings: %q", got)
	}
}
