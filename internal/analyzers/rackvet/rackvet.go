// Package rackvet is the core of the repo's static-analysis suite: a
// minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface (Analyzer, Pass, Diagnostic).
//
// The build environment has no module proxy access, so the suite is
// built on the standard library alone (go/ast, go/types, go/importer).
// The API deliberately mirrors go/analysis closely enough that the
// passes port over mechanically should x/tools become available: an
// Analyzer is a named check with a Run function, a Pass hands it one
// type-checked package, and diagnostics are (position, message) pairs.
package rackvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string

	// Doc is the documentation for the analyzer. The first line is its
	// one-line summary.
	Doc string

	// Run applies the analyzer to a single package. It must report
	// findings via Pass.Report/Reportf; the error return is for
	// analyzer-internal failures only, not findings.
	Run func(*Pass) error
}

// A Pass provides one type-checked package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Sizes     types.Sizes

	// Report delivers one diagnostic. The driver and the fixture runner
	// install their own collectors here.
	Report func(Diagnostic)
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Callee returns the static callee of call as a *types.Func (function,
// method, or nil when the call is dynamic, a conversion, or a builtin).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: pkg.Fn.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsConversion reports whether call is a type conversion rather than a
// function or method call.
func IsConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// NamedType returns the named type of t, unwrapping one level of
// pointer and any alias, or nil.
func NamedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}

// ReceiverNamed returns the named type of fn's receiver (unwrapping a
// pointer receiver), or nil if fn is not a method.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return NamedType(sig.Recv().Type())
}

// PkgPathIs reports whether obj belongs to the package with the given
// import path.
func PkgPathIs(obj types.Object, path string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path
}
