package rackvet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func TestSuppressions(t *testing.T) {
	const src = `package p

func a() int { return 1 } //rackvet:ignore lockorder held across the call by design

//rackvet:ignore goroutinelife,hotalloc fires once at startup
func b() {}

//rackvet:ignore spanend
func c() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSuppressions(fset, []*ast.File{f})

	at := func(line int) token.Position { return token.Position{Filename: "p.go", Line: line} }
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{3, "lockorder", true},       // trailing comment, own line
		{3, "goroutinelife", false},  // other pass not covered
		{5, "goroutinelife", true},   // standalone, own line
		{6, "goroutinelife", true},   // standalone covers the next line
		{6, "hotalloc", true},        // comma list
		{7, "goroutinelife", false},  // two lines below: not covered
		{9, "spanend", false},        // no reason given: inert
		{4, "lockorder", true},       // trailing comment also covers next line
	}
	for _, c := range cases {
		if got := s.Suppressed(at(c.line), c.analyzer); got != c.want {
			t.Errorf("Suppressed(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

func TestBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rackvet.baseline")
	const content = `# tolerated until the buffer pool refactor lands
buflifecycle: internal/core/results.go: buffer "b" may leak

`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
	if !b.Has("buflifecycle", "internal/core/results.go", `buffer "b" may leak`) {
		t.Error("baselined finding not matched")
	}
	if b.Has("spanend", "internal/core/results.go", `buffer "b" may leak`) {
		t.Error("different analyzer matched")
	}

	empty, err := LoadBaseline(filepath.Join(dir, "missing"))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Error("missing baseline file should be empty, not an error")
	}
}
