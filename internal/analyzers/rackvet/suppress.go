// suppress.go implements the two escape hatches that let the suite be
// a required CI leg without ever being argued with ad hoc:
//
//   - //rackvet:ignore <pass> <reason> — a source comment suppressing
//     that pass's findings on its own line and the next one. The reason
//     is mandatory; a bare ignore is inert, so every suppression in the
//     tree documents itself.
//   - a baseline file — findings recorded as "analyzer: path: message"
//     (no line numbers, so it survives unrelated edits) that are
//     tolerated but not fixed yet. The repo's checked-in baseline is
//     empty; the mechanism exists so adopting a new pass never requires
//     fixing the world in the same change.
package rackvet

import (
	"bufio"
	"go/ast"
	"go/token"
	"os"
	"strings"
)

// ignorePrefix starts a suppression comment. The directive form (no
// space after //) mirrors //go:build and //rack:hotpath.
const ignorePrefix = "//rackvet:ignore "

// Suppressions indexes //rackvet:ignore comments by file and line.
type Suppressions struct {
	// byLine maps filename → line → analyzer names suppressed there.
	byLine map[string]map[int][]string
}

// NewSuppressions scans the comments of files for well-formed ignore
// directives. A directive needs an analyzer name AND a reason;
// anything less is inert by design.
func NewSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no reason given: inert
				}
				pos := fset.Position(c.Pos())
				m := s.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					s.byLine[pos.Filename] = m
				}
				// Cover the comment's own line (trailing comment) and
				// the next (standalone comment above the finding).
				for _, name := range strings.Split(fields[0], ",") {
					m[pos.Line] = append(m[pos.Line], name)
					m[pos.Line+1] = append(m[pos.Line+1], name)
				}
			}
		}
	}
	return s
}

// Suppressed reports whether a finding from analyzer at pos is covered
// by an ignore directive.
func (s *Suppressions) Suppressed(pos token.Position, analyzer string) bool {
	for _, name := range s.byLine[pos.Filename][pos.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}

// Baseline is a set of tolerated findings keyed by their
// line-number-free signature.
type Baseline struct {
	keys map[string]bool
}

// BaselineKey is the drift-tolerant signature of a finding: the
// analyzer, the file (as printed, normally repo-relative), and the
// message — no line number, so unrelated edits above the finding do
// not invalidate the entry.
func BaselineKey(analyzer, file, message string) string {
	return analyzer + ": " + file + ": " + message
}

// LoadBaseline reads a baseline file: one BaselineKey per line, blank
// lines and #-comments skipped. A missing file is an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{keys: make(map[string]bool)}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b.keys[line] = true
	}
	return b, sc.Err()
}

// Has reports whether the finding signature is baselined.
func (b *Baseline) Has(analyzer, file, message string) bool {
	return b.keys[BaselineKey(analyzer, file, message)]
}

// Len returns the number of baseline entries.
func (b *Baseline) Len() int { return len(b.keys) }
