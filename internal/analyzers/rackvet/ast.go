package rackvet

import (
	"go/ast"
	"go/types"
)

// InspectShallow walks the AST rooted at n like ast.Inspect but does
// not descend into nested function literals: their statements belong to
// a different control-flow graph and are analyzed as their own
// function.
func InspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// Parents returns a child→parent map for every node under root.
func Parents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// MentionsObject reports whether obj is referenced anywhere under n,
// not counting identifiers that are plain store targets (the x of
// `x = ...`, which overwrites rather than uses the value). Function
// literals under n are included: capturing a value in a closure is a
// use.
func MentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	stores := make(map[*ast.Ident]bool)
	ast.Inspect(n, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					stores[id] = true
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && !stores[id] {
			if info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// StoresTo reports whether n is an assignment to obj (obj appears as a
// plain identifier store target at the top level of the assignment).
func StoresTo(info *types.Info, n ast.Node, obj types.Object) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				return true
			}
		}
	}
	return false
}

// IsIdentFor reports whether e is (after stripping parens) an
// identifier resolving to obj.
func IsIdentFor(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// InErrCheck reports whether ret sits inside an if statement whose
// condition mentions errObj — the `if err != nil { return ... }` shape
// that pairs with the acquire whose error is errObj.
func InErrCheck(info *types.Info, parents map[ast.Node]ast.Node, ret *ast.ReturnStmt, errObj types.Object) bool {
	if errObj == nil {
		return false
	}
	for n := ast.Node(ret); n != nil; n = parents[n] {
		if iff, ok := n.(*ast.IfStmt); ok && iff.Cond != nil {
			if MentionsObject(info, iff.Cond, errObj) {
				return true
			}
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if _, ok := n.(*ast.FuncDecl); ok {
			return false
		}
	}
	return false
}
