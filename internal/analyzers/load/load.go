// Package load turns `go list` patterns into parsed, type-checked
// packages without golang.org/x/tools/go/packages.
//
// It shells out to `go list -e -export -json -deps`, which compiles (or
// pulls from the build cache) export data for every dependency, then
// parses the target packages from source and type-checks them with
// go/importer reading those export files. This works fully offline: the
// only inputs are the module tree and the Go build cache.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one parsed and type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Sizes      types.Sizes
}

// Entry is the subset of `go list -json` output the loader needs.
type Entry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// List runs `go list` in dir and returns the raw entries for patterns,
// including the dependency closure with export-data paths.
func List(dir string, patterns ...string) ([]Entry, error) {
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var entries []Entry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e Entry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// ExportImporter builds a types.Importer that resolves imports from the
// export files recorded in entries (the gc importer with a lookup
// function into the build cache).
func ExportImporter(fset *token.FileSet, entries []Entry) types.Importer {
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// HostSizes returns the std sizes of the host gc toolchain target.
func HostSizes() types.Sizes {
	return types.SizesFor("gc", build.Default.GOARCH)
}

// Load lists, parses, and type-checks the target packages matched by
// patterns, rooted at dir. Test files are not included (GoFiles only):
// the suite checks shipped code, not fixtures or tests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, entries)
	sizes := HostSizes()

	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || e.Standard {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("%s: %s", e.ImportPath, e.Error.Err)
		}
		if len(e.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(e.GoFiles))
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp, Sizes: sizes}
		tpkg, err := conf.Check(e.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-check %s: %v", e.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: e.ImportPath,
			Dir:        e.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
			Sizes:      sizes,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}
