package vettest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"rackjoin/internal/analyzers/rackvet"
)

// parseFixture parses src and returns the pieces diffWants needs, plus
// a helper fabricating a diagnostic at the start of a 1-based line.
func parseFixture(t *testing.T, src string) (*token.FileSet, []*ast.File, func(line int, msg string) rackvet.Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "w.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tf := fset.File(f.Pos())
	diag := func(line int, msg string) rackvet.Diagnostic {
		return rackvet.Diagnostic{Pos: tf.LineStart(line), Message: msg}
	}
	return fset, []*ast.File{f}, diag
}

func TestWantLiteralAndRegex(t *testing.T) {
	const src = `package w

func a() {} // want "literal part"
func b() {} // want ` + "`^anchored exactly$`" + `
`
	fset, files, diag := parseFixture(t, src)
	probs := diffWants(fset, files, []rackvet.Diagnostic{
		diag(3, "surrounding literal part of a message"),
		diag(4, "anchored exactly"),
	})
	if len(probs) != 0 {
		t.Errorf("unexpected problems: %v", probs)
	}

	// The anchored regex must reject a longer message.
	probs = diffWants(fset, files, []rackvet.Diagnostic{
		diag(3, "surrounding literal part of a message"),
		diag(4, "anchored exactly, but longer"),
	})
	if len(probs) != 2 { // unexpected diagnostic + unmatched want
		t.Errorf("want 2 problems, got %v", probs)
	}
}

func TestWantMultipleMarkersOneLine(t *testing.T) {
	const src = `package w

func a() {} // want "first" // want "second"
func b() {} // want "third" ` + "`four.h`" + `
`
	fset, files, diag := parseFixture(t, src)
	probs := diffWants(fset, files, []rackvet.Diagnostic{
		diag(3, "the first finding"),
		diag(3, "the second finding"),
		diag(4, "the third finding"),
		diag(4, "the fourth finding"),
	})
	if len(probs) != 0 {
		t.Errorf("unexpected problems: %v", probs)
	}
}

func TestWantMismatches(t *testing.T) {
	const src = `package w

func a() {} // want "expected"
func b() {}
`
	fset, files, diag := parseFixture(t, src)
	probs := diffWants(fset, files, []rackvet.Diagnostic{
		diag(4, "stray finding"),
	})
	if len(probs) != 2 {
		t.Fatalf("want 2 problems, got %v", probs)
	}
	if !strings.Contains(probs[0], "unexpected diagnostic: stray finding") {
		t.Errorf("missing unexpected-diagnostic problem: %v", probs)
	}
	if !strings.Contains(probs[1], `no diagnostic matching "expected"`) {
		t.Errorf("missing unmatched-want problem: %v", probs)
	}
}

func TestWantMalformed(t *testing.T) {
	const src = `package w

func a() {} // want unquoted
`
	fset, files, _ := parseFixture(t, src)
	probs := diffWants(fset, files, nil)
	if len(probs) != 1 || !strings.Contains(probs[0], "malformed want comment") {
		t.Errorf("want one malformed-comment problem, got %v", probs)
	}
}

func TestWantNonMarkerComments(t *testing.T) {
	const src = `package w

// wanted: this is prose, not a marker.
func a() {}
`
	fset, files, _ := parseFixture(t, src)
	if probs := diffWants(fset, files, nil); len(probs) != 0 {
		t.Errorf("prose comment treated as marker: %v", probs)
	}
}

// TestRunEndToEnd drives the public Run entry point with a toy
// analyzer that reports twice per call of trigger(), pinning the
// fixture-loading path and multi-marker matching together.
func TestRunEndToEnd(t *testing.T) {
	a := &rackvet.Analyzer{
		Name: "toy",
		Doc:  "reports two findings per trigger() call",
		Run: func(pass *rackvet.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "trigger" {
						pass.Reportf(call.Pos(), "toy: first finding")
						pass.Reportf(call.Pos(), "toy: second finding")
					}
					return true
				})
			}
			return nil
		},
	}
	Run(t, "testdata", a, "w")
}
