// Package vettest runs an analyzer over golden fixtures, in the style
// of golang.org/x/tools/go/analysis/analysistest (which the offline
// build cannot vendor).
//
// Fixtures live in a GOPATH-shaped tree: testdata/src/<importpath>/*.go.
// Expected diagnostics are written as trailing comments on the line
// they occur:
//
//	pool.acquire() // want `buffer .* may leak`
//
// Each `want` takes one or more quoted regular expressions; every
// diagnostic must match a want on its line and every want must be
// matched by a diagnostic, or the test fails. Lines without a want
// comment assert the absence of diagnostics.
//
// Fixture packages may import each other (stub versions of repo
// packages such as rackjoin/internal/metrics live in the same tree) and
// the standard library; stdlib imports are resolved from compiled
// export data via `go list -export`.
package vettest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"rackjoin/internal/analyzers/load"
	"rackjoin/internal/analyzers/rackvet"
)

// Run analyzes each fixture package path under testdata/src with a and
// checks its diagnostics against the want comments.
func Run(t *testing.T, testdata string, a *rackvet.Analyzer, paths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	ld, err := newFixtureLoader(srcRoot)
	if err != nil {
		t.Fatalf("vettest: %v", err)
	}
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("vettest: fixture %s: %v", path, err)
		}
		var diags []rackvet.Diagnostic
		pass := &rackvet.Pass{
			Analyzer:  a,
			Fset:      ld.fset,
			Files:     pkg.files,
			Pkg:       pkg.types,
			TypesInfo: pkg.info,
			Sizes:     load.HostSizes(),
			Report:    func(d rackvet.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("vettest: %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, ld.fset, pkg.files, diags)
	}
}

// fixturePkg is one parsed and type-checked fixture package.
type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// fixtureLoader type-checks fixture packages, resolving imports from
// the fixture tree first and export data otherwise.
type fixtureLoader struct {
	srcRoot string
	fset    *token.FileSet
	memo    map[string]*fixturePkg
	exports types.Importer
}

// exportCache memoizes the `go list -export` run per external import
// set, shared across tests in one process.
var exportCache sync.Map // key string -> []load.Entry

func newFixtureLoader(srcRoot string) (*fixtureLoader, error) {
	ld := &fixtureLoader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		memo:    make(map[string]*fixturePkg),
	}
	ext, err := ld.externalImports()
	if err != nil {
		return nil, err
	}
	if len(ext) > 0 {
		key := strings.Join(ext, ",")
		entries, ok := exportCache.Load(key)
		if !ok {
			es, err := load.List(srcRoot, ext...)
			if err != nil {
				return nil, err
			}
			entries, _ = exportCache.LoadOrStore(key, es)
		}
		ld.exports = load.ExportImporter(ld.fset, entries.([]load.Entry))
	}
	return ld, nil
}

// externalImports scans every fixture file for imports that do not
// resolve inside the fixture tree.
func (ld *fixtureLoader) externalImports() ([]string, error) {
	ext := make(map[string]bool)
	err := filepath.WalkDir(ld.srcRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		f, err := parser.ParseFile(ld.fset, p, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "unsafe" {
				continue
			}
			if dir, err := os.Stat(filepath.Join(ld.srcRoot, path)); err == nil && dir.IsDir() {
				continue
			}
			ext[path] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ext))
	for p := range ext {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// Import implements types.Importer over the fixture tree + export data.
func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, err := os.Stat(filepath.Join(ld.srcRoot, path)); err == nil && dir.IsDir() {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	if ld.exports == nil {
		return nil, fmt.Errorf("vettest: no export data loaded, cannot import %q", path)
	}
	return ld.exports.Import(path)
}

// load parses and type-checks the fixture package at path (memoized).
func (ld *fixtureLoader) load(path string) (*fixturePkg, error) {
	if pkg, ok := ld.memo[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.srcRoot, path)
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range names {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: ld, Sizes: load.HostSizes()}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &fixturePkg{files: files, types: tpkg, info: info}
	ld.memo[path] = pkg
	return pkg, nil
}

// expectation is one want regexp awaiting a matching diagnostic.
type expectation struct {
	pos     token.Position // of the want comment
	re      *regexp.Regexp
	matched bool
}

// checkWants compares diagnostics against the fixture's want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []rackvet.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*expectation) // "file:line" -> wants
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/"), "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Errorf("%s: malformed want comment: %q", pos, text)
						break
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: malformed want pattern %s: %v", pos, q, err)
						break
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						break
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &expectation{pos: pos, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", w.pos, w.re)
			}
		}
	}
}
