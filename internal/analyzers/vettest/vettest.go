// Package vettest runs an analyzer over golden fixtures, in the style
// of golang.org/x/tools/go/analysis/analysistest (which the offline
// build cannot vendor).
//
// Fixtures live in a GOPATH-shaped tree: testdata/src/<importpath>/*.go.
// Expected diagnostics are written as trailing comments on the line
// they occur:
//
//	pool.acquire() // want `buffer .* may leak`
//
// Each `want` takes one or more quoted regular expressions; every
// diagnostic must match a want on its line and every want must be
// matched by a diagnostic, or the test fails. Lines without a want
// comment assert the absence of diagnostics.
//
// Fixture packages may import each other (stub versions of repo
// packages such as rackjoin/internal/metrics live in the same tree) and
// the standard library; stdlib imports are resolved from compiled
// export data via `go list -export`.
package vettest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"rackjoin/internal/analyzers/load"
	"rackjoin/internal/analyzers/rackvet"
)

// Run analyzes each fixture package path under testdata/src with a and
// checks its diagnostics against the want comments.
func Run(t *testing.T, testdata string, a *rackvet.Analyzer, paths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	ld, err := newFixtureLoader(srcRoot)
	if err != nil {
		t.Fatalf("vettest: %v", err)
	}
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("vettest: fixture %s: %v", path, err)
		}
		var diags []rackvet.Diagnostic
		pass := &rackvet.Pass{
			Analyzer:  a,
			Fset:      ld.fset,
			Files:     pkg.files,
			Pkg:       pkg.types,
			TypesInfo: pkg.info,
			Sizes:     load.HostSizes(),
			Report:    func(d rackvet.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("vettest: %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, ld.fset, pkg.files, diags)
	}
}

// fixturePkg is one parsed and type-checked fixture package.
type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// fixtureLoader type-checks fixture packages, resolving imports from
// the fixture tree first and export data otherwise.
type fixtureLoader struct {
	srcRoot string
	fset    *token.FileSet
	memo    map[string]*fixturePkg
	exports types.Importer
}

// exportCache memoizes the `go list -export` run per external import
// set, shared across tests in one process.
var exportCache sync.Map // key string -> []load.Entry

func newFixtureLoader(srcRoot string) (*fixtureLoader, error) {
	ld := &fixtureLoader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		memo:    make(map[string]*fixturePkg),
	}
	ext, err := ld.externalImports()
	if err != nil {
		return nil, err
	}
	if len(ext) > 0 {
		key := strings.Join(ext, ",")
		entries, ok := exportCache.Load(key)
		if !ok {
			es, err := load.List(srcRoot, ext...)
			if err != nil {
				return nil, err
			}
			entries, _ = exportCache.LoadOrStore(key, es)
		}
		ld.exports = load.ExportImporter(ld.fset, entries.([]load.Entry))
	}
	return ld, nil
}

// externalImports scans every fixture file for imports that do not
// resolve inside the fixture tree.
func (ld *fixtureLoader) externalImports() ([]string, error) {
	ext := make(map[string]bool)
	err := filepath.WalkDir(ld.srcRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		f, err := parser.ParseFile(ld.fset, p, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "unsafe" {
				continue
			}
			if dir, err := os.Stat(filepath.Join(ld.srcRoot, path)); err == nil && dir.IsDir() {
				continue
			}
			ext[path] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ext))
	for p := range ext {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// Import implements types.Importer over the fixture tree + export data.
func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, err := os.Stat(filepath.Join(ld.srcRoot, path)); err == nil && dir.IsDir() {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	if ld.exports == nil {
		return nil, fmt.Errorf("vettest: no export data loaded, cannot import %q", path)
	}
	return ld.exports.Import(path)
}

// load parses and type-checks the fixture package at path (memoized).
func (ld *fixtureLoader) load(path string) (*fixturePkg, error) {
	if pkg, ok := ld.memo[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.srcRoot, path)
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range names {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: ld, Sizes: load.HostSizes()}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &fixturePkg{files: files, types: tpkg, info: info}
	ld.memo[path] = pkg
	return pkg, nil
}

// expectation is one want pattern awaiting a matching diagnostic. A
// backquoted pattern is a regular expression (anchor with ^ and $ to
// pin the whole message); a double-quoted pattern is a literal
// substring.
type expectation struct {
	pos     token.Position // of the want comment
	desc    string         // the pattern as written, for failure output
	match   func(string) bool
	matched bool
}

// parseWants extracts the expectations of one comment's text. A
// comment holds one or more `want` markers, each with one or more
// quoted patterns:
//
//	x() // want "a" `b.*c`
//	y() // want "a" // want "b"
//
// Both markers on the second line attach to the same source line, the
// shape needed when two passes (or two callbacks of one pass) hit it.
func parseWants(pos token.Position, text string) ([]*expectation, []string) {
	var exps []*expectation
	var problems []string
	rest, ok := cutMarker(text)
	if !ok {
		return nil, nil
	}
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: malformed want comment: %q", pos, text))
			break
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: malformed want pattern %s: %v", pos, q, err))
			break
		}
		var match func(string) bool
		if q[0] == '`' {
			re, err := regexp.Compile(pat)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: bad want regexp %q: %v", pos, pat, err))
				break
			}
			match = re.MatchString
		} else {
			match = func(msg string) bool { return strings.Contains(msg, pat) }
		}
		exps = append(exps, &expectation{pos: pos, desc: q, match: match})
		rest = strings.TrimSpace(rest[len(q):])
		// A further `// want ...` marker continues the same line.
		if r, ok := cutMarker(rest); ok {
			rest = r
		}
	}
	return exps, problems
}

// cutMarker strips a leading comment opener and `want` keyword,
// returning the remainder and whether a marker was present.
func cutMarker(text string) (string, bool) {
	text = strings.TrimSpace(text)
	text = strings.TrimSuffix(text, "*/")
	for _, open := range []string{"//", "/*"} {
		if r, ok := strings.CutPrefix(text, open); ok {
			text = strings.TrimSpace(r)
			break
		}
	}
	if r, ok := strings.CutPrefix(text, "want "); ok {
		return strings.TrimSpace(r), true
	}
	return text, false
}

// diffWants compares diagnostics against want comments and returns the
// mismatches, one problem per line. Exposed to the runner's own tests;
// Run reports each problem as a test error.
func diffWants(fset *token.FileSet, files []*ast.File, diags []rackvet.Diagnostic) []string {
	var problems []string
	wants := make(map[string][]*expectation) // "file:line" -> wants
	var order []string
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				exps, probs := parseWants(pos, c.Text)
				problems = append(problems, probs...)
				if len(exps) == 0 {
					continue
				}
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if wants[key] == nil {
					order = append(order, key)
				}
				wants[key] = append(wants[key], exps...)
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.match(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			problems = append(problems, fmt.Sprintf("%s: unexpected diagnostic: %s", pos, d.Message))
		}
	}
	for _, key := range order {
		for _, w := range wants[key] {
			if !w.matched {
				problems = append(problems, fmt.Sprintf("%s: no diagnostic matching %s", w.pos, w.desc))
			}
		}
	}
	return problems
}

// checkWants compares diagnostics against the fixture's want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []rackvet.Diagnostic) {
	t.Helper()
	for _, p := range diffWants(fset, files, diags) {
		t.Error(p)
	}
}
