// Package w is the fixture for vettest's own end-to-end test: the toy
// analyzer reports twice per trigger() call, matched by two want
// markers on one line.
package w

func trigger() {}

func use() {
	trigger() // want "first finding" // want `second finding`
}
