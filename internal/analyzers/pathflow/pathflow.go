// Package pathflow is the path-sensitivity engine shared by the
// resource-lifecycle analyzers (spanend, buflifecycle). It builds a
// statement-level control-flow graph for one function body and answers
// the question the passes care about: starting from the statement that
// acquired a resource, can execution reach a function exit without
// passing a statement that consumed it?
//
// The graph is deliberately coarse — one node per statement, loops as
// 0-or-more iterations, no value tracking — which is exactly the
// lostcancel/unreachable level of precision: sound for the acquire/
// release idioms this repo uses, with the few known imprecise spots
// (closures, gotos into loops) resolved in the non-reporting direction.
package pathflow

import (
	"go/ast"
	"go/token"
)

// LeakKind classifies where an unconsumed resource escaped.
type LeakKind int

const (
	// LeakReturn: a return statement is reachable with the resource
	// unconsumed.
	LeakReturn LeakKind = iota
	// LeakRedefine: the variable holding the resource is overwritten
	// while the previous value is still unconsumed.
	LeakRedefine
	// LeakFuncEnd: control falls off the end of the function with the
	// resource unconsumed.
	LeakFuncEnd
)

// A Leak is one reachable escape of an unconsumed resource.
type Leak struct {
	Pos  token.Pos
	Kind LeakKind
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	succ   map[ast.Stmt][]ast.Stmt
	labels map[string]ast.Stmt // label -> entry of the labelled statement
	entry  ast.Stmt            // sentinel: function entry
	exit   ast.Stmt            // sentinel: function exit (fall-off end)
	rbrace token.Pos
}

// Entry returns the sentinel start node, for resources owned from
// function entry (e.g. a parameter carrying an acquired buffer).
func (g *Graph) Entry() ast.Stmt { return g.entry }

// Exit returns the sentinel fall-off-the-end node.
func (g *Graph) Exit() ast.Stmt { return g.exit }

// Succs returns the successors of s. The slice is the graph's own; do
// not mutate it.
func (g *Graph) Succs(s ast.Stmt) []ast.Stmt { return g.succ[s] }

// NodeParts returns the parts of s evaluated at s's own CFG node —
// just the condition or tag for compound statements, the statement
// itself for simple ones. Interprocedural walkers use it so events in
// a branch body are attributed to the body's node, not the header's.
func NodeParts(s ast.Stmt) []ast.Node { return nodeParts(s) }

// Contains reports whether s is a node of the graph (i.e. a statement
// the builder visited — anything directly in the body, not nested in a
// function literal).
func (g *Graph) Contains(s ast.Stmt) bool { _, ok := g.succ[s]; return ok }

type builder struct {
	g *Graph
	// gotos are patched once all labels are known.
	gotos []*ast.BranchStmt
	// loop/switch context for break/continue, innermost last.
	breaks    []ctxTarget
	continues []ctxTarget
	// fallthroughTarget is the entry of the next case clause while a
	// clause body is being built.
	fallthroughTarget ast.Stmt
	// pendingLabel is the label of the LabeledStmt currently being
	// entered, claimed by the next loop/switch for labelled branches.
	pendingLabel string
}

type ctxTarget struct {
	label  string
	target ast.Stmt
}

// New builds the control-flow graph of body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{
		succ:   make(map[ast.Stmt][]ast.Stmt),
		labels: make(map[string]ast.Stmt),
		entry:  &ast.EmptyStmt{},
		exit:   &ast.EmptyStmt{},
		rbrace: body.Rbrace,
	}
	b := &builder{g: g}
	first := b.stmts(body.List, g.exit)
	g.succ[g.entry] = []ast.Stmt{first}
	// Patch gotos now that every label has an entry node.
	for _, br := range b.gotos {
		target, ok := g.labels[br.Label.Name]
		if !ok {
			// Malformed or out-of-scope goto: treat as exit so the
			// analysis stays quiet rather than wrong.
			target = g.exit
		}
		g.succ[br] = []ast.Stmt{target}
	}
	return g
}

// edge records s -> t.
func (b *builder) edge(s, t ast.Stmt) {
	b.g.succ[s] = append(b.g.succ[s], t)
}

// node registers s (possibly with no successors yet).
func (b *builder) node(s ast.Stmt) {
	if _, ok := b.g.succ[s]; !ok {
		b.g.succ[s] = nil
	}
}

// stmts wires a statement list, returning its entry node (follow when
// the list is empty).
func (b *builder) stmts(list []ast.Stmt, follow ast.Stmt) ast.Stmt {
	entry := follow
	for i := len(list) - 1; i >= 0; i-- {
		entry = b.stmt(list[i], entry)
	}
	return entry
}

// pushLoop enters a loop context; label is the pending label, if any.
func (b *builder) pushLoop(breakTo, continueTo ast.Stmt) string {
	label := b.pendingLabel
	b.pendingLabel = ""
	b.breaks = append(b.breaks, ctxTarget{label, breakTo})
	b.continues = append(b.continues, ctxTarget{label, continueTo})
	return label
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *builder) pushBreak(breakTo ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	b.breaks = append(b.breaks, ctxTarget{label, breakTo})
}

func (b *builder) popBreak() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

func resolve(ctx []ctxTarget, label string) (ast.Stmt, bool) {
	for i := len(ctx) - 1; i >= 0; i-- {
		if label == "" || ctx[i].label == label {
			return ctx[i].target, true
		}
	}
	return nil, false
}

// stmt wires one statement and returns its entry node.
func (b *builder) stmt(s ast.Stmt, follow ast.Stmt) ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, follow)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		entry := b.stmt(s.Stmt, follow)
		b.pendingLabel = ""
		b.g.labels[s.Label.Name] = entry
		return entry

	case *ast.ReturnStmt:
		b.node(s)
		b.edge(s, b.g.exit)
		return s

	case *ast.BranchStmt:
		b.node(s)
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if t, ok := resolve(b.breaks, label); ok {
				b.edge(s, t)
			} else {
				b.edge(s, b.g.exit)
			}
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if t, ok := resolve(b.continues, label); ok {
				b.edge(s, t)
			} else {
				b.edge(s, b.g.exit)
			}
		case token.GOTO:
			b.gotos = append(b.gotos, s)
		case token.FALLTHROUGH:
			if b.fallthroughTarget != nil {
				b.edge(s, b.fallthroughTarget)
			} else {
				b.edge(s, follow)
			}
		}
		return s

	case *ast.IfStmt:
		b.node(s)
		bodyEntry := b.stmt(s.Body, follow)
		elseEntry := follow
		if s.Else != nil {
			elseEntry = b.stmt(s.Else, follow)
		}
		b.edge(s, bodyEntry)
		b.edge(s, elseEntry)
		if s.Init != nil {
			b.node(s.Init)
			b.edge(s.Init, s)
			return s.Init
		}
		return s

	case *ast.ForStmt:
		b.node(s)
		postEntry := ast.Stmt(s)
		if s.Post != nil {
			postEntry = b.stmt(s.Post, s)
		}
		b.pushLoop(follow, postEntry)
		bodyEntry := b.stmt(s.Body, postEntry)
		b.popLoop()
		b.edge(s, bodyEntry)
		if s.Cond != nil {
			b.edge(s, follow)
		}
		if s.Init != nil {
			b.node(s.Init)
			b.edge(s.Init, s)
			return s.Init
		}
		return s

	case *ast.RangeStmt:
		b.node(s)
		b.pushLoop(follow, s)
		bodyEntry := b.stmt(s.Body, s)
		b.popLoop()
		b.edge(s, bodyEntry)
		b.edge(s, follow)
		return s

	case *ast.SwitchStmt:
		return b.switchStmt(s, s.Init, s.Body, follow, true)

	case *ast.TypeSwitchStmt:
		return b.switchStmt(s, s.Init, s.Body, follow, false)

	case *ast.SelectStmt:
		b.node(s)
		b.pushBreak(follow)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			bodyEntry := b.stmts(cc.Body, follow)
			if cc.Comm != nil {
				bodyEntry = b.stmt(cc.Comm, bodyEntry)
			}
			b.edge(s, bodyEntry)
		}
		b.popBreak()
		if len(s.Body.List) == 0 {
			// select{} blocks forever; no successor.
			return s
		}
		return s

	default:
		// Simple statements: assign, expr, decl, inc/dec, send, defer,
		// go, empty.
		b.node(s)
		if !terminates(s) {
			b.edge(s, follow)
		}
		return s
	}
}

// switchStmt wires an expression or type switch. s is the switch node,
// init its optional init statement, body the clause list.
func (b *builder) switchStmt(s ast.Stmt, init ast.Stmt, body *ast.BlockStmt, follow ast.Stmt, allowFallthrough bool) ast.Stmt {
	b.node(s)
	b.pushBreak(follow)
	hasDefault := false
	// Build clauses in reverse so each knows its fallthrough target.
	next := ast.Stmt(nil)
	entries := make([]ast.Stmt, len(body.List))
	for i := len(body.List) - 1; i >= 0; i-- {
		cc := body.List[i].(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		savedFT := b.fallthroughTarget
		if allowFallthrough {
			b.fallthroughTarget = next
		}
		entries[i] = b.stmts(cc.Body, follow)
		b.fallthroughTarget = savedFT
		next = entries[i]
	}
	b.popBreak()
	for _, e := range entries {
		b.edge(s, e)
	}
	if !hasDefault {
		b.edge(s, follow)
	}
	if init != nil {
		b.node(init)
		b.edge(init, s)
		return init
	}
	return s
}

// terminates reports whether s never transfers control to the next
// statement: panic, os.Exit, and t.Fatal-style calls.
func terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Fatal", "Fatalf", "Exit", "Panic", "Panicf":
			return true
		}
	}
	return false
}

// nodeParts returns the parts of s that are evaluated at s's own CFG
// node. For compound statements that is only the condition or tag —
// their bodies are separate nodes, so a callback that inspected the
// whole subtree would see consumption that happens only on one branch.
// Simple statements are their own single part.
func nodeParts(s ast.Stmt) []ast.Node {
	switch s := s.(type) {
	case *ast.IfStmt:
		return []ast.Node{s.Cond}
	case *ast.ForStmt:
		if s.Cond != nil {
			return []ast.Node{s.Cond}
		}
		return nil
	case *ast.RangeStmt:
		return []ast.Node{s.X}
	case *ast.SwitchStmt:
		if s.Tag != nil {
			return []ast.Node{s.Tag}
		}
		return nil
	case *ast.TypeSwitchStmt:
		if s.Assign != nil {
			return []ast.Node{s.Assign}
		}
		return nil
	case *ast.SelectStmt, *ast.LabeledStmt, *ast.BlockStmt:
		return nil
	}
	return []ast.Node{s}
}

// Leaks walks the graph from start (exclusive) and reports every exit
// reachable without first passing a consuming statement.
//
//   - consumes(n) true means the resource is used/released/escaped at n;
//     paths stop there (a consuming defer likewise guards everything
//     after it). n is the part of a statement its CFG node evaluates:
//     the whole statement for simple ones, just the condition/tag for
//     compound ones.
//   - redefines(n) true (optional) means n overwrites the variable; the
//     old value leaks there and the path stops.
//   - exempt(ret) true (optional) suppresses the report for a specific
//     return (e.g. the error-check return paired with the acquire).
//
// A return statement that mentions the resource in its results counts
// as consumption (ownership passes to the caller), so callers need not
// encode that in consumes.
func (g *Graph) Leaks(start ast.Stmt, consumes func(ast.Node) bool, redefines func(ast.Node) bool, exempt func(*ast.ReturnStmt) bool) []Leak {
	hit := func(fn func(ast.Node) bool, s ast.Stmt) bool {
		if fn == nil {
			return false
		}
		for _, part := range nodeParts(s) {
			if part != nil && fn(part) {
				return true
			}
		}
		return false
	}
	seen := map[ast.Stmt]bool{start: true}
	queue := append([]ast.Stmt(nil), g.succ[start]...)
	var leaks []Leak
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if seen[s] {
			continue
		}
		seen[s] = true
		if s == g.exit {
			leaks = append(leaks, Leak{Pos: g.rbrace, Kind: LeakFuncEnd})
			continue
		}
		if ret, ok := s.(*ast.ReturnStmt); ok {
			if hit(consumes, s) {
				continue
			}
			if exempt == nil || !exempt(ret) {
				leaks = append(leaks, Leak{Pos: ret.Pos(), Kind: LeakReturn})
			}
			continue
		}
		if hit(consumes, s) {
			continue
		}
		if hit(redefines, s) {
			leaks = append(leaks, Leak{Pos: s.Pos(), Kind: LeakRedefine})
			continue
		}
		queue = append(queue, g.succ[s]...)
	}
	return leaks
}
