// summary.go is the interprocedural layer of pathflow: a per-package
// call graph with just enough resolution for the passes to see through
// one level of helper calls instead of whitelisting them by name.
//
// Resolution is deliberately modest — static calls to functions and
// methods declared in the package, plus locals bound exactly once to a
// function literal or a method value — because that is the shape of
// every helper this repo's hot paths use (postBuffer, pool.release,
// engine.loop, the scatter closure of the pull pass). Anything dynamic
// resolves to nil and the passes fall back to their conservative,
// non-reporting default.
package pathflow

import (
	"go/ast"
	"go/types"
)

// Summaries is the per-package call-graph and resolution engine. Passes
// build one per Pass and derive their own memoized function facts on
// top (may-acquire sets, consumed parameters, lifecycle ties).
type Summaries struct {
	Info *types.Info

	decls map[*types.Func]*ast.FuncDecl
	// lits maps a local variable bound exactly once to a function
	// literal (scatter := func(...){...}) to that literal.
	lits map[types.Object]*ast.FuncLit
	// vals maps a local variable bound exactly once to a static
	// function or method value (f := d.push) to the target.
	vals map[types.Object]*types.Func
}

// NewSummaries indexes the package's function declarations and
// single-assignment function-valued locals.
func NewSummaries(files []*ast.File, info *types.Info) *Summaries {
	s := &Summaries{
		Info:  info,
		decls: make(map[*types.Func]*ast.FuncDecl),
		lits:  make(map[types.Object]*ast.FuncLit),
		vals:  make(map[types.Object]*types.Func),
	}
	// assigns counts bindings per object so a re-assigned local is
	// dropped from lits/vals (its value is no longer statically known).
	assigns := make(map[types.Object]int)
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		assigns[obj]++
		if rhs == nil {
			return
		}
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.FuncLit:
			s.lits[obj] = rhs
		case *ast.Ident:
			if fn, ok := info.Uses[rhs].(*types.Func); ok {
				s.vals[obj] = fn
			}
		case *ast.SelectorExpr:
			// Method value (d.push) or package-qualified function.
			if sel, ok := info.Selections[rhs]; ok {
				if fn, ok := sel.Obj().(*types.Func); ok {
					s.vals[obj] = fn
				}
			} else if fn, ok := info.Uses[rhs.Sel].(*types.Func); ok {
				s.vals[obj] = fn
			}
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if fn, ok := info.Defs[n.Name].(*types.Func); ok {
					s.decls[fn] = n
				}
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						bind(n.Lhs[i], n.Rhs[i])
					}
				} else {
					for _, lhs := range n.Lhs {
						bind(lhs, nil)
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						bind(name, n.Values[i])
					} else {
						bind(name, nil)
					}
				}
			}
			return true
		})
	}
	for obj, n := range assigns {
		if n > 1 {
			delete(s.lits, obj)
			delete(s.vals, obj)
		}
	}
	return s
}

// Decl returns fn's declaration when fn is declared in this package
// (with a body), or nil.
func (s *Summaries) Decl(fn *types.Func) *ast.FuncDecl {
	d := s.decls[fn]
	if d == nil || d.Body == nil {
		return nil
	}
	return d
}

// Resolved is the outcome of resolving a call or function-valued
// expression to source in the analyzed package.
type Resolved struct {
	Type *ast.FuncType
	Body *ast.BlockStmt
	// Fn is the declared function, nil for a function literal.
	Fn *types.Func
}

// ResolveCall resolves call's callee to a body in this package: a
// static call to a declared function or method, a call of a local
// variable bound once to a function literal or method value, or an
// immediately-invoked literal. Returns nil when the callee is dynamic,
// a builtin, a conversion, or declared elsewhere.
func (s *Summaries) ResolveCall(call *ast.CallExpr) *Resolved {
	if tv, ok := s.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion
	}
	return s.ResolveExpr(call.Fun)
}

// ResolveExpr resolves a function-valued expression (a call's Fun, the
// callee of a go/defer statement) to its body in this package.
func (s *Summaries) ResolveExpr(e ast.Expr) *Resolved {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return &Resolved{Type: e.Type, Body: e.Body}
	case *ast.Ident:
		obj := s.Info.Uses[e]
		if fn, ok := obj.(*types.Func); ok {
			if d := s.Decl(fn); d != nil {
				return &Resolved{Type: d.Type, Body: d.Body, Fn: fn}
			}
			return nil
		}
		if lit, ok := s.lits[obj]; ok {
			return &Resolved{Type: lit.Type, Body: lit.Body}
		}
		if fn, ok := s.vals[obj]; ok {
			if d := s.Decl(fn); d != nil {
				return &Resolved{Type: d.Type, Body: d.Body, Fn: fn}
			}
		}
		return nil
	case *ast.SelectorExpr:
		var fn *types.Func
		if sel, ok := s.Info.Selections[e]; ok {
			fn, _ = sel.Obj().(*types.Func)
		} else {
			fn, _ = s.Info.Uses[e.Sel].(*types.Func)
		}
		if fn != nil {
			if d := s.Decl(fn); d != nil {
				return &Resolved{Type: d.Type, Body: d.Body, Fn: fn}
			}
		}
		return nil
	}
	return nil
}

// ParamObj returns the object of the i-th (flattened) parameter of
// ftype, or nil. The receiver of a method declaration is not counted:
// indices match call-argument positions.
func (s *Summaries) ParamObj(ftype *ast.FuncType, i int) types.Object {
	if ftype == nil || ftype.Params == nil {
		return nil
	}
	idx := 0
	for _, field := range ftype.Params.List {
		names := len(field.Names)
		if names == 0 {
			names = 1 // unnamed parameter still occupies a position
		}
		for j := 0; j < names; j++ {
			if idx == i {
				if j < len(field.Names) {
					return s.Info.Defs[field.Names[j]]
				}
				return nil // unnamed: no object to track
			}
			idx++
		}
	}
	return nil
}

// ArgIndex returns the index of the argument of call that is (after
// stripping parens) an identifier for obj, or -1.
func ArgIndex(info *types.Info, call *ast.CallExpr, obj types.Object) int {
	for i, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
			return i
		}
	}
	return -1
}
