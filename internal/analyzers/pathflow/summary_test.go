package pathflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

const summarySrc = `package p

import "sync"

type deque struct {
	mu  sync.Mutex
	buf []int
}

func (d *deque) push(v int) {
	d.mu.Lock()
	d.buf = append(d.buf, v)
	d.mu.Unlock()
}

func (d *deque) unlock() { d.mu.Unlock() }

// lockThenHelperUnlock pins the deferred unlock-in-helper shape.
func lockThenHelperUnlock(d *deque) {
	d.mu.Lock()
	defer d.unlock()
	d.buf = nil
}

// ping and pong are mutually recursive.
func ping(n int) {
	if n > 0 {
		pong(n - 1)
	}
}

func pong(n int) {
	if n > 0 {
		ping(n - 1)
	}
}

func use(d *deque) {
	mv := d.push     // method value, bound once
	lit := func() {} // literal, bound once
	rebound := func() {}
	rebound = func() { lit() }
	mv(1)
	lit()
	rebound()
	ping(3)
	_ = int(0) // conversion, not a call
}
`

func buildSummaries(t *testing.T) (*token.FileSet, *ast.File, *types.Info, *Summaries) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", summarySrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return fset, f, info, NewSummaries([]*ast.File{f}, info)
}

// callsIn collects the CallExprs of the named function in source order.
func callsIn(t *testing.T, f *ast.File, name string) []*ast.CallExpr {
	t.Helper()
	var calls []*ast.CallExpr
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != name {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if c, ok := n.(*ast.CallExpr); ok {
				calls = append(calls, c)
			}
			return true
		})
	}
	return calls
}

func TestResolveMethodValueAndLiteral(t *testing.T) {
	_, f, _, sums := buildSummaries(t)
	calls := callsIn(t, f, "use")
	// Source order: mv(1), lit(), rebound(), ping(3), int(0).
	if len(calls) != 5 {
		t.Fatalf("found %d calls in use, want 5", len(calls))
	}

	mv := sums.ResolveCall(calls[0])
	if mv == nil || mv.Fn == nil || mv.Fn.Name() != "push" {
		t.Errorf("mv(1) resolved to %+v, want method push", mv)
	}

	lit := sums.ResolveCall(calls[1])
	if lit == nil || lit.Fn != nil || lit.Body == nil {
		t.Errorf("lit() resolved to %+v, want a function literal body", lit)
	}

	if r := sums.ResolveCall(calls[2]); r != nil {
		t.Errorf("rebound() resolved to %+v, want nil (assigned twice)", r)
	}

	ping := sums.ResolveCall(calls[3])
	if ping == nil || ping.Fn == nil || ping.Fn.Name() != "ping" {
		t.Errorf("ping(3) resolved to %+v, want function ping", ping)
	}

	if r := sums.ResolveCall(calls[4]); r != nil {
		t.Errorf("int(0) conversion resolved to %+v, want nil", r)
	}
}

func TestResolveMutualRecursion(t *testing.T) {
	_, f, _, sums := buildSummaries(t)
	pingCalls := callsIn(t, f, "ping")
	if len(pingCalls) != 1 {
		t.Fatalf("found %d calls in ping, want 1", len(pingCalls))
	}
	// ping resolves to pong, pong back to ping: a client following the
	// chain must land on distinct declarations, not loop forever on one.
	pong := sums.ResolveCall(pingCalls[0])
	if pong == nil || pong.Fn == nil || pong.Fn.Name() != "pong" {
		t.Fatalf("ping's call resolved to %+v, want pong", pong)
	}
	pongCalls := callsIn(t, f, "pong")
	back := sums.ResolveCall(pongCalls[0])
	if back == nil || back.Fn == nil || back.Fn.Name() != "ping" {
		t.Fatalf("pong's call resolved to %+v, want ping", back)
	}
	if sums.Decl(pong.Fn) == sums.Decl(back.Fn) {
		t.Error("ping and pong resolved to the same declaration")
	}
}

func TestResolveDeferredHelper(t *testing.T) {
	_, f, _, sums := buildSummaries(t)
	var deferred *ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred = d.Call
		}
		return true
	})
	if deferred == nil {
		t.Fatal("no defer statement in fixture")
	}
	r := sums.ResolveCall(deferred)
	if r == nil || r.Fn == nil || r.Fn.Name() != "unlock" {
		t.Fatalf("defer d.unlock() resolved to %+v, want method unlock", r)
	}
	// The resolved body must contain the Unlock call a pass would
	// summarize as a net release.
	found := false
	ast.Inspect(r.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Unlock" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("resolved unlock body does not reach the Unlock call")
	}
}

func TestParamObjAndArgIndex(t *testing.T) {
	_, f, info, sums := buildSummaries(t)
	var decl *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "push" {
			decl = fd
		}
	}
	obj := sums.ParamObj(decl.Type, 0)
	if obj == nil || obj.Name() != "v" {
		t.Fatalf("ParamObj(push, 0) = %v, want v", obj)
	}
	if obj := sums.ParamObj(decl.Type, 1); obj != nil {
		t.Errorf("ParamObj(push, 1) = %v, want nil", obj)
	}

	// ArgIndex finds an identifier argument's position.
	calls := callsIn(t, f, "ping")
	// pong(n - 1): the argument is an expression, not a bare ident.
	if i := ArgIndex(info, calls[0], nil); i != -1 {
		t.Errorf("ArgIndex on non-ident arg = %d, want -1", i)
	}
}
