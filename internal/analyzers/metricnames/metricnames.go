// Package metricnames enforces the observability plane's naming and
// cardinality contract (DESIGN.md §4/§6) at every
// rackjoin/internal/metrics call site:
//
//   - metric names and label keys must be compile-time constants (the
//     registry interns by name; dynamic names defeat lookup caching and
//     make dashboards unenumerable) matching ^[a-z][a-z0-9_]*$;
//   - counters end in _total, histograms in a unit suffix (_seconds or
//     _bytes), gauges carry no _total suffix — the Prometheus
//     conventions the /metrics exposition promises;
//   - label values must come from a bounded set: formatting an error or
//     an arbitrary string into a label (fmt.Sprintf, err.Error()) makes
//     series cardinality unbounded and was the one operational
//     landmine the sampler's ring buffers cannot absorb.
package metricnames

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"rackjoin/internal/analyzers/rackvet"
)

// Analyzer is the metricnames pass.
var Analyzer = &rackvet.Analyzer{
	Name: "metricnames",
	Doc:  "check metric registry call sites: constant conventional names, constant label keys, bounded label values",
	Run:  run,
}

// metricsPath is the import path of the registry package (the fixture
// tree carries a stub under the same path).
const metricsPath = "rackjoin/internal/metrics"

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func run(pass *rackvet.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		parents := rackvet.Parents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := rackvet.Callee(info, call)
			if fn == nil {
				return true
			}
			// Classify by what the call produces: any function whose
			// single result is a metrics.Counter/Gauge/Histogram/Label
			// is a registry entry point, including facade wrappers
			// outside the metrics package itself.
			switch resultKind(fn) {
			case "Counter", "Gauge", "Histogram":
				if len(call.Args) == 0 || !isString(info, call.Args[0]) {
					return true
				}
				if isForwardedParam(info, parents, call.Args[0]) {
					return true
				}
				checkName(pass, resultKind(fn), call.Args[0])
			case "Label":
				if len(call.Args) != 2 || !isString(info, call.Args[0]) {
					return true
				}
				if !isForwardedParam(info, parents, call.Args[0]) {
					checkLabelKey(pass, call.Args[0])
				}
				if !isForwardedParam(info, parents, call.Args[1]) {
					checkLabelValue(pass, call.Args[1])
				}
			}
			return true
		})
	}
	return nil
}

// resultKind returns the metrics-package type name of fn's single
// result ("Counter", "Gauge", "Histogram", "Label"), or "".
func resultKind(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return ""
	}
	named := rackvet.NamedType(sig.Results().At(0).Type())
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != metricsPath {
		return ""
	}
	switch name := named.Obj().Name(); name {
	case "Counter", "Gauge", "Histogram", "Label":
		return name
	}
	return ""
}

func isString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isForwardedParam reports whether arg is a bare identifier bound to a
// parameter of an enclosing function — a forwarding wrapper (the
// Scope methods, the rackjoin facade). Constancy is enforced at the
// wrapper's own call sites instead, which this pass also matches.
func isForwardedParam(info *types.Info, parents map[ast.Node]ast.Node, arg ast.Expr) bool {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	for n := parents[ast.Node(arg)]; n != nil; n = parents[n] {
		var ft *ast.FuncType
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ft = fn.Type
		case *ast.FuncLit:
			ft = fn.Type
		default:
			continue
		}
		if ft.Params != nil {
			for _, field := range ft.Params.List {
				for _, name := range field.Names {
					if info.Defs[name] == obj {
						return true
					}
				}
			}
		}
		if _, ok := n.(*ast.FuncDecl); ok {
			break
		}
	}
	return false
}

// checkName validates the name argument of a Counter/Gauge/Histogram
// call.
func checkName(pass *rackvet.Pass, kind string, arg ast.Expr) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "metric name must be a constant string, not a computed value")
		return
	}
	name := constant.StringVal(tv.Value)
	if !nameRE.MatchString(name) {
		pass.Reportf(arg.Pos(), "metric name %q must match %s", name, nameRE)
		return
	}
	switch kind {
	case "Counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(arg.Pos(), "counter %q must end in _total", name)
		}
	case "Histogram":
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
			pass.Reportf(arg.Pos(), "histogram %q must end in a unit suffix (_seconds or _bytes)", name)
		}
	case "Gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(arg.Pos(), "gauge %q must not end in _total (that suffix promises a counter)", name)
		}
	}
}

// checkLabelKey validates the key argument of a label constructor.
func checkLabelKey(pass *rackvet.Pass, key ast.Expr) {
	tv, ok := pass.TypesInfo.Types[key]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(key.Pos(), "label key must be a constant string, not a computed value")
	} else if k := constant.StringVal(tv.Value); !nameRE.MatchString(k) {
		pass.Reportf(key.Pos(), "label key %q must match %s", k, nameRE)
	}
}

// checkLabelValue validates the value argument of a label constructor.
func checkLabelValue(pass *rackvet.Pass, value ast.Expr) {
	if src := unboundedSource(pass.TypesInfo, value); src != "" {
		pass.Reportf(value.Pos(), "label value from %s has unbounded cardinality; label values must come from a small closed set", src)
	}
}

// unboundedSource returns a description of value's origin when it is a
// known unbounded-cardinality source, or "".
func unboundedSource(info *types.Info, value ast.Expr) string {
	call, ok := ast.Unparen(value).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := rackvet.Callee(info, call)
	if fn == nil {
		return ""
	}
	if rackvet.PkgPathIs(fn, "fmt") && strings.HasPrefix(fn.Name(), "Sprint") {
		return "fmt." + fn.Name()
	}
	if fn.Name() == "Error" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "error.Error()"
		}
	}
	if rackvet.PkgPathIs(fn, "time") && (fn.Name() == "Now" || fn.Name() == "Since") {
		return "time." + fn.Name()
	}
	return ""
}
