// Package a exercises the metricnames analyzer.
package a

import (
	"errors"
	"fmt"

	"rackjoin/internal/metrics"
)

var errBoom = errors.New("boom")

func record(r *metrics.Registry) {
	r.Counter("rows_joined_total")
	r.Counter("rows_joined")                    // want `counter "rows_joined" must end in _total`
	r.Counter("Rows-Joined_total")              // want `metric name "Rows-Joined_total" must match`
	r.Counter("rt_" + fmt.Sprint(1) + "_total") // want `metric name must be a constant string, not a computed value`
	r.Gauge("queue_depth")
	r.Gauge("queue_depth_total") // want `gauge "queue_depth_total" must not end in _total`
	r.Histogram("op_latency_seconds")
	r.Histogram("op_payload_bytes")
	r.Histogram("op_latency") // want `histogram "op_latency" must end in a unit suffix`

	// Communication-scheduler metrics (internal/core netsched wiring):
	// round/park/override counters carry _total, the occupancy and
	// per-destination budget gauges do not.
	r.Counter("netsched_rounds_total")
	r.Counter("netsched_overrides_total")
	r.Gauge("netsched_pairing_occupancy")
	r.Gauge("netsched_budget_buffers")
	r.Counter("netsched_parks")     // want `counter "netsched_parks" must end in _total`
	r.Gauge("netsched_round_total") // want `gauge "netsched_round_total" must not end in _total`

	// Health-plane metrics (internal/health engine wiring): evaluation
	// and per-detector diagnosis counters carry _total; culprits are
	// labels on them, never ID-valued gauges.
	r.Counter("health_evaluations_total")
	r.Counter("health_diagnoses_total", metrics.L("detector", "slow_link"))
	r.Counter("flightrec_dropped_total")
	r.Counter("fabric_retransmits_total")
	r.Counter("health_diagnoses")    // want `counter "health_diagnoses" must end in _total`
	r.Gauge("health_detector_total") // want `gauge "health_detector_total" must not end in _total`

	// Skew-engine metrics (internal/core skew wiring): heavy-hitter,
	// replicated-byte, and task-split counters carry _total; the
	// replicated-byte series is labelled by the (bounded) partition set
	// the detector chose to split.
	r.Counter("skew_heavy_hitters_total")
	r.Counter("skew_replicated_bytes_total", metrics.L("partition", "7"))
	r.Counter("skew_task_splits_total")
	r.Counter("skew_heavy_hitters")  // want `counter "skew_heavy_hitters" must end in _total`
	r.Gauge("skew_task_split_total") // want `gauge "skew_task_split_total" must not end in _total`
}

func labels() []metrics.Label {
	return []metrics.Label{
		metrics.L("node", "n3"),
		metrics.L("Node-ID", "n3"),              // want `label key "Node-ID" must match`
		metrics.L("err", errBoom.Error()),       // want `label value from error.Error\(\) has unbounded cardinality`
		metrics.L("size", fmt.Sprintf("%d", 1)), // want `label value from fmt.Sprintf has unbounded cardinality`
	}
}

// scope mirrors metrics.Scope / the rackjoin facade: a forwarding
// wrapper whose name parameter is checked at the wrapper's own call
// sites, not inside the wrapper (the false positive this pass once had).
type scope struct{ r *metrics.Registry }

func (s scope) Counter(name string) *metrics.Counter { return s.r.Counter(name) }

func l(key, value string) metrics.Label { return metrics.L(key, value) }

func viaWrapper(s scope) {
	s.Counter("rows_joined_total")
	s.Counter("rows_joined") // want `counter "rows_joined" must end in _total`
	l("node", "n1")
	l("Node", "n1") // want `label key "Node" must match`
}
