// Package metrics is a stub of rackjoin/internal/metrics for the
// metricnames fixtures: the same exported type names the analyzer keys
// on, with no behavior.
package metrics

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

type Label struct{ Key, Value string }

type Registry struct{}

func (r *Registry) Counter(name string, labels ...Label) *Counter     { return new(Counter) }
func (r *Registry) Gauge(name string, labels ...Label) *Gauge         { return new(Gauge) }
func (r *Registry) Histogram(name string, labels ...Label) *Histogram { return new(Histogram) }

func L(key, value string) Label { return Label{Key: key, Value: value} }
