package metricnames_test

import (
	"testing"

	"rackjoin/internal/analyzers/metricnames"
	"rackjoin/internal/analyzers/vettest"
)

func TestAnalyzer(t *testing.T) {
	vettest.Run(t, "testdata", metricnames.Analyzer, "a")
}
