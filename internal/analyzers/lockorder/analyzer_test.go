package lockorder_test

import (
	"testing"

	"rackjoin/internal/analyzers/lockorder"
	"rackjoin/internal/analyzers/vettest"
)

func TestLockOrder(t *testing.T) {
	// The fixture package declares its documented order here, the way
	// the real packages declare theirs in the Contracts table.
	lockorder.Contracts["a"] = []string{
		"gamma.mu", "delta.mu", "zeta.mu", "eps.mu",
		"kappa.mu", "theta.mu", "qq.mu", "pp.mu",
	}
	defer delete(lockorder.Contracts, "a")
	vettest.Run(t, "testdata", lockorder.Analyzer, "a")
}
