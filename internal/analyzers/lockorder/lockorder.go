// Package lockorder derives the lock-acquisition graph of a package
// over named mutex fields and reports two classes of finding:
//
//   - cycles: function f acquires A then B (possibly through a helper)
//     while function g acquires B then A — the classic ABBA deadlock
//     the race detector cannot see because it needs both interleavings
//     to fire in one run;
//   - documented-order inversions: an acquire-while-holding edge that
//     runs against the package's declared order (DESIGN.md §16) even
//     when no closing edge exists yet, so the contract fails the build
//     before the second half of the inversion is ever written.
//
// A lock is identified by the named struct field holding it
// ("scheduler.parkMu", "wsDeque.mu") — instance-insensitive, like the
// documented contracts. Local mutex variables are scoped to one call
// tree and are skipped. Edges are discovered by a path-sensitive walk
// of each function's CFG carrying the held set, seeing through helper
// calls via pathflow summaries: a method that locks its receiver
// (wsDeque.push), a helper that unlocks on behalf of its caller, and a
// deferred unlock all update the held set the way the runtime would.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"rackjoin/internal/analyzers/pathflow"
	"rackjoin/internal/analyzers/rackvet"
)

// Analyzer is the lockorder pass.
var Analyzer = &rackvet.Analyzer{
	Name: "lockorder",
	Doc:  "derive the mutex acquisition graph and report cycles and documented-order inversions",
	Run:  run,
}

// Contracts declares the documented lock order per import path: a lock
// may be acquired while holding only locks that appear EARLIER in its
// package's list (DESIGN.md §16). Keys not listed are unconstrained
// (cycle detection still applies). Tests may install fixture entries.
var Contracts = map[string][]string{
	// core: the scheduler park path. Workers park holding parkMu and
	// re-check every task source under it; offers nest the split-range
	// lock; deque and injector locks are leaves. offer() must release
	// offerMu before wake() for exactly this order.
	"rackjoin/internal/core": {"scheduler.parkMu", "scheduler.offerMu", "splitRange.mu", "wsDeque.mu", "scheduler.injectMu"},
	// netsched: one lock; listed so an accidental nested acquire via a
	// future helper is caught as a self-cycle with a contract to cite.
	"rackjoin/internal/netsched": {"Scheduler.mu"},
	// health: the engine lock is a leaf — publish/observe must run
	// unlocked (they call user hooks and the flight recorder).
	"rackjoin/internal/health": {"Engine.mu"},
	// obsv: server, sampler and flight rings never nest.
	"rackjoin/internal/obsv": {"Server.mu", "Sampler.mu", "FlightRecorder.mu"},
}

// summaryDepth bounds how many helper levels the may-acquire/release
// summaries follow. Mutual recursion is cut by the visiting set; the
// depth bound keeps worst-case cost linear in practice.
const summaryDepth = 3

type lockKey string

type edge struct{ from, to lockKey }

// lockSummary is one function's net effect on the held set, plus every
// lock it may acquire at any point (the edge source for callers).
type lockSummary struct {
	mayAcquire map[lockKey]token.Pos
	// netAcquire: held when the function returns (lock-in-helper).
	netAcquire map[lockKey]token.Pos
	// netRelease: locks released that the function did not itself
	// acquire (unlock-in-helper, on behalf of the caller).
	netRelease map[lockKey]bool
}

type analysis struct {
	pass *rackvet.Pass
	sums *pathflow.Summaries
	memo map[*types.Func]*lockSummary

	edges map[edge]token.Pos
}

func run(pass *rackvet.Pass) error {
	a := &analysis{
		pass:  pass,
		sums:  pathflow.NewSummaries(pass.Files, pass.TypesInfo),
		memo:  make(map[*types.Func]*lockSummary),
		edges: make(map[edge]token.Pos),
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					a.walkFunc(n.Body)
				}
			case *ast.FuncLit:
				a.walkFunc(n.Body)
			}
			return true
		})
	}
	a.reportCycles()
	a.reportInversions()
	return nil
}

// keyOf names the mutex behind a Lock/Unlock receiver expression: a
// selector x.f where f is a sync.Mutex/RWMutex field of a named struct
// ("T.f"), or a value of a named type embedding one ("T.Mutex"). Local
// and anonymous mutexes return "".
func (a *analysis) keyOf(recv ast.Expr) lockKey {
	info := a.pass.TypesInfo
	recv = ast.Unparen(recv)
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if isMutexType(s.Obj().Type()) {
				if named := rackvet.NamedType(s.Recv()); named != nil {
					return lockKey(named.Obj().Name() + "." + s.Obj().Name())
				}
			}
		}
		return ""
	}
	// Embedded: t.Lock() — recv is the value whose named type embeds
	// the mutex; name the promoted field by its type.
	if named := rackvet.NamedType(info.TypeOf(recv)); named != nil && !isMutexNamed(named) {
		return lockKey(named.Obj().Name() + "." + "Mutex")
	}
	return ""
}

func isMutexNamed(named *types.Named) bool {
	obj := named.Obj()
	return rackvet.PkgPathIs(obj, "sync") && (obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func isMutexType(t types.Type) bool {
	named := rackvet.NamedType(t)
	return named != nil && isMutexNamed(named)
}

// lockOp classifies call as a mutex acquire/release and names the lock.
// ok is false for anything else (including sync.Locker interface calls
// and sync.Cond, which are dynamic or re-acquire their own lock).
func (a *analysis) lockOp(call *ast.CallExpr) (key lockKey, acquire bool, ok bool) {
	fn := rackvet.Callee(a.pass.TypesInfo, call)
	if fn == nil || !rackvet.PkgPathIs(fn, "sync") {
		return "", false, false
	}
	recvNamed := rackvet.ReceiverNamed(fn)
	if recvNamed == nil || !isMutexNamed(recvNamed) {
		return "", false, false
	}
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	key = a.keyOf(sel.X)
	if key == "" {
		return "", false, false
	}
	return key, acquire, true
}

// event is one lock-relevant operation in evaluation order.
type event struct {
	pos      token.Pos
	key      lockKey      // acquire/release
	acquire  bool         //
	deferred bool         // registered by a defer statement
	callee   *types.Func  // non-nil: summarized helper call
	lit      *ast.FuncLit // immediately-invoked literal
}

// events extracts the lock operations and summarizable calls of one
// CFG-node part, in pre-order (a close approximation of evaluation
// order for this repo's statement-per-operation style).
func (a *analysis) events(part ast.Node, deferred bool) []event {
	var evs []event
	ast.Inspect(part, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs later (or on another goroutine)
		case *ast.GoStmt:
			return false // acquires happen on the spawned goroutine
		case *ast.DeferStmt:
			evs = append(evs, a.events(n.Call, true)...)
			return false
		case *ast.CallExpr:
			if key, acq, ok := a.lockOp(n); ok {
				evs = append(evs, event{pos: n.Pos(), key: key, acquire: acq, deferred: deferred})
				return true
			}
			if r := a.sums.ResolveCall(n); r != nil {
				if r.Fn != nil {
					evs = append(evs, event{pos: n.Pos(), callee: r.Fn, deferred: deferred})
				} else if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
					evs = append(evs, event{pos: n.Pos(), lit: lit, deferred: deferred})
				}
			}
		}
		return true
	})
	return evs
}

// summary computes fn's lock summary, seeing depth more helper levels.
// visiting cuts mutual recursion (the recursive edge contributes
// nothing — sound for may-acquire since the first visit records every
// direct acquire).
func (a *analysis) summary(fn *types.Func, depth int, visiting map[*types.Func]bool) *lockSummary {
	if s, ok := a.memo[fn]; ok {
		return s
	}
	s := &lockSummary{
		mayAcquire: make(map[lockKey]token.Pos),
		netAcquire: make(map[lockKey]token.Pos),
		netRelease: make(map[lockKey]bool),
	}
	decl := a.sums.Decl(fn)
	if decl == nil || depth <= 0 || visiting[fn] {
		if !visiting[fn] {
			a.memo[fn] = s
		}
		return s
	}
	visiting[fn] = true
	defer delete(visiting, fn)
	// Linear source-order scan: precise enough for net effects of the
	// helper idioms (lock; defer unlock | unlock-on-behalf | lockBoth).
	held := make(map[lockKey]token.Pos)
	var deferredReleases []lockKey
	var scan func(n ast.Node, deferred bool)
	scan = func(n ast.Node, deferred bool) {
		for _, ev := range a.events(n, deferred) {
			switch {
			case ev.lit != nil:
				scan(ev.lit.Body, ev.deferred)
			case ev.callee != nil:
				cs := a.summary(ev.callee, depth-1, visiting)
				for k, p := range cs.mayAcquire {
					if _, ok := s.mayAcquire[k]; !ok {
						s.mayAcquire[k] = p
					}
				}
				for k, p := range cs.netAcquire {
					held[k] = p
				}
				for k := range cs.netRelease {
					if _, ok := held[k]; ok {
						delete(held, k)
					} else {
						s.netRelease[k] = true
					}
				}
			case ev.acquire:
				if _, ok := s.mayAcquire[ev.key]; !ok {
					s.mayAcquire[ev.key] = ev.pos
				}
				held[ev.key] = ev.pos
			default: // release
				if ev.deferred {
					deferredReleases = append(deferredReleases, ev.key)
					continue
				}
				if _, ok := held[ev.key]; ok {
					delete(held, ev.key)
				} else {
					s.netRelease[ev.key] = true
				}
			}
		}
	}
	scan(decl.Body, false)
	for _, k := range deferredReleases {
		if _, ok := held[k]; ok {
			delete(held, k)
		} else {
			s.netRelease[k] = true
		}
	}
	for k, p := range held {
		s.netAcquire[k] = p
	}
	a.memo[fn] = s
	return s
}

// heldSet is the ordered set of locks held on the current CFG path.
type heldSet struct {
	keys []lockKey
	// sticky marks locks released only by a defer: held to exit.
	sticky map[lockKey]bool
}

func (h *heldSet) clone() *heldSet {
	c := &heldSet{keys: append([]lockKey(nil), h.keys...), sticky: make(map[lockKey]bool, len(h.sticky))}
	for k := range h.sticky {
		c.sticky[k] = true
	}
	return c
}

func (h *heldSet) has(k lockKey) bool {
	for _, e := range h.keys {
		if e == k {
			return true
		}
	}
	return false
}

func (h *heldSet) add(k lockKey) {
	if !h.has(k) {
		h.keys = append(h.keys, k)
	}
}

func (h *heldSet) remove(k lockKey) {
	if h.sticky[k] {
		return
	}
	for i := len(h.keys) - 1; i >= 0; i-- {
		if h.keys[i] == k {
			h.keys = append(h.keys[:i], h.keys[i+1:]...)
			return
		}
	}
}

func (h *heldSet) memoKey() string {
	ks := make([]string, 0, len(h.keys))
	for _, k := range h.keys {
		ks = append(ks, string(k))
	}
	sort.Strings(ks)
	return strings.Join(ks, ",")
}

// walkFunc walks body's CFG carrying the held set and records an edge
// held→acquired for every acquire (direct or through a helper).
func (a *analysis) walkFunc(body *ast.BlockStmt) {
	g := pathflow.New(body)
	seen := make(map[ast.Stmt]map[string]bool)
	type item struct {
		s    ast.Stmt
		held *heldSet
	}
	start := &heldSet{sticky: make(map[lockKey]bool)}
	stack := []item{}
	for _, s := range g.Succs(g.Entry()) {
		stack = append(stack, item{s, start})
	}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if it.s == g.Exit() {
			continue
		}
		mk := it.held.memoKey()
		if seen[it.s] == nil {
			seen[it.s] = make(map[string]bool)
		}
		if seen[it.s][mk] {
			continue
		}
		seen[it.s][mk] = true
		held := it.held.clone()
		for _, part := range pathflow.NodeParts(it.s) {
			if part == nil {
				continue
			}
			a.apply(held, a.events(part, false))
		}
		for _, succ := range g.Succs(it.s) {
			stack = append(stack, item{succ, held})
		}
	}
}

// apply runs one node's events against the held set, recording edges.
func (a *analysis) apply(held *heldSet, evs []event) {
	for _, ev := range evs {
		switch {
		case ev.lit != nil:
			a.apply(held, a.events(ev.lit.Body, ev.deferred))
		case ev.callee != nil:
			cs := a.summary(ev.callee, summaryDepth, make(map[*types.Func]bool))
			for k := range cs.mayAcquire {
				for _, h := range held.keys {
					if h != k {
						a.edge(h, k, ev.pos)
					}
				}
			}
			for k := range cs.netAcquire {
				held.add(k)
				if ev.deferred {
					held.sticky[k] = true
				}
			}
			if ev.deferred {
				// A deferred releasing helper keeps the lock held for
				// the rest of the function, like a deferred unlock.
				for k := range cs.netRelease {
					if held.has(k) {
						held.sticky[k] = true
					}
				}
			} else {
				for k := range cs.netRelease {
					held.remove(k)
				}
			}
		case ev.acquire:
			if held.has(ev.key) && !ev.deferred {
				a.pass.Reportf(ev.pos, "%s acquired while already held (self-deadlock unless the instances always differ)", ev.key)
			}
			for _, h := range held.keys {
				if h != ev.key {
					a.edge(h, ev.key, ev.pos)
				}
			}
			held.add(ev.key)
		default: // release
			if ev.deferred {
				held.sticky[ev.key] = true
				held.add(ev.key)
				continue
			}
			held.remove(ev.key)
		}
	}
}

func (a *analysis) edge(from, to lockKey, pos token.Pos) {
	e := edge{from, to}
	if _, ok := a.edges[e]; !ok {
		a.edges[e] = pos
	}
}

// reportCycles finds cycles in the package's acquisition graph and
// reports each once, at its lexically first witness edge.
func (a *analysis) reportCycles() {
	succ := make(map[lockKey][]lockKey)
	for e := range a.edges {
		succ[e.from] = append(succ[e.from], e.to)
	}
	for from := range succ {
		sort.Slice(succ[from], func(i, j int) bool { return succ[from][i] < succ[from][j] })
	}
	nodes := make([]lockKey, 0, len(succ))
	for k := range succ {
		nodes = append(nodes, k)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	reported := make(map[string]bool)
	var path []lockKey
	onPath := make(map[lockKey]int)
	var dfs func(k lockKey)
	dfs = func(k lockKey) {
		if i, ok := onPath[k]; ok {
			cycle := append([]lockKey(nil), path[i:]...)
			sig := canonicalCycle(cycle)
			if !reported[sig] {
				reported[sig] = true
				// Witness: the edge closing the cycle.
				pos := a.edges[edge{path[len(path)-1], k}]
				var parts []string
				for _, c := range cycle {
					parts = append(parts, string(c))
				}
				parts = append(parts, string(cycle[0]))
				a.pass.Reportf(pos, "lock-order cycle: %s (deadlock if the paths interleave)", strings.Join(parts, " → "))
			}
			return
		}
		onPath[k] = len(path)
		path = append(path, k)
		for _, n := range succ[k] {
			dfs(n)
		}
		path = path[:len(path)-1]
		delete(onPath, k)
	}
	for _, n := range nodes {
		dfs(n)
	}
}

func canonicalCycle(cycle []lockKey) string {
	best := ""
	for i := range cycle {
		var parts []string
		for j := range cycle {
			parts = append(parts, string(cycle[(i+j)%len(cycle)]))
		}
		s := strings.Join(parts, "→")
		if best == "" || s < best {
			best = s
		}
	}
	return best
}

// reportInversions checks every edge against the package's documented
// order: an edge from a later-listed lock to an earlier one inverts it.
func (a *analysis) reportInversions() {
	order := Contracts[a.pass.Pkg.Path()]
	if order == nil {
		return
	}
	rank := make(map[lockKey]int, len(order))
	for i, k := range order {
		rank[lockKey(k)] = i
	}
	type inv struct {
		e   edge
		pos token.Pos
	}
	var invs []inv
	for e, pos := range a.edges {
		rf, okF := rank[e.from]
		rt, okT := rank[e.to]
		if okF && okT && rf > rt {
			invs = append(invs, inv{e, pos})
		}
	}
	sort.Slice(invs, func(i, j int) bool { return invs[i].pos < invs[j].pos })
	for _, v := range invs {
		a.pass.Reportf(v.pos, "%s acquired while holding %s inverts the documented order (%s)",
			v.e.to, v.e.from, strings.Join(order, " → "))
	}
}
