// Package a exercises the lockorder pass: an ABBA cycle, contract
// inversions seen through helpers (may-acquire, lock-in-helper,
// deferred unlock-in-helper), mutual recursion termination, a direct
// double-lock, and an embedded mutex. The analyzer test registers the
// documented order for this package as
// gamma.mu → delta.mu → zeta.mu → eps.mu → kappa.mu → theta.mu → qq.mu → pp.mu.
package a

import "sync"

type alpha struct{ mu sync.Mutex }
type beta struct{ mu sync.Mutex }

var a1 alpha
var b1 beta

// lockAB establishes alpha.mu → beta.mu.
func lockAB() {
	a1.mu.Lock()
	b1.mu.Lock()
	b1.mu.Unlock()
	a1.mu.Unlock()
}

// lockBA closes the cycle: beta.mu → alpha.mu.
func lockBA() {
	b1.mu.Lock()
	a1.mu.Lock() // want `lock-order cycle: alpha\.mu → beta\.mu → alpha\.mu`
	a1.mu.Unlock()
	b1.mu.Unlock()
}

type gamma struct{ mu sync.Mutex }
type delta struct{ mu sync.Mutex }

var g1 gamma
var d1 delta

func lockGamma() {
	g1.mu.Lock()
	g1.mu.Unlock()
}

// helperInversion acquires gamma.mu through a helper while holding
// delta.mu — against the documented order, visible only to the
// summary-based walk.
func helperInversion() {
	d1.mu.Lock()
	lockGamma() // want `gamma\.mu acquired while holding delta\.mu inverts the documented order`
	d1.mu.Unlock()
}

type eps struct{ mu sync.Mutex }
type zeta struct{ mu sync.Mutex }

var e1 eps
var z1 zeta

func (e *eps) unlock() { e.mu.Unlock() }

// deferredHelperUnlock releases eps.mu only through a deferred helper,
// so eps.mu is held at the zeta.mu acquire below.
func deferredHelperUnlock() {
	e1.mu.Lock()
	defer e1.unlock()
	z1.mu.Lock() // want `zeta\.mu acquired while holding eps\.mu inverts the documented order`
	z1.mu.Unlock()
}

type kappa struct{ mu sync.Mutex }
type theta struct{ mu sync.Mutex }

var k1 kappa
var t1 theta

func (t *theta) lock()    { t.mu.Lock() }
func (t *theta) unlock()  { t.mu.Unlock() }

// lockInHelper acquires theta.mu inside a helper and keeps holding it
// (netAcquire), so the direct kappa.mu acquire inverts the order.
func lockInHelper() {
	t1.lock()
	k1.mu.Lock() // want `kappa\.mu acquired while holding theta\.mu inverts the documented order`
	k1.mu.Unlock()
	t1.unlock()
}

type rho struct{ mu sync.Mutex }

var r1 rho

// ping/pong are mutually recursive; summaries must terminate and the
// balanced lock/unlock must produce no findings.
func ping(n int) {
	if n == 0 {
		return
	}
	r1.mu.Lock()
	r1.mu.Unlock()
	pong(n - 1)
}

func pong(n int) {
	if n == 0 {
		return
	}
	ping(n - 1)
}

type mono struct{ mu sync.Mutex }

var m1 mono

func doubleLock() {
	m1.mu.Lock()
	m1.mu.Lock() // want `mono\.mu acquired while already held`
	m1.mu.Unlock()
	m1.mu.Unlock()
}

type embd struct{ sync.Mutex }

var em embd

func embedded() {
	em.Lock()
	em.Lock() // want `embd\.Mutex acquired while already held`
	em.Unlock()
	em.Unlock()
}

type pp struct{ mu sync.Mutex }
type qq struct{ mu sync.Mutex }

var p1 pp
var q1 qq

// branchy must NOT report: pp.mu is released on every path before
// qq.mu is acquired, even though the unlock sits in a branch.
func branchy(c bool) {
	if c {
		p1.mu.Lock()
		p1.mu.Unlock()
	}
	q1.mu.Lock()
	q1.mu.Unlock()
}
