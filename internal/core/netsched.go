package core

import (
	"strconv"

	"rackjoin/internal/metrics"
	"rackjoin/internal/netsched"
)

// This file wires the netsched communication scheduler into the network
// partitioning pass. The flow:
//
//	flush/flushBcast → ship → (in round)  postScheduled → postBuffer
//	                        → (out of round) park; posted later by
//	                          postParkedAllowed (round came up),
//	                          postParkedFront (liveness override) or
//	                          drainParked (end-of-slice tail)
//
// Parked buffers stay pool-owned (they recycle through the normal
// completion path after posting), and every liveness hole is plugged:
// acquireFor force-posts parked capacity when the pool runs dry with
// nothing in flight, ship caps the parked backlog, and drainParked
// cycles the schedule until the tail is empty — so the EOP control
// messages still fire only after every buffer, parked or not, drained.

// demandMatrix returns the bytes each machine ships to each other
// machine during the network pass, derived from the exchanged machine
// histograms and the partition assignment — identical on every machine,
// so all plans agree without extra coordination. Broadcast partitions
// replicate their inner side to every peer (the flushBcast traffic that
// previously bypassed per-target accounting).
func (st *machineState) demandMatrix() [][]float64 {
	w := float64(st.width)
	d := make([][]float64, st.nm)
	for m := range d {
		d[m] = make([]float64, st.nm)
	}
	for p := 0; p < st.np; p++ {
		for m := 0; m < st.nm; m++ {
			switch {
			case st.broadcast[p]:
				for dst := 0; dst < st.nm; dst++ {
					if dst != m {
						d[m][dst] += float64(st.allHistR[m][p]) * w
						if st.isSplit(p) {
							// Skew-split partitions also deal their outer
							// side round-robin; the shares are exact.
							d[m][dst] += float64(st.splitShare(m, p, dst)) * w
						}
					}
				}
			case st.owner[p] != m:
				d[m][st.owner[p]] += float64(st.allHistR[m][p]+st.allHistS[m][p]) * w
			}
		}
	}
	return d
}

// initNetSched builds this machine's communication schedule and
// adaptive transfer budgets after the histogram exchange (allocPools,
// single-threaded setup). No-op when unscheduled.
func (st *machineState) initNetSched(poolBuffers int) {
	if !st.cfg.netScheduled(st.nm) {
		return
	}
	demand := st.demandMatrix()
	plan := netsched.BuildPlan(st.cfg.NetSched, st.nm, demand)
	quantum := int64(st.cfg.NetSchedQuantum)
	if quantum == 0 {
		quantum = int64(4 * st.cfg.BufferSize)
	}
	sched := netsched.NewScheduler(plan, st.m.ID, quantum)

	// Budgets in buffers: start at the per-partition depth, ceiling at a
	// destination's fair share of the pool (its owned partitions times
	// the per-partition depth) — a hot target may deepen its pipeline
	// but never monopolise the pool.
	start := st.cfg.BuffersPerPartition
	maxB := st.cfg.BuffersPerPartition * ((st.np + st.nm - 1) / st.nm)
	if maxB <= start {
		maxB = start + 1
	}
	st.netBudget = netsched.NewAdaptiveSizer(demand[st.m.ID], start, 1, maxB)

	st.schedRounds = st.met.Counter("netsched_rounds_total")
	st.schedIdle = st.met.Counter("netsched_idle_rounds_total")
	st.schedParks = st.met.Counter("netsched_parks_total")
	st.schedOverrides = st.met.Counter("netsched_overrides_total")
	st.budgetWaits = st.met.Counter("netsched_budget_waits_total")
	roundGauge := st.met.Gauge("netsched_round")
	occGauge := st.met.Gauge("netsched_pairing_occupancy")
	budgetGauges := make([]*metrics.Gauge, st.nm)
	for dst := 0; dst < st.nm; dst++ {
		if dst == st.m.ID {
			continue
		}
		budgetGauges[dst] = st.met.Gauge("netsched_budget_buffers",
			metrics.L("dest", strconv.Itoa(dst)))
		budgetGauges[dst].Set(float64(start))
	}

	// Round transitions: counters, the occupancy gauge (fraction of
	// rounds that carried bytes), the adaptive resize step, and a
	// flight-recorder breadcrumb so /flightrec explains the pacing.
	// The hook runs under the scheduler lock — cheap work only.
	var rounds, idle float64
	sched.OnAdvance = func(round int64, target int, sent int64) {
		st.schedRounds.Inc()
		rounds++
		if sent == 0 {
			st.schedIdle.Inc()
			idle++
		}
		roundGauge.Set(float64(round + 1))
		occGauge.Set((rounds - idle) / rounds)
		st.netBudget.Resize()
		if st.cfg.Flight != nil {
			st.flight("netsched",
				"round "+strconv.FormatInt(round, 10)+" → m"+strconv.Itoa(target), 0, sent)
		}
	}
	st.netBudget.OnResize = func(dest, oldB, newB int) {
		if g := budgetGauges[dest]; g != nil {
			g.Set(float64(newB))
		}
		if st.cfg.Flight != nil {
			st.flight("resize",
				"m"+strconv.Itoa(dest)+" budget "+strconv.Itoa(oldB)+"→"+strconv.Itoa(newB), 0, 0)
		}
	}
	st.netSched = sched

	// Parked backlog cap: half of each pool's spare capacity (buffers
	// beyond one fill slot per destination stream) may sit parked; the
	// rest stays available for in-flight transfers, so the schedule
	// cannot starve the pipeline it is pacing.
	remote := st.np - len(st.resident)
	numBcast := len(st.resident) - len(st.owned)
	streams := remote + (numBcast+len(st.skewStats.SplitPartitions))*(st.nm-1)
	st.parkCap = (poolBuffers - streams) / 2
	if st.parkCap < 1 {
		st.parkCap = 1
	}

	// Per-destination in-flight accounting on every pool, and the pool
	// stall hooks feed the adaptive sizer (stalls shrink budgets).
	for _, pool := range st.pools {
		if pool == nil {
			continue
		}
		pool.destOf = make([]int32, poolBuffers)
		pool.inflightTo = make([]int, st.nm)
		prev := pool.onStall
		pool.onStall = func() {
			st.netBudget.NoteStall()
			if prev != nil {
				prev()
			}
		}
	}
}

// parkedBuf is a filled buffer held back by the communication schedule:
// its destination is not the sender's active pairing target. remoteCur
// is the pre-reserved exact-placement cursor (one-sided transports):
// reserved at park time, because later fills of the same partition may
// post before this buffer does.
type parkedBuf struct {
	buf       int32 // -1 once posted (tombstone)
	tuples    int32
	p         int
	isS       bool
	dest      int
	remoteCur int64
}

// ship routes one filled buffer through the communication schedule: an
// in-round destination posts immediately, everything else parks until
// its pairing round comes up (or a liveness override fires). With no
// scheduler this is exactly postBuffer.
func (st *machineState) ship(t int, ts *threadState, buf, tuples int32, p int, isS bool, dest int, remoteCur *int64) error {
	s := st.netSched
	if s == nil || s.Allowed(dest) {
		return st.postScheduled(t, ts, buf, tuples, p, isS, dest, remoteCur)
	}
	// Reserve the exact-placement cursor range now; the parked buffer
	// carries its own offset and may post out of order.
	off := *remoteCur
	*remoteCur += int64(tuples)
	ts.parked = append(ts.parked, parkedBuf{buf: buf, tuples: tuples, p: p, isS: isS, dest: dest, remoteCur: off})
	ts.parkedLive++
	s.Park(dest)
	st.schedParks.Inc()
	if ts.parkedLive > st.parkCap {
		// Bounded backlog: force the oldest parked buffer onto the wire
		// so out-of-round buffers cannot drown the pool.
		return st.postParkedFront(t, ts)
	}
	// Opportunistically drain whatever the current round does allow.
	return st.postParkedAllowed(t, ts)
}

// postScheduled posts one buffer and accounts the grant with the
// scheduler (quantum pacing).
func (st *machineState) postScheduled(t int, ts *threadState, buf, tuples int32, p int, isS bool, dest int, remoteCur *int64) error {
	length := int64(tuples) * int64(st.width)
	if err := st.postBuffer(t, ts, buf, tuples, p, isS, dest, remoteCur); err != nil {
		return err
	}
	if s := st.netSched; s != nil {
		s.Granted(dest, length)
	}
	return nil
}

// postParkedAllowed posts every parked buffer whose destination the
// current round allows. Safe to call with no scheduler (no-op).
func (st *machineState) postParkedAllowed(t int, ts *threadState) error {
	s := st.netSched
	if s == nil || ts.parkedLive == 0 {
		return nil
	}
	for i := ts.parkedHead; i < len(ts.parked); i++ {
		e := ts.parked[i]
		if e.buf < 0 || !s.Allowed(e.dest) {
			continue
		}
		ts.parked[i].buf = -1
		ts.parkedLive--
		s.Unpark(e.dest)
		if err := st.postScheduled(t, ts, e.buf, e.tuples, e.p, e.isS, e.dest, &ts.parked[i].remoteCur); err != nil {
			return err
		}
	}
	st.compactParked(ts)
	return nil
}

// postParkedFront force-posts the oldest parked buffer regardless of
// its round — the liveness override of the schedule, fired under pool
// pressure or a full parked backlog.
func (st *machineState) postParkedFront(t int, ts *threadState) error {
	s := st.netSched
	for i := ts.parkedHead; i < len(ts.parked); i++ {
		if ts.parked[i].buf < 0 {
			continue
		}
		e := ts.parked[i]
		ts.parked[i].buf = -1
		ts.parkedLive--
		s.Unpark(e.dest)
		if !s.Allowed(e.dest) {
			st.schedOverrides.Inc()
		}
		err := st.postScheduled(t, ts, e.buf, e.tuples, e.p, e.isS, e.dest, &ts.parked[i].remoteCur)
		st.compactParked(ts)
		return err
	}
	return nil
}

// compactParked retires leading tombstones; an empty queue resets to
// reuse the slice capacity.
func (st *machineState) compactParked(ts *threadState) {
	for ts.parkedHead < len(ts.parked) && ts.parked[ts.parkedHead].buf < 0 {
		ts.parkedHead++
	}
	if ts.parkedHead == len(ts.parked) {
		ts.parked = ts.parked[:0]
		ts.parkedHead = 0
	}
}

// acquireFor acquires a pool buffer for thread t, first making room by
// posting parked buffers whose round came up. The liveness override:
// when the pool runs dry with nothing in flight while buffers sit
// parked, the schedule itself holds the pool's capacity hostage — a
// dud round is kicked forward and, failing that, parked buffers post
// out of round. Without a scheduler this is exactly pool.acquire.
func (st *machineState) acquireFor(t int, ts *threadState) (int32, error) {
	pool := st.pools[t]
	if st.netSched != nil && ts.parkedLive > 0 {
		if err := st.postParkedAllowed(t, ts); err != nil {
			return 0, err
		}
		if err := pool.reap(); err != nil {
			return 0, err
		}
		if len(pool.free) == 0 && ts.parkedLive > 0 && st.netSched.Kick() {
			if err := st.postParkedAllowed(t, ts); err != nil {
				return 0, err
			}
		}
		for len(pool.free) == 0 && pool.outstanding == 0 && ts.parkedLive > 0 {
			if err := st.postParkedFront(t, ts); err != nil {
				return 0, err
			}
			if err := pool.reap(); err != nil {
				return 0, err
			}
		}
	}
	return pool.acquire()
}

// drainParked empties the thread's parked queue at the end of a scatter
// slice: post what the current round allows, and advance the schedule
// whenever nothing is eligible — the tail must flush everything before
// the pool drains (and before the EOP notifications fire). Advancing in
// plan order keeps even the tail near the pairing discipline.
func (st *machineState) drainParked(t int, ts *threadState) error {
	if st.netSched == nil {
		return nil
	}
	for ts.parkedLive > 0 {
		live := ts.parkedLive
		if err := st.postParkedAllowed(t, ts); err != nil {
			return err
		}
		if ts.parkedLive == live {
			st.netSched.Advance()
		}
	}
	return nil
}
