package core

import (
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"

	"rackjoin/internal/cluster"
	"rackjoin/internal/datagen"
	"rackjoin/internal/relation"
	"rackjoin/internal/trace"
)

func runJoin(t *testing.T, machines, cores int, dcfg datagen.Config, jcfg Config) (*Result, datagen.Expected) {
	t.Helper()
	c, err := cluster.New(cluster.Config{Machines: machines, CoresPerMachine: cores})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := datagen.Generate(dcfg)
	want := datagen.ExpectedJoin(w.Outer)
	inner := relation.Fragment(w.Inner, machines)
	outer := relation.Fragment(w.Outer, machines)
	res, err := Run(c, inner, outer, jcfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, want
}

func checkResult(t *testing.T, res *Result, want datagen.Expected) {
	t.Helper()
	if res.Matches != want.Matches {
		t.Fatalf("matches = %d, want %d", res.Matches, want.Matches)
	}
	if res.Checksum != want.Checksum {
		t.Fatalf("checksum = %d, want %d", res.Checksum, want.Checksum)
	}
}

var smallWorkload = datagen.Config{InnerTuples: 1 << 13, OuterTuples: 1 << 15, Seed: 42}

func TestJoinTwoSided(t *testing.T) {
	res, want := runJoin(t, 4, 4, smallWorkload, DefaultConfig())
	checkResult(t, res, want)
	if res.Net.BytesSent == 0 {
		t.Fatal("no network traffic recorded")
	}
	if res.Phases.Total() <= 0 {
		t.Fatal("no time recorded")
	}
}

func TestJoinOneSided(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = TransportOneSided
	res, want := runJoin(t, 4, 4, smallWorkload, cfg)
	checkResult(t, res, want)
}

func TestJoinStreamTransport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = TransportStream
	res, want := runJoin(t, 3, 4, smallWorkload, cfg)
	checkResult(t, res, want)
}

func TestJoinTCPTransport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = TransportTCP
	res, want := runJoin(t, 3, 4, smallWorkload, cfg)
	checkResult(t, res, want)
	// 2/3 of both relations (640 KB total) must cross the wire; control
	// traffic alone is only a few KB, so require a meaningful volume.
	wantBytes := uint64(2 * (smallWorkload.InnerTuples + smallWorkload.OuterTuples) * 16 / 3)
	if res.Net.BytesSent < wantBytes*9/10 {
		t.Fatalf("TCP traffic not accounted: got %d bytes, want ≈ %d", res.Net.BytesSent, wantBytes)
	}
}

func TestJoinTCPManyMachines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = TransportTCP
	res, want := runJoin(t, 6, 2, smallWorkload, cfg)
	checkResult(t, res, want)
}

func TestJoinTCPSkewed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = TransportTCP
	cfg.Assignment = AssignSizeSorted
	cfg.SkewSplitFactor = 2
	dcfg := datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 15, Skew: datagen.SkewHigh, Seed: 21}
	res, want := runJoin(t, 3, 3, dcfg, cfg)
	checkResult(t, res, want)
}

func TestJoinOneSidedAtomic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = TransportOneSidedAtomic
	res, want := runJoin(t, 4, 4, smallWorkload, cfg)
	checkResult(t, res, want)
}

func TestJoinOneSidedAtomicSkewed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = TransportOneSidedAtomic
	cfg.Assignment = AssignSizeSorted
	cfg.SkewSplitFactor = 2
	dcfg := datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 15, Skew: datagen.SkewHigh, Seed: 31}
	res, want := runJoin(t, 3, 2, dcfg, cfg)
	checkResult(t, res, want)
}

func TestJoinOneSidedAtomicNonInterleaved(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = TransportOneSidedAtomic
	cfg.Interleaved = false
	res, want := runJoin(t, 2, 2, smallWorkload, cfg)
	checkResult(t, res, want)
}

func TestJoinNonInterleaved(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interleaved = false
	res, want := runJoin(t, 3, 3, smallWorkload, cfg)
	checkResult(t, res, want)
}

func TestJoinTransportsAgree(t *testing.T) {
	var results []*Result
	for _, tr := range []Transport{TransportTwoSided, TransportOneSided, TransportStream, TransportTCP, TransportOneSidedAtomic} {
		cfg := DefaultConfig()
		cfg.Transport = tr
		res, want := runJoin(t, 4, 3, smallWorkload, cfg)
		checkResult(t, res, want)
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Matches != results[0].Matches || results[i].Checksum != results[0].Checksum {
			t.Fatalf("transport %d disagrees", i)
		}
	}
}

func TestJoinSingleMachine(t *testing.T) {
	res, want := runJoin(t, 1, 4, smallWorkload, DefaultConfig())
	checkResult(t, res, want)
	if res.Net.BytesSent != 0 {
		t.Fatalf("single machine should not touch the network, sent %d bytes", res.Net.BytesSent)
	}
}

func TestJoinTwoMachinesTwoCores(t *testing.T) {
	// Minimum viable two-sided setup: 1 partitioning thread + 1 network
	// thread per machine.
	res, want := runJoin(t, 2, 2, smallWorkload, DefaultConfig())
	checkResult(t, res, want)
}

func TestJoinManyMachines(t *testing.T) {
	res, want := runJoin(t, 10, 2, smallWorkload, DefaultConfig())
	checkResult(t, res, want)
	total := 0
	for _, n := range res.PartitionsPerMachine {
		if n == 0 {
			t.Fatal("a machine got no partitions")
		}
		total += n
	}
	if total != 1<<DefaultConfig().NetworkBits {
		t.Fatalf("partitions assigned: %d", total)
	}
}

func TestJoinRatioWorkloads(t *testing.T) {
	// Paper ratios 1:1 .. 1:16 (Section 6.1.1 / 6.4.2).
	for _, ratio := range []int{1, 2, 4, 8, 16} {
		dcfg := datagen.Config{InnerTuples: 1 << 11, OuterTuples: (1 << 11) * ratio, Seed: int64(ratio)}
		res, want := runJoin(t, 3, 3, dcfg, DefaultConfig())
		checkResult(t, res, want)
	}
}

func TestJoinSkewedWorkload(t *testing.T) {
	dcfg := datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 16, Skew: datagen.SkewHigh, Seed: 7}
	cfg := DefaultConfig()
	cfg.Assignment = AssignSizeSorted
	cfg.SkewSplitFactor = 2
	res, want := runJoin(t, 4, 4, dcfg, cfg)
	checkResult(t, res, want)
}

func TestJoinSkewedAllVariants(t *testing.T) {
	dcfg := datagen.Config{InnerTuples: 1 << 9, OuterTuples: 1 << 14, Skew: datagen.SkewLow, Seed: 8}
	for _, assign := range []Assignment{AssignRoundRobin, AssignSizeSorted} {
		for _, split := range []float64{0, 2} {
			cfg := DefaultConfig()
			cfg.Assignment = assign
			cfg.SkewSplitFactor = split
			res, want := runJoin(t, 3, 3, dcfg, cfg)
			checkResult(t, res, want)
		}
	}
}

func TestJoinWideTuples(t *testing.T) {
	for _, width := range []int{relation.Width16, relation.Width32, relation.Width64} {
		dcfg := datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 12, TupleWidth: width, Seed: 9}
		res, want := runJoin(t, 3, 3, dcfg, DefaultConfig())
		checkResult(t, res, want)
	}
}

func TestJoinNoLocalPass(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LocalBits = 0
	res, want := runJoin(t, 2, 2, smallWorkload, cfg)
	checkResult(t, res, want)
}

func TestJoinTinyBuffers(t *testing.T) {
	// One tuple per buffer: maximum flush pressure.
	cfg := DefaultConfig()
	cfg.BufferSize = 16
	res, want := runJoin(t, 3, 3, datagen.Config{InnerTuples: 1 << 9, OuterTuples: 1 << 11, Seed: 10}, cfg)
	checkResult(t, res, want)
}

func TestJoinSingleBufferPerPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BuffersPerPartition = 1
	res, want := runJoin(t, 3, 3, smallWorkload, cfg)
	checkResult(t, res, want)
}

func TestJoinEmptyRelations(t *testing.T) {
	c, err := cluster.New(cluster.Config{Machines: 2, CoresPerMachine: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	empty := relation.Fragment(relation.New(relation.Width16, 0), 2)
	res, err := Run(c, empty, empty, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 0 {
		t.Fatal("empty join should produce no matches")
	}
}

func TestJoinUnevenChunks(t *testing.T) {
	// All data initially on machine 0.
	c, err := cluster.New(cluster.Config{Machines: 3, CoresPerMachine: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 11, OuterTuples: 1 << 13, Seed: 11})
	want := datagen.ExpectedJoin(w.Outer)
	inner := &relation.Distributed{Chunks: []*relation.Relation{w.Inner, relation.New(16, 0), relation.New(16, 0)}}
	outer := &relation.Distributed{Chunks: []*relation.Relation{w.Outer, relation.New(16, 0), relation.New(16, 0)}}
	res, err := Run(c, inner, outer, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, want)
}

func TestJoinMaterialization(t *testing.T) {
	var mu sync.Mutex
	var total int
	var sumCheck uint64
	cfg := DefaultConfig()
	cfg.ResultSink = func(machine int, records []byte) {
		mu.Lock()
		defer mu.Unlock()
		total += len(records) / 24
		for off := 0; off < len(records); off += 24 {
			key := binary.LittleEndian.Uint64(records[off:])
			innerRID := binary.LittleEndian.Uint64(records[off+8:])
			outerRID := binary.LittleEndian.Uint64(records[off+16:])
			if innerRID != key-1 {
				panic("bad inner rid in materialised record")
			}
			sumCheck += key + innerRID + outerRID
		}
	}
	res, want := runJoin(t, 3, 3, datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 12, Seed: 12}, cfg)
	checkResult(t, res, want)
	if uint64(total) != want.Matches {
		t.Fatalf("materialised %d records, want %d", total, want.Matches)
	}
	if sumCheck != want.Checksum {
		t.Fatalf("materialised checksum %d, want %d", sumCheck, want.Checksum)
	}
}

func TestJoinPoolStallsWithSingleBuffer(t *testing.T) {
	// With a single buffer per remote partition and tiny buffers, every
	// flush forces the next acquisition for the same partition to wait.
	cfg := DefaultConfig()
	cfg.BuffersPerPartition = 1
	cfg.BufferSize = 16
	cfg.NetworkBits = 1 // 2 partitions over 2 machines: all remote traffic on one partition
	cfg.LocalBits = 8
	res, want := runJoin(t, 2, 2, datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 12, Seed: 13}, cfg)
	checkResult(t, res, want)
	if res.Net.PoolStalls == 0 {
		t.Fatal("expected pool stalls with a single tiny buffer per partition")
	}
}

func TestJoinValidation(t *testing.T) {
	c, err := cluster.New(cluster.Config{Machines: 2, CoresPerMachine: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := datagen.Generate(datagen.Config{InnerTuples: 64, OuterTuples: 128, Seed: 1})
	inner := relation.Fragment(w.Inner, 2)
	outer := relation.Fragment(w.Outer, 2)

	bad := DefaultConfig()
	bad.NetworkBits = 0
	if _, err := Run(c, inner, outer, bad); err == nil {
		t.Fatal("NetworkBits=0 should fail")
	}
	bad = DefaultConfig()
	bad.BufferSize = 8
	if _, err := Run(c, inner, outer, bad); err == nil {
		t.Fatal("BufferSize < width should fail")
	}
	bad = DefaultConfig()
	bad.BuffersPerPartition = 0
	if _, err := Run(c, inner, outer, bad); err == nil {
		t.Fatal("BuffersPerPartition=0 should fail")
	}
	bad = DefaultConfig()
	bad.SkewSplitFactor = -1
	if _, err := Run(c, inner, outer, bad); err == nil {
		t.Fatal("negative SkewSplitFactor should fail")
	}
	// Chunk count mismatch.
	if _, err := Run(c, relation.Fragment(w.Inner, 3), outer, DefaultConfig()); err == nil {
		t.Fatal("chunk mismatch should fail")
	}
	// Too few partitions for the machine count.
	bad = DefaultConfig()
	bad.NetworkBits = 1
	c4, err := cluster.New(cluster.Config{Machines: 4, CoresPerMachine: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c4.Close()
	if _, err := Run(c4, relation.Fragment(w.Inner, 4), relation.Fragment(w.Outer, 4), bad); err == nil {
		t.Fatal("2^b1 < machines should fail")
	}
	// Two-sided with a single core.
	c1, err := cluster.New(cluster.Config{Machines: 2, CoresPerMachine: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := Run(c1, inner, outer, DefaultConfig()); err == nil {
		t.Fatal("two-sided with one core should fail")
	}
	// One-sided with a single core is fine.
	oneSided := DefaultConfig()
	oneSided.Transport = TransportOneSided
	res, err := Run(c1, inner, outer, oneSided)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, datagen.ExpectedJoin(w.Outer))
}

func TestJoinRegistrationAccounting(t *testing.T) {
	res, want := runJoin(t, 2, 2, smallWorkload, DefaultConfig())
	checkResult(t, res, want)
	if res.Net.Registrations == 0 || res.Net.PagesRegistered == 0 {
		t.Fatalf("registration accounting missing: %+v", res.Net)
	}
}

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig()
	if cfg.NetworkBits != 10 || cfg.LocalBits != 10 || cfg.BufferSize != 64<<10 {
		t.Fatalf("unexpected paper config: %+v", cfg)
	}
	// Paper parameters must actually run (small data, few machines).
	res, want := runJoin(t, 2, 4, datagen.Config{InnerTuples: 1 << 12, OuterTuples: 1 << 13, Seed: 14}, cfg)
	checkResult(t, res, want)
}

func TestTransportAssignmentStrings(t *testing.T) {
	for _, tr := range []Transport{TransportTwoSided, TransportOneSided, TransportStream, TransportTCP, TransportOneSidedAtomic, Transport(9)} {
		if tr.String() == "" {
			t.Fatal("empty transport string")
		}
	}
	for _, a := range []Assignment{AssignRoundRobin, AssignSizeSorted, Assignment(9)} {
		if a.String() == "" {
			t.Fatal("empty assignment string")
		}
	}
}

// Property: the distributed join returns the analytically expected result
// across randomly drawn cluster shapes, transports and radix configs.
func TestPropertyDistributedJoinCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	f := func(seed int64, nm8, cores8, b1raw, b2raw, tr8, bufRaw uint8) bool {
		machines := int(nm8%5) + 1
		cores := int(cores8%3) + 2
		b1 := uint(b1raw%4) + 3 // 8..64 partitions
		b2 := uint(b2raw % 5)
		transport := Transport(tr8 % 5)
		bufSize := (int(bufRaw%7) + 1) * 64
		useed := uint64(seed)
		cfg := Config{
			NetworkBits: b1, LocalBits: b2, BufferSize: bufSize,
			BuffersPerPartition: int(bufRaw%2) + 1,
			Transport:           transport,
			Interleaved:         useed%2 == 0,
			Assignment:          Assignment(useed % 2),
			SkewSplitFactor:     float64(useed%3) * 1.5,
		}
		c, err := cluster.New(cluster.Config{Machines: machines, CoresPerMachine: cores})
		if err != nil {
			return false
		}
		defer c.Close()
		w := datagen.Generate(datagen.Config{InnerTuples: 700, OuterTuples: 2100, Seed: seed})
		want := datagen.ExpectedJoin(w.Outer)
		res, err := Run(c, relation.Fragment(w.Inner, machines), relation.Fragment(w.Outer, machines), cfg)
		if err != nil {
			t.Logf("seed %d cfg %+v: %v", seed, cfg, err)
			return false
		}
		return res.Matches == want.Matches && res.Checksum == want.Checksum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinCoordinatorExchange(t *testing.T) {
	// Section 4.1's alternative histogram topology: gather at a
	// predesignated coordinator, combine, broadcast.
	for _, tr := range []Transport{TransportTwoSided, TransportOneSided} {
		cfg := DefaultConfig()
		cfg.Exchange = ExchangeCoordinator
		cfg.Transport = tr
		res, want := runJoin(t, 4, 3, smallWorkload, cfg)
		checkResult(t, res, want)
	}
}

func TestJoinCoordinatorExchangeSingleMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Exchange = ExchangeCoordinator
	res, want := runJoin(t, 1, 3, smallWorkload, cfg)
	checkResult(t, res, want)
}

func TestJoinTracing(t *testing.T) {
	tr := trace.New()
	cfg := DefaultConfig()
	cfg.Trace = tr
	res, want := runJoin(t, 3, 3, smallWorkload, cfg)
	checkResult(t, res, want)
	events := tr.Events()
	// The causal trace carries run roots, phases, barriers, message and
	// readiness instants and task spans; the phase layer is still exactly
	// 3 machines × 3 phases.
	phases := map[string]int{}
	runs := 0
	rooted := 0
	byID := map[trace.SpanID]trace.Event{}
	for _, e := range events {
		byID[e.ID] = e
	}
	for _, e := range events {
		switch e.Kind {
		case "phase":
			phases[e.Label]++
			if parent, ok := byID[e.Parent]; ok && parent.Kind == "run" {
				rooted++
			}
		case "run":
			runs++
		}
	}
	for _, l := range []string{"histogram", "network partition", "local+build-probe"} {
		if phases[l] != 3 {
			t.Fatalf("phase %q recorded %d times, want 3\nphases: %v", l, phases[l], phases)
		}
	}
	if runs != 3 {
		t.Fatalf("run root spans = %d, want 3", runs)
	}
	if rooted != 9 {
		t.Fatalf("%d phase spans parented to a run root, want 9", rooted)
	}
	// Two-sided transport: every data message yields a matched
	// cross-machine flow edge, and partition readiness is linked too.
	classes := map[string]int{}
	for _, f := range tr.Flows() {
		classes[f.Class]++
	}
	if classes["msg"] == 0 || classes["ready"] == 0 {
		t.Fatalf("causal flow edges missing: %v", classes)
	}
	if tr.Total() <= 0 {
		t.Fatal("trace total should be positive")
	}
	// The causal graph is complete enough for critical-path extraction:
	// the walk must cover (nearly) the whole wall clock.
	cp, err := tr.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Coverage < 0.95 {
		t.Fatalf("critical-path coverage = %.3f, want ≥ 0.95", cp.Coverage)
	}
}

func TestJoinEverythingEnabled(t *testing.T) {
	// Kitchen sink: every optional feature at once — size-sorted
	// assignment, coordinator histogram exchange, skew splitting,
	// inter-machine work sharing, remote result shipping and tracing —
	// over a heavily skewed workload.
	tr := trace.New()
	var mu sync.Mutex
	var records int
	cfg := DefaultConfig()
	cfg.Assignment = AssignSizeSorted
	cfg.Exchange = ExchangeCoordinator
	cfg.SkewSplitFactor = 2
	cfg.BroadcastFactor = 4
	cfg.Trace = tr
	cfg.ResultTarget = 1
	cfg.ResultSink = func(machine int, recs []byte) {
		mu.Lock()
		defer mu.Unlock()
		if machine != 1 {
			t.Errorf("records on machine %d, want 1", machine)
		}
		records += len(recs) / 24
	}
	dcfg := datagen.Config{InnerTuples: 1 << 11, OuterTuples: 1 << 15, Skew: datagen.SkewHigh, Seed: 99}
	res, want := runJoin(t, 4, 4, dcfg, cfg)
	checkResult(t, res, want)
	if uint64(records) != want.Matches {
		t.Fatalf("shipped %d records, want %d", records, want.Matches)
	}
	phaseSpans := 0
	for _, e := range tr.Events() {
		if e.Kind == "phase" {
			phaseSpans++
		}
	}
	if phaseSpans != 12 { // 4 machines × 3 phases
		t.Fatalf("phase spans = %d, want 12", phaseSpans)
	}
}

func TestJoinOneSidedRead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = TransportOneSidedRead
	res, want := runJoin(t, 4, 4, smallWorkload, cfg)
	checkResult(t, res, want)
}

func TestJoinOneSidedReadSingleMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = TransportOneSidedRead
	res, want := runJoin(t, 1, 2, smallWorkload, cfg)
	checkResult(t, res, want)
}

func TestJoinOneSidedReadSkewed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = TransportOneSidedRead
	cfg.Assignment = AssignSizeSorted
	cfg.SkewSplitFactor = 2
	dcfg := datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 15, Skew: datagen.SkewHigh, Seed: 61}
	res, want := runJoin(t, 3, 2, dcfg, cfg)
	checkResult(t, res, want)
}

func TestJoinOneSidedReadTinyChunks(t *testing.T) {
	// One-tuple READ granularity: maximum round-trip pressure.
	cfg := DefaultConfig()
	cfg.Transport = TransportOneSidedRead
	cfg.BufferSize = 16
	res, want := runJoin(t, 3, 2, datagen.Config{InnerTuples: 1 << 9, OuterTuples: 1 << 11, Seed: 62}, cfg)
	checkResult(t, res, want)
}

func TestJoinOneSidedReadRejectsBroadcast(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = TransportOneSidedRead
	cfg.BroadcastFactor = 2
	if err := cfg.validate(3, 3, 16); err == nil {
		t.Fatal("pull transport with work sharing should fail validation")
	}
}

func TestJoinReadMatchesPush(t *testing.T) {
	pull := DefaultConfig()
	pull.Transport = TransportOneSidedRead
	push := DefaultConfig()
	push.Transport = TransportOneSided
	a, want := runJoin(t, 4, 3, smallWorkload, pull)
	checkResult(t, a, want)
	b, _ := runJoin(t, 4, 3, smallWorkload, push)
	if a.Matches != b.Matches || a.Checksum != b.Checksum {
		t.Fatal("pull and push disagree")
	}
}
