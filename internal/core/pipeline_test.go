package core

import (
	"fmt"
	"sync"
	"testing"

	"rackjoin/internal/datagen"
)

// TestPipelinedEquivalence is the acceptance matrix of the partition-ready
// pipeline: on every transport × assignment × broadcast configuration the
// pipelined run must produce the exact Matches/Checksum of the barrier run
// (both are checked against the generator's expected join).
func TestPipelinedEquivalence(t *testing.T) {
	workload := datagen.Config{InnerTuples: 1 << 12, OuterTuples: 1 << 14, Seed: 7, Skew: datagen.SkewHigh}
	transports := []Transport{TransportTwoSided, TransportOneSided, TransportStream, TransportTCP, TransportOneSidedAtomic}
	assignments := []Assignment{AssignRoundRobin, AssignSizeSorted}
	for _, tr := range transports {
		for _, as := range assignments {
			for _, bcast := range []float64{0, 4} {
				tr, as, bcast := tr, as, bcast
				name := fmt.Sprintf("%v/%v/bcast=%v", tr, as, bcast)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					cfg := DefaultConfig()
					cfg.Transport = tr
					cfg.Assignment = as
					cfg.BroadcastFactor = bcast
					cfg.SkewSplitFactor = 2

					cfg.Pipeline = false
					barrier, want := runJoin(t, 3, 3, workload, cfg)
					checkResult(t, barrier, want)

					cfg.Pipeline = true
					piped, _ := runJoin(t, 3, 3, workload, cfg)
					checkResult(t, piped, want)
					if piped.Matches != barrier.Matches || piped.Checksum != barrier.Checksum {
						t.Fatalf("pipelined result diverges: matches %d vs %d, checksum %d vs %d",
							piped.Matches, barrier.Matches, piped.Checksum, barrier.Checksum)
					}
				})
			}
		}
	}
}

// TestPipelinedPullFallback: the pull transport cannot pipeline (its
// network pass starts only after every sender staged); Pipeline=true must
// silently fall back to the barrier and stay correct.
func TestPipelinedPullFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = TransportOneSidedRead
	cfg.Pipeline = true
	res, want := runJoin(t, 3, 3, smallWorkload, cfg)
	checkResult(t, res, want)
	for m, o := range res.PipelineOverlap {
		if o != 0 {
			t.Fatalf("machine %d reports overlap %v on the barrier fallback", m, o)
		}
	}
}

// TestPipelinedSingleMachine: with one machine there is no network pass to
// overlap, but the scheduler path must still drain every partition.
func TestPipelinedSingleMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pipeline = true
	res, want := runJoin(t, 1, 4, smallWorkload, cfg)
	checkResult(t, res, want)
}

// TestPipelinedOverlapReported: on a multi-machine channel-semantics run
// the pipelined mode should record a non-negative overlap and phases that
// still sum to a sensible wall clock.
func TestPipelinedOverlapReported(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pipeline = true
	res, want := runJoin(t, 4, 4, smallWorkload, cfg)
	checkResult(t, res, want)
	if len(res.PipelineOverlap) != 4 {
		t.Fatalf("PipelineOverlap has %d entries, want 4", len(res.PipelineOverlap))
	}
	for m, o := range res.PipelineOverlap {
		if o < 0 {
			t.Fatalf("machine %d overlap %v < 0", m, o)
		}
	}
	for m, ph := range res.PerMachine {
		if ph.NetworkPartition < 0 || ph.LocalPartition < 0 || ph.BuildProbe < 0 {
			t.Fatalf("machine %d has a negative phase: %+v", m, ph)
		}
	}
}

// TestPipelinedResultShipping: pipelined mode under the remote-result
// plane (workers ship materialised results to a target machine while the
// network pass may still be draining).
func TestPipelinedResultShipping(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		pipeline := pipeline
		t.Run(fmt.Sprintf("pipeline=%v", pipeline), func(t *testing.T) {
			var sunk uint64
			cfg := DefaultConfig()
			cfg.Pipeline = pipeline
			cfg.ResultTarget = 1
			var sinkMu sync.Mutex
			cfg.ResultSink = func(machine int, records []byte) {
				sinkMu.Lock()
				sunk += uint64(len(records))
				sinkMu.Unlock()
			}
			res, want := runJoin(t, 3, 3, smallWorkload, cfg)
			checkResult(t, res, want)
			sinkMu.Lock()
			defer sinkMu.Unlock()
			if total := res.Matches * 24; sunk != total {
				t.Fatalf("sink received %d bytes, want %d", sunk, total)
			}
		})
	}
}
