package core

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"rackjoin/internal/metrics"
	"rackjoin/internal/radix"
	"rackjoin/internal/rdma"
	"rackjoin/internal/relation"
)

// TransportOneSidedRead is the pull counterpart of the paper's push
// designs (Section 3.2.2 describes both one-sided directions: "data is
// directly written into or read from a specified RDMA-enabled buffer
// without any interaction from the remote host"): every machine first
// partitions its whole input into a locally staged, RDMA-readable region;
// after a barrier, each partition's owner pulls the remote pieces with
// one-sided READs directly into its destination region.
//
// Pulling cannot interleave partitioning with communication — the stage
// must complete before any byte can move — so it behaves like the
// non-interleaved ablation plus an extra materialisation, which is why
// the paper's sender-push design wins; the abl-pull experiment
// quantifies it.
const TransportOneSidedRead Transport = 8

// pullChunk is the READ granularity: large enough to amortise the
// round-trip, bounded so several reads pipeline per queue pair.
func (st *machineState) pullChunkTuples() int {
	c := st.cfg.BufferSize / st.width
	if c < 1 {
		c = 1
	}
	return c
}

// stageLocal partitions this machine's input into the staging slabs
// (step 1 of the pull pass). Thread write offsets come from the same
// per-thread histograms the push transports use.
func (st *machineState) stageLocal() error {
	machineHistR := sumHists(st.threadHistR, st.np)
	machineHistS := sumHists(st.threadHistS, st.np)
	offR, totalR := radix.PrefixSum(machineHistR)
	offS, totalS := radix.PrefixSum(machineHistS)
	st.stageOffR, st.stageOffS = offR, offS
	st.stageR = relation.New(st.width, int(totalR))
	st.stageS = relation.New(st.width, int(totalS))
	var err error
	if st.stageR.Size() > 0 {
		if st.stageMRR, err = st.m.PD.RegisterMemory(st.stageR.Bytes(), rdma.AccessRemoteRead); err != nil {
			return err
		}
	}
	if st.stageS.Size() > 0 {
		if st.stageMRS, err = st.m.PD.RegisterMemory(st.stageS.Bytes(), rdma.AccessRemoteRead); err != nil {
			return err
		}
	}

	var wg sync.WaitGroup
	scatter := func(t int, rel, stage *relation.Relation, hists [][]int64, off []int64) {
		defer wg.Done()
		cursors := make([]int64, st.np)
		for p := 0; p < st.np; p++ {
			cursors[p] = off[p] + threadPrefix(hists, t, p)
		}
		n := rel.Len()
		radix.Scatter(rel.Slice(n*t/st.partThreads, n*(t+1)/st.partThreads), stage, cursors, 0, st.cfg.NetworkBits)
	}
	for t := 0; t < st.partThreads; t++ {
		wg.Add(2)
		go scatter(t, st.R, st.stageR, st.threadHistR, offR)
		go scatter(t, st.S, st.stageS, st.threadHistS, offS)
	}
	wg.Wait()
	return nil
}

// exchangeStageRKeys advertises the staging region keys.
func (st *machineState) exchangeStageRKeys() error {
	if st.nm == 1 {
		return nil
	}
	vec := make([]uint64, 2)
	if st.stageMRR != nil {
		vec[0] = uint64(st.stageMRR.RKey())
	}
	if st.stageMRS != nil {
		vec[1] = uint64(st.stageMRS.RKey())
	}
	all, err := st.m.AllGatherUint64(vec)
	if err != nil {
		return err
	}
	st.stageRkeysR = make([]uint64, st.nm)
	st.stageRkeysS = make([]uint64, st.nm)
	for m, v := range all {
		st.stageRkeysR[m] = v[0]
		st.stageRkeysS[m] = v[1]
	}
	return nil
}

// senderStageOffset returns the tuple offset of partition p within sender
// m's staging slab, derived from the exchanged machine histograms.
func senderStageOffset(all [][]uint64, m, p int) int64 {
	var off int64
	for q := 0; q < p; q++ {
		off += int64(all[m][q])
	}
	return off
}

// pullStats is one pull worker's stall accounting, mirroring the push
// side's bufferPool counters: a stall is a READ issue that had to wait on
// a completion because the outstanding window was full.
type pullStats struct {
	stalls   uint64
	stallCtr *metrics.Counter
	waitHist *metrics.Histogram
}

func (st *machineState) newPullStats(core int) *pullStats {
	ts := st.met.With(metrics.L("thread", strconv.Itoa(core)))
	return &pullStats{
		stallCtr: ts.Counter("netpass_buffer_stalls_total"),
		waitHist: ts.Histogram("netpass_buffer_wait_seconds"),
	}
}

// pullNetworkPass runs the read-based network pass: stage, barrier, pull.
func (st *machineState) pullNetworkPass() error {
	if err := st.stageLocal(); err != nil {
		return err
	}
	if err := st.exchangeStageRKeys(); err != nil {
		return err
	}
	// All senders must finish staging before anyone reads.
	if err := st.m.Barrier(); err != nil {
		return err
	}

	// Copy the local shares into the destination slabs (append layout:
	// local first) and pull the remote shares. Work is distributed over
	// the resident partitions round-robin across all cores.
	type task struct{ p int }
	tasks := make(chan task)
	errs := make([]error, st.m.Cores)
	stats := make([]*pullStats, st.m.Cores)
	var wg sync.WaitGroup
	for c := 0; c < st.m.Cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stats[c] = st.newPullStats(c)
			for tk := range tasks {
				if err := st.pullPartition(c, stats[c], tk.p); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	for _, p := range st.resident {
		tasks <- task{p}
	}
	close(tasks)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Fold worker stalls into the machine total, like the push path does
	// for its pools, so Result.Net.PoolStalls covers every transport.
	for _, ps := range stats {
		if ps != nil {
			st.poolStalls += ps.stalls
		}
	}
	return nil
}

// pullPartition assembles owned partition p: memcpy of the local staged
// share, then chunked one-sided READs of every remote share.
func (st *machineState) pullPartition(core int, ps *pullStats, p int) error {
	w := int64(st.width)
	for _, rel := range []bool{false, true} {
		slab, mr := st.slabR, st.mrR
		stage, stageOff := st.stageR, st.stageOffR
		all := st.allHistR
		rkeys := st.stageRkeysR
		slabOff := st.slabOffR[st.m.ID][p]
		if rel {
			slab, mr = st.slabS, st.mrS
			stage, stageOff = st.stageS, st.stageOffS
			all = st.allHistS
			rkeys = st.stageRkeysS
			slabOff = st.slabOffS[st.m.ID][p]
		}
		// Local share: staged → destination, a plain copy.
		selfTuples := int64(all[st.m.ID][p])
		cursor := slabOff * w
		copy(slab.Bytes()[cursor:], stage.Bytes()[stageOff[p]*w:(stageOff[p]+selfTuples)*w])
		cursor += selfTuples * w

		// Remote shares: chunked READs, pipelined per sender.
		for m := 0; m < st.nm; m++ {
			if m == st.m.ID {
				continue
			}
			tuples := int64(all[m][p])
			if tuples == 0 {
				continue
			}
			qp := st.qps[core%st.partThreads][m]
			cq := st.sendCQ[core%st.partThreads]
			remoteOff := senderStageOffset(all, m, p) * w
			chunk := int64(st.pullChunkTuples())
			outstanding := 0
			for done := int64(0); done < tuples; done += chunk {
				n := chunk
				if done+n > tuples {
					n = tuples - done
				}
				err := qp.PostSend(rdma.SendWR{
					Op: rdma.OpRead, Signaled: true,
					Local:  rdma.Segment{MR: mr, Offset: int(cursor), Length: int(n * w)},
					Remote: rdma.RemoteSegment{RKey: uint32(rkeys[m]), Offset: int(remoteOff + done*w)},
				})
				if err != nil {
					return err
				}
				cursor += n * w
				outstanding++
				if outstanding >= st.cfg.BuffersPerPartition {
					// Window full: this wait is back-pressure, the pull
					// counterpart of a push-side pool stall. The final
					// drain below is not — it ends the transfer, it does
					// not delay one.
					ps.stalls++
					ps.stallCtr.Inc()
					waitStart := time.Now()
					if c := cq.Wait(); c.Err() != nil {
						return c.Err()
					}
					ps.waitHist.ObserveSince(waitStart)
					outstanding--
				}
			}
			for ; outstanding > 0; outstanding-- {
				if c := cq.Wait(); c.Err() != nil {
					return c.Err()
				}
			}
		}
	}
	return nil
}

// validatePull checks pull-mode preconditions (called from validate).
func validatePull(cfg *Config, cores int) error {
	if cfg.BroadcastFactor > 0 {
		return fmt.Errorf("core: work sharing is not supported by the pull transport")
	}
	_ = cores
	return nil
}
