package core

import (
	"testing"
	"testing/quick"

	"rackjoin/internal/cluster"
	"rackjoin/internal/datagen"
	"rackjoin/internal/relation"
)

// skewedForBroadcast is a workload where one key dominates the outer
// relation: its partition qualifies for selective broadcast (|S_p| far
// above average and far above N_M·|R_p|).
var skewedForBroadcast = datagen.Config{
	InnerTuples: 1 << 12, OuterTuples: 1 << 16,
	Skew: datagen.SkewHigh, Seed: 77,
}

func broadcastConfig() Config {
	cfg := DefaultConfig()
	cfg.Assignment = AssignSizeSorted
	cfg.SkewSplitFactor = 2
	cfg.BroadcastFactor = 4
	return cfg
}

func TestBroadcastJoinCorrect(t *testing.T) {
	res, want := runJoin(t, 4, 4, skewedForBroadcast, broadcastConfig())
	checkResult(t, res, want)
	// The hot partition must actually be shared: resident partition
	// counts then sum to more than the partition count.
	total := 0
	for _, n := range res.PartitionsPerMachine {
		total += n
	}
	if total <= 1<<broadcastConfig().NetworkBits {
		t.Fatalf("no partition was broadcast (resident sum %d)", total)
	}
}

func TestBroadcastAllTransports(t *testing.T) {
	for _, tr := range []Transport{TransportTwoSided, TransportOneSided, TransportStream, TransportTCP, TransportOneSidedAtomic} {
		cfg := broadcastConfig()
		cfg.Transport = tr
		res, want := runJoin(t, 3, 3, skewedForBroadcast, cfg)
		checkResult(t, res, want)
	}
}

func TestBroadcastReducesNetworkTraffic(t *testing.T) {
	// With the hot outer partition kept local and only the small inner
	// side replicated, far fewer bytes cross the network.
	noShare := broadcastConfig()
	noShare.BroadcastFactor = 0
	withShare := broadcastConfig()

	resNo, want := runJoin(t, 4, 4, skewedForBroadcast, noShare)
	checkResult(t, resNo, want)
	resYes, want := runJoin(t, 4, 4, skewedForBroadcast, withShare)
	checkResult(t, resYes, want)
	if resYes.Net.BytesSent >= resNo.Net.BytesSent {
		t.Fatalf("broadcast should reduce traffic: %d vs %d bytes",
			resYes.Net.BytesSent, resNo.Net.BytesSent)
	}
}

func TestBroadcastUniformDataUnaffected(t *testing.T) {
	// On uniform data no partition qualifies; results and assignment
	// match the plain configuration.
	cfg := DefaultConfig()
	cfg.BroadcastFactor = 4
	res, want := runJoin(t, 4, 4, smallWorkload, cfg)
	checkResult(t, res, want)
	total := 0
	for _, n := range res.PartitionsPerMachine {
		total += n
	}
	if total != 1<<cfg.NetworkBits {
		t.Fatalf("uniform data should broadcast nothing, resident sum %d", total)
	}
}

func TestBroadcastIgnoresSmallOuter(t *testing.T) {
	// A hot partition whose outer side is NOT much larger than N_M times
	// its inner side must not be broadcast (shipping S is cheaper).
	// 1:1 relation sizes guarantee |S_p| ≈ |R_p| even under mild skew.
	dcfg := datagen.Config{InnerTuples: 1 << 12, OuterTuples: 1 << 12, Seed: 5}
	cfg := DefaultConfig()
	cfg.BroadcastFactor = 1.01
	res, want := runJoin(t, 4, 2, dcfg, cfg)
	checkResult(t, res, want)
	total := 0
	for _, n := range res.PartitionsPerMachine {
		total += n
	}
	if total != 1<<cfg.NetworkBits {
		t.Fatalf("1:1 workload should broadcast nothing, resident sum %d", total)
	}
}

func TestBroadcastWithMaterialization(t *testing.T) {
	cfg := broadcastConfig()
	var total int64
	var lock chan struct{} = make(chan struct{}, 1)
	lock <- struct{}{}
	cfg.ResultSink = func(machine int, records []byte) {
		<-lock
		total += int64(len(records) / 24)
		lock <- struct{}{}
	}
	res, want := runJoin(t, 3, 3, skewedForBroadcast, cfg)
	checkResult(t, res, want)
	if uint64(total) != want.Matches {
		t.Fatalf("materialised %d records, want %d", total, want.Matches)
	}
}

// Property: the join result is invariant under broadcast factor, transport
// and machine count for skewed workloads.
func TestPropertyBroadcastInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64, nm8, tr8, fac8 uint8) bool {
		machines := int(nm8%4) + 2
		transport := Transport(tr8 % 5)
		cfg := DefaultConfig()
		cfg.Transport = transport
		cfg.Assignment = AssignSizeSorted
		cfg.SkewSplitFactor = 2
		cfg.BroadcastFactor = float64(fac8%8) + 1
		cfg.NetworkBits = 5
		dcfg := datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 14, Skew: datagen.SkewHigh, Seed: seed}
		w := datagen.Generate(dcfg)
		want := datagen.ExpectedJoin(w.Outer)
		res, wantCheck := runJoinQuick(machines, 3, w, cfg)
		if res == nil {
			return false
		}
		_ = wantCheck
		return res.Matches == want.Matches && res.Checksum == want.Checksum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// runJoinQuick is the error-swallowing variant used by property tests.
func runJoinQuick(machines, cores int, w datagen.Workload, jcfg Config) (*Result, datagen.Expected) {
	c, err := cluster.New(cluster.Config{Machines: machines, CoresPerMachine: cores})
	if err != nil {
		return nil, datagen.Expected{}
	}
	defer c.Close()
	want := datagen.ExpectedJoin(w.Outer)
	res, err := Run(c, relation.Fragment(w.Inner, machines), relation.Fragment(w.Outer, machines), jcfg)
	if err != nil {
		return nil, want
	}
	return res, want
}
