package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestTaskQueueDrainsSplits exercises the skew-split shape: popped tasks
// push further tasks, several workers consume concurrently, and the queue
// must run every task exactly once before pop reports drained.
func TestTaskQueueDrainsSplits(t *testing.T) {
	queue := newTaskQueue()
	var ran atomic.Int64
	const roots = 50
	const splits = 20
	for i := 0; i < roots; i++ {
		queue.push(func(w *joinWorker) {
			ran.Add(1)
			for j := 0; j < splits; j++ {
				queue.push(func(w *joinWorker) { ran.Add(1) })
			}
		})
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				task, ok := queue.pop()
				if !ok {
					return
				}
				task(nil)
				queue.done()
			}
		}()
	}
	wg.Wait()

	if got, want := ran.Load(), int64(roots*(1+splits)); got != want {
		t.Fatalf("ran %d tasks, want %d", got, want)
	}
	if queue.pending != 0 {
		t.Fatalf("pending = %d after drain", queue.pending)
	}
	// The consumed prefix must not stay reachable: a drained queue rewinds
	// to an empty slice (the q.tasks[1:] bug retained every closure).
	if queue.head != 0 || len(queue.tasks) != 0 {
		t.Fatalf("queue not rewound after drain: head=%d len=%d", queue.head, len(queue.tasks))
	}
}

// TestTaskQueuePopReleasesSlots: each consumed slot is nil'd immediately,
// even while the queue is still non-empty.
func TestTaskQueuePopReleasesSlots(t *testing.T) {
	queue := newTaskQueue()
	for i := 0; i < 3; i++ {
		queue.push(func(w *joinWorker) {})
	}
	if _, ok := queue.pop(); !ok {
		t.Fatal("pop failed on non-empty queue")
	}
	if queue.tasks[0] != nil {
		t.Fatal("consumed slot still holds its closure")
	}
	queue.done()
}
