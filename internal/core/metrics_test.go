package core

import (
	"math"
	"strconv"
	"testing"

	"rackjoin/internal/cluster"
	"rackjoin/internal/datagen"
	"rackjoin/internal/metrics"
	"rackjoin/internal/relation"
)

// TestJoinMetrics runs a small distributed join and checks the telemetry
// the run leaves in the supplied registry: device byte counters, the
// buffer-wait histogram series, per-partition shipped bytes, and phase
// gauges that agree with the Result's own phase breakdown.
func TestJoinMetrics(t *testing.T) {
	const machines = 4
	c, err := cluster.New(cluster.Config{Machines: machines, CoresPerMachine: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := datagen.Generate(smallWorkload)
	inner := relation.Fragment(w.Inner, machines)
	outer := relation.Fragment(w.Outer, machines)

	reg := metrics.NewRegistry()
	cfg := DefaultConfig()
	cfg.Metrics = reg
	res, err := Run(c, inner, outer, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The explicit registry is separate from the cluster's own, so device
	// counters live in c.Metrics(); join-level series live in reg.
	var rdmaBytes float64
	for _, s := range c.Metrics().Snapshot() {
		if s.Name == "rdma_bytes_sent_total" {
			rdmaBytes += s.Value
		}
	}
	if rdmaBytes == 0 {
		t.Fatal("rdma_bytes_sent_total is zero after a 4-machine join")
	}

	var waitSeries, shippedBytes float64
	phaseGauges := map[string]map[string]float64{}
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "netpass_buffer_wait_seconds":
			waitSeries++
		case "netpass_bytes_shipped_total":
			shippedBytes += s.Value
		case "phase_seconds":
			m := s.Labels["machine"]
			if phaseGauges[m] == nil {
				phaseGauges[m] = map[string]float64{}
			}
			phaseGauges[m][s.Labels["phase"]] = s.Value
		}
	}
	if waitSeries == 0 {
		t.Fatal("no netpass_buffer_wait_seconds series registered")
	}
	if shippedBytes == 0 {
		t.Fatal("netpass_bytes_shipped_total is zero")
	}
	if len(phaseGauges) != machines {
		t.Fatalf("phase gauges cover %d machines, want %d", len(phaseGauges), machines)
	}
	// Gauges are set from the same values Result reports, so they must
	// agree to float64 rounding.
	for m, pm := range res.PerMachine {
		g := phaseGauges[strconv.Itoa(m)]
		for phase, want := range map[string]float64{
			"histogram":         pm.Histogram.Seconds(),
			"network_partition": pm.NetworkPartition.Seconds(),
			"local_partition":   pm.LocalPartition.Seconds(),
			"build_probe":       pm.BuildProbe.Seconds(),
		} {
			if got := g[phase]; math.Abs(got-want) > 1e-9 {
				t.Fatalf("machine %d %s gauge = %g, result reports %g", m, phase, got, want)
			}
		}
	}
}

// TestJoinMetricsDefaultRegistry checks Run falls back to the cluster's
// registry when Config.Metrics is nil.
func TestJoinMetricsDefaultRegistry(t *testing.T) {
	const machines = 2
	c, err := cluster.New(cluster.Config{Machines: machines, CoresPerMachine: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 11, Seed: 7})
	if _, err := Run(c, relation.Fragment(w.Inner, machines), relation.Fragment(w.Outer, machines), DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, s := range c.Metrics().Snapshot() {
		found[s.Name] = true
	}
	for _, name := range []string{"rdma_bytes_sent_total", "netpass_buffer_wait_seconds", "phase_seconds", "netpass_buffer_flushes_total"} {
		if !found[name] {
			t.Fatalf("cluster registry missing %s after join; have %v", name, found)
		}
	}
}
