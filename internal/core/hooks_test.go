package core

import (
	"sync"
	"testing"
	"time"
)

func TestLifecycleHooks(t *testing.T) {
	const machines = 4
	type fired struct {
		machine int
		phase   string
	}
	var mu sync.Mutex
	var phases []fired
	var completed []*Result

	cfg := DefaultConfig()
	cfg.OnPhase = func(machine int, phase string, d time.Duration) {
		if d < 0 {
			t.Errorf("machine %d phase %s: negative duration %v", machine, phase, d)
		}
		mu.Lock()
		phases = append(phases, fired{machine, phase})
		mu.Unlock()
	}
	cfg.OnComplete = func(res *Result) {
		mu.Lock()
		completed = append(completed, res)
		mu.Unlock()
	}
	res, want := runJoin(t, machines, 4, smallWorkload, cfg)
	checkResult(t, res, want)

	if len(completed) != 1 {
		t.Fatalf("OnComplete fired %d times, want 1", len(completed))
	}
	if completed[0] != res {
		t.Error("OnComplete saw a different Result than Run returned")
	}

	// Every machine fires every phase exactly once, in phase order.
	order := []string{"histogram", "network_partition", "local_partition", "build_probe"}
	perMachine := make(map[int][]string)
	for _, f := range phases {
		perMachine[f.machine] = append(perMachine[f.machine], f.phase)
	}
	if len(perMachine) != machines {
		t.Fatalf("hooks fired on %d machines, want %d", len(perMachine), machines)
	}
	for m, seq := range perMachine {
		if len(seq) != len(order) {
			t.Fatalf("machine %d fired %v, want %v", m, seq, order)
		}
		for i, ph := range order {
			if seq[i] != ph {
				t.Errorf("machine %d phase %d = %s, want %s", m, i, seq[i], ph)
			}
		}
	}
}

func TestOnPhaseFiresBeforeCompletion(t *testing.T) {
	// The histogram and network-partition hooks fire mid-run: strictly
	// before OnComplete, so a live observer sees the breakdown grow.
	var mu sync.Mutex
	seen := make(map[string]bool)
	earlyAtComplete := false

	cfg := DefaultConfig()
	cfg.OnPhase = func(machine int, phase string, d time.Duration) {
		mu.Lock()
		seen[phase] = true
		mu.Unlock()
	}
	cfg.OnComplete = func(*Result) {
		mu.Lock()
		earlyAtComplete = seen["histogram"] && seen["network_partition"]
		mu.Unlock()
	}
	res, want := runJoin(t, 2, 4, smallWorkload, cfg)
	checkResult(t, res, want)
	if !earlyAtComplete {
		t.Error("histogram/network_partition hooks had not fired by OnComplete")
	}
}
