// Package core implements the paper's contribution: the distributed radix
// hash join using RDMA (Section 4).
//
// The join runs on a cluster.Cluster and proceeds in the paper's four
// phases:
//
//  1. Histogram computation — per-thread histograms are combined into
//     machine-level histograms, exchanged with an all-gather over the
//     control plane, and combined into the global histogram from which the
//     partition→machine assignment and all buffer sizes/offsets derive.
//  2. Network partitioning pass — every worker radix-partitions its input
//     slice; tuples of locally-owned partitions go straight into the
//     exactly-sized destination region, tuples of remote partitions go
//     into fixed-size RDMA buffers drawn from a pre-registered per-thread
//     pool and are shipped when full. With interleaving on, the thread
//     keeps partitioning on spare buffers while transfers are in flight;
//     buffers return to the pool when their completion is polled.
//  3. Local partitioning pass — each machine radix-partitions its received
//     partitions by the next bit window so they fit the CPU cache.
//  4. Build & probe — per sub-partition hash tables; heavily skewed
//     partitions are split across threads (Section 4.3).
//
// Both one-sided (memory semantics: direct placement at histogram-derived
// offsets) and two-sided (channel semantics: receive buffers drained by a
// dedicated network thread) variants are implemented, plus a stream
// transport that emulates the TCP/IP comparison point of Section 6.3
// (extra staging copy, no interleaving).
package core

import (
	"fmt"
	"time"

	"rackjoin/internal/metrics"
	"rackjoin/internal/netsched"
	"rackjoin/internal/obsv"
	"rackjoin/internal/radix"
	"rackjoin/internal/relation"
	"rackjoin/internal/trace"
)

// Transport selects the communication mechanism of the network
// partitioning pass.
type Transport int

const (
	// TransportTwoSided uses SEND/RECV channel semantics with a dedicated
	// network thread per machine draining receive buffers (Section 4.2.2,
	// small-memory variant; also what the paper's evaluation uses).
	TransportTwoSided Transport = iota
	// TransportOneSided uses one-sided WRITEs directly into per-partition
	// regions at offsets derived from the histogram phase (Section 4.2.2,
	// large-memory variant). No remote CPU involvement.
	TransportOneSided
	// TransportStream emulates the TCP/IP (IPoIB) implementation: channel
	// semantics with an additional sender-side staging copy per message
	// and strictly synchronous (non-interleaved) sends.
	TransportStream
	// TransportTCP runs the data plane over real kernel TCP sockets
	// (loopback), reproducing the paper's TCP/IP network component on an
	// actual network stack: every transfer crosses the kernel boundary
	// with copy semantics. The control plane stays on verbs.
	TransportTCP
	// TransportOneSidedAtomic is a one-sided variant that skips the
	// histogram-derived exact write offsets: before each WRITE the sender
	// reserves space in the destination partition with a remote
	// fetch-and-add on a cursor word (the design several post-paper RDMA
	// join systems use). It demonstrates the cost of the extra atomic
	// round-trip per buffer that the paper's histogram phase avoids.
	TransportOneSidedAtomic
)

// String implements fmt.Stringer.
func (t Transport) String() string {
	switch t {
	case TransportTwoSided:
		return "two-sided"
	case TransportOneSided:
		return "one-sided"
	case TransportStream:
		return "stream"
	case TransportTCP:
		return "tcp"
	case TransportOneSidedAtomic:
		return "one-sided-atomic"
	case TransportOneSidedRead:
		return "one-sided-read"
	default:
		return fmt.Sprintf("Transport(%d)", int(t))
	}
}

// HistogramExchange selects how machine-level histograms are combined
// into the global histogram (Section 4.1: "they can either be sent to a
// predesignated coordinator or distributed among all the nodes").
type HistogramExchange int

const (
	// ExchangeAllGather distributes machine histograms among all nodes.
	ExchangeAllGather HistogramExchange = iota
	// ExchangeCoordinator gathers them at machine 0, which combines and
	// broadcasts.
	ExchangeCoordinator
)

// String implements fmt.Stringer.
func (h HistogramExchange) String() string {
	switch h {
	case ExchangeAllGather:
		return "all-gather"
	case ExchangeCoordinator:
		return "coordinator"
	default:
		return fmt.Sprintf("HistogramExchange(%d)", int(h))
	}
}

// Assignment selects the partition→machine assignment strategy computed
// from the global histogram (Section 4.1).
type Assignment int

const (
	// AssignRoundRobin statically assigns partition p to machine p mod N.
	AssignRoundRobin Assignment = iota
	// AssignSizeSorted sorts partitions by element count (descending) and
	// deals them round-robin, so the largest partitions land on distinct
	// machines. Used for skewed workloads (Section 6.5).
	AssignSizeSorted
)

// String implements fmt.Stringer.
func (a Assignment) String() string {
	switch a {
	case AssignRoundRobin:
		return "round-robin"
	case AssignSizeSorted:
		return "size-sorted"
	default:
		return fmt.Sprintf("Assignment(%d)", int(a))
	}
}

// SkewMode selects the heavy-hitter skew engine of the join. Detection
// rides the histogram phase: every machine feeds a space-saving sketch
// while scanning its outer chunk, the per-machine sketches travel with
// the histogram exchange, and every machine derives the same global
// heavy-hitter set deterministically — no extra pass, no coordinator.
type SkewMode int

const (
	// SkewOff disables the skew engine (the paper's baseline behaviour).
	SkewOff SkewMode = iota
	// SkewDetect runs detection only: heavy hitters are reported in
	// Result.Skew and the skew_heavy_hitters_total metric, but the data
	// flow is byte-identical to SkewOff.
	SkewDetect
	// SkewSplit additionally repartitions hot keys with
	// split-and-replicate: a partition containing a heavy hitter has its
	// inner side broadcast to every machine (reusing the work-sharing
	// replication path) and its outer side dealt round-robin across all
	// machines instead of hashed to one owner — the hot partition's probe
	// work spreads over the whole rack. Falls back to SkewDetect on a
	// single machine and on the pull transport (which cannot reroute
	// sender-side).
	SkewSplit
)

// String implements fmt.Stringer.
func (s SkewMode) String() string {
	switch s {
	case SkewOff:
		return "off"
	case SkewDetect:
		return "detect"
	case SkewSplit:
		return "split"
	default:
		return fmt.Sprintf("SkewMode(%d)", int(s))
	}
}

// ParseSkewMode parses a skew-engine mode name: "off", "detect" or
// "split".
func ParseSkewMode(s string) (SkewMode, error) {
	switch s {
	case "off", "":
		return SkewOff, nil
	case "detect":
		return SkewDetect, nil
	case "split":
		return SkewSplit, nil
	default:
		return SkewOff, fmt.Errorf("core: unknown skew mode %q (want off, detect or split)", s)
	}
}

// Config parameterises the distributed join.
type Config struct {
	// NetworkBits (b1) is the radix width of the network partitioning
	// pass: 2^b1 global partitions. Must satisfy 2^b1 ≥ machines.
	// The paper uses 10; the default 6 suits test-scale inputs.
	NetworkBits uint
	// LocalBits (b2) is the radix width of the local partitioning pass;
	// 0 skips the pass. The paper uses 10.
	LocalBits uint
	// BufferSize is the RDMA buffer payload capacity in bytes (paper:
	// 64 KB, Section 6.2). Must hold at least one tuple.
	BufferSize int
	// BuffersPerPartition sizes each thread's buffer pool as
	// BuffersPerPartition × (number of remote partitions). The paper
	// requires ≥ 2 for interleaving to help; 1 forces a stall per flush.
	BuffersPerPartition int
	// Transport selects one-sided, two-sided or stream mode.
	Transport Transport
	// Interleaved enables overlapping partitioning with network transfers
	// (Section 4.2.1). When false a thread waits for each transfer to
	// complete before continuing — the Figure 5b ablation.
	Interleaved bool
	// Pipeline enables partition-ready execution: per-partition receive
	// completion is tracked during the network pass (tuple counting for
	// channel semantics, per-sender end-of-partition notifications for
	// one-sided exact placement) and completed partitions are pushed into
	// the local-join scheduler while the pass is still draining — no
	// barrier between phases 2 and 3. When false the phases are separated
	// by a global barrier (the ablation, and the paper's baseline
	// structure). The pull transport always uses the barrier: it cannot
	// start before all senders staged their data.
	Pipeline bool
	// NetSched selects the application-level communication schedule of
	// the network pass (netsched.Off — the default — keeps the paper's
	// unscheduled all-to-all). netsched.Rotate rotates every sender
	// through the targets offset by machine ID, so each round forms a
	// near-perfect matching; netsched.Weighted builds pairing rounds
	// from the histogram-derived demand matrix, giving hot targets more
	// rounds. Scheduling also enables adaptive transfer sizing: per-
	// destination in-flight budgets grown for hot targets and shrunk on
	// pool stalls, resized at round boundaries. Ignored by the pull
	// transport (no sender-side postings to pace) and single machines.
	NetSched netsched.Policy
	// NetSchedQuantum is the per-round byte budget of the schedule:
	// after shipping this many bytes to the active pairing target a
	// sender rotates to the next round. 0 derives 4 × BufferSize.
	NetSchedQuantum int
	// Assignment selects the partition→machine assignment strategy.
	Assignment Assignment
	// Exchange selects the histogram exchange topology (Section 4.1).
	Exchange HistogramExchange
	// SkewSplitFactor enables the skew handling of Section 4.3: a
	// build-probe task whose outer part exceeds factor × average is split
	// into range-probe subtasks sharing one hash table. 0 disables.
	SkewSplitFactor float64
	// Skew selects the heavy-hitter skew engine: SkewOff (default),
	// SkewDetect (report only) or SkewSplit (split-and-replicate hot
	// partitions). See SkewMode.
	Skew SkewMode
	// SkewThreshold is the frequency share of the outer relation above
	// which a key counts as a heavy hitter, e.g. 0.05 = 5% of |S|.
	// 0 derives 4 / 2^NetworkBits: a key hot enough to put its partition
	// at 4× the average partition size on its own — the same 4× ratio the
	// health plane's hot_partition detector alarms on.
	SkewThreshold float64
	// BroadcastFactor enables the inter-machine work sharing the paper
	// proposes as future work (Sections 6.5 and 8), in the
	// selective-broadcast form of Rödiger et al. [28]: a partition whose
	// outer side exceeds factor × the average machine load — and for
	// which replicating the inner side is cheaper than shipping the outer
	// side — is processed by every machine: its inner tuples are
	// broadcast, its outer tuples never leave their machine. 0 disables.
	BroadcastFactor float64
	// QPDepth bounds outstanding work requests per data-plane queue pair.
	// 0 means the rdma default.
	QPDepth int
	// Kernels selects the exec-engine hot-loop implementations: the
	// partitioning scatter kernels (radix.Scatter vs radix.ScatterWC and
	// the word-copy fast paths) and the probe kernels (scalar vs batched).
	// The zero value radix.KernelAuto picks per platform and pass shape;
	// KernelScalar / KernelWC force one flavour for ablations
	// (`abl-kernels`).
	Kernels radix.Kernel
	// ResultSink, when non-nil, receives materialised join results
	// (24-byte <key, innerRID, outerRID> records, see hashtable.
	// ResultWidth). It may be called concurrently from several workers
	// of several machines; records passed are owned by the callee.
	ResultSink func(machine int, records []byte)
	// ResultTarget, when ≥ 0 and ResultSink is set, ships materialised
	// results over RDMA-enabled output buffers to the given machine
	// (Section 4.3's remote-result variant); the sink then fires only on
	// the target. Negative (the DefaultConfig value) sinks locally on
	// each producing machine.
	ResultTarget int
	// Trace, when non-nil, records the causal trace graph of the
	// execution: per-machine phase/barrier/task spans with parent edges,
	// plus cross-machine message and readiness flow edges, for timeline
	// rendering and critical-path extraction.
	Trace *trace.Recorder
	// Flight, when non-nil, receives low-level flight-recorder events
	// (verb postings, pool stalls, scheduler steals, readiness CAS
	// outcomes, backoff transitions, aborts). Always cheap: fixed-size
	// per-machine rings, no allocation after setup.
	Flight *obsv.FlightRecorder
	// Metrics, when non-nil, receives the join's runtime telemetry
	// (buffer-pool waits, bytes shipped per partition, phase durations).
	// When nil, Run uses the cluster's registry, so device- and
	// fabric-level series land in the same place.
	Metrics *metrics.Registry
	// OnPhase, when non-nil, fires as each machine finishes a phase —
	// at the same instant the phase_seconds gauge is set, so observers
	// (the obsv sampler, progress reporters) see the breakdown grow
	// mid-run instead of all at once at join completion. Phase names are
	// histogram, network_partition, local_partition, build_probe. Fired
	// concurrently from every machine goroutine; the callee synchronises.
	OnPhase func(machine int, phase string, d time.Duration)
	// OnComplete, when non-nil, fires once after all machines finish and
	// the Result is assembled, before Run returns it. This is the hook
	// the model-residual profiler attaches to.
	OnComplete func(*Result)
}

// DefaultConfig returns the test-scale defaults described above.
func DefaultConfig() Config {
	return Config{
		NetworkBits:         6,
		LocalBits:           6,
		BufferSize:          16 << 10,
		BuffersPerPartition: 2,
		Transport:           TransportTwoSided,
		Interleaved:         true,
		Pipeline:            true,
		Assignment:          AssignRoundRobin,
		ResultTarget:        -1,
	}
}

// PaperConfig returns the paper's evaluation parameters: two passes of 10
// bits, 64 KB buffers, channel semantics, interleaved communication.
func PaperConfig() Config {
	c := DefaultConfig()
	c.NetworkBits = 10
	c.LocalBits = 10
	c.BufferSize = 64 << 10
	return c
}

func (c *Config) validate(machines, cores, width int) error {
	if c.NetworkBits == 0 || c.NetworkBits > 20 {
		return fmt.Errorf("core: NetworkBits %d out of range [1,20]", c.NetworkBits)
	}
	if c.LocalBits > 20 {
		return fmt.Errorf("core: LocalBits %d out of range [0,20]", c.LocalBits)
	}
	if 1<<c.NetworkBits < machines {
		return fmt.Errorf("core: 2^NetworkBits = %d < %d machines", 1<<c.NetworkBits, machines)
	}
	if c.BufferSize < width {
		return fmt.Errorf("core: BufferSize %d smaller than tuple width %d", c.BufferSize, width)
	}
	if c.BuffersPerPartition < 1 {
		return fmt.Errorf("core: BuffersPerPartition must be ≥ 1, got %d", c.BuffersPerPartition)
	}
	if machines > 1 && cores < 2 && c.usesNetworkThread() {
		return fmt.Errorf("core: %s transport needs ≥ 2 cores per machine (one network thread)", c.Transport)
	}
	if c.NetSched < netsched.Off || c.NetSched > netsched.Weighted {
		return fmt.Errorf("core: unknown NetSched policy %v", c.NetSched)
	}
	if c.NetSchedQuantum < 0 {
		return fmt.Errorf("core: negative NetSchedQuantum")
	}
	if c.SkewSplitFactor < 0 {
		return fmt.Errorf("core: negative SkewSplitFactor")
	}
	if c.Skew < SkewOff || c.Skew > SkewSplit {
		return fmt.Errorf("core: unknown SkewMode %v", c.Skew)
	}
	if c.SkewThreshold < 0 || c.SkewThreshold >= 1 {
		return fmt.Errorf("core: SkewThreshold %v out of range [0,1)", c.SkewThreshold)
	}
	if c.BroadcastFactor < 0 {
		return fmt.Errorf("core: negative BroadcastFactor")
	}
	if c.ResultSink != nil && c.ResultTarget >= machines {
		return fmt.Errorf("core: ResultTarget %d out of range for %d machines", c.ResultTarget, machines)
	}
	if c.Transport == TransportOneSidedRead {
		if err := validatePull(c, cores); err != nil {
			return err
		}
	}
	if !relation.ValidWidth(width) {
		return fmt.Errorf("core: invalid tuple width %d", width)
	}
	return nil
}

// usesNetworkThread reports whether the transport dedicates one core per
// machine to draining incoming data (channel semantics).
func (c *Config) usesNetworkThread() bool {
	return c.Transport == TransportTwoSided || c.Transport == TransportStream ||
		c.Transport == TransportTCP
}

// pipelined reports the effective pipelining setting: the pull transport
// falls back to the barrier (its network pass cannot begin before every
// sender finished staging, so there is nothing to overlap with).
func (c *Config) pipelined() bool {
	return c.Pipeline && c.Transport != TransportOneSidedRead
}

// netScheduled reports whether the network pass consults a
// communication schedule: the pull transport has no sender-side
// postings to pace, and a single machine ships nothing.
func (c *Config) netScheduled(machines int) bool {
	return c.NetSched != netsched.Off && machines > 1 && c.Transport != TransportOneSidedRead
}

// skewMode returns the effective skew mode: SkewSplit degrades to
// SkewDetect on a single machine (nothing to spread over) and on the
// pull transport (receivers pull histogram-placed regions; there is no
// sender-side routing to redirect).
func (c *Config) skewMode(machines int) SkewMode {
	if c.Skew == SkewSplit && (machines == 1 || c.Transport == TransportOneSidedRead) {
		return SkewDetect
	}
	return c.Skew
}

// skewThresholdFrac returns the heavy-hitter frequency share, applying
// the 4×-average-partition default.
func (c *Config) skewThresholdFrac() float64 {
	if c.SkewThreshold > 0 {
		return c.SkewThreshold
	}
	return 4 / float64(int64(1)<<c.NetworkBits)
}

// interleaved reports the effective interleaving setting: the stream and
// TCP transports are always synchronous (TCP sends complete once the
// kernel copied the payload, so buffers are immediately reusable).
func (c *Config) interleaved() bool {
	return c.Interleaved && c.Transport != TransportStream && c.Transport != TransportTCP
}
