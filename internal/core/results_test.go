package core

import (
	"encoding/binary"
	"sync"
	"testing"

	"rackjoin/internal/datagen"
	"rackjoin/internal/hashtable"
)

// collectingSink gathers shipped records and checks they only ever arrive
// on the expected machine.
type collectingSink struct {
	mu       sync.Mutex
	t        *testing.T
	expectOn int
	records  int
	checksum uint64
}

func (cs *collectingSink) sink(machine int, records []byte) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if machine != cs.expectOn {
		cs.t.Errorf("records delivered on machine %d, want %d", machine, cs.expectOn)
	}
	if len(records)%hashtable.ResultWidth != 0 {
		cs.t.Errorf("torn record batch of %d bytes", len(records))
	}
	cs.records += len(records) / hashtable.ResultWidth
	for off := 0; off < len(records); off += hashtable.ResultWidth {
		key := binary.LittleEndian.Uint64(records[off:])
		innerRID := binary.LittleEndian.Uint64(records[off+8:])
		outerRID := binary.LittleEndian.Uint64(records[off+16:])
		if innerRID != key-1 {
			cs.t.Errorf("bad inner rid %d for key %d", innerRID, key)
		}
		cs.checksum += key + innerRID + outerRID
	}
}

func TestResultShippingToTarget(t *testing.T) {
	// Section 4.3's remote-result variant: all materialised results must
	// arrive, whole, at machine 2 — and nowhere else.
	for _, target := range []int{0, 2} {
		cs := &collectingSink{t: t, expectOn: target}
		cfg := DefaultConfig()
		cfg.ResultSink = cs.sink
		cfg.ResultTarget = target
		res, want := runJoin(t, 3, 3, datagen.Config{InnerTuples: 1 << 11, OuterTuples: 1 << 13, Seed: 55}, cfg)
		checkResult(t, res, want)
		if uint64(cs.records) != want.Matches {
			t.Fatalf("target %d received %d records, want %d", target, cs.records, want.Matches)
		}
		if cs.checksum != want.Checksum {
			t.Fatalf("target %d checksum %d, want %d", target, cs.checksum, want.Checksum)
		}
	}
}

func TestResultShippingSingleMachine(t *testing.T) {
	cs := &collectingSink{t: t, expectOn: 0}
	cfg := DefaultConfig()
	cfg.ResultSink = cs.sink
	cfg.ResultTarget = 0
	res, want := runJoin(t, 1, 3, datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 12, Seed: 56}, cfg)
	checkResult(t, res, want)
	if uint64(cs.records) != want.Matches {
		t.Fatalf("received %d records, want %d", cs.records, want.Matches)
	}
}

func TestResultShippingOneSided(t *testing.T) {
	cs := &collectingSink{t: t, expectOn: 1}
	cfg := DefaultConfig()
	cfg.Transport = TransportOneSided
	cfg.ResultSink = cs.sink
	cfg.ResultTarget = 1
	res, want := runJoin(t, 3, 2, datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 13, Seed: 57}, cfg)
	checkResult(t, res, want)
	if uint64(cs.records) != want.Matches {
		t.Fatalf("received %d records, want %d", cs.records, want.Matches)
	}
}

func TestResultShippingSkewed(t *testing.T) {
	cs := &collectingSink{t: t, expectOn: 0}
	cfg := DefaultConfig()
	cfg.Assignment = AssignSizeSorted
	cfg.SkewSplitFactor = 2
	cfg.ResultSink = cs.sink
	cfg.ResultTarget = 0
	dcfg := datagen.Config{InnerTuples: 1 << 9, OuterTuples: 1 << 14, Skew: datagen.SkewHigh, Seed: 58}
	res, want := runJoin(t, 3, 3, dcfg, cfg)
	checkResult(t, res, want)
	if uint64(cs.records) != want.Matches {
		t.Fatalf("received %d records, want %d", cs.records, want.Matches)
	}
}

func TestResultTargetValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResultSink = func(int, []byte) {}
	cfg.ResultTarget = 9
	if err := cfg.validate(3, 3, 16); err == nil {
		t.Fatal("out-of-range ResultTarget should fail")
	}
	// Without a sink, ResultTarget is inert.
	cfg = DefaultConfig()
	cfg.ResultTarget = 9
	if err := cfg.validate(3, 3, 16); err != nil {
		t.Fatalf("inert ResultTarget should pass: %v", err)
	}
}
