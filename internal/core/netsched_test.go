package core

import (
	"fmt"
	"testing"

	"rackjoin/internal/datagen"
	"rackjoin/internal/metrics"
	"rackjoin/internal/netsched"
	"rackjoin/internal/obsv"
)

// TestNetSchedEquivalence is the acceptance matrix of the communication
// scheduler: on every push transport × policy × execution mode the
// scheduled run must produce the exact Matches/Checksum of the
// unscheduled reference. Scheduling reorders buffer postings — it must
// never change the join.
func TestNetSchedEquivalence(t *testing.T) {
	workload := datagen.Config{InnerTuples: 1 << 12, OuterTuples: 1 << 14, Seed: 7, Skew: datagen.SkewHigh}
	transports := []Transport{TransportTwoSided, TransportOneSided, TransportStream, TransportTCP, TransportOneSidedAtomic}
	policies := []netsched.Policy{netsched.Rotate, netsched.Weighted}
	for _, tr := range transports {
		for _, pol := range policies {
			for _, pipe := range []bool{false, true} {
				tr, pol, pipe := tr, pol, pipe
				name := fmt.Sprintf("%v/%v/pipeline=%v", tr, pol, pipe)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					cfg := DefaultConfig()
					cfg.Transport = tr
					cfg.Pipeline = pipe

					ref, want := runJoin(t, 4, 3, workload, cfg)
					checkResult(t, ref, want)

					cfg.NetSched = pol
					sched, _ := runJoin(t, 4, 3, workload, cfg)
					checkResult(t, sched, want)
					if sched.Matches != ref.Matches || sched.Checksum != ref.Checksum {
						t.Fatalf("scheduled result diverges: matches %d vs %d, checksum %d vs %d",
							sched.Matches, ref.Matches, sched.Checksum, ref.Checksum)
					}
				})
			}
		}
	}
}

// TestNetSchedBroadcast exercises the scheduler with broadcast partitions:
// flushBcast traffic now routes through the same ship/park path, so the
// replicated inner fragments obey (and can be parked by) the schedule.
func TestNetSchedBroadcast(t *testing.T) {
	workload := datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 15, Seed: 21, Skew: datagen.SkewHigh}
	for _, pol := range []netsched.Policy{netsched.Rotate, netsched.Weighted} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			cfg.Transport = TransportOneSided
			cfg.BroadcastFactor = 4
			cfg.Assignment = AssignSizeSorted
			cfg.SkewSplitFactor = 2

			ref, want := runJoin(t, 4, 2, workload, cfg)
			checkResult(t, ref, want)

			cfg.NetSched = pol
			sched, _ := runJoin(t, 4, 2, workload, cfg)
			checkResult(t, sched, want)
			if sched.Net.BytesSent != ref.Net.BytesSent {
				t.Fatalf("scheduled run shipped %d bytes, reference %d — scheduling must not change traffic volume",
					sched.Net.BytesSent, ref.Net.BytesSent)
			}
		})
	}
}

// TestNetSchedTorture drives the parking machinery as hard as the knobs
// allow: tiny buffers force many fills per partition, a one-buffer round
// quantum advances the schedule constantly, and pipelined readiness
// injection interleaves scatter slices — so parks, round kicks, liveness
// overrides and the end-of-slice drain all fire under -race.
func TestNetSchedTorture(t *testing.T) {
	workload := datagen.Config{InnerTuples: 1 << 12, OuterTuples: 1 << 14, Seed: 99, Skew: datagen.SkewHigh}
	for _, pol := range []netsched.Policy{netsched.Rotate, netsched.Weighted} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			t.Parallel()
			reg := metrics.NewRegistry()
			cfg := DefaultConfig()
			cfg.Transport = TransportOneSided
			cfg.Pipeline = true
			cfg.BufferSize = 1 << 9
			cfg.BuffersPerPartition = 2
			cfg.NetSched = pol
			cfg.NetSchedQuantum = 1 << 9 // one buffer per round
			cfg.Metrics = reg

			res, want := runJoin(t, 4, 4, workload, cfg)
			checkResult(t, res, want)

			vals := map[string]float64{}
			for _, s := range reg.Snapshot() {
				vals[s.Name] += s.Value
			}
			if vals["netsched_rounds_total"] == 0 {
				t.Fatal("schedule never advanced a round")
			}
			if vals["netsched_parks_total"] == 0 {
				t.Fatal("no buffer was ever parked — torture knobs too loose")
			}
		})
	}
}

// TestNetSchedMetricsAndFlight checks the observability contract: a
// scheduled join emits round counters, the pairing-occupancy and
// per-destination budget gauges, and flight-recorder breadcrumbs for
// round transitions.
func TestNetSchedMetricsAndFlight(t *testing.T) {
	fr := obsv.NewFlightRecorder(4, 4096)
	reg := metrics.NewRegistry()
	cfg := DefaultConfig()
	cfg.Transport = TransportOneSided
	cfg.NetSched = netsched.Weighted
	cfg.NetSchedQuantum = 1 << 12
	cfg.Flight = fr
	cfg.Metrics = reg

	res, want := runJoin(t, 4, 3, smallWorkload, cfg)
	checkResult(t, res, want)

	vals := map[string]float64{}
	budgetGauges := 0
	for _, s := range reg.Snapshot() {
		vals[s.Name] += s.Value
		if s.Name == "netsched_budget_buffers" {
			budgetGauges++
			if s.Value < 1 {
				t.Fatalf("budget gauge below floor: %+v", s)
			}
		}
	}
	if vals["netsched_rounds_total"] == 0 {
		t.Fatal("netsched_rounds_total not incremented")
	}
	// 4 machines × 3 remote destinations each.
	if budgetGauges != 12 {
		t.Fatalf("budget gauges = %d, want 12", budgetGauges)
	}
	if occ := vals["netsched_pairing_occupancy"]; occ < 0 || occ > 4 {
		t.Fatalf("pairing occupancy out of range: %v", occ)
	}

	kinds := map[string]int{}
	for _, ev := range fr.Snapshot() {
		kinds[ev.Kind]++
	}
	if kinds["netsched"] == 0 {
		t.Fatalf("no netsched round events in flight recorder; kinds: %v", kinds)
	}
}

// TestNetSchedSingleMachineNoop: with one machine (or the pull
// transport) the scheduler must stay out of the way entirely.
func TestNetSchedSingleMachineNoop(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := DefaultConfig()
	cfg.NetSched = netsched.Rotate
	cfg.Metrics = reg
	res, want := runJoin(t, 1, 4, smallWorkload, cfg)
	checkResult(t, res, want)
	for _, s := range reg.Snapshot() {
		if s.Name == "netsched_rounds_total" {
			t.Fatal("scheduler active on a single machine")
		}
	}

	cfg = DefaultConfig()
	cfg.Transport = TransportOneSidedRead
	cfg.NetSched = netsched.Weighted
	res, want = runJoin(t, 3, 3, smallWorkload, cfg)
	checkResult(t, res, want)
}
