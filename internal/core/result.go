package core

import (
	"time"

	"rackjoin/internal/phase"
)

// NetStats summarises data-plane network activity of one join execution.
type NetStats struct {
	// BytesSent is the total tuple payload shipped between machines.
	BytesSent uint64
	// Messages is the number of data-plane transfers (buffer flushes).
	Messages uint64
	// PoolStalls counts buffer acquisitions that had to wait for an
	// in-flight transfer to complete before a buffer became free — the
	// back-pressure signal of a network-bound run.
	PoolStalls uint64
	// Registrations and PagesRegistered account memory-region
	// registrations performed for the join's data path.
	Registrations   uint64
	PagesRegistered uint64
}

// Result reports the outcome of a distributed join.
type Result struct {
	// Matches is the number of joined tuple pairs.
	Matches uint64
	// Checksum is Σ (key + innerRID + outerRID) over all matches, used to
	// verify the result against datagen.ExpectedJoin.
	Checksum uint64
	// Phases is the per-phase breakdown, taking for each phase the
	// maximum across machines. In barrier mode phases are
	// barrier-separated; in pipelined mode the breakdown is the
	// critical-path view (the network pass ends when its last byte lands,
	// the local/build-probe entry is the exposed tail after that point),
	// so the phases still sum to the wall clock.
	Phases phase.Times
	// PerMachine holds each machine's own phase breakdown.
	PerMachine []phase.Times
	// PipelineOverlap[m] is how long machine m's partition-ready join work
	// ran concurrently with the still-draining network pass. Zero in
	// barrier mode; the busy-time local+build-probe view is the
	// critical-path entry plus this overlap.
	PipelineOverlap []time.Duration
	// Net summarises data-plane traffic.
	Net NetStats
	// PartitionsPerMachine is how many network partitions each machine
	// was assigned.
	PartitionsPerMachine []int
	// Skew reports the skew engine's decisions (zero value when the
	// engine was off).
	Skew SkewStats
}
