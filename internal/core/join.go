package core

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rackjoin/internal/cluster"
	"rackjoin/internal/metrics"
	"rackjoin/internal/netsched"
	"rackjoin/internal/phase"
	"rackjoin/internal/radix"
	"rackjoin/internal/rdma"
	"rackjoin/internal/relation"
	"rackjoin/internal/skew"
	"rackjoin/internal/tcpnet"
	"rackjoin/internal/trace"
)

// Run executes the distributed radix hash join of inner ⋈ outer over the
// given cluster. inner.Chunks[m] and outer.Chunks[m] are the tuples
// resident on machine m before the join (the data loading of Section
// 6.1.1). Run blocks until all machines finish and returns the combined
// result.
func Run(c *cluster.Cluster, inner, outer *relation.Distributed, cfg Config) (*Result, error) {
	nm := c.NumMachines()
	if len(inner.Chunks) != nm || len(outer.Chunks) != nm {
		return nil, fmt.Errorf("core: relations fragmented over %d/%d chunks, cluster has %d machines",
			len(inner.Chunks), len(outer.Chunks), nm)
	}
	width := inner.Width()
	if width == 0 {
		width = outer.Width()
	}
	if width == 0 {
		width = relation.Width16
	}
	if outer.Width() != 0 && inner.Width() != 0 && outer.Width() != inner.Width() {
		return nil, fmt.Errorf("core: tuple width mismatch %d vs %d", inner.Width(), outer.Width())
	}
	cores := c.Config().CoresPerMachine
	if err := cfg.validate(nm, cores, width); err != nil {
		return nil, err
	}
	if cfg.Metrics == nil {
		cfg.Metrics = c.Metrics()
	}

	states := make([]*machineState, nm)
	for m := 0; m < nm; m++ {
		states[m] = newMachineState(c.Machine(m), &cfg, nm, width, inner.Chunks[m], outer.Chunks[m])
	}
	mesh, err := wireDataPlane(c, states)
	if err != nil {
		return nil, err
	}
	if mesh != nil {
		defer mesh.Close()
	}
	if cfg.Flight != nil {
		// Mirror every verb posting into the flight rings for the run's
		// duration; the hook is removed before Run returns so later joins
		// on the same cluster start clean.
		c.InstallVerbHook(func(machine int, op string, bytes int) {
			cfg.Flight.Note(machine, "verb", op, 0, int64(bytes))
		})
		defer c.InstallVerbHook(nil)
		// Surface ring overwrites as flightrec_dropped_total{machine}.
		cfg.Flight.AttachMetrics(cfg.Metrics)
	}

	before := deviceTotals(c)
	errs := make([]error, nm)
	var wg sync.WaitGroup
	for m := 0; m < nm; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			errs[m] = states[m].run()
		}(m)
	}
	wg.Wait()
	for m, err := range errs {
		if err != nil {
			// Stamp the failure into the flight rings so a post-mortem dump
			// ends with the abort and the events leading up to it.
			cfg.Flight.Note(m, "abort", err.Error(), 0, 0)
			return nil, fmt.Errorf("core: machine %d: %w", m, err)
		}
	}
	res := assembleResult(c, states, before)
	if cfg.OnComplete != nil {
		cfg.OnComplete(res)
	}
	return res, nil
}

// machineState is the per-machine execution context of one join.
type machineState struct {
	cfg   *Config
	m     *cluster.Machine
	nm    int
	np    int // 2^NetworkBits
	width int
	R, S  *relation.Relation

	// partThreads is the number of cores partitioning during the network
	// pass; with channel semantics one core is the network thread.
	partThreads int

	// Histogram phase outputs.
	threadHistR, threadHistS [][]int64 // [thread][partition]
	allHistR, allHistS       [][]uint64
	globalR, globalS         []int64
	owner                    []int  // -1 for broadcast partitions
	broadcast                []bool // partitions processed by every machine
	owned                    []int  // partitions with owner == this machine
	resident                 []int  // owned ∪ broadcast: processed here
	// slabOffR/S[m][p]: tuple offset of partition p within machine m's
	// slab, or -1 when p is not resident on m. Identical on all machines
	// by construction. A broadcast partition holds the full inner
	// relation replica but only the machine's local outer share.
	slabOffR, slabOffS       [][]int64
	slabTuplesR, slabTuplesS int64 // this machine's slab sizes
	slabR, slabS             *relation.Relation
	mrR, mrS                 *rdma.MemoryRegion
	mrCur                    *rdma.MemoryRegion // append cursors (atomic-append)
	rkeysR, rkeysS           []uint64           // per owner machine (one-sided)
	rkeysCur                 []uint64           // cursor region rkeys (atomic-append)

	// Data plane.
	sendCQ []*rdma.CompletionQueue // per partitioning thread
	qps    [][]*rdma.QP            // [thread][peer machine]
	pools  []*bufferPool           // per partitioning thread
	recvCQ *rdma.CompletionQueue
	rings  map[uint32]*recvRing // by local QPN
	// TCP data plane (TransportTCP only).
	tcp      *tcpnet.Endpoint
	tcpBytes atomic.Uint64
	tcpMsgs  atomic.Uint64

	// Pull transport staging (TransportOneSidedRead only).
	stageR, stageS           *relation.Relation
	stageMRR, stageMRS       *rdma.MemoryRegion
	stageOffR, stageOffS     []int64
	stageRkeysR, stageRkeysS []uint64

	// Result plane (ResultTarget ≥ 0 only).
	resCQ     []*rdma.CompletionQueue // per worker (senders)
	resQP     []*rdma.QP              // per worker (senders)
	resRecvCQ *rdma.CompletionQueue   // target side
	resRings  map[uint32]*recvRing    // target side

	phases     phase.Times
	matches    uint64
	checksum   uint64
	poolStalls uint64
	resultMu   sync.Mutex

	// pipe is the partition-ready pipeline of the overlapped netpass/local
	// window; nil in barrier mode. overlap is how long join work ran while
	// the network pass was still draining.
	pipe    *pipeline
	overlap time.Duration

	// Causal-trace identity: runSpan is this machine's root span, netSpan
	// the open network-partition phase span (parents the per-buffer send
	// instants); msgSeq[t][dest] numbers the data messages of each
	// (sender thread, destination) queue pair so the receiver's per-ring
	// counter can rendezvous the matching flow edge (per-QP FIFO order).
	runSpan trace.SpanID
	netSpan trace.SpanID
	msgSeq  [][]uint64
	// Per-partition span labels, precomputed so the per-message stamps in
	// the scatter and receive loops never format strings: those loops sit
	// inside the buffer-credit cycle, where added latency amplifies into
	// sender stalls.
	sendLabels, recvLabels, readyLabels []string

	// netSched is the communication scheduler of the network pass (nil
	// when unscheduled); netBudget holds the adaptive per-destination
	// transfer budgets; parkCap bounds each thread's parked backlog.
	netSched  *netsched.Scheduler
	netBudget *netsched.AdaptiveSizer
	parkCap   int
	// netsched telemetry (resolved at setup, nil when unscheduled).
	schedRounds, schedIdle, schedParks *metrics.Counter
	schedOverrides, budgetWaits        *metrics.Counter

	// met is this machine's metrics scope (label machine=<id>); shipped
	// holds the per-partition bytes-shipped counters of the network pass,
	// nil for partitions that never leave this machine.
	met     *metrics.Scope
	shipped []*metrics.Counter
	// linkBytes holds the per-destination netpass_link_bytes_total
	// counters (nil entry for this machine itself), the per-link volume
	// the health plane's online engine folds into its bandwidth
	// indicators; nil on single-machine and pull-transport runs.
	linkBytes []*metrics.Counter
	// netKernelBytes is the netpass kernel_bytes_total counter, resolved
	// once at pool setup so scatterSlice's hot loop skips the registry.
	netKernelBytes *metrics.Counter

	// Skew engine (skew.go). skewMode is the run's effective mode (split
	// degrades to detect on one machine and on the pull transport);
	// sketch is this machine's merged heavy-hitter sketch from the
	// histogram scan; split[p] marks split-and-replicate partitions (nil
	// when none). splitNext deals a split partition's outer tuples
	// round-robin across destinations; splitLocalCur hands out slab
	// offsets for the self-dealt share; splitRemoteCur reserves exact
	// one-sided write offsets per (partition, destination).
	skewMode       SkewMode
	sketch         *skew.Sketch
	skewStats      SkewStats
	split          []bool
	splitNext      []atomic.Int64
	splitLocalCur  []atomic.Int64
	splitRemoteCur [][]atomic.Int64
	skewRepl       []*metrics.Counter
	skewReplBytes  atomic.Uint64
}

func newMachineState(m *cluster.Machine, cfg *Config, nm, width int, r, s *relation.Relation) *machineState {
	st := &machineState{
		cfg: cfg, m: m, nm: nm, np: 1 << cfg.NetworkBits, width: width,
		R: r, S: s,
		rings:    make(map[uint32]*recvRing),
		resRings: make(map[uint32]*recvRing),
	}
	st.partThreads = m.Cores
	if nm > 1 && cfg.usesNetworkThread() {
		st.partThreads = m.Cores - 1
	}
	if cfg.Trace != nil {
		st.msgSeq = make([][]uint64, st.partThreads)
		for t := range st.msgSeq {
			st.msgSeq[t] = make([]uint64, nm)
		}
		st.sendLabels = make([]string, st.np)
		st.recvLabels = make([]string, st.np)
		st.readyLabels = make([]string, st.np)
		for p := 0; p < st.np; p++ {
			st.sendLabels[p] = "send p" + strconv.Itoa(p)
			st.recvLabels[p] = "recv p" + strconv.Itoa(p)
			st.readyLabels[p] = "ready p" + strconv.Itoa(p)
		}
	}
	st.met = cfg.Metrics.Scope(metrics.L("machine", strconv.Itoa(m.ID)))
	st.skewMode = cfg.skewMode(nm)
	return st
}

// Packed rendezvous keys for the trace's integer-keyed flow fast path
// (trace.FlowOutKey/FlowInKey): the hot per-message stamps must not
// format string keys. The top tag bits keep the classes' key spaces
// disjoint, mirroring the class prefix of the string-keyed API.
// msgFlowKey identifies one data message by (source machine, sender
// thread, destination, per-QP sequence); machines and threads fit 8
// bits, the sequence keeps 38.
func msgFlowKey(src, thread, dst int, seq uint64) uint64 {
	return 1<<62 | uint64(src)<<54 | uint64(thread)<<46 | uint64(dst)<<38 | (seq & (1<<38 - 1))
}

// readyFlowKey identifies one partition-readiness edge on a machine.
func readyFlowKey(machine, p int) uint64 {
	return 2<<62 | uint64(machine)<<38 | uint64(p)
}

// eopFlowKey identifies the end-of-partition notification of one
// (sender, receiver) machine pair.
func eopFlowKey(src, dst int) uint64 {
	return 3<<62 | uint64(src)<<46 | uint64(dst)<<38
}

// begin opens a causal trace span for this machine if tracing is enabled;
// the returned closer is nil-safe like trace.Recorder.Begin's.
func (st *machineState) begin(kind, label string, parent trace.SpanID) (trace.SpanID, func(int64)) {
	if st.cfg.Trace == nil {
		return 0, func(int64) {}
	}
	return st.cfg.Trace.Begin(st.m.ID, kind, label, parent)
}

// span starts a phase span under this machine's run root. Kept as the
// phase-level shorthand; callers that need the span's identity (to parent
// message instants) use begin directly.
func (st *machineState) span(label string) func(int64) {
	_, end := st.begin("phase", label, st.runSpan)
	return end
}

// flight records one flight-recorder event for this machine (nil-safe).
func (st *machineState) flight(kind, detail string, p int, bytes int64) {
	st.cfg.Flight.Note(st.m.ID, kind, detail, p, bytes)
}

// barrier runs a labelled cluster barrier wrapped in a "barrier" trace
// span: the critical-path analyzer groups same-label barrier spans across
// machines and attributes the wait to the last arriver.
func (st *machineState) barrier(label string) error {
	_, end := st.begin("barrier", label, st.runSpan)
	err := st.m.Barrier()
	end(0)
	return err
}

// run executes the four phases on this machine. It is the "machine main"
// goroutine; worker goroutines are spawned per phase.
func (st *machineState) run() error {
	start := time.Now()
	var endRun func(int64)
	st.runSpan, endRun = st.begin("run", "run", 0)
	defer endRun(0)
	// Every early error return below closes the open phase span first:
	// a dangling span leaves unbalanced begin events in the trace export.
	// Phase-start breadcrumbs in the flight recorder anchor a post-mortem
	// dump: even when a run dies before any verb is posted (e.g. in the
	// first control-plane exchange), the dump shows where it was.
	st.flight("phase", "histogram start", 0, 0)
	endSpan := st.span("histogram")
	st.computeThreadHistograms()
	if err := st.exchangeHistograms(); err != nil {
		endSpan(0)
		return fmt.Errorf("histogram exchange: %w", err)
	}
	st.computeAssignment()
	if err := st.allocRegions(); err != nil {
		endSpan(0)
		return fmt.Errorf("region allocation: %w", err)
	}
	if err := st.exchangeRKeys(); err != nil {
		endSpan(0)
		return fmt.Errorf("rkey exchange: %w", err)
	}
	if err := st.allocPools(); err != nil {
		endSpan(0)
		return fmt.Errorf("buffer pools: %w", err)
	}
	if err := st.postReceiveRings(); err != nil {
		endSpan(0)
		return fmt.Errorf("receive rings: %w", err)
	}
	if err := st.barrier("after histogram"); err != nil {
		endSpan(0)
		return err
	}
	st.phases.Histogram = time.Since(start)
	st.phaseDone("histogram", st.phases.Histogram)
	endSpan(int64(st.R.Size() + st.S.Size()))

	if st.cfg.pipelined() {
		// Pipelined mode: no barrier between the network pass and the
		// local/build-probe phase — partitions are joined as they complete.
		if err := st.runPipelined(); err != nil {
			return fmt.Errorf("pipelined execution: %w", err)
		}
		return nil
	}

	start = time.Now()
	st.flight("phase", "network partition start", 0, 0)
	var netEnd func(int64)
	st.netSpan, netEnd = st.begin("phase", "network partition", st.runSpan)
	if err := st.networkPartitionPass(); err != nil {
		netEnd(0)
		return fmt.Errorf("network partitioning: %w", err)
	}
	netEnd(int64(st.tcpBytes.Load()))
	if err := st.barrier("after network partition"); err != nil {
		return err
	}
	st.phases.NetworkPartition = time.Since(start)
	st.phaseDone("network_partition", st.phases.NetworkPartition)

	st.flight("phase", "local+build-probe start", 0, 0)
	endSpan = st.span("local+build-probe")
	if err := st.localPassAndBuildProbe(); err != nil {
		endSpan(0)
		return fmt.Errorf("local pass: %w", err)
	}
	endSpan(int64(st.slabR.Size() + st.slabS.Size()))
	st.phaseDone("local_partition", st.phases.LocalPartition)
	st.phaseDone("build_probe", st.phases.BuildProbe)
	return st.barrier("final")
}

// phaseDone exports one finished phase as a phase_seconds{machine,phase}
// gauge — set from the same value Result reports in PerMachine — and
// fires the Config.OnPhase hook. Called as each phase completes, so the
// breakdown is observable mid-run.
func (st *machineState) phaseDone(name string, d time.Duration) {
	st.met.Gauge("phase_seconds", metrics.L("phase", name)).Set(d.Seconds())
	if st.cfg.OnPhase != nil {
		st.cfg.OnPhase(st.m.ID, name, d)
	}
}

// computeThreadHistograms scans this machine's chunks with partThreads
// workers, each histogramming a contiguous slice (the same slices the
// network pass will scatter).
func (st *machineState) computeThreadHistograms() {
	st.threadHistR = parallelHist(st.R, st.partThreads, st.cfg.NetworkBits)
	if st.skewMode == SkewOff {
		st.threadHistS = parallelHist(st.S, st.partThreads, st.cfg.NetworkBits)
		return
	}
	// Skew detection rides the outer-relation scan: each thread feeds a
	// space-saving sketch from the same loop that histograms its slice,
	// so heavy-hitter detection costs no extra pass over the data.
	st.threadHistS, st.sketch = parallelHistSketch(st.S, st.partThreads,
		st.cfg.NetworkBits, sketchCapacity(st.cfg.skewThresholdFrac()))
}

func parallelHist(rel *relation.Relation, threads int, bits uint) [][]int64 {
	hists := make([][]int64, threads)
	var wg sync.WaitGroup
	n := rel.Len()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			h := make([]int64, 1<<bits)
			radix.AddHistogram(h, rel.Slice(n*t/threads, n*(t+1)/threads), 0, bits)
			hists[t] = h
		}(t)
	}
	wg.Wait()
	return hists
}

// parallelHistSketch is parallelHist fused with per-thread space-saving
// sketches: one loop computes the same histogram AddHistogram would
// (shift 0, low `bits` bits) and observes every key. The per-thread
// sketches are merged in thread order — deterministic, so re-running the
// same chunk yields the same machine sketch.
func parallelHistSketch(rel *relation.Relation, threads int, bits uint, capacity int) ([][]int64, *skew.Sketch) {
	hists := make([][]int64, threads)
	sketches := make([]*skew.Sketch, threads)
	var wg sync.WaitGroup
	n := rel.Len()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			h := make([]int64, 1<<bits)
			sk := skew.New(capacity)
			sl := rel.Slice(n*t/threads, n*(t+1)/threads)
			mask := uint64(1<<bits - 1)
			for i, m := 0, sl.Len(); i < m; i++ {
				k := sl.Key(i)
				h[k&mask]++
				sk.Observe(k)
			}
			hists[t] = h
			sketches[t] = sk
		}(t)
	}
	wg.Wait()
	merged := sketches[0]
	for _, sk := range sketches[1:] {
		merged.Merge(sk)
	}
	return hists, merged
}

// exchangeHistograms combines thread histograms into the machine-level
// histogram, all-gathers machine histograms over the control plane and
// derives the global histogram (Section 4.1).
func (st *machineState) exchangeHistograms() error {
	machineR := sumHists(st.threadHistR, st.np)
	machineS := sumHists(st.threadHistS, st.np)
	vec := make([]uint64, 2*st.np)
	for p := 0; p < st.np; p++ {
		vec[p] = uint64(machineR[p])
		vec[st.np+p] = uint64(machineS[p])
	}
	if st.sketch != nil {
		// Piggyback the encoded heavy-hitter sketch on the histogram
		// all-gather: skew detection adds no control-plane round.
		enc := make([]uint64, skew.EncodedLen(st.sketch.Capacity()))
		st.sketch.Encode(enc)
		vec = append(vec, enc...)
	}
	var all [][]uint64
	var err error
	if st.cfg.Exchange == ExchangeCoordinator {
		all, err = st.m.GatherBroadcastUint64(0, vec)
	} else {
		all, err = st.m.AllGatherUint64(vec)
	}
	if err != nil {
		return err
	}
	st.allHistR = make([][]uint64, st.nm)
	st.allHistS = make([][]uint64, st.nm)
	st.globalR = make([]int64, st.np)
	st.globalS = make([]int64, st.np)
	blocks := make([][]uint64, 0, st.nm)
	for m, v := range all {
		if len(v) < 2*st.np {
			return fmt.Errorf("histogram vector from machine %d has %d entries, want at least %d", m, len(v), 2*st.np)
		}
		st.allHistR[m] = v[:st.np]
		st.allHistS[m] = v[st.np : 2*st.np]
		for p := 0; p < st.np; p++ {
			st.globalR[p] += int64(v[p])
			st.globalS[p] += int64(v[st.np+p])
		}
		if len(v) > 2*st.np {
			blocks = append(blocks, v[2*st.np:])
		}
	}
	if st.skewMode != SkewOff {
		st.deriveSkew(blocks)
	}
	return nil
}

func sumHists(hists [][]int64, np int) []int64 {
	out := make([]int64, np)
	for _, h := range hists {
		for p, c := range h {
			out[p] += c
		}
	}
	return out
}

// computeAssignment derives the partition→machine assignment from the
// global histogram. All machines compute it identically.
func (st *machineState) computeAssignment() {
	st.owner = make([]int, st.np)
	switch st.cfg.Assignment {
	case AssignSizeSorted:
		// Sort partitions by total element count descending (ties by id)
		// and deal round-robin so the largest partitions spread out.
		idx := make([]int, st.np)
		for p := range idx {
			idx[p] = p
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ca := st.globalR[idx[a]] + st.globalS[idx[a]]
			cb := st.globalR[idx[b]] + st.globalS[idx[b]]
			if ca != cb {
				return ca > cb
			}
			return idx[a] < idx[b]
		})
		for i, p := range idx {
			st.owner[p] = i % st.nm
		}
	default: // AssignRoundRobin
		for p := 0; p < st.np; p++ {
			st.owner[p] = p % st.nm
		}
	}
	// Inter-machine work sharing (Sections 6.5/8, selective broadcast):
	// a partition is broadcast when its outer side dominates the average
	// partition AND replicating the inner side to every machine is
	// cheaper than shipping the outer side to one (|S_p| > N_M·|R_p|).
	st.broadcast = make([]bool, st.np)
	if st.cfg.BroadcastFactor > 0 && st.nm > 1 {
		var totalS int64
		for _, c := range st.globalS {
			totalS += c
		}
		avgPart := float64(totalS) / float64(st.np)
		for p := 0; p < st.np; p++ {
			if float64(st.globalS[p]) > st.cfg.BroadcastFactor*avgPart &&
				st.globalS[p] > int64(st.nm)*st.globalR[p] {
				st.broadcast[p] = true
				st.owner[p] = -1
			}
		}
	}
	// Split-and-replicate (skew engine): a split partition is a broadcast
	// partition for the inner side — the full replica machinery below and
	// in the network pass applies unchanged — while its outer side is
	// dealt round-robin across all machines instead of staying put.
	if st.split != nil {
		for p := 0; p < st.np; p++ {
			if st.split[p] {
				st.broadcast[p] = true
				st.owner[p] = -1
			}
		}
	}
	// Per-machine slab layouts, identical on every machine: resident
	// partitions in ascending order.
	st.slabOffR = make([][]int64, st.nm)
	st.slabOffS = make([][]int64, st.nm)
	for m := 0; m < st.nm; m++ {
		offR, offS := int64(0), int64(0)
		sr := make([]int64, st.np)
		ss := make([]int64, st.np)
		for p := 0; p < st.np; p++ {
			sr[p], ss[p] = -1, -1
			switch {
			case st.owner[p] == m:
				sr[p], ss[p] = offR, offS
				offR += st.globalR[p]
				offS += st.globalS[p]
			case st.broadcast[p]:
				sr[p], ss[p] = offR, offS
				offR += st.globalR[p] // full inner replica
				if st.isSplit(p) {
					offS += st.splitRecvTotal(p, m) // dealt outer share
				} else {
					offS += int64(st.allHistS[m][p]) // local outer share stays put
				}
			}
		}
		st.slabOffR[m] = sr
		st.slabOffS[m] = ss
		if m == st.m.ID {
			st.slabTuplesR, st.slabTuplesS = offR, offS
		}
	}
	// Split-partition write cursors, now that slab offsets are known.
	// splitLocalCur hands out this machine's self-dealt outer writes: the
	// self share leads the slab region on append-style transports; exact
	// one-sided placement puts it at this machine's per-source sub-region.
	// splitRemoteCur pre-reserves exact one-sided offsets per destination.
	if st.split != nil {
		for _, p := range st.skewStats.SplitPartitions {
			base := st.slabOffS[st.m.ID][p]
			if st.cfg.Transport == TransportOneSided {
				base += st.splitSrcBase(st.m.ID, p, st.m.ID)
				cur := make([]atomic.Int64, st.nm)
				for d := 0; d < st.nm; d++ {
					cur[d].Store(st.slabOffS[d][p] + st.splitSrcBase(st.m.ID, p, d))
				}
				st.splitRemoteCur[p] = cur
			}
			st.splitLocalCur[p].Store(base)
		}
	}
	for p := 0; p < st.np; p++ {
		if st.owner[p] == st.m.ID {
			st.owned = append(st.owned, p)
		}
		if st.owner[p] == st.m.ID || st.broadcast[p] {
			st.resident = append(st.resident, p)
		}
	}
}

// residentHere reports whether this machine processes partition p.
func (st *machineState) residentHere(p int) bool {
	return st.owner[p] == st.m.ID || st.broadcast[p]
}

// allocRegions allocates and registers the destination slabs that receive
// this machine's assigned partitions. Sizes are exact thanks to the
// histogram phase; with one-sided transport the slabs are exposed for
// remote writes.
func (st *machineState) allocRegions() error {
	// Cache-line-aligned slabs: partition boundaries land on line starts
	// for the paper's power-of-two widths, so the scatter kernels never
	// split a tuple store across lines.
	st.slabR = relation.NewAligned(st.width, int(st.slabTuplesR))
	st.slabS = relation.NewAligned(st.width, int(st.slabTuplesS))
	access := rdma.AccessLocalWrite
	if st.cfg.Transport == TransportOneSided || st.cfg.Transport == TransportOneSidedAtomic {
		access |= rdma.AccessRemoteWrite
	}
	var err error
	if st.slabR.Size() > 0 {
		if st.mrR, err = st.m.PD.RegisterMemory(st.slabR.Bytes(), access); err != nil {
			return err
		}
	}
	if st.slabS.Size() > 0 {
		if st.mrS, err = st.m.PD.RegisterMemory(st.slabS.Bytes(), access); err != nil {
			return err
		}
	}
	if st.cfg.Transport == TransportOneSidedAtomic {
		// Append cursors, one 8-byte word per (partition, relation),
		// initialised past the local share; remote senders fetch-and-add
		// to reserve their write ranges.
		cur := make([]byte, st.np*2*8)
		for _, p := range st.resident {
			putCursor(cur, p, false, int64(st.allHistR[st.m.ID][p]))
			if st.isSplit(p) {
				// Split partitions lead with the self-dealt share, not the
				// whole local share: the rest is dealt to other machines.
				putCursor(cur, p, true, st.splitShare(st.m.ID, p, st.m.ID))
			} else {
				putCursor(cur, p, true, int64(st.allHistS[st.m.ID][p]))
			}
		}
		if st.mrCur, err = st.m.PD.RegisterMemory(cur, rdma.AccessLocalWrite|rdma.AccessRemoteAtomic); err != nil {
			return err
		}
	}
	return nil
}

// cursorOffset returns the byte offset of partition p's append cursor
// within the cursor memory region.
func cursorOffset(p int, isS bool) int {
	i := p * 2
	if isS {
		i++
	}
	return i * 8
}

func putCursor(buf []byte, p int, isS bool, v int64) {
	off := cursorOffset(p, isS)
	for i := 0; i < 8; i++ {
		buf[off+i] = byte(uint64(v) >> (8 * i))
	}
}

// exchangeRKeys advertises the slab (and, for atomic-append, cursor)
// remote keys for one-sided access.
func (st *machineState) exchangeRKeys() error {
	oneSided := st.cfg.Transport == TransportOneSided || st.cfg.Transport == TransportOneSidedAtomic
	if !oneSided || st.nm == 1 {
		return nil
	}
	vec := make([]uint64, 3)
	if st.mrR != nil {
		vec[0] = uint64(st.mrR.RKey())
	}
	if st.mrS != nil {
		vec[1] = uint64(st.mrS.RKey())
	}
	if st.mrCur != nil {
		vec[2] = uint64(st.mrCur.RKey())
	}
	all, err := st.m.AllGatherUint64(vec)
	if err != nil {
		return err
	}
	st.rkeysR = make([]uint64, st.nm)
	st.rkeysS = make([]uint64, st.nm)
	st.rkeysCur = make([]uint64, st.nm)
	for m, v := range all {
		st.rkeysR[m] = v[0]
		st.rkeysS[m] = v[1]
		st.rkeysCur[m] = v[2]
	}
	return nil
}

// threadPrefix returns Σ_{t'<t} hist[t'][p]: the tuple offset of thread
// t's contribution within this machine's share of partition p.
func threadPrefix(hists [][]int64, t, p int) int64 {
	var sum int64
	for i := 0; i < t; i++ {
		sum += hists[i][p]
	}
	return sum
}

// machinePrefix returns Σ_{m'<m} allHist[m'][p]: machine m's tuple offset
// within partition p under one-sided exact placement.
func machinePrefix(all [][]uint64, m, p int) int64 {
	var sum int64
	for i := 0; i < m; i++ {
		sum += int64(all[i][p])
	}
	return sum
}

// localWriteBase returns the slab tuple offset at which this machine's own
// threads write their local share of owned partition p. Exact-offset
// one-sided mode interleaves with remote machines' histogram-derived
// offsets; all append-style transports (channel semantics, TCP,
// atomic-append) put the local share first and remote data behind it.
func (st *machineState) localWriteBase(p int, isS bool) int64 {
	slabOff := st.slabOffR[st.m.ID][p]
	all := st.allHistR
	if isS {
		slabOff = st.slabOffS[st.m.ID][p]
		all = st.allHistS
	}
	if isS && st.broadcast[p] {
		// Broadcast partitions keep only the local outer share: it is
		// the whole region, regardless of transport.
		return slabOff
	}
	if st.cfg.Transport == TransportOneSided {
		return slabOff + machinePrefix(all, st.m.ID, p)
	}
	return slabOff
}

// wireDataPlane creates the data plane: per-(sender thread, destination
// machine) queue pairs plus the receive rings of channel-semantics
// transports, or — for TransportTCP — a real loopback TCP mesh. Connection
// setup is excluded from phase timings, like the paper's experiments.
func wireDataPlane(c *cluster.Cluster, states []*machineState) (*tcpnet.Mesh, error) {
	nm := len(states)
	for _, st := range states {
		st.sendCQ = make([]*rdma.CompletionQueue, st.partThreads)
		for t := range st.sendCQ {
			st.sendCQ[t] = st.m.Dev.NewCQ()
		}
		st.recvCQ = st.m.Dev.NewCQ()
		st.qps = make([][]*rdma.QP, st.partThreads)
		for t := range st.qps {
			st.qps[t] = make([]*rdma.QP, nm)
		}
	}
	if states[0].cfg.ResultSink != nil && states[0].cfg.ResultTarget >= 0 {
		if err := wireResultPlane(states); err != nil {
			return nil, err
		}
	}
	if nm == 1 {
		return nil, nil
	}
	if states[0].cfg.Transport == TransportTCP {
		mesh, err := tcpnet.NewMesh(nm, states[0].partThreads)
		if err != nil {
			return nil, err
		}
		for _, st := range states {
			st.tcp = mesh.Endpoint(st.m.ID)
		}
		return mesh, nil
	}
	for a := 0; a < nm; a++ {
		sa := states[a]
		for t := 0; t < sa.partThreads; t++ {
			for b := 0; b < nm; b++ {
				if b == a {
					continue
				}
				sb := states[b]
				depth := sa.cfg.QPDepth
				if depth == 0 {
					depth = rdma.DefaultQueueDepth
				}
				qpS, qpR, err := c.ConnectQPs(a, b,
					rdma.QPConfig{SendCQ: sa.sendCQ[t], RecvCQ: sa.recvCQ, Depth: depth},
					rdma.QPConfig{SendCQ: sb.recvCQ, RecvCQ: sb.recvCQ, Depth: depth})
				if err != nil {
					return nil, err
				}
				sa.qps[t][b] = qpS
				if sa.cfg.usesNetworkThread() {
					ring, err := newRecvRing(sb.m.PD, qpR, sa.cfg.BufferSize, recvRingSlots)
					if err != nil {
						return nil, err
					}
					// Per-QP FIFO: messages from (machine a, thread t)
					// arrive on this ring in posting order, so a per-ring
					// counter reconstructs the sender's message sequence
					// for the causal flow edges.
					ring.src, ring.srcThread = a, t
					sb.rings[qpR.QPN()] = ring
				}
			}
		}
	}
	return nil, nil
}

func deviceTotals(c *cluster.Cluster) (s rdma.DeviceStats) {
	for _, m := range c.Machines() {
		d := m.Dev.Stats()
		s.BytesSent += d.BytesSent
		s.Sends += d.Sends
		s.Writes += d.Writes
		s.Registrations += d.Registrations
		s.PagesRegistered += d.PagesRegistered
	}
	return s
}

func assembleResult(c *cluster.Cluster, states []*machineState, before rdma.DeviceStats) *Result {
	res := &Result{
		PerMachine:           make([]phase.Times, len(states)),
		PartitionsPerMachine: make([]int, len(states)),
		PipelineOverlap:      make([]time.Duration, len(states)),
	}
	for i, st := range states {
		res.Matches += st.matches
		res.Checksum += st.checksum
		res.PerMachine[i] = st.phases
		res.PartitionsPerMachine[i] = len(st.resident)
		res.PipelineOverlap[i] = st.overlap
		res.Net.PoolStalls += st.poolStalls
		if st.phases.Histogram > res.Phases.Histogram {
			res.Phases.Histogram = st.phases.Histogram
		}
		if st.phases.NetworkPartition > res.Phases.NetworkPartition {
			res.Phases.NetworkPartition = st.phases.NetworkPartition
		}
		if st.phases.LocalPartition > res.Phases.LocalPartition {
			res.Phases.LocalPartition = st.phases.LocalPartition
		}
		if st.phases.BuildProbe > res.Phases.BuildProbe {
			res.Phases.BuildProbe = st.phases.BuildProbe
		}
	}
	// Skew engine outcome: the detector output is identical on every
	// machine (derived from the same merged sketch), so machine 0 speaks
	// for all; the traffic and task-split tallies are summed.
	res.Skew.Mode = states[0].skewMode
	res.Skew.HeavyHitters = states[0].skewStats.HeavyHitters
	res.Skew.SplitPartitions = states[0].skewStats.SplitPartitions
	for _, st := range states {
		res.Skew.ReplicatedBytes += st.skewReplBytes.Load()
		res.Skew.TaskSplits += st.skewStats.TaskSplits
	}
	after := deviceTotals(c)
	res.Net.BytesSent = after.BytesSent - before.BytesSent
	res.Net.Messages = (after.Sends + after.Writes) - (before.Sends + before.Writes)
	res.Net.Registrations = after.Registrations - before.Registrations
	res.Net.PagesRegistered = after.PagesRegistered - before.PagesRegistered
	for _, st := range states {
		res.Net.BytesSent += st.tcpBytes.Load()
		res.Net.Messages += st.tcpMsgs.Load()
	}
	return res
}
