package core

import (
	"fmt"
	"sync"
	"time"

	"rackjoin/internal/rdma"
	"rackjoin/internal/trace"
)

// recvRingSlots is the number of pre-posted receive buffers per incoming
// queue pair in channel-semantics mode (Section 4.2.2: "only register a
// predefined number of small RDMA-enabled buffers").
const recvRingSlots = 8

// recvRing is the pre-posted receive buffer ring of one incoming queue
// pair. Slots are consumed by incoming SENDs, their payload copied into
// the destination partition region by the network thread, and re-posted.
type recvRing struct {
	qp    *rdma.QP
	mr    *rdma.MemoryRegion
	bufSz int

	// src/srcThread identify the sender (machine, partitioning thread)
	// whose queue pair feeds this ring; seq counts the data messages
	// consumed, mirroring the sender's per-(thread, dest) sequence so the
	// trace layer can key cross-machine flow edges (per-QP FIFO order).
	src       int
	srcThread int
	seq       uint64
}

func newRecvRing(pd *rdma.ProtectionDomain, qp *rdma.QP, bufSize, slots int) (*recvRing, error) {
	mr, err := pd.RegisterMemory(make([]byte, bufSize*slots), rdma.AccessLocalWrite)
	if err != nil {
		return nil, err
	}
	r := &recvRing{qp: qp, mr: mr, bufSz: bufSize}
	for i := 0; i < slots; i++ {
		if err := r.post(i); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func (r *recvRing) post(slot int) error {
	return r.qp.PostRecv(rdma.RecvWR{
		WRID:  uint64(slot),
		Local: rdma.Segment{MR: r.mr, Offset: slot * r.bufSz, Length: r.bufSz},
	})
}

func (r *recvRing) payload(slot, length int) []byte {
	return r.mr.Bytes()[slot*r.bufSz : slot*r.bufSz+length]
}

// postReceiveRings is a hook kept for symmetry: rings are created during
// data-plane wiring (setup). It validates that channel semantics have the
// rings they need.
func (st *machineState) postReceiveRings() error {
	if st.nm == 1 || !st.cfg.usesNetworkThread() || st.cfg.Transport == TransportTCP {
		return nil
	}
	want := (st.nm - 1) * st.partThreads
	if len(st.rings) != want {
		return fmt.Errorf("core: %d receive rings wired, want %d", len(st.rings), want)
	}
	return nil
}

// expectedRemoteBytes returns how many payload bytes this machine will
// receive during the network partitioning pass — known exactly from the
// exchanged machine-level histograms, which is how the receive loop knows
// when the pass is complete without explicit end-of-stream messages.
func (st *machineState) expectedRemoteBytes() uint64 {
	var tuples uint64
	for _, p := range st.resident {
		for m := 0; m < st.nm; m++ {
			if m == st.m.ID {
				continue
			}
			tuples += st.allHistR[m][p]
			if st.owner[p] == st.m.ID {
				// Broadcast partitions never ship outer tuples…
				tuples += st.allHistS[m][p]
			} else if st.isSplit(p) {
				// …except skew-split ones, which deal an exactly
				// derivable share of every sender's outer tuples here.
				tuples += uint64(st.splitShare(m, p, st.m.ID))
			}
		}
	}
	return tuples * uint64(st.width)
}

// receiveLoop is the network thread of channel-semantics mode: it drains
// the shared receive completion queue, appends each buffer's tuples to the
// addressed partition region and re-posts the buffer. One core per machine
// runs this loop during the network partitioning pass, matching the
// paper's N_C/M − 1 partitioning threads.
func (st *machineState) receiveLoop() error {
	expected := st.expectedRemoteBytes()
	if expected == 0 {
		return nil
	}
	// Arrival-order append cursors: the local share of each owned
	// partition occupies the front of its slab range; remote data lands
	// behind it.
	w := int64(st.width)
	curR := make([]int64, st.np)
	curS := make([]int64, st.np)
	for _, p := range st.resident {
		curR[p] = (st.slabOffR[st.m.ID][p] + int64(st.allHistR[st.m.ID][p])) * w
		selfS := int64(st.allHistS[st.m.ID][p])
		if st.isSplit(p) {
			// Split partitions lead with the self-dealt share only; the
			// dealt-in remainder lands behind it in arrival order.
			selfS = st.splitShare(st.m.ID, p, st.m.ID)
		}
		curS[p] = (st.slabOffS[st.m.ID][p] + selfS) * w
	}
	slabR := st.slabR.Bytes()
	slabS := st.slabS.Bytes()

	var received uint64
	var polled [1]rdma.Completion
	idle := pollIdleMin
	for received < expected {
		var c rdma.Completion
		if st.pipe != nil {
			// Pipelined pass: poll instead of block, and spend every dry
			// gap on partition-ready join work. Arrivals keep priority —
			// one task per empty poll, re-checking the queue in between —
			// so the receive rings drain promptly and senders never stall
			// on a busy network thread. When there is neither data nor
			// work the loop backs off exponentially: on a host with fewer
			// cores than simulated machines, tight poll sleeps would burn
			// the CPU the other machines' threads need.
			if st.recvCQ.Poll(polled[:]) == 0 {
				if w := st.pipe.netWorker; w == nil || !st.pipe.runReadyTask(w) {
					time.Sleep(idle)
					if idle < pollIdleMax {
						idle *= 2
						if idle >= pollIdleMax {
							st.flight("backoff", "receive loop at max poll backoff", 0, 0)
						}
					}
				} else {
					idle = pollIdleMin
				}
				continue
			}
			idle = pollIdleMin
			c = polled[0]
		} else {
			c = st.recvCQ.Wait()
		}
		if err := c.Err(); err != nil {
			return fmt.Errorf("receive: %w", err)
		}
		if !c.HasImm {
			return fmt.Errorf("receive: data message without partition immediate")
		}
		ring, ok := st.rings[c.QPN]
		if !ok {
			return fmt.Errorf("receive: completion from unknown QP %d", c.QPN)
		}
		p := int(c.Imm &^ relationFlag)
		if p >= st.np || !st.residentHere(p) {
			return fmt.Errorf("receive: tuple batch for partition %d not resident on machine %d", p, st.m.ID)
		}
		payload := ring.payload(int(c.WRID), c.Bytes)
		if c.Imm&relationFlag != 0 {
			copy(slabS[curS[p]:], payload)
			curS[p] += int64(c.Bytes)
		} else {
			copy(slabR[curR[p]:], payload)
			curR[p] += int64(c.Bytes)
		}
		var gate trace.SpanID
		if tr := st.cfg.Trace; tr != nil {
			// Message edge: rendezvous with the sender's FlowOut of the
			// same (src machine, src thread, dest, sequence) key.
			gate = tr.InstantFlowIn(st.m.ID, "msg", st.recvLabels[p], st.runSpan, int64(c.Bytes),
				"msg", msgFlowKey(ring.src, ring.srcThread, st.m.ID, ring.seq))
			ring.seq++
		}
		if st.pipe != nil {
			// Credit after the copy: a partition only becomes ready once
			// its tuples are actually in place.
			st.pipe.credit(p, int64(c.Bytes), gate)
		}
		if err := ring.post(int(c.WRID)); err != nil {
			return err
		}
		received += uint64(c.Bytes)
	}
	return nil
}

// tcpReceiveLoop is the TransportTCP counterpart of receiveLoop: kernel
// socket readers deliver frames which are appended to the addressed
// partition regions. Readers run concurrently (one per incoming
// connection, as the kernel would schedule them), so cursor updates are
// serialised.
func (st *machineState) tcpReceiveLoop() error {
	expected := st.expectedRemoteBytes()
	if expected == 0 {
		return nil
	}
	w := int64(st.width)
	curR := make([]int64, st.np)
	curS := make([]int64, st.np)
	for _, p := range st.resident {
		curR[p] = (st.slabOffR[st.m.ID][p] + int64(st.allHistR[st.m.ID][p])) * w
		selfS := int64(st.allHistS[st.m.ID][p])
		if st.isSplit(p) {
			selfS = st.splitShare(st.m.ID, p, st.m.ID)
		}
		curS[p] = (st.slabOffS[st.m.ID][p] + selfS) * w
	}
	slabR := st.slabR.Bytes()
	slabS := st.slabS.Bytes()

	var mu sync.Mutex
	var handleErr error
	err := st.tcp.Receive(expected, func(tag uint32, payload []byte) {
		p := int(tag &^ relationFlag)
		mu.Lock()
		defer mu.Unlock()
		if p >= st.np || !st.residentHere(p) {
			if handleErr == nil {
				handleErr = fmt.Errorf("tcp receive: tuple batch for partition %d not resident on machine %d", p, st.m.ID)
			}
			return
		}
		if tag&relationFlag != 0 {
			copy(slabS[curS[p]:], payload)
			curS[p] += int64(len(payload))
		} else {
			copy(slabR[curR[p]:], payload)
			curR[p] += int64(len(payload))
		}
		if st.pipe != nil {
			// No sender identity survives the kernel TCP boundary, so TCP
			// runs carry no per-message flow edges (gate 0).
			st.pipe.credit(p, int64(len(payload)), 0)
		}
	})
	if err != nil {
		return err
	}
	return handleErr
}
