package core

import (
	"fmt"
	"sync"

	"rackjoin/internal/hashtable"
	"rackjoin/internal/rdma"
)

// Section 4.3: "The result containing the matching tuples can either be
// output to a local buffer or written to RDMA-enabled buffers, depending
// on the location where the result will be further processed. Similar to
// the partitioning phase, we transmit an RDMA-enabled buffer over the
// network once it is full. To be able to continue processing, each thread
// receives multiple output buffers for transmitting data."
//
// With Config.ResultTarget ≥ 0, every build-probe worker materialises its
// matches into a pre-registered output buffer pool and ships full buffers
// to the target machine, where ResultSink consumes them. The target's own
// workers sink locally.

// resultFlag marks result buffers in the immediate value; resultDone
// marks a worker's end-of-results message.
const (
	resultFlag = uint32(1) << 29
	resultDone = uint32(1) << 28
)

// resultShipper is one worker's output path: a small RDMA buffer pool
// with the usual reuse-after-completion discipline.
type resultShipper struct {
	pool *bufferPool
	qp   *rdma.QP
	cur  int32
	fill int
}

func newResultShipper(st *machineState, worker int) (*resultShipper, error) {
	pool, err := newBufferPool(st.m.PD, st.resCQ[worker], st.cfg.BufferSize, resultBuffers, false)
	if err != nil {
		return nil, err
	}
	return &resultShipper{pool: pool, qp: st.resQP[worker], cur: -1}, nil
}

// resultBuffers is the number of output buffers per worker ("multiple
// output buffers", §4.3; two suffice for interleaving).
const resultBuffers = 2

// emit appends materialised records, shipping buffers as they fill.
func (rs *resultShipper) emit(records []byte) error {
	for len(records) > 0 {
		if rs.cur < 0 {
			b, err := rs.pool.acquire()
			if err != nil {
				return err
			}
			rs.cur = b
			rs.fill = 0
		}
		buf := rs.pool.buf(rs.cur)
		// Ship whole records only: keep the buffer a multiple of the
		// record size.
		space := (len(buf) - rs.fill) / hashtable.ResultWidth * hashtable.ResultWidth
		n := copy(buf[rs.fill:rs.fill+min(space, len(records))], records)
		rs.fill += n
		records = records[n:]
		if len(buf)-rs.fill < hashtable.ResultWidth {
			if err := rs.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (rs *resultShipper) flush() error {
	if rs.cur < 0 || rs.fill == 0 {
		if rs.cur >= 0 {
			rs.pool.release(rs.cur)
			rs.cur = -1
		}
		return nil
	}
	err := rs.qp.PostSend(rdma.SendWR{
		WRID: uint64(rs.cur), Op: rdma.OpSend, Signaled: true,
		Imm: resultFlag, HasImm: true,
		Local: rdma.Segment{MR: rs.pool.mr, Offset: int(rs.cur) * rs.pool.bufSize, Length: rs.fill},
	})
	if err != nil {
		return err
	}
	rs.pool.outstanding++
	rs.cur = -1
	rs.fill = 0
	return nil
}

// finish flushes the partial buffer, drains outstanding transfers and
// sends the worker's DONE marker.
func (rs *resultShipper) finish() error {
	if err := rs.flush(); err != nil {
		return err
	}
	if err := rs.qp.PostSend(rdma.SendWR{
		Op: rdma.OpSend, Imm: resultDone, HasImm: true, Inline: []byte{0},
	}); err != nil {
		return err
	}
	return rs.pool.drain()
}

// wireResultPlane connects every non-target worker to the target machine
// and posts the target's receive rings.
func wireResultPlane(states []*machineState) error {
	cfg := states[0].cfg
	if cfg.ResultTarget < 0 {
		return nil
	}
	target := states[cfg.ResultTarget]
	target.resRecvCQ = target.m.Dev.NewCQ()
	for _, st := range states {
		if st.m.ID == cfg.ResultTarget {
			continue
		}
		st.resCQ = make([]*rdma.CompletionQueue, st.m.Cores)
		st.resQP = make([]*rdma.QP, st.m.Cores)
		for w := 0; w < st.m.Cores; w++ {
			st.resCQ[w] = st.m.Dev.NewCQ()
			qpS, err := st.m.PD.CreateQP(rdma.QPConfig{SendCQ: st.resCQ[w], RecvCQ: st.resCQ[w]})
			if err != nil {
				return err
			}
			qpR, err := target.m.PD.CreateQP(rdma.QPConfig{SendCQ: target.resRecvCQ, RecvCQ: target.resRecvCQ})
			if err != nil {
				return err
			}
			if err := rdma.Connect(qpS, qpR); err != nil {
				return err
			}
			st.resQP[w] = qpS
			ring, err := newRecvRing(target.m.PD, qpR, cfg.BufferSize, recvRingSlots)
			if err != nil {
				return err
			}
			target.resRings[qpR.QPN()] = ring
		}
	}
	return nil
}

// receiveResults runs on the target machine concurrently with its own
// build-probe workers, feeding arriving result buffers to the sink until
// every remote worker reported DONE.
func (st *machineState) receiveResults() error {
	want := 0
	for range st.resRings {
		want++ // one DONE per remote worker connection
	}
	done := 0
	for done < want {
		c := st.resRecvCQ.Wait()
		if err := c.Err(); err != nil {
			return fmt.Errorf("result receive: %w", err)
		}
		ring, ok := st.resRings[c.QPN]
		if !ok {
			return fmt.Errorf("result receive: unknown QP %d", c.QPN)
		}
		switch {
		case c.Imm&resultDone != 0:
			done++
		case c.Imm&resultFlag != 0:
			records := make([]byte, c.Bytes)
			copy(records, ring.payload(int(c.WRID), c.Bytes))
			st.cfg.ResultSink(st.m.ID, records)
		default:
			return fmt.Errorf("result receive: unexpected immediate %x", c.Imm)
		}
		if err := ring.post(int(c.WRID)); err != nil {
			return err
		}
	}
	return nil
}

// runResultPlane wraps localPassAndBuildProbe with the result plane: the
// target drains incoming results concurrently; other machines attach a
// shipper to each worker.
func (st *machineState) runResultPlane(body func(shippers []*resultShipper) error) error {
	if st.cfg.ResultSink == nil || st.cfg.ResultTarget < 0 {
		return body(nil)
	}
	if st.m.ID == st.cfg.ResultTarget {
		var recvErr error
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			recvErr = st.receiveResults()
		}()
		err := body(nil)
		wg.Wait()
		if err != nil {
			return err
		}
		return recvErr
	}
	shippers := make([]*resultShipper, st.m.Cores)
	for w := range shippers {
		var err error
		if shippers[w], err = newResultShipper(st, w); err != nil {
			return err
		}
	}
	if err := body(shippers); err != nil {
		return err
	}
	for _, rs := range shippers {
		if err := rs.finish(); err != nil {
			return err
		}
	}
	return nil
}
