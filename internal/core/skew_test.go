package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rackjoin/internal/cluster"
	"rackjoin/internal/datagen"
	"rackjoin/internal/metrics"
	"rackjoin/internal/obsv"
	"rackjoin/internal/relation"
)

// skewedForSplit concentrates the outer relation on a few Zipf head keys:
// their partitions cross the default detection threshold (4/np) and the
// split engine must redistribute them.
var skewedForSplit = datagen.Config{
	InnerTuples: 1 << 12, OuterTuples: 1 << 16,
	Skew: datagen.SkewHigh, Seed: 99,
}

// TestSkewEquivalenceAllTransports: the skew engine must be result-
// invariant — byte-identical matches and checksum with the engine off,
// detecting, and splitting — across every transport in both barrier and
// pipelined mode. The split runs must actually split something (except on
// the pull transport, which degrades to detection).
func TestSkewEquivalenceAllTransports(t *testing.T) {
	transports := []Transport{
		TransportTwoSided, TransportOneSided, TransportStream,
		TransportTCP, TransportOneSidedAtomic, TransportOneSidedRead,
	}
	for _, tr := range transports {
		for _, pipelined := range []bool{false, true} {
			for _, mode := range []SkewMode{SkewOff, SkewDetect, SkewSplit} {
				cfg := DefaultConfig()
				cfg.Transport = tr
				cfg.Pipeline = pipelined
				cfg.Skew = mode
				res, want := runJoin(t, 3, 3, skewedForSplit, cfg)
				checkResult(t, res, want)
				wantMode := mode
				if mode == SkewSplit && tr == TransportOneSidedRead {
					wantMode = SkewDetect
				}
				if res.Skew.Mode != wantMode {
					t.Fatalf("transport %v pipelined %v: mode %v, want %v", tr, pipelined, res.Skew.Mode, wantMode)
				}
				switch {
				case wantMode == SkewOff:
					if len(res.Skew.HeavyHitters) != 0 || len(res.Skew.SplitPartitions) != 0 {
						t.Fatalf("transport %v: skew engine off but stats reported: %+v", tr, res.Skew)
					}
				case wantMode == SkewDetect:
					if len(res.Skew.HeavyHitters) == 0 {
						t.Fatalf("transport %v: no heavy hitters detected on a Zipf %.2f workload", tr, skewedForSplit.Skew)
					}
					if len(res.Skew.SplitPartitions) != 0 || res.Skew.ReplicatedBytes != 0 {
						t.Fatalf("transport %v: detect mode must not act: %+v", tr, res.Skew)
					}
				default: // SkewSplit
					if len(res.Skew.SplitPartitions) == 0 {
						t.Fatalf("transport %v pipelined %v: nothing split on a skewed workload", tr, pipelined)
					}
					if res.Skew.ReplicatedBytes == 0 {
						t.Fatalf("transport %v pipelined %v: split partitions but no replicated traffic", tr, pipelined)
					}
				}
			}
		}
	}
}

// TestSkewSplitWithBroadcast: selective broadcast (BroadcastFactor) and
// the skew engine can coexist — partitions claimed by both are processed
// once, in split mode, with the right result.
func TestSkewSplitWithBroadcast(t *testing.T) {
	cfg := broadcastConfig()
	cfg.Skew = SkewSplit
	res, want := runJoin(t, 4, 4, skewedForSplit, cfg)
	checkResult(t, res, want)
	if len(res.Skew.SplitPartitions) == 0 {
		t.Fatal("nothing split with broadcast enabled")
	}
}

// TestSkewUniformNoOp: on a uniform workload no key crosses the
// threshold, so split mode must change nothing — no hot keys, no split
// partitions, no replicated bytes, correct result.
func TestSkewUniformNoOp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Skew = SkewSplit
	res, want := runJoin(t, 4, 4, smallWorkload, cfg)
	checkResult(t, res, want)
	if len(res.Skew.HeavyHitters) != 0 || len(res.Skew.SplitPartitions) != 0 || res.Skew.ReplicatedBytes != 0 {
		t.Fatalf("uniform workload triggered the skew engine: %+v", res.Skew)
	}
}

// TestSkewSingleMachineDegrades: with one machine there is nobody to
// split with; the effective mode must degrade to detection.
func TestSkewSingleMachineDegrades(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Skew = SkewSplit
	res, want := runJoin(t, 1, 4, skewedForSplit, cfg)
	checkResult(t, res, want)
	if res.Skew.Mode != SkewDetect {
		t.Fatalf("single machine mode = %v, want SkewDetect", res.Skew.Mode)
	}
	if len(res.Skew.HeavyHitters) == 0 {
		t.Fatal("single-machine detection found no heavy hitters")
	}
}

// TestSkewThresholdRespected: an explicit SkewThreshold above the hottest
// key's share must suppress detection entirely.
func TestSkewThresholdRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Skew = SkewSplit
	cfg.SkewThreshold = 0.9
	res, want := runJoin(t, 3, 3, skewedForSplit, cfg)
	checkResult(t, res, want)
	if len(res.Skew.HeavyHitters) != 0 {
		t.Fatalf("threshold 0.9 still detected %d heavy hitters", len(res.Skew.HeavyHitters))
	}
}

// TestSkewBalancesProbeWork: the point of the engine — with splitting on,
// the dealt outer shares of hot partitions spread the probe work, so the
// per-machine received outer tuples of the hot partition even out. Proxy:
// with the engine, every machine resides the split partition (resident
// sums exceed np) and replicated traffic flows.
func TestSkewBalancesProbeWork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Skew = SkewSplit
	res, want := runJoin(t, 4, 4, skewedForSplit, cfg)
	checkResult(t, res, want)
	total := 0
	for _, n := range res.PartitionsPerMachine {
		total += n
	}
	wantMin := 1<<cfg.NetworkBits + (4-1)*len(res.Skew.SplitPartitions)
	if total < wantMin {
		t.Fatalf("split partitions not resident everywhere: sum %d, want ≥ %d", total, wantMin)
	}
}

// TestSkewMetricsAndFlight: the run must leave skew_heavy_hitters_total
// and per-partition skew_replicated_bytes_total in the registry, and
// "skew" breadcrumbs in the flight recorder.
func TestSkewMetricsAndFlight(t *testing.T) {
	const machines = 3
	c, err := cluster.New(cluster.Config{Machines: machines, CoresPerMachine: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := datagen.Generate(skewedForSplit)
	want := datagen.ExpectedJoin(w.Outer)

	reg := metrics.NewRegistry()
	fr := obsv.NewFlightRecorder(machines, 4096)
	cfg := DefaultConfig()
	cfg.Skew = SkewSplit
	cfg.Metrics = reg
	cfg.Flight = fr
	res, err := Run(c, relation.Fragment(w.Inner, machines), relation.Fragment(w.Outer, machines), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, want)

	var hitters, replBytes float64
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "skew_heavy_hitters_total":
			hitters += s.Value
		case "skew_replicated_bytes_total":
			if s.Labels["partition"] == "" {
				t.Fatal("skew_replicated_bytes_total without partition label")
			}
			replBytes += s.Value
		}
	}
	if hitters == 0 {
		t.Fatal("skew_heavy_hitters_total not exported")
	}
	if replBytes == 0 {
		t.Fatal("skew_replicated_bytes_total not exported")
	}
	if uint64(replBytes) != res.Skew.ReplicatedBytes {
		t.Fatalf("metric says %d replicated bytes, result says %d", uint64(replBytes), res.Skew.ReplicatedBytes)
	}
	found := false
	for _, e := range fr.Snapshot() {
		if e.Kind == "skew" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no skew breadcrumbs in the flight recorder")
	}
}

// TestSplitRange: the claim/steal protocol of a splittable range — the
// owner eats the bottom, thieves halve the top, the pieces tile [lo, hi)
// exactly, and undersized remainders refuse to split.
func TestSplitRange(t *testing.T) {
	r := &splitRange{lo: 0, hi: 4 * splitMinTuples}
	lo, hi, ok := r.steal()
	if !ok || lo != 2*splitMinTuples || hi != 4*splitMinTuples {
		t.Fatalf("steal got [%d,%d) ok=%v, want top half", lo, hi, ok)
	}
	covered := 0
	for {
		clo, chi, ok := r.claim(1000)
		if !ok {
			break
		}
		covered += chi - clo
	}
	if covered != 2*splitMinTuples {
		t.Fatalf("owner claimed %d tuples, want %d", covered, 2*splitMinTuples)
	}
	small := &splitRange{lo: 0, hi: splitMinTuples - 1}
	if _, _, ok := small.steal(); ok {
		t.Fatal("stole from an undersized range")
	}
}

// TestSchedulerTrySplit: trySplit pre-charges pending before shrinking
// the victim's range (the termination discipline) and returns a runnable
// task covering the stolen half.
func TestSchedulerTrySplit(t *testing.T) {
	s := newScheduler(2)
	ran := 0
	rng := &splitRange{lo: 0, hi: 2 * splitMinTuples}
	o := &splitOffer{
		rng:   rng,
		spawn: func(lo, hi int) schedTask { return func(*joinWorker) { ran += hi - lo } },
	}
	s.reserve(1) // stands in for the running owner task
	s.offer(o)
	task, ok := s.trySplit(1)
	if !ok {
		t.Fatal("trySplit found nothing")
	}
	if got := s.pending.Load(); got != 2 {
		t.Fatalf("pending = %d after split, want 2 (owner + stolen)", got)
	}
	task(nil)
	if ran != splitMinTuples {
		t.Fatalf("stolen task covered %d tuples, want %d", ran, splitMinTuples)
	}
	// Shrink the remainder below the floor: no further splits, and the
	// failed attempt must not leak a pending reservation.
	rng.claim(1)
	if _, ok := s.trySplit(1); ok {
		t.Fatal("split an undersized remainder")
	}
	if got := s.pending.Load(); got != 2 {
		t.Fatalf("failed split leaked pending: %d, want 2", got)
	}
	s.retract(o)
	if _, ok := s.trySplit(1); ok {
		t.Fatal("split a retracted offer")
	}
}

// TestSkewTortureMidRunSplit: lower the split floor so idle workers may
// halve running probe ranges, then hammer a heavily skewed join across
// transports and modes. Run under -race this exercises the full
// claim/steal/offer/park interleavings in situ; the result must stay
// exact whether or not a split lands (on test-sized inputs a hot range
// drains in microseconds, so organic splits are timing-dependent —
// TestSchedulerSplitConcurrency covers the guaranteed-split case).
func TestSkewTortureMidRunSplit(t *testing.T) {
	old := splitMinTuples
	splitMinTuples = 64
	defer func() { splitMinTuples = old }()

	var splits uint64
	for _, tr := range []Transport{TransportTwoSided, TransportOneSided, TransportTCP} {
		for _, pipelined := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.Transport = tr
			cfg.Pipeline = pipelined
			cfg.Skew = SkewSplit
			res, want := runJoin(t, 3, 4, skewedForSplit, cfg)
			checkResult(t, res, want)
			splits += res.Skew.TaskSplits
		}
	}
	t.Logf("mid-run task splits across six torture runs: %d", splits)
}

// TestSchedulerSplitConcurrency drives the scheduler directly with a
// splittable task whose claim loop is slow enough that idle workers are
// guaranteed a live window to halve it: the range must be covered exactly
// once (no lost tuples, no duplicates — the termination discipline) and
// at least one split must land. Run under -race this is the mid-run
// splitting torture.
func TestSchedulerSplitConcurrency(t *testing.T) {
	const workers = 4
	const total = 4 * 1 << 14 // 4 × splitMinTuples: splittable twice over
	const chunk = 512

	s := newScheduler(workers)
	var claimed atomic.Int64
	var splittable func(lo, hi int) schedTask
	splittable = func(lo, hi int) schedTask {
		return func(*joinWorker) {
			rng := &splitRange{lo: lo, hi: hi}
			o := &splitOffer{rng: rng, spawn: splittable}
			s.offer(o)
			for {
				clo, chi, ok := rng.claim(chunk)
				if !ok {
					break
				}
				claimed.Add(int64(chi - clo))
				time.Sleep(50 * time.Microsecond) // stand-in for probe work
			}
			s.retract(o)
		}
	}
	s.reserve(1)
	s.inject(splittable(0, total))

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				task, ok := s.next(id)
				if !ok {
					return
				}
				task(nil)
				s.done()
			}
		}(i)
	}
	wg.Wait()

	if got := claimed.Load(); got != total {
		t.Fatalf("claimed %d tuples, want exactly %d (lost or duplicated work)", got, total)
	}
	if s.splits.Load() == 0 {
		t.Fatal("no worker split the range despite a ~6ms live window")
	}
	if got := s.pending.Load(); got != 0 {
		t.Fatalf("pending = %d after drain, want 0", got)
	}
}
