package core

import (
	"strconv"
	"sync/atomic"

	"rackjoin/internal/metrics"
	"rackjoin/internal/skew"
)

// This file wires the heavy-hitter skew engine (internal/skew) into the
// join. The flow:
//
//	histogram scan         → per-thread space-saving sketches (fused into
//	                         the same pass over the outer chunk)
//	histogram exchange     → per-machine sketch travels piggybacked on the
//	                         histogram all-gather vector
//	deriveSkew             → every machine merges the same encoded blocks
//	                         with the same threshold → identical global
//	                         heavy-hitter set and split-partition set
//	computeAssignment      → split partitions become broadcast partitions
//	                         (inner side replicated everywhere) with the
//	                         outer side dealt round-robin instead of kept
//	                         local
//	scatterSlice/dealSplit → the outer tuples of a split partition are
//	                         dealt to machines by a shared per-partition
//	                         counter; per-(sender, destination) shares are
//	                         exactly derivable from the exchanged
//	                         histograms, so slab sizes, write offsets and
//	                         termination counts all stay exact with no
//	                         extra control-plane round.

// maxSketchCapacity bounds the per-machine sketch (and therefore the
// piggybacked exchange payload: 16 bytes per slot).
const maxSketchCapacity = 4096

// sketchCapacity sizes the space-saving sketch for a frequency threshold:
// a key with share ≥ thr is guaranteed tracked when capacity ≥ 1/thr;
// double that for resolution between the hot keys and the tail.
func sketchCapacity(thr float64) int {
	c := int(2/thr) + 1
	if c < 64 {
		c = 64
	}
	if c > maxSketchCapacity {
		c = maxSketchCapacity
	}
	return c
}

// SkewStats reports the skew engine's decisions for one execution.
type SkewStats struct {
	// Mode is the effective mode the run used (SkewSplit degrades to
	// SkewDetect on a single machine and on the pull transport).
	Mode SkewMode
	// HeavyHitters are the detected hot keys with their merged estimated
	// counts, hottest first. Identical on every machine.
	HeavyHitters []skew.Entry
	// SplitPartitions are the network partitions processed in
	// split-and-replicate mode (empty unless Mode is SkewSplit).
	SplitPartitions []int
	// ReplicatedBytes is the extra traffic attributable to split
	// partitions: replicated inner tuples plus redistributed outer tuples.
	ReplicatedBytes uint64
	// TaskSplits counts probe ranges stolen mid-run by idle workers.
	TaskSplits uint64
}

// deriveSkew runs on every machine after the histogram exchange, over the
// identical encoded sketch blocks, and derives the identical heavy-hitter
// and split-partition sets. blocks[m] is machine m's Encode output.
func (st *machineState) deriveSkew(blocks [][]uint64) {
	var totalS uint64
	for _, c := range st.globalS {
		totalS += uint64(c)
	}
	thr := uint64(st.cfg.skewThresholdFrac() * float64(totalS))
	if thr < 1 {
		thr = 1
	}
	hot := skew.MergeEncoded(blocks, thr)
	st.skewStats.Mode = st.skewMode
	st.skewStats.HeavyHitters = hot
	if len(hot) == 0 {
		return
	}
	st.met.Counter("skew_heavy_hitters_total").Add(uint64(len(hot)))
	mask := uint64(st.np - 1)
	if st.skewMode != SkewSplit {
		if st.cfg.Flight != nil {
			st.flight("skew", "detected "+strconv.Itoa(len(hot))+" heavy hitters", int(hot[0].Key&mask), int64(hot[0].Count))
		}
		return
	}
	st.split = make([]bool, st.np)
	for _, e := range hot {
		p := int(e.Key & mask)
		if !st.split[p] {
			st.split[p] = true
			st.skewStats.SplitPartitions = append(st.skewStats.SplitPartitions, p)
			if st.cfg.Flight != nil {
				st.flight("skew", "split partition (heavy hitter)", p, int64(e.Count))
			}
		}
	}
	st.splitNext = make([]atomic.Int64, st.np)
	st.splitLocalCur = make([]atomic.Int64, st.np)
	st.splitRemoteCur = make([][]atomic.Int64, st.np)
	st.skewRepl = make([]*metrics.Counter, st.np)
	for _, p := range st.skewStats.SplitPartitions {
		st.skewRepl[p] = st.met.Counter("skew_replicated_bytes_total",
			metrics.L("partition", strconv.Itoa(p)))
	}
}

// isSplit reports whether partition p runs in split-and-replicate mode.
func (st *machineState) isSplit(p int) bool {
	return st.split != nil && st.split[p]
}

// splitStartDest is the first destination machine the dealer of (sender
// src, partition p) cycles to. Offsetting by both src and p spreads the
// remainder tuples of uneven divisions across machines instead of piling
// them on machine 0.
func (st *machineState) splitStartDest(src, p int) int {
	return (src + p) % st.nm
}

// splitShare is the exact number of outer tuples of split partition p that
// sender src deals to dest: the dealer hands tuple i to machine
// (start+i) mod nm, so every machine can derive every (src, dest) share
// from the already-exchanged histograms — slab sizing, exact one-sided
// placement and the receive loops' termination counts need no second
// exchange.
func (st *machineState) splitShare(src, p, dest int) int64 {
	total := int64(st.allHistS[src][p])
	q, r := total/int64(st.nm), total%int64(st.nm)
	if int64((dest-st.splitStartDest(src, p)+st.nm)%st.nm) < r {
		return q + 1
	}
	return q
}

// splitRecvTotal is the outer-tuple count machine dest receives (including
// from itself) for split partition p — its S slab share.
func (st *machineState) splitRecvTotal(p, dest int) int64 {
	var sum int64
	for src := 0; src < st.nm; src++ {
		sum += st.splitShare(src, p, dest)
	}
	return sum
}

// splitSrcBase is sender src's tuple offset within dest's S slab share of
// split partition p under one-sided exact placement (per-source
// sub-regions, ascending sender id).
func (st *machineState) splitSrcBase(src, p, dest int) int64 {
	var sum int64
	for m := 0; m < src; m++ {
		sum += st.splitShare(m, p, dest)
	}
	return sum
}
