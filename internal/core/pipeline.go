package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rackjoin/internal/rdma"
	"rackjoin/internal/trace"
)

// eopMarker is the payload of the per-sender end-of-partition control
// message of the one-sided transports: the receiver cannot observe
// remote WRITEs landing, so each sender announces "all my data for every
// partition is placed" once its threads have drained their send queues.
// (Sender-side completion implies remote placement — see rdma.executeWrite.)
const eopMarker = byte(0xE0)

// pipeline tracks per-partition receive completion during the pipelined
// network pass and injects partition-ready processPartition tasks into
// the work-stealing scheduler while the pass is still draining.
//
// A resident partition p is ready when (a) every remote byte addressed
// to it has landed — the exchanged machine histograms give the exact
// expected count, so landing is detected by counting (channel semantics,
// TCP) or by per-sender end-of-partition notifications (one-sided
// exact-placement transports) — and (b) this machine's own scatter into
// the local slab share has finished. Readiness injection is deduplicated
// with a per-partition CAS, since the last-byte path and the local-done
// sweep race benignly.
type pipeline struct {
	st    *machineState
	sched *scheduler

	// remaining[p] counts outstanding remote bytes of resident partition
	// p; tracked[p] marks partitions that own a reserved scheduler slot.
	remaining []atomic.Int64
	injected  []atomic.Bool
	tracked   []bool

	// taskFor builds the processPartition task injected on readiness.
	taskFor func(p int) schedTask

	// scatterLeft counts partition threads still scattering; localDone
	// flips when the local slab shares are fully written.
	scatterLeft atomic.Int32
	localDone   atomic.Bool

	// drainsLeft counts partition threads that have not yet drained their
	// send pools; eopLeft counts peers whose end-of-partition message is
	// still outstanding (EOP transports only).
	drainsLeft atomic.Int32
	eopLeft    atomic.Int32

	// Network-pass completion: both the local drains and the remote
	// arrivals are done. The winner of the CAS stamps netDoneAt, records
	// the phase and closes the trace span.
	drainsDone atomic.Bool
	remoteDone atomic.Bool
	netDone    atomic.Bool
	netStart   time.Time
	netDoneAt  time.Time
	netSpanEnd func(int64)

	// firstAt is when the first partition-ready task started executing;
	// netDoneAt − firstAt is the overlap the pipeline reclaimed. The
	// first task also opens the causal local+build-probe phase span:
	// bpSpanID parents the per-partition task spans (atomic — tasks read
	// it concurrently), bpEnd closes it after the last worker drains.
	firstOnce sync.Once
	firstAt   time.Time
	bpSpanID  atomic.Uint64
	bpEnd     func(int64)

	// workers are the per-core join workers, created before any pass
	// goroutine starts. netWorker is the network thread's worker (nil
	// without a network thread): its receive loop executes small
	// partition tasks whenever the completion queue runs dry, and the
	// scatter threads run any ready task while their send pools drain —
	// so a bandwidth-bound pass turns idle waiting into join work.
	workers   []*joinWorker
	netWorker *joinWorker
	// smallCut bounds the tasks aimed at the network thread: while it
	// joins instead of re-posting receives, each sender can park at most
	// a ring of buffers, so only partitions near that scale may hold it.
	smallCut int64
}

// pipelineUsesEOP reports whether the transport needs explicit
// end-of-partition notifications: exact-placement WRITEs bypass the
// receiver's CPU, so arrival cannot be counted there.
func (st *machineState) pipelineUsesEOP() bool {
	return st.nm > 1 &&
		(st.cfg.Transport == TransportOneSided || st.cfg.Transport == TransportOneSidedAtomic)
}

func (st *machineState) newPipeline() *pipeline {
	pl := &pipeline{
		st:        st,
		sched:     newScheduler(st.m.Cores),
		remaining: make([]atomic.Int64, st.np),
		injected:  make([]atomic.Bool, st.np),
		tracked:   make([]bool, st.np),
	}
	pl.scatterLeft.Store(int32(st.partThreads))
	pl.drainsLeft.Store(int32(st.partThreads))
	pl.smallCut = int64(recvRingSlots) * int64(st.cfg.BufferSize)
	w := int64(st.width)
	reserved := 0
	for _, p := range st.resident {
		if st.globalR[p] == 0 && st.globalS[p] == 0 {
			continue
		}
		pl.tracked[p] = true
		reserved++
		pl.remaining[p].Store(st.expectedRemotePartitionTuples(p) * w)
	}
	pl.sched.reserve(reserved)
	if st.pipelineUsesEOP() {
		pl.eopLeft.Store(int32(st.nm - 1))
	} else if st.nm == 1 || !st.cfg.usesNetworkThread() {
		// No remote arrivals to wait for (single machine); channel
		// transports flip this when their receive loop returns.
		pl.remoteDone.Store(true)
	}
	return pl
}

// expectedRemotePartitionTuples is the per-partition refinement of
// expectedRemoteBytes: how many tuples of resident partition p arrive
// from remote machines. Broadcast partitions receive only inner tuples
// (outer tuples never leave their machine).
func (st *machineState) expectedRemotePartitionTuples(p int) int64 {
	var tuples int64
	for m := 0; m < st.nm; m++ {
		if m == st.m.ID {
			continue
		}
		tuples += int64(st.allHistR[m][p])
		if st.owner[p] == st.m.ID {
			tuples += int64(st.allHistS[m][p])
		} else if st.isSplit(p) {
			tuples += st.splitShare(m, p, st.m.ID)
		}
	}
	return tuples
}

// credit records the landing of bytes remote bytes of partition p. Called
// by the receive loops per buffer, and by the EOP watchers per sender.
// gate is the trace span of the arrival that delivered the bytes (0 when
// untraced): the last one becomes the causal predecessor of readiness.
func (pl *pipeline) credit(p int, bytes int64, gate trace.SpanID) {
	if bytes == 0 || !pl.tracked[p] {
		return
	}
	if pl.remaining[p].Add(-bytes) == 0 && pl.localDone.Load() {
		pl.tryInject(p, gate)
	}
}

// tryInject injects partition p's task exactly once. Small partitions
// are aimed at the network thread's deque — the one worker guaranteed to
// have idle gaps mid-pass — while everything bigger goes to the shared
// injector for the scatter threads' drain windows (and, after the pass,
// any worker); either way the task stays stealable. gate is the causal
// predecessor of readiness (the last arrival that completed p, or 0 from
// the local-done sweep).
func (pl *pipeline) tryInject(p int, gate trace.SpanID) {
	st := pl.st
	if !pl.injected[p].CompareAndSwap(false, true) {
		st.flight("ready", "dup (lost CAS)", p, 0)
		return
	}
	st.flight("ready", "won CAS, injecting", p, 0)
	if tr := st.cfg.Trace; tr != nil {
		// Readiness edge: gate → ready instant → (FlowOut consumed by the
		// task span when a worker picks the partition up). The gap between
		// ready and task start is the scheduler latency on the critical
		// path.
		ready := tr.Instant(st.m.ID, "ready", st.readyLabels[p], st.runSpan, 0)
		tr.FlowEdge(gate, ready, "ready")
		tr.FlowOutKey(ready, "ready", readyFlowKey(st.m.ID, p))
	}
	t := pl.taskFor(p)
	if w := pl.netWorker; w != nil &&
		(int64(st.globalR[p])+int64(st.globalS[p]))*int64(st.width) <= pl.smallCut {
		pl.sched.injectAt(w.id, t)
		return
	}
	pl.sched.inject(t)
}

// scatterDone is called by each partition thread after it finished
// scattering both relations: once all threads are through, the local slab
// shares are complete and every fully-received partition becomes ready.
func (pl *pipeline) scatterDone() {
	if pl.scatterLeft.Add(-1) != 0 {
		return
	}
	pl.localDone.Store(true)
	for _, p := range pl.st.resident {
		if pl.tracked[p] && pl.remaining[p].Load() == 0 {
			pl.tryInject(p, 0)
		}
	}
}

// threadDrained is called by each partition thread after its send pool
// drained. The last thread announces end-of-partition to every peer on
// EOP transports (its drained CQ guarantees the remote placement of all
// this machine's WRITEs) and marks the local half of the pass complete.
func (pl *pipeline) threadDrained() error {
	if pl.drainsLeft.Add(-1) != 0 {
		return nil
	}
	st := pl.st
	if st.pipelineUsesEOP() {
		for peer := 0; peer < st.nm; peer++ {
			if peer == st.m.ID {
				continue
			}
			if tr := st.cfg.Trace; tr != nil {
				// One-sided WRITEs leave no receiver-side completions, so
				// the EOP notification carries the cross-machine causality
				// of this transport.
				id := tr.Instant(st.m.ID, "msg", fmt.Sprintf("eop to m%d", peer), st.netSpan, 1)
				tr.FlowOutKey(id, "eop", eopFlowKey(st.m.ID, peer))
			}
			st.flight("eop", fmt.Sprintf("sent to m%d", peer), 0, 0)
			if err := st.m.CtlSend(peer, []byte{eopMarker}); err != nil {
				return fmt.Errorf("end-of-partition to machine %d: %w", peer, err)
			}
		}
	}
	pl.drainsDone.Store(true)
	pl.maybeNetDone()
	return nil
}

// remoteArrivalsDone marks the remote half of the pass complete: the
// receive loop returned, or the last peer's EOP was processed.
func (pl *pipeline) remoteArrivalsDone() {
	pl.remoteDone.Store(true)
	pl.maybeNetDone()
}

// maybeNetDone stamps the end of the network partitioning pass when both
// halves completed. Exactly one caller wins the CAS; it records the
// phase at the instant it actually ended, mid-overlap, so live observers
// see the same breakdown the Result reports.
func (pl *pipeline) maybeNetDone() {
	if !pl.drainsDone.Load() || !pl.remoteDone.Load() || !pl.netDone.CompareAndSwap(false, true) {
		return
	}
	pl.netDoneAt = time.Now()
	d := pl.netDoneAt.Sub(pl.netStart)
	pl.st.phases.NetworkPartition = d
	pl.st.phaseDone("network_partition", d)
	if pl.netSpanEnd != nil {
		pl.netSpanEnd(int64(pl.st.tcpBytes.Load()))
	}
}

// noteTaskStart records the start of the first partition-ready task and
// opens the causal local+build-probe phase span at that instant, so the
// span covers exactly the window join work actually ran in (including the
// overlap with the still-draining network pass).
func (pl *pipeline) noteTaskStart() {
	pl.firstOnce.Do(func() {
		pl.firstAt = time.Now()
		if tr := pl.st.cfg.Trace; tr != nil {
			id, end := tr.Begin(pl.st.m.ID, "phase", "local+build-probe", pl.st.runSpan)
			pl.bpSpanID.Store(uint64(id))
			pl.bpEnd = end
		}
	})
}

// bpSpan returns the local+build-probe phase span, 0 before the first
// task (or untraced).
func (pl *pipeline) bpSpan() trace.SpanID { return trace.SpanID(pl.bpSpanID.Load()) }

// runReadyTask executes one task from w's own deque without blocking:
// the network thread calls it between completion-queue polls. Only the
// own deque is tapped — it holds exactly the small tasks tryInject
// aimed here (plus their skew-split children) — so the thread never
// picks up a big partition that would stall the receive rings.
func (pl *pipeline) runReadyTask(w *joinWorker) bool {
	if pl.sched.aborted.Load() {
		return false
	}
	t, ok := pl.sched.deques[w.id].popTail()
	if !ok {
		return false
	}
	pl.noteTaskStart()
	t(w)
	pl.sched.done()
	return true
}

// runAnyTask executes one ready task from any source without parking:
// the scatter threads call it while their send pools drain. They hold
// no receive rings, so even the biggest partition is safe to run here.
func (pl *pipeline) runAnyTask(w *joinWorker) bool {
	t, ok := pl.sched.tryNext(w.id)
	if !ok {
		return false
	}
	pl.noteTaskStart()
	t(w)
	pl.sched.done()
	return true
}

// pollIdleMin/Max bound the exponential backoff of the pipelined poll
// loops when they find neither completions nor runnable tasks. The cap
// stays well under one buffer's transfer time on any plausible fabric,
// and low enough that idle polling cannot crowd out the other simulated
// machines when the host has fewer cores than the rack.
const (
	pollIdleMin = 5 * time.Microsecond
	pollIdleMax = 320 * time.Microsecond
)

// drainInterleaved recycles a scatter thread's outstanding sends like
// bufferPool.drain, but spends every empty completion poll on ready join
// work instead of blocking — the drain of a bandwidth-bound pass is
// exactly where the partition threads would otherwise idle.
func (pl *pipeline) drainInterleaved(pool *bufferPool, w *joinWorker) error {
	var polled [1]rdma.Completion
	idle := pollIdleMin
	for pool.outstanding > 0 {
		if pool.cq.Poll(polled[:]) == 0 {
			if pl.runAnyTask(w) {
				idle = pollIdleMin
				continue
			}
			time.Sleep(idle)
			if idle < pollIdleMax {
				idle *= 2
				if idle >= pollIdleMax {
					pl.st.flight("backoff", "drain at max poll backoff", 0, 0)
				}
			}
			continue
		}
		idle = pollIdleMin
		c := polled[0]
		if err := c.Err(); err != nil {
			return err
		}
		pool.recycle(int32(c.WRID))
	}
	return nil
}

// eopWatcher consumes peer's end-of-partition message and credits every
// resident partition with that sender's histogram-known contribution.
// Per-pair control channels are FIFO, so the EOP is the first message
// from peer in this window; the final barrier's traffic comes after.
func (st *machineState) eopWatcher(pl *pipeline, peer int) error {
	msg, err := st.m.CtlRecv(peer)
	if err != nil {
		return fmt.Errorf("end-of-partition from machine %d: %w", peer, err)
	}
	if len(msg) != 1 || msg[0] != eopMarker {
		return fmt.Errorf("end-of-partition from machine %d: unexpected payload %x", peer, msg)
	}
	var gate trace.SpanID
	if tr := st.cfg.Trace; tr != nil {
		gate = tr.Instant(st.m.ID, "msg", fmt.Sprintf("eop from m%d", peer), st.runSpan, 1)
		tr.FlowInKey(gate, "eop", eopFlowKey(peer, st.m.ID))
	}
	st.flight("eop", fmt.Sprintf("recv from m%d", peer), 0, 0)
	w := int64(st.width)
	for _, p := range st.resident {
		tuples := int64(st.allHistR[peer][p])
		if st.owner[p] == st.m.ID {
			tuples += int64(st.allHistS[peer][p])
		} else if st.isSplit(p) {
			tuples += st.splitShare(peer, p, st.m.ID)
		}
		pl.credit(p, tuples*w, gate)
	}
	if pl.eopLeft.Add(-1) == 0 {
		pl.remoteArrivalsDone()
	}
	return nil
}

// runPipelined executes the network partitioning pass and the fused
// local-partition/build-probe phase as one overlapped window: partition
// threads scatter, drain and then convert into scheduler workers; the
// network thread (channel semantics) does the same after its receive
// loop; completed partitions are injected as they become ready instead
// of after a global barrier. Replaces the barrier between phases 2 and
// 3/4 of run().
func (st *machineState) runPipelined() error {
	pl := st.newPipeline()
	pl.netStart = time.Now()
	st.flight("phase", "network partition start (pipelined)", 0, 0)
	var endNet func(int64)
	st.netSpan, endNet = st.begin("phase", "network partition", st.runSpan)
	pl.netSpanEnd = endNet
	st.pipe = pl
	defer func() { st.pipe = nil }()

	sched := pl.sched
	sched.flight, sched.machine = st.cfg.Flight, st.m.ID
	workers := make([]*joinWorker, st.m.Cores)
	pl.taskFor = func(p int) schedTask {
		return func(w *joinWorker) {
			if tr := st.cfg.Trace; tr != nil {
				// Task span under the local+build-probe phase (open by the
				// time any task body runs — noteTaskStart precedes it);
				// the flow-in binds it to the readiness instant, making
				// the scheduler latency visible as a "ready" link gap.
				id, end := tr.Begin(st.m.ID, "task", fmt.Sprintf("join p%d", p), pl.bpSpan())
				tr.FlowInKey(id, "ready", readyFlowKey(st.m.ID, p))
				w.processPartition(p)
				end((st.globalR[p] + st.globalS[p]) * int64(st.width))
				return
			}
			w.processPartition(p)
		}
	}

	var watchWG sync.WaitGroup
	watchErrs := make([]error, st.nm)
	if st.pipelineUsesEOP() {
		for peer := 0; peer < st.nm; peer++ {
			if peer == st.m.ID {
				continue
			}
			watchWG.Add(1)
			go func(peer int) {
				defer watchWG.Done()
				if err := st.eopWatcher(pl, peer); err != nil {
					watchErrs[peer] = err
					sched.abort()
				}
			}(peer)
		}
	}

	err := st.runResultPlane(func(shippers []*resultShipper) error {
		// Workers are created up front so the pass goroutines can push
		// join work through them mid-pass: the network thread between
		// completion polls, the scatter threads while draining.
		for id := 0; id < st.m.Cores; id++ {
			workers[id] = st.newJoinWorker(id, sched, shippers)
		}
		pl.workers = workers
		if st.nm > 1 && st.cfg.usesNetworkThread() {
			pl.netWorker = workers[st.partThreads]
		}
		errs := make([]error, st.m.Cores+1)
		var wg sync.WaitGroup
		spawn := func(id int, pass func() error) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if pass != nil {
					if err := pass(); err != nil {
						errs[id] = err
						sched.abort()
						return
					}
				}
				st.workerLoop(workers[id])
			}()
		}
		for t := 0; t < st.partThreads; t++ {
			t := t
			spawn(t, func() error { return st.partitionThread(t) })
		}
		if st.nm > 1 && st.cfg.usesNetworkThread() {
			spawn(st.partThreads, func() error {
				var err error
				if st.cfg.Transport == TransportTCP {
					err = st.tcpReceiveLoop()
				} else {
					err = st.receiveLoop()
				}
				if err == nil {
					pl.remoteArrivalsDone()
				}
				return err
			})
		}
		// Any cores beyond the pass threads (single-machine runs have
		// none; future asymmetric layouts might) join as plain workers.
		for id := st.partThreads; id < st.m.Cores; id++ {
			if id == st.partThreads && st.nm > 1 && st.cfg.usesNetworkThread() {
				continue
			}
			spawn(id, nil)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		for _, w := range workers {
			if w != nil && w.err != nil {
				return w.err
			}
		}
		return nil
	})
	watchWG.Wait()
	if err == nil {
		for _, werr := range watchErrs {
			if werr != nil {
				err = werr
				break
			}
		}
	}
	if err != nil {
		return fmt.Errorf("pipelined pass: %w", err)
	}
	joinEnd := time.Now()

	for _, p := range st.pools {
		if p != nil {
			st.poolStalls += p.stalls
		}
	}
	maxLocal, maxBP := st.collectWorkers(workers)
	st.exportSchedulerMetrics(sched)

	// Critical-path phase attribution: the network pass spans netStart →
	// netDoneAt (stamped by maybeNetDone); the remaining wall clock is the
	// exposed local+build-probe tail, apportioned by the measured
	// per-worker maxima. The overlapped window — join work executed while
	// the pass was still draining — is reported separately, so the two
	// views always reconcile: busy local+bp = exposed tail + overlap.
	if pl.firstAt.IsZero() {
		pl.firstAt = pl.netDoneAt
	}
	exposed := joinEnd.Sub(pl.netDoneAt)
	if exposed < 0 {
		exposed = 0
	}
	if maxLocal+maxBP > 0 {
		st.phases.LocalPartition = time.Duration(float64(exposed) * float64(maxLocal) / float64(maxLocal+maxBP))
		st.phases.BuildProbe = exposed - st.phases.LocalPartition
	}
	overlap := pl.netDoneAt.Sub(pl.firstAt)
	if overlap < 0 {
		overlap = 0
	}
	st.overlap = overlap
	st.met.Gauge("pipeline_overlap_seconds").Set(overlap.Seconds())
	if pl.bpEnd != nil {
		// Close the causal local+build-probe span opened by the first
		// task; it spans firstAt → now, covering the overlap window.
		pl.bpEnd(int64(st.slabR.Size() + st.slabS.Size()))
	}
	st.phaseDone("local_partition", st.phases.LocalPartition)
	st.phaseDone("build_probe", st.phases.BuildProbe)
	return st.barrier("final")
}
