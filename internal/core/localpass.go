package core

import (
	"encoding/binary"
	"sync"
	"time"

	"rackjoin/internal/hashtable"
	"rackjoin/internal/metrics"
	"rackjoin/internal/radix"
	"rackjoin/internal/relation"
)

func le64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// joinWorker accumulates one worker core's results and per-phase time. Its
// id doubles as the worker's deque index in the scheduler.
type joinWorker struct {
	st       *machineState
	id       int
	sched    *scheduler
	shipper  *resultShipper     // remote result path (Section 4.3), may be nil
	pt       *radix.Partitioner // local-pass scatter kernels + scratch
	batch    hashtable.Batch    // batched-probe scratch
	err      error              // first shipping error, surfaced after the phase
	matches  uint64
	checksum uint64
	tLocal   time.Duration
	tBP      time.Duration
	results  []byte // materialisation scratch when ResultSink is set
}

func (st *machineState) newJoinWorker(id int, sched *scheduler, shippers []*resultShipper) *joinWorker {
	w := &joinWorker{st: st, id: id, sched: sched, pt: radix.NewPartitioner(st.cfg.Kernels)}
	if shippers != nil {
		w.shipper = shippers[id]
	}
	return w
}

// push queues a child task (a skew-split product) on this worker's own
// deque: LIFO pop keeps the split's cache lines hot, and idle peers steal
// from the head.
func (w *joinWorker) push(t schedTask) { w.sched.pushLocal(w.id, t) }

// workerLoop runs scheduler tasks until the phase drains (or aborts).
func (st *machineState) workerLoop(w *joinWorker) {
	for {
		task, ok := w.sched.next(w.id)
		if !ok {
			return
		}
		if st.pipe != nil {
			st.pipe.noteTaskStart()
		}
		task(w)
		w.sched.done()
	}
}

// collectWorkers folds the workers' results and kernel telemetry into the
// machine state and returns the per-worker phase-time maxima used to
// apportion the fused wall time.
func (st *machineState) collectWorkers(workers []*joinWorker) (maxLocal, maxBP time.Duration) {
	var bytesScalar, bytesWC, wcFlushes uint64
	for _, w := range workers {
		if w == nil {
			continue
		}
		st.matches += w.matches
		st.checksum += w.checksum
		bytesScalar += w.pt.BytesScalar
		bytesWC += w.pt.BytesWC
		wcFlushes += w.pt.Flushes
		if w.tLocal > maxLocal {
			maxLocal = w.tLocal
		}
		if w.tBP > maxBP {
			maxBP = w.tBP
		}
	}
	if bytesScalar > 0 {
		st.met.Counter("kernel_bytes_total",
			metrics.L("kernel", "scalar"), metrics.L("phase", "localpass")).Add(bytesScalar)
	}
	if bytesWC > 0 {
		st.met.Counter("kernel_bytes_total",
			metrics.L("kernel", "wc"), metrics.L("phase", "localpass")).Add(bytesWC)
	}
	if wcFlushes > 0 {
		st.met.Counter("kernel_wc_flushes_total", metrics.L("phase", "localpass")).Add(wcFlushes)
	}
	return maxLocal, maxBP
}

// exportSchedulerMetrics publishes the scheduler's counters through the
// registry so /metrics and the sampler pick them up.
func (st *machineState) exportSchedulerMetrics(s *scheduler) {
	st.met.Counter("scheduler_steals_total").Add(s.steals.Load())
	st.met.Counter("scheduler_injects_total").Add(s.injects.Load())
	if sp := s.spills.Load(); sp > 0 {
		st.met.Counter("scheduler_spills_total").Add(sp)
	}
	if ts := s.splits.Load(); ts > 0 {
		st.met.Counter("skew_task_splits_total").Add(ts)
		st.skewStats.TaskSplits += ts
	}
}

// localPassAndBuildProbe runs phases 3 and 4 in barrier mode: every
// resident partition is injected up front, then sub-partitioned to cache
// size and joined, with oversized tasks split across workers when skew
// handling is enabled. (Pipelined mode injects partitions as they complete
// instead — see runPipelined.)
func (st *machineState) localPassAndBuildProbe() error {
	sched := newScheduler(st.m.Cores)
	sched.flight, sched.machine = st.cfg.Flight, st.m.ID
	roots := 0
	for _, p := range st.resident {
		if st.globalR[p] == 0 && st.globalS[p] == 0 {
			continue
		}
		roots++
	}
	sched.reserve(roots)
	for _, p := range st.resident {
		p := p
		if st.globalR[p] == 0 && st.globalS[p] == 0 {
			continue
		}
		sched.inject(func(w *joinWorker) { w.processPartition(p) })
	}

	start := time.Now()
	workers := make([]*joinWorker, st.m.Cores)
	err := st.runResultPlane(func(shippers []*resultShipper) error {
		var wg sync.WaitGroup
		for i := range workers {
			workers[i] = st.newJoinWorker(i, sched, shippers)
			wg.Add(1)
			go func(w *joinWorker) {
				defer wg.Done()
				st.workerLoop(w)
			}(workers[i])
		}
		wg.Wait()
		for _, w := range workers {
			if w.err != nil {
				return w.err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	maxLocal, maxBP := st.collectWorkers(workers)
	st.exportSchedulerMetrics(sched)
	// Apportion the fused wall time by the measured per-worker maxima so
	// the breakdown matches the paper's per-phase reporting.
	if maxLocal+maxBP > 0 {
		st.phases.LocalPartition = time.Duration(float64(elapsed) * float64(maxLocal) / float64(maxLocal+maxBP))
		st.phases.BuildProbe = elapsed - st.phases.LocalPartition
	}
	return nil
}

// skewThreshold returns the build-probe task size above which the outer
// side is split (SkewSplitFactor × average tuples per final partition);
// 0 disables splitting.
func (st *machineState) skewThreshold() int {
	factor := st.cfg.SkewSplitFactor
	if factor <= 0 {
		if st.skewMode != SkewSplit {
			return 0
		}
		// The skew engine implies local splitting: default to the same 4×
		// ratio the health plane's hot_partition detector alarms on.
		factor = 4.0
	}
	var totalS int64
	for _, c := range st.globalS {
		totalS += c
	}
	finalParts := int64(st.np) << st.cfg.LocalBits
	avg := float64(totalS) / float64(finalParts)
	th := int(factor * avg)
	if th < 1 {
		th = 1
	}
	return th
}

// processPartition sub-partitions resident partition p by the local bit
// window and joins every sub-partition, splitting oversized ones.
func (w *joinWorker) processPartition(p int) {
	st := w.st
	self := st.m.ID
	sTuples := st.globalS[p]
	if st.broadcast[p] {
		// Work sharing: this machine probes only its local outer share
		// against the full replicated inner partition. Skew-split
		// partitions probe the dealt-in share instead — the shares are
		// disjoint across machines and the inner replicas complete, so
		// the union of all machines' probes is exactly the partition's
		// join with no duplicates.
		sTuples = int64(st.allHistS[self][p])
		if st.isSplit(p) {
			sTuples = st.splitRecvTotal(p, self)
		}
	}
	r := st.slabR.Slice(int(st.slabOffR[self][p]), int(st.slabOffR[self][p]+st.globalR[p]))
	s := st.slabS.Slice(int(st.slabOffS[self][p]), int(st.slabOffS[self][p]+sTuples))
	b1, b2 := st.cfg.NetworkBits, st.cfg.LocalBits
	threshold := st.skewThreshold()

	if b2 == 0 {
		w.buildProbe(r, s, threshold)
		return
	}

	// Local partitioning pass (Section 4.2.3): no network involvement.
	// The partitioner runs the configured scatter kernel and reuses its
	// staging scratch across this worker's partitions.
	start := time.Now()
	subR, bR := w.pt.Partition(r, b1, b2)
	subS, bS := w.pt.Partition(s, b1, b2)
	w.tLocal += time.Since(start)

	for q := 0; q < 1<<b2; q++ {
		w.buildProbe(radix.PartitionView(subR, bR, q), radix.PartitionView(subS, bS, q), threshold)
	}
}

// buildProbe joins one cache-sized partition pair. With skew handling
// enabled, an oversized outer side is split into range-probe subtasks
// sharing one hash table, and an oversized inner side into several smaller
// hash tables each probed with the full outer part (Section 4.3).
func (w *joinWorker) buildProbe(r, s *relation.Relation, threshold int) {
	if r.Len() == 0 || s.Len() == 0 {
		return
	}
	if threshold > 0 && r.Len() > threshold {
		// Inner-relation skew: split the build side into several hash
		// tables; every chunk is probed with the full outer part.
		for lo := 0; lo < r.Len(); lo += threshold {
			hi := lo + threshold
			if hi > r.Len() {
				hi = r.Len()
			}
			chunk := r.Slice(lo, hi)
			w.push(func(cw *joinWorker) { cw.buildProbe(chunk, s, 0) })
		}
		return
	}
	if threshold > 0 && s.Len() > 2*threshold {
		// Outer-relation skew: build once, split the probe range across
		// subtasks that share the read-only table. With the skew engine
		// on, the range is splittable mid-run instead of pre-chunked:
		// idle workers halve whatever remains, so a mis-estimated hot
		// range cannot strand one worker with the tail.
		start := time.Now()
		tbl := hashtable.Build(r)
		w.tBP += time.Since(start)
		if w.st.skewMode == SkewSplit {
			w.probeSplittable(tbl, s, 0, s.Len(), threshold)
			return
		}
		for lo := 0; lo < s.Len(); lo += threshold {
			hi := lo + threshold
			if hi > s.Len() {
				hi = s.Len()
			}
			lo, hi := lo, hi
			w.push(func(cw *joinWorker) { cw.probe(tbl, s, lo, hi) })
		}
		return
	}
	start := time.Now()
	tbl := hashtable.Build(r)
	w.tBP += time.Since(start)
	w.probe(tbl, s, 0, s.Len())
}

// probeSplittable probes [lo, hi) as a mid-run-splittable task: the range
// is advertised to the scheduler so idle workers can steal the top half
// while it runs, and the owner claims chunk-sized pieces off the bottom.
// Stolen halves are themselves splittable — a hot partition keeps
// shedding work for as long as anyone is idle.
func (w *joinWorker) probeSplittable(tbl *hashtable.Table, s *relation.Relation, lo, hi, chunk int) {
	rng := &splitRange{lo: lo, hi: hi}
	o := &splitOffer{
		rng: rng,
		spawn: func(lo, hi int) schedTask {
			return func(cw *joinWorker) { cw.probeSplittable(tbl, s, lo, hi, chunk) }
		},
	}
	w.sched.offer(o)
	for {
		clo, chi, ok := rng.claim(chunk)
		if !ok {
			break
		}
		w.probe(tbl, s, clo, chi)
	}
	w.sched.retract(o)
}

func (w *joinWorker) probe(tbl *hashtable.Table, s *relation.Relation, lo, hi int) {
	start := time.Now()
	batched := w.st.cfg.Kernels.BatchProbe(tbl.Len())
	if sink := w.st.cfg.ResultSink; sink != nil {
		var out []byte
		var m uint64
		if batched {
			out, m = tbl.MaterializeBatch(s, lo, hi, &w.batch, w.results[:0])
		} else {
			out, m = tbl.Materialize(s.Slice(lo, hi), w.results[:0])
		}
		w.matches += m
		for off := 0; off < len(out); off += hashtable.ResultWidth {
			w.checksum += le64(out[off:]) + le64(out[off+8:]) + le64(out[off+16:])
		}
		if len(out) > 0 {
			if w.shipper != nil {
				// Section 4.3: write results into RDMA-enabled output
				// buffers bound for the target machine.
				if err := w.shipper.emit(out); err != nil && w.err == nil {
					w.err = err
				}
			} else {
				records := make([]byte, len(out))
				copy(records, out)
				sink(w.st.m.ID, records)
			}
		}
		w.results = out[:0]
	} else {
		var m, c uint64
		if batched {
			m, c = tbl.ProbeRangeBatch(s, lo, hi, &w.batch)
		} else {
			m, c = tbl.ProbeRange(s, lo, hi)
		}
		w.matches += m
		w.checksum += c
	}
	w.tBP += time.Since(start)
}
