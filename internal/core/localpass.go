package core

import (
	"encoding/binary"
	"sync"
	"time"

	"rackjoin/internal/hashtable"
	"rackjoin/internal/metrics"
	"rackjoin/internal/radix"
	"rackjoin/internal/relation"
)

func le64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// taskQueue is the machine-local work queue of the fused local
// partitioning and build-probe phases. Tasks may push further tasks (the
// skew-splitting of Section 4.3), so completion is tracked with a pending
// counter rather than queue emptiness.
type taskQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tasks   []func(w *joinWorker)
	head    int // index of the next task; consumed slots are nil'd
	pending int
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *taskQueue) push(t func(w *joinWorker)) {
	q.mu.Lock()
	q.tasks = append(q.tasks, t)
	q.pending++
	q.mu.Unlock()
	q.cond.Signal()
}

// pop returns the next task, blocking while tasks may still be produced.
// ok is false once the queue is empty and no task is running.
//
// Consumption advances a head index instead of re-slicing (q.tasks[1:]
// would keep every consumed closure — and whatever relations it captured
// — reachable through the backing array for the rest of the phase).
func (q *taskQueue) pop() (func(w *joinWorker), bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.tasks) && q.pending > 0 {
		q.cond.Wait()
	}
	if q.head == len(q.tasks) {
		return nil, false
	}
	t := q.tasks[q.head]
	q.tasks[q.head] = nil
	q.head++
	if q.head == len(q.tasks) {
		// Fully drained: rewind so skew-split pushes reuse the array.
		q.tasks = q.tasks[:0]
		q.head = 0
	}
	return t, true
}

// done marks one popped task finished.
func (q *taskQueue) done() {
	q.mu.Lock()
	q.pending--
	wake := q.pending == 0
	q.mu.Unlock()
	if wake {
		q.cond.Broadcast()
	}
}

// joinWorker accumulates one worker core's results and per-phase time.
type joinWorker struct {
	st       *machineState
	shipper  *resultShipper     // remote result path (Section 4.3), may be nil
	pt       *radix.Partitioner // local-pass scatter kernels + scratch
	batch    hashtable.Batch    // batched-probe scratch
	err      error              // first shipping error, surfaced after the phase
	matches  uint64
	checksum uint64
	tLocal   time.Duration
	tBP      time.Duration
	results  []byte // materialisation scratch when ResultSink is set
}

// localPassAndBuildProbe runs phases 3 and 4: every owned partition is
// sub-partitioned to cache size and joined, with oversized tasks split
// across workers when skew handling is enabled.
func (st *machineState) localPassAndBuildProbe() error {
	queue := newTaskQueue()
	for _, p := range st.resident {
		p := p
		if st.globalR[p] == 0 && st.globalS[p] == 0 {
			continue
		}
		queue.push(func(w *joinWorker) { w.processPartition(queue, p) })
	}

	start := time.Now()
	workers := make([]*joinWorker, st.m.Cores)
	err := st.runResultPlane(func(shippers []*resultShipper) error {
		var wg sync.WaitGroup
		for i := range workers {
			workers[i] = &joinWorker{st: st, pt: radix.NewPartitioner(st.cfg.Kernels)}
			if shippers != nil {
				workers[i].shipper = shippers[i]
			}
			wg.Add(1)
			go func(w *joinWorker) {
				defer wg.Done()
				for {
					task, ok := queue.pop()
					if !ok {
						return
					}
					task(w)
					queue.done()
				}
				// Workers exit when the queue has fully drained.
			}(workers[i])
		}
		wg.Wait()
		for _, w := range workers {
			if w.err != nil {
				return w.err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	var maxLocal, maxBP time.Duration
	var bytesScalar, bytesWC, wcFlushes uint64
	for _, w := range workers {
		st.matches += w.matches
		st.checksum += w.checksum
		bytesScalar += w.pt.BytesScalar
		bytesWC += w.pt.BytesWC
		wcFlushes += w.pt.Flushes
		if w.tLocal > maxLocal {
			maxLocal = w.tLocal
		}
		if w.tBP > maxBP {
			maxBP = w.tBP
		}
	}
	if bytesScalar > 0 {
		st.met.Counter("kernel_bytes_total",
			metrics.L("kernel", "scalar"), metrics.L("phase", "localpass")).Add(bytesScalar)
	}
	if bytesWC > 0 {
		st.met.Counter("kernel_bytes_total",
			metrics.L("kernel", "wc"), metrics.L("phase", "localpass")).Add(bytesWC)
	}
	if wcFlushes > 0 {
		st.met.Counter("kernel_wc_flushes_total", metrics.L("phase", "localpass")).Add(wcFlushes)
	}
	// Apportion the fused wall time by the measured per-worker maxima so
	// the breakdown matches the paper's per-phase reporting.
	if maxLocal+maxBP > 0 {
		st.phases.LocalPartition = time.Duration(float64(elapsed) * float64(maxLocal) / float64(maxLocal+maxBP))
		st.phases.BuildProbe = elapsed - st.phases.LocalPartition
	}
	return nil
}

// skewThreshold returns the build-probe task size above which the outer
// side is split (SkewSplitFactor × average tuples per final partition);
// 0 disables splitting.
func (st *machineState) skewThreshold() int {
	if st.cfg.SkewSplitFactor <= 0 {
		return 0
	}
	var totalS int64
	for _, c := range st.globalS {
		totalS += c
	}
	finalParts := int64(st.np) << st.cfg.LocalBits
	avg := float64(totalS) / float64(finalParts)
	th := int(st.cfg.SkewSplitFactor * avg)
	if th < 1 {
		th = 1
	}
	return th
}

// processPartition sub-partitions owned partition p by the local bit
// window and joins every sub-partition, splitting oversized ones.
func (w *joinWorker) processPartition(queue *taskQueue, p int) {
	st := w.st
	self := st.m.ID
	sTuples := st.globalS[p]
	if st.broadcast[p] {
		// Work sharing: this machine probes only its local outer share
		// against the full replicated inner partition.
		sTuples = int64(st.allHistS[self][p])
	}
	r := st.slabR.Slice(int(st.slabOffR[self][p]), int(st.slabOffR[self][p]+st.globalR[p]))
	s := st.slabS.Slice(int(st.slabOffS[self][p]), int(st.slabOffS[self][p]+sTuples))
	b1, b2 := st.cfg.NetworkBits, st.cfg.LocalBits
	threshold := st.skewThreshold()

	if b2 == 0 {
		w.buildProbe(queue, r, s, threshold)
		return
	}

	// Local partitioning pass (Section 4.2.3): no network involvement.
	// The partitioner runs the configured scatter kernel and reuses its
	// staging scratch across this worker's partitions.
	start := time.Now()
	subR, bR := w.pt.Partition(r, b1, b2)
	subS, bS := w.pt.Partition(s, b1, b2)
	w.tLocal += time.Since(start)

	for q := 0; q < 1<<b2; q++ {
		w.buildProbe(queue, radix.PartitionView(subR, bR, q), radix.PartitionView(subS, bS, q), threshold)
	}
}

// buildProbe joins one cache-sized partition pair. With skew handling
// enabled, an oversized outer side is split into range-probe subtasks
// sharing one hash table, and an oversized inner side into several smaller
// hash tables each probed with the full outer part (Section 4.3).
func (w *joinWorker) buildProbe(queue *taskQueue, r, s *relation.Relation, threshold int) {
	if r.Len() == 0 || s.Len() == 0 {
		return
	}
	if threshold > 0 && r.Len() > threshold {
		// Inner-relation skew: split the build side into several hash
		// tables; every chunk is probed with the full outer part.
		for lo := 0; lo < r.Len(); lo += threshold {
			hi := lo + threshold
			if hi > r.Len() {
				hi = r.Len()
			}
			chunk := r.Slice(lo, hi)
			queue.push(func(cw *joinWorker) { cw.buildProbe(queue, chunk, s, 0) })
		}
		return
	}
	if threshold > 0 && s.Len() > 2*threshold {
		// Outer-relation skew: build once, split the probe range across
		// subtasks that share the read-only table.
		start := time.Now()
		tbl := hashtable.Build(r)
		w.tBP += time.Since(start)
		for lo := 0; lo < s.Len(); lo += threshold {
			hi := lo + threshold
			if hi > s.Len() {
				hi = s.Len()
			}
			lo, hi := lo, hi
			queue.push(func(cw *joinWorker) { cw.probe(tbl, s, lo, hi) })
		}
		return
	}
	start := time.Now()
	tbl := hashtable.Build(r)
	w.tBP += time.Since(start)
	w.probe(tbl, s, 0, s.Len())
}

func (w *joinWorker) probe(tbl *hashtable.Table, s *relation.Relation, lo, hi int) {
	start := time.Now()
	batched := w.st.cfg.Kernels.BatchProbe(tbl.Len())
	if sink := w.st.cfg.ResultSink; sink != nil {
		var out []byte
		var m uint64
		if batched {
			out, m = tbl.MaterializeBatch(s, lo, hi, &w.batch, w.results[:0])
		} else {
			out, m = tbl.Materialize(s.Slice(lo, hi), w.results[:0])
		}
		w.matches += m
		for off := 0; off < len(out); off += hashtable.ResultWidth {
			w.checksum += le64(out[off:]) + le64(out[off+8:]) + le64(out[off+16:])
		}
		if len(out) > 0 {
			if w.shipper != nil {
				// Section 4.3: write results into RDMA-enabled output
				// buffers bound for the target machine.
				if err := w.shipper.emit(out); err != nil && w.err == nil {
					w.err = err
				}
			} else {
				records := make([]byte, len(out))
				copy(records, out)
				sink(w.st.m.ID, records)
			}
		}
		w.results = out[:0]
	} else {
		var m, c uint64
		if batched {
			m, c = tbl.ProbeRangeBatch(s, lo, hi, &w.batch)
		} else {
			m, c = tbl.ProbeRange(s, lo, hi)
		}
		w.matches += m
		w.checksum += c
	}
	w.tBP += time.Since(start)
}
