package core

import (
	"encoding/binary"
	"sync"
	"time"

	"rackjoin/internal/hashtable"
	"rackjoin/internal/radix"
	"rackjoin/internal/relation"
)

func le64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// taskQueue is the machine-local work queue of the fused local
// partitioning and build-probe phases. Tasks may push further tasks (the
// skew-splitting of Section 4.3), so completion is tracked with a pending
// counter rather than queue emptiness.
type taskQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tasks   []func(w *joinWorker)
	pending int
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *taskQueue) push(t func(w *joinWorker)) {
	q.mu.Lock()
	q.tasks = append(q.tasks, t)
	q.pending++
	q.mu.Unlock()
	q.cond.Signal()
}

// pop returns the next task, blocking while tasks may still be produced.
// ok is false once the queue is empty and no task is running.
func (q *taskQueue) pop() (func(w *joinWorker), bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.tasks) == 0 && q.pending > 0 {
		q.cond.Wait()
	}
	if len(q.tasks) == 0 {
		return nil, false
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	return t, true
}

// done marks one popped task finished.
func (q *taskQueue) done() {
	q.mu.Lock()
	q.pending--
	wake := q.pending == 0
	q.mu.Unlock()
	if wake {
		q.cond.Broadcast()
	}
}

// joinWorker accumulates one worker core's results and per-phase time.
type joinWorker struct {
	st       *machineState
	shipper  *resultShipper // remote result path (Section 4.3), may be nil
	err      error          // first shipping error, surfaced after the phase
	matches  uint64
	checksum uint64
	tLocal   time.Duration
	tBP      time.Duration
	results  []byte // materialisation scratch when ResultSink is set
}

// localPassAndBuildProbe runs phases 3 and 4: every owned partition is
// sub-partitioned to cache size and joined, with oversized tasks split
// across workers when skew handling is enabled.
func (st *machineState) localPassAndBuildProbe() error {
	queue := newTaskQueue()
	for _, p := range st.resident {
		p := p
		if st.globalR[p] == 0 && st.globalS[p] == 0 {
			continue
		}
		queue.push(func(w *joinWorker) { w.processPartition(queue, p) })
	}

	start := time.Now()
	workers := make([]*joinWorker, st.m.Cores)
	err := st.runResultPlane(func(shippers []*resultShipper) error {
		var wg sync.WaitGroup
		for i := range workers {
			workers[i] = &joinWorker{st: st}
			if shippers != nil {
				workers[i].shipper = shippers[i]
			}
			wg.Add(1)
			go func(w *joinWorker) {
				defer wg.Done()
				for {
					task, ok := queue.pop()
					if !ok {
						return
					}
					task(w)
					queue.done()
				}
				// Workers exit when the queue has fully drained.
			}(workers[i])
		}
		wg.Wait()
		for _, w := range workers {
			if w.err != nil {
				return w.err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	var maxLocal, maxBP time.Duration
	for _, w := range workers {
		st.matches += w.matches
		st.checksum += w.checksum
		if w.tLocal > maxLocal {
			maxLocal = w.tLocal
		}
		if w.tBP > maxBP {
			maxBP = w.tBP
		}
	}
	// Apportion the fused wall time by the measured per-worker maxima so
	// the breakdown matches the paper's per-phase reporting.
	if maxLocal+maxBP > 0 {
		st.phases.LocalPartition = time.Duration(float64(elapsed) * float64(maxLocal) / float64(maxLocal+maxBP))
		st.phases.BuildProbe = elapsed - st.phases.LocalPartition
	}
	return nil
}

// skewThreshold returns the build-probe task size above which the outer
// side is split (SkewSplitFactor × average tuples per final partition);
// 0 disables splitting.
func (st *machineState) skewThreshold() int {
	if st.cfg.SkewSplitFactor <= 0 {
		return 0
	}
	var totalS int64
	for _, c := range st.globalS {
		totalS += c
	}
	finalParts := int64(st.np) << st.cfg.LocalBits
	avg := float64(totalS) / float64(finalParts)
	th := int(st.cfg.SkewSplitFactor * avg)
	if th < 1 {
		th = 1
	}
	return th
}

// processPartition sub-partitions owned partition p by the local bit
// window and joins every sub-partition, splitting oversized ones.
func (w *joinWorker) processPartition(queue *taskQueue, p int) {
	st := w.st
	self := st.m.ID
	sTuples := st.globalS[p]
	if st.broadcast[p] {
		// Work sharing: this machine probes only its local outer share
		// against the full replicated inner partition.
		sTuples = int64(st.allHistS[self][p])
	}
	r := st.slabR.Slice(int(st.slabOffR[self][p]), int(st.slabOffR[self][p]+st.globalR[p]))
	s := st.slabS.Slice(int(st.slabOffS[self][p]), int(st.slabOffS[self][p]+sTuples))
	b1, b2 := st.cfg.NetworkBits, st.cfg.LocalBits
	threshold := st.skewThreshold()

	if b2 == 0 {
		w.buildProbe(queue, r, s, threshold)
		return
	}

	// Local partitioning pass (Section 4.2.3): no network involvement.
	start := time.Now()
	hr := radix.Histogram(r, b1, b2)
	curR, _ := radix.PrefixSum(hr)
	subR := relation.New(r.Width(), r.Len())
	radix.Scatter(r, subR, curR, b1, b2)
	hs := radix.Histogram(s, b1, b2)
	curS, _ := radix.PrefixSum(hs)
	subS := relation.New(s.Width(), s.Len())
	radix.Scatter(s, subS, curS, b1, b2)
	bR, bS := radix.Bounds(hr), radix.Bounds(hs)
	w.tLocal += time.Since(start)

	for q := 0; q < 1<<b2; q++ {
		w.buildProbe(queue, radix.PartitionView(subR, bR, q), radix.PartitionView(subS, bS, q), threshold)
	}
}

// buildProbe joins one cache-sized partition pair. With skew handling
// enabled, an oversized outer side is split into range-probe subtasks
// sharing one hash table, and an oversized inner side into several smaller
// hash tables each probed with the full outer part (Section 4.3).
func (w *joinWorker) buildProbe(queue *taskQueue, r, s *relation.Relation, threshold int) {
	if r.Len() == 0 || s.Len() == 0 {
		return
	}
	if threshold > 0 && r.Len() > threshold {
		// Inner-relation skew: split the build side into several hash
		// tables; every chunk is probed with the full outer part.
		for lo := 0; lo < r.Len(); lo += threshold {
			hi := lo + threshold
			if hi > r.Len() {
				hi = r.Len()
			}
			chunk := r.Slice(lo, hi)
			queue.push(func(cw *joinWorker) { cw.buildProbe(queue, chunk, s, 0) })
		}
		return
	}
	if threshold > 0 && s.Len() > 2*threshold {
		// Outer-relation skew: build once, split the probe range across
		// subtasks that share the read-only table.
		start := time.Now()
		tbl := hashtable.Build(r)
		w.tBP += time.Since(start)
		for lo := 0; lo < s.Len(); lo += threshold {
			hi := lo + threshold
			if hi > s.Len() {
				hi = s.Len()
			}
			lo, hi := lo, hi
			queue.push(func(cw *joinWorker) { cw.probe(tbl, s, lo, hi) })
		}
		return
	}
	start := time.Now()
	tbl := hashtable.Build(r)
	w.tBP += time.Since(start)
	w.probe(tbl, s, 0, s.Len())
}

func (w *joinWorker) probe(tbl *hashtable.Table, s *relation.Relation, lo, hi int) {
	start := time.Now()
	if sink := w.st.cfg.ResultSink; sink != nil {
		out, m := tbl.Materialize(s.Slice(lo, hi), w.results[:0])
		w.matches += m
		for off := 0; off < len(out); off += hashtable.ResultWidth {
			w.checksum += le64(out[off:]) + le64(out[off+8:]) + le64(out[off+16:])
		}
		if len(out) > 0 {
			if w.shipper != nil {
				// Section 4.3: write results into RDMA-enabled output
				// buffers bound for the target machine.
				if err := w.shipper.emit(out); err != nil && w.err == nil {
					w.err = err
				}
			} else {
				records := make([]byte, len(out))
				copy(records, out)
				sink(w.st.m.ID, records)
			}
		}
		w.results = out[:0]
	} else {
		m, c := tbl.ProbeRange(s, lo, hi)
		w.matches += m
		w.checksum += c
	}
	w.tBP += time.Since(start)
}
