package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rackjoin/internal/obsv"
)

// schedTask is one unit of machine-local join work: a partition to
// process, a skew-split build-probe child, or a range-probe subtask.
type schedTask = func(w *joinWorker)

// dequeCap bounds each worker's local deque. Skew splitting can fan one
// task out into hundreds of children; overflow spills to the shared
// injector instead of growing the ring, so a worker's footprint stays
// fixed and spilled children become visible to idle workers immediately.
const dequeCap = 256

// wsDeque is one worker's bounded task deque. The owner pushes and pops
// at the tail (LIFO — a skew-split child reuses the cache lines its
// parent just touched); thieves take from the head (FIFO — they get the
// oldest, typically largest, task). A plain mutex per deque keeps the
// memory model obvious; contention is sharded across workers and the
// common pushLocal/popTail pair never touches another worker's lock.
type wsDeque struct {
	mu   sync.Mutex
	buf  [dequeCap]schedTask
	head int // next steal slot
	tail int // next push slot
}

func (d *wsDeque) push(t schedTask) bool {
	d.mu.Lock()
	if d.tail-d.head == dequeCap {
		d.mu.Unlock()
		return false
	}
	d.buf[d.tail%dequeCap] = t
	d.tail++
	d.mu.Unlock()
	return true
}

func (d *wsDeque) popTail() (schedTask, bool) {
	d.mu.Lock()
	if d.tail == d.head {
		d.mu.Unlock()
		return nil, false
	}
	d.tail--
	t := d.buf[d.tail%dequeCap]
	d.buf[d.tail%dequeCap] = nil
	d.mu.Unlock()
	return t, true
}

func (d *wsDeque) stealHead() (schedTask, bool) {
	d.mu.Lock()
	if d.tail == d.head {
		d.mu.Unlock()
		return nil, false
	}
	t := d.buf[d.head%dequeCap]
	d.buf[d.head%dequeCap] = nil
	d.head++
	d.mu.Unlock()
	return t, true
}

// scheduler is the sharded work-stealing scheduler of the fused
// local-partition/build-probe phase and the pipelined overlap window.
//
// Sourcing order per worker: own deque (LIFO), then the shared injector
// (partition-ready events and spilled children), then randomized stealing
// from peers. Termination is by pending count, not queue emptiness: tasks
// may push further tasks, and the pipeline injects partitions that are
// not queued anywhere yet — reserve() pre-charges those so no worker can
// exit while a future injection is still owed.
type scheduler struct {
	deques []wsDeque
	rng    []uint64 // per-worker xorshift state (steal victim order)

	injectMu   sync.Mutex
	injectQ    []schedTask
	injectHead int

	// pending counts queued tasks plus reserved future injections.
	pending atomic.Int64
	// aborted short-circuits next() when a worker hit a fatal error.
	aborted atomic.Bool

	// sleepers gates the wake() fast path: pushers skip the park lock
	// entirely while every worker is running.
	sleepers atomic.Int32
	parkMu   sync.Mutex
	parkCond *sync.Cond

	steals  atomic.Uint64
	injects atomic.Uint64
	spills  atomic.Uint64
	splits  atomic.Uint64

	// offers advertises the splittable ranges of currently-running tasks
	// (skew engine): an idle worker that finds nothing to steal can take
	// half of a running hot-partition probe instead of parking.
	offerMu sync.Mutex
	offers  []*splitOffer

	// flight/machine mirror steal, inject and spill events into the
	// flight recorder when one is mounted (flight nil otherwise).
	flight  *obsv.FlightRecorder
	machine int
}

func newScheduler(workers int) *scheduler {
	s := &scheduler{
		deques: make([]wsDeque, workers),
		rng:    make([]uint64, workers),
	}
	for i := range s.rng {
		s.rng[i] = uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	}
	s.parkCond = sync.NewCond(&s.parkMu)
	return s
}

// reserve pre-charges the pending count with n future inject() calls.
// Must complete before any worker starts when injections arrive from
// outside the worker set (the pipeline's partition-ready events).
func (s *scheduler) reserve(n int) { s.pending.Add(int64(n)) }

// inject queues a reserved task on the shared injector. Each call
// consumes one reserve() slot; the caller guarantees it never injects
// more than it reserved.
func (s *scheduler) inject(t schedTask) {
	s.injects.Add(1)
	if s.flight != nil {
		s.flight.Note(s.machine, "inject", "shared injector", 0, 0)
	}
	s.injectMu.Lock()
	s.injectQ = append(s.injectQ, t)
	s.injectMu.Unlock()
	s.wake()
}

// injectAt queues a reserved task on worker id's deque, spilling to the
// shared injector when it is full. Like inject it consumes one reserve()
// slot; the pipeline uses it to aim small partition tasks at the network
// thread, the one worker with idle gaps while the pass drains.
func (s *scheduler) injectAt(id int, t schedTask) {
	s.injects.Add(1)
	if s.flight != nil {
		s.flight.Note(s.machine, "inject", fmt.Sprintf("at worker %d", id), 0, 0)
	}
	if !s.deques[id].push(t) {
		s.spills.Add(1)
		if s.flight != nil {
			s.flight.Note(s.machine, "spill", fmt.Sprintf("worker %d deque full", id), 0, 0)
		}
		s.injectMu.Lock()
		s.injectQ = append(s.injectQ, t)
		s.injectMu.Unlock()
	}
	s.wake()
}

// cancelReserved returns unused reserve() slots, e.g. for partitions
// that turn out to be empty. Safe to call while workers run.
func (s *scheduler) cancelReserved(n int) {
	if n <= 0 {
		return
	}
	if s.pending.Add(int64(-n)) == 0 {
		s.wakeAll()
	}
}

// pushLocal queues a new task on worker id's own deque, spilling to the
// injector when the deque is full.
func (s *scheduler) pushLocal(id int, t schedTask) {
	s.pending.Add(1)
	if !s.deques[id].push(t) {
		s.spills.Add(1)
		s.injectMu.Lock()
		s.injectQ = append(s.injectQ, t)
		s.injectMu.Unlock()
	}
	s.wake()
}

// done marks one executed task finished.
func (s *scheduler) done() {
	if s.pending.Add(-1) == 0 {
		s.wakeAll()
	}
}

// abort releases every worker after a fatal error; queued tasks are
// dropped.
func (s *scheduler) abort() {
	if s.flight != nil {
		s.flight.Note(s.machine, "abort", "scheduler abort: dropping queued tasks", 0, 0)
	}
	s.aborted.Store(true)
	s.wakeAll()
}

func (s *scheduler) popInject() (schedTask, bool) {
	s.injectMu.Lock()
	if s.injectHead == len(s.injectQ) {
		s.injectMu.Unlock()
		return nil, false
	}
	t := s.injectQ[s.injectHead]
	s.injectQ[s.injectHead] = nil
	s.injectHead++
	if s.injectHead == len(s.injectQ) {
		s.injectQ = s.injectQ[:0]
		s.injectHead = 0
	}
	s.injectMu.Unlock()
	return t, true
}

// steal tries every peer deque once in a per-worker randomized order.
func (s *scheduler) steal(id int) (schedTask, bool) {
	n := len(s.deques)
	if n <= 1 {
		return nil, false
	}
	// xorshift64: cheap per-worker randomness with no shared state.
	x := s.rng[id]
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng[id] = x
	start := int(x % uint64(n))
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if v == id {
			continue
		}
		if t, ok := s.deques[v].stealHead(); ok {
			if s.flight != nil {
				s.flight.Note(s.machine, "steal", fmt.Sprintf("worker %d from %d", id, v), 0, 0)
			}
			return t, true
		}
	}
	return nil, false
}

// splitMinTuples is the smallest remaining probe range a thief may halve:
// below it the split bookkeeping outweighs the stolen work. A variable so
// the race torture test can force aggressive splitting on small inputs.
var splitMinTuples = 1 << 14

// splitRange is the mid-run-divisible tuple range of a splittable task.
// The owner claims chunks from the bottom; thieves halve the top. One
// mutex serialises both — the owner amortises it over a whole chunk.
type splitRange struct {
	mu     sync.Mutex
	lo, hi int
}

// claim takes up to n tuples off the bottom of the range for the owner.
func (r *splitRange) claim(n int) (lo, hi int, ok bool) {
	r.mu.Lock()
	if r.lo >= r.hi {
		r.mu.Unlock()
		return 0, 0, false
	}
	lo = r.lo
	hi = lo + n
	if hi > r.hi {
		hi = r.hi
	}
	r.lo = hi
	r.mu.Unlock()
	return lo, hi, true
}

// steal takes the top half of the remaining range, if it is still big
// enough to be worth a task of its own.
func (r *splitRange) steal() (lo, hi int, ok bool) {
	r.mu.Lock()
	rem := r.hi - r.lo
	if rem < splitMinTuples {
		r.mu.Unlock()
		return 0, 0, false
	}
	mid := r.lo + rem/2
	lo, hi = mid, r.hi
	r.hi = mid
	r.mu.Unlock()
	return lo, hi, true
}

// splitOffer advertises one running task's splittable range. spawn wraps
// a stolen sub-range into a scheduler task (itself splittable again).
type splitOffer struct {
	rng   *splitRange
	spawn func(lo, hi int) schedTask
}

// offer publishes a splittable range. The wake comes after the lock is
// released: parked workers call trySplit while holding parkMu, so holding
// offerMu across wake() would invert the lock order.
func (s *scheduler) offer(o *splitOffer) {
	s.offerMu.Lock()
	s.offers = append(s.offers, o)
	s.offerMu.Unlock()
	s.wake()
}

// retract withdraws an offer; the owner calls it before its task returns.
func (s *scheduler) retract(o *splitOffer) {
	s.offerMu.Lock()
	for i, e := range s.offers {
		if e == o {
			s.offers = append(s.offers[:i], s.offers[i+1:]...)
			break
		}
	}
	s.offerMu.Unlock()
}

// trySplit halves an advertised splittable range and returns the stolen
// top as a new task. pending is charged BEFORE the range shrinks: the
// moment steal() succeeds the victim may claim the rest, finish and
// done() — without the pre-charge that could drive pending to zero and
// terminate the phase with the stolen half unprocessed.
func (s *scheduler) trySplit(id int) (schedTask, bool) {
	s.offerMu.Lock()
	var task schedTask
	for _, o := range s.offers {
		s.pending.Add(1)
		lo, hi, ok := o.rng.steal()
		if !ok {
			// A live offer implies its owner task has not yet done(), so
			// pending stays ≥ 1 across this decrement: it can never hit
			// zero here and no parked worker's wakeup is lost.
			s.pending.Add(-1)
			continue
		}
		task = o.spawn(lo, hi)
		break
	}
	s.offerMu.Unlock()
	if task == nil {
		return nil, false
	}
	s.splits.Add(1)
	if s.flight != nil {
		s.flight.Note(s.machine, "task_split", fmt.Sprintf("worker %d halved a hot probe range", id), 0, 0)
	}
	return task, true
}

// wake unparks one sleeping worker, if any. The task made visible by the
// caller (deque push or injector append, both under their mutex) is
// sequenced before the sleepers load, and a parking worker re-checks all
// sources after incrementing sleepers under parkMu — so either the
// pusher sees the sleeper and broadcasts, or the sleeper's re-check sees
// the task. No lost wakeups.
func (s *scheduler) wake() {
	if s.sleepers.Load() == 0 {
		return
	}
	s.parkMu.Lock()
	s.parkCond.Broadcast()
	s.parkMu.Unlock()
}

func (s *scheduler) wakeAll() {
	s.parkMu.Lock()
	s.parkCond.Broadcast()
	s.parkMu.Unlock()
}

// tryNext returns worker id's next task without parking: own deque,
// injector, then stealing — next()'s source order minus the wait. The
// pipelined network thread uses it to fill completion-queue idle gaps
// with join work it must be able to abandon the moment data arrives.
func (s *scheduler) tryNext(id int) (schedTask, bool) {
	if s.aborted.Load() {
		return nil, false
	}
	if t, ok := s.deques[id].popTail(); ok {
		return t, true
	}
	if t, ok := s.popInject(); ok {
		return t, true
	}
	if t, ok := s.steal(id); ok {
		s.steals.Add(1)
		return t, true
	}
	if t, ok := s.trySplit(id); ok {
		return t, true
	}
	return nil, false
}

// next returns worker id's next task, parking when all sources are empty
// but work is still pending elsewhere. ok is false once pending reaches
// zero (or the scheduler aborted): every queued task ran and no reserved
// injection is outstanding.
func (s *scheduler) next(id int) (schedTask, bool) {
	for {
		if s.aborted.Load() {
			return nil, false
		}
		if t, ok := s.deques[id].popTail(); ok {
			return t, true
		}
		if t, ok := s.popInject(); ok {
			return t, true
		}
		if t, ok := s.steal(id); ok {
			s.steals.Add(1)
			return t, true
		}
		if t, ok := s.trySplit(id); ok {
			return t, true
		}
		if s.pending.Load() == 0 {
			return nil, false
		}
		s.parkMu.Lock()
		s.sleepers.Add(1)
		// Re-check under the park lock: anything pushed before the
		// sleepers increment became visible is caught here; anything
		// pushed after it sees sleepers > 0 and broadcasts.
		if t, ok := s.popInject(); ok {
			s.sleepers.Add(-1)
			s.parkMu.Unlock()
			return t, true
		}
		if t, ok := s.steal(id); ok {
			s.sleepers.Add(-1)
			s.parkMu.Unlock()
			s.steals.Add(1)
			return t, true
		}
		if t, ok := s.trySplit(id); ok {
			s.sleepers.Add(-1)
			s.parkMu.Unlock()
			return t, true
		}
		if s.pending.Load() == 0 || s.aborted.Load() {
			s.sleepers.Add(-1)
			s.parkMu.Unlock()
			return nil, false
		}
		s.parkCond.Wait()
		s.sleepers.Add(-1)
		s.parkMu.Unlock()
	}
}
