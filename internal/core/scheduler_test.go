package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// runSchedWorkers drives the scheduler with n bare workers (no machine
// state needed — tasks under test ignore their worker argument except for
// its deque id) and returns once every worker exited.
func runSchedWorkers(s *scheduler, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &joinWorker{id: i, sched: s}
			for {
				task, ok := s.next(w.id)
				if !ok {
					return
				}
				task(w)
				s.done()
			}
		}(i)
	}
	wg.Wait()
}

// TestSchedulerDrainsRecursiveSplits is the skew-split shape: every root
// pushes a tree of children from whichever worker runs it. Run with -race
// this doubles as the scheduler's memory-model torture test.
func TestSchedulerDrainsRecursiveSplits(t *testing.T) {
	const (
		workers  = 8
		roots    = 100
		fanout   = 10
		depthMax = 2 // roots → fanout children → fanout² grandchildren
	)
	s := newScheduler(workers)
	var ran atomic.Int64
	var split func(depth int) schedTask
	split = func(depth int) schedTask {
		return func(w *joinWorker) {
			ran.Add(1)
			if depth >= depthMax {
				return
			}
			for i := 0; i < fanout; i++ {
				w.push(split(depth + 1))
			}
		}
	}
	s.reserve(roots)
	for i := 0; i < roots; i++ {
		s.inject(split(0))
	}
	runSchedWorkers(s, workers)

	want := int64(roots * (1 + fanout + fanout*fanout))
	if got := ran.Load(); got != want {
		t.Fatalf("ran %d tasks, want %d", got, want)
	}
	if p := s.pending.Load(); p != 0 {
		t.Fatalf("pending = %d after drain, want 0", p)
	}
	if s.injects.Load() != roots {
		t.Fatalf("injects = %d, want %d", s.injects.Load(), roots)
	}
}

// TestSchedulerStealsFromLoadedWorker checks the work actually spreads:
// a single worker produces every child task, so any other worker that ran
// one must have stolen it (or picked up a spill).
func TestSchedulerStealsFromLoadedWorker(t *testing.T) {
	const workers = 4
	const children = 64
	s := newScheduler(workers)
	var byWorker [workers]atomic.Int64
	s.reserve(1)
	s.inject(func(w *joinWorker) {
		for i := 0; i < children; i++ {
			w.push(func(cw *joinWorker) {
				byWorker[cw.id].Add(1)
				time.Sleep(100 * time.Microsecond) // let thieves catch up
			})
		}
	})
	runSchedWorkers(s, workers)

	var total, spread int64
	for i := range byWorker {
		n := byWorker[i].Load()
		total += n
		if n > 0 {
			spread++
		}
	}
	if total != children {
		t.Fatalf("ran %d children, want %d", total, children)
	}
	if spread < 2 {
		t.Fatalf("all %d children ran on one worker; stealing never happened", children)
	}
	if s.steals.Load() == 0 && s.spills.Load() == 0 {
		t.Fatal("work spread across workers but neither steals nor spills were counted")
	}
}

// TestSchedulerSpillsOverflowToInjector pushes more children than one
// deque holds; the overflow must spill to the injector and still run.
func TestSchedulerSpillsOverflowToInjector(t *testing.T) {
	const workers = 2
	const children = dequeCap + 50
	s := newScheduler(workers)
	var ran atomic.Int64
	s.reserve(1)
	s.inject(func(w *joinWorker) {
		for i := 0; i < children; i++ {
			w.push(func(*joinWorker) { ran.Add(1) })
		}
	})
	runSchedWorkers(s, workers)
	if got := ran.Load(); got != children {
		t.Fatalf("ran %d children, want %d", got, children)
	}
	if s.spills.Load() == 0 {
		t.Fatalf("pushed %d children into a %d-slot deque without a recorded spill", children, dequeCap)
	}
}

// TestSchedulerInjectorRewindsAndReleasesSlots drains the injector and
// checks consumed slots are nil'd and the array rewinds, so long phases
// don't pin every consumed closure.
func TestSchedulerInjectorRewindsAndReleasesSlots(t *testing.T) {
	s := newScheduler(1)
	s.reserve(3)
	for i := 0; i < 3; i++ {
		s.inject(func(*joinWorker) {})
	}
	for i := 0; i < 2; i++ {
		task, ok := s.popInject()
		if !ok {
			t.Fatalf("popInject %d: empty", i)
		}
		task(nil)
		s.done()
		if s.injectQ[i] != nil {
			t.Fatalf("consumed injector slot %d not released", i)
		}
	}
	if _, ok := s.popInject(); !ok {
		t.Fatal("third task missing")
	}
	s.done()
	if len(s.injectQ) != 0 || s.injectHead != 0 {
		t.Fatalf("injector not rewound after drain: head=%d len=%d", s.injectHead, len(s.injectQ))
	}
}

// TestSchedulerWorkersWaitForReservedInjections is the pipeline
// termination contract: while pending > 0 (a partition-ready event is
// still owed) no worker may exit, even though every queue is empty; the
// late injection must run, and only then do workers terminate.
func TestSchedulerWorkersWaitForReservedInjections(t *testing.T) {
	const workers = 4
	s := newScheduler(workers)
	s.reserve(1)

	var exited atomic.Int32
	var ran atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				task, ok := s.next(i)
				if !ok {
					exited.Add(1)
					return
				}
				task(nil)
				s.done()
			}
		}(i)
	}
	// Workers must all be parked, not exited: the reservation is pending.
	time.Sleep(20 * time.Millisecond)
	if n := exited.Load(); n != 0 {
		t.Fatalf("%d workers exited while pending > 0", n)
	}
	s.inject(func(*joinWorker) { ran.Add(1) })
	wg.Wait()
	if ran.Load() != 1 {
		t.Fatal("late injection never ran")
	}
	if exited.Load() != workers {
		t.Fatalf("exited = %d, want %d", exited.Load(), workers)
	}
}

// TestSchedulerCancelReservedReleasesWorkers: cancelling the outstanding
// reservation (an expected partition turned out empty) must let parked
// workers terminate.
func TestSchedulerCancelReservedReleasesWorkers(t *testing.T) {
	const workers = 3
	s := newScheduler(workers)
	s.reserve(2)
	s.inject(func(*joinWorker) {})

	doneCh := make(chan struct{})
	go func() {
		runSchedWorkers(s, workers)
		close(doneCh)
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-doneCh:
		t.Fatal("workers exited with a reservation outstanding")
	default:
	}
	s.cancelReserved(1)
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("workers did not terminate after cancelReserved")
	}
}

// TestSchedulerAbortReleasesParkedWorkers: abort must wake and terminate
// workers that are parked on an unfulfilled reservation.
func TestSchedulerAbortReleasesParkedWorkers(t *testing.T) {
	s := newScheduler(2)
	s.reserve(1) // never fulfilled
	doneCh := make(chan struct{})
	go func() {
		runSchedWorkers(s, 2)
		close(doneCh)
	}()
	time.Sleep(10 * time.Millisecond)
	s.abort()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("workers did not terminate after abort")
	}
}

// TestSchedulerInjectVsStealStress hammers concurrent injection (the
// pipeline's partition-ready path) against stealing workers. Counts must
// balance exactly; -race checks the synchronisation.
func TestSchedulerInjectVsStealStress(t *testing.T) {
	const (
		workers   = 8
		injectors = 4
		perInj    = 200
	)
	s := newScheduler(workers)
	var ran atomic.Int64
	s.reserve(injectors * perInj)
	var injWG sync.WaitGroup
	for i := 0; i < injectors; i++ {
		injWG.Add(1)
		go func() {
			defer injWG.Done()
			for j := 0; j < perInj; j++ {
				s.inject(func(w *joinWorker) {
					ran.Add(1)
					if w != nil && ran.Load()%7 == 0 {
						w.push(func(*joinWorker) { ran.Add(1) })
					}
				})
			}
		}()
	}
	runSchedWorkers(s, workers)
	injWG.Wait()
	if p := s.pending.Load(); p != 0 {
		t.Fatalf("pending = %d after drain, want 0", p)
	}
	if got, want := s.injects.Load(), uint64(injectors*perInj); got != want {
		t.Fatalf("injects = %d, want %d", got, want)
	}
}
