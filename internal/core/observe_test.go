package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rackjoin/internal/cluster"
	"rackjoin/internal/datagen"
	"rackjoin/internal/fabric"
	"rackjoin/internal/obsv"
	"rackjoin/internal/relation"
	"rackjoin/internal/trace"
)

// TestCriticalPathValidatesWallTime is the acceptance check of the causal
// tracing layer: on a pipelined run over a throttled fabric — where the
// network pass, overlap window and stragglers all actually matter — the
// backward walk over the trace DAG must account for (almost) the whole
// wall clock. A coverage gap means a missing causal edge.
func TestCriticalPathValidatesWallTime(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Machines: 4, CoresPerMachine: 4,
		Fabric: fabric.Config{
			EgressBandwidth: 256 << 20, // throttle so the net pass has real width
			BaseLatency:     20 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tr := trace.New()
	cfg := DefaultConfig()
	cfg.Trace = tr
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 14, OuterTuples: 1 << 16, Seed: 7})
	want := datagen.ExpectedJoin(w.Outer)
	res, err := Run(c, relation.Fragment(w.Inner, 4), relation.Fragment(w.Outer, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, want)

	cp, err := tr.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	// Path within 5% of wall: |Wall − Path| ≤ 0.05 × Wall.
	if cp.Coverage < 0.95 || cp.Coverage > 1.0+1e-9 {
		var sb strings.Builder
		cp.Report(&sb)
		t.Fatalf("critical path covers %.1f%% of wall, want ≥ 95%%\n%s", cp.Coverage*100, sb.String())
	}
	for _, ph := range []string{"histogram", "network partition"} {
		if cp.ByPhase[ph] == 0 {
			t.Fatalf("phase %q absent from critical path: %v", ph, cp.ByPhase)
		}
	}
	if len(cp.ByMachine) == 0 {
		t.Fatal("no per-machine attribution")
	}
	var sum time.Duration
	for _, d := range cp.ByPhase {
		sum += d
	}
	for _, d := range cp.ByLink {
		sum += d
	}
	if sum != cp.Path {
		t.Fatalf("attribution sums to %v, path is %v", sum, cp.Path)
	}
}

// TestCritPathEndpointMidRun hits /critpath while the join is still
// executing (from the network-partition OnPhase hook) and checks the
// served breakdown already carries per-phase and per-machine attribution.
func TestCritPathEndpointMidRun(t *testing.T) {
	tr := trace.New()
	srv := httptest.NewServer(obsv.NewServer(obsv.Options{Trace: tr}).Handler())
	defer srv.Close()

	type critJSON struct {
		WallSec   float64            `json:"wall_seconds"`
		PathSec   float64            `json:"path_seconds"`
		Coverage  float64            `json:"coverage"`
		ByPhase   map[string]float64 `json:"by_phase"`
		ByMachine map[string]float64 `json:"by_machine"`
	}
	var once sync.Once
	var mid critJSON
	var midErr error
	cfg := DefaultConfig()
	cfg.Trace = tr
	cfg.OnPhase = func(machine int, phase string, d time.Duration) {
		if phase != "network_partition" {
			return
		}
		once.Do(func() {
			resp, err := http.Get(srv.URL + "/critpath")
			if err != nil {
				midErr = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				midErr = fmt.Errorf("mid-run /critpath status %d", resp.StatusCode)
				return
			}
			midErr = json.NewDecoder(resp.Body).Decode(&mid)
		})
	}
	res, want := runJoin(t, 3, 3, smallWorkload, cfg)
	checkResult(t, res, want)
	if midErr != nil {
		t.Fatal(midErr)
	}
	if mid.WallSec <= 0 || mid.PathSec <= 0 {
		t.Fatalf("mid-run critical path empty: %+v", mid)
	}
	if mid.ByPhase["histogram"] == 0 {
		t.Fatalf("mid-run breakdown missing histogram: %+v", mid.ByPhase)
	}
	if len(mid.ByMachine) == 0 {
		t.Fatalf("mid-run breakdown has no machines: %+v", mid)
	}
}

// TestFlightRecordsJoinEvents mounts the flight recorder on a healthy run
// and checks the always-on capture: RDMA verb postings from the data and
// control planes, partition-readiness outcomes and phase breadcrumbs all
// land in the rings.
func TestFlightRecordsJoinEvents(t *testing.T) {
	fr := obsv.NewFlightRecorder(3, 4096)
	cfg := DefaultConfig()
	cfg.Flight = fr
	res, want := runJoin(t, 3, 3, smallWorkload, cfg)
	checkResult(t, res, want)

	kinds := map[string]int{}
	for _, ev := range fr.Snapshot() {
		kinds[ev.Kind]++
	}
	// (No "eop" here: the default two-sided transport has receiver-side
	// completions and never sends end-of-partition markers.)
	for _, k := range []string{"verb", "ready", "phase"} {
		if kinds[k] == 0 {
			t.Fatalf("no %q events captured; kinds: %v", k, kinds)
		}
	}
	if kinds["abort"] != 0 {
		t.Fatalf("abort event on a successful run: %v", kinds)
	}
}

// TestAbortProducesFlightDump forces a deterministic failure — the
// histogram all-gather vector exceeds the control buffer, so every
// machine's first control send fails — and checks the flight dump ends
// with the abort preceded by the events that led to it. (The failure must
// hit all machines symmetrically: a one-sided control-plane error leaves
// the peers blocked in CtlRecv.)
func TestAbortProducesFlightDump(t *testing.T) {
	// NetworkBits 4 → histogram vector 2·16·8 = 256 B > the 128 B control
	// buffer: the all-gather aborts on every machine before any data moves.
	c, err := cluster.New(cluster.Config{Machines: 4, CoresPerMachine: 2, CtlBufSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fr := obsv.NewFlightRecorder(4, 128)
	cfg := DefaultConfig()
	cfg.NetworkBits = 4
	cfg.Flight = fr

	w := datagen.Generate(smallWorkload)
	_, err = Run(c, relation.Fragment(w.Inner, 4), relation.Fragment(w.Outer, 4), cfg)
	if err == nil {
		t.Fatal("join should have aborted on the oversized histogram exchange")
	}
	if !strings.Contains(err.Error(), "exceeds buffer size") {
		t.Fatalf("unexpected abort cause: %v", err)
	}

	snap := fr.Snapshot()
	if len(snap) == 0 {
		t.Fatal("flight recorder empty after abort")
	}
	kinds := map[string]int{}
	for _, ev := range snap {
		kinds[ev.Kind]++
	}
	if kinds["abort"] == 0 {
		t.Fatalf("no abort event in flight dump: %v", kinds)
	}
	// The events leading to the failure: each machine's phase breadcrumb
	// shows the run died in the histogram phase.
	if kinds["phase"] < 4 {
		t.Fatalf("want a histogram-phase breadcrumb per machine, kinds: %v", kinds)
	}
	// The abort is the newest retained event.
	if last := snap[len(snap)-1]; last.Kind != "abort" {
		t.Fatalf("newest flight event is %q, want abort\n%+v", last.Kind, last)
	}
	var sb strings.Builder
	fr.WriteText(&sb)
	if !strings.Contains(sb.String(), "abort") || !strings.Contains(sb.String(), "exceeds buffer size") {
		t.Fatalf("text dump missing abort context:\n%s", sb.String())
	}
}
