package core

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"sync"
	"time"

	"rackjoin/internal/metrics"
	"rackjoin/internal/radix"
	"rackjoin/internal/rdma"
	"rackjoin/internal/relation"
)

// atomicWRID marks fetch-and-add completions on a thread's send CQ so
// they are distinguishable from buffer-transfer completions (whose WRIDs
// are pool buffer indexes).
const atomicWRID = uint64(1) << 62

// relationFlag marks S-relation buffers in the immediate value of channel
// transfers; the low 31 bits carry the partition id.
const relationFlag = uint32(1) << 31

// bufferPool manages one thread's pre-allocated, pre-registered
// RDMA-enabled buffers (Section 4.2.1). Buffers are acquired for filling,
// posted when full, and returned by polling the thread's send completion
// queue. The pool thereby enforces the cardinal RDMA discipline: a buffer
// is reused only after its transfer completed.
type bufferPool struct {
	mr      *rdma.MemoryRegion
	bufSize int
	cq      *rdma.CompletionQueue
	free    []int32
	// outstanding counts posted-but-not-completed buffers.
	outstanding int
	// stalls counts acquisitions that blocked on a completion.
	stalls uint64
	// atomicMR is the thread's 8-byte landing pad for fetch-and-add
	// results (atomic-append transport).
	atomicMR *rdma.MemoryRegion

	// Registry handles (nil-safe): waitHist records time spent blocked on
	// completions when the pool is dry, stallCtr mirrors stalls, flushes
	// counts shipped buffers (buffer swaps).
	waitHist *metrics.Histogram
	stallCtr *metrics.Counter
	flushes  *metrics.Counter
	// onStall, when set, mirrors each stall into the flight recorder
	// (and, when scheduled, the adaptive sizer's shrink signal).
	onStall func()

	// Per-destination in-flight accounting for the adaptive transfer
	// budgets (netsched): destOf[i] is the destination of buffer i's
	// outstanding transfer, inflightTo the per-destination in-flight
	// counts. nil when unscheduled — every recycle path goes through
	// recycle(), which keeps the counts consistent either way.
	destOf     []int32
	inflightTo []int
}

// recycle returns a completed transfer's buffer to the pool, releasing
// its per-destination in-flight slot. Every completion path — reap,
// acquire's wait loop, waitOne, waitAtomic, the pipelined drain — must
// come through here so the budget accounting cannot leak.
func (p *bufferPool) recycle(i int32) {
	p.free = append(p.free, i)
	p.outstanding--
	if p.inflightTo != nil {
		p.inflightTo[p.destOf[i]]--
	}
}

// markInflight records a successful post of buffer i toward dest.
func (p *bufferPool) markInflight(i int32, dest int) {
	p.outstanding++
	if p.inflightTo != nil {
		p.destOf[i] = int32(dest)
		p.inflightTo[dest]++
	}
}

func newBufferPool(pd *rdma.ProtectionDomain, cq *rdma.CompletionQueue, bufSize, count int, withAtomic bool) (*bufferPool, error) {
	mr, err := pd.RegisterMemory(make([]byte, bufSize*count), 0)
	if err != nil {
		return nil, err
	}
	p := &bufferPool{mr: mr, bufSize: bufSize, cq: cq, free: make([]int32, 0, count)}
	for i := count - 1; i >= 0; i-- {
		p.free = append(p.free, int32(i))
	}
	if withAtomic {
		if p.atomicMR, err = pd.RegisterMemory(make([]byte, 8), rdma.AccessLocalWrite); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// waitAtomic blocks until the pending fetch-and-add completes, recycling
// any buffer completions that arrive first, and returns the fetched value.
func (p *bufferPool) waitAtomic() (uint64, error) {
	for {
		c := p.cq.Wait()
		if err := c.Err(); err != nil {
			return 0, err
		}
		if c.WRID == atomicWRID {
			return binary.LittleEndian.Uint64(p.atomicMR.Bytes()), nil
		}
		p.recycle(int32(c.WRID))
	}
}

// buf returns the byte range of buffer i.
func (p *bufferPool) buf(i int32) []byte {
	return p.mr.Bytes()[int(i)*p.bufSize : (int(i)+1)*p.bufSize]
}

// reap recycles all already-available completions without blocking.
func (p *bufferPool) reap() error {
	var batch [16]rdma.Completion
	for {
		n := p.cq.Poll(batch[:])
		if n == 0 {
			return nil
		}
		for _, c := range batch[:n] {
			if err := c.Err(); err != nil {
				return err
			}
			p.recycle(int32(c.WRID))
		}
	}
}

// acquire returns a free buffer index, blocking on completions when the
// pool is exhausted (the back-pressure of a network-bound run).
func (p *bufferPool) acquire() (int32, error) {
	if err := p.reap(); err != nil {
		return 0, err
	}
	var waitStart time.Time
	for len(p.free) == 0 {
		if p.outstanding == 0 {
			return 0, fmt.Errorf("core: buffer pool exhausted with no transfers in flight")
		}
		if waitStart.IsZero() {
			waitStart = time.Now()
		}
		p.stalls++
		p.stallCtr.Inc()
		if p.onStall != nil {
			p.onStall()
		}
		c := p.cq.Wait()
		if err := c.Err(); err != nil {
			return 0, err
		}
		p.recycle(int32(c.WRID))
	}
	if !waitStart.IsZero() {
		p.waitHist.ObserveSince(waitStart)
	}
	i := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return i, nil
}

// release returns an unposted buffer to the pool.
func (p *bufferPool) release(i int32) { p.free = append(p.free, i) }

// drain blocks until every posted buffer has completed.
func (p *bufferPool) drain() error {
	for p.outstanding > 0 {
		if err := p.waitOne(); err != nil {
			return err
		}
	}
	return nil
}

// waitOne blocks for a single completion and recycles its buffer.
func (p *bufferPool) waitOne() error {
	c := p.cq.Wait()
	if err := c.Err(); err != nil {
		return err
	}
	p.recycle(int32(c.WRID))
	return nil
}

// allocPools pre-allocates and pre-registers each partitioning thread's
// buffer pool (setup, untimed — the paper draws buffers "from a pool
// containing preallocated and preregistered buffers").
func (st *machineState) allocPools() error {
	st.pools = make([]*bufferPool, st.partThreads)
	// Resolve the netpass kernel-bytes counter once here (single-threaded
	// setup) instead of per scatterSlice call: the labels are fixed for the
	// whole run, and resolving in the hot path cost two label allocations
	// plus a registry lookup per slice.
	kern := "scalar"
	if st.cfg.Kernels.Resolve(st.width, st.cfg.NetworkBits) == radix.KernelWC {
		kern = "wc"
	}
	st.netKernelBytes = st.met.Counter("kernel_bytes_total",
		metrics.L("kernel", kern), metrics.L("phase", "netpass"))
	if st.nm == 1 || st.cfg.Transport == TransportOneSidedRead {
		return nil // pull mode ships nothing from the sender side
	}
	// Remote partitions each need BuffersPerPartition buffers; broadcast
	// partitions replicate their inner side to all nm-1 peers; skew-split
	// partitions additionally deal their outer side to all nm-1 peers.
	remote := st.np - len(st.resident)
	numBcast := len(st.resident) - len(st.owned)
	numSplit := len(st.skewStats.SplitPartitions)
	count := st.cfg.BuffersPerPartition * (remote + (numBcast+numSplit)*(st.nm-1))
	if count <= 0 {
		return nil
	}
	withAtomic := st.cfg.Transport == TransportOneSidedAtomic
	for t := 0; t < st.partThreads; t++ {
		pool, err := newBufferPool(st.m.PD, st.sendCQ[t], st.cfg.BufferSize, count, withAtomic)
		if err != nil {
			return err
		}
		ts := st.met.With(metrics.L("thread", strconv.Itoa(t)))
		pool.waitHist = ts.Histogram("netpass_buffer_wait_seconds")
		pool.stallCtr = ts.Counter("netpass_buffer_stalls_total")
		pool.flushes = ts.Counter("netpass_buffer_flushes_total")
		if st.cfg.Flight != nil {
			t := t
			pool.onStall = func() { st.flight("pool_stall", fmt.Sprintf("thread %d pool dry", t), 0, 0) }
		}
		st.pools[t] = pool
	}
	// Per-destination link-bytes counters: the directed-link traffic
	// matrix the health plane's online engine reads.
	st.linkBytes = make([]*metrics.Counter, st.nm)
	for d := 0; d < st.nm; d++ {
		if d != st.m.ID {
			st.linkBytes[d] = st.met.Counter("netpass_link_bytes_total",
				metrics.L("dest", strconv.Itoa(d)))
		}
	}
	// Per-partition bytes-shipped counters, created here (single-threaded
	// setup) for exactly the partitions this machine ships: non-resident
	// ones and the replicated inner side of broadcast partitions.
	st.shipped = make([]*metrics.Counter, st.np)
	for p := 0; p < st.np; p++ {
		if !st.residentHere(p) || st.broadcast[p] {
			st.shipped[p] = st.met.Counter("netpass_bytes_shipped_total",
				metrics.L("partition", strconv.Itoa(p)))
		}
	}
	// Communication schedule + adaptive budgets (netsched.Off: no-op).
	st.initNetSched(count)
	return nil
}

// networkPartitionPass runs the partitioning threads (and, for channel
// semantics, the network thread) of the network partitioning pass.
func (st *machineState) networkPartitionPass() error {
	if st.cfg.Transport == TransportOneSidedRead {
		return st.pullNetworkPass()
	}
	nWorkers := st.partThreads
	errs := make([]error, nWorkers+1)
	var wg sync.WaitGroup
	if st.nm > 1 && st.cfg.usesNetworkThread() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if st.cfg.Transport == TransportTCP {
				errs[nWorkers] = st.tcpReceiveLoop()
			} else {
				errs[nWorkers] = st.receiveLoop()
			}
		}()
	}
	for t := 0; t < nWorkers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			errs[t] = st.partitionThread(t)
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, p := range st.pools {
		if p != nil {
			st.poolStalls += p.stalls
		}
	}
	return nil
}

// partitionThread scatters this thread's slices of R and S, then drains
// its outstanding transfers so that the pass ends only when all data is
// acknowledged by the receiving hosts.
func (st *machineState) partitionThread(t int) error {
	if err := st.scatterSlice(t, st.R, false); err != nil {
		return err
	}
	if err := st.scatterSlice(t, st.S, true); err != nil {
		return err
	}
	if st.pipe != nil {
		// Local slab writes are complete once every thread scattered both
		// relations; fully-received partitions become ready.
		st.pipe.scatterDone()
	}
	if pool := st.pools[t]; pool != nil {
		if st.pipe != nil {
			// Pipelined: recycle completions by polling and spend the
			// gaps on partition-ready join work instead of blocking.
			if err := st.pipe.drainInterleaved(pool, st.pipe.workers[t]); err != nil {
				return err
			}
		} else if err := pool.drain(); err != nil {
			return err
		}
	}
	if st.pipe != nil {
		return st.pipe.threadDrained()
	}
	return nil
}

// threadState carries the per-partition cursors of one scatter pass.
type threadState struct {
	localCur  []int64 // byte cursor into the local slab; -1 for remote partitions
	curBuf    []int32 // current pool buffer per remote partition; -1 if none
	fill      []int32 // tuples in the current buffer
	remoteCur []int64 // one-sided: next tuple offset within the owner's slab
	scratch   []byte  // stream transport staging area
	wcCopy    bool    // kernel knob: word-copy tuples instead of memmove

	// Broadcast state (inner relation of work-shared partitions): one
	// buffer and remote cursor per (broadcast partition, destination).
	bcastBuf  map[int][]int32
	bcastFill map[int][]int32
	bcastCur  map[int][]int64
	// Split state (outer relation of skew-split partitions): split aliases
	// st.split during the outer scatter (nil otherwise — one predicted-away
	// nil check per remote tuple when the skew engine is off), and the
	// round-robin dealer fills one buffer per (partition, destination).
	// Exact one-sided cursors live on machineState (splitRemoteCur): they
	// are shared across threads, unlike the per-thread bcastCur.
	split     []bool
	splitBuf  map[int][]int32
	splitFill map[int][]int32
	// repBytes counts tuple bytes replicated into broadcast buffers —
	// kernel work on top of the input scan, folded into
	// kernel_bytes_total at end of slice.
	repBytes uint64

	// Parked buffers (netsched): FIFO of filled buffers waiting for
	// their pairing round; parkedHead skips posted entries, parkedLive
	// counts the ones still waiting.
	parked     []parkedBuf
	parkedHead int
	parkedLive int
}

func (st *machineState) newThreadState(t int, isS bool) *threadState {
	ts := &threadState{
		localCur:  make([]int64, st.np),
		curBuf:    make([]int32, st.np),
		fill:      make([]int32, st.np),
		remoteCur: make([]int64, st.np),
		wcCopy:    st.cfg.Kernels.Resolve(st.width, st.cfg.NetworkBits) == radix.KernelWC,
	}
	if st.cfg.Transport == TransportStream {
		ts.scratch = make([]byte, st.cfg.BufferSize)
	}
	hists := st.threadHistR
	all := st.allHistR
	slabOff := st.slabOffR
	if isS {
		hists = st.threadHistS
		all = st.allHistS
		slabOff = st.slabOffS
	}
	w := int64(st.width)
	if isS {
		ts.split = st.split
	}
	for p := 0; p < st.np; p++ {
		ts.curBuf[p] = -1
		switch {
		case isS && st.isSplit(p):
			// The outer side of a split partition goes through the shared
			// round-robin dealer: no per-thread local cursor, one deal
			// buffer per destination.
			ts.localCur[p] = -1
			if ts.splitBuf == nil {
				ts.splitBuf = make(map[int][]int32)
				ts.splitFill = make(map[int][]int32)
			}
			bufs := make([]int32, st.nm)
			for d := range bufs {
				bufs[d] = -1
			}
			ts.splitBuf[p] = bufs
			ts.splitFill[p] = make([]int32, st.nm)
		case st.residentHere(p):
			ts.localCur[p] = (st.localWriteBase(p, isS) + threadPrefix(hists, t, p)) * w
			if st.broadcast[p] && !isS {
				// The inner side of a work-shared partition is written
				// locally AND replicated to every peer.
				if ts.bcastBuf == nil {
					ts.bcastBuf = make(map[int][]int32)
					ts.bcastFill = make(map[int][]int32)
					ts.bcastCur = make(map[int][]int64)
				}
				bufs := make([]int32, st.nm)
				cur := make([]int64, st.nm)
				for d := 0; d < st.nm; d++ {
					bufs[d] = -1
					if d != st.m.ID {
						cur[d] = slabOff[d][p] + machinePrefix(all, st.m.ID, p) + threadPrefix(hists, t, p)
					}
				}
				ts.bcastBuf[p] = bufs
				ts.bcastFill[p] = make([]int32, st.nm)
				ts.bcastCur[p] = cur
			}
		default:
			ts.localCur[p] = -1
			ts.remoteCur[p] = slabOff[st.owner[p]][p] + machinePrefix(all, st.m.ID, p) + threadPrefix(hists, t, p)
		}
	}
	return ts
}

// scatterSlice is the hot loop of the network partitioning pass: it walks
// this thread's contiguous input slice and routes every tuple either into
// the local destination slab or into the RDMA buffer of its remote
// partition, shipping buffers as they fill.
func (st *machineState) scatterSlice(t int, rel *relation.Relation, isS bool) error {
	n := rel.Len()
	slice := rel.Slice(n*t/st.partThreads, n*(t+1)/st.partThreads)
	ts := st.newThreadState(t, isS)
	pool := st.pools[t]

	slab := st.slabR
	if isS {
		slab = st.slabS
	}
	slabBytes := slab.Bytes()
	width := st.width
	mask := uint64(st.np - 1)
	capTuples := int32(st.cfg.BufferSize / width)
	data := slice.Bytes()

	// The tuple move is the hot instruction of this loop: the wc kernel
	// copies whole words through relation.CopyTuple (no memmove dispatch,
	// adjacent stores combine in the store buffer); the scalar kernel keeps
	// the plain copy as the ablation baseline. The branch on ts.wcCopy is
	// loop-invariant and predicted away.
	for off := 0; off < len(data); off += width {
		tuple := data[off : off+width]
		p := int(binary.LittleEndian.Uint64(tuple) & mask)
		if cur := ts.localCur[p]; cur >= 0 {
			if ts.wcCopy {
				relation.CopyTuple(slabBytes[cur:], tuple, width)
			} else {
				copy(slabBytes[cur:], tuple)
			}
			ts.localCur[p] = cur + int64(width)
			if bufs, ok := ts.bcastBuf[p]; ok {
				if err := st.replicate(t, ts, p, tuple, bufs, capTuples); err != nil {
					return err
				}
			}
			continue
		}
		if ts.split != nil && ts.split[p] {
			if err := st.dealSplit(t, ts, p, tuple, capTuples); err != nil {
				return err
			}
			continue
		}
		b := ts.curBuf[p]
		if b < 0 {
			var err error
			if b, err = st.acquireFor(t, ts); err != nil {
				return err
			}
			ts.curBuf[p] = b
			ts.fill[p] = 0
		}
		if ts.wcCopy {
			relation.CopyTuple(pool.buf(b)[int(ts.fill[p])*width:], tuple, width)
		} else {
			copy(pool.buf(b)[int(ts.fill[p])*width:], tuple)
		}
		ts.fill[p]++
		if ts.fill[p] == capTuples {
			if err := st.flush(t, ts, p, isS); err != nil {
				return err
			}
		}
	}
	// Input bytes plus the broadcast replicas: the scatter kernels wrote
	// both, so kernel_bytes_total must see both (replicated bytes used
	// to bypass this accounting).
	st.netKernelBytes.Add(uint64(len(data)) + ts.repBytes)
	// Ship partial buffers; return untouched ones to the pool.
	for p := 0; p < st.np; p++ {
		if ts.curBuf[p] >= 0 {
			if ts.fill[p] == 0 {
				pool.release(ts.curBuf[p])
				ts.curBuf[p] = -1
			} else if err := st.flush(t, ts, p, isS); err != nil {
				return err
			}
		}
		if bufs, ok := ts.bcastBuf[p]; ok {
			for d := range bufs {
				if bufs[d] < 0 {
					continue
				}
				if ts.bcastFill[p][d] == 0 {
					pool.release(bufs[d])
					bufs[d] = -1
					continue
				}
				if err := st.flushBcast(t, ts, p, d); err != nil {
					return err
				}
			}
		}
		if bufs, ok := ts.splitBuf[p]; ok {
			for d := range bufs {
				if bufs[d] < 0 {
					continue
				}
				if ts.splitFill[p][d] == 0 {
					pool.release(bufs[d])
					bufs[d] = -1
					continue
				}
				if err := st.flushSplit(t, ts, p, d); err != nil {
					return err
				}
			}
		}
	}
	// Tail drain: cycle the schedule until every parked buffer posted —
	// the pass may not end (and EOP may not fire) with buffers held
	// back, and the thread state dies with this slice.
	return st.drainParked(t, ts)
}

// replicate appends one inner tuple of broadcast partition p to the
// per-destination buffers, shipping any that fill up.
func (st *machineState) replicate(t int, ts *threadState, p int, tuple []byte, bufs []int32, capTuples int32) error {
	pool := st.pools[t]
	fill := ts.bcastFill[p]
	for d := 0; d < st.nm; d++ {
		if d == st.m.ID {
			continue
		}
		b := bufs[d]
		if b < 0 {
			var err error
			if b, err = st.acquireFor(t, ts); err != nil {
				return err
			}
			bufs[d] = b
			fill[d] = 0
		}
		if ts.wcCopy {
			relation.CopyTuple(pool.buf(b)[int(fill[d])*st.width:], tuple, st.width)
		} else {
			copy(pool.buf(b)[int(fill[d])*st.width:], tuple)
		}
		fill[d]++
		ts.repBytes += uint64(st.width)
		if fill[d] == capTuples {
			if err := st.flushBcast(t, ts, p, d); err != nil {
				return err
			}
		}
	}
	return nil
}

// dealSplit routes one outer tuple of skew-split partition p: a shared
// per-partition counter deals tuples round-robin across all machines, so
// the hot partition's probe work spreads evenly instead of landing on one
// straggler. Self-dealt tuples go straight into the local slab through
// the shared offset cursor; remote destinations fill per-destination
// buffers that ship through the same scheduled path as everything else.
func (st *machineState) dealSplit(t int, ts *threadState, p int, tuple []byte, capTuples int32) error {
	idx := st.splitNext[p].Add(1) - 1
	dest := (st.splitStartDest(st.m.ID, p) + int(idx%int64(st.nm))) % st.nm
	width := st.width
	if dest == st.m.ID {
		cur := (st.splitLocalCur[p].Add(1) - 1) * int64(width)
		slab := st.slabS.Bytes()
		if ts.wcCopy {
			relation.CopyTuple(slab[cur:], tuple, width)
		} else {
			copy(slab[cur:], tuple)
		}
		return nil
	}
	bufs := ts.splitBuf[p]
	fill := ts.splitFill[p]
	b := bufs[dest]
	if b < 0 {
		var err error
		if b, err = st.acquireFor(t, ts); err != nil {
			return err
		}
		bufs[dest] = b
		fill[dest] = 0
	}
	pool := st.pools[t]
	if ts.wcCopy {
		relation.CopyTuple(pool.buf(b)[int(fill[dest])*width:], tuple, width)
	} else {
		copy(pool.buf(b)[int(fill[dest])*width:], tuple)
	}
	fill[dest]++
	if fill[dest] == capTuples {
		return st.flushSplit(t, ts, p, dest)
	}
	return nil
}

// flushSplit ships the current deal buffer of (split partition p, dest).
// On the exact-placement transport the write range is pre-reserved from
// the shared per-(partition, destination) cursor; ship's park path copies
// the cursor value into the parked entry, so handing it a stack slot is
// safe even though the buffer may post out of order.
func (st *machineState) flushSplit(t int, ts *threadState, p, dest int) error {
	buf := ts.splitBuf[p][dest]
	tuples := ts.splitFill[p][dest]
	ts.splitBuf[p][dest] = -1
	ts.splitFill[p][dest] = 0
	var cur int64
	if st.cfg.Transport == TransportOneSided {
		cur = st.splitRemoteCur[p][dest].Add(int64(tuples)) - int64(tuples)
	}
	return st.ship(t, ts, buf, tuples, p, true, dest, &cur)
}

// flushBcast ships the current broadcast buffer of (partition p, dest)
// through the same scheduled posting path as everything else, so the
// communication schedule, the transfer budgets and the per-target
// accounting all see the replicated traffic.
func (st *machineState) flushBcast(t int, ts *threadState, p, dest int) error {
	buf := ts.bcastBuf[p][dest]
	tuples := ts.bcastFill[p][dest]
	ts.bcastBuf[p][dest] = -1
	ts.bcastFill[p][dest] = 0
	return st.ship(t, ts, buf, tuples, p, false, dest, &ts.bcastCur[p][dest])
}

// flush posts the current buffer of partition p towards its owner and
// detaches it from the thread state.
func (st *machineState) flush(t int, ts *threadState, p int, isS bool) error {
	buf := ts.curBuf[p]
	tuples := ts.fill[p]
	ts.curBuf[p] = -1
	ts.fill[p] = 0
	return st.ship(t, ts, buf, tuples, p, isS, st.owner[p], &ts.remoteCur[p])
}

// postBuffer ships one filled buffer of partition p to machine dest over
// the configured transport. remoteCur is the sender's exact-placement
// tuple cursor into dest's region (one-sided mode); it advances by the
// posted tuple count. With interleaving disabled the call blocks until
// the transfer is acknowledged (the Figure 5b "non-interleaved"
// ablation).
func (st *machineState) postBuffer(t int, ts *threadState, buf, tuples int32, p int, isS bool, dest int, remoteCur *int64) error {
	pool := st.pools[t]
	length := int(tuples) * st.width
	owner := dest
	pool.flushes.Inc()
	if st.shipped != nil && st.shipped[p] != nil {
		st.shipped[p].Add(uint64(length))
	}
	if st.linkBytes != nil && st.linkBytes[dest] != nil {
		st.linkBytes[dest].Add(uint64(length))
	}
	if st.skewRepl != nil && st.skewRepl[p] != nil {
		// Split-partition traffic — replicated inner tuples and dealt
		// outer tuples — is the price of the skew mitigation; the health
		// plane reads this counter to see the mitigation working.
		st.skewRepl[p].Add(uint64(length))
		st.skewReplBytes.Add(uint64(length))
	}

	if st.cfg.Transport == TransportTCP {
		// Kernel TCP: Send returns once the kernel copied the payload, so
		// the buffer is immediately reusable (copy semantics — the cost
		// the paper charges the TCP/IP implementation with).
		tag := uint32(p)
		if isS {
			tag |= relationFlag
		}
		err := st.tcp.Send(t, owner, tag, pool.buf(buf)[:length])
		pool.release(buf)
		if err != nil {
			return err
		}
		st.tcpBytes.Add(uint64(length))
		st.tcpMsgs.Add(1)
		return nil
	}

	qp := st.qps[t][owner]

	// Adaptive transfer budget: cap the in-flight transfers toward each
	// destination. An exhausted budget is back-pressure, not an error —
	// recycle any completion and re-check. in-flight ≤ outstanding, so
	// the wait always terminates.
	if pool.inflightTo != nil && st.netBudget != nil {
		waited := false
		for pool.inflightTo[dest] >= st.netBudget.Budget(dest) && pool.outstanding > 0 {
			if !waited {
				st.budgetWaits.Inc()
				waited = true
			}
			if err := pool.waitOne(); err != nil {
				pool.release(buf)
				return err
			}
		}
	}

	if st.cfg.Transport == TransportOneSidedAtomic {
		// Reserve the write range with a remote fetch-and-add on the
		// owner's append cursor — one extra round-trip per buffer, the
		// cost the histogram phase's precomputed offsets avoid.
		if err := qp.PostSend(rdma.SendWR{
			WRID: atomicWRID, Op: rdma.OpFetchAdd, Signaled: true,
			Add:    uint64(tuples),
			Local:  rdma.Segment{MR: pool.atomicMR, Length: 8},
			Remote: rdma.RemoteSegment{RKey: uint32(st.rkeysCur[owner]), Offset: cursorOffset(p, isS)},
		}); err != nil {
			pool.release(buf)
			return err
		}
		fetched, err := pool.waitAtomic()
		if err != nil {
			pool.release(buf)
			return err
		}
		slabOff := st.slabOffR[owner]
		rkeys := st.rkeysR
		if isS {
			slabOff = st.slabOffS[owner]
			rkeys = st.rkeysS
		}
		wr := rdma.SendWR{
			WRID: uint64(buf), Signaled: true, Op: rdma.OpWrite,
			Local:  rdma.Segment{MR: pool.mr, Offset: int(buf) * pool.bufSize, Length: length},
			Remote: rdma.RemoteSegment{RKey: uint32(rkeys[owner]), Offset: (int(slabOff[p]) + int(fetched)) * st.width},
		}
		if err := qp.PostSend(wr); err != nil {
			pool.release(buf)
			return err
		}
		pool.markInflight(buf, dest)
		if !st.cfg.interleaved() {
			return pool.drain()
		}
		return nil
	}

	if ts.scratch != nil {
		// Stream transport: emulate the kernel-boundary copy of TCP/IP by
		// staging the payload once more before handing it to the wire.
		copy(ts.scratch, pool.buf(buf)[:length])
	}

	wr := rdma.SendWR{
		WRID:     uint64(buf),
		Signaled: true,
		Local:    rdma.Segment{MR: pool.mr, Offset: int(buf) * pool.bufSize, Length: length},
	}
	if st.cfg.Transport == TransportOneSided {
		rkeys := st.rkeysR
		if isS {
			rkeys = st.rkeysS
		}
		wr.Op = rdma.OpWrite
		wr.Remote = rdma.RemoteSegment{
			RKey:   uint32(rkeys[owner]),
			Offset: int(*remoteCur) * st.width,
		}
		*remoteCur += int64(tuples)
	} else {
		wr.Op = rdma.OpSend
		wr.Imm = uint32(p)
		wr.HasImm = true
		if isS {
			wr.Imm |= relationFlag
		}
	}
	// A full send queue is back-pressure, not an error: recycle a
	// completed transfer and retry, exactly like a verbs application
	// spinning on its completion queue.
	var waitStart time.Time
	for {
		err := qp.PostSend(wr)
		if err == nil {
			break
		}
		if err != rdma.ErrQPFull {
			pool.release(buf)
			return err
		}
		if pool.outstanding == 0 {
			pool.release(buf)
			return fmt.Errorf("core: send queue full with no completions outstanding")
		}
		if waitStart.IsZero() {
			waitStart = time.Now()
		}
		pool.stalls++
		pool.stallCtr.Inc()
		if pool.onStall != nil {
			pool.onStall()
		}
		if err := pool.waitOne(); err != nil {
			pool.release(buf)
			return err
		}
	}
	if !waitStart.IsZero() {
		pool.waitHist.ObserveSince(waitStart)
	}
	pool.markInflight(buf, dest)
	if tr := st.cfg.Trace; tr != nil && wr.Op == rdma.OpSend {
		// Channel semantics deliver a receive completion per message, so
		// the receiver can rendezvous this exact buffer: emit the sender
		// half of the cross-machine flow edge, keyed by the per-(thread,
		// dest) sequence (FIFO per queue pair). One-sided WRITEs bypass
		// the remote CPU — causality there rides the end-of-partition
		// notifications instead.
		seq := st.msgSeq[t][owner]
		st.msgSeq[t][owner] = seq + 1
		tr.InstantFlowOut(st.m.ID, "msg", st.sendLabels[p], st.netSpan, int64(length),
			"msg", msgFlowKey(st.m.ID, t, owner, seq))
	}
	if !st.cfg.interleaved() {
		return pool.drain()
	}
	return nil
}
