//go:build purego || !(amd64 || arm64)

package relation

// Portable fallbacks for the word-copy helpers: plain copy, which the
// runtime turns into memmove. Selected by -tags purego or on platforms
// where unaligned 8-byte accesses are not known to be safe.

// alignOffset is the portable stand-in: without unsafe the allocation's
// address is unknowable, so slabs count as aligned as-is. Alignment is a
// performance hint only — correctness never depends on it.
func alignOffset(b []byte) int { return 0 }

// CopyTuple copies one tuple of the given width from src to dst.
func CopyTuple(dst, src []byte, width int) {
	copy(dst[:width], src[:width])
}

// CopyWords copies len(src) bytes from src to dst; len(src) must be a
// multiple of 8 and dst at least as long.
func CopyWords(dst, src []byte) {
	copy(dst[:len(src)], src)
}
