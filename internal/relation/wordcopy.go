//go:build !purego && (amd64 || arm64)

package relation

import "unsafe"

// Word-granular copy helpers for the exec-engine hot loops. Tuples are 16,
// 32 or 64 bytes — always whole 8-byte words — so the partitioning kernels
// can move them as uint64 loads/stores instead of byte-wise memmove calls.
// amd64 and arm64 permit the unaligned word accesses and are little-endian
// (the staged bytes are bit-identical to what memmove would produce); every
// other platform, and the -tags purego escape hatch, takes the portable
// copy-based fallback in wordcopy_purego.go.

// alignOffset returns how many bytes past b[0] the first CacheLine-aligned
// address lies (0 when b is already aligned).
func alignOffset(b []byte) int {
	return int(-uintptr(unsafe.Pointer(unsafe.SliceData(b))) & (CacheLine - 1))
}

// CopyTuple copies one tuple of the given width from src to dst. Both
// slices must hold at least width bytes; width must be a ValidWidth.
func CopyTuple(dst, src []byte, width int) {
	switch width {
	case Width16:
		s := (*[2]uint64)(unsafe.Pointer(unsafe.SliceData(src[:16])))
		d := (*[2]uint64)(unsafe.Pointer(unsafe.SliceData(dst[:16])))
		d[0], d[1] = s[0], s[1]
	case Width32:
		s := (*[4]uint64)(unsafe.Pointer(unsafe.SliceData(src[:32])))
		d := (*[4]uint64)(unsafe.Pointer(unsafe.SliceData(dst[:32])))
		d[0], d[1], d[2], d[3] = s[0], s[1], s[2], s[3]
	case Width64:
		s := (*[8]uint64)(unsafe.Pointer(unsafe.SliceData(src[:64])))
		d := (*[8]uint64)(unsafe.Pointer(unsafe.SliceData(dst[:64])))
		d[0], d[1], d[2], d[3] = s[0], s[1], s[2], s[3]
		d[4], d[5], d[6], d[7] = s[4], s[5], s[6], s[7]
	default:
		copy(dst[:width], src[:width])
	}
}

// CopyWords copies len(src) bytes from src to dst as 8-byte words.
// len(src) must be a multiple of 8 and dst at least as long. Used by the
// write-combining kernels to flush staged cache lines.
func CopyWords(dst, src []byte) {
	n := len(src)
	if n == 0 {
		return
	}
	d := unsafe.Pointer(unsafe.SliceData(dst[:n]))
	s := unsafe.Pointer(unsafe.SliceData(src))
	for off := 0; off < n; off += 8 {
		*(*uint64)(unsafe.Add(d, off)) = *(*uint64)(unsafe.Add(s, off))
	}
}
