// Package relation implements the in-memory tuple storage used throughout
// the join: flat byte slabs of fixed-width tuples.
//
// Tuples follow the paper's workload layout (Section 6.1.1): an 8-byte join
// key followed by an 8-byte record id, optionally followed by additional
// payload bytes for the row-store workloads of Section 6.7. Supported
// widths are 16, 32 and 64 bytes. The flat layout is what the distributed
// join transmits: partitioning moves whole tuples as raw bytes, so a
// relation chunk can be placed directly inside an RDMA-registered region.
package relation

import (
	"encoding/binary"
	"fmt"
)

// Supported tuple widths in bytes.
const (
	Width16 = 16 // <key, rid> — column-store narrow tuples
	Width32 = 32 // key, rid, 16-byte payload
	Width64 = 64 // key, rid, 48-byte payload
)

// KeySize is the size of the join key prefix of every tuple.
const KeySize = 8

// ValidWidth reports whether w is a supported tuple width.
func ValidWidth(w int) bool {
	return w == Width16 || w == Width32 || w == Width64
}

// Relation is a fixed-width tuple slab. The zero value is an empty
// relation of width 0 and is not usable; construct with New or View.
type Relation struct {
	width int
	data  []byte
}

// New allocates a relation of n tuples of the given width.
func New(width, n int) *Relation {
	if !ValidWidth(width) {
		panic(fmt.Sprintf("relation: invalid tuple width %d", width))
	}
	if n < 0 {
		panic("relation: negative tuple count")
	}
	return &Relation{width: width, data: make([]byte, n*width)}
}

// View wraps an existing byte slab as a relation without copying. The slab
// length must be a multiple of width.
func View(width int, data []byte) (*Relation, error) {
	if !ValidWidth(width) {
		return nil, fmt.Errorf("relation: invalid tuple width %d", width)
	}
	if len(data)%width != 0 {
		return nil, fmt.Errorf("relation: slab of %d bytes is not a multiple of width %d", len(data), width)
	}
	return &Relation{width: width, data: data}, nil
}

// Width returns the tuple width in bytes.
func (r *Relation) Width() int { return r.width }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	if r.width == 0 {
		return 0
	}
	return len(r.data) / r.width
}

// Size returns the total size in bytes.
func (r *Relation) Size() int { return len(r.data) }

// Bytes exposes the backing slab.
func (r *Relation) Bytes() []byte { return r.data }

// Key returns the join key of tuple i.
func (r *Relation) Key(i int) uint64 {
	return binary.LittleEndian.Uint64(r.data[i*r.width:])
}

// SetKey sets the join key of tuple i.
func (r *Relation) SetKey(i int, k uint64) {
	binary.LittleEndian.PutUint64(r.data[i*r.width:], k)
}

// RID returns the record id of tuple i.
func (r *Relation) RID(i int) uint64 {
	return binary.LittleEndian.Uint64(r.data[i*r.width+KeySize:])
}

// SetRID sets the record id of tuple i.
func (r *Relation) SetRID(i int, rid uint64) {
	binary.LittleEndian.PutUint64(r.data[i*r.width+KeySize:], rid)
}

// Tuple returns the raw bytes of tuple i (aliasing the slab).
func (r *Relation) Tuple(i int) []byte {
	return r.data[i*r.width : (i+1)*r.width]
}

// Slice returns a view of tuples [lo, hi) sharing the backing slab.
func (r *Relation) Slice(lo, hi int) *Relation {
	return &Relation{width: r.width, data: r.data[lo*r.width : hi*r.width]}
}

// Checksum returns the sum over all tuples of key+rid, mod 2^64. Join
// verification uses sums of per-match key/rid combinations; see
// ExpectedJoin in package datagen.
func (r *Relation) Checksum() uint64 {
	var sum uint64
	n := r.Len()
	for i := 0; i < n; i++ {
		sum += r.Key(i) + r.RID(i)
	}
	return sum
}

// Distributed is a relation horizontally fragmented across machines:
// Chunks[m] holds the tuples resident on machine m, as produced by the
// data loading phase of Section 6.1.1 (even distribution, range-partitioned
// record ids).
type Distributed struct {
	Chunks []*Relation
}

// Width returns the tuple width (all chunks agree).
func (d *Distributed) Width() int {
	if len(d.Chunks) == 0 {
		return 0
	}
	return d.Chunks[0].Width()
}

// Len returns the total number of tuples across chunks.
func (d *Distributed) Len() int {
	n := 0
	for _, c := range d.Chunks {
		n += c.Len()
	}
	return n
}

// Size returns the total byte size across chunks.
func (d *Distributed) Size() int {
	n := 0
	for _, c := range d.Chunks {
		n += c.Size()
	}
	return n
}

// Gather concatenates all chunks into a single relation (copying). Used by
// tests to compare distributed against single-machine execution.
func (d *Distributed) Gather() *Relation {
	out := New(d.Width(), d.Len())
	off := 0
	for _, c := range d.Chunks {
		off += copy(out.data[off:], c.data)
	}
	return out
}

// Fragment splits a relation into nm nearly equal contiguous chunks
// (copying), one per machine.
func Fragment(r *Relation, nm int) *Distributed {
	if nm <= 0 {
		panic("relation: non-positive machine count")
	}
	d := &Distributed{Chunks: make([]*Relation, nm)}
	n := r.Len()
	for m := 0; m < nm; m++ {
		lo := n * m / nm
		hi := n * (m + 1) / nm
		c := New(r.width, hi-lo)
		copy(c.data, r.data[lo*r.width:hi*r.width])
		d.Chunks[m] = c
	}
	return d
}
