package relation

import "fmt"

// CacheLine is the cache-line granularity the kernel layer stages and
// flushes at (see internal/radix's software write-combining scatter). All
// supported tuple widths divide it evenly.
const CacheLine = 64

// AlignedBytes returns a zeroed slice of n bytes whose first element is
// CacheLine-aligned. The write-combining kernels flush whole cache lines;
// aligning their destinations keeps every flush within a single line.
func AlignedBytes(n int) []byte {
	if n == 0 {
		return nil
	}
	b := make([]byte, n+CacheLine-1)
	off := alignOffset(b)
	return b[off : off+n : off+n]
}

// NewAligned allocates a relation of n tuples whose slab starts on a cache
// line. Partition kernels scatter into such relations so that full-line
// write-combining flushes never straddle two destination lines.
func NewAligned(width, n int) *Relation {
	if !ValidWidth(width) {
		panic(fmt.Sprintf("relation: invalid tuple width %d", width))
	}
	if n < 0 {
		panic("relation: negative tuple count")
	}
	return &Relation{width: width, data: AlignedBytes(n * width)}
}

// Aligned reports whether the relation's slab starts on a cache line.
// Empty relations are trivially aligned.
func (r *Relation) Aligned() bool {
	return len(r.data) == 0 || alignOffset(r.data) == 0
}
