package relation

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestAlignedBytes(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 4096, 100003} {
		b := AlignedBytes(n)
		if len(b) != n {
			t.Fatalf("AlignedBytes(%d): len = %d", n, len(b))
		}
		if n > 0 && alignOffset(b) != 0 {
			t.Errorf("AlignedBytes(%d): misaligned by %d bytes", n, alignOffset(b))
		}
		// The capacity is clipped: appending must not scribble into the
		// alignment padding of a sibling allocation.
		if cap(b) != n {
			t.Errorf("AlignedBytes(%d): cap = %d, want %d", n, cap(b), n)
		}
	}
}

func TestNewAligned(t *testing.T) {
	for _, width := range []int{Width16, Width32, Width64} {
		r := NewAligned(width, 100)
		if r.Len() != 100 || r.Width() != width {
			t.Fatalf("NewAligned(%d, 100): len=%d width=%d", width, r.Len(), r.Width())
		}
		if !r.Aligned() {
			t.Errorf("NewAligned(%d, 100) slab not cache-line aligned", width)
		}
		r.SetKey(99, 42)
		if r.Key(99) != 42 {
			t.Errorf("NewAligned relation not writable")
		}
	}
	if r := NewAligned(Width16, 0); r.Len() != 0 || !r.Aligned() {
		t.Errorf("empty aligned relation: len=%d aligned=%v", r.Len(), r.Aligned())
	}
}

func TestNewAlignedPanics(t *testing.T) {
	for _, tc := range []struct {
		width, n int
	}{{15, 4}, {Width16, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAligned(%d, %d) did not panic", tc.width, tc.n)
				}
			}()
			NewAligned(tc.width, tc.n)
		}()
	}
}

func TestCopyTuple(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []int{Width16, Width32, Width64} {
		src := make([]byte, width+8)
		dst := make([]byte, width+8)
		want := make([]byte, width+8)
		for trial := 0; trial < 50; trial++ {
			rng.Read(src)
			rng.Read(dst)
			copy(want, dst)
			// Copy at an arbitrary (possibly unaligned) offset.
			off := trial % 8
			CopyTuple(dst[off:], src[off:], width)
			copy(want[off:off+width], src[off:off+width])
			if !bytes.Equal(dst, want) {
				t.Fatalf("CopyTuple width %d off %d: dst mismatch", width, off)
			}
		}
	}
}

func TestCopyWords(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 8, 16, 64, 128, 1024} {
		src := make([]byte, n)
		rng.Read(src)
		dst := make([]byte, n+8)
		tail := dst[n:]
		guard := make([]byte, 8)
		copy(guard, tail)
		CopyWords(dst, src)
		if !bytes.Equal(dst[:n], src) {
			t.Fatalf("CopyWords(%d): payload mismatch", n)
		}
		if !bytes.Equal(tail, guard) {
			t.Fatalf("CopyWords(%d): wrote past len(src)", n)
		}
	}
}
