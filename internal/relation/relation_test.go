package relation

import (
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	r := New(Width16, 10)
	if r.Len() != 10 || r.Width() != 16 || r.Size() != 160 {
		t.Fatalf("bad dimensions: len=%d width=%d size=%d", r.Len(), r.Width(), r.Size())
	}
	for i := 0; i < 10; i++ {
		r.SetKey(i, uint64(i*7))
		r.SetRID(i, uint64(i*13))
	}
	for i := 0; i < 10; i++ {
		if r.Key(i) != uint64(i*7) || r.RID(i) != uint64(i*13) {
			t.Fatalf("tuple %d roundtrip failed", i)
		}
	}
}

func TestWideTuplePayload(t *testing.T) {
	for _, w := range []int{Width32, Width64} {
		r := New(w, 4)
		r.SetKey(2, 99)
		r.SetRID(2, 123)
		tup := r.Tuple(2)
		if len(tup) != w {
			t.Fatalf("width %d: tuple len %d", w, len(tup))
		}
		tup[w-1] = 0xAB // payload byte survives
		if r.Tuple(2)[w-1] != 0xAB {
			t.Fatal("payload not aliased")
		}
		if r.Key(2) != 99 || r.RID(2) != 123 {
			t.Fatal("header corrupted by payload write")
		}
	}
}

func TestInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid width")
		}
	}()
	New(17, 1)
}

func TestNegativeCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative count")
		}
	}()
	New(Width16, -1)
}

func TestView(t *testing.T) {
	buf := make([]byte, 64)
	r, err := View(Width16, buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 {
		t.Fatalf("len=%d", r.Len())
	}
	r.SetKey(0, 5)
	if buf[0] != 5 {
		t.Fatal("view does not alias")
	}
	if _, err := View(Width16, make([]byte, 15)); err == nil {
		t.Fatal("misaligned view should fail")
	}
	if _, err := View(5, buf); err == nil {
		t.Fatal("bad width view should fail")
	}
}

func TestSlice(t *testing.T) {
	r := New(Width16, 10)
	for i := 0; i < 10; i++ {
		r.SetKey(i, uint64(i))
	}
	s := r.Slice(3, 7)
	if s.Len() != 4 || s.Key(0) != 3 || s.Key(3) != 6 {
		t.Fatalf("bad slice: len=%d first=%d", s.Len(), s.Key(0))
	}
	s.SetKey(0, 100)
	if r.Key(3) != 100 {
		t.Fatal("slice does not alias parent")
	}
}

func TestChecksum(t *testing.T) {
	r := New(Width16, 3)
	r.SetKey(0, 1)
	r.SetRID(0, 2)
	r.SetKey(1, 3)
	r.SetRID(1, 4)
	r.SetKey(2, 5)
	r.SetRID(2, 6)
	if got := r.Checksum(); got != 21 {
		t.Fatalf("checksum = %d, want 21", got)
	}
}

func TestFragmentGatherRoundtrip(t *testing.T) {
	f := func(n uint8, nm uint8) bool {
		tuples := int(n)
		machines := int(nm)%8 + 1
		r := New(Width16, tuples)
		for i := 0; i < tuples; i++ {
			r.SetKey(i, uint64(i)*31+7)
			r.SetRID(i, uint64(i))
		}
		d := Fragment(r, machines)
		if len(d.Chunks) != machines {
			return false
		}
		if d.Len() != tuples || d.Width() != Width16 && tuples > 0 {
			return false
		}
		g := d.Gather()
		if g.Len() != tuples {
			return false
		}
		for i := 0; i < tuples; i++ {
			if g.Key(i) != r.Key(i) || g.RID(i) != r.RID(i) {
				return false
			}
		}
		// Chunk sizes are balanced within 1 tuple.
		min, max := tuples, 0
		for _, c := range d.Chunks {
			if c.Len() < min {
				min = c.Len()
			}
			if c.Len() > max {
				max = c.Len()
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentInvalidMachines(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fragment(New(Width16, 4), 0)
}

func TestDistributedEmpty(t *testing.T) {
	d := &Distributed{}
	if d.Width() != 0 || d.Len() != 0 || d.Size() != 0 {
		t.Fatal("empty distributed should be zero")
	}
}

func TestValidWidth(t *testing.T) {
	for _, w := range []int{16, 32, 64} {
		if !ValidWidth(w) {
			t.Fatalf("width %d should be valid", w)
		}
	}
	for _, w := range []int{0, 8, 15, 17, 128} {
		if ValidWidth(w) {
			t.Fatalf("width %d should be invalid", w)
		}
	}
}
