package tcpnet

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMeshValidation(t *testing.T) {
	if _, err := NewMesh(0, 1); err == nil {
		t.Fatal("zero machines should fail")
	}
	if _, err := NewMesh(2, 0); err == nil {
		t.Fatal("zero threads should fail")
	}
}

func TestSingleMachineMesh(t *testing.T) {
	m, err := NewMesh(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Endpoint(0).Receive(0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendReceiveRoundtrip(t *testing.T) {
	m, err := NewMesh(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	payload := []byte("tcp data plane payload")
	var got []byte
	var gotTag uint32
	done := make(chan error, 1)
	go func() {
		done <- m.Endpoint(1).Receive(uint64(len(payload)), func(tag uint32, p []byte) {
			gotTag = tag
			got = append([]byte(nil), p...)
		})
	}()
	if err := m.Endpoint(0).Send(0, 1, 0xCAFE, payload); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if gotTag != 0xCAFE || string(got) != string(payload) {
		t.Fatalf("roundtrip mismatch: tag=%x payload=%q", gotTag, got)
	}
}

func TestSendToSelfFails(t *testing.T) {
	m, err := NewMesh(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Endpoint(0).Send(0, 0, 0, []byte("x")); err == nil {
		t.Fatal("sending to self should fail (no connection)")
	}
}

func TestManySendersManyFrames(t *testing.T) {
	const machines, threads, frames, sz = 3, 2, 50, 1024
	m, err := NewMesh(machines, threads)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Every (machine, thread) sends `frames` frames to every peer; each
	// frame carries its sender in the tag and a pattern byte payload.
	perReceiver := uint64((machines - 1) * threads * frames * sz)
	var wg sync.WaitGroup
	var sums [machines]atomic.Uint64
	recvErrs := make([]error, machines)
	for r := 0; r < machines; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			recvErrs[r] = m.Endpoint(r).Receive(perReceiver, func(tag uint32, p []byte) {
				if len(p) != sz {
					t.Errorf("bad frame size %d", len(p))
					return
				}
				sender := byte(tag >> 8)
				for _, b := range p {
					if b != sender {
						t.Errorf("payload corruption: got %d want %d", b, sender)
						return
					}
				}
				sums[r].Add(uint64(len(p)))
			})
		}(r)
	}
	var sendWG sync.WaitGroup
	for a := 0; a < machines; a++ {
		for th := 0; th < threads; th++ {
			sendWG.Add(1)
			go func(a, th int) {
				defer sendWG.Done()
				buf := make([]byte, sz)
				for i := range buf {
					buf[i] = byte(a)
				}
				for f := 0; f < frames; f++ {
					for p := 0; p < machines; p++ {
						if p == a {
							continue
						}
						if err := m.Endpoint(a).Send(th, p, uint32(a)<<8, buf); err != nil {
							t.Errorf("send %d→%d: %v", a, p, err)
							return
						}
					}
				}
			}(a, th)
		}
	}
	sendWG.Wait()
	wg.Wait()
	for r := 0; r < machines; r++ {
		if recvErrs[r] != nil {
			t.Fatalf("receiver %d: %v", r, recvErrs[r])
		}
		if sums[r].Load() != perReceiver {
			t.Fatalf("receiver %d got %d bytes, want %d", r, sums[r].Load(), perReceiver)
		}
	}
}

func TestLargeFrame(t *testing.T) {
	m, err := NewMesh(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	payload := make([]byte, 1<<20)
	binary.LittleEndian.PutUint64(payload[1<<19:], 0xDEADBEEF)
	done := make(chan error, 1)
	var ok bool
	go func() {
		done <- m.Endpoint(1).Receive(uint64(len(payload)), func(tag uint32, p []byte) {
			ok = len(p) == 1<<20 && binary.LittleEndian.Uint64(p[1<<19:]) == 0xDEADBEEF
		})
	}()
	if err := m.Endpoint(0).Send(0, 1, 1, payload); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("large frame corrupted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	m, err := NewMesh(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close()
}
