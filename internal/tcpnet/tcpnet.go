// Package tcpnet is a real TCP/IP data plane for the distributed join —
// the reproduction of the paper's "network component using TCP/IP"
// (Section 6.1) on an actual kernel network stack (loopback sockets)
// instead of the emulated stream transport.
//
// Unlike the RDMA verbs layer, messages here cross the kernel boundary:
// every send is a syscall plus a copy into the socket buffer, and the
// receiver copies out of it — exactly the per-byte costs the paper
// attributes to the IPoIB implementation (Section 6.3 (ii) and (iii)).
//
// A Mesh connects n machines with one TCP connection per ordered
// (sender-thread, receiver) pair, mirroring the queue-pair topology of the
// RDMA data plane. Framing is length-prefixed with a 32-bit tag (the
// distributed join encodes the partition id and relation in it).
package tcpnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// frameHeader is the wire prefix of every message: payload length and tag.
const frameHeader = 8

// Mesh is a fully-connected TCP topology over the loopback interface.
type Mesh struct {
	endpoints []*Endpoint
	closed    bool
	mu        sync.Mutex
}

// Endpoint is one machine's view of the mesh.
type Endpoint struct {
	machine int
	// conns[thread][peer] is the sending connection of one worker thread
	// towards one peer machine (nil for peer == machine).
	conns [][]net.Conn
	// incoming connections, one per (remote machine, remote thread).
	accepted []net.Conn

	recvWG  sync.WaitGroup
	recvErr error
	errOnce sync.Once
}

// NewMesh wires machines×threads sender connections over loopback. It
// blocks until the full mesh is established.
func NewMesh(machines, threadsPerMachine int) (*Mesh, error) {
	if machines < 1 || threadsPerMachine < 1 {
		return nil, fmt.Errorf("tcpnet: invalid mesh %d×%d", machines, threadsPerMachine)
	}
	m := &Mesh{endpoints: make([]*Endpoint, machines)}
	for i := range m.endpoints {
		conns := make([][]net.Conn, threadsPerMachine)
		for t := range conns {
			conns[t] = make([]net.Conn, machines)
		}
		m.endpoints[i] = &Endpoint{machine: i, conns: conns}
	}
	if machines == 1 {
		return m, nil
	}

	listeners := make([]net.Listener, machines)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("tcpnet: listen: %w", err)
		}
		listeners[i] = l
		defer l.Close()
	}

	// Accept loops: each machine accepts (machines-1)×threads conns. The
	// dialer identifies itself with a 8-byte hello (machine, thread).
	type accepted struct {
		machine int
		conns   []net.Conn
		err     error
	}
	acceptDone := make(chan accepted, machines)
	for i, l := range listeners {
		go func(i int, l net.Listener) {
			want := (machines - 1) * threadsPerMachine
			conns := make([]net.Conn, 0, want)
			for len(conns) < want {
				c, err := l.Accept()
				if err != nil {
					acceptDone <- accepted{machine: i, err: err}
					return
				}
				conns = append(conns, c)
			}
			acceptDone <- accepted{machine: i, conns: conns}
		}(i, l)
	}

	// Dial every (sender machine, thread, peer) triple.
	var dialErr error
	for a := 0; a < machines; a++ {
		for t := 0; t < threadsPerMachine; t++ {
			for p := 0; p < machines; p++ {
				if p == a {
					continue
				}
				c, err := net.Dial("tcp", listeners[p].Addr().String())
				if err != nil {
					dialErr = err
					break
				}
				if tc, ok := c.(*net.TCPConn); ok {
					// The join ships 16 KB+ buffers; coalescing via Nagle
					// only adds latency here.
					_ = tc.SetNoDelay(true)
				}
				m.endpoints[a].conns[t][p] = c
			}
		}
	}
	for range listeners {
		acc := <-acceptDone
		if acc.err != nil && dialErr == nil {
			dialErr = acc.err
		}
		m.endpoints[acc.machine].accepted = acc.conns
	}
	if dialErr != nil {
		m.Close()
		return nil, fmt.Errorf("tcpnet: dial: %w", dialErr)
	}
	return m, nil
}

// Endpoint returns machine i's endpoint.
func (m *Mesh) Endpoint(i int) *Endpoint { return m.endpoints[i] }

// Close tears all connections down.
func (m *Mesh) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	for _, ep := range m.endpoints {
		if ep == nil {
			continue
		}
		for _, row := range ep.conns {
			for _, c := range row {
				if c != nil {
					c.Close()
				}
			}
		}
		for _, c := range ep.accepted {
			c.Close()
		}
	}
}

// Send ships payload with the given tag to peer on thread t's connection.
// It returns once the kernel accepted the bytes (copy semantics: payload
// is reusable immediately — the copy the paper charges TCP for).
func (ep *Endpoint) Send(t, peer int, tag uint32, payload []byte) error {
	c := ep.conns[t][peer]
	if c == nil {
		return fmt.Errorf("tcpnet: no connection %d/%d→%d", ep.machine, t, peer)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], tag)
	if _, err := c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.Write(payload)
	return err
}

// Receive runs one reader goroutine per incoming connection, invoking
// handle for every frame (from the reader goroutine; handle must be
// thread-safe). It returns once total payload bytes have been delivered
// on this endpoint, or on the first error.
func (ep *Endpoint) Receive(total uint64, handle func(tag uint32, payload []byte)) error {
	if total == 0 || len(ep.accepted) == 0 {
		return nil
	}
	var received struct {
		mu   sync.Mutex
		n    uint64
		done chan struct{}
	}
	received.done = make(chan struct{})
	for _, c := range ep.accepted {
		ep.recvWG.Add(1)
		go func(c net.Conn) {
			defer ep.recvWG.Done()
			buf := make([]byte, 64<<10)
			var hdr [frameHeader]byte
			for {
				if _, err := io.ReadFull(c, hdr[:]); err != nil {
					// Peer done or endpoint closing.
					return
				}
				n := binary.LittleEndian.Uint32(hdr[0:])
				tag := binary.LittleEndian.Uint32(hdr[4:])
				if int(n) > len(buf) {
					buf = make([]byte, n)
				}
				if _, err := io.ReadFull(c, buf[:n]); err != nil {
					ep.errOnce.Do(func() { ep.recvErr = err; close(received.done) })
					return
				}
				handle(tag, buf[:n])
				received.mu.Lock()
				received.n += uint64(n)
				fin := received.n >= total
				received.mu.Unlock()
				if fin {
					ep.errOnce.Do(func() { close(received.done) })
					return
				}
			}
		}(c)
	}
	<-received.done
	return ep.recvErr
}
