package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPostDelivers(t *testing.T) {
	f := New(Config{})
	defer f.Close()
	a := f.AddNode()
	b := f.AddNode()

	done := make(chan int, 1)
	if err := a.Post(b.ID(), 128, func() { done <- 128 }); err != nil {
		t.Fatalf("Post: %v", err)
	}
	select {
	case n := <-done:
		if n != 128 {
			t.Fatalf("got %d, want 128", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delivery timed out")
	}
}

func TestFIFOOrderPerPair(t *testing.T) {
	f := New(Config{})
	defer f.Close()
	a := f.AddNode()
	b := f.AddNode()

	const n = 10000
	var mu sync.Mutex
	var got []int
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		if err := a.Post(b.ID(), 8, func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			wg.Done()
		}); err != nil {
			t.Fatalf("Post %d: %v", i, err)
		}
	}
	wg.Wait()
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery %d out of order: got %d", i, v)
		}
	}
}

func TestConcurrentPosters(t *testing.T) {
	f := New(Config{})
	defer f.Close()
	const nodes = 6
	ns := make([]*Node, nodes)
	for i := range ns {
		ns[i] = f.AddNode()
	}
	var count atomic.Int64
	var wg sync.WaitGroup
	const per = 500
	for i := 0; i < nodes; i++ {
		for j := 0; j < nodes; j++ {
			if i == j {
				continue
			}
			wg.Add(1)
			go func(src, dst int) {
				defer wg.Done()
				var inner sync.WaitGroup
				inner.Add(per)
				for k := 0; k < per; k++ {
					if err := ns[src].Post(ns[dst].ID(), 64, func() {
						count.Add(1)
						inner.Done()
					}); err != nil {
						t.Errorf("Post: %v", err)
						inner.Done()
					}
				}
				inner.Wait()
			}(i, j)
		}
	}
	wg.Wait()
	want := int64(nodes * (nodes - 1) * per)
	if count.Load() != want {
		t.Fatalf("delivered %d, want %d", count.Load(), want)
	}
	s := f.Stats()
	if s.Messages != uint64(want) {
		t.Fatalf("stats messages %d, want %d", s.Messages, want)
	}
	if s.Bytes != uint64(want)*64 {
		t.Fatalf("stats bytes %d, want %d", s.Bytes, uint64(want)*64)
	}
}

func TestPostAfterCloseFails(t *testing.T) {
	f := New(Config{})
	a := f.AddNode()
	b := f.AddNode()
	f.Close()
	if err := a.Post(b.ID(), 1, func() {}); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestPostUnknownDestination(t *testing.T) {
	f := New(Config{})
	defer f.Close()
	a := f.AddNode()
	if err := a.Post(42, 1, func() {}); err == nil {
		t.Fatal("expected error for unknown destination")
	}
	if err := a.Post(0, -1, func() {}); err == nil {
		t.Fatal("expected error for negative size")
	}
}

func TestThrottledBandwidth(t *testing.T) {
	// 1 MB at 10 MB/s should take ~100ms.
	f := New(Config{EgressBandwidth: 10e6})
	defer f.Close()
	a := f.AddNode()
	b := f.AddNode()
	start := time.Now()
	done := make(chan struct{})
	if err := a.Post(b.ID(), 1<<20, func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	<-done
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Fatalf("throttled delivery too fast: %v", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("throttled delivery too slow: %v", elapsed)
	}
}

func TestEgressSharedAcrossDestinations(t *testing.T) {
	// Two 0.5 MB transfers to different destinations share one 10 MB/s
	// egress link, so together they need ~100ms, not ~50ms.
	f := New(Config{EgressBandwidth: 10e6})
	defer f.Close()
	a := f.AddNode()
	b := f.AddNode()
	c := f.AddNode()
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	if err := a.Post(b.ID(), 1<<19, func() { wg.Done() }); err != nil {
		t.Fatal(err)
	}
	if err := a.Post(c.ID(), 1<<19, func() { wg.Done() }); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Fatalf("shared egress not serialised: %v", elapsed)
	}
}

func TestNodeLookup(t *testing.T) {
	f := New(Config{})
	defer f.Close()
	a := f.AddNode()
	if f.Node(a.ID()) != a {
		t.Fatal("Node lookup failed")
	}
	if f.Node(-1) != nil || f.Node(99) != nil {
		t.Fatal("out-of-range lookup should return nil")
	}
	if f.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", f.NumNodes())
	}
}

func TestCloseIdempotent(t *testing.T) {
	f := New(Config{})
	f.AddNode()
	f.Close()
	f.Close()
}

func TestConfigThrottled(t *testing.T) {
	if (Config{}).Throttled() {
		t.Fatal("zero config should not be throttled")
	}
	if !(Config{EgressBandwidth: 1}).Throttled() {
		t.Fatal("egress config should be throttled")
	}
	if !(Config{BaseLatency: time.Millisecond}).Throttled() {
		t.Fatal("latency config should be throttled")
	}
}
