package fabric

import (
	"sync"
	"time"

	"rackjoin/internal/metrics"
)

// meter is a shared-link rate limiter. Each reservation serialises behind
// earlier reservations on the same meter, modelling a FIFO link of fixed
// bandwidth: the caller is told how long to wait until its transfer would
// have drained through the link.
type meter struct {
	mu        sync.Mutex
	bytesPerS float64
	nextFree  time.Time
	// queueWait, when non-nil, records how long each reservation spent
	// queued behind earlier traffic on the link (excluding its own
	// serialisation time) — the head-of-line blocking a congested link
	// inflicts.
	queueWait *metrics.Histogram
}

func newMeter(bytesPerSecond float64, queueWait *metrics.Histogram) *meter {
	return &meter{bytesPerS: bytesPerSecond, queueWait: queueWait}
}

// reserve books size bytes on the link and returns how long the caller
// must wait (from now) for the transfer to complete. A non-positive
// bandwidth means an unthrottled link: no wait, no queueing.
func (m *meter) reserve(size int) time.Duration {
	if m.bytesPerS <= 0 {
		return 0
	}
	dur := time.Duration(float64(size) / m.bytesPerS * float64(time.Second))
	now := time.Now()
	m.mu.Lock()
	start := m.nextFree
	if start.Before(now) {
		start = now
	}
	end := start.Add(dur)
	m.nextFree = end
	m.mu.Unlock()
	m.queueWait.ObserveDuration(start.Sub(now))
	return end.Sub(now)
}
