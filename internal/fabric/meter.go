package fabric

import (
	"sync"
	"time"
)

// meter is a shared-link rate limiter. Each reservation serialises behind
// earlier reservations on the same meter, modelling a FIFO link of fixed
// bandwidth: the caller is told how long to wait until its transfer would
// have drained through the link.
type meter struct {
	mu        sync.Mutex
	bytesPerS float64
	nextFree  time.Time
}

func newMeter(bytesPerSecond float64) *meter {
	return &meter{bytesPerS: bytesPerSecond}
}

// reserve books size bytes on the link and returns how long the caller
// must wait (from now) for the transfer to complete.
func (m *meter) reserve(size int) time.Duration {
	dur := time.Duration(float64(size) / m.bytesPerS * float64(time.Second))
	now := time.Now()
	m.mu.Lock()
	start := m.nextFree
	if start.Before(now) {
		start = now
	}
	end := start.Add(dur)
	m.nextFree = end
	m.mu.Unlock()
	return end.Sub(now)
}
