// Package fabric implements the byte-moving network substrate underneath
// the simulated RDMA verbs layer (package rdma).
//
// A Fabric connects a set of Nodes (one per simulated machine). A message
// posted on a node is delivered to its destination asynchronously on a
// dedicated per-direction delivery lane, preserving FIFO order between any
// ordered pair of nodes. The delivery callback runs on the lane goroutine,
// which plays the role of the destination host channel adapter (HCA): it
// performs the actual memory copies of RDMA operations.
//
// The fabric can optionally throttle per-node egress and ingress bandwidth
// so that network-bound behaviour (QDR vs FDR ordering, interleaving
// benefits) is observable in real time at small scale. With throttling
// disabled (the default) deliveries are immediate, which is what unit tests
// and correctness-oriented benchmarks use.
package fabric

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rackjoin/internal/metrics"
)

// NodeID identifies a node within a fabric. IDs are dense and start at 0.
type NodeID int

// Config controls the behaviour of a Fabric.
type Config struct {
	// EgressBandwidth caps the total outbound rate of every node in
	// bytes/second. Zero disables egress throttling.
	EgressBandwidth float64
	// IngressBandwidth caps the total inbound rate of every node in
	// bytes/second. Zero disables ingress throttling.
	IngressBandwidth float64
	// BaseLatency is added to every delivery (propagation + switching).
	BaseLatency time.Duration
	// PerMessage models fixed per-message processing cost at the HCA.
	PerMessage time.Duration
	// Metrics, when non-nil, receives per-node link telemetry: the
	// fabric_link_queue_seconds histogram records how long each transfer
	// queued behind earlier traffic on a throttled link.
	Metrics *metrics.Registry
}

// Throttled reports whether any rate or latency limit is configured.
func (c Config) Throttled() bool {
	return c.EgressBandwidth > 0 || c.IngressBandwidth > 0 ||
		c.BaseLatency > 0 || c.PerMessage > 0
}

// ErrClosed is returned when posting to a closed fabric.
var ErrClosed = errors.New("fabric: closed")

// Fabric is an in-process network connecting a fixed set of nodes.
type Fabric struct {
	cfg Config

	// flt is the live fault-injection plan (faults.go); retransmits
	// counts deliveries the drop fault forced onto the wire twice.
	flt         faultPlan
	retransmits atomic.Uint64

	mu     sync.Mutex
	nodes  []*Node
	closed bool
	wg     sync.WaitGroup
}

// New creates an empty fabric with the given configuration.
func New(cfg Config) *Fabric {
	return &Fabric{cfg: cfg}
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// AddNode creates and registers a new node.
func (f *Fabric) AddNode() *Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		panic("fabric: AddNode on closed fabric")
	}
	n := &Node{
		f:     f,
		id:    NodeID(len(f.nodes)),
		lanes: make(map[NodeID]*lane),
	}
	linkHist := func(dir string) *metrics.Histogram {
		return f.cfg.Metrics.Histogram("fabric_link_queue_seconds",
			metrics.L("node", strconv.Itoa(int(n.id))), metrics.L("dir", dir))
	}
	if f.cfg.EgressBandwidth > 0 {
		n.egress = newMeter(f.cfg.EgressBandwidth, linkHist("egress"))
	}
	if f.cfg.IngressBandwidth > 0 {
		n.ingress = newMeter(f.cfg.IngressBandwidth, linkHist("ingress"))
	}
	n.retx = f.cfg.Metrics.Counter("fabric_retransmits_total",
		metrics.L("node", strconv.Itoa(int(n.id))))
	f.nodes = append(f.nodes, n)
	return n
}

// Node returns the node with the given id, or nil.
func (f *Fabric) Node(id NodeID) *Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	if int(id) < 0 || int(id) >= len(f.nodes) {
		return nil
	}
	return f.nodes[id]
}

// NumNodes returns the number of registered nodes.
func (f *Fabric) NumNodes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.nodes)
}

// Close drains all in-flight deliveries and stops the lane goroutines.
// Posting after Close returns ErrClosed.
func (f *Fabric) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	nodes := f.nodes
	f.mu.Unlock()
	for _, n := range nodes {
		n.close()
	}
	f.wg.Wait()
}

// Stats aggregates delivery counters across all nodes.
func (f *Fabric) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	var s Stats
	for _, n := range f.nodes {
		ns := n.Stats()
		s.Messages += ns.Messages
		s.Bytes += ns.Bytes
	}
	return s
}

// Stats holds message/byte counters.
type Stats struct {
	Messages uint64
	Bytes    uint64
}

// Node is one endpoint of the fabric (one simulated machine's HCA port).
type Node struct {
	f  *Fabric
	id NodeID

	egress  *meter
	ingress *meter
	retx    *metrics.Counter

	mu     sync.Mutex
	lanes  map[NodeID]*lane
	closed bool

	msgs  atomic.Uint64
	bytes atomic.Uint64
}

// ID returns the node's fabric-wide identifier.
func (n *Node) ID() NodeID { return n.id }

// Stats returns this node's egress counters.
func (n *Node) Stats() Stats {
	return Stats{Messages: n.msgs.Load(), Bytes: n.bytes.Load()}
}

// Post schedules fn to run at the destination after the (possibly
// throttled) transfer of size bytes. Deliveries between the same ordered
// pair of nodes run strictly in posting order; fn executes on the
// destination lane goroutine. size may be zero for pure control messages.
func (n *Node) Post(to NodeID, size int, fn func()) error {
	if size < 0 {
		return fmt.Errorf("fabric: negative size %d", size)
	}
	dst := n.f.Node(to)
	if dst == nil {
		return fmt.Errorf("fabric: unknown destination node %d", to)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	l, ok := n.lanes[to]
	if !ok {
		l = newLane(n.f, n, dst)
		n.lanes[to] = l
	}
	n.mu.Unlock()
	n.msgs.Add(1)
	n.bytes.Add(uint64(size))
	l.enqueue(delivery{size: size, fn: fn})
	return nil
}

func (n *Node) close() {
	n.mu.Lock()
	n.closed = true
	lanes := make([]*lane, 0, len(n.lanes))
	for _, l := range n.lanes {
		lanes = append(lanes, l)
	}
	n.mu.Unlock()
	for _, l := range lanes {
		l.close()
	}
}

type delivery struct {
	size int
	fn   func()
}

// lane is a FIFO delivery channel for one ordered (src, dst) pair. It uses
// an unbounded queue so that posting never blocks the caller: real HCAs
// bound their work queues at the verbs layer (see rdma.QP send queue
// depth), not at the wire.
type lane struct {
	f   *Fabric
	src *Node
	dst *Node
	// dropAcc is the lane's deterministic drop accumulator (faults.go);
	// touched only by the lane goroutine.
	dropAcc float64

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []delivery
	closed bool
}

func newLane(f *Fabric, src, dst *Node) *lane {
	l := &lane{f: f, src: src, dst: dst}
	l.cond = sync.NewCond(&l.mu)
	f.wg.Add(1)
	go l.run()
	return l
}

func (l *lane) enqueue(d delivery) {
	l.mu.Lock()
	l.queue = append(l.queue, d)
	l.mu.Unlock()
	l.cond.Signal()
}

func (l *lane) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Signal()
}

func (l *lane) run() {
	defer l.f.wg.Done()
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.queue) == 0 && l.closed {
			l.mu.Unlock()
			return
		}
		d := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()

		l.transfer(d)
	}
}

// transfer applies the configured rate limits and then runs the delivery
// callback. The egress meter of the source and the ingress meter of the
// destination are charged sequentially, modelling store-and-forward
// through the switch. Injected faults stretch the charges: a slow
// machine inflates the bytes booked on its shared port meter (its whole
// traffic backs up), a degraded link adds pair-local extra wire time,
// and a drop charges the wire a second time for the retransmission.
func (l *lane) transfer(d delivery) {
	linkF, srcF, dstF, drop := l.f.faultFactors(l.src.id, l.dst.id)
	times := 1
	if drop > 0 {
		l.dropAcc += drop
		if l.dropAcc >= 1 {
			l.dropAcc--
			times = 2
			l.f.noteRetransmit(l.src)
		}
	}
	var wait time.Duration
	for i := 0; i < times; i++ {
		wait += l.charge(d.size, linkF, srcF, dstF)
	}
	if wait > 0 {
		time.Sleep(wait)
	}
	d.fn()
}

// charge books one wire traversal of size bytes and returns its wait.
func (l *lane) charge(size int, linkF, srcF, dstF float64) time.Duration {
	cfg := l.f.cfg
	var wait time.Duration
	if cfg.PerMessage > 0 {
		// Per-message processing happens at both HCAs; the slower one
		// bounds it.
		f := srcF
		if dstF < f {
			f = dstF
		}
		wait += time.Duration(float64(cfg.PerMessage) / f)
	}
	if cfg.BaseLatency > 0 {
		// Propagation delay: faults do not change the speed of light.
		wait += cfg.BaseLatency
	}
	if l.src.egress != nil {
		wait += l.src.egress.reserve(scaleSize(size, srcF))
	}
	if l.dst.ingress != nil {
		wait += l.dst.ingress.reserve(scaleSize(size, dstF))
	}
	if linkF < 1 {
		// Pair-local degradation: the extra serialisation a cable running
		// at linkF× speed adds, charged against the healthy wire rate but
		// NOT booked on the shared meters — other pairs are unaffected.
		rate := cfg.EgressBandwidth
		if rate <= 0 {
			rate = cfg.IngressBandwidth
		}
		if rate > 0 {
			healthy := float64(size) / rate
			wait += time.Duration(healthy * (1/linkF - 1) * float64(time.Second))
		}
	}
	return wait
}

// scaleSize inflates a transfer's metered size by a slowdown factor.
func scaleSize(size int, factor float64) int {
	if factor >= 1 {
		return size
	}
	return int(float64(size) / factor)
}
