package fabric

import (
	"sync"
	"testing"
	"time"

	"rackjoin/internal/metrics"
)

// postAll sends n size-byte messages src→dst and waits for delivery.
func postAll(t *testing.T, src *Node, dst NodeID, n, size int) time.Duration {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(n)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := src.Post(dst, size, wg.Done); err != nil {
			t.Fatalf("Post: %v", err)
		}
	}
	wg.Wait()
	return time.Since(start)
}

func TestFaultValidation(t *testing.T) {
	f := New(Config{})
	defer f.Close()
	if err := f.DegradeLink(0, 1, 0); err == nil {
		t.Error("DegradeLink accepted factor 0")
	}
	if err := f.DegradeLink(0, 1, 1.5); err == nil {
		t.Error("DegradeLink accepted factor > 1")
	}
	if err := f.DegradeLink(2, 2, 0.5); err == nil {
		t.Error("DegradeLink accepted src == dst")
	}
	if err := f.SlowMachine(0, -1); err == nil {
		t.Error("SlowMachine accepted negative factor")
	}
	if err := f.DropBuffers(1); err == nil {
		t.Error("DropBuffers accepted rate 1")
	}
	if err := f.DropBuffers(0.5); err != nil {
		t.Errorf("DropBuffers rejected valid rate: %v", err)
	}
}

func TestDegradeLinkIsPairLocal(t *testing.T) {
	// 1 MB/s egress, 10 × 10 KB messages ≈ 100 ms clean. Degrading a→b
	// to 25% adds ~3× the clean wire time on that pair only.
	f := New(Config{EgressBandwidth: 1 << 20})
	defer f.Close()
	a, b, c := f.AddNode(), f.AddNode(), f.AddNode()

	clean := postAll(t, a, c.ID(), 10, 10<<10)
	if err := f.DegradeLink(a.ID(), b.ID(), 0.25); err != nil {
		t.Fatal(err)
	}
	faulted := postAll(t, a, b.ID(), 10, 10<<10)
	if faulted < 2*clean {
		t.Fatalf("degraded pair took %v, clean pair %v — want ≥ 2×", faulted, clean)
	}
	// The untouched pair keeps its healthy rate.
	if again := postAll(t, a, c.ID(), 10, 10<<10); again > 2*clean {
		t.Fatalf("clean pair slowed to %v after degrading another pair (clean %v)", again, clean)
	}
	f.ClearFaults()
	if cleared := postAll(t, a, b.ID(), 10, 10<<10); cleared > 2*clean {
		t.Fatalf("ClearFaults did not restore the pair: %v vs clean %v", cleared, clean)
	}
}

func TestSlowMachineInflatesItsTraffic(t *testing.T) {
	f := New(Config{EgressBandwidth: 1 << 20})
	defer f.Close()
	a, b := f.AddNode(), f.AddNode()

	clean := postAll(t, a, b.ID(), 10, 10<<10)
	if err := f.SlowMachine(a.ID(), 0.25); err != nil {
		t.Fatal(err)
	}
	faulted := postAll(t, a, b.ID(), 10, 10<<10)
	if faulted < 2*clean {
		t.Fatalf("slowed machine took %v, clean %v — want ≥ 2×", faulted, clean)
	}
}

func TestDropBuffersDeterministicRetransmits(t *testing.T) {
	reg := metrics.NewRegistry()
	f := New(Config{Metrics: reg})
	defer f.Close()
	a, b := f.AddNode(), f.AddNode()

	if err := f.DropBuffers(0.25); err != nil {
		t.Fatal(err)
	}
	postAll(t, a, b.ID(), 100, 1024)
	if got := f.Retransmits(); got != 25 {
		t.Fatalf("Retransmits() = %d, want exactly 25 of 100 at rate 0.25", got)
	}
	if got := reg.Counter("fabric_retransmits_total",
		metrics.L("node", "0")).Value(); got != 25 {
		t.Fatalf("fabric_retransmits_total{node=0} = %d, want 25", got)
	}
	// Delivery is delayed, never suppressed: all 100 callbacks ran
	// (postAll would have hung otherwise) and FIFO order held.
}

func TestFaultsNoOpOnHealthyPairs(t *testing.T) {
	f := New(Config{})
	defer f.Close()
	a, b := f.AddNode(), f.AddNode()
	if err := f.DegradeLink(b.ID(), a.ID(), 0.1); err != nil {
		t.Fatal(err)
	}
	// Unthrottled fabric, unfaulted direction: delivery stays immediate.
	if d := postAll(t, a, b.ID(), 1000, 64); d > 2*time.Second {
		t.Fatalf("healthy direction took %v on an unthrottled fabric", d)
	}
}
