package fabric

import (
	"fmt"
	"sync"
)

// faultPlan holds a live fabric's injected degradations. All injection is
// delay-based: faults stretch transfer times (and, for drops, re-charge
// the wire), they never lose data — a faulted join still produces the
// correct result, it just produces it the way a rack with a failing
// component would. Factors are read on every delivery under an RLock;
// injection mid-run is safe.
type faultPlan struct {
	mu      sync.RWMutex
	link    map[[2]NodeID]float64
	machine map[NodeID]float64
	drop    float64
}

// DegradeLink throttles the directed link src→dst to factor (0 < factor
// ≤ 1) of its healthy serialisation rate: each delivery on the pair
// waits the extra wire time a cable running at factor× speed would take.
// The extra wait is pair-local — traffic between other pairs sharing
// src's egress port is unaffected, which is what distinguishes a bad
// cable from a slow machine. The fault is observable only on a fabric
// with a configured bandwidth (an unthrottled fabric has no wire time to
// stretch).
func (f *Fabric) DegradeLink(src, dst NodeID, factor float64) error {
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("fabric: DegradeLink factor %v outside (0, 1]", factor)
	}
	if src == dst {
		return fmt.Errorf("fabric: DegradeLink src == dst (%d)", src)
	}
	f.flt.mu.Lock()
	if f.flt.link == nil {
		f.flt.link = make(map[[2]NodeID]float64)
	}
	f.flt.link[[2]NodeID{src, dst}] = factor
	f.flt.mu.Unlock()
	return nil
}

// SlowMachine throttles node id's HCA to factor (0 < factor ≤ 1) of its
// healthy speed: every transfer it sends or receives charges its shared
// port meter with 1/factor the bytes, so the machine's whole traffic —
// and everyone queueing behind it — slows down, the shape of a
// thermally-throttled or contended host.
func (f *Fabric) SlowMachine(id NodeID, factor float64) error {
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("fabric: SlowMachine factor %v outside (0, 1]", factor)
	}
	f.flt.mu.Lock()
	if f.flt.machine == nil {
		f.flt.machine = make(map[NodeID]float64)
	}
	f.flt.machine[id] = factor
	f.flt.mu.Unlock()
	return nil
}

// DropBuffers makes the fabric "lose" rate (0 ≤ rate < 1) of all
// transfers: every 1/rate-th delivery on each lane is charged for the
// wire twice (the retransmission) and counted in Retransmits and the
// fabric_retransmits_total{node} counter. Selection is a deterministic
// per-lane accumulator, not a coin flip, so runs are reproducible.
func (f *Fabric) DropBuffers(rate float64) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("fabric: DropBuffers rate %v outside [0, 1)", rate)
	}
	f.flt.mu.Lock()
	f.flt.drop = rate
	f.flt.mu.Unlock()
	return nil
}

// ClearFaults removes every injected fault.
func (f *Fabric) ClearFaults() {
	f.flt.mu.Lock()
	f.flt.link, f.flt.machine, f.flt.drop = nil, nil, 0
	f.flt.mu.Unlock()
}

// Retransmits returns how many deliveries the drop fault has forced onto
// the wire a second time.
func (f *Fabric) Retransmits() uint64 { return f.retransmits.Load() }

// faultFactors returns the link and machine slowdown factors governing
// one delivery (1 when healthy) and the configured drop rate.
func (f *Fabric) faultFactors(src, dst NodeID) (link, machSrc, machDst, drop float64) {
	link, machSrc, machDst = 1, 1, 1
	f.flt.mu.RLock()
	if f.flt.link != nil {
		if v, ok := f.flt.link[[2]NodeID{src, dst}]; ok {
			link = v
		}
	}
	if f.flt.machine != nil {
		if v, ok := f.flt.machine[src]; ok {
			machSrc = v
		}
		if v, ok := f.flt.machine[dst]; ok {
			machDst = v
		}
	}
	drop = f.flt.drop
	f.flt.mu.RUnlock()
	return link, machSrc, machDst, drop
}

// noteRetransmit counts one forced retransmission on src's egress.
func (f *Fabric) noteRetransmit(src *Node) {
	f.retransmits.Add(1)
	src.retx.Inc()
}
