package fabric

import (
	"sync"
	"testing"
	"time"

	"rackjoin/internal/metrics"
)

// TestMeterNonPositiveBandwidth is the regression test for the +Inf/NaN
// durations a zero or negative bandwidth used to produce (float division
// overflowing time.Duration): non-positive bandwidth now means an
// unthrottled link.
func TestMeterNonPositiveBandwidth(t *testing.T) {
	for _, bw := range []float64{0, -1} {
		m := newMeter(bw, nil)
		for i := 0; i < 3; i++ {
			if d := m.reserve(1 << 30); d != 0 {
				t.Fatalf("bandwidth %g: reserve returned %v, want 0", bw, d)
			}
		}
		if !m.nextFree.IsZero() {
			t.Fatalf("bandwidth %g: unthrottled meter advanced nextFree", bw)
		}
	}
}

func TestMeterSerialises(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Histogram("queue")
	m := newMeter(1e6, h) // 1 MB/s
	d1 := m.reserve(100_000)
	d2 := m.reserve(100_000)
	// Each transfer takes 100 ms; the second queues behind the first.
	if d1 < 90*time.Millisecond || d1 > 200*time.Millisecond {
		t.Fatalf("first reservation %v, want ≈100ms", d1)
	}
	if d2 < d1+50*time.Millisecond {
		t.Fatalf("second reservation %v did not queue behind first (%v)", d2, d1)
	}
	if h.Count() != 2 {
		t.Fatalf("queue histogram count = %d, want 2", h.Count())
	}
	// The second reservation waited ≈100 ms in the queue.
	if h.Max() < 0.05 {
		t.Fatalf("queue histogram max = %gs, want ≥ 0.05s", h.Max())
	}
}

// TestLinkQueueMetricWiring checks a throttled fabric records queueing
// delay into the registry passed via Config.Metrics.
func TestLinkQueueMetricWiring(t *testing.T) {
	reg := metrics.NewRegistry()
	f := New(Config{EgressBandwidth: 1e6, Metrics: reg})
	defer f.Close()
	a, b := f.AddNode(), f.AddNode()
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		if err := a.Post(b.ID(), 50_000, func() { wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	var count uint64
	for _, s := range reg.Snapshot() {
		if s.Name == "fabric_link_queue_seconds" && s.Labels["dir"] == "egress" {
			count += s.Count
		}
	}
	if count != 2 {
		t.Fatalf("egress queue observations = %d, want 2", count)
	}
}
