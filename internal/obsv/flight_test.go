package obsv

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Note(0, "verb", "send", 0, 64) // must not panic
	if f.Snapshot() != nil {
		t.Fatal("nil recorder snapshot not nil")
	}
	if f.Dropped() != 0 {
		t.Fatal("nil recorder dropped not 0")
	}
}

func TestFlightRecorderRingOverwrite(t *testing.T) {
	f := NewFlightRecorder(2, 4)
	for i := 0; i < 10; i++ {
		f.Note(0, "verb", "send", i, 64)
	}
	f.Note(1, "abort", "boom", 0, 0)
	f.Note(5, "verb", "out of range", 0, 0) // dropped silently
	snap := f.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot = %d events, want 5 (ring of 4 + 1)", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatalf("snapshot out of sequence order: %+v", snap)
		}
	}
	// The ring kept the newest 4 of machine 0's 10 events.
	if snap[0].P != 6 {
		t.Fatalf("oldest retained event p = %d, want 6", snap[0].P)
	}
	if got := f.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	last := snap[len(snap)-1]
	if last.Machine != 1 || last.Kind != "abort" {
		t.Fatalf("newest event = %+v, want the abort", last)
	}
}

func TestFlightRecorderText(t *testing.T) {
	f := NewFlightRecorder(1, 2)
	f.Note(0, "pool_stall", "R pool empty", 3, 0)
	f.Note(0, "verb", "Send", 3, 4096)
	f.Note(0, "abort", "ctl overflow", 0, 0)
	var sb strings.Builder
	f.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"1 older events overwritten", "verb", "abort", "bytes=4096"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text dump missing %q:\n%s", want, out)
		}
	}
}

// TestFlightRecorderConcurrent hammers the recorder from many goroutines
// while /flightrec is being served mid-run; under -race it proves writers
// never tear against the HTTP snapshot path.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(4, 64)
	srv := httptest.NewServer(NewServer(Options{Flight: f}).Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for m := 0; m < 4; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Note(m, "verb", "Send", i%32, int64(i))
				f.Note(m, "steal", "from 2", 0, 0)
			}
		}(m)
	}
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/flightrec")
			if err != nil {
				t.Error(err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var dump struct {
				Dropped uint64        `json:"dropped"`
				Events  []FlightEvent `json:"events"`
			}
			if err := json.Unmarshal(body, &dump); err != nil {
				t.Errorf("mid-run /flightrec not valid JSON: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	if got, want := len(f.Snapshot()), 4*64; got != want {
		t.Fatalf("snapshot = %d, want %d (full rings)", got, want)
	}
	if got, want := f.Dropped(), uint64(4*(500*2-64)); got != want {
		t.Fatalf("dropped = %d, want %d", got, want)
	}
}
