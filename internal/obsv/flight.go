package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rackjoin/internal/metrics"
)

// FlightEvent is one structured entry of the flight recorder: a low-level
// incident (an RDMA verb posting, a pool stall, a scheduler steal, a
// readiness CAS outcome, a backoff transition) stamped with a global
// sequence number so per-machine rings can be merged into one timeline.
type FlightEvent struct {
	Seq     uint64        `json:"seq"`
	At      time.Duration `json:"at"`
	Machine int           `json:"machine"`
	// Kind is the event class: "verb", "pool_stall", "steal", "inject",
	// "spill", "ready", "eop", "backoff", "abort", "netsched" (a
	// communication-schedule round transition), "resize" (an adaptive
	// transfer-budget change).
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
	P      int    `json:"p,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`
}

// flightRing is one machine's fixed-size event ring. Writes overwrite the
// oldest entry once full; total counts every write so drops are visible.
type flightRing struct {
	mu    sync.Mutex
	buf   []FlightEvent
	total uint64
}

// FlightRecorder is an always-on, fixed-footprint recorder of low-level
// events leading up to "now": a black box for the join. Each machine owns
// a private ring so hot-path writes contend only with same-machine
// writers; a shared atomic sequence stitches the rings into one causally
// ordered timeline at snapshot time. Note is nil-safe and wait-free apart
// from the per-machine mutex, so it can be called from verb-posting and
// scheduler hot paths.
type FlightRecorder struct {
	epoch time.Time
	seq   atomic.Uint64
	rings []flightRing
	cap   int
	// drops, when attached, holds one flightrec_dropped_total{machine}
	// counter per ring, bumped on every overwrite. The slice is published
	// atomically so AttachMetrics is safe while Note runs hot.
	drops atomic.Pointer[[]*metrics.Counter]
}

// DefaultFlightEvents is the per-machine ring capacity used by callers
// that do not size the recorder explicitly.
const DefaultFlightEvents = 512

// NewFlightRecorder builds a recorder with one ring of perMachine entries
// for each of machines rings. perMachine <= 0 selects
// DefaultFlightEvents.
func NewFlightRecorder(machines, perMachine int) *FlightRecorder {
	if machines < 1 {
		machines = 1
	}
	if perMachine <= 0 {
		perMachine = DefaultFlightEvents
	}
	return &FlightRecorder{
		epoch: time.Now(),
		rings: make([]flightRing, machines),
		cap:   perMachine,
	}
}

// Note records one event on machine's ring. It is safe on a nil recorder
// (the disabled state) and from any goroutine.
func (f *FlightRecorder) Note(machine int, kind, detail string, p int, bytes int64) {
	if f == nil || machine < 0 || machine >= len(f.rings) {
		return
	}
	ev := FlightEvent{
		Seq:     f.seq.Add(1),
		At:      time.Since(f.epoch),
		Machine: machine,
		Kind:    kind,
		Detail:  detail,
		P:       p,
		Bytes:   bytes,
	}
	r := &f.rings[machine]
	r.mu.Lock()
	overwrote := false
	if len(r.buf) < f.cap {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.total%uint64(f.cap)] = ev
		overwrote = true
	}
	r.total++
	r.mu.Unlock()
	if overwrote {
		if cs := f.drops.Load(); cs != nil {
			(*cs)[machine].Inc()
		}
	}
}

// AttachMetrics exports the recorder's ring overwrites as a
// flightrec_dropped_total{machine} counter on reg, so sizing problems
// (a ring too small for the run's event rate) are visible in the metric
// plane instead of only at dump time. Safe to call while Note runs.
func (f *FlightRecorder) AttachMetrics(reg *metrics.Registry) {
	if f == nil || reg == nil {
		return
	}
	cs := make([]*metrics.Counter, len(f.rings))
	for m := range cs {
		cs[m] = reg.Counter("flightrec_dropped_total", metrics.L("machine", strconv.Itoa(m)))
	}
	f.drops.Store(&cs)
}

// Snapshot returns every retained event across all machines, merged in
// global sequence order (the order the events actually happened).
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	var out []FlightEvent
	for i := range f.rings {
		r := &f.rings[i]
		r.mu.Lock()
		out = append(out, r.buf...)
		r.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dropped returns how many events have been overwritten ring-wide: the
// difference between everything ever written and what Snapshot retains.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	var dropped uint64
	for i := range f.rings {
		r := &f.rings[i]
		r.mu.Lock()
		dropped += r.total - uint64(len(r.buf))
		r.mu.Unlock()
	}
	return dropped
}

// WriteJSON writes the merged timeline as one JSON object:
// {"dropped": N, "events": [...]}.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	snap := f.Snapshot()
	if snap == nil {
		snap = []FlightEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Dropped uint64        `json:"dropped"`
		Events  []FlightEvent `json:"events"`
	}{Dropped: f.Dropped(), Events: snap})
}

// WriteText writes the merged timeline as one line per event, oldest
// first — the shape dumped to stderr when a join aborts.
func (f *FlightRecorder) WriteText(w io.Writer) {
	snap := f.Snapshot()
	if dropped := f.Dropped(); dropped > 0 {
		fmt.Fprintf(w, "flight recorder: %d older events overwritten\n", dropped)
	}
	for _, ev := range snap {
		fmt.Fprintf(w, "%12s  m%-2d %-10s %s", ev.At.Round(time.Microsecond), ev.Machine, ev.Kind, ev.Detail)
		if ev.P != 0 {
			fmt.Fprintf(w, " p=%d", ev.P)
		}
		if ev.Bytes != 0 {
			fmt.Fprintf(w, " bytes=%d", ev.Bytes)
		}
		fmt.Fprintln(w)
	}
}
