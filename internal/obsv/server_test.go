package obsv

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rackjoin/internal/metrics"
	"rackjoin/internal/trace"
)

func get(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("rdma_bytes_sent_total", metrics.L("machine", "0")).Add(1024)
	reg.Gauge("phase_seconds", metrics.L("machine", "0"), metrics.L("phase", "histogram")).Set(0.5)

	rec := trace.New()
	end := rec.Span(0, "phase", "histogram")
	end(64)
	openEnd := rec.Span(1, "phase", "network partition") // left open: mid-run view
	defer openEnd(0)

	sam := NewSampler(reg, 10*time.Millisecond, nil)
	sam.Start()
	reg.Counter("rdma_bytes_sent_total", metrics.L("machine", "0")).Add(4096)
	sam.Stop()

	srv := NewServer(Options{Registry: reg, Trace: rec, Sampler: sam})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, body := get(t, ts.Client(), ts.URL+"/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: code %d body %q", code, body)
	}

	code, body := get(t, ts.Client(), ts.URL+"/metrics")
	if code != 200 || !strings.Contains(body, "rdma_bytes_sent_total") || !strings.Contains(body, "phase_seconds") {
		t.Errorf("/metrics text: code %d body %q", code, body)
	}

	code, body = get(t, ts.Client(), ts.URL+"/metrics?format=json")
	var samples []metrics.Sample
	if code != 200 {
		t.Fatalf("/metrics?format=json: code %d", code)
	}
	if err := json.Unmarshal([]byte(body), &samples); err != nil || len(samples) == 0 {
		t.Errorf("/metrics json: %v (%d samples)", err, len(samples))
	}

	code, body = get(t, ts.Client(), ts.URL+"/trace")
	if code != 200 {
		t.Fatalf("/trace: code %d", code)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Errorf("/trace: %v (%d events)", err, len(doc.TraceEvents))
	}
	if !strings.Contains(body, "network partition") {
		t.Error("/trace is missing the in-flight span (mid-run export)")
	}

	code, body = get(t, ts.Client(), ts.URL+"/samples")
	if code != 200 {
		t.Fatalf("/samples: code %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("/samples returned no records")
	}
	var rec0 SampleRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec0); err != nil {
		t.Errorf("/samples line 0: %v", err)
	}

	if code, _ := get(t, ts.Client(), ts.URL+"/residual"); code != 404 {
		t.Errorf("/residual before a verdict: code %d, want 404", code)
	}
	srv.SetResidual(&Residual{System: "test", TotalRatio: 1.0})
	code, body = get(t, ts.Client(), ts.URL+"/residual")
	if code != 200 || !strings.Contains(body, "total_ratio") {
		t.Errorf("/residual: code %d body %q", code, body)
	}

	if code, _ := get(t, ts.Client(), ts.URL+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}
}

func TestServerMissingBackends(t *testing.T) {
	ts := httptest.NewServer(NewServer(Options{}).Handler())
	defer ts.Close()
	for _, path := range []string{"/metrics", "/trace", "/samples", "/residual"} {
		if code, _ := get(t, ts.Client(), ts.URL+path); code != 404 {
			t.Errorf("%s with nil backend: code %d, want 404", path, code)
		}
	}
}

func TestServerStartClose(t *testing.T) {
	srv := NewServer(Options{Registry: metrics.NewRegistry()})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr() != addr {
		t.Errorf("Addr() = %q, want %q", srv.Addr(), addr)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("live server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("live /metrics: code %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still reachable after Close")
	}
}
