package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"rackjoin/internal/metrics"
)

func TestSamplerDeltasSumToTotal(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("netpass_bytes_shipped_total", metrics.L("partition", "0"))
	var sink bytes.Buffer
	s := NewSampler(reg, 10*time.Millisecond, &sink)
	s.Start()
	const total = 1000
	for i := 0; i < total; i++ {
		c.Inc()
		if i%100 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	s.Stop()

	recs := s.Records()
	if len(recs) == 0 {
		t.Fatal("sampler produced no records")
	}
	var sum float64
	for _, r := range recs {
		for _, smp := range r.Samples {
			if smp.Name == "netpass_bytes_shipped_total" {
				if smp.Value < 0 {
					t.Errorf("negative delta %g", smp.Value)
				}
				sum += smp.Value
			}
		}
	}
	if sum != total {
		t.Errorf("deltas sum to %g, want %d", sum, total)
	}

	// The JSONL sink carries the same records, one object per line.
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != len(recs) {
		t.Errorf("sink has %d lines, ring has %d records", len(lines), len(recs))
	}
	for i, line := range lines {
		var r SampleRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
	}
	// Elapsed offsets are monotonically non-decreasing.
	for i := 1; i < len(recs); i++ {
		if recs[i].ElapsedSeconds < recs[i-1].ElapsedSeconds {
			t.Errorf("elapsed went backwards: %g after %g", recs[i].ElapsedSeconds, recs[i-1].ElapsedSeconds)
		}
	}
}

func TestSamplerStopWithoutStart(t *testing.T) {
	s := NewSampler(metrics.NewRegistry(), time.Second, nil)
	s.Stop() // no-op, must not hang or panic
	var nilSampler *Sampler
	nilSampler.Start()
	nilSampler.Stop()
	if nilSampler.Records() != nil {
		t.Error("nil sampler returned records")
	}
}

func TestSamplerConcurrentWithWriters(t *testing.T) {
	// Run under -race: concurrent metric writers, a running sampler, and
	// reader endpoints all at once.
	reg := metrics.NewRegistry()
	s := NewSampler(reg, 10*time.Millisecond, nil)
	s.Start()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("c", metrics.L("w", string(rune('a'+w))))
			h := reg.Histogram("h")
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(0.5)
			}
		}(w)
	}
	deadline := time.After(60 * time.Millisecond)
	for {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			s.Stop()
			if len(s.Records()) == 0 {
				t.Fatal("no records under concurrency")
			}
			if err := s.WriteJSONL(&bytes.Buffer{}); err != nil {
				t.Fatal(err)
			}
			return
		default:
			_ = s.Records()
			time.Sleep(2 * time.Millisecond)
		}
	}
}
