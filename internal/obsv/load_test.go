package obsv_test

// The obsv server's contract is that observing a join never perturbs or
// breaks it: every endpoint must answer correctly while the join, the
// sampler, the flight recorder and the health engine are all writing.
// This test is the concurrent-load half of that contract, and the reason
// the package's CI row runs under -race.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"rackjoin"
)

func TestServerConcurrentLoadDuringJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("live-join load test")
	}
	const machines, cores = 4, 4
	c, err := rackjoin.NewCluster(machines, cores)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reg := c.Metrics()
	fr := rackjoin.NewFlightRecorder(machines, 256)
	tracer := rackjoin.NewTracer()
	eng := rackjoin.NewHealthEngine(rackjoin.HealthOptions{
		Machines: machines, Registry: reg, Flight: fr,
		Interval: 20 * time.Millisecond,
	})
	srv := rackjoin.NewObsvServer(rackjoin.ObsvOptions{
		Registry: reg, Trace: tracer, Flight: fr, Health: eng,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	eng.Start()
	defer eng.Stop()

	inner, outer := rackjoin.GenerateWorkload(rackjoin.WorkloadConfig{
		InnerTuples: 1 << 18, OuterTuples: 1 << 20, Seed: 7,
	}, machines)
	cfg := rackjoin.DefaultJoinConfig()
	cfg.Trace = tracer
	cfg.Flight = fr
	cfg.Metrics = reg

	joinDone := make(chan error, 1)
	go func() {
		// Two back-to-back joins keep telemetry flowing for the whole
		// hammering window.
		for i := 0; i < 2; i++ {
			res, err := rackjoin.Join(c, inner, outer, cfg)
			if err == nil && res.Matches == 0 {
				err = fmt.Errorf("join %d returned zero matches", i)
			}
			if err != nil {
				joinDone <- err
				return
			}
		}
		joinDone <- nil
	}()

	paths := []string{
		"/health", "/health?format=text",
		"/metrics", "/metrics?format=json",
		"/flightrec", "/flightrec?format=text",
	}
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				p := paths[(g+n)%len(paths)]
				resp, err := client.Get("http://" + addr + p)
				if err != nil {
					select {
					case errCh <- fmt.Errorf("GET %s: %w", p, err):
					default:
					}
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					select {
					case errCh <- fmt.Errorf("GET %s: status %d", p, resp.StatusCode):
					default:
					}
					return
				}
			}
		}(g)
	}

	if err := <-joinDone; err != nil {
		t.Errorf("join under observation load: %v", err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// After the dust settles /health must still serve valid JSON.
	resp, err := http.Get("http://" + addr + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep struct {
		Healthy     bool   `json:"healthy"`
		Machines    int    `json:"machines"`
		Evaluations uint64 `json:"evaluations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("/health is not valid JSON: %v", err)
	}
	if rep.Machines != machines || rep.Evaluations == 0 {
		t.Fatalf("implausible /health report: %+v", rep)
	}
}
