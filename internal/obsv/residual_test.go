package obsv

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"rackjoin/internal/metrics"
	"rackjoin/internal/model"
	"rackjoin/internal/phase"
	"rackjoin/internal/sim"
)

// TestResidualOnSimulatedFabric is the acceptance check of ISSUE 3: on
// the calibrated simulated fabric, every phase residual against the §5
// model must be finite and within a sane 0.1x–10x band, for both a QDR
// and an FDR deployment.
func TestResidualOnSimulatedFabric(t *testing.T) {
	cases := []struct {
		name     string
		net      model.Network
		machines int
	}{
		{"QDR 4 machines", model.QDR(), 4},
		{"FDR 4 machines", model.FDR(), 4},
		{"QDR 8 machines", model.QDR(), 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := sim.Config{
				Machines: tc.machines, Cores: 8, Net: tc.net,
				RTuples: 512 << 20, STuples: 512 << 20, TupleWidth: 16,
			}
			res, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reg := metrics.NewRegistry()
			msgs := uint64(res.RemoteMB * (1 << 20) / (64 << 10))
			verdict := ProfileResidual(reg, RunConfig{
				Machines: tc.machines, CoresPerMachine: 8, Net: tc.net,
				RTuples: 512 << 20, STuples: 512 << 20, TupleWidth: 16,
				Measured: res.Phases, PerMachine: res.PerMachine,
				PoolStalls: res.Stalls, Messages: msgs,
			})
			if len(verdict.Phases) != 4 {
				t.Fatalf("%d phase residuals, want 4", len(verdict.Phases))
			}
			for _, pr := range verdict.Phases {
				if math.IsNaN(pr.Ratio) || math.IsInf(pr.Ratio, 0) {
					t.Errorf("phase %s residual %v is not finite", pr.Phase, pr.Ratio)
				}
				if pr.Ratio < 0.1 || pr.Ratio > 10 {
					t.Errorf("phase %s residual %.3fx outside the 0.1x–10x band (predicted %.3fs, measured %.3fs)",
						pr.Phase, pr.Ratio, pr.PredictedSeconds, pr.MeasuredSeconds)
				}
			}
			if verdict.TotalRatio < 0.1 || verdict.TotalRatio > 10 {
				t.Errorf("total residual %.3fx outside the band", verdict.TotalRatio)
			}
			// The verdict is exported back into the registry.
			found := 0
			for _, s := range reg.Snapshot() {
				if s.Name == "model_residual_ratio" {
					found++
				}
			}
			if found != 5 { // four phases + total
				t.Errorf("registry has %d model_residual_ratio series, want 5", found)
			}
		})
	}
}

func TestResidualFromRegistryGauges(t *testing.T) {
	// With no Measured/PerMachine given, the profiler reconstructs the
	// per-machine breakdown from the phase_seconds gauges core records.
	reg := metrics.NewRegistry()
	set := func(m int, ph string, v float64) {
		reg.Gauge("phase_seconds", metrics.L("machine", machineLabel(m)), metrics.L("phase", ph)).Set(v)
	}
	set(0, "histogram", 0.1)
	set(0, "network_partition", 1.0)
	set(0, "local_partition", 0.3)
	set(0, "build_probe", 0.2)
	set(1, "histogram", 0.2) // machine 1 is the straggler
	set(1, "network_partition", 2.0)
	set(1, "local_partition", 0.4)
	set(1, "build_probe", 0.3)

	verdict := ProfileResidual(reg, RunConfig{
		Machines: 2, CoresPerMachine: 4, Net: model.QDR(),
		RTuples: 64 << 20, STuples: 64 << 20, TupleWidth: 16,
	})
	// Measured must be the per-phase max across machines.
	if got := verdict.Phases[1].MeasuredSeconds; got != 2.0 {
		t.Errorf("network_partition measured %g, want 2.0 (max across machines)", got)
	}
	if verdict.SlowestMachine != 1 {
		t.Errorf("slowest machine %d, want 1", verdict.SlowestMachine)
	}
	wantLag := 2.9 - (1.6+2.9)/2
	if math.Abs(verdict.StragglerLagSeconds-wantLag) > 1e-9 {
		t.Errorf("straggler lag %g, want %g", verdict.StragglerLagSeconds, wantLag)
	}
}

func machineLabel(m int) string { return string(rune('0' + m)) }

func TestResidualSkewProfile(t *testing.T) {
	reg := metrics.NewRegistry()
	// Partition 3 is hot: 8 MB vs 1 MB for the rest, shipped from two
	// machines (the profiler sums across senders).
	for m := 0; m < 2; m++ {
		ml := metrics.L("machine", machineLabel(m))
		reg.Counter("netpass_bytes_shipped_total", ml, metrics.L("partition", "3")).Add(4 << 20)
		reg.Counter("netpass_bytes_shipped_total", ml, metrics.L("partition", "1")).Add(512 << 10)
		reg.Counter("netpass_bytes_shipped_total", ml, metrics.L("partition", "2")).Add(512 << 10)
	}
	verdict := ProfileResidual(reg, RunConfig{
		Machines: 2, CoresPerMachine: 4, Net: model.QDR(),
		RTuples: 64 << 20, STuples: 64 << 20, TupleWidth: 16,
		Measured: phase.FromSeconds(0.1, 1, 0.3, 0.2),
	})
	if verdict.MaxPartitionBytes != 8<<20 {
		t.Errorf("max partition bytes %d, want %d", verdict.MaxPartitionBytes, 8<<20)
	}
	wantMean := float64(10<<20) / 3
	if math.Abs(verdict.MeanPartitionBytes-wantMean) > 1 {
		t.Errorf("mean partition bytes %g, want %g", verdict.MeanPartitionBytes, wantMean)
	}
	if verdict.SkewRatio < 2.3 || verdict.SkewRatio > 2.5 {
		t.Errorf("skew ratio %g, want ≈2.4", verdict.SkewRatio)
	}
	if len(verdict.TopPartitions) == 0 || verdict.TopPartitions[0].Partition != 3 {
		t.Errorf("top partitions %v, want partition 3 first", verdict.TopPartitions)
	}
	snap := reg.Snapshot()
	found := false
	for _, s := range snap {
		if s.Name == "skew_partition_max_mean_ratio" {
			found = true
		}
	}
	if !found {
		t.Error("gauge skew_partition_max_mean_ratio not exported")
	}
	// model_regime{predicted,observed} is one-hot over all four label
	// combinations, with the hot series matching the verdict.
	regimes, hot := 0, 0
	for _, s := range snap {
		if s.Name != "model_regime" {
			continue
		}
		regimes++
		if _, ok := s.Labels["predicted"]; !ok {
			t.Errorf("model_regime series missing predicted label: %v", s.Labels)
		}
		if s.Value == 1 {
			hot++
			if match := s.Labels["predicted"] == s.Labels["observed"]; match != verdict.RegimeMatch {
				t.Errorf("hot model_regime%v disagrees with RegimeMatch=%v", s.Labels, verdict.RegimeMatch)
			}
		}
	}
	if regimes != 4 || hot != 1 {
		t.Errorf("model_regime: %d series with %d hot, want 4 with exactly 1", regimes, hot)
	}
	// The straggler verdict names its machine in a label, not the value.
	found = false
	for _, s := range snap {
		if s.Name == "straggler_lag_seconds" {
			found = true
			if got := s.Labels["machine"]; got != strconv.Itoa(verdict.SlowestMachine) {
				t.Errorf("straggler_lag_seconds machine label %q, want %d", got, verdict.SlowestMachine)
			}
		}
	}
	if !found {
		t.Error("gauge straggler_lag_seconds not exported")
	}
}

func TestResidualDegenerateInputsFinite(t *testing.T) {
	// Zero workload, zero machines, no registry: everything must stay
	// finite and not panic (the profiler runs unconditionally at join
	// completion).
	verdict := ProfileResidual(nil, RunConfig{})
	for _, pr := range verdict.Phases {
		if math.IsNaN(pr.Ratio) || math.IsInf(pr.Ratio, 0) {
			t.Errorf("phase %s residual %v not finite", pr.Phase, pr.Ratio)
		}
	}
	if math.IsNaN(verdict.TotalRatio) || math.IsInf(verdict.TotalRatio, 0) {
		t.Errorf("total residual %v not finite", verdict.TotalRatio)
	}
}

func TestResidualReportRenders(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("netpass_bytes_shipped_total", metrics.L("partition", "0")).Add(1 << 20)
	verdict := ProfileResidual(reg, RunConfig{
		Machines: 4, CoresPerMachine: 8, Net: model.QDR(),
		RTuples: 256 << 20, STuples: 256 << 20, TupleWidth: 16,
		Measured:   phase.FromSeconds(0.5, 3, 1, 0.5),
		PerMachine: []phase.Times{phase.FromSeconds(0.5, 3, 1, 0.5), phase.FromSeconds(0.4, 2.5, 0.9, 0.4)},
		PoolStalls: 100, Messages: 1000,
	})
	var sb strings.Builder
	verdict.Report(&sb)
	out := sb.String()
	for _, want := range []string{"model residuals", "network_partition", "regime", "skew", "straggler"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
