package obsv

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"rackjoin/internal/metrics"
)

// SampleRecord is one sampler tick: the elapsed run time and the
// per-series registry deltas since the previous tick (metrics.Delta
// semantics — counters and histogram count/sum are per-interval flows,
// gauges are levels). A run emits one JSONL line per record, turning
// end-of-run totals like buffer-pool stalls, bytes shipped and RNR/CQ
// waits into run-long curves.
type SampleRecord struct {
	// ElapsedSeconds is the offset of this tick from the sampler's start.
	ElapsedSeconds float64 `json:"elapsed_s"`
	// IntervalSeconds is the measured length of the sampled interval.
	IntervalSeconds float64 `json:"interval_s"`
	// Samples are the registry deltas over the interval.
	Samples []metrics.Sample `json:"samples"`
}

// samplerKeep bounds the in-memory record ring served by /samples; at the
// default 500 ms interval it retains about 8.5 minutes of history.
const samplerKeep = 1024

// Sampler periodically snapshots a metrics registry and appends the
// deltas to a JSONL sink and an in-memory ring (served live by Server's
// /samples endpoint). A nil *Sampler is a valid no-op, matching the
// nil-safety convention of internal/metrics.
type Sampler struct {
	reg      *metrics.Registry
	interval time.Duration
	enc      *json.Encoder // optional JSONL sink

	mu    sync.Mutex
	prev  []metrics.Sample
	last  time.Time
	start time.Time
	ring  []SampleRecord
	stop  chan struct{}
	done  chan struct{}
}

// NewSampler creates a sampler over reg ticking at the given interval
// (minimum 10 ms; zero means 500 ms). w, when non-nil, receives one JSON
// record per line. Call Start to begin sampling and Stop to flush the
// final interval.
func NewSampler(reg *metrics.Registry, interval time.Duration, w io.Writer) *Sampler {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	s := &Sampler{reg: reg, interval: interval}
	if w != nil {
		s.enc = json.NewEncoder(w)
	}
	return s
}

// Start launches the background sampling goroutine. Starting an already
// started sampler is a no-op.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.start = time.Now()
	s.last = s.start
	s.prev = s.reg.Snapshot()
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop(s.stop, s.done)
}

func (s *Sampler) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sampleOnce()
		case <-stop:
			return
		}
	}
}

// sampleOnce takes one delta sample immediately.
func (s *Sampler) sampleOnce() {
	if s == nil {
		return
	}
	cur := s.reg.Snapshot()
	now := time.Now()
	s.mu.Lock()
	rec := SampleRecord{
		ElapsedSeconds:  now.Sub(s.start).Seconds(),
		IntervalSeconds: now.Sub(s.last).Seconds(),
		Samples:         metrics.Delta(s.prev, cur),
	}
	s.prev = cur
	s.last = now
	s.ring = append(s.ring, rec)
	if len(s.ring) > samplerKeep {
		s.ring = s.ring[len(s.ring)-samplerKeep:]
	}
	enc := s.enc
	s.mu.Unlock()
	if enc != nil {
		// The encoder is only ever driven from the sampling goroutine (or
		// from Stop after that goroutine exited), so no lock is held while
		// writing to what may be a slow file or pipe.
		_ = enc.Encode(rec)
	}
}

// Stop halts sampling after flushing one final interval so short runs
// still produce at least one record. Stopping a never-started or already
// stopped sampler is a no-op.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	s.sampleOnce()
}

// Records returns a copy of the retained sample records.
func (s *Sampler) Records() []SampleRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SampleRecord, len(s.ring))
	copy(out, s.ring)
	return out
}

// WriteJSONL writes the retained records to w, one JSON object per line —
// the same format the file sink receives.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range s.Records() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
