package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"rackjoin/internal/metrics"
	"rackjoin/internal/model"
	"rackjoin/internal/phase"
)

// phaseNames are the gauge label values internal/core records under
// phase_seconds, in paper order; they map 1:1 onto phase.Times fields.
var phaseNames = [4]string{"histogram", "network_partition", "local_partition", "build_probe"}

// stallRateNetworkBound is the back-pressure threshold of the observed
// regime verdict: when more than this fraction of buffer flushes had to
// wait for a completion before a buffer became free, the senders were
// producing faster than the network could drain — the operational
// definition of network-bound (Eq. 2's measured counterpart).
const stallRateNetworkBound = 0.05

// RunConfig describes one finished join run to the residual profiler:
// the deployment (fed into model.System), the workload (fed into
// model.Workload) and the measurements to score.
type RunConfig struct {
	// Machines and CoresPerMachine are N_M and N_C/M of the §5 model.
	Machines, CoresPerMachine int
	// Net is the interconnect to predict against (QDR/FDR/IPoIB, or a
	// custom Network whose Base matches a throttled fabric).
	Net model.Network
	// Cal overrides the calibration constants; an all-zero Cal means
	// model.DefaultCalibration, and individual zero rates are healed by
	// the model's sanitization.
	Cal model.Calibration
	// Passes overrides Cal.Passes when > 0 (convenience for callers that
	// know only whether a local pass ran).
	Passes int

	// RTuples, STuples and TupleWidth define |R| and |S|.
	RTuples, STuples int64
	TupleWidth       int

	// Measured is the cluster-level phase breakdown (max across machines,
	// phases being barrier-separated). If zero, it is reconstructed from
	// the registry's phase_seconds gauges.
	Measured phase.Times
	// PerMachine holds each machine's own breakdown; if empty it is
	// likewise reconstructed from phase_seconds{machine=…} gauges.
	PerMachine []phase.Times

	// PoolStalls and Messages are the back-pressure evidence for the
	// observed-regime verdict: stalled buffer acquisitions out of total
	// data-plane transfers.
	PoolStalls, Messages uint64
}

// PhaseResidual scores one phase: measured ÷ predicted.
type PhaseResidual struct {
	Phase            string  `json:"phase"`
	PredictedSeconds float64 `json:"predicted_s"`
	MeasuredSeconds  float64 `json:"measured_s"`
	// Ratio is measured ÷ predicted; 1.0 means the run matches the §5
	// model exactly, > 1 slower than predicted, < 1 faster. Always
	// finite: a zero prediction with a zero measurement scores 1, with a
	// non-zero measurement it scores 0 (unscorable).
	Ratio float64 `json:"ratio"`
}

// PartitionBytes is one partition's network-pass traffic (summed across
// sending machines).
type PartitionBytes struct {
	Partition int    `json:"partition"`
	Bytes     uint64 `json:"bytes"`
}

// Residual is the profiler's verdict on one run: per-phase residual
// ratios against the analytical model, the regime comparison, and the
// skew/straggler profile derived from the per-partition counters.
type Residual struct {
	System string          `json:"system"`
	Phases []PhaseResidual `json:"phases"`
	// TotalRatio is measured total ÷ predicted total.
	TotalRatio float64 `json:"total_ratio"`

	// OverlapSeconds is the pipelined-execution overlap (join work running
	// while the network pass was still draining), taken as the maximum of
	// the pipeline_overlap_seconds{machine} gauges. Zero for barrier runs.
	OverlapSeconds float64 `json:"overlap_s,omitempty"`
	// BusyPhases is the busy-time view of a pipelined run: Phases holds
	// the critical-path breakdown (phases sum to wall clock, overlapped
	// work charged to the network pass), BusyPhases re-adds the overlap to
	// local_partition/build_probe in proportion to their measured shares —
	// the per-phase work actually performed, which is what the §5 model
	// predicts. Empty when OverlapSeconds is zero.
	BusyPhases []PhaseResidual `json:"busy_phases,omitempty"`

	// Regime verdict: the model's Eq. 2 prediction vs what the run's
	// back-pressure counters say.
	PredictedNetworkBound bool `json:"predicted_network_bound"`
	ObservedNetworkBound  bool `json:"observed_network_bound"`
	RegimeMatch           bool `json:"regime_match"`
	// StallRate is pool stalls per data-plane message (the observed
	// regime's evidence).
	StallRate float64 `json:"stall_rate"`

	// Skew profile from the netpass_bytes_shipped_total counters.
	MaxPartitionBytes  uint64           `json:"max_partition_bytes"`
	MeanPartitionBytes float64          `json:"mean_partition_bytes"`
	SkewRatio          float64          `json:"skew_ratio"` // max ÷ mean
	TopPartitions      []PartitionBytes `json:"top_partitions,omitempty"`

	// Straggler profile from the per-machine breakdowns.
	SlowestMachine      int     `json:"slowest_machine"`
	StragglerLagSeconds float64 `json:"straggler_lag_s"` // slowest − mean total
}

// safeRatio returns measured ÷ predicted, kept finite: 1 when both are
// (near) zero, 0 when only the prediction is.
func safeRatio(measured, predicted float64) float64 {
	const eps = 1e-12
	if predicted > eps {
		r := measured / predicted
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return 0
		}
		return r
	}
	if measured <= eps {
		return 1
	}
	return 0
}

// ProfileResidual scores a finished run against the §5 analytical model
// and, when reg is non-nil, exports the verdict back into the registry as
// model_residual_ratio{phase}, model_predicted_seconds{phase}, the regime
// gauges and the skew/straggler gauges — so the residuals themselves are
// visible through /metrics and the sampler.
func ProfileResidual(reg *metrics.Registry, cfg RunConfig) *Residual {
	cal := cfg.Cal
	if cal == (model.Calibration{}) {
		// An all-zero calibration means "use the paper's constants", not a
		// one-pass zero-rate deployment (sanitize would clamp Passes to 1
		// and drop the local pass from the prediction).
		cal = model.DefaultCalibration()
	}
	sys := model.System{
		Machines:        cfg.Machines,
		CoresPerMachine: cfg.CoresPerMachine,
		Net:             cfg.Net,
		Cal:             cal,
	}
	if cfg.Passes > 0 {
		sys.Cal.Passes = cfg.Passes
	}
	w := model.WorkloadTuples(cfg.RTuples, cfg.STuples, cfg.TupleWidth)
	predicted := sys.Predict(w)

	perMachine := cfg.PerMachine
	if len(perMachine) == 0 {
		perMachine = phasesFromRegistry(reg)
	}
	measured := cfg.Measured
	if measured == (phase.Times{}) {
		for _, pt := range perMachine {
			measured = maxTimes(measured, pt)
		}
	}

	r := &Residual{System: sys.String()}
	ms, ps := measured.Seconds(), predicted.Seconds()
	for i, name := range phaseNames {
		r.Phases = append(r.Phases, PhaseResidual{
			Phase:            name,
			PredictedSeconds: ps[i],
			MeasuredSeconds:  ms[i],
			Ratio:            safeRatio(ms[i], ps[i]),
		})
	}
	r.TotalRatio = safeRatio(measured.Total().Seconds(), predicted.Total().Seconds())

	// Pipelined runs report the critical path in Phases; reconstruct the
	// busy-time view so the model (which predicts work, not exposure) is
	// also scored against what each phase actually executed.
	r.OverlapSeconds = overlapFromRegistry(reg)
	if r.OverlapSeconds > 0 {
		busy := ms
		if lb := ms[2] + ms[3]; lb > 0 {
			busy[2] += r.OverlapSeconds * ms[2] / lb
			busy[3] += r.OverlapSeconds * ms[3] / lb
		} else {
			busy[2] += r.OverlapSeconds / 2
			busy[3] += r.OverlapSeconds / 2
		}
		for i, name := range phaseNames {
			r.BusyPhases = append(r.BusyPhases, PhaseResidual{
				Phase:            name,
				PredictedSeconds: ps[i],
				MeasuredSeconds:  busy[i],
				Ratio:            safeRatio(busy[i], ps[i]),
			})
		}
	}

	r.PredictedNetworkBound = sys.NetworkBound()
	if cfg.Messages > 0 {
		r.StallRate = float64(cfg.PoolStalls) / float64(cfg.Messages)
	}
	// Two pieces of observed evidence, either sufficient: buffer-pool
	// back-pressure (threads stalled waiting for in-flight buffers), or a
	// measured network pass well above what the CPU-bound rate (Eq. 3,
	// infinite link) explains — interleaved senders can be link-limited
	// without stalling when the pool is deep enough.
	cpuBound := sys
	cpuBound.Net.Base = math.MaxFloat64 / 2
	cpuNet := cpuBound.Predict(w).NetworkPartition.Seconds()
	r.ObservedNetworkBound = r.StallRate > stallRateNetworkBound ||
		(cpuNet > 0 && ms[1] > 1.5*cpuNet)
	r.RegimeMatch = r.PredictedNetworkBound == r.ObservedNetworkBound

	r.profileSkew(reg)
	r.profileStragglers(perMachine)
	r.export(reg)
	return r
}

// phasesFromRegistry reconstructs per-machine phase.Times from the
// phase_seconds{machine,phase} gauges internal/core records.
func phasesFromRegistry(reg *metrics.Registry) []phase.Times {
	if reg == nil {
		return nil
	}
	byMachine := map[int][4]float64{}
	maxM := -1
	for _, s := range reg.Snapshot() {
		if s.Name != "phase_seconds" || s.Type != metrics.KindGauge {
			continue
		}
		m, err := strconv.Atoi(s.Labels["machine"])
		if err != nil {
			continue
		}
		idx := -1
		for i, name := range phaseNames {
			if s.Labels["phase"] == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		v := byMachine[m]
		v[idx] = s.Value
		byMachine[m] = v
		if m > maxM {
			maxM = m
		}
	}
	out := make([]phase.Times, maxM+1)
	for m, v := range byMachine {
		out[m] = phase.FromSeconds(v[0], v[1], v[2], v[3])
	}
	return out
}

// overlapFromRegistry returns the largest pipeline_overlap_seconds gauge
// across machines, 0 when absent (barrier runs, nil registry).
func overlapFromRegistry(reg *metrics.Registry) float64 {
	if reg == nil {
		return 0
	}
	var max float64
	for _, s := range reg.Snapshot() {
		if s.Name == "pipeline_overlap_seconds" && s.Type == metrics.KindGauge && s.Value > max {
			max = s.Value
		}
	}
	return max
}

func maxTimes(a, b phase.Times) phase.Times {
	if b.Histogram > a.Histogram {
		a.Histogram = b.Histogram
	}
	if b.NetworkPartition > a.NetworkPartition {
		a.NetworkPartition = b.NetworkPartition
	}
	if b.LocalPartition > a.LocalPartition {
		a.LocalPartition = b.LocalPartition
	}
	if b.BuildProbe > a.BuildProbe {
		a.BuildProbe = b.BuildProbe
	}
	return a
}

// topKPartitions bounds the per-partition detail kept in the verdict.
const topKPartitions = 5

// profileSkew aggregates the netpass_bytes_shipped_total{machine,partition}
// counters into the max/mean skew profile and the top-k heaviest
// partitions.
func (r *Residual) profileSkew(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	byPartition := map[int]uint64{}
	for _, s := range reg.Snapshot() {
		if s.Name != "netpass_bytes_shipped_total" {
			continue
		}
		p, err := strconv.Atoi(s.Labels["partition"])
		if err != nil {
			continue
		}
		byPartition[p] += uint64(s.Value)
	}
	if len(byPartition) == 0 {
		return
	}
	var total uint64
	parts := make([]PartitionBytes, 0, len(byPartition))
	for p, b := range byPartition {
		parts = append(parts, PartitionBytes{Partition: p, Bytes: b})
		total += b
		if b > r.MaxPartitionBytes {
			r.MaxPartitionBytes = b
		}
	}
	r.MeanPartitionBytes = float64(total) / float64(len(byPartition))
	if r.MeanPartitionBytes > 0 {
		r.SkewRatio = float64(r.MaxPartitionBytes) / r.MeanPartitionBytes
	}
	sort.Slice(parts, func(i, j int) bool {
		if parts[i].Bytes != parts[j].Bytes {
			return parts[i].Bytes > parts[j].Bytes
		}
		return parts[i].Partition < parts[j].Partition
	})
	if len(parts) > topKPartitions {
		parts = parts[:topKPartitions]
	}
	r.TopPartitions = parts
}

// profileStragglers finds the machine whose total lags the mean the most.
func (r *Residual) profileStragglers(perMachine []phase.Times) {
	if len(perMachine) == 0 {
		return
	}
	var sum, max float64
	slowest := 0
	for m, pt := range perMachine {
		t := pt.Total().Seconds()
		sum += t
		if t > max {
			max = t
			slowest = m
		}
	}
	mean := sum / float64(len(perMachine))
	r.SlowestMachine = slowest
	r.StragglerLagSeconds = max - mean
}

// export publishes the verdict as registry gauges.
func (r *Residual) export(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	for _, pr := range r.Phases {
		l := metrics.L("phase", pr.Phase)
		reg.Gauge("model_residual_ratio", l).Set(pr.Ratio)
		reg.Gauge("model_predicted_seconds", l).Set(pr.PredictedSeconds)
	}
	reg.Gauge("model_residual_ratio", metrics.L("phase", "total")).Set(r.TotalRatio)
	for _, pr := range r.BusyPhases {
		reg.Gauge("model_residual_busy_ratio", metrics.L("phase", pr.Phase)).Set(pr.Ratio)
	}
	// model_regime{predicted,observed} is a one-hot family: the gauge for
	// the verdict's (predicted, observed) pair reads 1 and the other
	// three combinations read 0, so a regime match is "the series where
	// predicted == observed is the one at 1" — an enumerable label set
	// instead of booleans flattened into floats. All four are written so
	// a verdict change across runs on one registry never leaves two
	// combinations claiming to hold.
	for _, pred := range []bool{false, true} {
		for _, obs := range []bool{false, true} {
			v := 0.0
			if pred == r.PredictedNetworkBound && obs == r.ObservedNetworkBound {
				v = 1
			}
			reg.Gauge("model_regime",
				metrics.L("predicted", regimeName(pred)),
				metrics.L("observed", regimeName(obs))).Set(v)
		}
	}
	reg.Gauge("skew_partition_bytes_max").Set(float64(r.MaxPartitionBytes))
	reg.Gauge("skew_partition_bytes_mean").Set(r.MeanPartitionBytes)
	reg.Gauge("skew_partition_max_mean_ratio").Set(r.SkewRatio)
	// The straggler verdict carries the machine in a label (not an ID
	// flattened into the value) and the lag as the value.
	reg.Gauge("straggler_lag_seconds",
		metrics.L("machine", strconv.Itoa(r.SlowestMachine))).Set(r.StragglerLagSeconds)
}

// regimeName renders a network-bound flag as the bounded regime label
// value set {"network", "cpu"}.
func regimeName(networkBound bool) string {
	if networkBound {
		return "network"
	}
	return "cpu"
}

func regime(networkBound bool) string {
	if networkBound {
		return "network-bound"
	}
	return "CPU-bound"
}

// Report writes the end-of-run verdict as a human-readable table.
func (r *Residual) Report(w io.Writer) {
	fmt.Fprintf(w, "model residuals vs %s\n", r.System)
	fmt.Fprintf(w, "%-20s %12s %12s %10s\n", "phase", "predicted", "measured", "residual")
	for _, pr := range r.Phases {
		fmt.Fprintf(w, "%-20s %11.3fs %11.3fs %9.2fx\n",
			pr.Phase, pr.PredictedSeconds, pr.MeasuredSeconds, pr.Ratio)
	}
	fmt.Fprintf(w, "%-20s %12s %12s %9.2fx\n", "total", "", "", r.TotalRatio)
	if r.OverlapSeconds > 0 {
		fmt.Fprintf(w, "pipelined overlap %.3fs hidden inside the network pass; busy-time view:\n", r.OverlapSeconds)
		for _, pr := range r.BusyPhases {
			if pr.Phase != "local_partition" && pr.Phase != "build_probe" {
				continue // histogram/netpass rows are identical to the critical-path view
			}
			fmt.Fprintf(w, "%-20s %11.3fs %11.3fs %9.2fx\n",
				pr.Phase+" (busy)", pr.PredictedSeconds, pr.MeasuredSeconds, pr.Ratio)
		}
	}
	match := "MATCH"
	if !r.RegimeMatch {
		match = "MISMATCH"
	}
	fmt.Fprintf(w, "regime    predicted %s, observed %s (%s, stall rate %.3f)\n",
		regime(r.PredictedNetworkBound), regime(r.ObservedNetworkBound), match, r.StallRate)
	if r.MeanPartitionBytes > 0 {
		fmt.Fprintf(w, "skew      max/mean bytes shipped %.2fx (max %.1f MB, mean %.1f MB)\n",
			r.SkewRatio, float64(r.MaxPartitionBytes)/(1<<20), r.MeanPartitionBytes/(1<<20))
		fmt.Fprintf(w, "          top partitions:")
		for _, p := range r.TopPartitions {
			fmt.Fprintf(w, " %d (%.1f MB)", p.Partition, float64(p.Bytes)/(1<<20))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "straggler machine %d lags the mean by %.3fs\n", r.SlowestMachine, r.StragglerLagSeconds)
}
