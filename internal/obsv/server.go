// Package obsv is the live observability plane of the repository: an HTTP
// exposition server (metrics, Chrome-trace download, pprof), a background
// sampler that turns registry totals into run-long JSONL time series, and
// a model-residual profiler that scores measured phase times against the
// paper's §5 analytical model at join completion.
//
// Any long-running process mounts it with a handful of lines:
//
//	srv := obsv.NewServer(obsv.Options{Registry: reg, Trace: tracer})
//	addr, _ := srv.Start(":8080")
//	defer srv.Close()
//
// and gains /metrics (text or ?format=json), /trace (chrome://tracing
// JSON, safe mid-run), /samples (the sampler's JSONL ring), /residual
// (the last profiler verdict), /health (the live diagnosis engine's
// verdicts, when one is mounted) and /debug/pprof.
package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"rackjoin/internal/metrics"
	"rackjoin/internal/trace"
)

// HealthSource serves /health: a live diagnosis report in JSON (the
// default) or text (?format=text). internal/health's Engine implements
// it; the interface lives here so obsv does not import the health plane
// it exposes.
type HealthSource interface {
	WriteJSON(w io.Writer) error
	WriteText(w io.Writer)
}

// Options configures a Server. Every field is optional: endpoints whose
// backing object is nil respond 404 with a hint.
type Options struct {
	// Registry backs /metrics (and /samples through Sampler).
	Registry *metrics.Registry
	// Trace backs /trace and /critpath.
	Trace *trace.Recorder
	// Sampler backs /samples; the server does not start or stop it.
	Sampler *Sampler
	// Flight backs /flightrec.
	Flight *FlightRecorder
	// Health backs /health.
	Health HealthSource
}

// Server is the exposition HTTP server.
type Server struct {
	opts Options
	mux  *http.ServeMux

	mu       sync.Mutex
	residual *Residual
	ln       net.Listener
	srv      *http.Server
	// done is closed when the serve goroutine exits; Close waits on it
	// so shutdown cannot race a still-running Serve.
	done chan struct{}
}

// NewServer builds the server and its routes; Start binds it to an
// address, or mount Handler on an existing server.
func NewServer(o Options) *Server {
	s := &Server{opts: o, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/critpath", s.handleCritPath)
	s.mux.HandleFunc("/flightrec", s.handleFlight)
	s.mux.HandleFunc("/health", s.handleHealth)
	s.mux.HandleFunc("/samples", s.handleSamples)
	s.mux.HandleFunc("/residual", s.handleResidual)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the route mux, for mounting on an existing server or an
// httptest server.
func (s *Server) Handler() http.Handler { return s.mux }

// SetResidual publishes a profiler verdict on /residual.
func (s *Server) SetResidual(r *Residual) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.residual = r
	s.mu.Unlock()
}

// Start listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves in the
// background. It returns the bound address — useful with port 0.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obsv: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan struct{})
	s.mu.Lock()
	s.ln, s.srv, s.done = ln, srv, done
	s.mu.Unlock()
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and waits for the serve goroutine to exit.
// In-flight requests are aborted; the join this server observes is
// unaffected.
func (s *Server) Close() error {
	s.mu.Lock()
	srv, done := s.srv, s.done
	s.srv, s.ln, s.done = nil, nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Close()
	<-done
	return err
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `rackjoin observability plane
/metrics        registry exposition (text; ?format=json for JSON)
/trace          Chrome trace-event JSON (chrome://tracing, Perfetto); safe mid-run
/critpath       critical-path extraction over the causal trace (?format=text for the report)
/flightrec      flight-recorder ring dump, merged and sequence-ordered
/health         live rack diagnosis: detectors, culprits, confidence (?format=text)
/samples        sampler time series, one JSON record per line
/residual       last model-residual verdict (measured vs §5 prediction)
/debug/pprof/   Go runtime profiles
`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.opts.Registry == nil {
		http.Error(w, "no metrics registry mounted", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = s.opts.Registry.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.opts.Registry.WriteText(w)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.opts.Trace == nil {
		http.Error(w, "no trace recorder mounted (enable tracing on the run)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
	_ = s.opts.Trace.WriteChromeJSON(w)
}

func (s *Server) handleCritPath(w http.ResponseWriter, r *http.Request) {
	if s.opts.Trace == nil {
		http.Error(w, "no trace recorder mounted (enable tracing on the run)", http.StatusNotFound)
		return
	}
	cp, err := s.opts.Trace.CriticalPath()
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		cp.Report(w)
		return
	}
	type step struct {
		Machine int     `json:"machine"`
		Phase   string  `json:"phase"`
		Link    string  `json:"link,omitempty"`
		FromSec float64 `json:"from_seconds"`
		ToSec   float64 `json:"to_seconds"`
	}
	out := struct {
		WallSec   float64            `json:"wall_seconds"`
		PathSec   float64            `json:"path_seconds"`
		Coverage  float64            `json:"coverage"`
		ByPhase   map[string]float64 `json:"by_phase"`
		ByMachine map[string]float64 `json:"by_machine"`
		ByLink    map[string]float64 `json:"by_link"`
		Steps     []step             `json:"steps"`
	}{
		WallSec: cp.Wall.Seconds(), PathSec: cp.Path.Seconds(), Coverage: cp.Coverage,
		ByPhase:   map[string]float64{},
		ByMachine: map[string]float64{},
		ByLink:    map[string]float64{},
		Steps:     []step{},
	}
	for k, d := range cp.ByPhase {
		out.ByPhase[k] = d.Seconds()
	}
	for m, d := range cp.ByMachine {
		out.ByMachine[fmt.Sprintf("%d", m)] = d.Seconds()
	}
	for k, d := range cp.ByLink {
		out.ByLink[k] = d.Seconds()
	}
	for _, st := range cp.Steps {
		out.Steps = append(out.Steps, step{
			Machine: st.Machine, Phase: st.Phase, Link: st.Link,
			FromSec: st.From.Seconds(), ToSec: st.To.Seconds(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.opts.Flight == nil {
		http.Error(w, "no flight recorder mounted (enable -flightrec on the run)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.opts.Flight.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.opts.Flight.WriteJSON(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.opts.Health == nil {
		http.Error(w, "no health engine mounted (enable -diagnose on the run)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.opts.Health.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.opts.Health.WriteJSON(w)
}

func (s *Server) handleSamples(w http.ResponseWriter, r *http.Request) {
	if s.opts.Sampler == nil {
		http.Error(w, "no sampler mounted (set -sample-interval)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = s.opts.Sampler.WriteJSONL(w)
}

func (s *Server) handleResidual(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	res := s.residual
	s.mu.Unlock()
	if res == nil {
		http.Error(w, "no residual verdict yet (completes with the join)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(res)
}
