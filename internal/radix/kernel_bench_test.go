package radix

import (
	"fmt"
	"math/rand"
	"testing"

	"rackjoin/internal/relation"
)

// Kernel benchmarks: scalar Scatter vs ScatterWC vs the fused indexed
// variants, across tuple widths and fan-outs. `make bench-kernels` runs
// every BenchmarkKernel* and formats the output into BENCH_kernels.json;
// the acceptance bar is ScatterWC ≥ 1.5× Scatter at 2^10 partitions on
// the 16-byte layout.

// 2^22 tuples: 64 MB on the 16-byte layout, so the scattered destination
// exceeds the near caches and the benchmark measures memory traffic, not
// L2-resident stores.
const benchTuples = 1 << 22

func benchRel(width int) *relation.Relation {
	rng := rand.New(rand.NewSource(2015))
	r := relation.NewAligned(width, benchTuples)
	rng.Read(r.Bytes())
	for i := 0; i < benchTuples; i++ {
		r.SetKey(i, rng.Uint64())
	}
	return r
}

func benchShapes(b *testing.B, run func(b *testing.B, src *relation.Relation, bits uint)) {
	for _, width := range []int{relation.Width16, relation.Width32, relation.Width64} {
		src := benchRel(width)
		for _, bits := range []uint{6, 10, 12} {
			b.Run(fmt.Sprintf("w%d/bits%d", width, bits), func(b *testing.B) {
				b.SetBytes(int64(src.Size()))
				run(b, src, bits)
			})
		}
	}
}

func BenchmarkKernelScatterScalar(b *testing.B) {
	benchShapes(b, func(b *testing.B, src *relation.Relation, bits uint) {
		h := Histogram(src, 0, bits)
		cur0, _ := PrefixSum(h)
		dst := relation.NewAligned(src.Width(), src.Len())
		cursors := make([]int64, len(cur0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(cursors, cur0)
			Scatter(src, dst, cursors, 0, bits)
		}
	})
}

func BenchmarkKernelScatterWC(b *testing.B) {
	benchShapes(b, func(b *testing.B, src *relation.Relation, bits uint) {
		h := Histogram(src, 0, bits)
		cur0, _ := PrefixSum(h)
		dst := relation.NewAligned(src.Width(), src.Len())
		cursors := make([]int64, len(cur0))
		wc := NewWCBuffers(1<<bits, src.Width())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(cursors, cur0)
			ScatterWC(src, dst, cursors, 0, bits, wc)
		}
	})
}

// BenchmarkKernelScatterWCStaged forces the portable software-staging
// loop that scatterWCFast bypasses on amd64/arm64, so the ablation
// records what explicit per-partition cache-line staging costs on this
// memory hierarchy (see DESIGN.md § Kernel layer).
func BenchmarkKernelScatterWCStaged(b *testing.B) {
	benchShapes(b, func(b *testing.B, src *relation.Relation, bits uint) {
		h := Histogram(src, 0, bits)
		cur0, _ := PrefixSum(h)
		dst := relation.NewAligned(src.Width(), src.Len())
		cursors := make([]int64, len(cur0))
		wc := NewWCBuffers(1<<bits, src.Width())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(cursors, cur0)
			wc.Reset(1<<bits, src.Width())
			scatterWCGeneric(src.Bytes(), dst.Bytes(), src.Width(), cursors, 0, bits, wc)
			wc.drainInto(dst.Bytes(), cursors)
		}
	})
}

func BenchmarkKernelHistogram(b *testing.B) {
	benchShapes(b, func(b *testing.B, src *relation.Relation, bits uint) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Histogram(src, 0, bits)
		}
	})
}

func BenchmarkKernelHistogramIndexed(b *testing.B) {
	benchShapes(b, func(b *testing.B, src *relation.Relation, bits uint) {
		var idx []uint32
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, idx = HistogramIndexed(src, 0, bits, idx)
		}
	})
}

func BenchmarkKernelScatterIndexedWC(b *testing.B) {
	benchShapes(b, func(b *testing.B, src *relation.Relation, bits uint) {
		h, idx := HistogramIndexed(src, 0, bits, nil)
		cur0, _ := PrefixSum(h)
		dst := relation.NewAligned(src.Width(), src.Len())
		cursors := make([]int64, len(cur0))
		wc := NewWCBuffers(1<<bits, src.Width())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(cursors, cur0)
			ScatterIndexedWC(src, dst, cursors, idx, wc)
		}
	})
}

// BenchmarkKernelPartition measures the end-to-end histogram+scatter pass
// as the exec engine drives it, per kernel setting.
func BenchmarkKernelPartition(b *testing.B) {
	for _, kern := range []Kernel{KernelScalar, KernelWC} {
		src := benchRel(relation.Width16)
		for _, bits := range []uint{10} {
			b.Run(fmt.Sprintf("%v/w16/bits%d", kern, bits), func(b *testing.B) {
				pt := NewPartitioner(kern)
				b.SetBytes(int64(src.Size()))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pt.Partition(src, 0, bits)
				}
			})
		}
	}
}
