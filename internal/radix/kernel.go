package radix

import (
	"fmt"

	"rackjoin/internal/relation"
)

// Kernel selects the partitioning (and probe) kernel implementations the
// exec engine runs its hot loops with. The ablation benches compare the
// settings; production callers leave it at KernelAuto.
type Kernel int

const (
	// KernelAuto picks per pass: write-combining when the fan-out is large
	// enough for WC staging to pay off (see Resolve), scalar otherwise.
	KernelAuto Kernel = iota
	// KernelScalar forces the per-tuple scalar kernels (Scatter,
	// one-key-at-a-time probe) everywhere.
	KernelScalar
	// KernelWC forces the software write-combining scatter and the batched
	// probe everywhere.
	KernelWC
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelScalar:
		return "scalar"
	case KernelWC:
		return "wc"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// ParseKernel parses the auto|scalar|wc knob (cmd flags, configs).
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "auto", "":
		return KernelAuto, nil
	case "scalar":
		return KernelScalar, nil
	case "wc":
		return KernelWC, nil
	}
	return 0, fmt.Errorf("radix: unknown kernel %q (want auto|scalar|wc)", s)
}

// Resolve maps KernelAuto to the concrete kernel for one partitioning
// pass over tuples of the given width fanning out to 2^bits partitions.
// Auto picks wc exactly where the platform has a width-specialised fast
// path (amd64/arm64, widths 16/32/64): that path wins at every measured
// fan-out (EXPERIMENTS.md § kernels), while the portable software-staging
// loop that KernelWC forces elsewhere costs more bookkeeping per tuple
// than its line batching saves on cache-generous machines — so auto never
// selects it on its own.
func (k Kernel) Resolve(width int, bits uint) Kernel {
	if k != KernelAuto {
		return k
	}
	if haveFastScatter && relation.ValidWidth(width) {
		return KernelWC
	}
	return KernelScalar
}

// batchMinTable is the build-side size above which KernelAuto uses the
// batched probe kernels: smaller tables are L1/L2-resident, their
// directory loads hit anyway, and batching's two-pass bookkeeping is pure
// overhead (measured ~9% at 2^10, +13..17% win at ≥2^16).
const batchMinTable = 1 << 14

// BatchProbe reports whether the build-probe phase over a hash table of n
// build tuples should use the batched probe kernels
// (hashtable.ProbeRangeBatch and friends).
func (k Kernel) BatchProbe(n int) bool {
	switch k {
	case KernelScalar:
		return false
	case KernelWC:
		return true
	}
	return n >= batchMinTable
}

// Partitioner runs histogram+scatter passes with the configured kernel,
// reusing the write-combining staging buffers across calls. It is not
// safe for concurrent use; create one per worker goroutine.
type Partitioner struct {
	kern Kernel
	wc   *WCBuffers

	// Telemetry accumulated across Partition calls, for the caller to fold
	// into its metrics registry after a phase: bytes scattered per kernel
	// and full-line WC flushes.
	BytesScalar uint64
	BytesWC     uint64
	Flushes     uint64
}

// NewPartitioner returns a partitioner using kernel k.
func NewPartitioner(k Kernel) *Partitioner { return &Partitioner{kern: k} }

// Kernel returns the configured (unresolved) kernel knob.
func (pt *Partitioner) Kernel() Kernel { return pt.kern }

// Partition radix-partitions rel by (shift, bits) into a freshly
// allocated cache-line-aligned relation and returns it together with the
// per-partition bounds (len 2^bits+1).
func (pt *Partitioner) Partition(rel *relation.Relation, shift, bits uint) (*relation.Relation, []int64) {
	h := Histogram(rel, shift, bits)
	cursors, _ := PrefixSum(h)
	dst := relation.NewAligned(rel.Width(), rel.Len())
	switch pt.kern.Resolve(rel.Width(), bits) {
	case KernelWC:
		if pt.wc == nil {
			pt.wc = NewWCBuffers(1<<bits, rel.Width())
		}
		before := pt.wc.Flushes
		ScatterWC(rel, dst, cursors, shift, bits, pt.wc)
		pt.Flushes += pt.wc.Flushes - before
		pt.BytesWC += uint64(rel.Size())
	default:
		Scatter(rel, dst, cursors, shift, bits)
		pt.BytesScalar += uint64(rel.Size())
	}
	return dst, Bounds(h)
}
