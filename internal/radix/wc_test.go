package radix

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"rackjoin/internal/relation"
)

// randRel builds a relation of n random-keyed tuples of the given width.
func randRel(rng *rand.Rand, width, n int) *relation.Relation {
	r := relation.New(width, n)
	rng.Read(r.Bytes()) // random payload bytes everywhere…
	for i := 0; i < n; i++ {
		r.SetKey(i, rng.Uint64()) // …and well-defined random keys
	}
	return r
}

// scatterBoth runs the scalar and WC scatters on the same input and
// fails the test on any divergence in destination bytes or final cursors.
func scatterBoth(t *testing.T, src *relation.Relation, shift, bits uint, wc *WCBuffers) {
	t.Helper()
	h := Histogram(src, shift, bits)
	curScalar, _ := PrefixSum(h)
	curWC := append([]int64(nil), curScalar...)

	dstScalar := relation.New(src.Width(), src.Len())
	dstWC := relation.NewAligned(src.Width(), src.Len())
	Scatter(src, dstScalar, curScalar, shift, bits)
	ScatterWC(src, dstWC, curWC, shift, bits, wc)

	if !bytes.Equal(dstScalar.Bytes(), dstWC.Bytes()) {
		t.Fatalf("width=%d n=%d shift=%d bits=%d: ScatterWC bytes diverge from Scatter",
			src.Width(), src.Len(), shift, bits)
	}
	for p := range curScalar {
		if curScalar[p] != curWC[p] {
			t.Fatalf("width=%d n=%d shift=%d bits=%d: cursor[%d] = %d (wc) vs %d (scalar)",
				src.Width(), src.Len(), shift, bits, p, curWC[p], curScalar[p])
		}
	}
}

// TestScatterWCEquivalence is the property test of the kernel layer:
// ScatterWC ≡ Scatter across tuple widths, random (shift, bits) windows,
// empty inputs, and partition sizes that are not cache-line multiples.
func TestScatterWCEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	wc := &WCBuffers{} // one reused staging buffer across all shapes
	wc.Reset(1, relation.Width16)
	for _, width := range []int{relation.Width16, relation.Width32, relation.Width64} {
		for _, n := range []int{0, 1, 2, 3, 5, 63, 64, 100, 1000, 5000} {
			src := randRel(rng, width, n)
			for trial := 0; trial < 6; trial++ {
				bits := uint(rng.Intn(11)) // 0..10 → 1..1024 partitions
				shift := uint(rng.Intn(54))
				scatterBoth(t, src, shift, bits, wc)
			}
		}
	}
}

// TestScatterWCSkewed drives all tuples into one partition so the staged
// line flushes continuously, and into a partition layout where every
// partition holds a non-multiple-of-line tuple count (tail-drain path).
func TestScatterWCSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, width := range []int{relation.Width16, relation.Width32, relation.Width64} {
		// All keys equal: single hot partition.
		src := relation.New(width, 1001)
		for i := 0; i < 1001; i++ {
			src.SetKey(i, 0xDEADBEEF)
			src.SetRID(i, uint64(i))
		}
		scatterBoth(t, src, 0, 8, nil)

		// Keys 0..np-1 cyclically with a prime count: every partition ends
		// on a partial line.
		src2 := randRel(rng, width, 997)
		for i := 0; i < src2.Len(); i++ {
			src2.SetKey(i, uint64(i%61))
		}
		scatterBoth(t, src2, 0, 6, nil)
	}
}

func TestScatterWCNilBuffers(t *testing.T) {
	src := randRel(rand.New(rand.NewSource(3)), relation.Width16, 500)
	scatterBoth(t, src, 2, 5, nil)
}

// TestScatterIndexedEquivalence checks the fused single-read variants:
// HistogramIndexed must agree with Histogram, and ScatterIndexed /
// ScatterIndexedWC must reproduce Scatter exactly.
func TestScatterIndexedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var idx []uint32
	wc := NewWCBuffers(1, relation.Width16)
	for _, width := range []int{relation.Width16, relation.Width32, relation.Width64} {
		for _, n := range []int{0, 1, 100, 2047} {
			src := randRel(rng, width, n)
			for trial := 0; trial < 4; trial++ {
				bits := uint(rng.Intn(10))
				shift := uint(rng.Intn(54))

				h := Histogram(src, shift, bits)
				var hIdx []int64
				hIdx, idx = HistogramIndexed(src, shift, bits, idx)
				for p := range h {
					if h[p] != hIdx[p] {
						t.Fatalf("HistogramIndexed[%d] = %d, want %d", p, hIdx[p], h[p])
					}
				}

				cur0, _ := PrefixSum(h)
				want := relation.New(width, n)
				curW := append([]int64(nil), cur0...)
				Scatter(src, want, curW, shift, bits)

				got := relation.New(width, n)
				cur := append([]int64(nil), cur0...)
				ScatterIndexed(src, got, cur, idx)
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Fatalf("ScatterIndexed diverges (width=%d n=%d bits=%d)", width, n, bits)
				}

				gotWC := relation.NewAligned(width, n)
				cur = append([]int64(nil), cur0...)
				ScatterIndexedWC(src, gotWC, cur, idx, wc)
				if !bytes.Equal(gotWC.Bytes(), want.Bytes()) {
					t.Fatalf("ScatterIndexedWC diverges (width=%d n=%d bits=%d)", width, n, bits)
				}
			}
		}
	}
}

func TestWCBuffersStageLineClear(t *testing.T) {
	wc := NewWCBuffers(4, relation.Width16)
	tuple := make([]byte, relation.Width16)
	for i := 0; i < 3; i++ {
		binary.LittleEndian.PutUint64(tuple, uint64(i))
		if wc.Stage(2, tuple) {
			t.Fatalf("line full after %d of 4 tuples", i+1)
		}
	}
	if got := len(wc.Line(2)); got != 48 {
		t.Fatalf("Line(2) = %d bytes, want 48", got)
	}
	if !wc.Stage(2, tuple) {
		t.Fatal("line not full after 4 tuples")
	}
	if wc.Flushes != 0 {
		t.Fatalf("Flushes = %d before Clear", wc.Flushes)
	}
	wc.Clear(2)
	if wc.Flushes != 1 {
		t.Fatalf("full-line Clear not counted: Flushes = %d", wc.Flushes)
	}
	if len(wc.Line(2)) != 0 {
		t.Fatal("line not empty after Clear")
	}
	// Partial clears are tail drains, not flushes.
	wc.Stage(1, tuple)
	wc.Clear(1)
	if wc.Flushes != 1 {
		t.Fatalf("partial Clear counted as flush: Flushes = %d", wc.Flushes)
	}
}

func TestKernelParseResolve(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kernel
	}{{"auto", KernelAuto}, {"", KernelAuto}, {"scalar", KernelScalar}, {"wc", KernelWC}} {
		got, err := ParseKernel(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseKernel(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() == "" {
			t.Errorf("Kernel %v has empty String", got)
		}
	}
	if _, err := ParseKernel("simd"); err == nil {
		t.Error("ParseKernel accepted unknown kernel")
	}
	// Auto follows the platform: wc where the fast path exists, scalar
	// elsewhere (and always scalar for widths without a specialised loop).
	wantAuto := KernelScalar
	if haveFastScatter {
		wantAuto = KernelWC
	}
	if got := KernelAuto.Resolve(16, 10); got != wantAuto {
		t.Errorf("auto resolved to %v, want %v (haveFastScatter=%v)", got, wantAuto, haveFastScatter)
	}
	if KernelAuto.Resolve(24, 10) != KernelScalar {
		t.Error("auto should stay scalar for unspecialised widths")
	}
	// Forced settings resolve to themselves.
	if KernelScalar.Resolve(16, 10) != KernelScalar || KernelWC.Resolve(64, 2) != KernelWC {
		t.Error("forced kernels must not be overridden by Resolve")
	}
	// BatchProbe: scalar always opts out, wc always opts in, auto sizes it.
	if KernelScalar.BatchProbe(1<<20) || !KernelWC.BatchProbe(16) {
		t.Error("forced kernels must pin the probe flavour")
	}
	if KernelAuto.BatchProbe(1<<10) || !KernelAuto.BatchProbe(1<<16) {
		t.Error("auto should batch only past cache-resident table sizes")
	}
}

func TestPartitioner(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := randRel(rng, relation.Width16, 4096)
	for _, kern := range []Kernel{KernelAuto, KernelScalar, KernelWC} {
		pt := NewPartitioner(kern)
		dst, bounds := pt.Partition(src, 0, 8)
		if dst.Len() != src.Len() || len(bounds) != 257 {
			t.Fatalf("%v: dst len %d bounds %d", kern, dst.Len(), len(bounds))
		}
		// Every tuple must land inside its partition's bounds.
		for p := 0; p < 256; p++ {
			part := PartitionView(dst, bounds, p)
			for i := 0; i < part.Len(); i++ {
				if PartitionOf(part.Key(i), 0, 8) != p {
					t.Fatalf("%v: tuple in partition %d has key of partition %d",
						kern, p, PartitionOf(part.Key(i), 0, 8))
				}
			}
		}
		// A second pass reuses scratch and keeps accumulating telemetry.
		pt.Partition(src, 8, 8)
		// Flushes is only non-zero on the software-staged (purego) path, so
		// the assertions here stick to the byte counters.
		switch kern.Resolve(relation.Width16, 8) {
		case KernelWC:
			if pt.BytesWC != 2*uint64(src.Size()) {
				t.Errorf("%v: BytesWC=%d", kern, pt.BytesWC)
			}
		default:
			if pt.BytesScalar != 2*uint64(src.Size()) || pt.Flushes != 0 {
				t.Errorf("%v: BytesScalar=%d Flushes=%d", kern, pt.BytesScalar, pt.Flushes)
			}
		}
	}
}

// FuzzScatterWC fuzzes the equivalence property over arbitrary tuple
// bytes and pass windows.
func FuzzScatterWC(f *testing.F) {
	f.Add([]byte("0123456789abcdef0123456789abcdef"), uint8(0), uint8(4))
	f.Add(bytes.Repeat([]byte{0xFF}, 96), uint8(13), uint8(9))
	f.Add([]byte{}, uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, shift, bits uint8) {
		sh := uint(shift % 57)
		b := uint(bits % 12)
		n := len(data) / relation.Width16
		src := relation.New(relation.Width16, n)
		copy(src.Bytes(), data)

		h := Histogram(src, sh, b)
		curScalar, _ := PrefixSum(h)
		curWC := append([]int64(nil), curScalar...)
		want := relation.New(relation.Width16, n)
		got := relation.New(relation.Width16, n)
		Scatter(src, want, curScalar, sh, b)
		ScatterWC(src, got, curWC, sh, b, nil)
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("ScatterWC diverges from Scatter (n=%d shift=%d bits=%d)", n, sh, b)
		}
	})
}
