//go:build purego || !(amd64 || arm64)

package radix

// haveFastScatter gates KernelAuto: without a width-specialised fast
// path, auto stays scalar (the staged loop is a portability fallback, not
// a win).
const haveFastScatter = false

// scatterWCFast has no width-specialised implementation on this platform
// (or under -tags purego); ScatterWC runs the portable staged loop.
func scatterWCFast(sdata, ddata []byte, width int, cursors []int64, shift, bits uint) bool {
	return false
}
