// Package radix implements the partitioning primitives of the radix hash
// join (Manegold et al., Section 3.1 of the paper): per-thread histograms
// over the low bits of the join key, prefix sums to derive exclusive write
// cursors, and the scatter pass that moves whole tuples into contiguous
// partition ranges.
//
// Multi-pass partitioning operates on non-overlapping bit subsets: pass i
// uses (shift_i, bits_i) with shift_{i+1} = shift_i + bits_i, so that the
// number of simultaneously written partitions never exceeds the TLB or
// cache-line budget of the machine. Pass orchestration lives in the join
// packages (mcjoin, core); this package provides the kernels.
package radix

import (
	"encoding/binary"

	"rackjoin/internal/relation"
)

// PartitionOf returns the partition index of key for a pass using the
// given bit window.
func PartitionOf(key uint64, shift, bits uint) int {
	return int((key >> shift) & (1<<bits - 1))
}

// Histogram counts the tuples of rel per partition of a (shift, bits)
// pass. The result has 2^bits entries.
func Histogram(rel *relation.Relation, shift, bits uint) []int64 {
	h := make([]int64, 1<<bits)
	AddHistogram(h, rel, shift, bits)
	return h
}

// AddHistogram accumulates rel's per-partition counts into h, which must
// have 2^bits entries. Used to merge per-thread histograms into
// machine-level histograms without intermediate allocation.
//
//rack:hotpath
func AddHistogram(h []int64, rel *relation.Relation, shift, bits uint) {
	mask := uint64(1<<bits - 1)
	width := rel.Width()
	data := rel.Bytes()
	for off := 0; off < len(data); off += width {
		k := le64(data[off:])
		h[(k>>shift)&mask]++
	}
}

// PrefixSum converts counts into exclusive starting offsets and returns
// the total. offsets[i] = sum of h[0..i).
func PrefixSum(h []int64) (offsets []int64, total int64) {
	offsets = make([]int64, len(h))
	for i, c := range h {
		offsets[i] = total
		total += c
	}
	return offsets, total
}

// Scatter copies every tuple of src into dst at the position indicated by
// cursors (in tuples), advancing the cursor of the tuple's partition.
// cursors is mutated; callers seed it with exclusive prefix-sum offsets.
// dst must use the same tuple width as src.
//
//rack:hotpath
func Scatter(src, dst *relation.Relation, cursors []int64, shift, bits uint) {
	mask := uint64(1<<bits - 1)
	width := src.Width()
	sdata := src.Bytes()
	ddata := dst.Bytes()
	for off := 0; off < len(sdata); off += width {
		k := le64(sdata[off:])
		p := (k >> shift) & mask
		dst := cursors[p] * int64(width)
		copy(ddata[dst:dst+int64(width)], sdata[off:off+width])
		cursors[p]++
	}
}

// Bounds converts a histogram into per-partition [start, end) tuple
// bounds: bounds[i] and bounds[i+1] delimit partition i. len(bounds) is
// len(h)+1.
func Bounds(h []int64) []int64 {
	b := make([]int64, len(h)+1)
	var acc int64
	for i, c := range h {
		b[i] = acc
		acc += c
	}
	b[len(h)] = acc
	return b
}

// PartitionView returns partition p of a relation that was scattered with
// the histogram underlying bounds.
func PartitionView(rel *relation.Relation, bounds []int64, p int) *relation.Relation {
	return rel.Slice(int(bounds[p]), int(bounds[p+1]))
}

// le64 reads a little-endian key; binary.LittleEndian compiles to a
// single load, unlike manual byte assembly.
func le64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }
