package radix

import (
	"testing"
	"testing/quick"

	"rackjoin/internal/datagen"
	"rackjoin/internal/relation"
)

func makeRel(keys []uint64) *relation.Relation {
	r := relation.New(relation.Width16, len(keys))
	for i, k := range keys {
		r.SetKey(i, k)
		r.SetRID(i, uint64(i))
	}
	return r
}

func TestPartitionOf(t *testing.T) {
	cases := []struct {
		key         uint64
		shift, bits uint
		want        int
	}{
		{0b1011, 0, 2, 0b11},
		{0b1011, 2, 2, 0b10},
		{0xFF, 4, 4, 0xF},
		{1, 0, 10, 1},
		{1 << 10, 0, 10, 0},
	}
	for _, c := range cases {
		if got := PartitionOf(c.key, c.shift, c.bits); got != c.want {
			t.Errorf("PartitionOf(%b,%d,%d) = %d, want %d", c.key, c.shift, c.bits, got, c.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	r := makeRel([]uint64{0, 1, 2, 3, 4, 5, 6, 7, 4, 4})
	h := Histogram(r, 0, 2)
	want := []int64{4, 2, 2, 2} // {0,4,4,4},{1,5},{2,6},{3,7}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("h[%d] = %d, want %d", i, h[i], want[i])
		}
	}
}

func TestHistogramShift(t *testing.T) {
	r := makeRel([]uint64{0b00_01, 0b01_01, 0b10_01, 0b11_01})
	h := Histogram(r, 2, 2)
	for i := 0; i < 4; i++ {
		if h[i] != 1 {
			t.Fatalf("shifted histogram wrong: %v", h)
		}
	}
}

func TestPrefixSum(t *testing.T) {
	off, total := PrefixSum([]int64{3, 0, 2, 5})
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	want := []int64{0, 3, 3, 5}
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("off[%d] = %d, want %d", i, off[i], want[i])
		}
	}
}

func TestBounds(t *testing.T) {
	b := Bounds([]int64{3, 0, 2})
	want := []int64{0, 3, 3, 5}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds[%d] = %d, want %d", i, b[i], want[i])
		}
	}
}

func TestScatterGroupsAndPreservesTuples(t *testing.T) {
	keys := []uint64{7, 2, 9, 4, 7, 1, 12, 15, 8, 3}
	src := makeRel(keys)
	const bits = 2
	h := Histogram(src, 0, bits)
	cursors, total := PrefixSum(h)
	if total != int64(len(keys)) {
		t.Fatalf("total = %d", total)
	}
	dst := relation.New(src.Width(), src.Len())
	Scatter(src, dst, cursors, 0, bits)

	bounds := Bounds(h)
	seen := make(map[uint64]int)
	for p := 0; p < 1<<bits; p++ {
		part := PartitionView(dst, bounds, p)
		for i := 0; i < part.Len(); i++ {
			if PartitionOf(part.Key(i), 0, bits) != p {
				t.Fatalf("tuple with key %d in wrong partition %d", part.Key(i), p)
			}
			seen[part.Key(i)<<32|part.RID(i)]++
		}
	}
	for i, k := range keys {
		if seen[k<<32|uint64(i)] != 1 {
			t.Fatalf("tuple (%d,%d) lost or duplicated", k, i)
		}
	}
}

func TestScatterWideTuples(t *testing.T) {
	src := relation.New(relation.Width64, 8)
	for i := 0; i < 8; i++ {
		src.SetKey(i, uint64(i))
		src.SetRID(i, uint64(100+i))
		src.Tuple(i)[63] = byte(i) // payload marker
	}
	h := Histogram(src, 0, 1)
	cursors, _ := PrefixSum(h)
	dst := relation.New(relation.Width64, 8)
	Scatter(src, dst, cursors, 0, 1)
	for i := 0; i < 8; i++ {
		k := dst.Key(i)
		if dst.Tuple(i)[63] != byte(k) {
			t.Fatalf("payload did not travel with tuple key %d", k)
		}
		if dst.RID(i) != 100+k {
			t.Fatalf("rid did not travel with tuple key %d", k)
		}
	}
}

func TestAddHistogramMerges(t *testing.T) {
	a := makeRel([]uint64{0, 1})
	b := makeRel([]uint64{1, 2, 3})
	h := make([]int64, 4)
	AddHistogram(h, a, 0, 2)
	AddHistogram(h, b, 0, 2)
	want := []int64{1, 2, 1, 1}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("merged h = %v", h)
		}
	}
}

// Property: multi-pass partitioning (two passes over disjoint bit windows)
// produces the same partition contents as one single pass over the
// combined window.
func TestPropertyMultiPassEqualsSinglePass(t *testing.T) {
	f := func(seed int64) bool {
		w := datagen.Generate(datagen.Config{InnerTuples: 256, OuterTuples: 512, Seed: seed})
		src := w.Outer
		const b1, b2 = 3, 2

		// Single pass over b1+b2 bits.
		hAll := Histogram(src, 0, b1+b2)
		curAll, _ := PrefixSum(hAll)
		single := relation.New(src.Width(), src.Len())
		Scatter(src, single, curAll, 0, b1+b2)

		// Pass 1 over low b1 bits, then pass 2 over the next b2 bits
		// within each pass-1 partition.
		h1 := Histogram(src, 0, b1)
		cur1, _ := PrefixSum(h1)
		mid := relation.New(src.Width(), src.Len())
		Scatter(src, mid, cur1, 0, b1)
		bounds1 := Bounds(h1)
		multi := relation.New(src.Width(), src.Len())
		boundsAll := Bounds(hAll)
		sums := func(r *relation.Relation) (k, rid uint64) {
			for i := 0; i < r.Len(); i++ {
				k += r.Key(i)
				rid += r.RID(i)
			}
			return
		}
		// Compare per-partition multisets. A key's combined partition id
		// is key & (2^(b1+b2)-1) = p2<<b1 | p1: in `single` partitions
		// are laid out by that id; in `multi`, sub-partition p2 of
		// pass-1 block p1 holds the same tuple set.
		for p1 := 0; p1 < 1<<b1; p1++ {
			part := PartitionView(mid, bounds1, p1)
			out := PartitionView(multi, bounds1, p1)
			h2 := Histogram(part, b1, b2)
			cur2, _ := PrefixSum(h2)
			Scatter(part, out, cur2, b1, b2)
			bounds2 := Bounds(h2)
			for p2 := 0; p2 < 1<<b2; p2++ {
				mp := PartitionView(out, bounds2, p2)
				sp := PartitionView(single, boundsAll, p2<<b1|p1)
				if sp.Len() != mp.Len() {
					return false
				}
				sk, sr := sums(sp)
				mk, mr := sums(mp)
				if sk != mk || sr != mr {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram totals always equal the relation size, and scatter
// cursors end exactly at the next partition's start.
func TestPropertyHistogramInvariants(t *testing.T) {
	f := func(seed int64, bits8 uint8) bool {
		bits := uint(bits8%8) + 1
		w := datagen.Generate(datagen.Config{InnerTuples: 100, OuterTuples: 300, Seed: seed})
		h := Histogram(w.Outer, 0, bits)
		cursors, total := PrefixSum(h)
		if total != int64(w.Outer.Len()) {
			return false
		}
		dst := relation.New(w.Outer.Width(), w.Outer.Len())
		Scatter(w.Outer, dst, cursors, 0, bits)
		bounds := Bounds(h)
		for p := range h {
			if cursors[p] != bounds[p+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
