// Software write-combining scatter (the technique of Balkesen et al. [4]
// and Rödiger et al.: see PAPERS.md). The scalar Scatter touches one
// random destination cache line per tuple, costing a read-for-ownership
// of the full line to write width bytes of it. ScatterWC instead stages
// tuples in a per-partition cache-line buffer that stays cache-resident
// and flushes whole 64-byte lines, cutting the random-line traffic by a
// factor of CacheLine/width (4× for the paper's 16-byte tuples).
package radix

import (
	"encoding/binary"

	"rackjoin/internal/relation"
)

// WCBuffers is the reusable staging state of the write-combining scatter:
// one cache line per partition plus its fill level. Allocate once per
// worker (NewWCBuffers) and pass to every ScatterWC call; the buffers
// resize themselves when the pass shape changes.
type WCBuffers struct {
	np    int
	width int
	stage []byte  // np × CacheLine, cache-line aligned
	fill  []int32 // staged bytes per partition, < CacheLine between calls

	// Flushes counts full-line flushes, accumulated across calls; callers
	// snapshot it around a pass to report flush-rate metrics.
	Flushes uint64
}

// NewWCBuffers allocates staging for np partitions of width-byte tuples.
func NewWCBuffers(np, width int) *WCBuffers {
	wc := &WCBuffers{}
	wc.Reset(np, width)
	return wc
}

// Reset prepares the buffers for a pass over np partitions of width-byte
// tuples, reallocating only when the shape changed. Any staged bytes are
// discarded.
func (wc *WCBuffers) Reset(np, width int) {
	if np != wc.np || width != wc.width {
		wc.np, wc.width = np, width
		wc.stage = relation.AlignedBytes(np * relation.CacheLine)
		wc.fill = make([]int32, np)
		return
	}
	for p := range wc.fill {
		wc.fill[p] = 0
	}
}

// Stage copies one tuple into partition p's staging line and reports
// whether the line is now full; when it is, the caller must flush Line(p)
// to its destination and Clear(p) before staging more tuples for p. This
// is the building block netpass-style callers with their own cursor
// bookkeeping use; ScatterWC fuses staging and flushing internally.
func (wc *WCBuffers) Stage(p int, tuple []byte) bool {
	base := p*relation.CacheLine + int(wc.fill[p])
	relation.CopyTuple(wc.stage[base:], tuple, wc.width)
	wc.fill[p] += int32(wc.width)
	return wc.fill[p] == relation.CacheLine
}

// Line returns the staged bytes of partition p (possibly a partial line).
func (wc *WCBuffers) Line(p int) []byte {
	base := p * relation.CacheLine
	return wc.stage[base : base+int(wc.fill[p])]
}

// Clear discards partition p's staged bytes (after the caller flushed
// them). Full-line clears count towards Flushes.
func (wc *WCBuffers) Clear(p int) {
	if wc.fill[p] == relation.CacheLine {
		wc.Flushes++
	}
	wc.fill[p] = 0
}

// drainInto appends every partition's staged tail to its destination
// cursor position in ddata and advances the cursors, leaving the buffers
// empty. Tail flushes are partial lines and do not count as Flushes.
func (wc *WCBuffers) drainInto(ddata []byte, cursors []int64) {
	w := int64(wc.width)
	for p, f := range wc.fill {
		if f == 0 {
			continue
		}
		base := p * relation.CacheLine
		relation.CopyWords(ddata[cursors[p]*w:], wc.stage[base:base+int(f)])
		cursors[p] += int64(f) / w
		wc.fill[p] = 0
	}
}

// ScatterWC is the write-combining equivalent of Scatter: same contract
// (cursors are seeded with exclusive prefix-sum offsets and end at the
// partition ends), same destination bytes, different per-tuple cost. On
// amd64/arm64 it runs the width-specialised word-store kernels of
// wc_fast.go, which rely on the hardware store buffer to combine adjacent
// stores into full-line transactions and never touch wc; elsewhere (and
// under -tags purego) it runs the explicit software-staging loop, for
// which wc holds the reusable staging buffers — nil allocates fresh ones.
func ScatterWC(src, dst *relation.Relation, cursors []int64, shift, bits uint, wc *WCBuffers) {
	width := src.Width()
	sdata, ddata := src.Bytes(), dst.Bytes()
	if scatterWCFast(sdata, ddata, width, cursors, shift, bits) {
		return
	}
	if wc == nil {
		wc = NewWCBuffers(1<<bits, width)
	} else {
		wc.Reset(1<<bits, width)
	}
	scatterWCGeneric(sdata, ddata, width, cursors, shift, bits, wc)
	wc.drainInto(ddata, cursors)
}

// scatterWCGeneric is the portable write-combining loop; the
// width-specialised fast paths live in wc_fast.go.
//
//rack:hotpath
func scatterWCGeneric(sdata, ddata []byte, width int, cursors []int64, shift, bits uint, wc *WCBuffers) {
	mask := uint64(1<<bits - 1)
	for off := 0; off < len(sdata); off += width {
		k := binary.LittleEndian.Uint64(sdata[off:])
		p := int((k >> shift) & mask)
		base := p * relation.CacheLine
		f := int(wc.fill[p])
		copy(wc.stage[base+f:base+f+width], sdata[off:off+width])
		f += width
		if f == relation.CacheLine {
			relation.CopyWords(ddata[cursors[p]*int64(width):], wc.stage[base:base+relation.CacheLine])
			cursors[p] += int64(relation.CacheLine / width)
			wc.Flushes++
			f = 0
		}
		wc.fill[p] = int32(f)
	}
}

// HistogramIndexed is the fused single-read variant of Histogram: it
// computes the per-partition counts and records every tuple's partition
// index, so the subsequent ScatterIndexed/ScatterIndexedWC pass reuses
// the routing decision instead of re-reading and re-masking the key.
// idx is reused when its capacity suffices; the returned slice has one
// entry per tuple of rel.
func HistogramIndexed(rel *relation.Relation, shift, bits uint, idx []uint32) ([]int64, []uint32) {
	n := rel.Len()
	if cap(idx) < n {
		idx = make([]uint32, n)
	}
	idx = idx[:n]
	h := make([]int64, 1<<bits)
	mask := uint64(1<<bits - 1)
	width := rel.Width()
	data := rel.Bytes()
	i := 0
	for off := 0; off < len(data); off += width {
		p := uint32((binary.LittleEndian.Uint64(data[off:]) >> shift) & mask)
		idx[i] = p
		h[p]++
		i++
	}
	return h, idx
}

// ScatterIndexed scatters src into dst using the per-tuple partition
// indexes of a HistogramIndexed pass instead of re-deriving them from the
// keys. Contract is otherwise identical to Scatter.
//
//rack:hotpath
func ScatterIndexed(src, dst *relation.Relation, cursors []int64, idx []uint32) {
	width := src.Width()
	sdata, ddata := src.Bytes(), dst.Bytes()
	i := 0
	for off := 0; off < len(sdata); off += width {
		p := idx[i]
		relation.CopyTuple(ddata[cursors[p]*int64(width):], sdata[off:], width)
		cursors[p]++
		i++
	}
}

// ScatterIndexedWC combines the fused-index routing with write-combining
// staging: the single-read variant of ScatterWC.
func ScatterIndexedWC(src, dst *relation.Relation, cursors []int64, idx []uint32, wc *WCBuffers) {
	width := src.Width()
	if wc == nil {
		wc = NewWCBuffers(len(cursors), width)
	} else {
		wc.Reset(len(cursors), width)
	}
	sdata, ddata := src.Bytes(), dst.Bytes()
	i := 0
	for off := 0; off < len(sdata); off += width {
		p := int(idx[i])
		i++
		base := p * relation.CacheLine
		f := int(wc.fill[p])
		copy(wc.stage[base+f:base+f+width], sdata[off:off+width])
		f += width
		if f == relation.CacheLine {
			relation.CopyWords(ddata[cursors[p]*int64(width):], wc.stage[base:base+relation.CacheLine])
			cursors[p] += int64(relation.CacheLine / width)
			wc.Flushes++
			f = 0
		}
		wc.fill[p] = int32(f)
	}
	wc.drainInto(ddata, cursors)
}
