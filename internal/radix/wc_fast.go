//go:build !purego && (amd64 || arm64)

package radix

import (
	"unsafe"

	"rackjoin/internal/relation"
)

// Width-specialised scatter kernels. These move tuples as 8-byte words
// through raw pointers: no per-tuple bounds checks, no memmove calls, and
// the key load doubles as the first stored word.
//
// Deliberately NO software staging here: consecutive word stores into the
// same destination line coalesce in the store buffer, so the hardware
// already write-combines them, and measurements on our target machines
// (EXPERIMENTS.md § kernels) show the explicit per-partition staging of
// scatterWCGeneric costs ~2 extra stores plus a fill-table access per
// tuple without reducing memory traffic — the active destination lines
// (2^bits × 64 B at exec fan-outs) stay cache-resident. The staged loop
// remains the portable fallback and the building block for callers that
// must batch into externally-owned buffers (netpass RDMA slots).
//
// Only compiled on little-endian platforms that allow unaligned word
// access; -tags purego (or any other platform) runs scatterWCGeneric.

// haveFastScatter gates KernelAuto: this platform has the direct
// word-store kernels below.
const haveFastScatter = true

// scatterWCFast dispatches to the width-specialised loop and reports
// whether one existed. Cursor semantics are identical to Scatter and
// scatterWCGeneric+drain; wc is not touched (no staged state, Flushes
// counts software-staged flushes only).
func scatterWCFast(sdata, ddata []byte, width int, cursors []int64, shift, bits uint) bool {
	if len(sdata) == 0 {
		return true
	}
	switch width {
	case relation.Width16:
		scatterWC16(sdata, ddata, cursors, shift, bits)
	case relation.Width32:
		scatterWC32(sdata, ddata, cursors, shift, bits)
	case relation.Width64:
		scatterWC64(sdata, ddata, cursors, shift, bits)
	default:
		return false
	}
	return true
}

func scatterWC16(sdata, ddata []byte, cursors []int64, shift, bits uint) {
	mask := uint64(1<<bits - 1)
	sp := unsafe.Pointer(unsafe.SliceData(sdata))
	dp := unsafe.Pointer(unsafe.SliceData(ddata))
	cp := unsafe.Pointer(unsafe.SliceData(cursors))
	n := len(sdata)
	for off := 0; off < n; off += 16 {
		k := *(*uint64)(unsafe.Add(sp, off))
		p := int((k >> shift) & mask)
		c := (*int64)(unsafe.Add(cp, p*8))
		d := (*[2]uint64)(unsafe.Add(dp, *c*16))
		d[0] = k
		d[1] = *(*uint64)(unsafe.Add(sp, off+8))
		*c++
	}
}

func scatterWC32(sdata, ddata []byte, cursors []int64, shift, bits uint) {
	mask := uint64(1<<bits - 1)
	sp := unsafe.Pointer(unsafe.SliceData(sdata))
	dp := unsafe.Pointer(unsafe.SliceData(ddata))
	cp := unsafe.Pointer(unsafe.SliceData(cursors))
	n := len(sdata)
	for off := 0; off < n; off += 32 {
		s := (*[4]uint64)(unsafe.Add(sp, off))
		p := int((s[0] >> shift) & mask)
		c := (*int64)(unsafe.Add(cp, p*8))
		d := (*[4]uint64)(unsafe.Add(dp, *c*32))
		d[0], d[1], d[2], d[3] = s[0], s[1], s[2], s[3]
		*c++
	}
}

func scatterWC64(sdata, ddata []byte, cursors []int64, shift, bits uint) {
	mask := uint64(1<<bits - 1)
	sp := unsafe.Pointer(unsafe.SliceData(sdata))
	dp := unsafe.Pointer(unsafe.SliceData(ddata))
	cp := unsafe.Pointer(unsafe.SliceData(cursors))
	n := len(sdata)
	for off := 0; off < n; off += 64 {
		s := (*[8]uint64)(unsafe.Add(sp, off))
		p := int((s[0] >> shift) & mask)
		c := (*int64)(unsafe.Add(cp, p*8))
		d := (*[8]uint64)(unsafe.Add(dp, *c*64))
		d[0], d[1], d[2], d[3] = s[0], s[1], s[2], s[3]
		d[4], d[5], d[6], d[7] = s[4], s[5], s[6], s[7]
		*c++
	}
}
