// Package model implements the paper's analytical model (Section 5,
// Equations 1–14) plus the calibration constants of Section 6.8
// (Equation 15). It predicts per-phase execution times of the distributed
// radix hash join from the system configuration and input sizes, derives
// the CPU-bound/network-bound regime boundary, the optimal number of cores
// per machine, and the machine-count upper bound of Equation 13.
//
// All rates are in MB/s (MB = 10^6 bytes... the paper uses binary MB for
// data sizes; we follow the paper and use MiB consistently: 1 MB here is
// 2^20 bytes) and all sizes in MB.
package model

import (
	"fmt"
	"math"

	"rackjoin/internal/phase"
)

// MB is the size unit of the model: 2^20 bytes.
const MB = 1 << 20

// Calibration holds the per-thread processing rates of Equation 15 plus
// the fitted constants documented in DESIGN.md §7.
type Calibration struct {
	// PsPart is the network-pass partitioning speed of one thread
	// (Eq. 15: 955 MB/s).
	PsPart float64
	// PsLocal is the local-pass partitioning speed of one thread (fitted:
	// the local pass has no buffer-management or routing work).
	PsLocal float64
	// PsHist is the histogram scan speed of one thread (fitted;
	// memory-bandwidth bound).
	PsHist float64
	// HbThread and HpThread are the hash table build/probe speeds of one
	// thread on cache-resident partitions (Table 1).
	HbThread float64
	HpThread float64
	// Passes is the number of partitioning passes p (paper: 2).
	Passes int
}

// DefaultCalibration returns the constants used throughout the
// reproduction (see DESIGN.md §7 for provenance).
func DefaultCalibration() Calibration {
	return Calibration{
		PsPart:   955,
		PsLocal:  1430,
		PsHist:   3820,
		HbThread: 3400,
		HpThread: 3400,
		Passes:   2,
	}
}

// SingleServerCalibration models the high-end four-socket server of
// Figure 5a: the first partitioning pass crosses the QPI interconnect.
type SingleServerCalibration struct {
	PsPass1 float64 // QPI-limited first pass
	PsPass2 float64
	PsHist  float64
	Hb, Hp  float64
}

// DefaultSingleServer returns constants fitted to Figure 5a's
// single-machine bars (2.19 s / 4.47 s / 9.02 s).
func DefaultSingleServer() SingleServerCalibration {
	return SingleServerCalibration{PsPass1: 1000, PsPass2: 1430, PsHist: 3820, Hb: 3400, Hp: 3400}
}

// Network describes one interconnect of Table 2 / Section 6.3.
type Network struct {
	Name string
	// Base is the per-host bandwidth in MB/s at two machines.
	Base float64
	// CongestionPerMachine is the bandwidth loss per additional machine
	// (Eq. 15: 110 MB/s on QDR; congestion grows with rack size).
	CongestionPerMachine float64
	// MsgOverhead is the fixed per-message cost in seconds, which shapes
	// the Figure 3 bandwidth-vs-message-size curve.
	MsgOverhead float64
	// CopyRate models per-byte CPU cost of kernel transports (IPoIB):
	// MB/s of sender-side copy work; 0 for RDMA (zero-copy).
	CopyRate float64
}

// QDR returns the 3.4 GB/s Quad Data Rate InfiniBand network of the
// ten-node cluster. The message overhead corresponds to a ~8M msg/s HCA,
// which saturates the link at 8 KB messages as in Figure 3.
func QDR() Network {
	return Network{Name: "QDR", Base: 3400, CongestionPerMachine: 110, MsgOverhead: 0.12e-6}
}

// FDR returns the 6.0 GB/s Fourteen Data Rate InfiniBand network of the
// four-node cluster.
func FDR() Network {
	return Network{Name: "FDR", Base: 6000, CongestionPerMachine: 0, MsgOverhead: 0.07e-6}
}

// IPoIB returns the IP-over-InfiniBand upper-layer protocol on the FDR
// cluster: 1.8 GB/s effective bandwidth (Section 6.3), kernel copies at a
// calibrated 490 MB/s per thread, and syscall-sized per-message overhead.
func IPoIB() Network {
	return Network{Name: "IPoIB", Base: 1800, CongestionPerMachine: 0, MsgOverhead: 10e-6, CopyRate: 490}
}

// Bandwidth returns netMax for a rack of the given size, following
// Eq. 15 exactly: base − (N_M − 1) · congestion.
func (n Network) Bandwidth(machines int) float64 {
	bw := n.Base
	if machines > 1 {
		bw -= float64(machines-1) * n.CongestionPerMachine
	}
	if bw < 0 {
		bw = 0
	}
	return bw
}

// PointToPoint returns the achievable bandwidth in MB/s between two hosts
// for messages of msgSize bytes (Figure 3): throughput ramps linearly
// while the per-message overhead dominates and saturates at Base once
// messages amortise it (≳ 8 KB on both networks). Non-positive message
// sizes or base bandwidths yield 0 — the residual profiler calls this
// with runtime-derived values, so the degenerate inputs must stay finite.
func (n Network) PointToPoint(msgSize int) float64 {
	if msgSize <= 0 || n.Base <= 0 {
		return 0
	}
	s := float64(msgSize)
	t := n.MsgOverhead + s/(n.Base*MB)
	if t <= 0 {
		return 0
	}
	return s / t / MB
}

// System is a deployment: a rack of machines on a network.
type System struct {
	Machines        int
	CoresPerMachine int
	Net             Network
	Cal             Calibration
}

// NewSystem builds a System with default calibration.
func NewSystem(machines, cores int, net Network) System {
	return System{Machines: machines, CoresPerMachine: cores, Net: net, Cal: DefaultCalibration()}
}

// sanitize clamps a System to the computable domain: at least one machine
// and one core, at least one partitioning pass, and positive calibration
// rates (non-positive rates fall back to DefaultCalibration). Every
// prediction entry point sanitizes first, so callers feeding the model
// runtime-derived values — the obsv residual profiler in particular —
// always get finite predictions instead of divide-by-zero Infs/NaNs.
func (s System) sanitize() System {
	if s.Machines < 1 {
		s.Machines = 1
	}
	if s.CoresPerMachine < 1 {
		s.CoresPerMachine = 1
	}
	def := DefaultCalibration()
	if s.Cal.PsPart <= 0 {
		s.Cal.PsPart = def.PsPart
	}
	if s.Cal.PsLocal <= 0 {
		s.Cal.PsLocal = def.PsLocal
	}
	if s.Cal.PsHist <= 0 {
		s.Cal.PsHist = def.PsHist
	}
	if s.Cal.HbThread <= 0 {
		s.Cal.HbThread = def.HbThread
	}
	if s.Cal.HpThread <= 0 {
		s.Cal.HpThread = def.HpThread
	}
	if s.Cal.Passes < 1 {
		s.Cal.Passes = 1
	}
	return s
}

// Workload holds the input sizes in MB.
type Workload struct {
	R, S float64
}

// WorkloadTuples converts tuple counts and width to a Workload.
func WorkloadTuples(rTuples, sTuples int64, width int) Workload {
	return Workload{
		R: float64(rTuples) * float64(width) / MB,
		S: float64(sTuples) * float64(width) / MB,
	}
}

// Total returns |R|+|S| in MB.
func (w Workload) Total() float64 { return w.R + w.S }

// PsNetwork is Equation 1: the per-thread share of the host's network
// bandwidth, with one core per machine dedicated to incoming data. With a
// single core there is no separate network thread; the one core takes the
// whole share.
func (s System) PsNetwork() float64 {
	s = s.sanitize()
	denom := float64(s.CoresPerMachine - 1)
	if denom < 1 {
		denom = 1
	}
	return s.Net.Bandwidth(s.Machines) / denom
}

// NetworkBound is Equation 2: true when remote tuples are produced faster
// than the network can ship them.
func (s System) NetworkBound() bool {
	s = s.sanitize()
	nm := float64(s.Machines)
	return (nm-1)/nm*s.Cal.PsPart > s.PsNetwork()
}

// PsThread is Equation 4: the effective partitioning speed of one thread
// in a network-bound system.
func (s System) PsThread() float64 {
	s = s.sanitize()
	nm := float64(s.Machines)
	psNet := s.PsNetwork()
	denom := (nm-1)*s.Cal.PsPart + psNet
	if denom <= 0 {
		return 0
	}
	return nm * s.Cal.PsPart * psNet / denom
}

// PS1 is the global speed of the network partitioning pass: Equation 3 in
// CPU-bound systems, Equation 5 in network-bound systems.
func (s System) PS1() float64 {
	s = s.sanitize()
	nm := float64(s.Machines)
	threads := nm * float64(s.CoresPerMachine-1)
	if threads < 1 {
		threads = 1
	}
	if s.Machines == 1 {
		return float64(s.CoresPerMachine) * s.Cal.PsPart
	}
	if !s.NetworkBound() {
		return threads * s.Cal.PsPart // Eq. 3
	}
	return threads * s.PsThread() // Eq. 5
}

// PS2 is Equation 6: the global speed of a local partitioning pass.
func (s System) PS2() float64 {
	s = s.sanitize()
	return float64(s.Machines*s.CoresPerMachine) * s.Cal.PsLocal
}

// PartitioningTime is Equation 7 for the configured number of passes.
func (s System) PartitioningTime(w Workload) float64 {
	s = s.sanitize()
	t := safeDiv(w.Total(), s.PS1())
	if s.Cal.Passes > 1 {
		t += float64(s.Cal.Passes-1) * safeDiv(w.Total(), s.PS2())
	}
	return t
}

// BuildTime is Equations 8–9.
func (s System) BuildTime(w Workload) float64 {
	s = s.sanitize()
	return w.R / (float64(s.Machines*s.CoresPerMachine) * s.Cal.HbThread)
}

// ProbeTime is Equations 10–11.
func (s System) ProbeTime(w Workload) float64 {
	s = s.sanitize()
	return w.S / (float64(s.Machines*s.CoresPerMachine) * s.Cal.HpThread)
}

// HistogramTime is the histogram scan estimate (the paper folds it into
// its measured predictions; we expose it so the four-phase breakdown of
// Figures 5b/7/9 can be predicted).
func (s System) HistogramTime(w Workload) float64 {
	s = s.sanitize()
	return w.Total() / (float64(s.Machines*s.CoresPerMachine) * s.Cal.PsHist)
}

// safeDiv returns a/b, or 0 when b is not positive.
func safeDiv(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// Predict returns the full per-phase prediction.
func (s System) Predict(w Workload) phase.Times {
	s = s.sanitize()
	local := 0.0
	if s.Cal.Passes > 1 {
		local = float64(s.Cal.Passes-1) * safeDiv(w.Total(), s.PS2())
	}
	return phase.FromSeconds(
		s.HistogramTime(w),
		safeDiv(w.Total(), s.PS1()),
		local,
		s.BuildTime(w)+s.ProbeTime(w),
	)
}

// PredictSingle predicts the single-server baseline of Figure 5a.
func PredictSingle(w Workload, cores int, cal SingleServerCalibration) phase.Times {
	c := float64(cores)
	return phase.FromSeconds(
		w.Total()/(c*cal.PsHist),
		w.Total()/(c*cal.PsPass1),
		w.Total()/(c*cal.PsPass2),
		w.R/(c*cal.Hb)+w.S/(c*cal.Hp),
	)
}

// OptimalCores is Equation 12 as the paper applies it in Section 6.8.1:
// the number of partitioning threads that exactly saturates the per-host
// bandwidth is netMax/psPart; adding the network thread gives
// ⌊netMax/psPart⌋ + 1 cores per machine (QDR → 4, FDR → 7).
func (s System) OptimalCores() int {
	s = s.sanitize()
	if s.Net.Base <= 0 {
		return 1
	}
	return int(s.Net.Base/s.Cal.PsPart) + 1
}

// MaxMachines is Equation 13: the machine count above which the RDMA
// buffers of the inner relation are no longer filled before transmission,
// wasting network bandwidth. rMB is |R| in MB, np1 the partition count of
// the network pass, bufBytes the RDMA buffer size.
func (s System) MaxMachines(rMB float64, np1 int, bufBytes int) int {
	denom := float64(np1) * float64(s.CoresPerMachine-1) * (float64(bufBytes) / MB)
	if denom <= 0 {
		return 0
	}
	return int(math.Floor(rMB / denom))
}

// MinPartitions is Equation 14: every core must receive at least one
// partition, so NP1 ≥ NM × NC/M.
func (s System) MinPartitions() int {
	return s.Machines * s.CoresPerMachine
}

// String summarises the system.
func (s System) String() string {
	return fmt.Sprintf("%d×%d cores on %s (%.0f MB/s/host)",
		s.Machines, s.CoresPerMachine, s.Net.Name, s.Net.Bandwidth(s.Machines))
}

// CrossoverBandwidth answers the scale-up vs scale-out question of the
// paper's Section 7 ("the answer ... is dependent on the bandwidth
// provided by the NUMA interconnect and the network"): it returns the
// per-host network bandwidth (MB/s) at which a rack of machines×cores
// matches a single server with singleCores cores on workload w. Above the
// returned bandwidth, horizontal scale-out wins. The search brackets
// [64, 131072] MB/s; it returns 0 when even the upper bound cannot catch
// the single server, and the lower bound when the rack wins everywhere.
func CrossoverBandwidth(w Workload, machines, cores int, cal Calibration,
	single SingleServerCalibration, singleCores int) float64 {
	target := PredictSingle(w, singleCores, single).Total().Seconds()
	rackTime := func(bw float64) float64 {
		s := System{Machines: machines, CoresPerMachine: cores,
			Net: Network{Name: "x", Base: bw}, Cal: cal}
		return s.Predict(w).Total().Seconds()
	}
	lo, hi := 64.0, 131072.0
	if rackTime(hi) > target {
		return 0
	}
	if rackTime(lo) <= target {
		return lo
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if rackTime(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// HDR returns the projected 25 GB/s HDR InfiniBand network the paper's
// Section 7 anticipates ("current technical road-maps project that
// InfiniBand will be able to offer a bandwidth of 25 GB/s (HDR) by
// 2017").
func HDR() Network {
	return Network{Name: "HDR", Base: 25600, CongestionPerMachine: 0, MsgOverhead: 0.05e-6}
}
