package model

// Table-driven guards against the divide-by-zero paths the obsv residual
// profiler can hit when it feeds the model runtime-derived machine and
// core counts (ISSUE 3): every prediction entry point must stay finite
// for degenerate configurations.

import (
	"math"
	"testing"
)

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func TestPredictDegenerateSystemsFinite(t *testing.T) {
	w := Workload{R: 2048, S: 2048}
	cases := []struct {
		name            string
		machines, cores int
		net             Network
		cal             Calibration
	}{
		{"zero machines", 0, 8, QDR(), DefaultCalibration()},
		{"negative machines", -3, 8, QDR(), DefaultCalibration()},
		{"zero cores", 4, 0, QDR(), DefaultCalibration()},
		{"negative cores", 4, -1, FDR(), DefaultCalibration()},
		{"one core (no network thread)", 4, 1, QDR(), DefaultCalibration()},
		{"zero everything", 0, 0, Network{}, Calibration{}},
		{"zero calibration", 4, 8, QDR(), Calibration{}},
		{"zero passes", 4, 8, QDR(), Calibration{PsPart: 955, PsLocal: 1430, PsHist: 3820, HbThread: 3400, HpThread: 3400}},
		{"negative bandwidth", 4, 8, Network{Name: "bad", Base: -100}, DefaultCalibration()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := System{Machines: tc.machines, CoresPerMachine: tc.cores, Net: tc.net, Cal: tc.cal}
			for name, v := range map[string]float64{
				"PsNetwork":        s.PsNetwork(),
				"PsThread":         s.PsThread(),
				"PS1":              s.PS1(),
				"PS2":              s.PS2(),
				"PartitioningTime": s.PartitioningTime(w),
				"BuildTime":        s.BuildTime(w),
				"ProbeTime":        s.ProbeTime(w),
				"HistogramTime":    s.HistogramTime(w),
			} {
				if !finite(v) {
					t.Errorf("%s = %v, want finite", name, v)
				}
			}
			_ = s.NetworkBound() // must not panic
			if oc := s.OptimalCores(); oc < 1 {
				t.Errorf("OptimalCores = %d, want ≥ 1", oc)
			}
			pred := s.Predict(w)
			for i, sec := range pred.Seconds() {
				if !finite(sec) || sec < 0 {
					t.Errorf("Predict phase %d = %v, want finite and non-negative", i, sec)
				}
			}
		})
	}
}

func TestPredictSanitizedMatchesValid(t *testing.T) {
	// Sanitization must not change predictions for valid configurations.
	w := Workload{R: 1024, S: 1024}
	valid := NewSystem(4, 8, QDR())
	if got, want := valid.Predict(w), valid.sanitize().Predict(w); got != want {
		t.Fatalf("sanitize changed a valid system: %v vs %v", got, want)
	}
	// Zero calibration rates fall back to the default rates (pass count
	// clamps to ≥ 1 independently, so pin it to compare).
	zeroCal := System{Machines: 4, CoresPerMachine: 8, Net: QDR(), Cal: Calibration{Passes: 2}}
	if got, want := zeroCal.Predict(w), valid.Predict(w); got != want {
		t.Fatalf("zero calibration %v != default calibration %v", got, want)
	}
}

func TestPointToPointGuards(t *testing.T) {
	cases := []struct {
		name    string
		net     Network
		msgSize int
	}{
		{"zero size", QDR(), 0},
		{"negative size", QDR(), -64},
		{"zero base", Network{Base: 0, MsgOverhead: 1e-6}, 8192},
		{"negative base", Network{Base: -5}, 8192},
		{"all zero", Network{}, 8192},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.net.PointToPoint(tc.msgSize); got != 0 {
				t.Errorf("PointToPoint = %v, want 0", got)
			}
		})
	}
	// Valid inputs are unaffected: still saturates near Base.
	if bw := QDR().PointToPoint(1 << 20); bw < 3000 {
		t.Errorf("1 MB messages reach only %.0f MB/s on QDR", bw)
	}
}
