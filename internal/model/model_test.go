package model

import (
	"math"
	"testing"
	"testing/quick"
)

// paperWorkload is the 2048M ⋈ 2048M 16-byte-tuple join used throughout
// Sections 6.4–6.8: 32768 MB per relation.
var paperWorkload = WorkloadTuples(2048<<20, 2048<<20, 16)

func TestWorkloadTuples(t *testing.T) {
	w := WorkloadTuples(2048<<20, 2048<<20, 16)
	if w.R != 32768 || w.S != 32768 {
		t.Fatalf("2048M 16-byte tuples = %.0f MB, want 32768", w.R)
	}
	if w.Total() != 65536 {
		t.Fatalf("total = %.0f", w.Total())
	}
}

func TestQDRBandwidthCongestion(t *testing.T) {
	q := QDR()
	// Eq. 15: psQDR(NM) numerator is 3400 − (NM−1)·110.
	if q.Bandwidth(2) != 3290 {
		t.Fatalf("QDR@2 = %v", q.Bandwidth(2))
	}
	if q.Bandwidth(10) != 3400-9*110 {
		t.Fatalf("QDR@10 = %v", q.Bandwidth(10))
	}
	if FDR().Bandwidth(10) != 6000 {
		t.Fatal("FDR has no congestion term")
	}
}

func TestNetworkBoundRegimes(t *testing.T) {
	// Section 6.6: FDR with 8 cores is CPU-bound on 2 and 3 machines and
	// (just) network-bound on 4.
	for _, tc := range []struct {
		machines int
		want     bool
	}{{2, false}, {3, false}, {4, false}} {
		s := NewSystem(tc.machines, 8, FDR())
		if got := s.NetworkBound(); got != tc.want {
			t.Errorf("FDR @%d machines: NetworkBound = %v, want %v", tc.machines, got, tc.want)
		}
	}
	// QDR with 8 cores is network-bound at every rack size — psNet =
	// 3290/7 = 470 vs (1/2)·955 = 477.5 already at two machines.
	for nm := 2; nm <= 10; nm++ {
		if !NewSystem(nm, 8, QDR()).NetworkBound() {
			t.Errorf("QDR @%d machines should be network-bound", nm)
		}
	}
	// QDR with 4 cores (3 partitioning threads) on few machines: 3
	// threads cannot saturate 3.4 GB/s.
	if NewSystem(2, 4, QDR()).NetworkBound() {
		t.Error("QDR with 4 cores on 2 machines should be CPU-bound")
	}
}

func TestPsThreadEquation4(t *testing.T) {
	s := NewSystem(4, 8, QDR())
	// Hand-computed: netMax = 3400-330 = 3070, psNet = 3070/7 ≈ 438.6,
	// psThread = 4·955·438.6/(3·955+438.6).
	psNet := 3070.0 / 7
	want := 4 * 955 * psNet / (3*955 + psNet)
	if got := s.PsThread(); math.Abs(got-want) > 0.01 {
		t.Fatalf("PsThread = %v, want %v", got, want)
	}
}

func TestPredictQDRMatchesPaperFigure7a(t *testing.T) {
	// Figure 7a totals for 2048M ⋈ 2048M on the QDR cluster. The model
	// must land within 10% of the measured totals for ≥4 machines (the
	// paper validates ≥4 in Figure 9b, reporting 0.17 s average error).
	paper := map[int]float64{4: 7.19, 6: 5.36, 8: 4.46, 10: 3.84}
	for nm, want := range paper {
		s := NewSystem(nm, 8, QDR())
		got := s.Predict(paperWorkload).Total().Seconds()
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("QDR @%d machines: predicted %.2f s, paper measured %.2f s", nm, got, want)
		}
	}
}

func TestPredictSingleMatchesPaperFigure5a(t *testing.T) {
	paper := []struct {
		tuples int64
		want   float64
	}{
		{1024 << 20, 2.19},
		{2048 << 20, 4.47},
		{4096 << 20, 9.02},
	}
	for _, tc := range paper {
		w := WorkloadTuples(tc.tuples, tc.tuples, 16)
		got := PredictSingle(w, 32, DefaultSingleServer()).Total().Seconds()
		if math.Abs(got-tc.want)/tc.want > 0.10 {
			t.Errorf("single server %dM: predicted %.2f s, paper %.2f s", tc.tuples>>20, got, tc.want)
		}
	}
}

func TestOptimalCoresSection681(t *testing.T) {
	// Section 6.8.1: four cores per machine on QDR, seven on FDR.
	if got := NewSystem(8, 8, QDR()).OptimalCores(); got != 4 {
		t.Fatalf("QDR optimal cores = %d, want 4", got)
	}
	if got := NewSystem(4, 8, FDR()).OptimalCores(); got != 7 {
		t.Fatalf("FDR optimal cores = %d, want 7", got)
	}
}

func TestPointToPointSaturation(t *testing.T) {
	// Figure 3: both networks reach and maintain full bandwidth for
	// buffers ≳ 8 KB; small messages are overhead-dominated.
	for _, n := range []Network{QDR(), FDR()} {
		bw64k := n.PointToPoint(64 << 10)
		if bw64k < 0.90*n.Base {
			t.Errorf("%s: 64 KB messages reach only %.0f/%.0f MB/s", n.Name, bw64k, n.Base)
		}
		bw2 := n.PointToPoint(2)
		if bw2 > 0.05*n.Base {
			t.Errorf("%s: 2 B messages too fast: %.1f MB/s", n.Name, bw2)
		}
		// Monotonically non-decreasing in message size.
		prev := 0.0
		for sz := 2; sz <= 512<<10; sz *= 2 {
			bw := n.PointToPoint(sz)
			if bw < prev {
				t.Errorf("%s: bandwidth not monotone at %d B", n.Name, sz)
			}
			prev = bw
		}
	}
	if QDR().PointToPoint(0) != 0 {
		t.Error("zero-size message should have zero bandwidth")
	}
}

func TestFDRFasterThanQDR(t *testing.T) {
	// Figure 5a ordering: single < FDR < QDR execution time.
	w := paperWorkload
	single := PredictSingle(w, 32, DefaultSingleServer()).Total()
	fdr := NewSystem(4, 8, FDR()).Predict(w).Total()
	qdr := NewSystem(4, 8, QDR()).Predict(w).Total()
	if !(single < fdr && fdr < qdr) {
		t.Fatalf("ordering violated: single=%v fdr=%v qdr=%v", single, fdr, qdr)
	}
}

func TestMaxMachinesEquation13(t *testing.T) {
	s := NewSystem(4, 8, QDR())
	// |R| = 32768 MB, 1024 partitions, 7 threads, 64 KB buffers:
	// 32768 / (1024·7·0.0625) = 73 machines.
	got := s.MaxMachines(32768, 1024, 64<<10)
	if got != 73 {
		t.Fatalf("MaxMachines = %d, want 73", got)
	}
	// A small relation limits scale-out hard.
	if s.MaxMachines(64, 1024, 64<<10) != 0 {
		t.Fatal("tiny inner relation should cap machines at 0 full buffers")
	}
	if s.MaxMachines(100, 0, 64<<10) != 0 {
		t.Fatal("degenerate partition count")
	}
}

func TestMinPartitionsEquation14(t *testing.T) {
	if got := NewSystem(10, 8, QDR()).MinPartitions(); got != 80 {
		t.Fatalf("MinPartitions = %d, want 80", got)
	}
}

func TestLinearScalingInDataSize(t *testing.T) {
	// Section 6.4.1: doubling both relations doubles execution time.
	s := NewSystem(6, 8, QDR())
	t1 := s.Predict(WorkloadTuples(1024<<20, 1024<<20, 16)).Total().Seconds()
	t2 := s.Predict(WorkloadTuples(2048<<20, 2048<<20, 16)).Total().Seconds()
	if math.Abs(t2/t1-2) > 0.01 {
		t.Fatalf("scaling factor %.3f, want 2.0", t2/t1)
	}
}

func TestSmallToLargeShrinks(t *testing.T) {
	// Section 6.4.2: fixing |S| and shrinking |R| 8× roughly halves the
	// total time (partitioning dominates and scales with |R|+|S|).
	s := NewSystem(4, 8, QDR())
	t11 := s.Predict(WorkloadTuples(2048<<20, 2048<<20, 16)).Total().Seconds()
	t18 := s.Predict(WorkloadTuples(256<<20, 2048<<20, 16)).Total().Seconds()
	ratio := t18 / t11
	if ratio < 0.45 || ratio > 0.65 {
		t.Fatalf("1:8 / 1:1 time ratio = %.2f, want ≈ 0.5 (Figure 6b)", ratio)
	}
}

func TestWideTuplesSameTime(t *testing.T) {
	// Section 6.7: execution time depends on bytes, not tuple counts.
	s := NewSystem(4, 8, QDR())
	t16 := s.Predict(WorkloadTuples(2048<<20, 2048<<20, 16)).Total()
	t32 := s.Predict(WorkloadTuples(1024<<20, 1024<<20, 32)).Total()
	t64 := s.Predict(WorkloadTuples(512<<20, 512<<20, 64)).Total()
	if t16 != t32 || t32 != t64 {
		t.Fatalf("wide-tuple times differ: %v %v %v", t16, t32, t64)
	}
}

func TestIPoIBSlower(t *testing.T) {
	ipoib := NewSystem(4, 8, IPoIB())
	fdr := NewSystem(4, 8, FDR())
	if ipoib.Predict(paperWorkload).Total() <= fdr.Predict(paperWorkload).Total() {
		t.Fatal("IPoIB should be slower than native FDR")
	}
}

func TestSystemString(t *testing.T) {
	if NewSystem(4, 8, QDR()).String() == "" {
		t.Fatal("empty string")
	}
}

// Property: predictions are positive, finite, and monotone — more
// machines never slow the model down on a congestion-free network.
func TestPropertyPredictionsSane(t *testing.T) {
	f := func(nm8, cores8 uint8, rMB16, sMB16 uint16) bool {
		nm := int(nm8%15) + 2
		cores := int(cores8%15) + 2
		w := Workload{R: float64(rMB16) + 1, S: float64(sMB16) + 1}
		s := NewSystem(nm, cores, FDR())
		p := s.Predict(w)
		total := p.Total().Seconds()
		if !(total > 0) || math.IsInf(total, 0) || math.IsNaN(total) {
			return false
		}
		bigger := NewSystem(nm+1, cores, FDR())
		return bigger.Predict(w).Total().Seconds() <= total+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: at the exact regime boundary of Equation 2 (psNetwork ==
// (NM-1)/NM · psPart), Equation 4 evaluates to psPart · NM/(NM+1): the
// thread spends 1/(NM+1) of its time waiting for transfers even though the
// network is nominally saturable. This checks the Eq. 4 algebra exactly.
func TestPropertyRegimeBoundary(t *testing.T) {
	f := func(nm8, cores8 uint8) bool {
		nm := int(nm8%9) + 2
		cores := int(cores8%12) + 2
		cal := DefaultCalibration()
		// Engineer the network so psNetwork lands exactly on the boundary.
		boundaryPsNet := float64(nm-1) / float64(nm) * cal.PsPart
		net := Network{Name: "synthetic", Base: boundaryPsNet * float64(cores-1)}
		s := System{Machines: nm, CoresPerMachine: cores, Net: net, Cal: cal}
		want := cal.PsPart * float64(nm) / float64(nm+1)
		return math.Abs(s.PsThread()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossoverBandwidth(t *testing.T) {
	// Section 7's scale-up vs scale-out question, made quantitative for a
	// 5×8 rack against the 32-core server. A 4×8 rack can NEVER catch the
	// server (28 partitioning threads vs 32 cores: CPU-bound even at
	// infinite bandwidth) — that itself is the paper's Figure 5a finding.
	w := paperWorkload
	cal := DefaultCalibration()
	single := DefaultSingleServer()
	if bw := CrossoverBandwidth(w, 4, 8, cal, single, 32); bw != 0 {
		t.Fatalf("4×8 rack should never catch the server, got crossover %f", bw)
	}
	bw := CrossoverBandwidth(w, 5, 8, cal, single, 32)
	if bw <= 0 {
		t.Fatal("a 5×8 rack should catch the 32-core server at some bandwidth")
	}
	// QDR's effective 5-machine bandwidth is below the crossover (the
	// single server wins there, as measured), FDR's is above it
	// (scale-out wins): exactly the interconnect dependence §7 describes.
	if bw < QDR().Bandwidth(5) {
		t.Fatalf("crossover %f should exceed QDR's effective bandwidth", bw)
	}
	if bw > FDR().Base {
		t.Fatalf("crossover %f should be below FDR bandwidth", bw)
	}
	// The rack's predicted time at the crossover matches the single
	// server's within 1%.
	rack := System{Machines: 5, CoresPerMachine: 8, Net: Network{Base: bw}, Cal: cal}
	rt := rack.Predict(w).Total().Seconds()
	st := PredictSingle(w, 32, single).Total().Seconds()
	if math.Abs(rt-st)/st > 0.01 {
		t.Fatalf("times at crossover differ: rack %.2f vs single %.2f", rt, st)
	}
	// A big rack against a small server needs only a sliver of bandwidth.
	if got := CrossoverBandwidth(w, 10, 8, cal, single, 8); got <= 0 || got >= QDR().Base {
		t.Fatalf("dominating rack crossover should be tiny, got %f", got)
	}
}

func TestHDRFasterThanQDR(t *testing.T) {
	// On a network-bound rack the projected HDR bandwidth (§7) removes
	// the bottleneck; on a CPU-bound rack it changes nothing.
	w := paperWorkload
	hdr := NewSystem(8, 8, HDR()).Predict(w).Total()
	qdr := NewSystem(8, 8, QDR()).Predict(w).Total()
	if hdr >= qdr {
		t.Fatalf("HDR should beat QDR at 8 machines: %v vs %v", hdr, qdr)
	}
	if NewSystem(4, 8, HDR()).Predict(w).Total() != NewSystem(4, 8, FDR()).Predict(w).Total() {
		t.Fatal("a CPU-bound 4×8 rack should not care about bandwidth beyond FDR")
	}
}
