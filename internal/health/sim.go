package health

import "rackjoin/internal/sim"

// FromSim derives a post-run Observation from a simulated execution:
// the network-pass ledger (sim.Result.Detail) supplies the link and
// sender indicators at wire-time fidelity, the per-machine phase
// breakdown supplies the straggler signal. This is the evaluation path
// the fault-injection sweep validates the detectors on.
func FromSim(cfg sim.Config, res *sim.Result) Observation {
	o := Observation{
		Machines:      cfg.Machines,
		WallSec:       res.Phases.NetworkPartition.Seconds(),
		PhaseTotalSec: make([]float64, len(res.PerMachine)),
	}
	for m, pm := range res.PerMachine {
		o.PhaseTotalSec[m] = pm.Total().Seconds()
	}
	d := res.Detail
	if d == nil {
		return o
	}
	o.ExpectedLinkMBps = d.ExpectedMBps
	o.LinkMB = d.LinkMB
	o.LinkBusySec = d.LinkBusySec
	o.Stalls = toF64(d.Stalls)
	o.Flushes = toF64(d.Flushes)
	o.Retransmits = toF64(d.Retransmits)
	o.PartitionMB = d.PartitionMB
	o.SplitPartitions = d.SplitPartitions
	o.Scheduled = d.Scheduled
	if d.Scheduled {
		o.PacedWaitSec = d.PacedWaitSec
	}
	return o
}

// DiagnoseSim runs the detectors over a finished simulated execution.
func DiagnoseSim(cfg sim.Config, res *sim.Result) []Diagnosis {
	return Evaluate(FromSim(cfg, res))
}

func toF64(vs []uint64) []float64 {
	if vs == nil {
		return nil
	}
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = float64(v)
	}
	return out
}
