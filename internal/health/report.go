package health

import (
	"fmt"
	"io"
	"strings"
	"time"

	"rackjoin/internal/obsv"
	"rackjoin/internal/trace"
)

// CrossCheck pairs one diagnosis with the independent observability
// verdicts that agree or disagree with it: the critical-path extraction
// (does the blamed entity actually dominate the run's causal spine?) and
// the model-residual profiler (does the §5 model see the same skew,
// straggler, or regime?). A diagnosis corroborated by an independent
// plane is actionable; a conflicted one warrants a look at the evidence.
type CrossCheck struct {
	Diagnosis     Diagnosis `json:"diagnosis"`
	Corroborating []string  `json:"corroborating,omitempty"`
	Conflicting   []string  `json:"conflicting,omitempty"`
}

// Report is the post-run health verdict: the retained diagnoses, each
// cross-checked against the critical path and the residual profiler.
type Report struct {
	Checks []CrossCheck `json:"checks"`
	// Notes carries rack-level observations that are not tied to one
	// diagnosis (e.g. "clean run, residual regime matches the model").
	Notes []string `json:"notes,omitempty"`
}

// BuildReport cross-checks diagnoses against the run's critical path and
// residual verdict. Either cross-reference may be nil; the report then
// records the diagnoses without the missing plane's checks.
func BuildReport(ds []Diagnosis, cp *trace.CriticalPath, res *obsv.Residual) *Report {
	r := &Report{Checks: make([]CrossCheck, 0, len(ds))}
	for _, d := range ds {
		r.Checks = append(r.Checks, crossCheck(d, cp, res))
	}
	if len(ds) == 0 {
		note := "no detector fired"
		if res != nil {
			if res.RegimeMatch {
				note += "; residual regime matches the model"
			} else {
				note += fmt.Sprintf("; NB residual regime mismatch (predicted network-bound %v, observed %v)",
					res.PredictedNetworkBound, res.ObservedNetworkBound)
			}
		}
		r.Notes = append(r.Notes, note)
	}
	return r
}

func crossCheck(d Diagnosis, cp *trace.CriticalPath, res *obsv.Residual) CrossCheck {
	c := CrossCheck{Diagnosis: d}
	agree := func(format string, a ...any) { c.Corroborating = append(c.Corroborating, fmt.Sprintf(format, a...)) }
	differ := func(format string, a ...any) { c.Conflicting = append(c.Conflicting, fmt.Sprintf(format, a...)) }

	switch d.Detector {
	case DetectorSlowLink:
		if cp != nil && len(cp.ByLink) > 0 {
			key, dur := dominant(cp.ByLink)
			if src, dst, ok := parseLinkKey(key); ok {
				if src == d.Culprit.Machine && dst == d.Culprit.Peer {
					agree("critical path spends %.3fs (%.0f%% of path) waiting on %s",
						dur.Seconds(), 100*dur.Seconds()/cp.Path.Seconds(), key)
				} else {
					differ("critical path's dominant link is %s, not the blamed m%d→m%d",
						key, d.Culprit.Machine, d.Culprit.Peer)
				}
			}
		}
	case DetectorStraggler:
		if res != nil {
			if res.SlowestMachine == d.Culprit.Machine {
				agree("residual profiler agrees: machine %d slowest, lagging the mean by %.3fs",
					res.SlowestMachine, res.StragglerLagSeconds)
			} else {
				differ("residual profiler names machine %d slowest, not %d",
					res.SlowestMachine, d.Culprit.Machine)
			}
		}
		if cp != nil && len(cp.ByMachine) > 0 {
			m, dur := dominantMachine(cp.ByMachine)
			if m == d.Culprit.Machine {
				agree("machine %d also dominates the critical path (%.3fs attributed)", m, dur.Seconds())
			}
		}
	case DetectorHotPartition:
		if d.Resolved {
			agree("skew engine split-and-replicated partition %d — diagnosis already resolved",
				d.Culprit.Partition)
		}
		if res != nil && len(res.TopPartitions) > 0 {
			top := res.TopPartitions[0]
			if top.Partition == d.Culprit.Partition {
				agree("residual skew profile agrees: partition %d heaviest (skew ratio %.1f)",
					top.Partition, res.SkewRatio)
			} else {
				differ("residual skew profile names partition %d heaviest, not %d",
					top.Partition, d.Culprit.Partition)
			}
		}
	case DetectorBufferStarvation:
		if res != nil {
			if res.ObservedNetworkBound {
				agree("residual confirms back-pressure: stall rate %.3f per message, observed network-bound",
					res.StallRate)
			} else {
				differ("residual observed the run CPU-bound (stall rate %.3f) — starvation evidence is local",
					res.StallRate)
			}
		}
	case DetectorSchedulerStall:
		if cp != nil && len(cp.ByLink) > 0 {
			key, dur := dominant(cp.ByLink)
			if _, dst, ok := parseLinkKey(key); ok && dst == d.Culprit.Machine {
				agree("critical path waits %.3fs on traffic into the blamed receiver (%s)", dur.Seconds(), key)
			}
		}
	}
	return c
}

// dominant returns the largest entry of a by-link attribution map.
func dominant(m map[string]time.Duration) (string, time.Duration) {
	var key string
	var max time.Duration
	for k, d := range m {
		if d > max || (d == max && (key == "" || k < key)) {
			key, max = k, d
		}
	}
	return key, max
}

func dominantMachine(m map[int]time.Duration) (int, time.Duration) {
	best := -1
	var max time.Duration
	for k, d := range m {
		if d > max || (d == max && (best < 0 || k < best)) {
			best, max = k, d
		}
	}
	return best, max
}

// parseLinkKey extracts src and dst from a critical-path link key of the
// form "<kind> mSRC→mDST" (e.g. "msg m2→m0").
func parseLinkKey(key string) (src, dst int, ok bool) {
	if i := strings.LastIndexByte(key, ' '); i >= 0 {
		key = key[i+1:]
	}
	if _, err := fmt.Sscanf(key, "m%d→m%d", &src, &dst); err != nil {
		return 0, 0, false
	}
	return src, dst, true
}

// WriteText renders the report the way -diagnose prints it post-run.
func (r *Report) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	if len(r.Checks) == 0 {
		fmt.Fprintln(w, "health: clean run")
	}
	for _, c := range r.Checks {
		fmt.Fprintln(w, c.Diagnosis)
		for _, s := range c.Corroborating {
			fmt.Fprintf(w, "    ✓ %s\n", s)
		}
		for _, s := range c.Conflicting {
			fmt.Fprintf(w, "    ✗ %s\n", s)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "    %s\n", n)
	}
}
