package health

import (
	"strings"
	"testing"
)

// obs8 builds a healthy 8-machine observation: uniform links at the
// model rate, equal phase totals, moderate legitimate stalling.
func obs8() Observation {
	const nm, rate = 8, 1000.0
	o := Observation{
		Machines:         nm,
		WallSec:          1,
		ExpectedLinkMBps: rate,
		LinkMB:           make([][]float64, nm),
		LinkBusySec:      make([][]float64, nm),
		PhaseTotalSec:    make([]float64, nm),
		Stalls:           make([]float64, nm),
		Flushes:          make([]float64, nm),
		Retransmits:      make([]float64, nm),
		PartitionMB:      make(map[int]float64),
	}
	for i := 0; i < nm; i++ {
		o.LinkMB[i] = make([]float64, nm)
		o.LinkBusySec[i] = make([]float64, nm)
		for j := 0; j < nm; j++ {
			if i != j {
				o.LinkMB[i][j] = 100
				o.LinkBusySec[i][j] = 100 / rate
			}
		}
		o.PhaseTotalSec[i] = 2
		o.Flushes[i] = 1000
		o.Stalls[i] = 5
	}
	for p := 0; p < 64; p++ {
		o.PartitionMB[p] = 10
	}
	return o
}

func TestHealthyObservationQuiet(t *testing.T) {
	if ds := Evaluate(obs8()); len(ds) != 0 {
		t.Fatalf("healthy observation diagnosed: %v", ds)
	}
}

func TestEmptyObservationQuiet(t *testing.T) {
	if ds := Evaluate(Observation{Machines: 8}); len(ds) != 0 {
		t.Fatalf("empty observation diagnosed: %v", ds)
	}
}

func TestDetectSlowLinkSynthetic(t *testing.T) {
	o := obs8()
	o.LinkBusySec[2][5] = 100 / (0.2 * o.ExpectedLinkMBps) // link at 20% rate
	ds := Evaluate(o)
	d, ok := find(ds, DetectorSlowLink)
	if !ok {
		t.Fatalf("slow link not detected: %v", ds)
	}
	if d.Culprit.Kind != CulpritLink || d.Culprit.Machine != 2 || d.Culprit.Peer != 5 {
		t.Fatalf("blamed %v, want link m2→m5", d.Culprit)
	}
	if d.Confidence <= 0.5 || d.Confidence > 1 {
		t.Fatalf("confidence %.2f outside (0.5, 1] for a 20%% link", d.Confidence)
	}
}

func TestDetectStragglerSynthetic(t *testing.T) {
	o := obs8()
	o.PhaseTotalSec[6] = 3.5 // 1.75× the median of 2
	d, ok := find(Evaluate(o), DetectorStraggler)
	if !ok {
		t.Fatal("straggler not detected")
	}
	if d.Culprit.Kind != CulpritMachine || d.Culprit.Machine != 6 {
		t.Fatalf("blamed %v, want machine 6", d.Culprit)
	}
}

func TestStragglerWaitsForFullRack(t *testing.T) {
	// Mid-run, only half the rack has reported phase totals: the
	// detector must not call the early finishers' peers stragglers.
	o := obs8()
	for m := 4; m < 8; m++ {
		o.PhaseTotalSec[m] = 0
	}
	o.PhaseTotalSec[0] = 100
	if d, ok := find(Evaluate(o), DetectorStraggler); ok {
		t.Fatalf("straggler %v diagnosed from a half-reported rack", d.Culprit)
	}
}

func TestDetectHotPartitionSynthetic(t *testing.T) {
	o := obs8()
	o.PartitionMB[17] = 100 // 10× the mean
	d, ok := find(Evaluate(o), DetectorHotPartition)
	if !ok {
		t.Fatal("hot partition not detected")
	}
	if d.Culprit.Kind != CulpritPartition || d.Culprit.Partition != 17 {
		t.Fatalf("blamed %v, want partition 17", d.Culprit)
	}
}

func TestDetectBufferStarvationSynthetic(t *testing.T) {
	o := obs8()
	o.Stalls[3] = 400 // stall rate 0.4
	for j := range o.LinkBusySec[3] {
		if o.LinkMB[3][j] > 0 {
			o.LinkBusySec[3][j] *= 2 // goodput at half the model rate
		}
	}
	o.Retransmits[3] = 123
	d, ok := find(Evaluate(o), DetectorBufferStarvation)
	if !ok {
		t.Fatal("buffer starvation not detected")
	}
	if d.Culprit.Kind != CulpritMachine || d.Culprit.Machine != 3 {
		t.Fatalf("blamed %v, want machine 3", d.Culprit)
	}
	var hasRetx bool
	for _, ev := range d.Evidence {
		if ev.Indicator == "retransmits" && ev.Value == 123 {
			hasRetx = true
		}
	}
	if !hasRetx {
		t.Fatalf("retransmit evidence missing: %+v", d.Evidence)
	}
}

func TestStallingAtFullRateIsNotStarvation(t *testing.T) {
	// A network-bound run stalls heavily while the wire delivers at the
	// model rate — legitimate back-pressure, not starvation.
	o := obs8()
	for m := range o.Stalls {
		o.Stalls[m] = 800
	}
	if d, ok := find(Evaluate(o), DetectorBufferStarvation); ok {
		t.Fatalf("full-rate stalling diagnosed as starvation: %v", d)
	}
}

func TestDetectSchedulerStallSynthetic(t *testing.T) {
	o := obs8()
	o.Scheduled = true
	o.PacedWaitSec = []float64{0.05, 0.05, 0.05, 0.05, 2.0, 0.05, 0.05, 0.05}
	d, ok := find(Evaluate(o), DetectorSchedulerStall)
	if !ok {
		t.Fatal("scheduler stall not detected")
	}
	if d.Culprit.Kind != CulpritMachine || d.Culprit.Machine != 4 {
		t.Fatalf("blamed %v, want machine 4", d.Culprit)
	}
}

func TestSchedulerStallOnlineTelemetry(t *testing.T) {
	o := obs8()
	o.Scheduled = true
	o.SchedRounds = []float64{100, 100, 100, 100, 100, 100, 100, 100}
	o.SchedIdle = []float64{5, 5, 90, 5, 5, 5, 5, 5}
	o.SchedParks = []float64{0, 0, 40, 0, 0, 0, 0, 0}
	d, ok := find(Evaluate(o), DetectorSchedulerStall)
	if !ok {
		t.Fatal("online scheduler stall not detected")
	}
	if d.Culprit.Machine != 2 {
		t.Fatalf("blamed %v, want machine 2", d.Culprit)
	}
	// Idling without parked work is a drained schedule, not a stall.
	o.SchedParks[2] = 0
	if d, ok := find(Evaluate(o), DetectorSchedulerStall); ok {
		t.Fatalf("drained schedule diagnosed as stall: %v", d)
	}
}

func TestDiagnosesSortedByConfidence(t *testing.T) {
	o := obs8()
	o.LinkBusySec[2][5] = 100 / (0.1 * o.ExpectedLinkMBps)
	o.PhaseTotalSec[6] = 2.7 // just past the 1.3× threshold
	ds := Evaluate(o)
	if len(ds) < 2 {
		t.Fatalf("want ≥ 2 diagnoses, got %v", ds)
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].Confidence > ds[i-1].Confidence {
			t.Fatalf("diagnoses not sorted by confidence: %v", ds)
		}
	}
}

func TestCulpritAndDiagnosisStrings(t *testing.T) {
	cases := map[string]Culprit{
		"machine 3":   {Kind: CulpritMachine, Machine: 3},
		"link m1→m4":  {Kind: CulpritLink, Machine: 1, Peer: 4},
		"partition 9": {Kind: CulpritPartition, Partition: 9},
	}
	for want, c := range cases {
		if got := c.String(); got != want {
			t.Errorf("culprit %+v renders %q, want %q", c, got, want)
		}
	}
	d := Diagnosis{
		Detector:   DetectorSlowLink,
		Culprit:    Culprit{Kind: CulpritLink, Machine: 0, Peer: 2},
		Evidence:   []Evidence{{Indicator: "link_achieved_mbps", Value: 250, Baseline: 1000, Detail: "degraded"}},
		Confidence: 0.8,
	}
	s := d.String()
	for _, want := range []string{"slow_link", "link m0→m2", "0.80", "link_achieved_mbps", "degraded"} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnosis string %q missing %q", s, want)
		}
	}
}
