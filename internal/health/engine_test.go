package health

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"

	"rackjoin/internal/metrics"
	"rackjoin/internal/obsv"
)

// feedUniform writes a healthy 8-machine rack's worth of telemetry into
// reg: uniform link bytes, equal phase totals, uniform partitions.
func feedUniform(reg *metrics.Registry, nm int) {
	const linkBytes = 64 << 20
	for m := 0; m < nm; m++ {
		ml := metrics.L("machine", strconv.Itoa(m))
		for d := 0; d < nm; d++ {
			if d != m {
				reg.Counter("netpass_link_bytes_total", ml,
					metrics.L("dest", strconv.Itoa(d))).Add(linkBytes)
			}
		}
		reg.Counter("netpass_buffer_flushes_total", ml,
			metrics.L("thread", "0")).Add(1000)
		reg.Counter("netpass_buffer_stalls_total", ml,
			metrics.L("thread", "0")).Add(5)
		reg.Gauge("phase_seconds", ml, metrics.L("phase", "network_partition")).Set(2)
		for p := 0; p < 64; p++ {
			reg.Counter("netpass_bytes_shipped_total", ml,
				metrics.L("partition", strconv.Itoa(p))).Add(8 << 20)
		}
	}
}

func newTestEngine(t *testing.T, reg *metrics.Registry, o Options) *Engine {
	t.Helper()
	o.Registry = reg
	if o.Machines == 0 {
		o.Machines = 8
	}
	e := NewEngine(o)
	e.Start()
	t.Cleanup(e.Stop)
	return e
}

func TestEngineQuietOnHealthyTelemetry(t *testing.T) {
	reg := metrics.NewRegistry()
	e := newTestEngine(t, reg, Options{Interval: time.Hour})
	feedUniform(reg, 8)
	e.Step()
	if ds := e.Diagnoses(); len(ds) != 0 {
		t.Fatalf("healthy telemetry diagnosed: %v", ds)
	}
	if got := reg.Counter("health_evaluations_total").Value(); got == 0 {
		t.Fatal("health_evaluations_total not incremented")
	}
}

func TestEngineDetectsSlowLinkOnline(t *testing.T) {
	reg := metrics.NewRegistry()
	e := newTestEngine(t, reg, Options{Interval: time.Hour})
	feedUniform(reg, 8)
	// Every link except m2→m5 ships a further 150 MB in the window, so
	// the degraded link delivered ~30% of its peers' bytes — online (no
	// wire-busy time) that reads as a 0.3× peer-relative rate.
	for m := 0; m < 8; m++ {
		for d := 0; d < 8; d++ {
			if d == m || (m == 2 && d == 5) {
				continue
			}
			reg.Counter("netpass_link_bytes_total",
				metrics.L("machine", strconv.Itoa(m)),
				metrics.L("dest", strconv.Itoa(d))).Add(150 << 20)
		}
	}
	e.Step()
	d, ok := find(e.Diagnoses(), DetectorSlowLink)
	if !ok {
		t.Fatalf("slow link not detected online: %v", e.Diagnoses())
	}
	if d.Culprit.Kind != CulpritLink || d.Culprit.Machine != 2 || d.Culprit.Peer != 5 {
		t.Fatalf("blamed %v, want link m2→m5", d.Culprit)
	}
	if got := reg.Counter("health_diagnoses_total",
		metrics.L("detector", DetectorSlowLink)).Value(); got != 1 {
		t.Fatalf("health_diagnoses_total{slow_link} = %d, want 1", got)
	}
}

func TestEngineDetectsStragglerAndHotPartitionOnline(t *testing.T) {
	reg := metrics.NewRegistry()
	e := newTestEngine(t, reg, Options{Interval: time.Hour})
	feedUniform(reg, 8)
	reg.Gauge("phase_seconds", metrics.L("machine", "6"),
		metrics.L("phase", "network_partition")).Set(4) // 2× the rack
	reg.Counter("netpass_bytes_shipped_total", metrics.L("machine", "0"),
		metrics.L("partition", "17")).Add(4 << 30) // dominant partition
	e.Step()
	ds := e.Diagnoses()
	if d, ok := find(ds, DetectorStraggler); !ok || d.Culprit.Machine != 6 {
		t.Fatalf("straggler: got %v, want machine 6 in %v", ds, ds)
	}
	if d, ok := find(ds, DetectorHotPartition); !ok || d.Culprit.Partition != 17 {
		t.Fatalf("hot partition: got %v, want partition 17 in %v", ds, ds)
	}
}

func TestEngineDetectsStarvationOnline(t *testing.T) {
	reg := metrics.NewRegistry()
	e := newTestEngine(t, reg, Options{Interval: time.Hour})
	feedUniform(reg, 8)
	// Machine 3 stalls hard while shipping half the rack's per-machine
	// egress: online starvation (peer-relative goodput baseline).
	reg.Counter("netpass_buffer_stalls_total", metrics.L("machine", "3"),
		metrics.L("thread", "0")).Add(400)
	for m := 0; m < 8; m++ {
		if m == 3 {
			continue
		}
		for d := 0; d < 8; d++ {
			if d != m {
				reg.Counter("netpass_link_bytes_total",
					metrics.L("machine", strconv.Itoa(m)),
					metrics.L("dest", strconv.Itoa(d))).Add(64 << 20)
			}
		}
	}
	e.Step()
	d, ok := find(e.Diagnoses(), DetectorBufferStarvation)
	if !ok {
		t.Fatalf("starvation not detected online: %v", e.Diagnoses())
	}
	if d.Culprit.Machine != 3 {
		t.Fatalf("blamed %v, want machine 3", d.Culprit)
	}
}

func TestEngineDetectsSchedulerStallOnline(t *testing.T) {
	reg := metrics.NewRegistry()
	e := newTestEngine(t, reg, Options{Interval: time.Hour})
	feedUniform(reg, 8)
	for m := 0; m < 8; m++ {
		ml := metrics.L("machine", strconv.Itoa(m))
		reg.Counter("netsched_rounds_total", ml).Add(100)
		idle := uint64(5)
		if m == 2 {
			idle = 90
			reg.Counter("netsched_parks_total", ml).Add(40)
		}
		reg.Counter("netsched_idle_rounds_total", ml).Add(idle)
	}
	e.Step()
	d, ok := find(e.Diagnoses(), DetectorSchedulerStall)
	if !ok {
		t.Fatalf("scheduler stall not detected online: %v", e.Diagnoses())
	}
	if d.Culprit.Machine != 2 {
		t.Fatalf("blamed %v, want machine 2", d.Culprit)
	}
}

func TestEngineDedupesAndTimestamps(t *testing.T) {
	reg := metrics.NewRegistry()
	var calls int
	e := newTestEngine(t, reg, Options{
		Interval:    time.Hour,
		OnDiagnosis: func(Diagnosis) { calls++ },
	})
	feedUniform(reg, 8)
	reg.Gauge("phase_seconds", metrics.L("machine", "6"),
		metrics.L("phase", "network_partition")).Set(4)
	e.Step()
	e.Step()
	e.Step()
	ds := e.Diagnoses()
	if len(ds) != 1 {
		t.Fatalf("repeat evaluations duplicated the diagnosis: %v", ds)
	}
	if calls != 1 {
		t.Fatalf("OnDiagnosis called %d times, want 1", calls)
	}
	if got := reg.Counter("health_diagnoses_total",
		metrics.L("detector", DetectorStraggler)).Value(); got != 1 {
		t.Fatalf("health_diagnoses_total{straggler_machine} = %d, want 1", got)
	}
}

func TestEngineFlightAndDump(t *testing.T) {
	reg := metrics.NewRegistry()
	fr := obsv.NewFlightRecorder(8, 64)
	var dump bytes.Buffer
	e := newTestEngine(t, reg, Options{
		Interval:       time.Hour,
		Flight:         fr,
		HighConfidence: 0.6,
		DumpSink:       &dump,
	})
	feedUniform(reg, 8)
	reg.Gauge("phase_seconds", metrics.L("machine", "6"),
		metrics.L("phase", "network_partition")).Set(40) // severity ≫ 2 → confidence 1
	e.Step()
	var found bool
	for _, ev := range fr.Snapshot() {
		if ev.Kind == "health" && ev.Machine == 6 &&
			strings.Contains(ev.Detail, DetectorStraggler) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no health flight event recorded: %v", fr.Snapshot())
	}
	if !strings.Contains(dump.String(), "flight recorder at detection") {
		t.Fatalf("high-confidence dump missing: %q", dump.String())
	}
	n := dump.Len()
	e.Step() // dump must be one-shot
	if dump.Len() != n {
		t.Fatal("flight dump emitted twice")
	}
}

func TestEngineReportFormats(t *testing.T) {
	reg := metrics.NewRegistry()
	e := newTestEngine(t, reg, Options{Interval: time.Hour})
	feedUniform(reg, 8)
	e.Step()
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Healthy     bool              `json:"healthy"`
		Machines    int               `json:"machines"`
		Evaluations uint64            `json:"evaluations"`
		Diagnoses   []json.RawMessage `json:"diagnoses"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("bad /health JSON: %v\n%s", err, buf.Bytes())
	}
	if !rep.Healthy || rep.Machines != 8 || rep.Evaluations == 0 || len(rep.Diagnoses) != 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	buf.Reset()
	e.WriteText(&buf)
	if !strings.Contains(buf.String(), "healthy") {
		t.Fatalf("text report missing healthy line: %q", buf.String())
	}
	reg.Gauge("phase_seconds", metrics.L("machine", "6"),
		metrics.L("phase", "network_partition")).Set(4)
	e.Step()
	buf.Reset()
	e.WriteText(&buf)
	if !strings.Contains(buf.String(), DetectorStraggler) {
		t.Fatalf("text report missing diagnosis: %q", buf.String())
	}
}

func TestEngineNilSafety(t *testing.T) {
	var e *Engine
	e.Start()
	e.Step()
	e.Stop()
	if e.Diagnoses() != nil {
		t.Fatal("nil engine returned diagnoses")
	}
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	e.WriteText(&buf)
	// Started-but-empty engine against a nil registry field.
	e2 := NewEngine(Options{Machines: 4})
	e2.Start()
	e2.Step()
	e2.Stop()
}

func TestEngineLiveLoop(t *testing.T) {
	// The real lifecycle: a fast ticker evaluating while telemetry is
	// written concurrently — the shape the -race run exercises.
	reg := metrics.NewRegistry()
	e := NewEngine(Options{Machines: 8, Registry: reg, Interval: minInterval})
	e.Start()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				feedUniform(reg, 8)
			}
		}
	}()
	time.Sleep(60 * time.Millisecond)
	close(stop)
	e.Stop()
	if ds := e.Diagnoses(); len(ds) != 0 {
		t.Fatalf("uniform live telemetry diagnosed: %v", ds)
	}
	e.mu.Lock()
	n := e.nEvals
	e.mu.Unlock()
	if n == 0 {
		t.Fatal("loop never evaluated")
	}
}
