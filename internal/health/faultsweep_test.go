package health

import (
	"testing"

	"rackjoin/internal/model"
	"rackjoin/internal/netsched"
	"rackjoin/internal/sim"
)

// sweepConfig is a moderate 1 GB ⋈ 1 GB workload: large enough that the
// network pass exhibits the real credit/backlog dynamics, small enough
// that the full sweep stays in test-suite time. FDR's flat bandwidth
// curve is the one calibrated for 16–64 machine racks (QDR's per-machine
// congestion term zeroes out past ~30 machines).
func sweepConfig(machines int) sim.Config {
	return sim.Config{
		Machines: machines, Cores: 8, Net: model.FDR(),
		RTuples: 64 << 20, STuples: 64 << 20,
	}
}

// starveConfig is the network-bound variant the buffer-starvation cases
// run on: more cores than the IPoIB-class wire can absorb, and small
// buffers over few partitions so the credit discipline actually cycles
// (buffer reuse is a no-op in a CPU-bound pass — senders never wait, so
// there is nothing to starve).
func starveConfig(machines int) sim.Config {
	cfg := sweepConfig(machines)
	cfg.Cores = 16
	cfg.Net = model.IPoIB()
	cfg.NetworkBits = 6
	cfg.BufferSize = 8 << 10
	return cfg
}

func diagnose(t *testing.T, cfg sim.Config) []Diagnosis {
	t.Helper()
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return DiagnoseSim(cfg, res)
}

// find returns the first diagnosis by the named detector, if any.
func find(ds []Diagnosis, detector string) (Diagnosis, bool) {
	for _, d := range ds {
		if d.Detector == detector {
			return d, true
		}
	}
	return Diagnosis{}, false
}

// TestFaultInjectionSweep injects one known fault at a time at 8–64
// machines and asserts the matching detector names the injected culprit.
// Extra detections on a faulted run are allowed (a degraded link also
// starves its sender's buffers — both verdicts are true); the injected
// one must be present and correctly attributed.
func TestFaultInjectionSweep(t *testing.T) {
	for _, nm := range []int{8, 16, 32, 64} {
		t.Run("slow_link", func(t *testing.T) {
			cfg := sweepConfig(nm)
			src, dst := 1, 4%nm
			cfg.DegradeLink(src, dst, 0.25)
			ds := diagnose(t, cfg)
			d, ok := find(ds, DetectorSlowLink)
			if !ok {
				t.Fatalf("@%d machines: degraded link m%d→m%d not detected: %v", nm, src, dst, ds)
			}
			if d.Culprit.Kind != CulpritLink || d.Culprit.Machine != src || d.Culprit.Peer != dst {
				t.Fatalf("@%d machines: blamed %v, injected link m%d→m%d", nm, d.Culprit, src, dst)
			}
		})
		t.Run("straggler_machine", func(t *testing.T) {
			cfg := sweepConfig(nm)
			cfg.SlowMachine(3, 0.3)
			ds := diagnose(t, cfg)
			d, ok := find(ds, DetectorStraggler)
			if !ok {
				t.Fatalf("@%d machines: slowed machine 3 not detected: %v", nm, ds)
			}
			if d.Culprit.Kind != CulpritMachine || d.Culprit.Machine != 3 {
				t.Fatalf("@%d machines: blamed %v, injected machine 3", nm, d.Culprit)
			}
		})
		t.Run("hot_partition", func(t *testing.T) {
			cfg := sweepConfig(nm)
			cfg.Skew = 1.25
			res, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The expected culprit comes from the input histograms the
			// simulator derived, not from the detector under test.
			hot, hotMB := -1, 0.0
			for p, mb := range res.Detail.PartitionMB {
				if mb > hotMB {
					hot, hotMB = p, mb
				}
			}
			d, ok := find(DiagnoseSim(cfg, res), DetectorHotPartition)
			if !ok {
				t.Fatalf("@%d machines: Zipf 1.25 hot partition not detected", nm)
			}
			if d.Culprit.Kind != CulpritPartition || d.Culprit.Partition != hot {
				t.Fatalf("@%d machines: blamed %v, hottest partition is %d (%.1f MB)", nm, d.Culprit, hot, hotMB)
			}
		})
		t.Run("hot_partition_mitigated", func(t *testing.T) {
			// Same skew, but with the skew engine on: the hot partition is
			// split-and-replicated, so the detector must still report the
			// skew — it was real — marked resolved.
			cfg := sweepConfig(nm)
			cfg.Skew = 1.25
			cfg.SkewEngine = true
			res, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Detail == nil || len(res.Detail.SplitPartitions) == 0 {
				t.Fatalf("@%d machines: skew engine split nothing at Zipf 1.25", nm)
			}
			d, ok := find(DiagnoseSim(cfg, res), DetectorHotPartition)
			if !ok {
				t.Fatalf("@%d machines: mitigated hot partition dropped from the report", nm)
			}
			if !d.Resolved {
				t.Fatalf("@%d machines: split hot partition diagnosed unresolved: %v", nm, d)
			}

			// And the unmitigated control run must stay unresolved.
			plain := sweepConfig(nm)
			plain.Skew = 1.25
			if pd, ok := find(diagnose(t, plain), DetectorHotPartition); !ok || pd.Resolved {
				t.Fatalf("@%d machines: unmitigated run resolved=%v found=%v", nm, pd.Resolved, ok)
			}
		})
		t.Run("buffer_starvation", func(t *testing.T) {
			cfg := starveConfig(nm)
			cfg.DropBuffersAt(3, 0.5)
			ds := diagnose(t, cfg)
			d, ok := find(ds, DetectorBufferStarvation)
			if !ok {
				t.Fatalf("@%d machines: dropped buffers at machine 3 not detected: %v", nm, ds)
			}
			if d.Culprit.Kind != CulpritMachine || d.Culprit.Machine != 3 {
				t.Fatalf("@%d machines: blamed %v, injected machine 3", nm, d.Culprit)
			}
		})
		t.Run("buffer_starvation_rack_wide", func(t *testing.T) {
			cfg := starveConfig(nm)
			cfg.DropBuffers(0.5)
			ds := diagnose(t, cfg)
			if _, ok := find(ds, DetectorBufferStarvation); !ok {
				t.Fatalf("@%d machines: rack-wide buffer drops not detected: %v", nm, ds)
			}
		})
		t.Run("scheduler_stall", func(t *testing.T) {
			cfg := sweepConfig(nm)
			cfg.NetSched = netsched.Rotate
			dst := 2
			for src := 0; src < nm; src++ {
				if src != dst {
					cfg.DegradeLink(src, dst, 0.2)
				}
			}
			ds := diagnose(t, cfg)
			d, ok := find(ds, DetectorSchedulerStall)
			if !ok {
				t.Fatalf("@%d machines: schedule stalled on m%d's ingress not detected: %v", nm, dst, ds)
			}
			if d.Culprit.Kind != CulpritMachine || d.Culprit.Machine != dst {
				t.Fatalf("@%d machines: blamed %v, stalled receiver is m%d", nm, d.Culprit, dst)
			}
		})
	}
}

// TestCleanRunsQuiet asserts zero diagnoses on un-faulted runs across
// every transport mode, scheduled and unscheduled, at 8–64 machines —
// the false-positive half of the acceptance criteria.
func TestCleanRunsQuiet(t *testing.T) {
	for _, nm := range []int{8, 16, 32, 64} {
		for _, mode := range []sim.Mode{sim.ModeInterleaved, sim.ModeNonInterleaved, sim.ModeStream} {
			for _, pol := range []netsched.Policy{netsched.Off, netsched.Rotate} {
				cfg := sweepConfig(nm)
				cfg.Mode = mode
				cfg.NetSched = pol
				if ds := diagnose(t, cfg); len(ds) != 0 {
					t.Errorf("@%d machines, %v, netsched %v: clean run diagnosed: %v", nm, mode, pol, ds)
				}
			}
		}
	}
	// A congested-but-scheduled rack is still healthy: the pairing
	// discipline bounds the backlog, so no detector should fire.
	cfg := sweepConfig(16)
	cfg.NetSched = netsched.Rotate
	cfg.SwitchContention = 0.03
	if ds := diagnose(t, cfg); len(ds) != 0 {
		t.Errorf("congested scheduled run diagnosed: %v", ds)
	}

	// A network-bound rack stalls on buffer reuse constantly — that is
	// the legitimate back-pressure of a saturated wire, not starvation,
	// and the goodput gate must keep the detector quiet on it.
	for _, nm := range []int{8, 64} {
		if ds := diagnose(t, starveConfig(nm)); len(ds) != 0 {
			t.Errorf("@%d machines: clean network-bound run diagnosed: %v", nm, ds)
		}
	}
}
