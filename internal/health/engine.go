package health

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"rackjoin/internal/metrics"
	"rackjoin/internal/obsv"
)

// Engine implements obsv.HealthSource so /health serves live verdicts.
var _ obsv.HealthSource = (*Engine)(nil)

// Options configures an Engine. Machines and Registry are required; every
// other field has a working default.
type Options struct {
	// Machines is the rack size the metrics describe.
	Machines int
	// Registry is the live registry the observed join writes into.
	Registry *metrics.Registry
	// Flight, when set, receives one "health" event per new diagnosis and
	// is the source of the high-confidence dump.
	Flight *obsv.FlightRecorder
	// Interval is the evaluation period; <= 0 selects DefaultInterval.
	Interval time.Duration
	// ExpectedLinkMBps is the model payload bandwidth of one host link;
	// 0 restricts the detectors to peer-relative baselines.
	ExpectedLinkMBps float64
	// HighConfidence is the threshold at which a diagnosis triggers the
	// one-shot flight-recorder dump to DumpSink; <= 0 selects 0.9.
	HighConfidence float64
	// DumpSink receives one flight-recorder text dump the first time a
	// diagnosis reaches HighConfidence (the black box is read out the
	// moment the engine is sure something is wrong, before the ring
	// overwrites the evidence). Nil disables the dump.
	DumpSink io.Writer
	// OnDiagnosis, when set, is called once per new diagnosis (deduped by
	// detector and culprit), from the engine goroutine.
	OnDiagnosis func(Diagnosis)
}

// DefaultInterval is the evaluation period used when Options.Interval is
// unset: frequent enough to catch a fault within a phase, far too coarse
// to register against the run's CPU budget.
const DefaultInterval = 250 * time.Millisecond

const minInterval = 10 * time.Millisecond

// Engine is the online front-end of the diagnosis plane: a background
// evaluator that snapshots the registry on a fixed period, folds the
// deltas since Start into an Observation, runs the detectors, and
// publishes the verdicts — on /health (it implements obsv.HealthSource),
// into the flight recorder, through OnDiagnosis, and as health_* metrics
// on the registry it observes. All methods are nil-safe.
type Engine struct {
	opts  Options
	evals *metrics.Counter

	mu      sync.Mutex
	start   time.Time
	base    []metrics.Sample
	seen    map[string]int // detector+culprit → index into diags
	diags   []Diagnosis
	nEvals  uint64
	dumped  bool
	running bool
	stop    chan struct{}
	done    chan struct{}
}

// NewEngine builds an engine; Start begins evaluation.
func NewEngine(o Options) *Engine {
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.Interval < minInterval {
		o.Interval = minInterval
	}
	if o.HighConfidence <= 0 {
		o.HighConfidence = 0.9
	}
	e := &Engine{opts: o, seen: make(map[string]int)}
	if o.Registry != nil {
		e.evals = o.Registry.Counter("health_evaluations_total")
	}
	return e
}

// Start snapshots the registry as the delta baseline and launches the
// evaluation loop. Starting a started or nil engine is a no-op.
func (e *Engine) Start() {
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		return
	}
	e.running = true
	e.start = time.Now()
	e.base = e.opts.Registry.Snapshot()
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	stop, done := e.stop, e.done
	e.mu.Unlock()
	go e.loop(stop, done)
}

func (e *Engine) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(e.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			e.Step()
		}
	}
}

// Stop halts the loop and runs one final evaluation over the end-of-run
// registry state, so a fault landing between the last tick and join
// completion is still diagnosed.
func (e *Engine) Stop() {
	if e == nil {
		return
	}
	e.mu.Lock()
	if !e.running {
		e.mu.Unlock()
		return
	}
	e.running = false
	stop, done := e.stop, e.done
	e.mu.Unlock()
	close(stop)
	<-done
	e.Step()
}

// Step runs one evaluation immediately: snapshot, delta against the
// Start baseline, detect, record. It is the loop body, exported so tests
// and post-run reports can force a final evaluation deterministically.
func (e *Engine) Step() {
	if e == nil || e.opts.Registry == nil {
		return
	}
	e.mu.Lock()
	base := e.base
	start := e.start
	e.mu.Unlock()
	if base == nil && start.IsZero() {
		return // never started
	}
	o := e.observe(base, start)
	ds := Evaluate(o)
	e.evals.Inc()
	e.mu.Lock()
	e.nEvals++
	fresh := e.recordLocked(ds, o.WallSec)
	e.mu.Unlock()
	for _, d := range fresh {
		e.publish(d)
	}
}

// observe folds the registry deltas since Start into an Observation.
// Counters arrive cumulative-since-start (the delta against the Start
// baseline), gauges as current levels. Wire-busy time is not observable
// online, so LinkBusySec stays nil and rates are judged peer-relatively
// against the elapsed window.
func (e *Engine) observe(base []metrics.Sample, start time.Time) Observation {
	const mb = 1 << 20
	nm := e.opts.Machines
	o := Observation{
		Machines:         nm,
		WallSec:          time.Since(start).Seconds(),
		ExpectedLinkMBps: e.opts.ExpectedLinkMBps,
	}
	valid := func(m int) bool { return m >= 0 && m < nm }
	perMachine := func(sl *[]float64) []float64 {
		if *sl == nil {
			*sl = make([]float64, nm)
		}
		return *sl
	}
	// phase_seconds gauges are posted when a phase *completes*, so mid-run
	// the machines have reported different phase sets — summing them
	// blindly makes the machine that finished a phase first look like the
	// straggler. Collect per phase and fold only the phases every machine
	// has reported, so totals are always apples-to-apples.
	phaseSec := make(map[string][]float64)
	splitSeen := make(map[int]bool)
	for _, s := range metrics.Delta(base, e.opts.Registry.Snapshot()) {
		m, okM := labelInt(s.Labels, "machine")
		switch s.Name {
		case "netpass_link_bytes_total":
			d, okD := labelInt(s.Labels, "dest")
			if okM && okD && valid(m) && valid(d) && s.Value > 0 {
				if o.LinkMB == nil {
					o.LinkMB = make([][]float64, nm)
					for i := range o.LinkMB {
						o.LinkMB[i] = make([]float64, nm)
					}
				}
				o.LinkMB[m][d] += s.Value / mb
			}
		case "netpass_buffer_stalls_total":
			if okM && valid(m) {
				perMachine(&o.Stalls)[m] += s.Value
			}
		case "netpass_buffer_flushes_total":
			if okM && valid(m) {
				perMachine(&o.Flushes)[m] += s.Value
			}
		case "netpass_bytes_shipped_total":
			if p, okP := labelInt(s.Labels, "partition"); okP && s.Value > 0 {
				if o.PartitionMB == nil {
					o.PartitionMB = make(map[int]float64)
				}
				o.PartitionMB[p] += s.Value / mb
			}
		case "skew_replicated_bytes_total":
			if p, okP := labelInt(s.Labels, "partition"); okP && s.Value > 0 {
				splitSeen[p] = true
			}
		case "phase_seconds":
			if okM && valid(m) {
				ph := s.Labels["phase"]
				if phaseSec[ph] == nil {
					phaseSec[ph] = make([]float64, nm)
				}
				phaseSec[ph][m] += s.Value
			}
		case "netsched_rounds_total":
			if okM && valid(m) {
				o.Scheduled = true
				perMachine(&o.SchedRounds)[m] += s.Value
			}
		case "netsched_idle_rounds_total":
			if okM && valid(m) {
				perMachine(&o.SchedIdle)[m] += s.Value
			}
		case "netsched_parks_total":
			if okM && valid(m) {
				perMachine(&o.SchedParks)[m] += s.Value
			}
		case "scheduler_injects_total":
			if okM && valid(m) {
				perMachine(&o.Injects)[m] += s.Value
			}
		}
	}
	for p := range splitSeen {
		o.SplitPartitions = append(o.SplitPartitions, p)
	}
	sort.Ints(o.SplitPartitions)
	for _, vals := range phaseSec {
		complete := true
		for _, v := range vals {
			if v <= 0 {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		pm := perMachine(&o.PhaseTotalSec)
		for m, v := range vals {
			pm[m] += v
		}
	}
	return o
}

// recordLocked merges one evaluation's diagnoses into the retained set,
// deduplicating by detector and culprit: a repeat keeps its first
// ElapsedSeconds (when the engine first caught it) and takes the higher
// confidence. It returns the diagnoses seen for the first time.
func (e *Engine) recordLocked(ds []Diagnosis, elapsed float64) []Diagnosis {
	var fresh []Diagnosis
	for _, d := range ds {
		key := d.Detector + "|" + d.Culprit.String()
		if i, ok := e.seen[key]; ok {
			if d.Confidence > e.diags[i].Confidence {
				e.diags[i].Confidence = d.Confidence
				e.diags[i].Evidence = d.Evidence
			}
			// Mitigation is sticky: once the skew engine is seen splitting
			// the culprit, the diagnosis stays resolved.
			if d.Resolved {
				e.diags[i].Resolved = true
			}
			continue
		}
		d.ElapsedSeconds = elapsed
		e.seen[key] = len(e.diags)
		e.diags = append(e.diags, d)
		fresh = append(fresh, d)
	}
	return fresh
}

// publish pushes one newly seen diagnosis to every outlet: the
// health_diagnoses_total{detector} counter, the flight recorder, the
// OnDiagnosis callback, and — the first time confidence reaches
// HighConfidence — the one-shot flight dump to DumpSink.
func (e *Engine) publish(d Diagnosis) {
	if e.opts.Registry != nil {
		e.opts.Registry.Counter("health_diagnoses_total",
			metrics.L("detector", d.Detector)).Inc()
	}
	e.opts.Flight.Note(flightMachine(d.Culprit), "health",
		fmt.Sprintf("%s %s conf %.2f", d.Detector, d.Culprit, d.Confidence), 0, 0)
	if e.opts.OnDiagnosis != nil {
		e.opts.OnDiagnosis(d)
	}
	// A resolved diagnosis is a mitigated condition — no black-box dump;
	// the one-shot readout is reserved for a fault someone must act on.
	if d.Resolved {
		return
	}
	if d.Confidence >= e.opts.HighConfidence && e.opts.DumpSink != nil && e.opts.Flight != nil {
		e.mu.Lock()
		dump := !e.dumped
		e.dumped = true
		e.mu.Unlock()
		if dump {
			fmt.Fprintf(e.opts.DumpSink,
				"health: %s blamed %s (confidence %.2f) — flight recorder at detection:\n",
				d.Detector, d.Culprit, d.Confidence)
			e.opts.Flight.WriteText(e.opts.DumpSink)
		}
	}
}

// flightMachine maps a culprit to the flight ring the event lands on:
// the blamed machine, the source of a blamed link, ring 0 for a
// partition (no machine is at fault).
func flightMachine(c Culprit) int {
	if c.Kind == CulpritPartition {
		return 0
	}
	return c.Machine
}

// Diagnoses returns the retained verdicts, most confident first.
func (e *Engine) Diagnoses() []Diagnosis {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	out := make([]Diagnosis, len(e.diags))
	copy(out, e.diags)
	e.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Confidence > out[j].Confidence })
	return out
}

// healthReport is the JSON shape /health serves.
type healthReport struct {
	Healthy     bool        `json:"healthy"`
	ElapsedSec  float64     `json:"elapsed_s"`
	Machines    int         `json:"machines"`
	Evaluations uint64      `json:"evaluations"`
	Diagnoses   []Diagnosis `json:"diagnoses"`
}

func (e *Engine) report() healthReport {
	r := healthReport{Diagnoses: []Diagnosis{}}
	if e == nil {
		return r
	}
	r.Diagnoses = e.Diagnoses()
	if r.Diagnoses == nil {
		r.Diagnoses = []Diagnosis{}
	}
	e.mu.Lock()
	if !e.start.IsZero() {
		r.ElapsedSec = time.Since(e.start).Seconds()
	}
	r.Machines = e.opts.Machines
	r.Evaluations = e.nEvals
	e.mu.Unlock()
	r.Healthy = true
	for _, d := range r.Diagnoses {
		if !d.Resolved {
			r.Healthy = false
			break
		}
	}
	return r
}

// WriteJSON serves the /health default format.
func (e *Engine) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e.report())
}

// WriteText serves /health?format=text: the shape -diagnose prints.
func (e *Engine) WriteText(w io.Writer) {
	r := e.report()
	if len(r.Diagnoses) == 0 {
		fmt.Fprintf(w, "healthy: no diagnoses over %d evaluations (%.1fs elapsed, %d machines)\n",
			r.Evaluations, r.ElapsedSec, r.Machines)
		return
	}
	state := "unhealthy"
	if r.Healthy {
		state = "healthy (all diagnoses resolved)"
	}
	fmt.Fprintf(w, "%s: %d diagnosis(es) over %d evaluations (%.1fs elapsed, %d machines)\n",
		state, len(r.Diagnoses), r.Evaluations, r.ElapsedSec, r.Machines)
	for _, d := range r.Diagnoses {
		fmt.Fprintf(w, "[%7.2fs] %s\n", d.ElapsedSeconds, d)
	}
}

// labelInt parses one integer label, reporting whether it was present
// and well formed.
func labelInt(labels map[string]string, key string) (int, bool) {
	v, ok := labels[key]
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return n, true
}
