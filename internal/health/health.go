// Package health is the rack-wide diagnosis plane of the repository: it
// turns the raw telemetry every layer already records — per-machine
// metric deltas (the metrics.Delta/SampleKey API), flight-recorder
// events, netsched round telemetry, per-link byte counters — into
// derived health indicators and, on top of those, structured Diagnosis
// records that name a culprit (a machine, a directed link, a partition),
// the evidence that fired, and a confidence.
//
// The package has two front-ends over one shared evaluation core:
//
//   - Engine (engine.go) consumes a live registry while a join runs,
//     serving /health on the obsv server and streaming diagnoses into
//     the flight recorder;
//   - FromSim (sim.go) builds an Observation from a finished simulated
//     execution, which is how the detectors are validated: the
//     fault-injection sweep (faultsweep_test.go) injects one known
//     degradation at a time and asserts the matching detector names the
//     injected culprit — and that clean runs stay quiet.
//
// The five detectors and the §6 behaviour each one guards:
//
//	slow_link         one directed link achieving well below the rack's
//	                  median payload bandwidth (a degraded NIC/cable —
//	                  the balanced all-to-all of §4.2 sinks to its
//	                  slowest link)
//	straggler_machine one machine's phase total lagging the rack median
//	                  (§6.5's stragglers, from CPU contention rather
//	                  than data skew)
//	hot_partition     one network partition drawing a dominant share of
//	                  the shipped bytes (§6.5's Zipf workloads)
//	buffer_starvation senders stalling on buffer reuse while their links
//	                  run below the expected payload rate — buffers, not
//	                  bandwidth, are the constraint (lost/retransmitted
//	                  transfers, undersized pools)
//	scheduler_stall   the communication schedule's pacing gates
//	                  dominating the pass (one receiver's backlog
//	                  parking every sender)
package health

import (
	"fmt"
	"math"
	"sort"
)

// Detector names, as they appear in Diagnosis.Detector and the
// health_diagnoses_total{detector} counter.
const (
	DetectorSlowLink         = "slow_link"
	DetectorStraggler        = "straggler_machine"
	DetectorHotPartition     = "hot_partition"
	DetectorBufferStarvation = "buffer_starvation"
	DetectorSchedulerStall   = "scheduler_stall"
)

// CulpritKind classifies what a diagnosis blames.
type CulpritKind string

// Culprit kinds.
const (
	CulpritMachine   CulpritKind = "machine"
	CulpritLink      CulpritKind = "link"
	CulpritPartition CulpritKind = "partition"
)

// Culprit names the entity a diagnosis blames: a machine, a directed
// link Machine→Peer, or a network partition.
type Culprit struct {
	Kind CulpritKind `json:"kind"`
	// Machine is the blamed machine, or the source of a blamed link.
	Machine int `json:"machine"`
	// Peer is the destination of a blamed link (link kind only).
	Peer int `json:"peer,omitempty"`
	// Partition is the blamed network partition (partition kind only).
	Partition int `json:"partition,omitempty"`
}

// String renders the culprit the way reports and flight events name it.
func (c Culprit) String() string {
	switch c.Kind {
	case CulpritLink:
		return fmt.Sprintf("link m%d→m%d", c.Machine, c.Peer)
	case CulpritPartition:
		return fmt.Sprintf("partition %d", c.Partition)
	default:
		return fmt.Sprintf("machine %d", c.Machine)
	}
}

// Evidence is one indicator that contributed to a diagnosis: its value,
// the baseline it was compared against, and an optional detail.
type Evidence struct {
	Indicator string  `json:"indicator"`
	Value     float64 `json:"value"`
	Baseline  float64 `json:"baseline,omitempty"`
	Detail    string  `json:"detail,omitempty"`
}

// Diagnosis is one detector verdict: the culprit, the evidence, and a
// confidence in (0, 1] that grows with how far past its threshold the
// detector fired (0.5 at the threshold, 1.0 at twice the threshold).
type Diagnosis struct {
	Detector   string     `json:"detector"`
	Culprit    Culprit    `json:"culprit"`
	Evidence   []Evidence `json:"evidence"`
	Confidence float64    `json:"confidence"`
	// ElapsedSeconds is when the engine first emitted this diagnosis,
	// relative to Engine.Start; zero for post-run (sim) evaluation.
	ElapsedSeconds float64 `json:"elapsed_s,omitempty"`
	// Resolved marks a condition that was real but already mitigated by
	// the time it was evaluated — e.g. a hot partition the skew engine
	// split-and-replicated across the rack. Resolved diagnoses are kept
	// in the report (the skew existed) but do not mark the rack
	// unhealthy.
	Resolved bool `json:"resolved,omitempty"`
}

// String renders the diagnosis as one report line.
func (d Diagnosis) String() string {
	s := fmt.Sprintf("%-18s %-16s confidence %.2f", d.Detector, d.Culprit, d.Confidence)
	if d.Resolved {
		s += "  [resolved]"
	}
	for _, ev := range d.Evidence {
		s += fmt.Sprintf("\n    %-24s %.4g", ev.Indicator, ev.Value)
		if ev.Baseline != 0 {
			s += fmt.Sprintf(" (baseline %.4g)", ev.Baseline)
		}
		if ev.Detail != "" {
			s += "  " + ev.Detail
		}
	}
	return s
}

// Observation is one snapshot of the derived health indicators the
// detectors evaluate. Both front-ends produce it: the online Engine
// accumulates it from registry deltas, FromSim derives it from a
// simulated execution. Per-machine slices are indexed by machine ID;
// nil slices mean "not observed" and disable the detectors that need
// them — every detector degrades to silence, never to a guess.
type Observation struct {
	// Machines is the rack size.
	Machines int
	// WallSec is the observation window: the network-pass duration for
	// post-run evaluation, the elapsed run time for the online engine.
	WallSec float64

	// ExpectedLinkMBps is the model payload bandwidth of one host link
	// (MB/s); 0 means unknown, restricting detectors to peer-relative
	// baselines.
	ExpectedLinkMBps float64
	// LinkMB[src][dst] is the payload shipped on each directed link, MB.
	LinkMB [][]float64
	// LinkBusySec[src][dst] is the wire time that payload occupied; nil
	// when only byte counts are observed (online), in which case
	// achieved rates are computed against WallSec and compared only
	// peer-relatively.
	LinkBusySec [][]float64

	// PhaseTotalSec is each machine's total across completed phases.
	PhaseTotalSec []float64

	// Stalls and Flushes are each sender's buffer-reuse stalls and
	// buffer posts; Retransmits counts transfers the fault layer (or a
	// lossy fabric) forced onto the wire twice.
	Stalls      []float64
	Flushes     []float64
	Retransmits []float64

	// PartitionMB is the payload shipped per network partition, MB.
	PartitionMB map[int]float64
	// SplitPartitions lists the partitions the skew engine
	// split-and-replicated; a hot partition in this set is diagnosed as
	// already resolved.
	SplitPartitions []int

	// Scheduled reports whether a communication schedule was active.
	Scheduled bool
	// PacedWaitSec[dst] is the time transfers spent gated by the pairing
	// discipline waiting for dst's ingress backlog to drain (post-run
	// view); nil online, where SchedRounds/SchedIdle/SchedParks carry
	// the netsched round telemetry instead.
	PacedWaitSec []float64
	SchedRounds  []float64
	SchedIdle    []float64
	SchedParks   []float64

	// Injects is each machine's readiness-injection count (pipelined
	// runs); with Flushes it feeds the starvation indicator of the
	// report, not a detector.
	Injects []float64
}

// Detector thresholds. Each detector fires when its severity ratio —
// indicator over threshold — reaches 1; confidence is conf(severity).
// The values are set so that the clean-run sweep (every transport mode,
// scheduled and unscheduled, 8–64 machines, uniform workload) stays
// silent with margin, while the sweep's injected faults (§ faultsweep)
// land well past 1.
const (
	// slowLinkFactor: a link is slow when its achieved payload rate is
	// below this fraction of the rack's median link rate. Uniform
	// all-to-all traffic keeps healthy links within a few percent of the
	// median; a degraded link achieves exactly its degradation factor.
	slowLinkFactor = 0.5
	// slowLinkMinShare: links carrying less than this fraction of the
	// mean per-link payload are not judged (tiny flows have noisy rates).
	slowLinkMinShare = 0.25

	// stragglerFactor: a machine is a straggler when its phase total
	// exceeds this multiple of the rack median. Clean runs spread within
	// ~1.01× at 2^10 partitions (round-robin imbalance only), while a
	// degraded machine drags the whole rack's network pass with it, so
	// its own total exceeds the (also-inflated) median by a diluted
	// margin — the threshold sits between the two regimes.
	stragglerFactor = 1.3

	// hotPartitionFactor: max partition bytes over mean partition bytes.
	// Uniform workloads sit near 1; Zipf 1.2+ reaches tens.
	hotPartitionFactor = 4.0
	// hotPartitionMinParts: need at least this many partitions with
	// traffic before a max/mean ratio means anything.
	hotPartitionMinParts = 8

	// starveStallRate: stalls per flush above which a sender counts as
	// back-pressured. This is a presence gate, not the discriminating
	// signal — network-bound runs stall legitimately at similar rates
	// (a CPU-bound sender never stalls at all), so the detector fires
	// only when starveGoodputFrac shows the wire underdelivering too.
	starveStallRate = 0.02
	// starveGoodputFrac: the sender's achieved egress payload rate must
	// also be below this fraction of the expected (or median) link rate
	// — stalling *while the wire is not delivering* is starvation;
	// stalling at full rate is just a network-bound run.
	starveGoodputFrac = 0.75
	// starveMinFlushes: minimum posts before stall rates are judged.
	starveMinFlushes = 16

	// schedWaitFrac: minimum pacing-gate wait attributable to one
	// destination, as a fraction of the pass, before the schedule is
	// judged at all (filters the near-zero gate noise of self-pacing
	// transports).
	schedWaitFrac = 0.2
	// schedStallRatio: the worst destination's accumulated gate wait
	// over the median destination's. Healthy scheduled passes gate
	// symmetrically (the synchronized fill convoy parks briefly at every
	// receiver in turn, max/median ≈ 1); a stalled receiver's backlog
	// collects a dominant share.
	schedStallRatio = 2.5
	// schedIdleFrac is the online counterpart: the fraction of netsched
	// rounds that advanced with nothing to send, judged only when parks
	// show there was parked work waiting.
	schedIdleFrac = 0.6
	// schedMinRounds: minimum observed rounds before idle fractions are
	// judged online.
	schedMinRounds = 16
)

// conf maps a severity ratio (indicator ÷ threshold, ≥ 1 when a
// detector fires) to a confidence: 0.5 at the threshold, 1.0 at twice
// the threshold and beyond.
func conf(severity float64) float64 {
	c := 0.5 * severity
	if c > 1 {
		return 1
	}
	if c < 0 {
		return 0
	}
	return c
}

// Evaluate runs every detector over one observation and returns the
// diagnoses, most confident first. A healthy observation returns nil.
func Evaluate(o Observation) []Diagnosis {
	var out []Diagnosis
	out = append(out, detectSlowLink(o)...)
	out = append(out, detectStraggler(o)...)
	out = append(out, detectHotPartition(o)...)
	out = append(out, detectBufferStarvation(o)...)
	out = append(out, detectSchedulerStall(o)...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Confidence > out[j].Confidence })
	return out
}

// median returns the median of vs (vs is sorted in place).
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// linkRate returns the achieved payload rate of link (i,j): against its
// wire-busy time when observed, else against the observation window.
func (o *Observation) linkRate(i, j int) float64 {
	mb := o.LinkMB[i][j]
	if o.LinkBusySec != nil {
		if busy := o.LinkBusySec[i][j]; busy > 0 {
			return mb / busy
		}
		return 0
	}
	if o.WallSec > 0 {
		return mb / o.WallSec
	}
	return 0
}

// detectSlowLink compares every traffic-bearing directed link's achieved
// payload rate against the rack median and blames the worst link below
// slowLinkFactor × median.
func detectSlowLink(o Observation) []Diagnosis {
	if len(o.LinkMB) == 0 {
		return nil
	}
	type link struct {
		src, dst int
		mb, rate float64
	}
	var links []link
	var totalMB float64
	for i := range o.LinkMB {
		for j := range o.LinkMB[i] {
			if mb := o.LinkMB[i][j]; mb > 0 {
				links = append(links, link{i, j, mb, o.linkRate(i, j)})
				totalMB += mb
			}
		}
	}
	if len(links) < 2 {
		return nil
	}
	meanMB := totalMB / float64(len(links))
	rates := make([]float64, 0, len(links))
	for _, l := range links {
		if l.mb >= slowLinkMinShare*meanMB && l.rate > 0 {
			rates = append(rates, l.rate)
		}
	}
	if len(rates) < 2 {
		return nil
	}
	med := median(rates)
	if med <= 0 {
		return nil
	}
	worst, worstRate := link{}, math.Inf(1)
	for _, l := range links {
		if l.mb < slowLinkMinShare*meanMB || l.rate <= 0 {
			continue
		}
		if l.rate < worstRate {
			worst, worstRate = l, l.rate
		}
	}
	if worstRate >= slowLinkFactor*med {
		return nil
	}
	// severity: deficit from the median over the firing deficit.
	severity := (1 - worstRate/med) / (1 - slowLinkFactor)
	ev := []Evidence{
		{Indicator: "link_achieved_mbps", Value: worstRate, Baseline: med,
			Detail: fmt.Sprintf("%.1f MB over m%d→m%d", worst.mb, worst.src, worst.dst)},
	}
	if o.ExpectedLinkMBps > 0 {
		ev = append(ev, Evidence{Indicator: "model_link_mbps", Value: o.ExpectedLinkMBps})
	}
	return []Diagnosis{{
		Detector:   DetectorSlowLink,
		Culprit:    Culprit{Kind: CulpritLink, Machine: worst.src, Peer: worst.dst},
		Evidence:   ev,
		Confidence: conf(severity),
	}}
}

// detectStraggler blames the machine whose phase total exceeds
// stragglerFactor × the rack median.
func detectStraggler(o Observation) []Diagnosis {
	var totals []float64
	for _, t := range o.PhaseTotalSec {
		if t > 0 {
			totals = append(totals, t)
		}
	}
	// Judge only once most of the rack has reported: mid-run, machines
	// that merely haven't finished a phase yet are not stragglers.
	if len(totals) < 3 || len(totals) < o.Machines {
		return nil
	}
	med := median(append([]float64(nil), totals...))
	if med <= 0 {
		return nil
	}
	worst, worstT := -1, 0.0
	for m, t := range o.PhaseTotalSec {
		if t > worstT {
			worst, worstT = m, t
		}
	}
	if worst < 0 || worstT < stragglerFactor*med {
		return nil
	}
	return []Diagnosis{{
		Detector: DetectorStraggler,
		Culprit:  Culprit{Kind: CulpritMachine, Machine: worst},
		Evidence: []Evidence{
			{Indicator: "phase_total_seconds", Value: worstT, Baseline: med,
				Detail: fmt.Sprintf("lag %.3fs vs rack median", worstT-med)},
		},
		Confidence: conf((worstT / med) / stragglerFactor),
	}}
}

// detectHotPartition blames the partition drawing a dominant share of
// the shipped bytes.
func detectHotPartition(o Observation) []Diagnosis {
	if len(o.PartitionMB) < hotPartitionMinParts {
		return nil
	}
	var total, max float64
	hot := -1
	for p, mb := range o.PartitionMB {
		if mb <= 0 {
			continue
		}
		total += mb
		if mb > max || (mb == max && (hot < 0 || p < hot)) {
			max, hot = mb, p
		}
	}
	n := len(o.PartitionMB)
	mean := total / float64(n)
	if hot < 0 || mean <= 0 || max < hotPartitionFactor*mean {
		return nil
	}
	d := Diagnosis{
		Detector: DetectorHotPartition,
		Culprit:  Culprit{Kind: CulpritPartition, Partition: hot},
		Evidence: []Evidence{
			{Indicator: "partition_mb_max_mean_ratio", Value: max / mean, Baseline: hotPartitionFactor,
				Detail: fmt.Sprintf("%.1f MB of %.1f MB total over %d partitions", max, total, n)},
		},
		Confidence: conf((max / mean) / hotPartitionFactor),
	}
	// A hot partition the skew engine already split-and-replicated is a
	// mitigated condition: every machine holds a share of it, so nobody
	// is the bottleneck. Report it — the skew was real — but resolved.
	for _, p := range o.SplitPartitions {
		if p == hot {
			d.Resolved = true
			d.Evidence = append(d.Evidence, Evidence{
				Indicator: "skew_engine_split",
				Value:     float64(len(o.SplitPartitions)),
				Detail:    fmt.Sprintf("partition %d split-and-replicated across the rack; load already rebalanced", hot),
			})
			break
		}
	}
	return []Diagnosis{d}
}

// egressStats sums machine m's rows of the link matrices: payload MB
// shipped and, when observed, the wire time it occupied.
func (o *Observation) egressStats(m int) (mb, busy float64) {
	if m >= len(o.LinkMB) {
		return 0, 0
	}
	for j, v := range o.LinkMB[m] {
		mb += v
		if o.LinkBusySec != nil {
			busy += o.LinkBusySec[m][j]
		}
	}
	return mb, busy
}

// detectBufferStarvation looks for senders stalling on buffer reuse
// while their links deliver payload below the expected rate — the
// signature of starved pools (retransmissions, dropped buffers,
// undersized credit pools), as opposed to the legitimate stalling of a
// network-bound run at full wire rate.
func detectBufferStarvation(o Observation) []Diagnosis {
	if len(o.Stalls) == 0 || len(o.Flushes) == 0 || len(o.LinkMB) == 0 {
		return nil
	}
	// Baseline for "the wire is underdelivering": the model rate when
	// busy-time goodput is observable, else the rack's median achieved
	// egress rate (which catches targeted faults online).
	busyBased := o.LinkBusySec != nil && o.ExpectedLinkMBps > 0
	var medRate float64
	if !busyBased {
		var rates []float64
		for m := range o.LinkMB {
			if mb, _ := o.egressStats(m); mb > 0 && o.WallSec > 0 {
				rates = append(rates, mb/o.WallSec)
			}
		}
		if len(rates) < 3 {
			return nil
		}
		medRate = median(rates)
		if medRate <= 0 {
			return nil
		}
	}
	worst, worstSev := -1, 0.0
	var worstEv []Evidence
	affected := 0
	for m := range o.Flushes {
		if o.Flushes[m] < starveMinFlushes || m >= len(o.Stalls) {
			continue
		}
		stallRate := o.Stalls[m] / o.Flushes[m]
		if stallRate <= starveStallRate {
			continue
		}
		mb, busy := o.egressStats(m)
		if mb <= 0 {
			continue
		}
		var achieved, baseline float64
		if busyBased {
			if busy <= 0 {
				continue
			}
			achieved, baseline = mb/busy, o.ExpectedLinkMBps
		} else {
			achieved, baseline = mb/o.WallSec, medRate
		}
		if achieved >= starveGoodputFrac*baseline {
			continue // stalling at full rate: network-bound, not starved
		}
		affected++
		sev := stallRate / starveStallRate
		if gp := (1 - achieved/baseline) / (1 - starveGoodputFrac); gp < sev {
			sev = gp // confidence is bounded by the weaker of the two signals
		}
		if sev > worstSev {
			worstSev, worst = sev, m
			worstEv = []Evidence{
				{Indicator: "stall_rate", Value: stallRate, Baseline: starveStallRate,
					Detail: fmt.Sprintf("%.0f stalls over %.0f flushes", o.Stalls[m], o.Flushes[m])},
				{Indicator: "egress_goodput_mbps", Value: achieved, Baseline: baseline},
			}
			if m < len(o.Retransmits) && o.Retransmits[m] > 0 {
				worstEv = append(worstEv, Evidence{Indicator: "retransmits", Value: o.Retransmits[m]})
			}
		}
	}
	if worst < 0 {
		return nil
	}
	if affected > 1 {
		worstEv = append(worstEv, Evidence{Indicator: "machines_affected", Value: float64(affected),
			Detail: "starvation is rack-wide, worst machine named"})
	}
	return []Diagnosis{{
		Detector:   DetectorBufferStarvation,
		Culprit:    Culprit{Kind: CulpritMachine, Machine: worst},
		Evidence:   worstEv,
		Confidence: conf(worstSev),
	}}
}

// detectSchedulerStall fires when the communication schedule's pacing
// gates dominate the pass. Post-run, the paced-wait ledger names the
// receiver whose backlog parked the senders; online, a machine whose
// rounds mostly advance idle while it holds parked buffers is starving
// behind its own schedule.
func detectSchedulerStall(o Observation) []Diagnosis {
	if !o.Scheduled {
		return nil
	}
	if o.PacedWaitSec != nil && o.WallSec > 0 {
		worst, worstW := -1, 0.0
		for d, w := range o.PacedWaitSec {
			if w > worstW {
				worst, worstW = d, w
			}
		}
		if worst < 0 || worstW < schedWaitFrac*o.WallSec {
			return nil
		}
		// The schedule must be gating rack-wide (median destination wait
		// > 0) before one destination's dominance means anything: a
		// synchronized cold start parks the whole rack on partition 0's
		// owner once, with zero gating anywhere else, and that transient
		// is not a stalled receiver.
		med := median(append([]float64(nil), o.PacedWaitSec...))
		if med <= 0 || worstW < schedStallRatio*med {
			return nil
		}
		severity := worstW / (schedStallRatio * med)
		return []Diagnosis{{
			Detector: DetectorSchedulerStall,
			Culprit:  Culprit{Kind: CulpritMachine, Machine: worst},
			Evidence: []Evidence{
				{Indicator: "paced_wait_seconds", Value: worstW, Baseline: med,
					Detail: fmt.Sprintf("senders gated on m%d's ingress backlog (%.3fs pass, median dest %.3fs)", worst, o.WallSec, med)},
			},
			Confidence: conf(severity),
		}}
	}
	// Online: netsched round telemetry.
	worst, worstFrac := -1, 0.0
	for m := range o.SchedRounds {
		rounds := o.SchedRounds[m]
		if rounds < schedMinRounds || m >= len(o.SchedIdle) {
			continue
		}
		if m >= len(o.SchedParks) || o.SchedParks[m] == 0 {
			continue // idling without parked work is a drained schedule, not a stall
		}
		idleFrac := o.SchedIdle[m] / rounds
		if idleFrac > schedIdleFrac && idleFrac > worstFrac {
			worst, worstFrac = m, idleFrac
		}
	}
	if worst < 0 {
		return nil
	}
	return []Diagnosis{{
		Detector: DetectorSchedulerStall,
		Culprit:  Culprit{Kind: CulpritMachine, Machine: worst},
		Evidence: []Evidence{
			{Indicator: "idle_round_fraction", Value: worstFrac, Baseline: schedIdleFrac,
				Detail: fmt.Sprintf("%.0f of %.0f rounds idle with %.0f parks", o.SchedIdle[worst], o.SchedRounds[worst], o.SchedParks[worst])},
		},
		Confidence: conf(worstFrac / schedIdleFrac),
	}}
}
