package mcjoin

import (
	"testing"
	"testing/quick"

	"rackjoin/internal/datagen"
	"rackjoin/internal/relation"
)

func verify(t *testing.T, name string, res *Result, w datagen.Workload) {
	t.Helper()
	want := datagen.ExpectedJoin(w.Outer)
	if res.Matches != want.Matches {
		t.Fatalf("%s: matches = %d, want %d", name, res.Matches, want.Matches)
	}
	if res.Checksum != want.Checksum {
		t.Fatalf("%s: checksum = %d, want %d", name, res.Checksum, want.Checksum)
	}
}

func TestRadixJoinUniform(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 14, OuterTuples: 1 << 16, Seed: 1})
	res, err := RadixJoin(w.Inner, w.Outer, Config{Threads: 4, Pass1Bits: 6, Pass2Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, "radix", res, w)
	if res.Phases.Total() <= 0 {
		t.Fatal("no time recorded")
	}
}

func TestRadixJoinSinglePass(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 12, OuterTuples: 1 << 13, Seed: 2})
	res, err := RadixJoin(w.Inner, w.Outer, Config{Threads: 2, Pass1Bits: 5})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, "single-pass", res, w)
}

func TestRadixJoinSingleThread(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 12, Seed: 3})
	res, err := RadixJoin(w.Inner, w.Outer, Config{Threads: 1, Pass1Bits: 4, Pass2Bits: 3})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, "one-thread", res, w)
}

func TestRadixJoinNUMARegions(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 13, OuterTuples: 1 << 15, Seed: 4})
	for _, regions := range []int{1, 2, 4} {
		res, err := RadixJoin(w.Inner, w.Outer, Config{Threads: 4, Pass1Bits: 6, Pass2Bits: 3, NUMARegions: regions})
		if err != nil {
			t.Fatal(err)
		}
		verify(t, "numa", res, w)
	}
}

func TestRadixJoinSkewed(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 15, Skew: datagen.SkewHigh, Seed: 5})
	res, err := RadixJoin(w.Inner, w.Outer, Config{Threads: 4, Pass1Bits: 5, Pass2Bits: 3})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, "skewed", res, w)
}

func TestRadixJoinWideTuples(t *testing.T) {
	for _, width := range []int{relation.Width32, relation.Width64} {
		w := datagen.Generate(datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 12, TupleWidth: width, Seed: 6})
		res, err := RadixJoin(w.Inner, w.Outer, Config{Threads: 3, Pass1Bits: 4, Pass2Bits: 3})
		if err != nil {
			t.Fatal(err)
		}
		verify(t, "wide", res, w)
	}
}

func TestRadixJoinWidthMismatch(t *testing.T) {
	a := relation.New(relation.Width16, 4)
	b := relation.New(relation.Width32, 4)
	if _, err := RadixJoin(a, b, Config{}); err == nil {
		t.Fatal("expected width mismatch error")
	}
	if _, err := NoPartitionJoin(a, b, Config{}); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestRadixJoinEmptyRelations(t *testing.T) {
	empty := relation.New(relation.Width16, 0)
	some := relation.New(relation.Width16, 8)
	for i := 0; i < 8; i++ {
		some.SetKey(i, uint64(i+1))
	}
	res, err := RadixJoin(empty, some, Config{Threads: 2, Pass1Bits: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 0 {
		t.Fatal("empty inner should produce no matches")
	}
	res, err = RadixJoin(some, empty, Config{Threads: 2, Pass1Bits: 3, Pass2Bits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 0 {
		t.Fatal("empty outer should produce no matches")
	}
}

func TestNoPartitionJoin(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 13, OuterTuples: 1 << 15, Seed: 7})
	res, err := NoPartitionJoin(w.Inner, w.Outer, Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, "no-partition", res, w)
}

func TestNoPartitionJoinSkewed(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 9, OuterTuples: 1 << 14, Skew: datagen.SkewLow, Seed: 8})
	res, err := NoPartitionJoin(w.Inner, w.Outer, Config{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, "no-partition-skew", res, w)
}

func TestAlgorithmsAgree(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 5000, OuterTuples: 20000, Seed: 9})
	a, err := RadixJoin(w.Inner, w.Outer, Config{Threads: 4, Pass1Bits: 5, Pass2Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NoPartitionJoin(w.Inner, w.Outer, Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Matches != b.Matches || a.Checksum != b.Checksum {
		t.Fatalf("radix (%d,%d) != no-partition (%d,%d)", a.Matches, a.Checksum, b.Matches, b.Checksum)
	}
}

func TestRegionQueues(t *testing.T) {
	q := newRegionQueues(2, 8)
	q.push(0, 10)
	q.push(1, 20)
	q.push(1, 21)
	if v, ok := q.pop(1); !ok || v != 20 {
		t.Fatalf("pop home region: %d %v", v, ok)
	}
	if v, ok := q.pop(1); !ok || v != 21 {
		t.Fatalf("pop home region second: %d %v", v, ok)
	}
	if v, ok := q.pop(1); !ok || v != 10 {
		t.Fatalf("steal from other region: %d %v", v, ok)
	}
	if _, ok := q.pop(0); ok {
		t.Fatal("empty queues should report !ok")
	}
}

// Property: both algorithms return the analytically expected result for
// arbitrary seeds, thread counts and radix configurations.
func TestPropertyJoinsCorrect(t *testing.T) {
	f := func(seed int64, threads8, b1, b2 uint8) bool {
		cfg := Config{
			Threads:   int(threads8%7) + 1,
			Pass1Bits: uint(b1%6) + 1,
			Pass2Bits: uint(b2 % 5),
		}
		w := datagen.Generate(datagen.Config{InnerTuples: 300, OuterTuples: 1200, Seed: seed})
		want := datagen.ExpectedJoin(w.Outer)
		r, err := RadixJoin(w.Inner, w.Outer, cfg)
		if err != nil || r.Matches != want.Matches || r.Checksum != want.Checksum {
			return false
		}
		np, err := NoPartitionJoin(w.Inner, w.Outer, cfg)
		if err != nil || np.Matches != want.Matches || np.Checksum != want.Checksum {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
