package mcjoin

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rackjoin/internal/hashtable"
	"rackjoin/internal/relation"
)

// NoPartitionJoin implements the hardware-oblivious no-partitioning hash
// join of Blanas et al. [6]: all threads cooperatively build one shared
// hash table over the inner relation (lock-free chained insertion), then
// probe it in parallel with disjoint slices of the outer relation. There
// are no partitioning passes; the algorithm relies on the machine hiding
// cache and TLB miss latency.
func NoPartitionJoin(inner, outer *relation.Relation, cfg Config) (*Result, error) {
	cfg.normalize()
	if inner.Width() != outer.Width() {
		return nil, fmt.Errorf("mcjoin: tuple width mismatch %d vs %d", inner.Width(), outer.Width())
	}
	res := &Result{}
	n := inner.Len()
	size := 1
	for size < n {
		size <<= 1
	}
	if size < 2 {
		size = 2
	}
	shift := uint(64)
	for s := size; s > 1; s >>= 1 {
		shift--
	}
	head := make([]atomic.Int32, size)
	next := make([]int32, n+1)

	// Build: threads insert disjoint tuple ranges with CAS on the bucket
	// head. next[i+1] is written only by the owning thread before the CAS
	// publishes it.
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			lo, hi := n*t/cfg.Threads, n*(t+1)/cfg.Threads
			for i := lo; i < hi; i++ {
				b := (inner.Key(i) * fibMix) >> shift
				for {
					old := head[b].Load()
					next[i+1] = old
					if head[b].CompareAndSwap(old, int32(i+1)) {
						break
					}
				}
			}
		}(t)
	}
	wg.Wait()
	res.Phases.BuildProbe = time.Since(start)

	// Probe: read-only, embarrassingly parallel. The shared table spans the
	// whole inner relation and never fits a private cache, so the batched
	// kernel groups the directory loads of hashtable.ProbeBatchSize keys
	// before walking any chain, overlapping their misses.
	start = time.Now()
	batched := cfg.Kernels.BatchProbe(n)
	var mu sync.Mutex
	m := outer.Len()
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			var matches, checksum uint64
			lo, hi := m*t/cfg.Threads, m*(t+1)/cfg.Threads
			if batched {
				var keys [hashtable.ProbeBatchSize]uint64
				var heads [hashtable.ProbeBatchSize]int32
				for base := lo; base < hi; base += hashtable.ProbeBatchSize {
					bn := min(hashtable.ProbeBatchSize, hi-base)
					for i := 0; i < bn; i++ {
						key := outer.Key(base + i)
						keys[i] = key
						heads[i] = head[(key*fibMix)>>shift].Load()
					}
					for i := 0; i < bn; i++ {
						key := keys[i]
						for j := heads[i]; j != 0; j = next[j] {
							bi := int(j - 1)
							if inner.Key(bi) == key {
								matches++
								checksum += key + inner.RID(bi) + outer.RID(base+i)
							}
						}
					}
				}
			} else {
				for i := lo; i < hi; i++ {
					key := outer.Key(i)
					for j := head[(key*fibMix)>>shift].Load(); j != 0; j = next[j] {
						bi := int(j - 1)
						if inner.Key(bi) == key {
							matches++
							checksum += key + inner.RID(bi) + outer.RID(i)
						}
					}
				}
			}
			mu.Lock()
			res.Matches += matches
			res.Checksum += checksum
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	res.Phases.BuildProbe += time.Since(start)
	return res, nil
}

const fibMix = 0x9E3779B97F4A7C15
