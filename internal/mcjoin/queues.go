package mcjoin

import "sync"

// regionQueues implements the paper's NUMA-aware task queues (Section
// 6.1): one queue per NUMA region. A worker pops from the queue of its own
// region first and steals from other regions only when its local queue is
// empty.
type regionQueues struct {
	mu     sync.Mutex
	queues [][]int
}

func newRegionQueues(regions, capacityHint int) *regionQueues {
	q := &regionQueues{queues: make([][]int, regions)}
	for i := range q.queues {
		q.queues[i] = make([]int, 0, capacityHint/regions+1)
	}
	return q
}

// push appends a task to the given region's queue.
func (q *regionQueues) push(region, task int) {
	q.mu.Lock()
	q.queues[region] = append(q.queues[region], task)
	q.mu.Unlock()
}

// pop removes a task, preferring the worker's home region and scanning the
// remaining regions round-robin otherwise. ok is false when all queues are
// empty.
func (q *regionQueues) pop(home int) (task int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.queues)
	for i := 0; i < n; i++ {
		r := (home + i) % n
		if len(q.queues[r]) > 0 {
			task = q.queues[r][0]
			q.queues[r] = q.queues[r][1:]
			return task, true
		}
	}
	return 0, false
}
