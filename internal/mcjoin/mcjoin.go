// Package mcjoin implements the single-machine, multi-core baselines the
// paper compares against (Section 6.1/6.3):
//
//   - RadixJoin: the parallel radix hash join of Balkesen et al. [4],
//     extended as in the paper with NUMA-region task queues (a thread
//     drains the queue of its own region before stealing from others) and
//     support for large inputs.
//   - NoPartitionJoin: the hardware-oblivious no-partitioning hash join of
//     Blanas et al. [6]: a single shared hash table built and probed by
//     all threads, no partitioning passes.
//
// Both report the per-phase wall-clock breakdown used in Figure 5a.
package mcjoin

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"rackjoin/internal/hashtable"
	"rackjoin/internal/phase"
	"rackjoin/internal/radix"
	"rackjoin/internal/relation"
)

// Config controls the single-machine join algorithms.
type Config struct {
	// Threads is the number of worker threads; 0 means GOMAXPROCS.
	Threads int
	// Pass1Bits/Pass2Bits configure the two radix partitioning passes
	// (paper: 10+10 bits at rack scale; defaults 8+6 for laptop-scale
	// inputs). Pass2Bits may be zero for single-pass partitioning.
	Pass1Bits uint
	Pass2Bits uint
	// NUMARegions models the number of NUMA regions for task-queue
	// placement; 0 or 1 disables NUMA awareness.
	NUMARegions int
}

func (c *Config) normalize() {
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Pass1Bits == 0 {
		c.Pass1Bits = 8
	}
	if c.NUMARegions <= 0 {
		c.NUMARegions = 1
	}
}

// Result reports the join outcome and phase breakdown.
type Result struct {
	Matches  uint64
	Checksum uint64
	Phases   phase.Times
}

// RadixJoin executes the parallel radix hash join over inner ⋈ outer on
// key equality.
func RadixJoin(inner, outer *relation.Relation, cfg Config) (*Result, error) {
	cfg.normalize()
	if inner.Width() != outer.Width() {
		return nil, fmt.Errorf("mcjoin: tuple width mismatch %d vs %d", inner.Width(), outer.Width())
	}
	res := &Result{}
	b1, b2 := cfg.Pass1Bits, cfg.Pass2Bits

	// --- Histogram phase: per-thread pass-1 histograms of both inputs.
	start := time.Now()
	histR := parallelHistograms(inner, cfg.Threads, 0, b1)
	histS := parallelHistograms(outer, cfg.Threads, 0, b1)
	res.Phases.Histogram = time.Since(start)

	// --- Pass 1: parallel scatter into partition-contiguous slabs.
	start = time.Now()
	partR, boundsR := parallelScatter(inner, histR, cfg.Threads, 0, b1)
	partS, boundsS := parallelScatter(outer, histS, cfg.Threads, 0, b1)
	res.Phases.NetworkPartition = time.Since(start)

	// --- Pass 2 + build-probe: one task per pass-1 partition, queued by
	// NUMA region; workers prefer their own region's queue.
	start = time.Now()
	np1 := 1 << b1
	queues := newRegionQueues(cfg.NUMARegions, np1)
	for p := 0; p < np1; p++ {
		queues.push(p*cfg.NUMARegions/np1, p)
	}
	var local2, bp int64 // accumulated per-thread nanoseconds (max later)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			region := t * cfg.NUMARegions / cfg.Threads
			var matches, checksum uint64
			var tLocal, tBP time.Duration
			for {
				p, ok := queues.pop(region)
				if !ok {
					break
				}
				r := radix.PartitionView(partR, boundsR, p)
				s := radix.PartitionView(partS, boundsS, p)
				l, b := joinPartition(r, s, b1, b2, &matches, &checksum)
				tLocal += l
				tBP += b
			}
			mu.Lock()
			res.Matches += matches
			res.Checksum += checksum
			if int64(tLocal) > local2 {
				local2 = int64(tLocal)
			}
			if int64(tBP) > bp {
				bp = int64(tBP)
			}
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Apportion the fused pass2+build-probe wall time by the measured
	// per-thread maxima so the breakdown matches the paper's reporting.
	if local2+bp > 0 {
		res.Phases.LocalPartition = time.Duration(float64(elapsed) * float64(local2) / float64(local2+bp))
		res.Phases.BuildProbe = elapsed - res.Phases.LocalPartition
	} else {
		res.Phases.BuildProbe = elapsed
	}
	return res, nil
}

// joinPartition sub-partitions one pass-1 partition pair by b2 bits and
// builds/probes each sub-partition. It returns the time spent in local
// partitioning vs build-probe and accumulates matches into the counters.
func joinPartition(r, s *relation.Relation, b1, b2 uint, matches, checksum *uint64) (localTime, bpTime time.Duration) {
	if b2 == 0 || r.Len() == 0 || s.Len() == 0 {
		start := time.Now()
		m, c := buildProbe(r, s)
		*matches += m
		*checksum += c
		return 0, time.Since(start)
	}
	start := time.Now()
	hr := radix.Histogram(r, b1, b2)
	curR, _ := radix.PrefixSum(hr)
	subR := relation.New(r.Width(), r.Len())
	radix.Scatter(r, subR, curR, b1, b2)
	hs := radix.Histogram(s, b1, b2)
	curS, _ := radix.PrefixSum(hs)
	subS := relation.New(s.Width(), s.Len())
	radix.Scatter(s, subS, curS, b1, b2)
	bR, bS := radix.Bounds(hr), radix.Bounds(hs)
	localTime = time.Since(start)

	start = time.Now()
	for q := 0; q < 1<<b2; q++ {
		m, c := buildProbe(radix.PartitionView(subR, bR, q), radix.PartitionView(subS, bS, q))
		*matches += m
		*checksum += c
	}
	return localTime, time.Since(start)
}

func buildProbe(r, s *relation.Relation) (uint64, uint64) {
	if r.Len() == 0 || s.Len() == 0 {
		return 0, 0
	}
	return hashtable.Build(r).ProbeRelation(s)
}

// parallelHistograms computes per-thread histograms over equal contiguous
// slices of rel.
func parallelHistograms(rel *relation.Relation, threads int, shift, bits uint) [][]int64 {
	hists := make([][]int64, threads)
	var wg sync.WaitGroup
	n := rel.Len()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			h := make([]int64, 1<<bits)
			radix.AddHistogram(h, rel.Slice(n*t/threads, n*(t+1)/threads), shift, bits)
			hists[t] = h
		}(t)
	}
	wg.Wait()
	return hists
}

// parallelScatter scatters rel into a fresh slab using per-thread cursors
// derived from the per-thread histograms: thread t writes partition p at
// globalPrefix[p] + Σ_{t'<t} hist[t'][p], so threads never collide.
func parallelScatter(rel *relation.Relation, hists [][]int64, threads int, shift, bits uint) (*relation.Relation, []int64) {
	np := 1 << bits
	global := make([]int64, np)
	for _, h := range hists {
		for p, c := range h {
			global[p] += c
		}
	}
	prefix, _ := radix.PrefixSum(global)
	cursors := make([][]int64, threads)
	for p := 0; p < np; p++ {
		off := prefix[p]
		for t := 0; t < threads; t++ {
			if cursors[t] == nil {
				cursors[t] = make([]int64, np)
			}
			cursors[t][p] = off
			off += hists[t][p]
		}
	}
	dst := relation.New(rel.Width(), rel.Len())
	n := rel.Len()
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			radix.Scatter(rel.Slice(n*t/threads, n*(t+1)/threads), dst, cursors[t], shift, bits)
		}(t)
	}
	wg.Wait()
	return dst, radix.Bounds(global)
}
