// Package mcjoin implements the single-machine, multi-core baselines the
// paper compares against (Section 6.1/6.3):
//
//   - RadixJoin: the parallel radix hash join of Balkesen et al. [4],
//     extended as in the paper with NUMA-region task queues (a thread
//     drains the queue of its own region before stealing from others) and
//     support for large inputs.
//   - NoPartitionJoin: the hardware-oblivious no-partitioning hash join of
//     Blanas et al. [6]: a single shared hash table built and probed by
//     all threads, no partitioning passes.
//
// Both report the per-phase wall-clock breakdown used in Figure 5a.
package mcjoin

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"rackjoin/internal/hashtable"
	"rackjoin/internal/phase"
	"rackjoin/internal/radix"
	"rackjoin/internal/relation"
)

// Config controls the single-machine join algorithms.
type Config struct {
	// Threads is the number of worker threads; 0 means GOMAXPROCS.
	Threads int
	// Pass1Bits/Pass2Bits configure the two radix partitioning passes
	// (paper: 10+10 bits at rack scale; defaults 8+6 for laptop-scale
	// inputs). Pass2Bits may be zero for single-pass partitioning.
	Pass1Bits uint
	Pass2Bits uint
	// NUMARegions models the number of NUMA regions for task-queue
	// placement; 0 or 1 disables NUMA awareness.
	NUMARegions int
	// Kernels selects the hot-loop implementations (scatter and probe),
	// mirroring core.Config.Kernels: radix.KernelAuto picks per platform,
	// KernelScalar/KernelWC force one flavour for ablations.
	Kernels radix.Kernel
}

func (c *Config) normalize() {
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Pass1Bits == 0 {
		c.Pass1Bits = 8
	}
	if c.NUMARegions <= 0 {
		c.NUMARegions = 1
	}
}

// Result reports the join outcome and phase breakdown.
type Result struct {
	Matches  uint64
	Checksum uint64
	Phases   phase.Times
}

// RadixJoin executes the parallel radix hash join over inner ⋈ outer on
// key equality.
func RadixJoin(inner, outer *relation.Relation, cfg Config) (*Result, error) {
	cfg.normalize()
	if inner.Width() != outer.Width() {
		return nil, fmt.Errorf("mcjoin: tuple width mismatch %d vs %d", inner.Width(), outer.Width())
	}
	res := &Result{}
	b1, b2 := cfg.Pass1Bits, cfg.Pass2Bits

	// --- Histogram phase: per-thread pass-1 histograms of both inputs.
	start := time.Now()
	histR := parallelHistograms(inner, cfg.Threads, 0, b1)
	histS := parallelHistograms(outer, cfg.Threads, 0, b1)
	res.Phases.Histogram = time.Since(start)

	// --- Pass 1: parallel scatter into partition-contiguous slabs.
	start = time.Now()
	partR, boundsR := parallelScatter(inner, histR, cfg.Threads, 0, b1, cfg.Kernels)
	partS, boundsS := parallelScatter(outer, histS, cfg.Threads, 0, b1, cfg.Kernels)
	res.Phases.NetworkPartition = time.Since(start)

	// --- Pass 2 + build-probe: one task per pass-1 partition, queued by
	// NUMA region; workers prefer their own region's queue.
	start = time.Now()
	np1 := 1 << b1
	queues := newRegionQueues(cfg.NUMARegions, np1)
	for p := 0; p < np1; p++ {
		queues.push(p*cfg.NUMARegions/np1, p)
	}
	var local2, bp int64 // accumulated per-thread nanoseconds (max later)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			region := t * cfg.NUMARegions / cfg.Threads
			w := &mcWorker{kern: cfg.Kernels, pt: radix.NewPartitioner(cfg.Kernels)}
			var tLocal, tBP time.Duration
			for {
				p, ok := queues.pop(region)
				if !ok {
					break
				}
				r := radix.PartitionView(partR, boundsR, p)
				s := radix.PartitionView(partS, boundsS, p)
				l, b := w.joinPartition(r, s, b1, b2)
				tLocal += l
				tBP += b
			}
			mu.Lock()
			res.Matches += w.matches
			res.Checksum += w.checksum
			if int64(tLocal) > local2 {
				local2 = int64(tLocal)
			}
			if int64(tBP) > bp {
				bp = int64(tBP)
			}
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Apportion the fused pass2+build-probe wall time by the measured
	// per-thread maxima so the breakdown matches the paper's reporting.
	if local2+bp > 0 {
		res.Phases.LocalPartition = time.Duration(float64(elapsed) * float64(local2) / float64(local2+bp))
		res.Phases.BuildProbe = elapsed - res.Phases.LocalPartition
	} else {
		res.Phases.BuildProbe = elapsed
	}
	return res, nil
}

// mcWorker carries one thread's kernel scratch (partitioner staging,
// probe batch) and match accumulators across its tasks.
type mcWorker struct {
	kern     radix.Kernel
	pt       *radix.Partitioner
	batch    hashtable.Batch
	matches  uint64
	checksum uint64
}

// joinPartition sub-partitions one pass-1 partition pair by b2 bits and
// builds/probes each sub-partition. It returns the time spent in local
// partitioning vs build-probe and accumulates matches into the worker.
func (w *mcWorker) joinPartition(r, s *relation.Relation, b1, b2 uint) (localTime, bpTime time.Duration) {
	if b2 == 0 || r.Len() == 0 || s.Len() == 0 {
		start := time.Now()
		w.buildProbe(r, s)
		return 0, time.Since(start)
	}
	start := time.Now()
	subR, bR := w.pt.Partition(r, b1, b2)
	subS, bS := w.pt.Partition(s, b1, b2)
	localTime = time.Since(start)

	start = time.Now()
	for q := 0; q < 1<<b2; q++ {
		w.buildProbe(radix.PartitionView(subR, bR, q), radix.PartitionView(subS, bS, q))
	}
	return localTime, time.Since(start)
}

func (w *mcWorker) buildProbe(r, s *relation.Relation) {
	if r.Len() == 0 || s.Len() == 0 {
		return
	}
	tbl := hashtable.Build(r)
	var m, c uint64
	if w.kern.BatchProbe(tbl.Len()) {
		m, c = tbl.ProbeRelationBatch(s, &w.batch)
	} else {
		m, c = tbl.ProbeRelation(s)
	}
	w.matches += m
	w.checksum += c
}

// parallelHistograms computes per-thread histograms over equal contiguous
// slices of rel.
func parallelHistograms(rel *relation.Relation, threads int, shift, bits uint) [][]int64 {
	hists := make([][]int64, threads)
	var wg sync.WaitGroup
	n := rel.Len()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			h := make([]int64, 1<<bits)
			radix.AddHistogram(h, rel.Slice(n*t/threads, n*(t+1)/threads), shift, bits)
			hists[t] = h
		}(t)
	}
	wg.Wait()
	return hists
}

// parallelScatter scatters rel into a fresh slab using per-thread cursors
// derived from the per-thread histograms: thread t writes partition p at
// globalPrefix[p] + Σ_{t'<t} hist[t'][p], so threads never collide.
func parallelScatter(rel *relation.Relation, hists [][]int64, threads int, shift, bits uint, kern radix.Kernel) (*relation.Relation, []int64) {
	np := 1 << bits
	global := make([]int64, np)
	for _, h := range hists {
		for p, c := range h {
			global[p] += c
		}
	}
	prefix, _ := radix.PrefixSum(global)
	cursors := make([][]int64, threads)
	for p := 0; p < np; p++ {
		off := prefix[p]
		for t := 0; t < threads; t++ {
			if cursors[t] == nil {
				cursors[t] = make([]int64, np)
			}
			cursors[t][p] = off
			off += hists[t][p]
		}
	}
	dst := relation.NewAligned(rel.Width(), rel.Len())
	n := rel.Len()
	useWC := kern.Resolve(rel.Width(), bits) == radix.KernelWC
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			slice := rel.Slice(n*t/threads, n*(t+1)/threads)
			if useWC {
				radix.ScatterWC(slice, dst, cursors[t], shift, bits, nil)
			} else {
				radix.Scatter(slice, dst, cursors[t], shift, bits)
			}
		}(t)
	}
	wg.Wait()
	return dst, radix.Bounds(global)
}
