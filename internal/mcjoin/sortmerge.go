package mcjoin

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rackjoin/internal/relation"
)

// SortMergeJoin implements the massively parallel sort-merge (MPSM) join
// of Albutiu et al. (reference [2] of the paper, discussed in Section
// 2.2), the sort-based competitor the radix hash join is measured against
// in the literature:
//
//  1. The inner relation is range-partitioned across threads using
//     sampled splitters; each thread sorts its range (a globally sorted,
//     range-disjoint inner relation).
//  2. Each thread sorts its own chunk of the outer relation locally —
//     outer runs are NOT partitioned (MPSM's key trick: no outer
//     shuffle).
//  3. Every (inner range, outer run) pair is merge-joined; the outer run
//     is entered via binary search on the range's lower bound, so each
//     thread only scans the part of each run that overlaps its range.
//
// Keys and record ids are extracted into sorted pairs (payload bytes do
// not participate in matching), and results are reported as match count
// plus the standard verification checksum.
func SortMergeJoin(inner, outer *relation.Relation, cfg Config) (*Result, error) {
	cfg.normalize()
	if inner.Width() != outer.Width() {
		return nil, fmt.Errorf("mcjoin: tuple width mismatch %d vs %d", inner.Width(), outer.Width())
	}
	res := &Result{}
	threads := cfg.Threads

	// --- Phase 1: extract, range-partition and sort the inner relation.
	start := time.Now()
	splitters := sampleSplitters(inner, threads)
	ranges := make([][]kr, threads)
	{
		// Parallel histogram+scatter by range, then per-range sort.
		parts := make([][][]kr, threads) // [reader][range]
		var wg sync.WaitGroup
		n := inner.Len()
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				local := make([][]kr, threads)
				lo, hi := n*t/threads, n*(t+1)/threads
				for i := lo; i < hi; i++ {
					k := inner.Key(i)
					r := rangeOf(k, splitters)
					local[r] = append(local[r], kr{k, inner.RID(i)})
				}
				parts[t] = local
			}(t)
		}
		wg.Wait()
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				var mine []kr
				for r := 0; r < threads; r++ {
					mine = append(mine, parts[r][t]...)
				}
				sortKR(mine)
				ranges[t] = mine
			}(t)
		}
		wg.Wait()
	}
	res.Phases.NetworkPartition = time.Since(start) // partition+sort of R

	// --- Phase 2: sort outer runs locally (no partitioning).
	start = time.Now()
	runs := make([][]kr, threads)
	{
		var wg sync.WaitGroup
		n := outer.Len()
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				lo, hi := n*t/threads, n*(t+1)/threads
				run := make([]kr, 0, hi-lo)
				for i := lo; i < hi; i++ {
					run = append(run, kr{outer.Key(i), outer.RID(i)})
				}
				sortKR(run)
				runs[t] = run
			}(t)
		}
		wg.Wait()
	}
	res.Phases.LocalPartition = time.Since(start) // outer run sorting

	// --- Phase 3: merge-join every (range, run) pair.
	start = time.Now()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := ranges[t]
			if len(rng) == 0 {
				return
			}
			lowest := rng[0].key
			var matches, checksum uint64
			for _, run := range runs {
				// Enter the run at the first key ≥ the range's lower
				// bound; merge until the run leaves the range.
				i := sort.Search(len(run), func(i int) bool { return run[i].key >= lowest })
				m, c := mergeJoin(rng, run[i:])
				matches += m
				checksum += c
			}
			mu.Lock()
			res.Matches += matches
			res.Checksum += checksum
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	res.Phases.BuildProbe = time.Since(start)
	return res, nil
}

// kr is an extracted (key, rid) pair.
type kr struct {
	key uint64
	rid uint64
}

func sortKR(s []kr) {
	sort.Slice(s, func(i, j int) bool { return s[i].key < s[j].key })
}

// sampleSplitters draws threads-1 splitters from a deterministic sample so
// inner ranges are balanced for roughly uniform keys.
func sampleSplitters(rel *relation.Relation, threads int) []uint64 {
	n := rel.Len()
	if threads <= 1 || n == 0 {
		return nil
	}
	const sampleSize = 1024
	sample := make([]uint64, 0, sampleSize)
	step := n/sampleSize + 1
	for i := 0; i < n; i += step {
		sample = append(sample, rel.Key(i))
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	splitters := make([]uint64, threads-1)
	for i := range splitters {
		splitters[i] = sample[(i+1)*len(sample)/threads]
	}
	return splitters
}

// rangeOf returns the index of the range key falls into.
func rangeOf(key uint64, splitters []uint64) int {
	return sort.Search(len(splitters), func(i int) bool { return key < splitters[i] })
}

// mergeJoin joins two sorted runs, handling duplicate keys on both sides.
// The outer run may extend past the inner range; merging stops once outer
// keys exceed the last inner key.
func mergeJoin(inner, outer []kr) (matches, checksum uint64) {
	i, j := 0, 0
	for i < len(inner) && j < len(outer) {
		switch {
		case inner[i].key < outer[j].key:
			i++
		case inner[i].key > outer[j].key:
			j++
		default:
			key := inner[i].key
			i2 := i
			for i2 < len(inner) && inner[i2].key == key {
				i2++
			}
			j2 := j
			for j2 < len(outer) && outer[j2].key == key {
				j2++
			}
			cntI := uint64(i2 - i)
			cntJ := uint64(j2 - j)
			matches += cntI * cntJ
			var sumI, sumJ uint64
			for x := i; x < i2; x++ {
				sumI += inner[x].rid
			}
			for y := j; y < j2; y++ {
				sumJ += outer[y].rid
			}
			// Σ over all pairs of (key + ridI + ridJ).
			checksum += cntI*cntJ*key + cntJ*sumI + cntI*sumJ
			i, j = i2, j2
		}
	}
	return matches, checksum
}
