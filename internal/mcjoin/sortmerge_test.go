package mcjoin

import (
	"testing"
	"testing/quick"

	"rackjoin/internal/datagen"
	"rackjoin/internal/relation"
)

func TestSortMergeJoinUniform(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 14, OuterTuples: 1 << 16, Seed: 1})
	res, err := SortMergeJoin(w.Inner, w.Outer, Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, "sort-merge", res, w)
	if res.Phases.Total() <= 0 {
		t.Fatal("no time recorded")
	}
}

func TestSortMergeJoinSingleThread(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 12, Seed: 2})
	res, err := SortMergeJoin(w.Inner, w.Outer, Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, "sort-merge-1t", res, w)
}

func TestSortMergeJoinSkewed(t *testing.T) {
	// Heavy duplicates on the outer side exercise the duplicate-block
	// merge logic.
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 8, OuterTuples: 1 << 14, Skew: datagen.SkewHigh, Seed: 3})
	res, err := SortMergeJoin(w.Inner, w.Outer, Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, "sort-merge-skew", res, w)
}

func TestSortMergeJoinWide(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 12, TupleWidth: relation.Width64, Seed: 4})
	res, err := SortMergeJoin(w.Inner, w.Outer, Config{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, "sort-merge-wide", res, w)
}

func TestSortMergeJoinEmpty(t *testing.T) {
	empty := relation.New(relation.Width16, 0)
	some := relation.New(relation.Width16, 4)
	for i := 0; i < 4; i++ {
		some.SetKey(i, uint64(i+1))
	}
	res, err := SortMergeJoin(empty, some, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 0 {
		t.Fatal("empty inner should produce no matches")
	}
	res, err = SortMergeJoin(some, empty, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 0 {
		t.Fatal("empty outer should produce no matches")
	}
}

func TestSortMergeWidthMismatch(t *testing.T) {
	a := relation.New(relation.Width16, 2)
	b := relation.New(relation.Width32, 2)
	if _, err := SortMergeJoin(a, b, Config{}); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestMergeJoinDuplicatesBothSides(t *testing.T) {
	inner := []kr{{1, 10}, {2, 20}, {2, 21}, {3, 30}}
	outer := []kr{{2, 100}, {2, 101}, {2, 102}, {4, 400}}
	m, c := mergeJoin(inner, outer)
	if m != 6 { // 2 inner dups × 3 outer dups
		t.Fatalf("matches = %d, want 6", m)
	}
	// Σ over pairs (2 + ridI + ridJ): 6·2 + 3·(20+21) + 2·(100+101+102)
	want := uint64(6*2 + 3*(20+21) + 2*(100+101+102))
	if c != want {
		t.Fatalf("checksum = %d, want %d", c, want)
	}
}

func TestRangeOf(t *testing.T) {
	splitters := []uint64{10, 20, 30}
	cases := map[uint64]int{5: 0, 10: 1, 15: 1, 20: 2, 29: 2, 30: 3, 99: 3}
	for k, want := range cases {
		if got := rangeOf(k, splitters); got != want {
			t.Errorf("rangeOf(%d) = %d, want %d", k, got, want)
		}
	}
	if rangeOf(5, nil) != 0 {
		t.Error("no splitters → range 0")
	}
}

func TestAllThreeAlgorithmsAgree(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 4000, OuterTuples: 16000, Seed: 5})
	radix, err := RadixJoin(w.Inner, w.Outer, Config{Threads: 4, Pass1Bits: 5, Pass2Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	nop, err := NoPartitionJoin(w.Inner, w.Outer, Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := SortMergeJoin(w.Inner, w.Outer, Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if radix.Matches != sm.Matches || radix.Checksum != sm.Checksum ||
		nop.Matches != sm.Matches || nop.Checksum != sm.Checksum {
		t.Fatalf("algorithms disagree: radix (%d,%d) nop (%d,%d) sm (%d,%d)",
			radix.Matches, radix.Checksum, nop.Matches, nop.Checksum, sm.Matches, sm.Checksum)
	}
}

// Property: MPSM agrees with the analytically expected join for arbitrary
// seeds, thread counts and skews — including non-FK multisets via the
// other algorithms.
func TestPropertySortMergeCorrect(t *testing.T) {
	f := func(seed int64, threads8 uint8, skewed bool) bool {
		cfg := Config{Threads: int(threads8%7) + 1}
		dcfg := datagen.Config{InnerTuples: 256, OuterTuples: 2048, Seed: seed}
		if skewed {
			dcfg.Skew = datagen.SkewLow
		}
		w := datagen.Generate(dcfg)
		want := datagen.ExpectedJoin(w.Outer)
		res, err := SortMergeJoin(w.Inner, w.Outer, cfg)
		if err != nil {
			return false
		}
		return res.Matches == want.Matches && res.Checksum == want.Checksum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: mergeJoin equals brute force on arbitrary sorted multisets.
func TestPropertyMergeJoinBruteForce(t *testing.T) {
	f := func(a, b []uint8) bool {
		inner := make([]kr, len(a))
		for i, k := range a {
			inner[i] = kr{uint64(k % 16), uint64(i)}
		}
		outer := make([]kr, len(b))
		for i, k := range b {
			outer[i] = kr{uint64(k % 16), uint64(100 + i)}
		}
		sortKR(inner)
		sortKR(outer)
		m, c := mergeJoin(inner, outer)
		var bm, bc uint64
		for _, x := range inner {
			for _, y := range outer {
				if x.key == y.key {
					bm++
					bc += x.key + x.rid + y.rid
				}
			}
		}
		return m == bm && c == bc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
