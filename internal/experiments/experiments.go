// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment prints the series the paper
// plots, alongside the paper's reported numbers where the text gives them,
// so paper-vs-reproduction comparisons (EXPERIMENTS.md) come straight from
// these runners.
//
// Engines: paper-scale numbers come from the calibrated discrete-event
// simulator (internal/sim) and the analytical model (internal/model);
// correctness and algorithm-level ablations run the real distributed join
// (internal/core) on the in-process RDMA cluster at laptop scale.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the index key, e.g. "fig5a", "tab1", "sec67", "abl-buffers".
	ID string
	// Title describes the experiment in the paper's terms.
	Title string
	// Run regenerates the experiment, writing a human-readable table.
	Run func(w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in registration order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes the experiment with the given ID.
func Run(w io.Writer, id string) error {
	e, ok := ByID(id)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	fmt.Fprintf(w, "=== %s — %s ===\n", e.ID, e.Title)
	return e.Run(w)
}

// RunAll executes every experiment.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		fmt.Fprintf(w, "=== %s — %s ===\n", e.ID, e.Title)
		if err := e.Run(w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
