package experiments

import (
	"fmt"
	"io"

	"rackjoin/internal/model"
	"rackjoin/internal/phase"
	"rackjoin/internal/sim"
)

// M tuples → tuple count.
func mTuples(m int64) int64 { return m << 20 }

func fmtPhases(p phase.Times) string {
	s := p.Seconds()
	return fmt.Sprintf("hist=%5.2f net=%5.2f local=%5.2f bp=%5.2f | total=%6.2f s",
		s[0], s[1], s[2], s[3], p.Total().Seconds())
}

func simQDR(machines, cores int, r, s int64) (*sim.Result, error) {
	return sim.Run(sim.Config{Machines: machines, Cores: cores, Net: model.QDR(),
		RTuples: r, STuples: s})
}

func init() {
	register(Experiment{
		ID:    "tab1",
		Title: "Table 1 / Eq. 15 — model symbols and calibration constants",
		Run: func(w io.Writer) error {
			cal := model.DefaultCalibration()
			fmt.Fprintf(w, "psPart     %7.0f MB/s   (Eq. 15)\n", cal.PsPart)
			fmt.Fprintf(w, "psLocal    %7.0f MB/s   (fitted)\n", cal.PsLocal)
			fmt.Fprintf(w, "psHist     %7.0f MB/s   (fitted)\n", cal.PsHist)
			fmt.Fprintf(w, "hbThread   %7.0f MB/s   (fitted)\n", cal.HbThread)
			fmt.Fprintf(w, "hpThread   %7.0f MB/s   (fitted)\n", cal.HpThread)
			fmt.Fprintf(w, "passes     %7d\n", cal.Passes)
			for _, n := range []model.Network{model.QDR(), model.FDR(), model.IPoIB()} {
				fmt.Fprintf(w, "netMax %-6s %6.0f MB/s  congestion %4.0f MB/s/machine\n",
					n.Name, n.Base, n.CongestionPerMachine)
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "tab2",
		Title: "Table 2 — hardware configurations modelled",
		Run: func(w io.Writer) error {
			fmt.Fprintln(w, "FDR cluster : 4 machines × 8 cores, 6.0 GB/s per host")
			fmt.Fprintln(w, "QDR cluster : 10 machines × 8 cores, 3.4 GB/s per host (−110 MB/s per added machine)")
			fmt.Fprintln(w, "Multi-core  : 1 machine × 32 cores, QPI interconnect (Figure 5a baseline)")
			return nil
		},
	})

	register(Experiment{
		ID:    "fig3",
		Title: "Figure 3 — point-to-point bandwidth vs message size (QDR, FDR)",
		Run: func(w io.Writer) error {
			fmt.Fprintf(w, "%10s %12s %12s\n", "msg size", "QDR MB/s", "FDR MB/s")
			for sz := 2; sz <= 512<<10; sz *= 4 {
				fmt.Fprintf(w, "%10d %12.1f %12.1f\n", sz,
					model.QDR().PointToPoint(sz), model.FDR().PointToPoint(sz))
			}
			fmt.Fprintln(w, "paper: both networks reach and maintain full bandwidth for buffers ≥ 8 KB")
			return nil
		},
	})

	register(Experiment{
		ID:    "fig5a",
		Title: "Figure 5a — single server vs 4-node FDR vs 4-node QDR (32 cores total)",
		Run: func(w io.Writer) error {
			paper := map[string][3]float64{
				"single": {2.19, 4.47, 9.02},
				"FDR":    {3.21, 5.75, 11.00},
				"QDR":    {3.50, 7.19, 13.96},
			}
			sizes := []int64{1024, 2048, 4096}
			for i, m := range sizes {
				tuples := mTuples(m)
				wl := model.WorkloadTuples(tuples, tuples, 16)
				single := model.PredictSingle(wl, 32, model.DefaultSingleServer()).Total().Seconds()
				fdr, err := sim.Run(sim.Config{Machines: 4, Cores: 8, Net: model.FDR(), RTuples: tuples, STuples: tuples})
				if err != nil {
					return err
				}
				qdr, err := simQDR(4, 8, tuples, tuples)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "2×%4dM  single %5.2f s (paper %5.2f)   FDR %5.2f s (paper %5.2f)   QDR %5.2f s (paper %5.2f)\n",
					m, single, paper["single"][i],
					fdr.Phases.Total().Seconds(), paper["FDR"][i],
					qdr.Phases.Total().Seconds(), paper["QDR"][i])
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "fig5b",
		Title: "Figure 5b — TCP/IPoIB vs non-interleaved vs interleaved RDMA (2×2048M, 4 FDR machines)",
		Run: func(w io.Writer) error {
			tuples := mTuples(2048)
			variants := []struct {
				name  string
				net   model.Network
				mode  sim.Mode
				paper float64
			}{
				{"TCP (IPoIB)", model.IPoIB(), sim.ModeStream, 15.69},
				{"non-interleaved RDMA", model.FDR(), sim.ModeNonInterleaved, 7.03},
				{"interleaved RDMA", model.FDR(), sim.ModeInterleaved, 5.75},
			}
			for _, v := range variants {
				r, err := sim.Run(sim.Config{Machines: 4, Cores: 8, Net: v.net, Mode: v.mode,
					RTuples: tuples, STuples: tuples})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-22s %s  (paper total %5.2f s)\n", v.name, fmtPhases(r.Phases), v.paper)
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "fig6a",
		Title: "Figure 6a — large-to-large joins, 2–10 QDR machines",
		Run: func(w io.Writer) error {
			for _, m := range []int64{1024, 2048, 4096} {
				fmt.Fprintf(w, "%dM ⋈ %dM:", m, m)
				for nm := 2; nm <= 10; nm++ {
					if m == 4096 && nm == 2 {
						// ≈128 GB does not fit two machines (Section 6.4.1).
						fmt.Fprintf(w, "   n/a")
						continue
					}
					r, err := simQDR(nm, 8, mTuples(m), mTuples(m))
					if err != nil {
						return err
					}
					fmt.Fprintf(w, " %5.2f", r.Phases.Total().Seconds())
				}
				fmt.Fprintln(w, "   (machines 2..10, seconds)")
			}
			fmt.Fprintln(w, "paper: time doubles with data size (factors 1.98/1.92); sub-linear scale-out")
			return nil
		},
	})

	register(Experiment{
		ID:    "fig6b",
		Title: "Figure 6b — small-to-large joins, outer fixed at 2048M, 2–10 QDR machines",
		Run: func(w io.Writer) error {
			for _, inner := range []int64{2048, 1024, 512, 256} {
				fmt.Fprintf(w, "%4dM ⋈ 2048M:", inner)
				for nm := 2; nm <= 10; nm++ {
					r, err := simQDR(nm, 8, mTuples(inner), mTuples(2048))
					if err != nil {
						return err
					}
					fmt.Fprintf(w, " %5.2f", r.Phases.Total().Seconds())
				}
				fmt.Fprintln(w, "   (machines 2..10, seconds)")
			}
			fmt.Fprintln(w, "paper: 1:8 workload takes roughly half the 1:1 time")
			return nil
		},
	})

	register(Experiment{
		ID:    "fig7a",
		Title: "Figure 7a — phase breakdown, 2048M ⋈ 2048M, 2–10 QDR machines",
		Run: func(w io.Writer) error {
			paper := []float64{11.16, 8.68, 7.19, 6.09, 5.36, 5.02, 4.46, 4.14, 3.84}
			for nm := 2; nm <= 10; nm++ {
				r, err := simQDR(nm, 8, mTuples(2048), mTuples(2048))
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%2d machines: %s  (paper total %5.2f s)\n", nm, fmtPhases(r.Phases), paper[nm-2])
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "fig7b",
		Title: "Figure 7b — scale-out with increasing workload (2×(1024+512·(N−2))M on N machines)",
		Run: func(w io.Writer) error {
			paper := []float64{5.69, 6.52, 7.16, 7.57, 8.24, 8.67, 9.08, 9.39, 9.97}
			for nm := 2; nm <= 10; nm++ {
				tuples := mTuples(1024 + 512*int64(nm-2))
				r, err := simQDR(nm, 8, tuples, tuples)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%2d machines, 2×%5dM: %s  (paper total %5.2f s)\n",
					nm, tuples>>20, fmtPhases(r.Phases), paper[nm-2])
			}
			fmt.Fprintln(w, "paper: local phases constant, network pass grows with machine count")
			return nil
		},
	})

	register(Experiment{
		ID:    "fig8",
		Title: "Figure 8 — data skew (Zipf 1.05 / 1.20), 128M ⋈ 2048M, 4 and 8 QDR machines",
		Run: func(w io.Writer) error {
			paperVals := map[string]float64{
				"4/none": 2.49, "4/low": 4.41, "4/high": 8.19,
				"8/none": 4.19, "8/low": 5.04, "8/high": 8.51,
			}
			for _, nm := range []int{4, 8} {
				for _, sk := range []struct {
					name string
					zipf float64
				}{{"none", 0}, {"low", 1.05}, {"high", 1.20}} {
					r, err := sim.Run(sim.Config{
						Machines: nm, Cores: 8, Net: model.QDR(),
						RTuples: mTuples(128), STuples: mTuples(2048),
						Skew: sk.zipf, SizeSortedAssignment: true, SkewSplit: true,
					})
					if err != nil {
						return err
					}
					fmt.Fprintf(w, "%d machines, skew %-4s: %s  (paper total %5.2f s)\n",
						nm, sk.name, fmtPhases(r.Phases), paperVals[fmt.Sprintf("%d/%s", nm, sk.name)])
				}
			}
			fmt.Fprintln(w, "note: the paper's no-skew bars behave anomalously across machine counts;")
			fmt.Fprintln(w, "we reproduce the skew ordering and the skew penalties persisting at 8 machines")
			return nil
		},
	})

	register(Experiment{
		ID:    "fig8ext",
		Title: "Extension — Figure 8 with inter-machine work sharing (selective broadcast), the fix Sections 6.5/8 propose",
		Run: func(w io.Writer) error {
			for _, nm := range []int{4, 8} {
				for _, sk := range []struct {
					name string
					zipf float64
				}{{"low", 1.05}, {"high", 1.20}} {
					base := sim.Config{
						Machines: nm, Cores: 8, Net: model.QDR(),
						RTuples: mTuples(128), STuples: mTuples(2048),
						Skew: sk.zipf, SizeSortedAssignment: true, SkewSplit: true,
					}
					plain, err := sim.Run(base)
					if err != nil {
						return err
					}
					shared := base
					shared.BroadcastFactor = 4
					fixed, err := sim.Run(shared)
					if err != nil {
						return err
					}
					fmt.Fprintf(w, "%d machines, skew %-4s: without sharing %5.2f s → with sharing %5.2f s (%.1f× faster)\n",
						nm, sk.name, plain.Phases.Total().Seconds(), fixed.Phases.Total().Seconds(),
						plain.Phases.Total().Seconds()/fixed.Phases.Total().Seconds())
				}
			}
			fmt.Fprintln(w, "paper (Section 8): \"we believe that this can be addressed by introducing inter-machine workload sharing\"")
			return nil
		},
	})

	register(Experiment{
		ID:    "fig9a",
		Title: "Figure 9a — model verification, 2048M ⋈ 2048M, FDR 2–4 machines",
		Run:   func(w io.Writer) error { return runModelVerification(w, model.FDR(), []int{2, 3, 4}) },
	})

	register(Experiment{
		ID:    "fig9b",
		Title: "Figure 9b — model verification, 2048M ⋈ 2048M, QDR 4–10 machines",
		Run:   func(w io.Writer) error { return runModelVerification(w, model.QDR(), []int{4, 6, 8, 10}) },
	})

	register(Experiment{
		ID:    "fig10a",
		Title: "Figure 10a — network partitioning pass, 4 vs 8 cores, QDR 2–10 machines",
		Run:   func(w io.Writer) error { return runCoreSweep(w, model.QDR(), 2, 10) },
	})

	register(Experiment{
		ID:    "fig10b",
		Title: "Figure 10b — network partitioning pass, 4 vs 8 cores, FDR 2–4 machines",
		Run:   func(w io.Writer) error { return runCoreSweep(w, model.FDR(), 2, 4) },
	})

	register(Experiment{
		ID:    "sec62",
		Title: "Section 6.2 — RDMA buffer size sweep (network pass, 2×512M, 4 QDR machines)",
		Run: func(w io.Writer) error {
			for _, buf := range []int{512, 2 << 10, 8 << 10, 32 << 10, 64 << 10, 256 << 10} {
				r, err := sim.Run(sim.Config{Machines: 4, Cores: 8, Net: model.QDR(),
					RTuples: mTuples(512), STuples: mTuples(512), BufferSize: buf})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "buffer %7d B: network pass %5.2f s, stalls %d\n",
					buf, r.Phases.NetworkPartition.Seconds(), r.Stalls)
			}
			fmt.Fprintln(w, "paper: fixes 64 KB; ≥8 KB buffers reach full bandwidth")
			return nil
		},
	})

	register(Experiment{
		ID:    "sec67",
		Title: "Section 6.7 — wide tuples at constant data size (QDR, 4 machines)",
		Run: func(w io.Writer) error {
			for _, tc := range []struct {
				tuples int64
				width  int
			}{{2048, 16}, {1024, 32}, {512, 64}} {
				r, err := sim.Run(sim.Config{Machines: 4, Cores: 8, Net: model.QDR(),
					RTuples: mTuples(tc.tuples), STuples: mTuples(tc.tuples), TupleWidth: tc.width})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%4dM × %2d-byte tuples: %s\n", tc.tuples, tc.width, fmtPhases(r.Phases))
			}
			fmt.Fprintln(w, "paper: execution time identical for all three workloads (data movement bound)")
			return nil
		},
	})

	register(Experiment{
		ID:    "eq12",
		Title: "Section 6.8.1 / Eq. 12 — optimal cores per machine",
		Run: func(w io.Writer) error {
			fmt.Fprintf(w, "QDR: %d cores per machine (paper: 4)\n", model.NewSystem(8, 8, model.QDR()).OptimalCores())
			fmt.Fprintf(w, "FDR: %d cores per machine (paper: 7)\n", model.NewSystem(4, 8, model.FDR()).OptimalCores())
			return nil
		},
	})

	register(Experiment{
		ID:    "eq13",
		Title: "Eq. 13 — machine-count upper bound before RDMA buffers go underfull",
		Run: func(w io.Writer) error {
			s := model.NewSystem(4, 8, model.QDR())
			for _, rMB := range []float64{2048, 16384, 32768, 65536} {
				fmt.Fprintf(w, "|R| = %6.0f MB, 1024 partitions, 64 KB buffers: N_M ≤ %d\n",
					rMB, s.MaxMachines(rMB, 1024, 64<<10))
			}
			fmt.Fprintf(w, "Eq. 14: N_P1 must be ≥ N_M × N_C/M = %d at 10×8\n",
				model.NewSystem(10, 8, model.QDR()).MinPartitions())
			return nil
		},
	})
}

func runModelVerification(w io.Writer, net model.Network, machines []int) error {
	tuples := mTuples(2048)
	wl := model.WorkloadTuples(tuples, tuples, 16)
	var sumAbs, n float64
	for _, nm := range machines {
		r, err := sim.Run(sim.Config{Machines: nm, Cores: 8, Net: net, RTuples: tuples, STuples: tuples})
		if err != nil {
			return err
		}
		pred := model.NewSystem(nm, 8, net).Predict(wl)
		m := r.Phases.Total().Seconds()
		e := pred.Total().Seconds()
		sumAbs += abs(m - e)
		n++
		fmt.Fprintf(w, "%2d machines: measured(sim) %5.2f s | estimated(model) %5.2f s | Δ %+5.2f s\n", nm, m, e, m-e)
	}
	fmt.Fprintf(w, "mean |Δ| = %.2f s (paper reports 0.17 s against hardware)\n", sumAbs/n)
	return nil
}

func runCoreSweep(w io.Writer, net model.Network, lo, hi int) error {
	tuples := mTuples(2048)
	for nm := lo; nm <= hi; nm++ {
		var vals []float64
		for _, cores := range []int{4, 8} {
			r, err := sim.Run(sim.Config{Machines: nm, Cores: cores, Net: net, RTuples: tuples, STuples: tuples})
			if err != nil {
				return err
			}
			vals = append(vals, r.Phases.NetworkPartition.Seconds())
		}
		fmt.Fprintf(w, "%2d machines: 4 cores %5.2f s | 8 cores %5.2f s\n", nm, vals[0], vals[1])
	}
	fmt.Fprintf(w, "paper: on QDR ≥5 machines 3 threads saturate the network; on FDR extra cores keep helping\n")
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func init() {
	register(Experiment{
		ID:    "disc-scaleout",
		Title: "Section 7 discussion — scale-up vs scale-out crossover bandwidth",
		Run: func(w io.Writer) error {
			wl := model.WorkloadTuples(2048<<20, 2048<<20, 16)
			cal := model.DefaultCalibration()
			single := model.DefaultSingleServer()
			st := model.PredictSingle(wl, 32, single).Total().Seconds()
			fmt.Fprintf(w, "32-core single server (QPI): %.2f s\n", st)
			for _, nm := range []int{4, 5, 6, 8} {
				bw := model.CrossoverBandwidth(wl, nm, 8, cal, single, 32)
				if bw == 0 {
					fmt.Fprintf(w, "%d×8 rack: cannot catch the server at any bandwidth (CPU-bound ceiling)\n", nm)
					continue
				}
				fmt.Fprintf(w, "%d×8 rack: scale-out wins above %.1f GB/s per host\n", nm, bw/1024)
			}
			for _, net := range []model.Network{model.QDR(), model.FDR(), model.HDR()} {
				p := model.NewSystem(8, 8, net).Predict(wl).Total().Seconds()
				fmt.Fprintf(w, "8×8 rack on %-4s: %.2f s\n", net.Name, p)
			}
			fmt.Fprintln(w, "paper (§7): faster CPU interconnects favour scale-up, higher inter-machine")
			fmt.Fprintln(w, "bandwidth favours scale-out; HDR (25 GB/s, projected 2017) removes the bottleneck")
			return nil
		},
	})
}
