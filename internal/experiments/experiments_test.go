package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table/figure of the paper's evaluation must have a runner.
	want := []string{
		"tab1", "tab2", "fig3", "fig5a", "fig5b", "fig6a", "fig6b",
		"fig7a", "fig7b", "fig8", "fig9a", "fig9b", "fig10a", "fig10b",
		"sec62", "sec67", "eq12", "eq13",
		"exec", "abl-interleave", "abl-transport", "abl-buffers",
		"abl-assignment", "abl-atomic", "abl-multipass", "baselines",
		"fig8ext", "ext-agg", "disc-scaleout", "abl-pull", "abl-kernels",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want ≥ %d", len(All()), len(want))
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown ID should not resolve")
	}
	if err := Run(io.Discard, "nope"); err == nil {
		t.Fatal("running unknown ID should fail")
	}
}

func TestIDsSorted(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("IDs not sorted at %d: %v", i, ids)
		}
	}
}

// TestCheapExperimentsRun executes the fast experiments end-to-end and
// checks they emit plausible tables. The expensive paper-scale sweeps are
// exercised by the benchmark harness.
func TestCheapExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are not instant")
	}
	for _, id := range []string{"tab1", "tab2", "fig3", "eq12", "eq13", "exec", "abl-assignment"} {
		var buf bytes.Buffer
		if err := Run(&buf, id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := buf.String()
		if len(out) < 40 {
			t.Errorf("%s: suspiciously short output:\n%s", id, out)
		}
		if strings.Contains(out, "MISMATCH") {
			t.Errorf("%s: correctness mismatch:\n%s", id, out)
		}
	}
}

func TestFig5bRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale simulation")
	}
	var buf bytes.Buffer
	if err := Run(&buf, "fig5b"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TCP", "non-interleaved", "interleaved"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5b output missing %q:\n%s", want, out)
		}
	}
}
