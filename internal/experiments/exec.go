package experiments

import (
	"fmt"
	"io"
	"time"

	"rackjoin/internal/agg"
	"rackjoin/internal/cluster"
	"rackjoin/internal/core"
	"rackjoin/internal/datagen"
	"rackjoin/internal/fabric"
	"rackjoin/internal/mcjoin"
	"rackjoin/internal/radix"
	"rackjoin/internal/relation"
)

// Exec-engine experiments: the real distributed join over the in-process
// RDMA substrate, at laptop scale. They verify end-to-end correctness of
// every variant and run the ablations DESIGN.md §5 calls out. Wall-clock
// numbers are host-dependent; correctness columns are not.

// execWorkload is a laptop-scale stand-in for the paper's workloads.
var execWorkload = datagen.Config{InnerTuples: 1 << 18, OuterTuples: 1 << 20, Seed: 2015}

func runExec(machines, cores int, dcfg datagen.Config, jcfg core.Config, fcfg fabric.Config) (*core.Result, datagen.Expected, error) {
	c, err := cluster.New(cluster.Config{Machines: machines, CoresPerMachine: cores, Fabric: fcfg})
	if err != nil {
		return nil, datagen.Expected{}, err
	}
	defer c.Close()
	w := datagen.Generate(dcfg)
	want := datagen.ExpectedJoin(w.Outer)
	res, err := core.Run(c, relation.Fragment(w.Inner, machines), relation.Fragment(w.Outer, machines), jcfg)
	return res, want, err
}

func verdict(res *core.Result, want datagen.Expected) string {
	if res.Matches == want.Matches && res.Checksum == want.Checksum {
		return "OK"
	}
	return fmt.Sprintf("MISMATCH (got %d/%d want %d/%d)", res.Matches, res.Checksum, want.Matches, want.Checksum)
}

func init() {
	register(Experiment{
		ID:    "exec",
		Title: "End-to-end distributed join on the in-process RDMA cluster (4×4, 2^18 ⋈ 2^20 tuples)",
		Run: func(w io.Writer) error {
			for _, tr := range []core.Transport{core.TransportTwoSided, core.TransportOneSided, core.TransportStream, core.TransportTCP} {
				cfg := core.DefaultConfig()
				cfg.Transport = tr
				res, want, err := runExec(4, 4, execWorkload, cfg, fabric.Config{})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-10s: %s  matches=%d checksum=%s  net=%0.1f MB msgs=%d regs=%d\n",
					tr, fmtPhases(res.Phases), res.Matches, verdict(res, want),
					float64(res.Net.BytesSent)/(1<<20), res.Net.Messages, res.Net.Registrations)
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "abl-interleave",
		Title: "Ablation — interleaved vs non-interleaved communication on a throttled fabric (exec engine)",
		Run: func(w io.Writer) error {
			// Throttle the fabric to 256 MB/s per host so the network is
			// the bottleneck, as on the QDR cluster; the interleaving
			// benefit of Figure 5b then shows up in wall-clock time.
			fcfg := fabric.Config{EgressBandwidth: 256e6, IngressBandwidth: 256e6}
			for _, interleaved := range []bool{true, false} {
				cfg := core.DefaultConfig()
				cfg.Interleaved = interleaved
				res, want, err := runExec(3, 4, execWorkload, cfg, fcfg)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "interleaved=%-5v: net pass %6.3f s  stalls=%-6d  %s\n",
					interleaved, res.Phases.NetworkPartition.Seconds(), res.Net.PoolStalls, verdict(res, want))
			}
			fmt.Fprintln(w, "paper: interleaving shortens the network partitioning pass by ~35%")
			return nil
		},
	})

	register(Experiment{
		ID:    "abl-transport",
		Title: "Ablation — one-sided vs two-sided verbs (exec engine, throttled fabric)",
		Run: func(w io.Writer) error {
			fcfg := fabric.Config{EgressBandwidth: 256e6, IngressBandwidth: 256e6}
			for _, tr := range []core.Transport{core.TransportOneSided, core.TransportTwoSided} {
				cfg := core.DefaultConfig()
				cfg.Transport = tr
				res, want, err := runExec(3, 4, execWorkload, cfg, fcfg)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-10s: net pass %6.3f s  %s\n", tr, res.Phases.NetworkPartition.Seconds(), verdict(res, want))
			}
			fmt.Fprintln(w, "paper (via [10]): no significant performance difference between the two")
			return nil
		},
	})

	register(Experiment{
		ID:    "abl-atomic",
		Title: "Ablation — histogram-derived offsets vs atomic-append one-sided writes (exec engine, 50µs fabric latency)",
		Run: func(w io.Writer) error {
			// The extra fetch-and-add round-trip per buffer only shows
			// against non-zero link latency; real racks have ~1-2µs RDMA
			// latency but also far more buffers in flight, so we scale
			// the latency up with the scale-down of the workload.
			fcfg := fabric.Config{BaseLatency: 50 * time.Microsecond}
			for _, tr := range []core.Transport{core.TransportOneSided, core.TransportOneSidedAtomic} {
				cfg := core.DefaultConfig()
				cfg.Transport = tr
				res, want, err := runExec(3, 3, execWorkload, cfg, fcfg)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-17s: net pass %6.3f s  %s\n", tr, res.Phases.NetworkPartition.Seconds(), verdict(res, want))
			}
			fmt.Fprintln(w, "the histogram phase's precomputed offsets avoid one atomic RTT per shipped buffer")
			return nil
		},
	})

	register(Experiment{
		ID:    "abl-pull",
		Title: "Ablation — sender-push (interleaved WRITE) vs receiver-pull (READ) one-sided designs (throttled fabric)",
		Run: func(w io.Writer) error {
			fcfg := fabric.Config{EgressBandwidth: 256e6, IngressBandwidth: 256e6}
			for _, tr := range []core.Transport{core.TransportOneSided, core.TransportOneSidedRead} {
				cfg := core.DefaultConfig()
				cfg.Transport = tr
				res, want, err := runExec(3, 3, execWorkload, cfg, fcfg)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-15s: net pass %6.3f s  %s\n", tr, res.Phases.NetworkPartition.Seconds(), verdict(res, want))
			}
			fmt.Fprintln(w, "pulling must fully stage before any byte moves; pushing interleaves (Section 4.2.1)")
			return nil
		},
	})

	register(Experiment{
		ID:    "abl-buffers",
		Title: "Ablation — buffers per (thread, partition) 1..4 (exec engine, throttled fabric)",
		Run: func(w io.Writer) error {
			fcfg := fabric.Config{EgressBandwidth: 256e6, IngressBandwidth: 256e6}
			for bpp := 1; bpp <= 4; bpp++ {
				cfg := core.DefaultConfig()
				cfg.BuffersPerPartition = bpp
				res, want, err := runExec(3, 4, execWorkload, cfg, fcfg)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "buffers=%d: net pass %6.3f s  stalls=%-6d  %s\n",
					bpp, res.Phases.NetworkPartition.Seconds(), res.Net.PoolStalls, verdict(res, want))
			}
			fmt.Fprintln(w, "paper: ≥2 buffers per partition are required to interleave (Section 4.2.1)")
			return nil
		},
	})

	register(Experiment{
		ID:    "abl-assignment",
		Title: "Ablation — static round-robin vs dynamic size-sorted assignment under skew (exec engine)",
		Run: func(w io.Writer) error {
			dcfg := datagen.Config{InnerTuples: 1 << 14, OuterTuples: 1 << 20, Skew: datagen.SkewHigh, Seed: 99}
			for _, a := range []core.Assignment{core.AssignRoundRobin, core.AssignSizeSorted} {
				cfg := core.DefaultConfig()
				cfg.Assignment = a
				cfg.SkewSplitFactor = 2
				res, want, err := runExec(4, 4, dcfg, cfg, fabric.Config{})
				if err != nil {
					return err
				}
				min, max := res.PartitionsPerMachine[0], res.PartitionsPerMachine[0]
				for _, n := range res.PartitionsPerMachine {
					if n < min {
						min = n
					}
					if n > max {
						max = n
					}
				}
				fmt.Fprintf(w, "%-12s: total %6.3f s  partitions/machine [%d..%d]  %s\n",
					a, res.Phases.Total().Seconds(), min, max, verdict(res, want))
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "abl-kernels",
		Title: "Ablation — scalar vs write-combining partition/probe kernels (exec engine + single-machine radix join)",
		Run: func(w io.Writer) error {
			for _, k := range []radix.Kernel{radix.KernelScalar, radix.KernelWC} {
				cfg := core.DefaultConfig()
				cfg.Kernels = k
				res, want, err := runExec(4, 4, execWorkload, cfg, fabric.Config{})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "exec   kernels=%-6s: %s  %s\n", k, fmtPhases(res.Phases), verdict(res, want))
			}
			// Single-machine run at a scale where partitioning dominates:
			// single pass, 2^10 partitions, 2^22 tuples per side.
			wl := datagen.Generate(datagen.Config{InnerTuples: 1 << 22, OuterTuples: 1 << 22, Seed: 11})
			want := datagen.ExpectedJoin(wl.Outer)
			for _, k := range []radix.Kernel{radix.KernelScalar, radix.KernelWC} {
				// Best of two runs: the first run in a fresh heap pays the
				// page-fault cost of the 64 MB output slabs.
				var best *mcjoin.Result
				for i := 0; i < 2; i++ {
					res, err := mcjoin.RadixJoin(wl.Inner, wl.Outer, mcjoin.Config{Pass1Bits: 10, Pass2Bits: 0, Kernels: k})
					if err != nil {
						return err
					}
					if best == nil || res.Phases.Total() < best.Phases.Total() {
						best = res
					}
				}
				fmt.Fprintf(w, "mcjoin kernels=%-6s: total %6.3f s  partition %6.3f s  ok=%v\n",
					k, best.Phases.Total().Seconds(), best.Phases.NetworkPartition.Seconds(),
					best.Matches == want.Matches && best.Checksum == want.Checksum)
			}
			fmt.Fprintln(w, "wc = direct word-store scatter + size-gated batched probe (DESIGN.md § Kernel layer)")
			return nil
		},
	})

	register(Experiment{
		ID:    "ext-agg",
		Title: "Extension — distributed aggregation over the same RDMA machinery (Section 7 generalisation)",
		Run: func(w io.Writer) error {
			c, err := cluster.New(cluster.Config{Machines: 4, CoresPerMachine: 4})
			if err != nil {
				return err
			}
			defer c.Close()
			wl := datagen.Generate(datagen.Config{InnerTuples: 1 << 12, OuterTuples: 1 << 20, Seed: 8})
			rel := relation.Fragment(wl.Outer, 4)
			for _, pre := range []bool{true, false} {
				cfg := agg.DefaultConfig()
				cfg.PreAggregate = pre
				res, err := agg.Run(c, rel, cfg)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "pre-aggregate=%-5v: groups=%d rows=%d exchange=%0.2f MB total=%0.3f s\n",
					pre, res.Groups, res.Rows, float64(res.BytesSent)/(1<<20), res.Phases.Total().Seconds())
			}
			fmt.Fprintln(w, "paper (Section 7): buffer pooling/reuse/interleaving generalise to other operators")
			return nil
		},
	})

	register(Experiment{
		ID:    "abl-multipass",
		Title: "Ablation — multi-pass vs single-pass partitioning (single-machine baseline)",
		Run: func(w io.Writer) error {
			w2 := datagen.Generate(datagen.Config{InnerTuples: 1 << 24, OuterTuples: 1 << 24, Seed: 7})
			for _, tc := range []struct {
				name   string
				b1, b2 uint
			}{
				{"2 passes (8+8 bits, cache-sized)", 8, 8},
				{"1 pass (16 bits, TLB-hostile)", 16, 0},
				{"1 pass (8 bits, oversized parts)", 8, 0},
			} {
				res, err := mcjoin.RadixJoin(w2.Inner, w2.Outer, mcjoin.Config{Pass1Bits: tc.b1, Pass2Bits: tc.b2})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-34s: total %6.3f s  matches=%d\n", tc.name, res.Phases.Total().Seconds(), res.Matches)
			}
			fmt.Fprintln(w, "paper (Section 3.1): multi-pass partitioning avoids TLB misses and cache thrashing")
			fmt.Fprintln(w, "note: the TLB/cache effect requires real multi-core hardware; numbers above are host-dependent")
			return nil
		},
	})

	register(Experiment{
		ID:    "baselines",
		Title: "Single-machine baselines — radix join [4] vs no-partitioning join [6] vs MPSM sort-merge [2]",
		Run: func(w io.Writer) error {
			wl := datagen.Generate(datagen.Config{InnerTuples: 1 << 21, OuterTuples: 1 << 23, Seed: 3})
			want := datagen.ExpectedJoin(wl.Outer)
			radix, err := mcjoin.RadixJoin(wl.Inner, wl.Outer, mcjoin.Config{Pass1Bits: 9, Pass2Bits: 5, NUMARegions: 2})
			if err != nil {
				return err
			}
			nop, err := mcjoin.NoPartitionJoin(wl.Inner, wl.Outer, mcjoin.Config{})
			if err != nil {
				return err
			}
			sm, err := mcjoin.SortMergeJoin(wl.Inner, wl.Outer, mcjoin.Config{})
			if err != nil {
				return err
			}
			throughput := func(sec float64) float64 {
				return float64(wl.Inner.Len()+wl.Outer.Len()) / sec / 1e6
			}
			fmt.Fprintf(w, "radix join        : %6.3f s (%6.1f M tuples/s) matches=%d ok=%v\n",
				radix.Phases.Total().Seconds(), throughput(radix.Phases.Total().Seconds()),
				radix.Matches, radix.Matches == want.Matches && radix.Checksum == want.Checksum)
			fmt.Fprintf(w, "no-partition join : %6.3f s (%6.1f M tuples/s) matches=%d ok=%v\n",
				nop.Phases.Total().Seconds(), throughput(nop.Phases.Total().Seconds()),
				nop.Matches, nop.Matches == want.Matches && nop.Checksum == want.Checksum)
			fmt.Fprintf(w, "MPSM sort-merge   : %6.3f s (%6.1f M tuples/s) matches=%d ok=%v\n",
				sm.Phases.Total().Seconds(), throughput(sm.Phases.Total().Seconds()),
				sm.Matches, sm.Matches == want.Matches && sm.Checksum == want.Checksum)
			fmt.Fprintln(w, "paper: a tuned radix join outperforms the no-partitioning join [4] and sort-merge [3]")
			return nil
		},
	})
}
