package skew

import (
	"math/rand"
	"testing"
)

// TestExactSmallDomain: with more capacity than distinct keys the sketch
// is an exact counter.
func TestExactSmallDomain(t *testing.T) {
	s := New(16)
	want := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		k := uint64(rng.Intn(10))
		s.Observe(k)
		want[k]++
	}
	if s.Total() != 10000 {
		t.Fatalf("total = %d", s.Total())
	}
	for _, e := range s.Entries() {
		if e.Count != want[e.Key] {
			t.Fatalf("key %d: count %d, want %d", e.Key, e.Count, want[e.Key])
		}
		if e.Err != 0 {
			t.Fatalf("key %d: err %d on an exact sketch", e.Key, e.Err)
		}
	}
}

// TestHeavyHitterGuarantee: every key with true frequency ≥ N/capacity
// must be tracked, and its estimate must not underestimate.
func TestHeavyHitterGuarantee(t *testing.T) {
	const capacity = 64
	s := New(capacity)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(7))
	// Three genuinely hot keys buried in a large uniform tail.
	hot := []uint64{101, 202, 303}
	const n = 200000
	for i := 0; i < n; i++ {
		var k uint64
		switch {
		case i%5 == 0:
			k = hot[0] // 20%
		case i%10 == 1:
			k = hot[1] // 10%
		case i%20 == 2:
			k = hot[2] // 5%
		default:
			k = 1000 + uint64(rng.Intn(50000))
		}
		s.Observe(k)
		truth[k]++
	}
	tracked := map[uint64]Entry{}
	for _, e := range s.Entries() {
		tracked[e.Key] = e
	}
	for _, h := range hot {
		e, ok := tracked[h]
		if !ok {
			t.Fatalf("hot key %d (freq %d ≥ N/cap=%d) not tracked", h, truth[h], n/capacity)
		}
		if e.Count < truth[h] {
			t.Fatalf("hot key %d: estimate %d underestimates true %d", h, e.Count, truth[h])
		}
		if e.Count-e.Err > truth[h] {
			t.Fatalf("hot key %d: count-err %d exceeds true %d — error bound broken", h, e.Count-e.Err, truth[h])
		}
	}
	// Thresholding at 4% of the stream must surface exactly the ≥5% keys
	// and nothing from the uniform tail.
	hh := s.HeavyHitters(n / 25)
	for _, e := range hh {
		if truth[e.Key] < n/100 {
			t.Fatalf("tail key %d (true %d) classified heavy", e.Key, truth[e.Key])
		}
	}
	for _, h := range hot {
		found := false
		for _, e := range hh {
			if e.Key == h {
				found = true
			}
		}
		if !found {
			t.Fatalf("hot key %d missing from HeavyHitters", h)
		}
	}
}

// TestMergeMatchesSingleStream: sketching two halves and merging must
// track the same heavy hitters as sketching the whole stream, and the
// merged counts must still not underestimate.
func TestMergeMatchesSingleStream(t *testing.T) {
	whole, a, b := New(32), New(32), New(32)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		k := uint64(rng.Intn(8)) // heavily repeated head
		if rng.Intn(4) == 0 {
			k = 100 + uint64(rng.Intn(10000))
		}
		truth[k]++
		whole.Observe(k)
		if i%2 == 0 {
			a.Observe(k)
		} else {
			b.Observe(k)
		}
	}
	a.Merge(b)
	for _, e := range a.Entries() {
		if truth[e.Key] > 1000 && e.Count < truth[e.Key] {
			t.Fatalf("merged estimate for %d = %d underestimates true %d", e.Key, e.Count, truth[e.Key])
		}
	}
	wantHH := whole.HeavyHitters(whole.Total() / 20)
	gotHH := a.HeavyHitters(a.Total() / 20)
	wantKeys := map[uint64]bool{}
	for _, e := range wantHH {
		wantKeys[e.Key] = true
	}
	for _, e := range wantHH {
		found := false
		for _, g := range gotHH {
			if g.Key == e.Key {
				found = true
			}
		}
		if !found {
			t.Fatalf("heavy key %d lost in merge", e.Key)
		}
	}
	_ = wantKeys
}

// TestEncodeMergeEncodedDeterministic: the cross-machine path — encode
// per-machine sketches, merge the blocks — must yield identical results
// whatever machine performs the merge, and must find the global heavy
// hitter even when each machine only sees part of its mass.
func TestEncodeMergeEncodedDeterministic(t *testing.T) {
	const machines, capacity = 4, 16
	blocks := make([][]uint64, machines)
	for m := 0; m < machines; m++ {
		s := New(capacity)
		// Key 42 is hot on every machine; key 100+m is hot locally only.
		for i := 0; i < 1000; i++ {
			s.Observe(42)
		}
		for i := 0; i < 600; i++ {
			s.Observe(100 + uint64(m))
		}
		for i := 0; i < 500; i++ {
			s.Observe(uint64(2000 + i)) // tail
		}
		blocks[m] = make([]uint64, EncodedLen(capacity))
		s.Encode(blocks[m])
	}
	first := MergeEncoded(blocks, 3000)
	if len(first) != 1 || first[0].Key != 42 {
		t.Fatalf("global heavy hitter not found: %+v", first)
	}
	// Same blocks, any order of presentation → same decision.
	rev := [][]uint64{blocks[3], blocks[2], blocks[1], blocks[0]}
	again := MergeEncoded(rev, 3000)
	if len(again) != len(first) || again[0] != first[0] {
		t.Fatalf("merge order changed the decision: %+v vs %+v", again, first)
	}
	// Lower threshold surfaces the per-machine hot keys too, in count
	// order with deterministic tie-break.
	wide := MergeEncoded(blocks, 500)
	if wide[0].Key != 42 {
		t.Fatalf("head of merged ranking should be key 42: %+v", wide)
	}
	seen := map[uint64]bool{}
	for _, e := range wide {
		if seen[e.Key] {
			t.Fatalf("duplicate key %d in merged output", e.Key)
		}
		seen[e.Key] = true
	}
	for m := 0; m < machines; m++ {
		if !seen[100+uint64(m)] {
			t.Fatalf("locally hot key %d missing at threshold 500", 100+m)
		}
	}
}

// TestObserveN: weighted observation matches repeated observation.
func TestObserveN(t *testing.T) {
	a, b := New(8), New(8)
	a.ObserveN(5, 100)
	for i := 0; i < 100; i++ {
		b.Observe(5)
	}
	ae, be := a.Entries(), b.Entries()
	if len(ae) != 1 || len(be) != 1 || ae[0] != be[0] {
		t.Fatalf("ObserveN diverges: %+v vs %+v", ae, be)
	}
	if a.Total() != b.Total() {
		t.Fatalf("totals diverge: %d vs %d", a.Total(), b.Total())
	}
}

// TestEvictionBound: with capacity 2 and three contenders, the evicted
// key's count is inherited and flagged as error, never silently lost.
func TestEvictionBound(t *testing.T) {
	s := New(2)
	s.Observe(1)
	s.Observe(1)
	s.Observe(2)
	s.Observe(3) // evicts key 2 (count 1), inherits its count
	es := s.Entries()
	if len(es) != 2 {
		t.Fatalf("entries = %d, want 2", len(es))
	}
	var e3 *Entry
	for i := range es {
		if es[i].Key == 3 {
			e3 = &es[i]
		}
	}
	if e3 == nil {
		t.Fatal("newcomer key 3 not tracked after eviction")
	}
	if e3.Count != 2 || e3.Err != 1 {
		t.Fatalf("key 3: count %d err %d, want count 2 err 1", e3.Count, e3.Err)
	}
}
