// Package skew is the heavy-hitter detection layer of the join: a
// streaming space-saving sketch (Metwally et al., "Efficient computation
// of frequent and top-k elements in data streams") that the histogram
// pass feeds one key at a time, so detection rides the scan the radix
// join already performs and costs no extra pass over the data.
//
// The sketch tracks at most `capacity` candidate keys with estimated
// counts. The classic space-saving guarantees hold:
//
//   - every key whose true frequency is at least N/capacity is tracked;
//   - a tracked key's Count never underestimates its true count;
//   - the overestimation of a tracked key is bounded by its Err field
//     (the count it inherited from the candidate it evicted).
//
// Detection is distributed the same way the histograms are: every
// machine sketches its local chunk of the outer relation during the
// histogram phase, the per-machine sketches are exchanged alongside the
// histograms (Encode/MergeEncoded), and every machine derives the same
// global heavy-hitter set from the same merged counts — agreement by
// determinism, no coordinator.
package skew

import "sort"

// Entry is one tracked candidate: the key, its estimated count (an
// upper bound on the true count), and the maximum overestimation.
type Entry struct {
	Key   uint64
	Count uint64
	Err   uint64
}

// Sketch is a space-saving heavy-hitter sketch. Not safe for concurrent
// use; the histogram pass keeps one per thread and merges at the end.
type Sketch struct {
	capacity int
	pos      map[uint64]int // key → index into heap
	heap     []Entry        // min-heap ordered by Count
	total    uint64         // total observed weight
}

// New returns a sketch tracking at most capacity candidates. Any key
// with true frequency ≥ total/capacity is guaranteed to be tracked.
func New(capacity int) *Sketch {
	if capacity < 1 {
		capacity = 1
	}
	return &Sketch{
		capacity: capacity,
		pos:      make(map[uint64]int, capacity),
		heap:     make([]Entry, 0, capacity),
	}
}

// Capacity returns the candidate capacity the sketch was built with.
func (s *Sketch) Capacity() int { return s.capacity }

// Total returns the total weight observed so far.
func (s *Sketch) Total() uint64 { return s.total }

// Observe feeds one occurrence of key.
func (s *Sketch) Observe(key uint64) { s.add(key, 1, 0) }

// ObserveN feeds n occurrences of key at once.
func (s *Sketch) ObserveN(key uint64, n uint64) {
	if n > 0 {
		s.add(key, n, 0)
	}
}

// add is the space-saving update: increment a tracked key, insert while
// there is room, otherwise evict the minimum candidate and inherit its
// count as the newcomer's overestimation bound.
func (s *Sketch) add(key uint64, n, err uint64) {
	s.total += n
	if i, ok := s.pos[key]; ok {
		s.heap[i].Count += n
		if err > s.heap[i].Err {
			s.heap[i].Err = err
		}
		s.siftDown(i)
		return
	}
	if len(s.heap) < s.capacity {
		s.heap = append(s.heap, Entry{Key: key, Count: n, Err: err})
		s.pos[key] = len(s.heap) - 1
		s.siftUp(len(s.heap) - 1)
		return
	}
	min := s.heap[0]
	delete(s.pos, min.Key)
	e := err
	if min.Count > e {
		e = min.Count
	}
	s.heap[0] = Entry{Key: key, Count: min.Count + n, Err: e}
	s.pos[key] = 0
	s.siftDown(0)
}

// Merge folds another sketch into this one. Entries are applied in a
// deterministic order (count descending, key ascending), so merging the
// same set of sketches in the same order yields the same result on
// every machine.
func (s *Sketch) Merge(other *Sketch) {
	for _, e := range other.Entries() {
		s.add(e.Key, e.Count, e.Err)
	}
}

// Entries returns the tracked candidates ordered by count descending,
// key ascending — the deterministic order every consumer iterates in.
func (s *Sketch) Entries() []Entry {
	out := append([]Entry(nil), s.heap...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// HeavyHitters returns the tracked keys whose estimated count reaches
// threshold, in the same deterministic order as Entries.
func (s *Sketch) HeavyHitters(threshold uint64) []Entry {
	all := s.Entries()
	out := all[:0:0]
	for _, e := range all {
		if e.Count >= threshold {
			out = append(out, e)
		}
	}
	return out
}

// EncodedLen returns the number of uint64 slots Encode fills for a
// sketch of the given capacity: (key, count) pairs, zero-padded.
func EncodedLen(capacity int) int { return 2 * capacity }

// Encode serializes the sketch into dst as (key, count) pairs in
// deterministic order, zero-padding the remainder. dst must hold
// EncodedLen(s.Capacity()) slots. The overestimation bounds are not
// carried: the merged counts stay upper bounds without them.
func (s *Sketch) Encode(dst []uint64) {
	entries := s.Entries()
	i := 0
	for _, e := range entries {
		dst[i] = e.Key
		dst[i+1] = e.Count
		i += 2
	}
	for ; i < 2*s.capacity; i += 2 {
		dst[i], dst[i+1] = 0, 0
	}
}

// MergeEncoded sums any number of Encode blocks (one per machine) and
// returns the keys whose merged count reaches threshold, ordered by
// count descending then key ascending. A zero count slot terminates
// nothing — pairs with zero count are padding and are skipped — so keys
// of value 0 are representable as long as their count is positive.
func MergeEncoded(blocks [][]uint64, threshold uint64) []Entry {
	sum := make(map[uint64]uint64)
	for _, b := range blocks {
		for i := 0; i+1 < len(b); i += 2 {
			if b[i+1] == 0 {
				continue
			}
			sum[b[i]] += b[i+1]
		}
	}
	out := make([]Entry, 0, len(sum))
	for k, c := range sum {
		if c >= threshold {
			out = append(out, Entry{Key: k, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// heap plumbing: a positional min-heap by Count (ties broken by key so
// the eviction order, and therefore the whole sketch, is deterministic).

func (s *Sketch) less(i, j int) bool {
	if s.heap[i].Count != s.heap[j].Count {
		return s.heap[i].Count < s.heap[j].Count
	}
	return s.heap[i].Key < s.heap[j].Key
}

func (s *Sketch) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.pos[s.heap[i].Key] = i
	s.pos[s.heap[j].Key] = j
}

func (s *Sketch) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Sketch) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.swap(i, smallest)
		i = smallest
	}
}
