// Package agg implements a distributed hash aggregation
// (GROUP BY key → COUNT(*), SUM(rid)) on the same RDMA machinery as the
// join, substantiating the paper's Section 7 claim that its techniques —
// RDMA buffer pooling, buffer reuse, interleaving computation and
// communication — "are general techniques which can be used to create
// distributed versions of many database operators like sort-merge joins
// or aggregation".
//
// The operator runs in three phases mirroring the join's structure:
//
//  1. Local pre-aggregation — every worker scans its input slice and
//     builds per-partition partial aggregates (key → count, sum), the
//     classic two-phase aggregation that shrinks network traffic to the
//     number of distinct groups.
//  2. Network exchange — partial aggregates are serialised into
//     RDMA-enabled buffers from a pre-registered pool and shipped to each
//     partition's owner with channel semantics, interleaving computation
//     and communication exactly like the join's network partitioning
//     pass. Aggregated sizes are data-dependent, so the exchange
//     terminates with per-sender DONE markers instead of histogram-known
//     byte counts.
//  3. Merge — owners merge incoming partials into final per-partition
//     hash tables in parallel.
package agg

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"rackjoin/internal/cluster"
	"rackjoin/internal/phase"
	"rackjoin/internal/radix"
	"rackjoin/internal/rdma"
	"rackjoin/internal/relation"
)

// recordSize is the wire size of one partial aggregate: key, count, sum.
const recordSize = 24

// doneFlag marks a sender's end-of-stream message in the immediate value;
// the low bits of data messages carry the partition id.
const doneFlag = uint32(1) << 30

// Config parameterises the distributed aggregation.
type Config struct {
	// NetworkBits is the radix width of the group-key partitioning
	// (2^bits partitions, round-robin owners). Default 6.
	NetworkBits uint
	// BufferSize is the RDMA buffer capacity in bytes. Default 16 KB.
	BufferSize int
	// BuffersPerDestination sizes each thread's buffer pool. Default 2.
	BuffersPerDestination int
	// PreAggregate enables local pre-aggregation (default true via
	// DefaultConfig); disabling it ships raw tuples, which is only
	// sensible when groups barely repeat.
	PreAggregate bool
	// Kernels selects the hot-loop implementations, mirroring
	// core.Config.Kernels: with auto/wc the raw (PreAggregate=false) path
	// pre-sizes its per-partition record buffers from a histogram pass
	// instead of growing them append-by-append; KernelScalar keeps the
	// naive baseline for ablations.
	Kernels radix.Kernel
}

// DefaultConfig returns the defaults described above.
func DefaultConfig() Config {
	return Config{NetworkBits: 6, BufferSize: 16 << 10, BuffersPerDestination: 2, PreAggregate: true}
}

func (c *Config) validate(machines int) error {
	if c.NetworkBits == 0 || c.NetworkBits > 20 {
		return fmt.Errorf("agg: NetworkBits %d out of range [1,20]", c.NetworkBits)
	}
	if 1<<c.NetworkBits < machines {
		return fmt.Errorf("agg: 2^NetworkBits < %d machines", machines)
	}
	if c.BufferSize < recordSize {
		return fmt.Errorf("agg: BufferSize %d below record size %d", c.BufferSize, recordSize)
	}
	if c.BuffersPerDestination < 1 {
		return fmt.Errorf("agg: BuffersPerDestination must be ≥ 1")
	}
	return nil
}

// Group is one aggregate: COUNT(*) and SUM(rid) for a key.
type Group struct {
	Count uint64
	Sum   uint64
}

// Result reports the aggregation outcome.
type Result struct {
	// Groups is the number of distinct keys.
	Groups uint64
	// Rows is Σ counts — must equal the input cardinality.
	Rows uint64
	// Checksum is Σ over groups of (key + count + sum), for verification
	// against a single-machine reference.
	Checksum uint64
	// Phases: Histogram = local pre-aggregation, NetworkPartition =
	// exchange, BuildProbe = final merge.
	Phases phase.Times
	// BytesSent counts exchanged payload bytes.
	BytesSent uint64
}

// Run executes the distributed aggregation of rel over the cluster.
func Run(c *cluster.Cluster, rel *relation.Distributed, cfg Config) (*Result, error) {
	nm := c.NumMachines()
	if len(rel.Chunks) != nm {
		return nil, fmt.Errorf("agg: relation fragmented over %d chunks, cluster has %d machines", len(rel.Chunks), nm)
	}
	if err := cfg.validate(nm); err != nil {
		return nil, err
	}
	if nm > 1 && c.Config().CoresPerMachine < 2 {
		return nil, fmt.Errorf("agg: need ≥ 2 cores per machine (one network thread)")
	}

	states := make([]*aggState, nm)
	for m := 0; m < nm; m++ {
		states[m] = &aggState{cfg: &cfg, m: c.Machine(m), nm: nm, np: 1 << cfg.NetworkBits, input: rel.Chunks[m]}
	}
	if err := wirePlanes(c, states); err != nil {
		return nil, err
	}

	errs := make([]error, nm)
	var wg sync.WaitGroup
	for m := 0; m < nm; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			errs[m] = states[m].run()
		}(m)
	}
	wg.Wait()
	for m, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("agg: machine %d: %w", m, err)
		}
	}

	res := &Result{}
	for _, st := range states {
		res.Groups += st.groups
		res.Rows += st.rows
		res.Checksum += st.checksum
		res.BytesSent += st.bytesSent
		if st.phases.Histogram > res.Phases.Histogram {
			res.Phases.Histogram = st.phases.Histogram
		}
		if st.phases.NetworkPartition > res.Phases.NetworkPartition {
			res.Phases.NetworkPartition = st.phases.NetworkPartition
		}
		if st.phases.BuildProbe > res.Phases.BuildProbe {
			res.Phases.BuildProbe = st.phases.BuildProbe
		}
	}
	return res, nil
}

// aggState is the per-machine execution context.
type aggState struct {
	cfg   *Config
	m     *cluster.Machine
	nm    int
	np    int
	input *relation.Relation

	// partials[thread][partition] are the local partial aggregates,
	// serialised as 24-byte (key, count, sum) records.
	partials [][][]byte

	// Data plane: one QP per (thread, peer) with per-thread send CQs and
	// a shared receive CQ drained by the network thread.
	sendCQ []*rdma.CompletionQueue
	qps    [][]*rdma.QP
	recvCQ *rdma.CompletionQueue
	rings  map[uint32]*ring

	// pending[partition] buffers incoming partial-aggregate records until
	// the merge phase combines them with the local partials.
	mu      sync.Mutex
	pending map[int][]byte

	phases    phase.Times
	groups    uint64
	rows      uint64
	checksum  uint64
	bytesSent uint64
}

func (st *aggState) partThreads() int {
	if st.nm == 1 {
		return st.m.Cores
	}
	return st.m.Cores - 1
}

type ring struct {
	qp    *rdma.QP
	mr    *rdma.MemoryRegion
	bufSz int
}

const ringSlots = 8

func wirePlanes(c *cluster.Cluster, states []*aggState) error {
	nm := len(states)
	for _, st := range states {
		threads := st.partThreads()
		st.sendCQ = make([]*rdma.CompletionQueue, threads)
		for t := range st.sendCQ {
			st.sendCQ[t] = st.m.Dev.NewCQ()
		}
		st.recvCQ = st.m.Dev.NewCQ()
		st.qps = make([][]*rdma.QP, threads)
		for t := range st.qps {
			st.qps[t] = make([]*rdma.QP, nm)
		}
		st.rings = make(map[uint32]*ring)
		st.pending = make(map[int][]byte)
	}
	for a := 0; a < nm; a++ {
		sa := states[a]
		for t := 0; t < sa.partThreads(); t++ {
			for b := 0; b < nm; b++ {
				if b == a {
					continue
				}
				sb := states[b]
				qpS, qpR, err := c.ConnectQPs(a, b,
					rdma.QPConfig{SendCQ: sa.sendCQ[t], RecvCQ: sa.recvCQ},
					rdma.QPConfig{SendCQ: sb.recvCQ, RecvCQ: sb.recvCQ})
				if err != nil {
					return err
				}
				sa.qps[t][b] = qpS
				mr, err := sb.m.PD.RegisterMemory(make([]byte, sa.cfg.BufferSize*ringSlots), rdma.AccessLocalWrite)
				if err != nil {
					return err
				}
				r := &ring{qp: qpR, mr: mr, bufSz: sa.cfg.BufferSize}
				for i := 0; i < ringSlots; i++ {
					if err := r.post(i); err != nil {
						return err
					}
				}
				sb.rings[qpR.QPN()] = r
			}
		}
	}
	return nil
}

func (r *ring) post(slot int) error {
	return r.qp.PostRecv(rdma.RecvWR{
		WRID:  uint64(slot),
		Local: rdma.Segment{MR: r.mr, Offset: slot * r.bufSz, Length: r.bufSz},
	})
}

func (st *aggState) run() error {
	// Phase 1: local pre-aggregation (or raw partitioning).
	start := time.Now()
	st.preAggregate()
	if err := st.m.Barrier(); err != nil {
		return err
	}
	st.phases.Histogram = time.Since(start)

	// Phase 2: exchange.
	start = time.Now()
	if err := st.exchange(); err != nil {
		return err
	}
	if err := st.m.Barrier(); err != nil {
		return err
	}
	st.phases.NetworkPartition = time.Since(start)

	// Phase 3: merge owned partitions.
	start = time.Now()
	st.merge()
	st.phases.BuildProbe = time.Since(start)
	return st.m.Barrier()
}

// preAggregate builds per-thread, per-partition partial aggregates. With
// PreAggregate disabled, every tuple becomes its own count-1 record (the
// naive one-phase aggregation, useful as an ablation of the traffic
// reduction).
func (st *aggState) preAggregate() {
	threads := st.partThreads()
	st.partials = make([][][]byte, threads)
	n := st.input.Len()
	mask := uint64(st.np - 1)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			recs := make([][]byte, st.np)
			if st.cfg.PreAggregate {
				maps := make([]map[uint64]Group, st.np)
				for p := range maps {
					maps[p] = make(map[uint64]Group)
				}
				for i := n * t / threads; i < n*(t+1)/threads; i++ {
					k := st.input.Key(i)
					g := maps[k&mask][k]
					g.Count++
					g.Sum += st.input.RID(i)
					maps[k&mask][k] = g
				}
				for p, m := range maps {
					for k, g := range m {
						recs[p] = appendRecord(recs[p], k, g.Count, g.Sum)
					}
				}
			} else {
				lo, hi := n*t/threads, n*(t+1)/threads
				if st.cfg.Kernels != radix.KernelScalar {
					// Histogram pre-sizing: one counting pass makes every
					// per-partition buffer exactly sized, so the record loop
					// never reallocates mid-append.
					h := make([]int64, st.np)
					radix.AddHistogram(h, st.input.Slice(lo, hi), 0, st.cfg.NetworkBits)
					for p, c := range h {
						if c > 0 {
							recs[p] = make([]byte, 0, c*recordSize)
						}
					}
				}
				for i := lo; i < hi; i++ {
					k := st.input.Key(i)
					recs[k&mask] = appendRecord(recs[k&mask], k, 1, st.input.RID(i))
				}
			}
			st.partials[t] = recs
		}(t)
	}
	wg.Wait()
}

func appendRecord(buf []byte, key, count, sum uint64) []byte {
	var rec [recordSize]byte
	binary.LittleEndian.PutUint64(rec[0:], key)
	binary.LittleEndian.PutUint64(rec[8:], count)
	binary.LittleEndian.PutUint64(rec[16:], sum)
	return append(buf, rec[:]...)
}

// owner returns the machine owning partition p.
func (st *aggState) owner(p int) int { return p % st.nm }

// exchange ships partial aggregates to their partition owners.
func (st *aggState) exchange() error {
	if st.nm == 1 {
		return nil
	}
	threads := st.partThreads()
	errs := make([]error, threads+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[threads] = st.receive()
	}()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			errs[t] = st.send(t)
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sender is a per-destination buffer writer over a small pre-registered
// pool, reusing buffers only after their completion — the join's buffer
// discipline applied to a second operator.
type sender struct {
	mr          *rdma.MemoryRegion
	bufSz       int
	cq          *rdma.CompletionQueue
	free        []int32
	outstanding int
	cur         []int32 // per destination
	fill        []int
}

func newSender(pd *rdma.ProtectionDomain, cq *rdma.CompletionQueue, bufSz, count, destinations int) (*sender, error) {
	mr, err := pd.RegisterMemory(make([]byte, bufSz*count), 0)
	if err != nil {
		return nil, err
	}
	s := &sender{mr: mr, bufSz: bufSz, cq: cq, cur: make([]int32, destinations), fill: make([]int, destinations)}
	for i := count - 1; i >= 0; i-- {
		s.free = append(s.free, int32(i))
	}
	for d := range s.cur {
		s.cur[d] = -1
	}
	return s, nil
}

func (s *sender) acquire() (int32, error) {
	for len(s.free) == 0 {
		c := s.cq.Wait()
		if err := c.Err(); err != nil {
			return 0, err
		}
		s.free = append(s.free, int32(c.WRID))
		s.outstanding--
	}
	b := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	return b, nil
}

func (s *sender) drain() error {
	for s.outstanding > 0 {
		c := s.cq.Wait()
		if err := c.Err(); err != nil {
			return err
		}
		s.free = append(s.free, int32(c.WRID))
		s.outstanding--
	}
	return nil
}

// send serialises thread t's remote partials and ships them, then sends a
// DONE marker to every peer.
func (st *aggState) send(t int) error {
	count := st.cfg.BuffersPerDestination * (st.nm - 1)
	snd, err := newSender(st.m.PD, st.sendCQ[t], st.cfg.BufferSize, count, st.nm)
	if err != nil {
		return err
	}
	flush := func(dest, p int) error {
		b := snd.cur[dest]
		if b < 0 || snd.fill[dest] == 0 {
			return nil
		}
		err := st.qps[t][dest].PostSend(rdma.SendWR{
			WRID: uint64(b), Op: rdma.OpSend, Signaled: true,
			Imm: uint32(p), HasImm: true,
			Local: rdma.Segment{MR: snd.mr, Offset: int(b) * snd.bufSz, Length: snd.fill[dest]},
		})
		if err != nil {
			return err
		}
		st.bytesSentAdd(uint64(snd.fill[dest]))
		snd.outstanding++
		snd.cur[dest] = -1
		snd.fill[dest] = 0
		return nil
	}
	for p := 0; p < st.np; p++ {
		dest := st.owner(p)
		if dest == st.m.ID {
			continue
		}
		recs := st.partials[t][p]
		for off := 0; off < len(recs); off += recordSize {
			b := snd.cur[dest]
			if b < 0 {
				if b, err = snd.acquire(); err != nil {
					return err
				}
				snd.cur[dest] = b
				snd.fill[dest] = 0
			}
			copy(snd.mr.Bytes()[int(b)*snd.bufSz+snd.fill[dest]:], recs[off:off+recordSize])
			snd.fill[dest] += recordSize
			if snd.fill[dest]+recordSize > snd.bufSz {
				if err := flush(dest, p); err != nil {
					return err
				}
			}
		}
		// Records of one buffer must belong to one partition (the Imm
		// addresses the partition), so flush at partition boundaries.
		if err := flush(dest, p); err != nil {
			return err
		}
	}
	// DONE markers, one per peer: tiny inline sends; unsignaled, since
	// delivery is confirmed by the receiver's marker count and RC order
	// guarantees they arrive after this thread's data.
	for d := 0; d < st.nm; d++ {
		if d == st.m.ID {
			continue
		}
		if err := st.qps[t][d].PostSend(rdma.SendWR{
			Op: rdma.OpSend, Imm: doneFlag, HasImm: true, Inline: []byte{0},
		}); err != nil {
			return err
		}
	}
	return snd.drain()
}

func (st *aggState) bytesSentAdd(n uint64) {
	st.mu.Lock()
	st.bytesSent += n
	st.mu.Unlock()
}

// receive drains incoming partials until every (peer, thread) sender has
// reported DONE.
func (st *aggState) receive() error {
	want := (st.nm - 1) * st.partThreads()
	done := 0
	for done < want {
		c := st.recvCQ.Wait()
		if err := c.Err(); err != nil {
			return err
		}
		r, ok := st.rings[c.QPN]
		if !ok {
			return fmt.Errorf("agg: completion from unknown QP %d", c.QPN)
		}
		if c.Imm&doneFlag != 0 {
			done++
		} else {
			p := int(c.Imm)
			payload := r.mr.Bytes()[int(c.WRID)*r.bufSz : int(c.WRID)*r.bufSz+c.Bytes]
			cp := make([]byte, len(payload))
			copy(cp, payload)
			st.mu.Lock()
			st.pending[p] = append(st.pending[p], cp...)
			st.mu.Unlock()
		}
		if err := r.post(int(c.WRID)); err != nil {
			return err
		}
	}
	return nil
}

// merge combines local and received partials of owned partitions into the
// final aggregates, in parallel over partitions.
func (st *aggState) merge() {
	type out struct {
		groups, rows, checksum uint64
	}
	results := make(chan out, st.m.Cores)
	parts := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < st.m.Cores; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var o out
			for p := range parts {
				final := make(map[uint64]Group)
				mergeRecords := func(buf []byte) {
					for off := 0; off+recordSize <= len(buf); off += recordSize {
						k := binary.LittleEndian.Uint64(buf[off:])
						f := final[k]
						f.Count += binary.LittleEndian.Uint64(buf[off+8:])
						f.Sum += binary.LittleEndian.Uint64(buf[off+16:])
						final[k] = f
					}
				}
				for _, threadRecs := range st.partials {
					mergeRecords(threadRecs[p])
				}
				mergeRecords(st.pending[p])
				for k, g := range final {
					o.groups++
					o.rows += g.Count
					o.checksum += k + g.Count + g.Sum
				}
			}
			results <- o
		}()
	}
	for p := 0; p < st.np; p++ {
		if st.owner(p) == st.m.ID {
			parts <- p
		}
	}
	close(parts)
	wg.Wait()
	close(results)
	for o := range results {
		st.groups += o.groups
		st.rows += o.rows
		st.checksum += o.checksum
	}
}
