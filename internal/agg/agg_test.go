package agg

import (
	"testing"
	"testing/quick"

	"rackjoin/internal/cluster"
	"rackjoin/internal/datagen"
	"rackjoin/internal/relation"
)

// reference computes the expected aggregation with a plain map.
func reference(rel *relation.Relation) Result {
	groups := make(map[uint64]Group)
	for i := 0; i < rel.Len(); i++ {
		g := groups[rel.Key(i)]
		g.Count++
		g.Sum += rel.RID(i)
		groups[rel.Key(i)] = g
	}
	var res Result
	for k, g := range groups {
		res.Groups++
		res.Rows += g.Count
		res.Checksum += k + g.Count + g.Sum
	}
	return res
}

func runAgg(t *testing.T, machines, cores int, rel *relation.Relation, cfg Config) (*Result, Result) {
	t.Helper()
	c, err := cluster.New(cluster.Config{Machines: machines, CoresPerMachine: cores})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := Run(c, relation.Fragment(rel, machines), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, reference(rel)
}

func checkAgg(t *testing.T, res *Result, want Result) {
	t.Helper()
	if res.Groups != want.Groups || res.Rows != want.Rows || res.Checksum != want.Checksum {
		t.Fatalf("got (groups=%d rows=%d sum=%d), want (%d %d %d)",
			res.Groups, res.Rows, res.Checksum, want.Groups, want.Rows, want.Checksum)
	}
}

func TestAggregationUniform(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 10, OuterTuples: 1 << 15, Seed: 1})
	res, want := runAgg(t, 4, 4, w.Outer, DefaultConfig())
	checkAgg(t, res, want)
	if res.Groups != 1<<10 {
		t.Fatalf("groups = %d, want %d", res.Groups, 1<<10)
	}
	if res.Rows != 1<<15 {
		t.Fatalf("rows = %d, want %d", res.Rows, 1<<15)
	}
	if res.BytesSent == 0 {
		t.Fatal("no exchange traffic")
	}
}

func TestAggregationSkewed(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 8, OuterTuples: 1 << 16, Skew: datagen.SkewHigh, Seed: 2})
	res, want := runAgg(t, 3, 3, w.Outer, DefaultConfig())
	checkAgg(t, res, want)
}

func TestAggregationSingleMachine(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 8, OuterTuples: 1 << 12, Seed: 3})
	res, want := runAgg(t, 1, 4, w.Outer, DefaultConfig())
	checkAgg(t, res, want)
	if res.BytesSent != 0 {
		t.Fatal("single machine should not exchange")
	}
}

func TestAggregationManyMachines(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 9, OuterTuples: 1 << 14, Seed: 4})
	res, want := runAgg(t, 8, 2, w.Outer, DefaultConfig())
	checkAgg(t, res, want)
}

func TestAggregationPreAggregationReducesTraffic(t *testing.T) {
	// Heavy key repetition: pre-aggregation must shrink the exchange.
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 6, OuterTuples: 1 << 16, Seed: 5})
	pre := DefaultConfig()
	raw := DefaultConfig()
	raw.PreAggregate = false
	resPre, want := runAgg(t, 4, 3, w.Outer, pre)
	checkAgg(t, resPre, want)
	resRaw, want := runAgg(t, 4, 3, w.Outer, raw)
	checkAgg(t, resRaw, want)
	if resPre.BytesSent*10 > resRaw.BytesSent {
		t.Fatalf("pre-aggregation should cut traffic ≥10×: %d vs %d bytes",
			resPre.BytesSent, resRaw.BytesSent)
	}
}

func TestAggregationEmpty(t *testing.T) {
	res, want := runAgg(t, 2, 2, relation.New(relation.Width16, 0), DefaultConfig())
	checkAgg(t, res, want)
	if res.Groups != 0 {
		t.Fatal("empty input should have no groups")
	}
}

func TestAggregationTinyBuffers(t *testing.T) {
	// One record per buffer.
	cfg := DefaultConfig()
	cfg.BufferSize = recordSize
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 8, OuterTuples: 1 << 12, Seed: 6})
	res, want := runAgg(t, 3, 2, w.Outer, cfg)
	checkAgg(t, res, want)
}

func TestAggregationWideTuples(t *testing.T) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 8, OuterTuples: 1 << 12, TupleWidth: relation.Width64, Seed: 7})
	res, want := runAgg(t, 3, 3, w.Outer, DefaultConfig())
	checkAgg(t, res, want)
}

func TestAggregationValidation(t *testing.T) {
	c, err := cluster.New(cluster.Config{Machines: 2, CoresPerMachine: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rel := relation.Fragment(relation.New(relation.Width16, 8), 2)

	bad := DefaultConfig()
	bad.NetworkBits = 0
	if _, err := Run(c, rel, bad); err == nil {
		t.Fatal("NetworkBits=0 should fail")
	}
	bad = DefaultConfig()
	bad.BufferSize = 8
	if _, err := Run(c, rel, bad); err == nil {
		t.Fatal("tiny buffer should fail")
	}
	bad = DefaultConfig()
	bad.BuffersPerDestination = 0
	if _, err := Run(c, rel, bad); err == nil {
		t.Fatal("zero buffers should fail")
	}
	if _, err := Run(c, relation.Fragment(relation.New(relation.Width16, 8), 3), DefaultConfig()); err == nil {
		t.Fatal("chunk mismatch should fail")
	}
	c1, err := cluster.New(cluster.Config{Machines: 2, CoresPerMachine: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := Run(c1, rel, DefaultConfig()); err == nil {
		t.Fatal("one core should fail")
	}
}

// Property: the distributed aggregation matches the map reference for
// arbitrary seeds, shapes and pre-aggregation settings.
func TestPropertyAggregationCorrect(t *testing.T) {
	f := func(seed int64, nm8, cores8, bits8 uint8, pre bool) bool {
		machines := int(nm8%5) + 1
		cores := int(cores8%3) + 2
		cfg := DefaultConfig()
		cfg.NetworkBits = uint(bits8%5) + 3
		cfg.PreAggregate = pre
		w := datagen.Generate(datagen.Config{InnerTuples: 200, OuterTuples: 3000, Seed: seed, Skew: float64(seed%2) * datagen.SkewLow})
		c, err := cluster.New(cluster.Config{Machines: machines, CoresPerMachine: cores})
		if err != nil {
			return false
		}
		defer c.Close()
		res, err := Run(c, relation.Fragment(w.Outer, machines), cfg)
		if err != nil {
			return false
		}
		want := reference(w.Outer)
		return res.Groups == want.Groups && res.Rows == want.Rows && res.Checksum == want.Checksum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
