package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndEvents(t *testing.T) {
	r := New()
	now := r.epoch
	r.Record(1, "phase", "histogram", now, now.Add(time.Second), 100)
	r.Record(0, "phase", "network", now.Add(time.Second), now.Add(3*time.Second), 200)
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].Label != "histogram" || ev[1].Label != "network" {
		t.Fatal("events not ordered by start")
	}
	if ev[0].Duration() != time.Second || ev[1].Duration() != 2*time.Second {
		t.Fatal("bad durations")
	}
	if r.Total() != 3*time.Second {
		t.Fatalf("Total = %v", r.Total())
	}
}

func TestSpanCloser(t *testing.T) {
	r := New()
	end := r.Span(2, "phase", "build")
	time.Sleep(2 * time.Millisecond)
	end(42)
	ev := r.Events()
	if len(ev) != 1 || ev[0].Machine != 2 || ev[0].Bytes != 42 {
		t.Fatalf("bad span event: %+v", ev)
	}
	if ev[0].Duration() < time.Millisecond {
		t.Fatalf("span too short: %v", ev[0].Duration())
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for m := 0; m < 8; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				end := r.Span(m, "phase", "work")
				end(1)
			}
		}(m)
	}
	wg.Wait()
	if len(r.Events()) != 400 {
		t.Fatalf("events = %d", len(r.Events()))
	}
}

func TestGanttRendering(t *testing.T) {
	r := New()
	now := r.epoch
	r.Record(0, "phase", "histogram", now, now.Add(time.Second), 0)
	r.Record(0, "phase", "network", now.Add(time.Second), now.Add(4*time.Second), 0)
	r.Record(1, "phase", "histogram", now, now.Add(2*time.Second), 0)
	r.Record(1, "other", "ignored", now, now.Add(10*time.Second), 0) // non-phase: not drawn

	var buf bytes.Buffer
	r.Gantt(&buf, 40)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "m0") || !strings.Contains(lines[1], "H") {
		t.Fatalf("bad row: %q", lines[1])
	}
	// Machine 1's histogram bar (0..2s of 4s total) must be roughly twice
	// machine 0's (0..1s).
	count := func(line string, mark rune) int {
		n := 0
		for _, r := range line {
			if r == mark {
				n++
			}
		}
		return n
	}
	h0 := count(lines[1], 'H')
	h1 := count(lines[3], 'H')
	if h1 < h0+5 {
		t.Fatalf("bar lengths wrong: m0=%d m1=%d\n%s", h0, h1, out)
	}
	// The ignored kind must not appear as a row.
	if strings.Contains(out, "ignored") {
		t.Fatal("non-phase event rendered")
	}
}

func TestGanttEmpty(t *testing.T) {
	var buf bytes.Buffer
	New().Gantt(&buf, 40)
	if !strings.Contains(buf.String(), "no events") {
		t.Fatal("empty recorder should say so")
	}
}

func TestSummary(t *testing.T) {
	r := New()
	now := r.epoch
	r.Record(0, "phase", "network", now, now.Add(time.Second), 1<<20)
	r.Record(1, "phase", "network", now, now.Add(3*time.Second), 1<<20)
	var buf bytes.Buffer
	r.Summary(&buf)
	out := buf.String()
	if !strings.Contains(out, "network") || !strings.Contains(out, "3s") {
		t.Fatalf("summary should show the per-label max:\n%s", out)
	}
	if !strings.Contains(out, "2.0 MB") {
		t.Fatalf("summary should sum bytes:\n%s", out)
	}
}
