package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestBeginParentAndFlows(t *testing.T) {
	r := New()
	root, endRoot := r.Begin(0, "run", "run", 0)
	if root == 0 {
		t.Fatal("Begin returned zero SpanID")
	}
	child, endChild := r.Begin(0, "phase", "work", root)
	endChild(7)
	endRoot(0)

	events := r.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	byID := map[SpanID]Event{}
	for _, e := range events {
		byID[e.ID] = e
	}
	if byID[child].Parent != root {
		t.Fatalf("child parent = %d, want %d", byID[child].Parent, root)
	}
	if byID[child].Bytes != 7 {
		t.Fatalf("child bytes = %d", byID[child].Bytes)
	}

	// Keyed rendezvous matches in either arrival order.
	r.FlowOut(root, "msg", "k1")
	r.FlowIn(child, "msg", "k1") // out first
	r.FlowIn(child, "msg", "k2") // in first
	r.FlowOut(root, "msg", "k2")
	r.FlowEdge(child, root, "ready")
	r.FlowEdge(0, root, "ready") // zero endpoints are dropped
	flows := r.Flows()
	if len(flows) != 3 {
		t.Fatalf("flows = %d, want 3: %+v", len(flows), flows)
	}
	for _, f := range flows[:2] {
		if f.From != root || f.To != child || f.Class != "msg" {
			t.Fatalf("bad rendezvous flow %+v", f)
		}
	}
	if flows[2] != (Flow{From: child, To: root, Class: "ready"}) {
		t.Fatalf("bad direct flow %+v", flows[2])
	}
}

func TestOpenSpansCarryIDs(t *testing.T) {
	r := New()
	id, end := r.Begin(2, "phase", "net", 0)
	open := r.OpenSpans()
	if len(open) != 1 || open[0].ID != id {
		t.Fatalf("open spans = %+v, want one with id %d", open, id)
	}
	end(0)
	if len(r.OpenSpans()) != 0 {
		t.Fatal("span still open after closer")
	}
}

func TestInstantAndRecordSpan(t *testing.T) {
	r := New()
	now := r.epoch.Add(5 * time.Millisecond)
	parent := r.RecordSpan(1, "phase", "net", 0, r.epoch, now, 0)
	inst := r.Instant(1, "msg", "send", parent, 128)
	events := r.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	for _, e := range events {
		if e.ID == inst {
			if e.Parent != parent || e.Start != e.End || e.Bytes != 128 {
				t.Fatalf("bad instant %+v", e)
			}
		}
	}
}

func TestClockOffsetNormalization(t *testing.T) {
	r := New()
	skew := 10 * time.Millisecond
	// Machine 0 records on the epoch clock, machine 1 on a clock running
	// 10ms ahead; both spans cover the same true interval [0, 20ms].
	r.Record(0, "phase", "histogram", r.epoch, r.epoch.Add(20*time.Millisecond), 0)
	r.Record(1, "phase", "histogram", r.epoch.Add(skew), r.epoch.Add(20*time.Millisecond+skew), 0)
	r.SetClockOffset(1, skew)
	if got := r.ClockOffset(1); got != skew {
		t.Fatalf("ClockOffset = %v", got)
	}
	for _, e := range r.Events() {
		if e.Start != 0 || e.End != 20*time.Millisecond {
			t.Fatalf("machine %d span not normalized: %+v", e.Machine, e)
		}
	}
	// The Chrome export sees the normalized timestamps too.
	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.TraceEvents {
		if e.Ph == "X" && (e.TS != 0 || e.Dur != 20e3) {
			t.Fatalf("exported span not aligned: %+v", e)
		}
	}
}

// TestChromeFlowGolden pins the Chrome flow-event schema: span events
// carry args.span/args.parent, causal edges appear as bound "s"/"f"
// flow-event pairs. Regenerate with UPDATE_GOLDEN=1 go test ./internal/trace.
func TestChromeFlowGolden(t *testing.T) {
	r := New()
	at := func(ms int) time.Time { return r.epoch.Add(time.Duration(ms) * time.Millisecond) }
	run0 := r.RecordSpan(0, "run", "run", 0, at(0), at(50), 0)
	net0 := r.RecordSpan(0, "phase", "network partition", run0, at(0), at(30), 1<<20)
	send := r.RecordSpan(0, "msg", "send p3", net0, at(10), at(10), 4096)
	run1 := r.RecordSpan(1, "run", "run", 0, at(0), at(50), 0)
	recv := r.RecordSpan(1, "msg", "recv p3", run1, at(12), at(12), 4096)
	r.FlowOut(send, "msg", "m0.t0>m1#0")
	r.FlowIn(recv, "msg", "m0.t0>m1#0")

	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_flow_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome flow export drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestConcurrentCausalHammer drives the causal entry points (Begin, flow
// rendezvous, critical-path extraction) from many goroutines; under -race
// it proves the DAG layer is safe to read mid-run.
func TestConcurrentCausalHammer(t *testing.T) {
	r := New()
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for m := 0; m < 4; m++ {
		writers.Add(1)
		go func(m int) {
			defer writers.Done()
			root, endRoot := r.Begin(m, "run", "run", 0)
			for i := 0; i < 100; i++ {
				id, end := r.Begin(m, "phase", "work", root)
				key := fmt.Sprintf("m%d#%d", m, i)
				r.FlowOut(id, "msg", key)
				r.FlowIn(r.Instant(m, "msg", "recv", root, 0), "msg", key)
				end(int64(i))
			}
			endRoot(0)
		}(m)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WriteChromeJSON(&buf); err != nil {
				t.Error(err)
				return
			}
			_, _ = r.CriticalPath()
			_ = r.Flows()
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if got, want := len(r.Events()), 4*(100*2+1); got != want {
		t.Fatalf("events = %d, want %d", got, want)
	}
	if got, want := len(r.Flows()), 4*100; got != want {
		t.Fatalf("flows = %d, want %d", got, want)
	}
}

// TestPackedKeyRendezvous checks the integer-keyed flow fast path:
// matching in either arrival order, FIFO per key, disjoint from the
// string-keyed namespace, zero endpoints dropped.
func TestPackedKeyRendezvous(t *testing.T) {
	r := New()
	base := time.Now()
	a := r.RecordSpan(0, "msg", "send", 0, base, base, 0)
	b := r.RecordSpan(1, "msg", "recv", 0, base, base, 0)

	r.FlowOutKey(a, "msg", 42)
	r.FlowInKey(b, "msg", 42) // out first
	r.FlowInKey(b, "msg", 43) // in first
	r.FlowOutKey(a, "msg", 43)
	r.FlowOutKey(0, "msg", 44) // dropped
	r.FlowInKey(0, "msg", 44)  // dropped
	flows := r.Flows()
	if len(flows) != 2 {
		t.Fatalf("flows = %d, want 2: %+v", len(flows), flows)
	}
	for _, f := range flows {
		if f.From != a || f.To != b || f.Class != "msg" {
			t.Fatalf("flow %+v, want %d→%d class msg", f, a, b)
		}
	}

	// FIFO per key: two outs under one key match two ins in order.
	c := r.RecordSpan(0, "msg", "send2", 0, base, base, 0)
	r.FlowOutKey(a, "msg", 7)
	r.FlowOutKey(c, "msg", 7)
	r.FlowInKey(b, "msg", 7)
	r.FlowInKey(b, "msg", 7)
	flows = r.Flows()
	if flows[2].From != a || flows[3].From != c {
		t.Fatalf("packed-key matching not FIFO: %+v", flows[2:])
	}

	// A string-keyed in never consumes a packed-keyed out.
	r.FlowOutKey(a, "msg", 99)
	r.FlowIn(b, "msg", "99")
	for _, f := range r.Flows()[4:] {
		t.Fatalf("cross-namespace match: %+v", f)
	}
}

// TestInstantFlowCombined checks the single-lock per-message stamps:
// the instant is recorded and the rendezvous completes across the
// combined and the separate APIs in either order.
func TestInstantFlowCombined(t *testing.T) {
	r := New()
	send := r.InstantFlowOut(0, "msg", "send p1", 0, 64, "msg", 5)
	recv := r.InstantFlowIn(1, "msg", "recv p1", 0, 64, "msg", 5)
	if send == 0 || recv == 0 || send == recv {
		t.Fatalf("span ids: send=%d recv=%d", send, recv)
	}
	events := r.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	for _, e := range events {
		if e.Start != e.End {
			t.Fatalf("instant %+v not zero-duration", e)
		}
	}
	flows := r.Flows()
	if len(flows) != 1 || flows[0].From != send || flows[0].To != recv || flows[0].Class != "msg" {
		t.Fatalf("flows = %+v, want one %d→%d msg edge", flows, send, recv)
	}

	// In before out, and interop with FlowOutKey/FlowInKey.
	in2 := r.InstantFlowIn(1, "msg", "recv p2", 0, 0, "msg", 6)
	r.FlowOutKey(send, "msg", 6)
	r.FlowInKey(recv, "msg", 7)
	out3 := r.InstantFlowOut(0, "msg", "send p3", 0, 0, "msg", 7)
	flows = r.Flows()
	if len(flows) != 3 {
		t.Fatalf("flows = %d, want 3: %+v", len(flows), flows)
	}
	if flows[1].From != send || flows[1].To != in2 {
		t.Fatalf("out-late edge %+v, want %d→%d", flows[1], send, in2)
	}
	if flows[2].From != out3 || flows[2].To != recv {
		t.Fatalf("in-early edge %+v, want %d→%d", flows[2], out3, recv)
	}
}
