package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGanttEmptyLabel is the regression test for the Gantt panic on
// empty span labels (label[:1] on an empty string).
func TestGanttEmptyLabel(t *testing.T) {
	r := New()
	now := r.epoch
	r.Record(0, "phase", "", now, now.Add(time.Second), 0)
	r.Record(0, "phase", "network", now, now.Add(2*time.Second), 0)
	var buf bytes.Buffer
	r.Gantt(&buf, 40) // must not panic
	if !strings.Contains(buf.String(), "?") {
		t.Fatalf("unlabelled span should render as '?':\n%s", buf.String())
	}
}

func decodeChrome(t *testing.T, r *Recorder) chromeTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v\n%s", err, buf.String())
	}
	return tr
}

func TestWriteChromeJSON(t *testing.T) {
	r := New()
	now := r.epoch
	r.Record(0, "phase", "histogram", now, now.Add(time.Second), 0)
	r.Record(0, "phase", "network partition", now.Add(time.Second), now.Add(3*time.Second), 1<<20)
	r.Record(1, "phase", "histogram", now, now.Add(2*time.Second), 0)
	r.Record(1, "stall", "pool", now, now.Add(time.Millisecond), 0)

	tr := decodeChrome(t, r)
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}
	type key struct {
		pid  int
		name string
	}
	spans := map[key]chromeEvent{}
	var meta int
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			spans[key{e.PID, e.Name}] = e
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if meta == 0 {
		t.Fatal("no process/thread metadata emitted")
	}
	// One span per (machine, phase label).
	for _, k := range []key{
		{0, "histogram"}, {0, "network partition"}, {1, "histogram"}, {1, "pool"},
	} {
		if _, ok := spans[k]; !ok {
			t.Fatalf("missing span %+v", k)
		}
	}
	net := spans[key{0, "network partition"}]
	if net.TS != 1e6 || net.Dur != 2e6 {
		t.Fatalf("ts/dur = %g/%g µs, want 1e6/2e6", net.TS, net.Dur)
	}
	if net.Cat != "phase" || net.TID != 0 {
		t.Fatalf("phase span should be thread 0, cat phase: %+v", net)
	}
	if net.Args["bytes"].(float64) != 1<<20 {
		t.Fatalf("bytes arg = %v", net.Args["bytes"])
	}
	// Non-phase kinds get their own thread row.
	if spans[key{1, "pool"}].TID == 0 {
		t.Fatal("non-phase kind should not share thread 0")
	}
}

func TestWriteChromeJSONEmpty(t *testing.T) {
	tr := decodeChrome(t, New())
	if len(tr.TraceEvents) != 0 {
		t.Fatalf("empty recorder emitted %d events", len(tr.TraceEvents))
	}
}

// TestConcurrentRecorderHammer drives every Recorder entry point from
// many goroutines at once; under -race (tier-1) it proves the recorder
// and its exporters are safe to use while machines are still recording.
func TestConcurrentRecorderHammer(t *testing.T) {
	r := New()
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for m := 0; m < 8; m++ {
		writers.Add(1)
		go func(m int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				end := r.Span(m, "phase", "work")
				end(int64(i))
				r.Record(m, "stall", "", time.Now(), time.Now(), 0)
			}
		}(m)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			r.Gantt(&buf, 40)
			if err := r.WriteChromeJSON(&buf); err != nil {
				t.Error(err)
				return
			}
			r.Summary(&buf)
			_ = r.Total()
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := len(r.Events()); got != 8*200*2 {
		t.Fatalf("events = %d, want %d", got, 8*200*2)
	}
}
