package trace

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// Segment is one contiguous slice of wall time on the critical path,
// attributed to a span (on-CPU / waiting inside that span) or, when Link
// is non-empty, to the causal gap of a flow edge (network transfer,
// scheduler latency).
type Segment struct {
	Span    SpanID
	Machine int
	Kind    string
	Label   string
	// Phase is the attribution bucket: the label of the nearest enclosing
	// "phase" span, "barrier" for barrier waits, or the span kind.
	Phase string
	// Link names the causal gap for cross-edge segments ("msg m2→m0",
	// "ready", …); empty for span-interior segments.
	Link     string
	From, To time.Duration
}

// Duration returns the wall time the segment covers.
func (s Segment) Duration() time.Duration { return s.To - s.From }

// CriticalPath is the longest causal chain ending at the latest span of a
// trace: a contiguous backward walk from join completion through child,
// flow and parent edges, attributing every instant of the covered wall
// time to exactly one span or link gap.
type CriticalPath struct {
	// Wall is the trace extent (earliest start to latest end); Path is
	// the wall time the walk covered. Coverage = Path/Wall; a causally
	// complete trace yields ≈ 1.0.
	Wall, Path time.Duration
	Coverage   float64
	// Terminal is the span the walk started from (the latest-ending one).
	Terminal SpanID
	// Steps is the chronological chain, adjacent same-attribution
	// segments coalesced.
	Steps []Segment
	// ByPhase, ByMachine and ByLink aggregate the attributed time.
	// Link-gap segments count toward ByLink only.
	ByPhase   map[string]time.Duration
	ByMachine map[int]time.Duration
	ByLink    map[string]time.Duration
}

// CriticalPath extracts the critical path of the recorded trace,
// including spans still open (safe mid-run).
func (r *Recorder) CriticalPath() (*CriticalPath, error) {
	events := append(r.Events(), r.OpenSpans()...)
	return ExtractCriticalPath(events, r.Flows())
}

// phaseOf resolves a span's attribution bucket by walking the parent
// chain to the nearest enclosing "phase" span.
func phaseOf(e *Event, byID map[SpanID]*Event) string {
	for cur, n := e, 0; cur != nil && n < 64; n++ {
		switch cur.Kind {
		case "phase":
			return cur.Label
		case "barrier":
			return "barrier"
		}
		cur = byID[cur.Parent]
	}
	return e.Kind
}

// ExtractCriticalPath walks the causal trace graph backward from the
// latest-ending span. At every step the walk asks "what gated this
// instant?": the latest child span ending inside the current span (the
// span was waiting for or running that child), the group's last arrival
// for barrier spans, the latest-ending flow predecessor once the span's
// own start is reached (the message or injection that allowed it to
// start, its transfer gap attributed as a link), or the parent span. The
// time cursor never increases and strictly decreases across revisits, so
// the walk terminates; the segments are contiguous, so Path equals the
// wall time between the walk's origin and the terminal end.
func ExtractCriticalPath(events []Event, flows []Flow) (*CriticalPath, error) {
	if len(events) == 0 {
		return nil, errors.New("trace: no events to extract a critical path from")
	}
	byID := make(map[SpanID]*Event, len(events))
	for i := range events {
		if id := events[i].ID; id != 0 {
			byID[id] = &events[i]
		}
	}
	children := map[SpanID][]*Event{}
	barriers := map[string][]*Event{}
	for i := range events {
		e := &events[i]
		if e.Parent != 0 && byID[e.Parent] != nil {
			children[e.Parent] = append(children[e.Parent], e)
		}
		if e.Kind == "barrier" {
			barriers[e.Label] = append(barriers[e.Label], e)
		}
	}
	flowIn := map[SpanID][]Flow{}
	for _, f := range flows {
		if byID[f.From] != nil && byID[f.To] != nil {
			flowIn[f.To] = append(flowIn[f.To], f)
		}
	}

	var terminal *Event
	minStart := events[0].Start
	for i := range events {
		e := &events[i]
		if e.Start < minStart {
			minStart = e.Start
		}
		if terminal == nil || e.End > terminal.End ||
			(e.End == terminal.End && e.Start < terminal.Start) {
			terminal = e
		}
	}

	cp := &CriticalPath{
		Wall:      terminal.End - minStart,
		Terminal:  terminal.ID,
		ByPhase:   map[string]time.Duration{},
		ByMachine: map[int]time.Duration{},
		ByLink:    map[string]time.Duration{},
	}

	var raw []Segment // reverse-chronological
	addSeg := func(e *Event, from, to time.Duration, link string) {
		if to <= from {
			return
		}
		ph := phaseOf(e, byID)
		raw = append(raw, Segment{
			Span: e.ID, Machine: e.Machine, Kind: e.Kind, Label: e.Label,
			Phase: ph, Link: link, From: from, To: to,
		})
		if link != "" {
			cp.ByLink[link] += to - from
		} else {
			cp.ByPhase[ph] += to - from
			cp.ByMachine[e.Machine] += to - from
		}
	}

	cur, t := terminal, terminal.End
	// seen prevents zero-progress revisits at a fixed time cursor; it
	// resets whenever the cursor strictly decreases.
	seen := map[SpanID]bool{}
	lastT := t
	maxSteps := 4*len(events) + 2*len(flows) + 16
	for step := 0; step < maxSteps; step++ {
		if t < lastT {
			seen = map[SpanID]bool{}
			lastT = t
		}
		seen[cur.ID] = true

		// Latest child ending inside the span gates its interior.
		var child *Event
		for _, c := range children[cur.ID] {
			if seen[c.ID] || c.End > t || c.End <= cur.Start {
				continue
			}
			if child == nil || c.End > child.End {
				child = c
			}
		}
		if child != nil {
			addSeg(cur, child.End, t, "")
			cur, t = child, child.End
			continue
		}

		// A barrier span's exit is gated by the group's last arrival.
		if cur.Kind == "barrier" {
			var last *Event
			for _, b := range barriers[cur.Label] {
				if b == cur || seen[b.ID] {
					continue
				}
				// Same-label barriers of another run do not overlap.
				if b.Start >= cur.End || b.End <= cur.Start || b.Start > t {
					continue
				}
				if last == nil || b.Start > last.Start {
					last = b
				}
			}
			if last != nil && last.Start > cur.Start {
				addSeg(cur, last.Start, t, "")
				cur, t = last, last.Start
				continue
			}
		}

		// Nothing inside the span gates it: attribute down to its start.
		if cur.Start < t {
			addSeg(cur, cur.Start, t, "")
			t = cur.Start
			seen = map[SpanID]bool{cur.ID: true}
			lastT = t
		}

		// What allowed the span to start? Latest-ending flow predecessor
		// first; its gap is the link (transfer, scheduling) time.
		var src *Event
		var class string
		for _, f := range flowIn[cur.ID] {
			s := byID[f.From]
			if s == nil || seen[s.ID] || s.End > t {
				continue
			}
			if src == nil || s.End > src.End {
				src = s
				class = f.Class
			}
		}
		if src != nil {
			if src.End < t {
				link := class
				if link == "" {
					link = "flow"
				}
				if src.Machine != cur.Machine {
					link = fmt.Sprintf("%s m%d→m%d", link, src.Machine, cur.Machine)
				}
				addSeg(cur, src.End, t, link)
			}
			cur, t = src, src.End
			continue
		}
		if p := byID[cur.Parent]; p != nil && !seen[p.ID] && p.Start <= t {
			cur = p
			continue
		}
		break
	}

	cp.Path = terminal.End - t
	if cp.Wall > 0 {
		cp.Coverage = float64(cp.Path) / float64(cp.Wall)
	}
	// Chronological, coalescing adjacent segments with one attribution.
	for i, j := 0, len(raw)-1; i < j; i, j = i+1, j-1 {
		raw[i], raw[j] = raw[j], raw[i]
	}
	for _, s := range raw {
		n := len(cp.Steps)
		if n > 0 {
			prev := &cp.Steps[n-1]
			if prev.Machine == s.Machine && prev.Phase == s.Phase && prev.Link == s.Link {
				prev.To = s.To
				continue
			}
		}
		cp.Steps = append(cp.Steps, s)
	}
	return cp, nil
}

// Report renders the critical path as a human-readable breakdown:
// coverage, per-phase / per-machine / per-link attribution and the
// chronological chain (longest steps in full, the rest elided).
func (cp *CriticalPath) Report(w io.Writer) {
	fmt.Fprintf(w, "critical path: %v of %v wall (%.1f%% coverage), %d steps\n",
		cp.Path.Round(time.Microsecond), cp.Wall.Round(time.Microsecond),
		cp.Coverage*100, len(cp.Steps))
	writeBreakdown := func(title string, m map[string]time.Duration) {
		if len(m) == 0 {
			return
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if m[keys[i]] != m[keys[j]] {
				return m[keys[i]] > m[keys[j]]
			}
			return keys[i] < keys[j]
		})
		fmt.Fprintf(w, "%s:\n", title)
		for _, k := range keys {
			fmt.Fprintf(w, "  %-24s %12v  %5.1f%%\n", k,
				m[k].Round(time.Microsecond), float64(m[k])/float64(cp.Path)*100)
		}
	}
	writeBreakdown("by phase", cp.ByPhase)
	byMachine := make(map[string]time.Duration, len(cp.ByMachine))
	for m, d := range cp.ByMachine {
		byMachine[fmt.Sprintf("machine %d", m)] = d
	}
	writeBreakdown("by machine", byMachine)
	writeBreakdown("by link", cp.ByLink)

	const maxChain = 24
	fmt.Fprintln(w, "chain:")
	steps := cp.Steps
	elided := 0
	if len(steps) > maxChain {
		// Keep the longest steps, preserving chronological order.
		idx := make([]int, len(steps))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return steps[idx[a]].Duration() > steps[idx[b]].Duration() })
		keep := map[int]bool{}
		for _, i := range idx[:maxChain] {
			keep[i] = true
		}
		var kept []Segment
		for i, s := range steps {
			if keep[i] {
				kept = append(kept, s)
			}
		}
		elided = len(steps) - len(kept)
		steps = kept
	}
	for _, s := range steps {
		what := s.Phase
		if s.Link != "" {
			what = "link " + s.Link
		}
		fmt.Fprintf(w, "  %10v → %-10v %12v  m%-2d %s\n",
			s.From.Round(time.Microsecond), s.To.Round(time.Microsecond),
			s.Duration().Round(time.Microsecond), s.Machine, what)
	}
	if elided > 0 {
		fmt.Fprintf(w, "  (%d shorter steps elided)\n", elided)
	}
}
