package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto, speedscope all read it). Timestamps and
// durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object form of the format ({"traceEvents": […]}),
// which tools accept with trailing metadata fields.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeJSON exports every recorded span in the Chrome trace-event
// JSON format so a run can be inspected in chrome://tracing or Perfetto:
// one process per machine, one thread row per event kind ("phase" is
// always thread 0), spans as complete ("X") events carrying their byte
// counts and causal identity (args.span, args.parent) as args. Causal
// cross edges are exported as flow events — a flow-start ("s") anchored
// to the end of the producing span and a binding flow-finish ("f",
// bp "e") anchored to the start of the consuming span — so Perfetto draws
// the cross-machine message arrows of the trace DAG.
//
// Machines recorded against skewed clocks are aligned first: the
// registered per-machine clock offsets (SetClockOffset) are subtracted
// from every timestamp, so sim-fabric lanes share one epoch.
//
// It is safe to call mid-run: the event list is snapshotted under the
// recorder's lock, and spans still in flight are exported as complete
// events truncated at the export instant, tagged args.open=true, so a
// live /trace download shows the phases currently executing.
func (r *Recorder) WriteChromeJSON(w io.Writer) error {
	events := r.Events()
	openFrom := len(events)
	events = append(events, r.OpenSpans()...)

	// Stable thread row per kind: "phase" first, then remaining kinds in
	// first-occurrence order.
	tids := map[string]int{"phase": 0}
	order := []string{"phase"}
	machines := map[int]bool{}
	for _, e := range events {
		if _, ok := tids[e.Kind]; !ok {
			tids[e.Kind] = len(order)
			order = append(order, e.Kind)
		}
		machines[e.Machine] = true
	}

	var out []chromeEvent
	// Metadata: name each machine's process and each kind's thread row.
	var ids []int
	for m := range machines {
		ids = append(ids, m)
	}
	sort.Ints(ids)
	for _, m := range ids {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", PID: m,
			Args: map[string]any{"name": fmt.Sprintf("machine %d", m)},
		})
		for _, kind := range order {
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", PID: m, TID: tids[kind],
				Args: map[string]any{"name": kind},
			})
		}
	}
	byID := make(map[SpanID]Event, len(events))
	for i, e := range events {
		if e.ID != 0 {
			byID[e.ID] = e
		}
		name := e.Label
		if name == "" {
			name = "?"
		}
		ev := chromeEvent{
			Name: name, Cat: e.Kind, Ph: "X",
			TS:  float64(e.Start.Microseconds()),
			Dur: float64(e.Duration().Microseconds()),
			PID: e.Machine, TID: tids[e.Kind],
		}
		ev.Args = map[string]any{}
		if e.ID != 0 {
			ev.Args["span"] = uint64(e.ID)
		}
		if e.Parent != 0 {
			ev.Args["parent"] = uint64(e.Parent)
		}
		if e.Bytes > 0 {
			ev.Args["bytes"] = e.Bytes
		}
		if i >= openFrom {
			ev.Args["open"] = true
		}
		if len(ev.Args) == 0 {
			ev.Args = nil
		}
		out = append(out, ev)
	}
	// Causal edges as bound flow-event pairs. Edges whose endpoints are
	// not in this snapshot (still unmatched or unrecorded) are skipped.
	for i, f := range r.Flows() {
		from, okF := byID[f.From]
		to, okT := byID[f.To]
		if !okF || !okT {
			continue
		}
		name := f.Class
		if name == "" {
			name = "flow"
		}
		out = append(out,
			chromeEvent{
				Name: name, Cat: "flow", Ph: "s", ID: uint64(i + 1),
				TS: float64(from.End.Microseconds()), PID: from.Machine, TID: tids[from.Kind],
			},
			chromeEvent{
				Name: name, Cat: "flow", Ph: "f", BP: "e", ID: uint64(i + 1),
				TS: float64(to.Start.Microseconds()), PID: to.Machine, TID: tids[to.Kind],
			})
	}
	if out == nil {
		out = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}
