package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// buildTwoMachineDAG records a deterministic two-machine pipelined run:
//
//	m0: run [0,96] ── hist [0,20] ─ barrier [20,31] ─ net [31,60] ─ send@55
//	m1: run [0,95] ── hist [0,30] ─ barrier [30,31] ─ bp [58.5,90] ─ task [59,90]
//	flows: send ─msg→ recv@58 ─ready→ ready@58 ─ready→ task
//	final barrier: m0 [61,95], m1 [90,95]
//
// The critical path must thread m1's straggler histogram, the barrier,
// m0's network pass, the cross-machine message gap and m1's join task.
func buildTwoMachineDAG(r *Recorder) {
	at := func(us int64) time.Time { return r.epoch.Add(time.Duration(us) * time.Microsecond) }
	ms := func(f float64) int64 { return int64(f * 1000) }

	run0 := r.RecordSpan(0, "run", "run", 0, at(0), at(ms(96)), 0)
	run1 := r.RecordSpan(1, "run", "run", 0, at(0), at(ms(95)), 0)
	r.RecordSpan(0, "phase", "histogram", run0, at(0), at(ms(20)), 0)
	r.RecordSpan(1, "phase", "histogram", run1, at(0), at(ms(30)), 0)
	r.RecordSpan(0, "barrier", "after histogram", run0, at(ms(20)), at(ms(31)), 0)
	r.RecordSpan(1, "barrier", "after histogram", run1, at(ms(30)), at(ms(31)), 0)

	net0 := r.RecordSpan(0, "phase", "network partition", run0, at(ms(31)), at(ms(60)), 1<<20)
	send := r.RecordSpan(0, "msg", "send p5", net0, at(ms(55)), at(ms(55)), 4096)
	recv := r.RecordSpan(1, "msg", "recv p5", run1, at(ms(58)), at(ms(58)), 4096)
	ready := r.RecordSpan(1, "ready", "ready p5", run1, at(ms(58)), at(ms(58)), 0)
	bp := r.RecordSpan(1, "phase", "local+build-probe", run1, at(ms(58.5)), at(ms(90)), 0)
	task := r.RecordSpan(1, "task", "join p5", bp, at(ms(59)), at(ms(90)), 0)
	r.FlowOut(send, "msg", "m0.t0>m1#0")
	r.FlowIn(recv, "msg", "m0.t0>m1#0")
	r.FlowEdge(recv, ready, "ready")
	r.FlowEdge(ready, task, "ready")

	r.RecordSpan(0, "barrier", "final", run0, at(ms(61)), at(ms(95)), 0)
	r.RecordSpan(1, "barrier", "final", run1, at(ms(90)), at(ms(95)), 0)
}

func TestCriticalPathTwoMachines(t *testing.T) {
	r := New()
	buildTwoMachineDAG(r)
	cp, err := r.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Wall != 96*time.Millisecond {
		t.Fatalf("wall = %v", cp.Wall)
	}
	if cp.Coverage < 0.999 {
		t.Fatalf("coverage = %.3f, want ≈ 1.0 on a fully-connected DAG\nsteps: %+v", cp.Coverage, cp.Steps)
	}
	// The straggler histogram on m1 (30ms) must be on the path — m0's
	// 20ms histogram must not.
	if got := cp.ByPhase["histogram"]; got != 30*time.Millisecond {
		t.Fatalf("histogram on path = %v, want 30ms (m1 straggler)\nByPhase: %v", got, cp.ByPhase)
	}
	// Network pass on the path: m0's [31,55] up to the critical send.
	if got := cp.ByPhase["network partition"]; got != 24*time.Millisecond {
		t.Fatalf("network partition on path = %v, want 24ms\nByPhase: %v", got, cp.ByPhase)
	}
	// The cross-machine transfer gap [55,58] lands on the msg link.
	if got := cp.ByLink["msg m0→m1"]; got != 3*time.Millisecond {
		t.Fatalf("msg link gap = %v, want 3ms\nByLink: %v", got, cp.ByLink)
	}
	// The scheduler latency [58,59] lands on the ready link.
	if got := cp.ByLink["ready"]; got != 1*time.Millisecond {
		t.Fatalf("ready gap = %v, want 1ms\nByLink: %v", got, cp.ByLink)
	}
	// The join task [59,90] is attributed to its enclosing phase span.
	if got := cp.ByPhase["local+build-probe"]; got != 31*time.Millisecond {
		t.Fatalf("local+build-probe on path = %v, want 31ms\nByPhase: %v", got, cp.ByPhase)
	}
	// Barrier waits: [90,95] at the final barrier on m0 plus [30,31] of
	// the histogram barrier release on m0/m1.
	if got := cp.ByPhase["barrier"]; got != 6*time.Millisecond {
		t.Fatalf("barrier wait on path = %v, want 6ms\nByPhase: %v", got, cp.ByPhase)
	}
	// Both machines contribute.
	if cp.ByMachine[0] == 0 || cp.ByMachine[1] == 0 {
		t.Fatalf("ByMachine = %v, want both machines on the path", cp.ByMachine)
	}
	var total time.Duration
	for _, s := range cp.Steps {
		total += s.Duration()
	}
	if total != cp.Path {
		t.Fatalf("steps sum to %v, path is %v", total, cp.Path)
	}
}

func TestCriticalPathReport(t *testing.T) {
	r := New()
	buildTwoMachineDAG(r)
	cp, err := r.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cp.Report(&buf)
	out := buf.String()
	for _, want := range []string{"critical path:", "by phase", "by machine", "by link", "msg m0→m1", "chain:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	if _, err := New().CriticalPath(); err == nil {
		t.Fatal("expected error on empty trace")
	}
}

// TestCriticalPathFlatTrace: legacy flat spans (no parents, no flows)
// still yield a path — the latest span walked to its start.
func TestCriticalPathFlatTrace(t *testing.T) {
	r := New()
	r.Record(0, "phase", "histogram", r.epoch, r.epoch.Add(10*time.Millisecond), 0)
	r.Record(0, "phase", "network", r.epoch.Add(10*time.Millisecond), r.epoch.Add(40*time.Millisecond), 0)
	cp, err := r.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Path != 30*time.Millisecond {
		t.Fatalf("path = %v, want 30ms (latest flat span)", cp.Path)
	}
	if cp.ByPhase["network"] != 30*time.Millisecond {
		t.Fatalf("ByPhase = %v", cp.ByPhase)
	}
}
