package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestOpenSpansVisibleMidRun exercises the mid-run contract: a span that
// has started but not finished appears in OpenSpans and in the Chrome
// export (tagged open), and migrates to Events once closed.
func TestOpenSpansVisibleMidRun(t *testing.T) {
	r := New()
	end := r.Span(1, "phase", "network partition")
	time.Sleep(2 * time.Millisecond)

	open := r.OpenSpans()
	if len(open) != 1 {
		t.Fatalf("OpenSpans = %d spans, want 1", len(open))
	}
	if open[0].Label != "network partition" || open[0].Machine != 1 {
		t.Fatalf("unexpected open span %+v", open[0])
	}
	if open[0].End <= open[0].Start {
		t.Fatalf("open span end %v not after start %v", open[0].End, open[0].Start)
	}
	if got := r.Events(); len(got) != 0 {
		t.Fatalf("unfinished span leaked into Events: %+v", got)
	}

	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range doc.TraceEvents {
		if e.Name == "network partition" && e.Ph == "X" {
			found = true
			if e.Args["open"] != true {
				t.Errorf("in-flight span not tagged open: args=%v", e.Args)
			}
		}
	}
	if !found {
		t.Fatal("in-flight span missing from mid-run Chrome export")
	}

	end(128)
	if len(r.OpenSpans()) != 0 {
		t.Fatal("closed span still reported open")
	}
	ev := r.Events()
	if len(ev) != 1 || ev[0].Bytes != 128 {
		t.Fatalf("closed span not recorded: %+v", ev)
	}
}

// TestConcurrentChromeExport hammers WriteChromeJSON (and the other
// exporters) while spans are being recorded and closed from many
// goroutines — the /trace endpoint's access pattern. Run under -race.
func TestConcurrentChromeExport(t *testing.T) {
	r := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for m := 0; m < 4; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			labels := []string{"histogram", "network partition", "local", "build-probe"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				end := r.Span(m, "phase", labels[i%len(labels)])
				end(int64(i))
			}
		}(m)
	}
	for i := 0; i < 50; i++ {
		if err := r.WriteChromeJSON(io.Discard); err != nil {
			t.Fatalf("mid-run export %d: %v", i, err)
		}
		var sb strings.Builder
		r.Gantt(&sb, 32)
		r.Summary(io.Discard)
		_ = r.Total()
		_ = r.OpenSpans()
	}
	close(stop)
	wg.Wait()
	// Final export must still be valid JSON.
	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("final export is not valid JSON")
	}
}
