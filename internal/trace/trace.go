// Package trace records timestamped execution spans of a distributed
// operator run and renders them as a per-machine text timeline — the view
// the paper's Figures 5b/7a aggregate into stacked bars. It makes phase
// overlap, barrier waiting and stragglers (e.g. the hot machine of a
// skewed run) directly visible.
//
// Beyond the flat span log, the recorder captures a causal trace graph:
// every span has an ID and an optional parent edge, and cross-machine
// message edges (send → receive, readiness injection → join task) are
// stamped through keyed flow rendezvous. A join run therefore produces a
// DAG spanning all machines, exported as Chrome flow events and walked
// backward by the critical-path analyzer (critpath.go).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// SpanID identifies one span in the causal trace graph. 0 means "no
// span" (no parent, no flow endpoint).
type SpanID uint64

// Event is one recorded span.
type Event struct {
	// ID identifies the span in the causal graph; 0 only on zero-value
	// events (every recorded span gets an ID).
	ID SpanID
	// Parent is the causally-enclosing span on the same machine, 0 for
	// roots.
	Parent SpanID
	// Machine that executed the span.
	Machine int
	// Kind groups events (e.g. "phase", "stall", "barrier", "msg").
	Kind string
	// Label names the span (e.g. "network partition").
	Label string
	// Start and End are offsets from the recorder's epoch.
	Start, End time.Duration
	// Bytes optionally sizes the work done in the span.
	Bytes int64
}

// Duration returns the span length.
func (e Event) Duration() time.Duration { return e.End - e.Start }

// Flow is one causal cross edge of the trace graph: span From must end
// before span To can proceed (a network message, an end-of-partition
// notification, a readiness injection).
type Flow struct {
	From, To SpanID
	// Class groups edges ("msg", "eop", "ready", …) for attribution.
	Class string
}

// Recorder collects events from concurrent machines. The zero value is
// not usable; construct with New.
//
// All accessors snapshot under the recorder's lock, so exporting (Events,
// OpenSpans, Flows, WriteChromeJSON, Gantt, Summary) is safe while spans
// are still being recorded — the live /trace endpoint of internal/obsv
// downloads mid-run traces this way.
type Recorder struct {
	mu     sync.Mutex
	epoch  time.Time
	events []Event
	open   map[SpanID]Event // in-flight spans (End unset)
	nextID SpanID
	flows  []Flow
	// Keyed flow rendezvous: whichever side of an edge arrives first
	// parks under its key until the other side shows up. The uint64 maps
	// back the packed-key fast path (FlowOutKey/FlowInKey) that hot loops
	// use to avoid per-message key formatting.
	pendingOut  map[string][]SpanID
	pendingIn   map[string][]SpanID
	pendingOutK map[uint64][]SpanID
	pendingInK  map[uint64][]SpanID
	// offsets[machine] is how far that machine's clock runs ahead of the
	// shared epoch clock; subtracted on every snapshot.
	offsets map[int]time.Duration
}

// New creates a recorder whose epoch is now.
func New() *Recorder {
	return &Recorder{epoch: time.Now(), open: make(map[SpanID]Event)}
}

// SetClockOffset declares machine's clock to run ahead of the recorder's
// epoch clock by offset. Every exported view (Events, OpenSpans and the
// Chrome export) subtracts it, so machines recorded against unsynchronised
// clocks — e.g. sim-fabric machines with virtual epochs — align on the
// shared epoch and cross-machine ordering stays meaningful.
func (r *Recorder) SetClockOffset(machine int, offset time.Duration) {
	r.mu.Lock()
	if r.offsets == nil {
		r.offsets = make(map[int]time.Duration)
	}
	r.offsets[machine] = offset
	r.mu.Unlock()
}

// ClockOffset returns the offset registered for machine (0 if none).
func (r *Recorder) ClockOffset(machine int) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.offsets[machine]
}

// normalizeLocked applies the machine's clock offset to a snapshot copy.
func (r *Recorder) normalizeLocked(e Event) Event {
	if off, ok := r.offsets[e.Machine]; ok {
		e.Start -= off
		e.End -= off
	}
	return e
}

// Record adds a span with explicit wall-clock endpoints.
func (r *Recorder) Record(machine int, kind, label string, start, end time.Time, bytes int64) {
	r.RecordSpan(machine, kind, label, 0, start, end, bytes)
}

// RecordSpan adds a span with explicit wall-clock endpoints and a parent
// edge, returning its ID so flow edges can attach to it.
func (r *Recorder) RecordSpan(machine int, kind, label string, parent SpanID, start, end time.Time, bytes int64) SpanID {
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.events = append(r.events, Event{
		ID: id, Parent: parent, Machine: machine, Kind: kind, Label: label,
		Start: start.Sub(r.epoch), End: end.Sub(r.epoch), Bytes: bytes,
	})
	r.mu.Unlock()
	return id
}

// Instant records a zero-duration span at the current instant — a point
// event that can carry flow edges (a message posting, a readiness
// injection).
func (r *Recorder) Instant(machine int, kind, label string, parent SpanID, bytes int64) SpanID {
	now := time.Now()
	return r.RecordSpan(machine, kind, label, parent, now, now, bytes)
}

// Span starts a span now and returns a closer that ends it; pass the
// bytes processed (0 if not applicable). Until the closer runs, the span
// is visible through OpenSpans, so mid-run exports include it.
func (r *Recorder) Span(machine int, kind, label string) func(bytes int64) {
	_, end := r.Begin(machine, kind, label, 0)
	return end
}

// Begin starts a causal span under parent (0 for a root) and returns its
// ID plus a closer that ends it; pass the bytes processed (0 if not
// applicable). The ID is live immediately: flow edges and child spans may
// attach before the closer runs, and OpenSpans exposes the span mid-run.
func (r *Recorder) Begin(machine int, kind, label string, parent SpanID) (SpanID, func(bytes int64)) {
	start := time.Now()
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	if r.open == nil {
		r.open = make(map[SpanID]Event)
	}
	r.open[id] = Event{
		ID: id, Parent: parent, Machine: machine, Kind: kind, Label: label,
		Start: start.Sub(r.epoch),
	}
	r.mu.Unlock()
	return id, func(bytes int64) {
		end := time.Now()
		r.mu.Lock()
		delete(r.open, id)
		r.events = append(r.events, Event{
			ID: id, Parent: parent, Machine: machine, Kind: kind, Label: label,
			Start: start.Sub(r.epoch), End: end.Sub(r.epoch), Bytes: bytes,
		})
		r.mu.Unlock()
	}
}

// FlowEdge adds a causal edge between two known spans. Zero IDs are
// ignored, so call sites need no tracing-enabled guard.
func (r *Recorder) FlowEdge(from, to SpanID, class string) {
	if from == 0 || to == 0 {
		return
	}
	r.mu.Lock()
	r.flows = append(r.flows, Flow{From: from, To: to, Class: class})
	r.mu.Unlock()
}

// FlowOut announces the producing end of a keyed causal edge: the
// matching FlowIn with the same key — before or after this call —
// completes the edge. Keys must be unique per edge (e.g. source machine,
// thread and message sequence number); matching is FIFO per key.
func (r *Recorder) FlowOut(from SpanID, class, key string) {
	if from == 0 {
		return
	}
	r.mu.Lock()
	if ins := r.pendingIn[key]; len(ins) > 0 {
		r.flows = append(r.flows, Flow{From: from, To: ins[0], Class: class})
		if len(ins) == 1 {
			delete(r.pendingIn, key)
		} else {
			r.pendingIn[key] = ins[1:]
		}
	} else {
		if r.pendingOut == nil {
			r.pendingOut = make(map[string][]SpanID)
		}
		r.pendingOut[key] = append(r.pendingOut[key], from)
	}
	r.mu.Unlock()
}

// FlowIn announces the consuming end of a keyed causal edge; see FlowOut.
func (r *Recorder) FlowIn(to SpanID, class, key string) {
	if to == 0 {
		return
	}
	r.mu.Lock()
	if outs := r.pendingOut[key]; len(outs) > 0 {
		r.flows = append(r.flows, Flow{From: outs[0], To: to, Class: class})
		if len(outs) == 1 {
			delete(r.pendingOut, key)
		} else {
			r.pendingOut[key] = outs[1:]
		}
	} else {
		if r.pendingIn == nil {
			r.pendingIn = make(map[string][]SpanID)
		}
		r.pendingIn[key] = append(r.pendingIn[key], to)
	}
	r.mu.Unlock()
}

// FlowOutKey is FlowOut with a caller-packed integer key: the hot-loop
// variant for per-message edges, where formatting a string key would
// allocate on every send. Keys live in their own namespace — a FlowOutKey
// never matches a string-keyed FlowIn — so callers must pack a class
// discriminator into the key (see core's msgFlowKey) exactly as string
// keys carry a class prefix.
func (r *Recorder) FlowOutKey(from SpanID, class string, key uint64) {
	if from == 0 {
		return
	}
	r.mu.Lock()
	if ins := r.pendingInK[key]; len(ins) > 0 {
		r.flows = append(r.flows, Flow{From: from, To: ins[0], Class: class})
		if len(ins) == 1 {
			delete(r.pendingInK, key)
		} else {
			r.pendingInK[key] = ins[1:]
		}
	} else {
		if r.pendingOutK == nil {
			r.pendingOutK = make(map[uint64][]SpanID)
		}
		r.pendingOutK[key] = append(r.pendingOutK[key], from)
	}
	r.mu.Unlock()
}

// FlowInKey is the consuming end of a packed-key causal edge; see
// FlowOutKey.
func (r *Recorder) FlowInKey(to SpanID, class string, key uint64) {
	if to == 0 {
		return
	}
	r.mu.Lock()
	if outs := r.pendingOutK[key]; len(outs) > 0 {
		r.flows = append(r.flows, Flow{From: outs[0], To: to, Class: class})
		if len(outs) == 1 {
			delete(r.pendingOutK, key)
		} else {
			r.pendingOutK[key] = outs[1:]
		}
	} else {
		if r.pendingInK == nil {
			r.pendingInK = make(map[uint64][]SpanID)
		}
		r.pendingInK[key] = append(r.pendingInK[key], to)
	}
	r.mu.Unlock()
}

// InstantFlowOut records a point event and announces it as the producing
// end of a packed-key causal edge in one lock round-trip — the
// per-message send stamp of the network pass, where two separate calls
// would double the recorder's hot-path locking.
func (r *Recorder) InstantFlowOut(machine int, kind, label string, parent SpanID, bytes int64, class string, key uint64) SpanID {
	now := time.Now()
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	at := now.Sub(r.epoch)
	r.events = append(r.events, Event{
		ID: id, Parent: parent, Machine: machine, Kind: kind, Label: label,
		Start: at, End: at, Bytes: bytes,
	})
	if ins := r.pendingInK[key]; len(ins) > 0 {
		r.flows = append(r.flows, Flow{From: id, To: ins[0], Class: class})
		if len(ins) == 1 {
			delete(r.pendingInK, key)
		} else {
			r.pendingInK[key] = ins[1:]
		}
	} else {
		if r.pendingOutK == nil {
			r.pendingOutK = make(map[uint64][]SpanID)
		}
		r.pendingOutK[key] = append(r.pendingOutK[key], id)
	}
	r.mu.Unlock()
	return id
}

// InstantFlowIn is the consuming-end counterpart of InstantFlowOut: the
// per-message receive stamp.
func (r *Recorder) InstantFlowIn(machine int, kind, label string, parent SpanID, bytes int64, class string, key uint64) SpanID {
	now := time.Now()
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	at := now.Sub(r.epoch)
	r.events = append(r.events, Event{
		ID: id, Parent: parent, Machine: machine, Kind: kind, Label: label,
		Start: at, End: at, Bytes: bytes,
	})
	if outs := r.pendingOutK[key]; len(outs) > 0 {
		r.flows = append(r.flows, Flow{From: outs[0], To: id, Class: class})
		if len(outs) == 1 {
			delete(r.pendingOutK, key)
		} else {
			r.pendingOutK[key] = outs[1:]
		}
	} else {
		if r.pendingInK == nil {
			r.pendingInK = make(map[uint64][]SpanID)
		}
		r.pendingInK[key] = append(r.pendingInK[key], id)
	}
	r.mu.Unlock()
	return id
}

// Flows returns a copy of the completed causal edges.
func (r *Recorder) Flows() []Flow {
	r.mu.Lock()
	out := make([]Flow, len(r.flows))
	copy(out, r.flows)
	r.mu.Unlock()
	return out
}

// OpenSpans returns the spans that have started but not yet finished,
// with End set to the elapsed time now, ordered by start. Together with
// Events it gives a complete mid-run picture of the execution.
func (r *Recorder) OpenSpans() []Event {
	r.mu.Lock()
	now := time.Since(r.epoch)
	out := make([]Event, 0, len(r.open))
	for _, e := range r.open {
		e = r.normalizeLocked(e)
		e.End = now
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Events returns a copy of the recorded spans, ordered by start time,
// with per-machine clock offsets normalized out.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := make([]Event, len(r.events))
	for i, e := range r.events {
		out[i] = r.normalizeLocked(e)
	}
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Total returns the span from the earliest start to the latest end.
func (r *Recorder) Total() time.Duration {
	var max time.Duration
	for _, e := range r.Events() {
		if e.End > max {
			max = e.End
		}
	}
	return max
}

// Gantt renders the "phase" events as one text timeline row per
// (machine, label), width columns wide. Machines are ordered by ID,
// phases by first occurrence.
func (r *Recorder) Gantt(w io.Writer, width int) {
	if width < 10 {
		width = 10
	}
	events := r.Events()
	// Scale to the rendered (phase) events only; other kinds may extend
	// further.
	var total time.Duration
	var labels []string
	seen := map[string]bool{}
	machines := map[int]bool{}
	for _, e := range events {
		if e.Kind != "phase" {
			continue
		}
		if e.End > total {
			total = e.End
		}
		if !seen[e.Label] {
			seen[e.Label] = true
			labels = append(labels, e.Label)
		}
		machines[e.Machine] = true
	}
	if total <= 0 || len(labels) == 0 {
		fmt.Fprintln(w, "(no events recorded)")
		return
	}
	var ids []int
	for m := range machines {
		ids = append(ids, m)
	}
	sort.Ints(ids)

	col := func(d time.Duration) int {
		c := int(float64(d) / float64(total) * float64(width))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	fmt.Fprintf(w, "total %v, one column ≈ %v\n", total.Round(time.Millisecond), (total / time.Duration(width)).Round(time.Microsecond))
	for _, m := range ids {
		for _, label := range labels {
			row := make([]rune, width)
			for i := range row {
				row[i] = '·'
			}
			// Unlabelled spans render as '?' (label[:1] would panic).
			mark := '?'
			if label != "" {
				mark = rune(strings.ToUpper(label[:1])[0])
			}
			found := false
			for _, e := range events {
				if e.Kind != "phase" || e.Machine != m || e.Label != label {
					continue
				}
				found = true
				lo, hi := col(e.Start), col(e.End)
				for c := lo; c <= hi; c++ {
					row[c] = mark
				}
			}
			if !found {
				continue
			}
			fmt.Fprintf(w, "m%-2d %-18s |%s|\n", m, label, string(row))
		}
	}
}

// Summary prints per-label aggregate durations (max across machines, the
// paper's stacked-bar convention) and byte counts.
func (r *Recorder) Summary(w io.Writer) {
	type agg struct {
		max   time.Duration
		bytes int64
	}
	byLabel := map[string]*agg{}
	var order []string
	for _, e := range r.Events() {
		if e.Kind != "phase" {
			continue
		}
		a, ok := byLabel[e.Label]
		if !ok {
			a = &agg{}
			byLabel[e.Label] = a
			order = append(order, e.Label)
		}
		if e.Duration() > a.max {
			a.max = e.Duration()
		}
		a.bytes += e.Bytes
	}
	for _, label := range order {
		a := byLabel[label]
		fmt.Fprintf(w, "%-20s %10v", label, a.max.Round(time.Microsecond))
		if a.bytes > 0 {
			fmt.Fprintf(w, "  %8.1f MB", float64(a.bytes)/(1<<20))
		}
		fmt.Fprintln(w)
	}
}
