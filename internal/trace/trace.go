// Package trace records timestamped execution spans of a distributed
// operator run and renders them as a per-machine text timeline — the view
// the paper's Figures 5b/7a aggregate into stacked bars. It makes phase
// overlap, barrier waiting and stragglers (e.g. the hot machine of a
// skewed run) directly visible.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one recorded span.
type Event struct {
	// Machine that executed the span.
	Machine int
	// Kind groups events (e.g. "phase", "stall").
	Kind string
	// Label names the span (e.g. "network partition").
	Label string
	// Start and End are offsets from the recorder's epoch.
	Start, End time.Duration
	// Bytes optionally sizes the work done in the span.
	Bytes int64
}

// Duration returns the span length.
func (e Event) Duration() time.Duration { return e.End - e.Start }

// Recorder collects events from concurrent machines. The zero value is
// not usable; construct with New.
//
// All accessors snapshot under the recorder's lock, so exporting (Events,
// OpenSpans, WriteChromeJSON, Gantt, Summary) is safe while spans are
// still being recorded — the live /trace endpoint of internal/obsv
// downloads mid-run traces this way.
type Recorder struct {
	mu     sync.Mutex
	epoch  time.Time
	events []Event
	open   map[uint64]Event // in-flight spans (End unset)
	nextID uint64
}

// New creates a recorder whose epoch is now.
func New() *Recorder {
	return &Recorder{epoch: time.Now(), open: make(map[uint64]Event)}
}

// Record adds a span with explicit wall-clock endpoints.
func (r *Recorder) Record(machine int, kind, label string, start, end time.Time, bytes int64) {
	r.mu.Lock()
	r.events = append(r.events, Event{
		Machine: machine, Kind: kind, Label: label,
		Start: start.Sub(r.epoch), End: end.Sub(r.epoch), Bytes: bytes,
	})
	r.mu.Unlock()
}

// Span starts a span now and returns a closer that ends it; pass the
// bytes processed (0 if not applicable). Until the closer runs, the span
// is visible through OpenSpans, so mid-run exports include it.
func (r *Recorder) Span(machine int, kind, label string) func(bytes int64) {
	start := time.Now()
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	if r.open == nil {
		r.open = make(map[uint64]Event)
	}
	r.open[id] = Event{Machine: machine, Kind: kind, Label: label, Start: start.Sub(r.epoch)}
	r.mu.Unlock()
	return func(bytes int64) {
		r.mu.Lock()
		delete(r.open, id)
		r.mu.Unlock()
		r.Record(machine, kind, label, start, time.Now(), bytes)
	}
}

// OpenSpans returns the spans that have started but not yet finished,
// with End set to the elapsed time now, ordered by start. Together with
// Events it gives a complete mid-run picture of the execution.
func (r *Recorder) OpenSpans() []Event {
	r.mu.Lock()
	now := time.Since(r.epoch)
	out := make([]Event, 0, len(r.open))
	for _, e := range r.open {
		e.End = now
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Events returns a copy of the recorded spans, ordered by start time.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Total returns the span from the earliest start to the latest end.
func (r *Recorder) Total() time.Duration {
	var max time.Duration
	for _, e := range r.Events() {
		if e.End > max {
			max = e.End
		}
	}
	return max
}

// Gantt renders the "phase" events as one text timeline row per
// (machine, label), width columns wide. Machines are ordered by ID,
// phases by first occurrence.
func (r *Recorder) Gantt(w io.Writer, width int) {
	if width < 10 {
		width = 10
	}
	events := r.Events()
	// Scale to the rendered (phase) events only; other kinds may extend
	// further.
	var total time.Duration
	var labels []string
	seen := map[string]bool{}
	machines := map[int]bool{}
	for _, e := range events {
		if e.Kind != "phase" {
			continue
		}
		if e.End > total {
			total = e.End
		}
		if !seen[e.Label] {
			seen[e.Label] = true
			labels = append(labels, e.Label)
		}
		machines[e.Machine] = true
	}
	if total <= 0 || len(labels) == 0 {
		fmt.Fprintln(w, "(no events recorded)")
		return
	}
	var ids []int
	for m := range machines {
		ids = append(ids, m)
	}
	sort.Ints(ids)

	col := func(d time.Duration) int {
		c := int(float64(d) / float64(total) * float64(width))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	fmt.Fprintf(w, "total %v, one column ≈ %v\n", total.Round(time.Millisecond), (total / time.Duration(width)).Round(time.Microsecond))
	for _, m := range ids {
		for _, label := range labels {
			row := make([]rune, width)
			for i := range row {
				row[i] = '·'
			}
			// Unlabelled spans render as '?' (label[:1] would panic).
			mark := '?'
			if label != "" {
				mark = rune(strings.ToUpper(label[:1])[0])
			}
			found := false
			for _, e := range events {
				if e.Kind != "phase" || e.Machine != m || e.Label != label {
					continue
				}
				found = true
				lo, hi := col(e.Start), col(e.End)
				for c := lo; c <= hi; c++ {
					row[c] = mark
				}
			}
			if !found {
				continue
			}
			fmt.Fprintf(w, "m%-2d %-18s |%s|\n", m, label, string(row))
		}
	}
}

// Summary prints per-label aggregate durations (max across machines, the
// paper's stacked-bar convention) and byte counts.
func (r *Recorder) Summary(w io.Writer) {
	type agg struct {
		max   time.Duration
		bytes int64
	}
	byLabel := map[string]*agg{}
	var order []string
	for _, e := range r.Events() {
		if e.Kind != "phase" {
			continue
		}
		a, ok := byLabel[e.Label]
		if !ok {
			a = &agg{}
			byLabel[e.Label] = a
			order = append(order, e.Label)
		}
		if e.Duration() > a.max {
			a.max = e.Duration()
		}
		a.bytes += e.Bytes
	}
	for _, label := range order {
		a := byLabel[label]
		fmt.Fprintf(w, "%-20s %10v", label, a.max.Round(time.Microsecond))
		if a.bytes > 0 {
			fmt.Fprintf(w, "  %8.1f MB", float64(a.bytes)/(1<<20))
		}
		fmt.Fprintln(w)
	}
}
