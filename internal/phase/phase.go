// Package phase defines the per-phase timing breakdown shared by the
// single-machine baselines, the distributed join, the analytical model and
// the discrete-event simulator: the four phases of Figure 5b/7 of the
// paper (histogram computation, network partitioning, local partitioning,
// build-probe).
package phase

import (
	"fmt"
	"time"
)

// Times records the duration of each join phase. For single-machine
// algorithms NetworkPartition holds the first (non-network) partitioning
// pass so breakdowns remain comparable across engines.
type Times struct {
	Histogram        time.Duration
	NetworkPartition time.Duration
	LocalPartition   time.Duration
	BuildProbe       time.Duration
}

// Total returns the sum of all phases.
func (t Times) Total() time.Duration {
	return t.Histogram + t.NetworkPartition + t.LocalPartition + t.BuildProbe
}

// Seconds returns the per-phase durations in seconds, in paper order.
func (t Times) Seconds() [4]float64 {
	return [4]float64{
		t.Histogram.Seconds(),
		t.NetworkPartition.Seconds(),
		t.LocalPartition.Seconds(),
		t.BuildProbe.Seconds(),
	}
}

// Add returns the phase-wise sum of two breakdowns.
func (t Times) Add(o Times) Times {
	return Times{
		Histogram:        t.Histogram + o.Histogram,
		NetworkPartition: t.NetworkPartition + o.NetworkPartition,
		LocalPartition:   t.LocalPartition + o.LocalPartition,
		BuildProbe:       t.BuildProbe + o.BuildProbe,
	}
}

// String formats the breakdown in seconds.
func (t Times) String() string {
	return fmt.Sprintf("hist=%.3fs net=%.3fs local=%.3fs bp=%.3fs total=%.3fs",
		t.Histogram.Seconds(), t.NetworkPartition.Seconds(),
		t.LocalPartition.Seconds(), t.BuildProbe.Seconds(), t.Total().Seconds())
}

// FromSeconds builds a Times from per-phase seconds (used by the model and
// simulator, whose clocks are virtual).
func FromSeconds(hist, net, local, bp float64) Times {
	return Times{
		Histogram:        time.Duration(hist * float64(time.Second)),
		NetworkPartition: time.Duration(net * float64(time.Second)),
		LocalPartition:   time.Duration(local * float64(time.Second)),
		BuildProbe:       time.Duration(bp * float64(time.Second)),
	}
}
