package phase

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTotal(t *testing.T) {
	p := Times{Histogram: time.Second, NetworkPartition: 2 * time.Second,
		LocalPartition: 3 * time.Second, BuildProbe: 4 * time.Second}
	if p.Total() != 10*time.Second {
		t.Fatalf("Total = %v", p.Total())
	}
}

func TestSeconds(t *testing.T) {
	p := FromSeconds(1, 2, 3, 4)
	s := p.Seconds()
	want := [4]float64{1, 2, 3, 4}
	if s != want {
		t.Fatalf("Seconds = %v", s)
	}
	if p.Total() != 10*time.Second {
		t.Fatalf("Total = %v", p.Total())
	}
}

func TestAdd(t *testing.T) {
	a := FromSeconds(1, 2, 3, 4)
	b := FromSeconds(4, 3, 2, 1)
	c := a.Add(b)
	if c.Seconds() != [4]float64{5, 5, 5, 5} {
		t.Fatalf("Add = %v", c.Seconds())
	}
}

func TestString(t *testing.T) {
	if FromSeconds(1, 2, 3, 4).String() == "" {
		t.Fatal("empty string")
	}
}

// Property: Add is commutative and Total distributes over Add.
func TestPropertyAddAlgebra(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 uint16) bool {
		a := FromSeconds(float64(a1), float64(a2), float64(a3), float64(a4))
		b := FromSeconds(float64(b1), float64(b2), float64(b3), float64(b4))
		if a.Add(b) != b.Add(a) {
			return false
		}
		return a.Add(b).Total() == a.Total()+b.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
