// Package metrics is the dependency-free observability substrate of the
// repository: a concurrency-safe registry of named counters, gauges and
// log-scale histograms with label support (machine, thread, phase, …).
//
// Every layer of the system records into one registry — the RDMA device
// emulation (bytes, work requests, RNR back-pressure), the fabric (link
// queueing delay), and the distributed join (buffer-pool stalls, bytes
// shipped per partition, phase durations) — so one snapshot answers the
// questions the paper's evaluation asks: where does time go, and is a run
// network-bound or CPU-bound.
//
// All metric handles are nil-safe: methods on a nil *Registry, *Scope,
// *Counter, *Gauge or *Histogram are no-ops. Instrumented code therefore
// never branches on "is metrics enabled".
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value dimension of a metric.
type Label struct {
	Key, Value string
}

// L constructs a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram buckets: power-of-two ranges. Bucket i covers
// [2^(i+histMinExp), 2^(i+1+histMinExp)); bucket 0 additionally collects
// everything below its lower bound. With histMinExp = -34 the range spans
// ~58 picoseconds to ~34 years when observations are seconds, so any
// duration the system can produce lands in a real bucket.
const (
	histBuckets = 64
	histMinExp  = -34
)

// Histogram accumulates float64 observations into log-scale buckets and
// reports count, sum, min, max and interpolated quantiles (p50/p95/p99).
type Histogram struct {
	mu       sync.Mutex
	counts   [histBuckets]uint64
	count    uint64
	sum      float64
	min, max float64
}

func bucketOf(v float64) int {
	if v <= 0 {
		return 0
	}
	i := int(math.Floor(math.Log2(v))) - histMinExp
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.counts[bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1), linearly interpolated
// within the log-scale bucket that contains the rank and clamped to the
// observed [min, max]. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo := math.Pow(2, float64(i+histMinExp))
			hi := lo * 2
			if i == 0 {
				lo = 0
			}
			v := lo + (hi-lo)*(rank-cum)/float64(c)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// Kind distinguishes metric types in snapshots.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// entry couples a registered metric with its identity.
type entry struct {
	name   string
	labels []Label
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. The zero value is not usable; construct
// with NewRegistry. A nil *Registry is a valid no-op sink.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	order   []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// metricID builds the registry key: name plus sorted labels.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup returns the entry for (name, labels), creating it with make when
// absent. Re-registering the same identity returns the same metric;
// re-registering it as a different kind panics (programmer error).
func (r *Registry) lookup(name string, labels []Label, kind Kind, make func(*entry)) *entry {
	labels = sortLabels(labels)
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		e = &entry{name: name, labels: labels, kind: kind}
		make(e)
		r.entries[id] = e
		r.order = append(r.order, id)
	}
	if e.kind != kind {
		panic(fmt.Sprintf("metrics: %s already registered as %s, requested %s", id, e.kind, kind))
	}
	return e
}

// Counter returns the counter with the given name and labels, registering
// it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, KindCounter, func(e *entry) { e.c = &Counter{} }).c
}

// Gauge returns the gauge with the given name and labels, registering it
// on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, KindGauge, func(e *entry) { e.g = &Gauge{} }).g
}

// Histogram returns the histogram with the given name and labels,
// registering it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, KindHistogram, func(e *entry) { e.h = &Histogram{} }).h
}

// Scope returns a view of the registry with the given labels pre-applied
// to every metric created through it.
func (r *Registry) Scope(labels ...Label) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{r: r, labels: labels}
}

// Sample is one metric's state in a snapshot. Value carries the counter
// or gauge reading; Count/Sum/Min/Max and the quantile summaries are
// histogram fields. Buckets holds the occupied log-scale buckets keyed by
// their upper bound (`%g` of 2^(i+1+histMinExp)) — empty buckets are
// omitted, so a typical latency histogram serializes to a handful of
// entries rather than 64.
type Sample struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Type    Kind              `json:"type"`
	Value   float64           `json:"value"`
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Min     float64           `json:"min,omitempty"`
	Max     float64           `json:"max,omitempty"`
	P50     float64           `json:"p50,omitempty"`
	P95     float64           `json:"p95,omitempty"`
	P99     float64           `json:"p99,omitempty"`
	P999    float64           `json:"p999,omitempty"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// bucketUpperBound renders bucket i's upper bound as the Buckets map key.
func bucketUpperBound(i int) string {
	return strconv.FormatFloat(math.Pow(2, float64(i+1+histMinExp)), 'g', -1, 64)
}

// Snapshot returns the state of every registered metric, sorted by name
// then labels.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ids := make([]string, len(r.order))
	copy(ids, r.order)
	entries := make([]*entry, len(ids))
	for i, id := range ids {
		entries[i] = r.entries[id]
	}
	r.mu.Unlock()

	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Type: e.kind}
		if len(e.labels) > 0 {
			s.Labels = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				s.Labels[l.Key] = l.Value
			}
		}
		switch e.kind {
		case KindCounter:
			s.Value = float64(e.c.Value())
		case KindGauge:
			s.Value = e.g.Value()
		case KindHistogram:
			e.h.mu.Lock()
			s.Count = e.h.count
			s.Sum = e.h.sum
			s.Min = e.h.min
			s.Max = e.h.max
			s.P50 = e.h.quantileLocked(0.50)
			s.P95 = e.h.quantileLocked(0.95)
			s.P99 = e.h.quantileLocked(0.99)
			s.P999 = e.h.quantileLocked(0.999)
			for i, c := range e.h.counts {
				if c == 0 {
					continue
				}
				if s.Buckets == nil {
					s.Buckets = make(map[string]uint64)
				}
				s.Buckets[bucketUpperBound(i)] = c
			}
			e.h.mu.Unlock()
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelString(out[i].Labels) < labelString(out[j].Labels)
	})
	return out
}

func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText writes a human-readable exposition of every metric, one line
// each: `name{label="v",…} value` for counters and gauges, and
// `name{…} count=… sum=… min=… p50=… p95=… p99=… p999=… max=…` for
// histograms. The format is machine-recoverable: ParseText inverts it.
func (r *Registry) WriteText(w io.Writer) {
	for _, s := range r.Snapshot() {
		switch s.Type {
		case KindHistogram:
			fmt.Fprintf(w, "%s%s count=%d sum=%g min=%g p50=%g p95=%g p99=%g p999=%g max=%g\n",
				s.Name, labelString(s.Labels), s.Count, s.Sum, s.Min, s.P50, s.P95, s.P99, s.P999, s.Max)
		default:
			fmt.Fprintf(w, "%s%s %g\n", s.Name, labelString(s.Labels), s.Value)
		}
	}
}

// WriteJSON writes the snapshot as a JSON array of samples.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	samples := r.Snapshot()
	if samples == nil {
		samples = []Sample{}
	}
	return enc.Encode(samples)
}

// Scope is a registry view with pre-applied labels, used to hand a layer
// (one machine, one device, one thread) its own labelled namespace. A nil
// *Scope is a valid no-op sink.
type Scope struct {
	r      *Registry
	labels []Label
}

// Registry returns the underlying registry (nil for a nil scope).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.r
}

// With returns a child scope with additional labels.
func (s *Scope) With(labels ...Label) *Scope {
	if s == nil {
		return nil
	}
	merged := make([]Label, 0, len(s.labels)+len(labels))
	merged = append(merged, s.labels...)
	merged = append(merged, labels...)
	return &Scope{r: s.r, labels: merged}
}

func (s *Scope) merge(extra []Label) []Label {
	if len(extra) == 0 {
		return s.labels
	}
	merged := make([]Label, 0, len(s.labels)+len(extra))
	merged = append(merged, s.labels...)
	merged = append(merged, extra...)
	return merged
}

// Counter returns a counter carrying the scope's labels plus extra.
func (s *Scope) Counter(name string, extra ...Label) *Counter {
	if s == nil {
		return nil
	}
	return s.r.Counter(name, s.merge(extra)...)
}

// Gauge returns a gauge carrying the scope's labels plus extra.
func (s *Scope) Gauge(name string, extra ...Label) *Gauge {
	if s == nil {
		return nil
	}
	return s.r.Gauge(name, s.merge(extra)...)
}

// Histogram returns a histogram carrying the scope's labels plus extra.
func (s *Scope) Histogram(name string, extra ...Label) *Histogram {
	if s == nil {
		return nil
	}
	return s.r.Histogram(name, s.merge(extra)...)
}
