package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseText inverts WriteText: it parses a text exposition back into
// samples, one per line. Scalar lines are typed by the repository's
// enforced naming convention (the metricnames analyzer guarantees every
// counter ends in _total and no gauge does); histogram lines are
// recognised by their count=/sum= field structure. Bucket contents are
// not present in the text format, so round-tripped histograms carry
// their count/sum/min/max and quantile summaries only.
//
// %g renders the shortest float64 representation that parses back to
// the identical value, so WriteText → ParseText loses nothing from the
// fields it carries.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		s, err := parseTextLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return out, nil
}

func parseTextLine(line string) (Sample, error) {
	var s Sample
	// The name runs to the label block or the first space.
	end := strings.IndexAny(line, "{ ")
	if end < 0 {
		return s, fmt.Errorf("no value on %q", line)
	}
	s.Name = line[:end]
	rest := line[end:]
	if strings.HasPrefix(rest, "{") {
		labels, remainder, err := parseLabels(rest[1:])
		if err != nil {
			return s, err
		}
		s.Labels, rest = labels, remainder
	}
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("no value on %q", line)
	}
	if !strings.Contains(fields[0], "=") {
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return s, fmt.Errorf("bad value %q: %w", fields[0], err)
		}
		s.Value = v
		s.Type = KindGauge
		if strings.HasSuffix(s.Name, "_total") {
			s.Type = KindCounter
		}
		return s, nil
	}
	s.Type = KindHistogram
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return s, fmt.Errorf("bad histogram field %q", f)
		}
		fv, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return s, fmt.Errorf("bad histogram field %q: %w", f, err)
		}
		switch k {
		case "count":
			s.Count = uint64(fv)
		case "sum":
			s.Sum = fv
		case "min":
			s.Min = fv
		case "max":
			s.Max = fv
		case "p50":
			s.P50 = fv
		case "p95":
			s.P95 = fv
		case "p99":
			s.P99 = fv
		case "p999":
			s.P999 = fv
		default:
			return s, fmt.Errorf("unknown histogram field %q", k)
		}
	}
	return s, nil
}

// parseLabels parses `k="v",…}` (the opening brace already consumed)
// and returns the labels plus the remainder after the closing brace.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label block missing '=' near %q", s)
		}
		key := s[:eq]
		q, err := strconv.QuotedPrefix(s[eq+1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %s: bad quoted value near %q", key, s[eq+1:])
		}
		val, err := strconv.Unquote(q)
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", key, err)
		}
		labels[key] = val
		s = s[eq+1+len(q):]
		switch {
		case strings.HasPrefix(s, ","):
			s = s[1:]
		case strings.HasPrefix(s, "}"):
			return labels, s[1:], nil
		default:
			return nil, "", fmt.Errorf("label block malformed near %q", s)
		}
	}
}
