package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// TestTextRoundTrip snapshots a populated registry, writes the text
// exposition, parses it back, and requires every carried field to
// survive exactly — %g emits the shortest representation that reparses
// to the identical float64.
func TestTextRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", L("machine", "3")).Add(42)
	reg.Counter("plain_total").Add(7)
	reg.Gauge("phase_seconds", L("machine", "0"), L("phase", "network_partition")).Set(1.2345678901234)
	reg.Gauge("temperature").Set(-3.25)
	h := reg.Histogram("latency_seconds", L("machine", "1"))
	for _, v := range []float64{0.001, 0.002, 0.004, 0.1, 2.5, 0.0005, 17} {
		h.Observe(v)
	}
	reg.Histogram("empty_seconds") // zero observations must round-trip too

	var buf bytes.Buffer
	reg.WriteText(&buf)
	got, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	want := reg.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("parsed %d samples, snapshot has %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Name != w.Name || g.Type != w.Type {
			t.Errorf("sample %d: got %s/%s, want %s/%s", i, g.Name, g.Type, w.Name, w.Type)
		}
		if len(g.Labels) != len(w.Labels) {
			t.Errorf("%s: labels %v, want %v", w.Name, g.Labels, w.Labels)
		}
		for k, v := range w.Labels {
			if g.Labels[k] != v {
				t.Errorf("%s: label %s=%q, want %q", w.Name, k, g.Labels[k], v)
			}
		}
		if g.Value != w.Value || g.Count != w.Count || g.Sum != w.Sum ||
			g.Min != w.Min || g.Max != w.Max {
			t.Errorf("%s: scalar fields %+v, want %+v", w.Name, g, w)
		}
		if g.P50 != w.P50 || g.P95 != w.P95 || g.P99 != w.P99 || g.P999 != w.P999 {
			t.Errorf("%s: quantiles (%g %g %g %g), want (%g %g %g %g)",
				w.Name, g.P50, g.P95, g.P99, g.P999, w.P50, w.P95, w.P99, w.P999)
		}
	}
}

func TestTextExpositionCarriesQuantilesAndMin(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("queue_seconds")
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	var buf bytes.Buffer
	reg.WriteText(&buf)
	line := strings.TrimSpace(buf.String())
	for _, f := range []string{"count=1000", "min=0.001", "p50=", "p95=", "p99=", "p999=", "max=1"} {
		if !strings.Contains(line, f) {
			t.Errorf("exposition %q missing %s", line, f)
		}
	}
}

func TestParseTextLabelEdgeCases(t *testing.T) {
	in := `weird{a="with \"quotes\"",b="comma,inside",c="brace}inside"} 5` + "\n"
	got, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d samples", len(got))
	}
	want := map[string]string{"a": `with "quotes"`, "b": "comma,inside", "c": "brace}inside"}
	for k, v := range want {
		if got[0].Labels[k] != v {
			t.Errorf("label %s = %q, want %q", k, got[0].Labels[k], v)
		}
	}
	if got[0].Value != 5 || got[0].Type != KindGauge {
		t.Errorf("sample %+v, want gauge 5", got[0])
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"no_value",
		`bad_label{a=5} 1`,
		`unterminated{a="x" 1`,
		"hist count=1 bogus=2",
		"hist count=abc",
	} {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("ParseText accepted %q", in)
		}
	}
}
