package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Same identity returns the same metric.
	if r.Counter("requests") != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different labels are a different series.
	c2 := r.Counter("requests", L("machine", "1"))
	if c2 == c {
		t.Fatal("labelled counter aliases the unlabelled one")
	}
	c2.Inc()
	if c.Value() != 42 || c2.Value() != 1 {
		t.Fatalf("series not independent: %d / %d", c.Value(), c2.Value())
	}
}

func TestLabelOrderIrrelevant(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", L("a", "1"), L("b", "2"))
	b := r.Counter("x", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order created distinct series")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("temp")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("gauge = %g, want 1.0", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency")
	// 1000 observations spread over [1ms, 1s].
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-3)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 500.5; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	if got := h.Max(); got != 1.0 {
		t.Fatalf("max = %g, want 1.0", got)
	}
	// Log-scale buckets are coarse; accept a factor-2 band around the
	// exact quantile.
	for _, tc := range []struct{ q, want float64 }{{0.50, 0.5}, {0.95, 0.95}, {0.99, 0.99}} {
		got := h.Quantile(tc.q)
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("q%.0f = %g, want within [%g, %g]", tc.q*100, got, tc.want/2, tc.want*2)
		}
	}
	if h.Quantile(0) != 1e-3 || h.Quantile(1) != 1.0 {
		t.Fatalf("q0/q1 = %g/%g, want min/max", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramEmptyAndNonPositive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(0)
	h.Observe(-1)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(0.99) > 0 {
		t.Fatalf("q99 of non-positive observations = %g", h.Quantile(0.99))
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d")
	h.ObserveDuration(250 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("sum = %g, want 0.25", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	h := r.Histogram("z")
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should read 0")
	}
	s := r.Scope(L("machine", "0"))
	s.Counter("c").Inc()
	s.With(L("thread", "1")).Histogram("h").Observe(1)
	if s.Registry() != nil {
		t.Fatal("nil scope should have nil registry")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
}

func TestScopeLabels(t *testing.T) {
	r := NewRegistry()
	s := r.Scope(L("machine", "2"))
	s.With(L("thread", "3")).Counter("ops").Add(7)
	direct := r.Counter("ops", L("machine", "2"), L("thread", "3"))
	if direct.Value() != 7 {
		t.Fatalf("scope labels not applied: %d", direct.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("registering same name as a different kind should panic")
		}
	}()
	r.Gauge("m")
}

func TestSnapshotAndExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_counter", L("machine", "0")).Add(3)
	r.Gauge("a_gauge").Set(2.5)
	r.Histogram("c_hist").Observe(0.5)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d samples, want 3", len(snap))
	}
	// Sorted by name.
	if snap[0].Name != "a_gauge" || snap[1].Name != "b_counter" || snap[2].Name != "c_hist" {
		t.Fatalf("snapshot order: %s, %s, %s", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if snap[1].Labels["machine"] != "0" || snap[1].Value != 3 {
		t.Fatalf("counter sample: %+v", snap[1])
	}
	if snap[2].Count != 1 || snap[2].Max != 0.5 {
		t.Fatalf("histogram sample: %+v", snap[2])
	}

	var text bytes.Buffer
	r.WriteText(&text)
	for _, want := range []string{
		`a_gauge 2.5`,
		`b_counter{machine="0"} 3`,
		`c_hist count=1`,
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text exposition missing %q:\n%s", want, text.String())
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rdma_bytes_sent_total", L("device", "0")).Add(1 << 20)
	r.Histogram("netpass_buffer_wait_seconds", L("machine", "0")).Observe(0.001)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	if err := json.Unmarshal(buf.Bytes(), &samples); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(samples) != 2 {
		t.Fatalf("decoded %d samples, want 2", len(samples))
	}
	if samples[1].Name != "rdma_bytes_sent_total" || samples[1].Value != 1<<20 {
		t.Fatalf("counter sample: %+v", samples[1])
	}
	if samples[0].Type != KindHistogram || samples[0].Count != 1 {
		t.Fatalf("histogram sample: %+v", samples[0])
	}
}

// TestConcurrentRegistry hammers registration and recording from many
// goroutines; run under -race it is the registry's thread-safety proof
// (tier-1 runs `go test -race ./internal/metrics`).
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			scope := r.Scope(L("thread", fmt.Sprint(g%4)))
			for i := 0; i < iters; i++ {
				r.Counter("shared").Inc()
				scope.Counter("per_thread").Inc()
				r.Gauge("gauge").Add(1)
				scope.Histogram("hist").Observe(float64(i) * 1e-6)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*iters {
		t.Fatalf("shared counter = %d, want %d", got, goroutines*iters)
	}
	if got := r.Gauge("gauge").Value(); got != goroutines*iters {
		t.Fatalf("gauge = %g, want %d", got, goroutines*iters)
	}
	var histTotal uint64
	for _, s := range r.Snapshot() {
		if s.Name == "hist" {
			histTotal += s.Count
		}
	}
	if histTotal != goroutines*iters {
		t.Fatalf("hist observations = %d, want %d", histTotal, goroutines*iters)
	}
}
