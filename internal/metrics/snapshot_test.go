package metrics

// Snapshot/delta API test suite: the obsv Sampler depends on (1) JSON
// round-tripping of snapshots, (2) label ordering stability (the same
// series must yield the same SampleKey no matter the registration label
// order), and (3) snapshot consistency under concurrent Add/Set.

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("bytes", L("machine", "0"), L("partition", "7")).Add(42)
	r.Gauge("phase_seconds", L("phase", "histogram")).Set(1.5)
	h := r.Histogram("wait_seconds")
	h.Observe(0.25)
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []Sample
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	want := r.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("round-trip lost series: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if SampleKey(got[i]) != SampleKey(want[i]) {
			t.Errorf("series %d: key %q != %q", i, SampleKey(got[i]), SampleKey(want[i]))
		}
		if got[i].Value != want[i].Value || got[i].Count != want[i].Count || got[i].Sum != want[i].Sum {
			t.Errorf("series %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestSnapshotLabelOrderingStable(t *testing.T) {
	// The same (name, labels) series registered with labels in different
	// orders must resolve to one series with one canonical key.
	r := NewRegistry()
	r.Counter("x", L("a", "1"), L("b", "2")).Add(1)
	r.Counter("x", L("b", "2"), L("a", "1")).Add(1)
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("label permutations created %d series, want 1", len(snap))
	}
	if snap[0].Value != 2 {
		t.Fatalf("value = %g, want 2", snap[0].Value)
	}
	if key := SampleKey(snap[0]); key != `x{a="1",b="2"}` {
		t.Fatalf("canonical key = %q", key)
	}
	// Snapshot order itself is deterministic across repeated calls.
	r.Gauge("a_first").Set(3)
	r.Counter("z_last").Inc()
	s1, s2 := r.Snapshot(), r.Snapshot()
	for i := range s1 {
		if SampleKey(s1[i]) != SampleKey(s2[i]) {
			t.Fatalf("snapshot order unstable at %d: %q vs %q", i, SampleKey(s1[i]), SampleKey(s2[i]))
		}
	}
}

func TestDeltaCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flushes")
	g := r.Gauge("level")
	h := r.Histogram("lat")
	c.Add(10)
	g.Set(3)
	h.Observe(1)
	prev := r.Snapshot()

	c.Add(5)
	g.Set(7)
	h.Observe(2)
	h.Observe(4)
	cur := r.Snapshot()

	d := Delta(prev, cur)
	byName := map[string]Sample{}
	for _, s := range d {
		byName[s.Name] = s
	}
	if v := byName["flushes"].Value; v != 5 {
		t.Errorf("counter delta = %g, want 5", v)
	}
	if v := byName["level"].Value; v != 7 {
		t.Errorf("gauge delta reports level %g, want 7", v)
	}
	if n := byName["lat"].Count; n != 2 {
		t.Errorf("histogram count delta = %d, want 2", n)
	}
	if s := byName["lat"].Sum; s != 6 {
		t.Errorf("histogram sum delta = %g, want 6", s)
	}
}

func TestDeltaNewAndMissingSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("old").Add(1)
	prev := r.Snapshot()
	r.Counter("old").Add(2)
	r.Counter("new").Add(9)
	cur := r.Snapshot()

	d := Delta(prev, cur)
	if len(d) != 2 {
		t.Fatalf("delta has %d series, want 2", len(d))
	}
	byName := map[string]float64{}
	for _, s := range d {
		byName[s.Name] = s.Value
	}
	if byName["old"] != 2 {
		t.Errorf("old delta = %g, want 2", byName["old"])
	}
	if byName["new"] != 9 {
		t.Errorf("new series delta = %g, want 9 (implicit zero base)", byName["new"])
	}
	// A series only in prev (foreign registry) is dropped, and a counter
	// that went backwards clamps at zero rather than going negative.
	other := NewRegistry()
	other.Counter("old").Add(100)
	d = Delta(other.Snapshot(), cur)
	for _, s := range d {
		if s.Name == "old" && s.Value != 0 {
			t.Errorf("reset counter delta = %g, want clamp to 0", s.Value)
		}
	}
}

func TestSnapshotDeltaConcurrent(t *testing.T) {
	// Concurrent Add/Set against Snapshot/Delta: run under -race (the
	// Makefile race target covers this package). Deltas of a monotonic
	// counter must never be negative regardless of interleaving.
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c", L("w", string(rune('a'+w))))
			g := r.Gauge("g")
			h := r.Histogram("h")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%10) + 0.1)
			}
		}(w)
	}
	prev := r.Snapshot()
	for i := 0; i < 50; i++ {
		cur := r.Snapshot()
		for _, s := range Delta(prev, cur) {
			if s.Type == KindCounter && s.Value < 0 {
				t.Errorf("negative counter delta %g for %s", s.Value, SampleKey(s))
			}
			if s.Type == KindHistogram && s.Sum < 0 {
				t.Errorf("negative histogram sum delta for %s", SampleKey(s))
			}
		}
		prev = cur
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotBucketsAndP999(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 1 and 4 are exact powers of two: bucket lower bounds, so each pair
	// of observations lands in a distinct, known bucket [v, 2v).
	h.Observe(1)
	h.Observe(1)
	h.Observe(4)
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d samples, want 1", len(snap))
	}
	s := snap[0]
	if s.P999 < s.P99 {
		t.Errorf("p999 %g < p99 %g", s.P999, s.P99)
	}
	if s.P999 > s.Max {
		t.Errorf("p999 %g > max %g", s.P999, s.Max)
	}
	if got := s.Buckets["2"]; got != 2 {
		t.Errorf("bucket ≤2 = %d, want 2 (buckets: %v)", got, s.Buckets)
	}
	if got := s.Buckets["8"]; got != 1 {
		t.Errorf("bucket ≤8 = %d, want 1 (buckets: %v)", got, s.Buckets)
	}
	var total uint64
	for ub, c := range s.Buckets {
		if c == 0 {
			t.Errorf("empty bucket %q serialized", ub)
		}
		total += c
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, count is %d", total, s.Count)
	}
}

func TestDeltaBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(1)
	h.Observe(4)
	prev := r.Snapshot()

	h.Observe(1)
	cur := r.Snapshot()

	d := Delta(prev, cur)
	if len(d) != 1 {
		t.Fatalf("delta has %d samples, want 1", len(d))
	}
	s := d[0]
	if got := s.Buckets["2"]; got != 1 {
		t.Errorf("interval bucket ≤2 = %d, want 1 (buckets: %v)", got, s.Buckets)
	}
	if _, ok := s.Buckets["8"]; ok {
		t.Errorf("idle bucket ≤8 kept in interval delta: %v", s.Buckets)
	}
	if s.Count != 1 {
		t.Errorf("interval count = %d, want 1", s.Count)
	}
	// The cumulative snapshots themselves must be unchanged by Delta.
	if got := cur[0].Buckets["8"]; got != 1 {
		t.Errorf("cumulative snapshot mutated: %v", cur[0].Buckets)
	}
}
