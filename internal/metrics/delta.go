package metrics

// SampleKey identifies one series within a snapshot: the metric name plus
// its canonical label rendering. Two snapshots of the same registry use
// identical keys for the same series, which is what makes delta
// computation between snapshots well defined.
func SampleKey(s Sample) string {
	return s.Name + labelString(s.Labels)
}

// Delta returns the per-series change from prev to cur, matching series by
// SampleKey:
//
//   - counters: Value becomes cur − prev (clamped at 0 if the counter was
//     reset, which cannot happen with this package's monotonic counters
//     but keeps the function total);
//   - gauges: Value is cur's reading (a gauge is a level, not a flow —
//     its delta would discard the information callers want);
//   - histograms: Count, Sum and the per-bucket counts become the deltas
//     (buckets that saw no observations in the interval are dropped);
//     Min/Max/quantiles keep cur's cumulative readings — interval
//     quantiles, when needed, can be interpolated from the delta'd
//     Buckets, which retain the full log-scale distribution.
//
// Series present only in cur are included as-is (their delta from an
// implicit zero). Series present only in prev are dropped — the registry
// never unregisters, so this occurs only when diffing snapshots of
// different registries.
//
// The result preserves cur's ordering, so repeated deltas of a stable
// registry are positionally comparable — the property the obsv Sampler's
// JSONL time series relies on.
func Delta(prev, cur []Sample) []Sample {
	base := make(map[string]Sample, len(prev))
	for _, s := range prev {
		base[SampleKey(s)] = s
	}
	out := make([]Sample, 0, len(cur))
	for _, s := range cur {
		p, ok := base[SampleKey(s)]
		if ok {
			switch s.Type {
			case KindCounter:
				s.Value -= p.Value
				if s.Value < 0 {
					s.Value = 0
				}
			case KindHistogram:
				if s.Count >= p.Count {
					s.Count -= p.Count
				} else {
					s.Count = 0
				}
				s.Sum -= p.Sum
				if s.Sum < 0 {
					s.Sum = 0
				}
				if len(s.Buckets) > 0 && len(p.Buckets) > 0 {
					db := make(map[string]uint64, len(s.Buckets))
					for ub, c := range s.Buckets {
						if prev := p.Buckets[ub]; c > prev {
							db[ub] = c - prev
						}
					}
					if len(db) == 0 {
						db = nil
					}
					s.Buckets = db
				}
			}
		}
		out = append(out, s)
	}
	return out
}
