package datagen

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"rackjoin/internal/relation"
)

func TestGenerateUniformDistinctKeys(t *testing.T) {
	w := Generate(Config{InnerTuples: 1000, OuterTuples: 4000, Seed: 1})
	seen := make(map[uint64]bool, 1000)
	for i := 0; i < w.Inner.Len(); i++ {
		k := w.Inner.Key(i)
		if k < 1 || k > 1000 {
			t.Fatalf("inner key %d out of range", k)
		}
		if seen[k] {
			t.Fatalf("duplicate inner key %d", k)
		}
		seen[k] = true
		if w.Inner.RID(i) != k-1 {
			t.Fatalf("inner rid %d != key-1 for key %d", w.Inner.RID(i), k)
		}
	}
	if len(seen) != 1000 {
		t.Fatalf("got %d distinct keys, want 1000", len(seen))
	}
}

func TestGenerateEveryInnerKeyMatched(t *testing.T) {
	w := Generate(Config{InnerTuples: 100, OuterTuples: 250, Seed: 2})
	hit := make(map[uint64]int)
	for i := 0; i < w.Outer.Len(); i++ {
		k := w.Outer.Key(i)
		if k < 1 || k > 100 {
			t.Fatalf("outer key %d out of range", k)
		}
		hit[k]++
		if w.Outer.RID(i) != uint64(i) {
			t.Fatalf("outer rid not range-partitioned at %d", i)
		}
	}
	for k := uint64(1); k <= 100; k++ {
		if hit[k] == 0 {
			t.Fatalf("inner key %d has no outer match", k)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{InnerTuples: 64, OuterTuples: 128, Seed: 7})
	b := Generate(Config{InnerTuples: 64, OuterTuples: 128, Seed: 7})
	for i := 0; i < 64; i++ {
		if a.Inner.Key(i) != b.Inner.Key(i) {
			t.Fatal("inner generation not deterministic")
		}
	}
	for i := 0; i < 128; i++ {
		if a.Outer.Key(i) != b.Outer.Key(i) {
			t.Fatal("outer generation not deterministic")
		}
	}
	c := Generate(Config{InnerTuples: 64, OuterTuples: 128, Seed: 8})
	diff := false
	for i := 0; i < 128; i++ {
		if a.Outer.Key(i) != c.Outer.Key(i) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical outer relations")
	}
}

func TestGenerateSkewed(t *testing.T) {
	cfg := Config{InnerTuples: 1 << 12, OuterTuples: 1 << 16, Skew: SkewHigh, Seed: 3}
	w := Generate(cfg)
	counts := make(map[uint64]int)
	for i := 0; i < w.Outer.Len(); i++ {
		k := w.Outer.Key(i)
		if k < 1 || k > uint64(cfg.InnerTuples) {
			t.Fatalf("skewed key %d out of range", k)
		}
		counts[k]++
	}
	// The hottest key of a Zipf(1.2) distribution must dominate: more
	// than 5% of all tuples, versus 1/4096 uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max) < 0.05*float64(cfg.OuterTuples) {
		t.Fatalf("hottest key only %d/%d tuples; skew not generated", max, cfg.OuterTuples)
	}
}

func TestGenerateWideTuples(t *testing.T) {
	for _, width := range []int{relation.Width16, relation.Width32, relation.Width64} {
		w := Generate(Config{InnerTuples: 10, OuterTuples: 20, TupleWidth: width, Seed: 4})
		if w.Inner.Width() != width || w.Outer.Width() != width {
			t.Fatalf("width %d not applied", width)
		}
	}
}

func TestExpectedJoin(t *testing.T) {
	w := Generate(Config{InnerTuples: 50, OuterTuples: 200, Seed: 5})
	e := ExpectedJoin(w.Outer)
	if e.Matches != 200 {
		t.Fatalf("matches = %d, want 200", e.Matches)
	}
	// Brute-force the join and compare checksums.
	var brute Expected
	for i := 0; i < w.Outer.Len(); i++ {
		for j := 0; j < w.Inner.Len(); j++ {
			if w.Inner.Key(j) == w.Outer.Key(i) {
				brute.Matches++
				brute.Checksum += w.Outer.Key(i) + w.Inner.RID(j) + w.Outer.RID(i)
			}
		}
	}
	if brute != e {
		t.Fatalf("brute force %+v != expected %+v", brute, e)
	}
}

func TestGenerateDistributed(t *testing.T) {
	r, s := GenerateDistributed(Config{InnerTuples: 100, OuterTuples: 400, Seed: 6}, 4)
	if len(r.Chunks) != 4 || len(s.Chunks) != 4 {
		t.Fatal("wrong chunk count")
	}
	if r.Len() != 100 || s.Len() != 400 {
		t.Fatalf("lost tuples: %d, %d", r.Len(), s.Len())
	}
	seen := make(map[uint64]bool)
	for _, c := range r.Chunks {
		for i := 0; i < c.Len(); i++ {
			if seen[c.Key(i)] {
				t.Fatal("duplicate key across chunks")
			}
			seen[c.Key(i)] = true
		}
	}
}

func TestPartitionFractionsUniform(t *testing.T) {
	frac := PartitionFractions(1<<16, 0, 4)
	if len(frac) != 16 {
		t.Fatalf("len = %d", len(frac))
	}
	var sum float64
	for _, f := range frac {
		sum += f
		if math.Abs(f-1.0/16) > 1e-9 {
			t.Fatalf("uniform fraction %v deviates", f)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestPartitionFractionsSkewed(t *testing.T) {
	frac := PartitionFractions(1<<16, SkewHigh, 4)
	var sum, max float64
	for _, f := range frac {
		sum += f
		if f > max {
			max = f
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
	// Key 1 (the hottest) lands in partition 1; that partition must be
	// far above the uniform share.
	if max < 2.0/16 {
		t.Fatalf("max fraction %v shows no skew", max)
	}
	if frac[1] != max {
		t.Fatalf("hottest partition should contain key 1; got max at different partition")
	}
}

func TestPartitionFractionsMatchGeneratedData(t *testing.T) {
	// The analytic histogram must agree with an actually generated
	// skewed relation within sampling error.
	const keys, tuples, bits = 1 << 10, 1 << 18, 3
	cfg := Config{InnerTuples: keys, OuterTuples: tuples, Skew: SkewLow, Seed: 9}
	w := Generate(cfg)
	np := 1 << bits
	got := make([]float64, np)
	for i := 0; i < w.Outer.Len(); i++ {
		got[int(w.Outer.Key(i))&(np-1)]++
	}
	for i := range got {
		got[i] /= float64(tuples)
	}
	want := PartitionFractions(keys, SkewLow, bits)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 0.01 {
			t.Fatalf("partition %d: generated %.4f vs analytic %.4f", i, got[i], want[i])
		}
	}
}

func TestZipfWeightsDecreasing(t *testing.T) {
	w := ZipfWeights(100, SkewHigh)
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Fatalf("weights not strictly decreasing at %d", i)
		}
	}
}

// Property: expected checksum is invariant under outer relation order.
func TestPropertyExpectedJoinOrderInvariant(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Config{InnerTuples: 32, OuterTuples: 64, Seed: seed}
		w := Generate(cfg)
		e1 := ExpectedJoin(w.Outer)
		// Reverse outer tuples (keys and rids travel together).
		rev := relation.New(w.Outer.Width(), w.Outer.Len())
		for i := 0; i < w.Outer.Len(); i++ {
			copy(rev.Tuple(w.Outer.Len()-1-i), w.Outer.Tuple(i))
		}
		e2 := ExpectedJoin(rev)
		return e1 == e2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionFractionsTailApproximation(t *testing.T) {
	// Above exactZipfKeys the tail is folded analytically; compare
	// against a brute-force exact computation on a domain just past the
	// threshold.
	keys := exactZipfKeys + exactZipfKeys/2
	const bits = 4
	got := PartitionFractions(keys, SkewHigh, bits)
	np := 1 << bits
	exact := make([]float64, np)
	var total float64
	for k := 0; k < keys; k++ {
		w := zipfWeight(uint64(k), SkewHigh)
		exact[(k+1)&(np-1)] += w
		total += w
	}
	for p := range exact {
		exact[p] /= total
	}
	for p := range exact {
		if math.Abs(got[p]-exact[p]) > 1e-4 {
			t.Fatalf("partition %d: approx %.6f vs exact %.6f", p, got[p], exact[p])
		}
	}
}

func TestPartitionFractionsPaperScaleFast(t *testing.T) {
	// The 128M-key domain of Figure 8 must be cheap to histogram.
	start := time.Now()
	f := PartitionFractions(128<<20, SkewHigh, 10)
	if time.Since(start) > 5*time.Second {
		t.Fatalf("paper-scale fractions took %v", time.Since(start))
	}
	var sum float64
	for _, v := range f {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
	// Zipf(1.2) over 128M keys: the hottest key holds ~18% of the mass.
	if f[1] < 0.15 || f[1] > 0.25 {
		t.Fatalf("hot partition fraction %.3f outside the expected ~0.18", f[1])
	}
}
