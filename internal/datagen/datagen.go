// Package datagen generates the paper's workloads (Section 6.1.1):
//
//   - highly distinct value joins: the inner relation R holds every key in
//     [1, |R|] exactly once; every outer tuple matches exactly one inner
//     tuple. Relation-size ratios 1:1 through 1:16 are supported.
//   - skewed workloads: the foreign-key column of the outer relation
//     follows a Zipf law with skew factor 1.05 (low) or 1.20 (high).
//   - row-store workloads: tuples of 16, 32 or 64 bytes.
//
// Record ids are range-partitioned at load time: tuple i of a relation has
// rid i, and machine m receives a contiguous range of rids. Inner-relation
// rids equal key-1 after the key permutation, which makes join results
// verifiable in O(|S|) (see ExpectedJoin).
package datagen

import (
	"math"
	"math/rand"

	"rackjoin/internal/relation"
)

// Zipf skew factors used in the paper's Section 6.5.
const (
	SkewNone = 0.0
	SkewLow  = 1.05
	SkewHigh = 1.20
)

// Config describes a workload.
type Config struct {
	// InnerTuples and OuterTuples are the relation cardinalities |R|, |S|.
	InnerTuples int
	OuterTuples int
	// TupleWidth is 16, 32 or 64 bytes.
	TupleWidth int
	// Skew is the Zipf factor of the outer foreign-key column; 0 selects
	// the uniform highly-distinct-value workload.
	Skew float64
	// Seed makes generation deterministic.
	Seed int64
}

// Workload is a generated pair of relations.
type Workload struct {
	Inner *relation.Relation // R: distinct keys 1..|R|
	Outer *relation.Relation // S: foreign keys into R
}

// Generate materialises the workload described by cfg.
func Generate(cfg Config) Workload {
	if cfg.TupleWidth == 0 {
		cfg.TupleWidth = relation.Width16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	inner := relation.New(cfg.TupleWidth, cfg.InnerTuples)
	// Distinct keys 1..|R| in random order; rid = key-1 so that the
	// matching inner rid of any outer key is recoverable analytically.
	perm := rng.Perm(cfg.InnerTuples)
	for i, p := range perm {
		key := uint64(p) + 1
		inner.SetKey(i, key)
		inner.SetRID(i, key-1)
	}

	outer := relation.New(cfg.TupleWidth, cfg.OuterTuples)
	fillOuterKeys(outer, cfg, rng)
	for i := 0; i < cfg.OuterTuples; i++ {
		outer.SetRID(i, uint64(i))
	}
	return Workload{Inner: inner, Outer: outer}
}

func fillOuterKeys(outer *relation.Relation, cfg Config, rng *rand.Rand) {
	n := outer.Len()
	if cfg.Skew > 0 {
		// Alias-table sampling: one pow() per key at build time instead of
		// per drawn tuple, and valid for any skew > 0 (rand.NewZipf's
		// rejection sampler requires s > 1, which rules the sweep's
		// θ ∈ {0.5, 0.75, 1.0} out).
		a := NewZipfAlias(cfg.InnerTuples, cfg.Skew)
		for i := 0; i < n; i++ {
			outer.SetKey(i, a.Sample(rng))
		}
		return
	}
	// Uniform: every inner key appears at least once (Section 6.1.1:
	// "for each tuple in the inner relation, there is at least one
	// matching tuple in the outer relation"); remaining outer tuples
	// cycle through the key domain, then everything is shuffled.
	for i := 0; i < n; i++ {
		outer.SetKey(i, uint64(i%cfg.InnerTuples)+1)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		ki, kj := outer.Key(i), outer.Key(j)
		outer.SetKey(i, kj)
		outer.SetKey(j, ki)
	}
}

// GenerateDistributed produces the workload already fragmented across nm
// machines, with the even loading and rid range-partitioning of Section
// 6.1.1.
func GenerateDistributed(cfg Config, nm int) (*relation.Distributed, *relation.Distributed) {
	w := Generate(cfg)
	return relation.Fragment(w.Inner, nm), relation.Fragment(w.Outer, nm)
}

// Expected summarises the analytically known outcome of a workload's join,
// used to verify both the single-machine baselines and the distributed
// join without a reference implementation.
type Expected struct {
	// Matches is the number of result tuples.
	Matches uint64
	// Checksum is the sum over all matches of
	// key + innerRID + outerRID (mod 2^64).
	Checksum uint64
}

// ExpectedJoin computes the expected join outcome for relations generated
// by Generate: since inner keys are distinct with rid = key-1, each outer
// tuple with key k contributes exactly one match (k, k-1, outerRID).
func ExpectedJoin(outer *relation.Relation) Expected {
	var e Expected
	n := outer.Len()
	for i := 0; i < n; i++ {
		k := outer.Key(i)
		e.Matches++
		e.Checksum += k + (k - 1) + outer.RID(i)
	}
	return e
}

// ZipfWeights returns the unnormalised Zipf weight of every key in
// [1, keys]: w(k) = 1/(1+k')^s with k' = k-1, matching rand.Zipf's
// distribution. Used by the simulator to derive exact partition
// histograms for paper-scale skewed workloads without materialising them.
func ZipfWeights(keys int, skew float64) []float64 {
	w := make([]float64, keys)
	for k := 0; k < keys; k++ {
		w[k] = zipfWeight(uint64(k), skew)
	}
	return w
}

func zipfWeight(k uint64, s float64) float64 {
	x := 1.0 + float64(k)
	// x^-s via exp/log would lose precision for huge key counts; the
	// standard library's math.Pow is fine here.
	return pow(x, -s)
}

// exactZipfKeys bounds the per-key exact computation of
// PartitionFractions; beyond it the Zipf tail is near-uniform across radix
// partitions (keys are dense, so the mask cycles) and is folded in
// analytically. This lets the simulator derive paper-scale histograms
// (128M-key domains) in milliseconds.
const exactZipfKeys = 1 << 21

// PartitionFractions returns, for a Zipf(skew) foreign-key column over
// [1, keys] radix-partitioned on the low `bits` key bits, the fraction of
// tuples landing in each of the 2^bits partitions. skew == 0 yields the
// uniform distribution. The histogram is exact in expectation (the heavy
// head is computed per key; the near-uniform tail analytically).
func PartitionFractions(keys int, skew float64, bits int) []float64 {
	np := 1 << bits
	frac := make([]float64, np)
	if skew == 0 {
		// Dense keys 1..keys cycle through partitions 1,2,…,np-1,0,…
		base := keys / np
		rem := keys % np
		for p := 0; p < np; p++ {
			frac[p] = float64(base)
		}
		for i := 1; i <= rem; i++ {
			frac[i&(np-1)]++
		}
		total := float64(keys)
		for i := range frac {
			frac[i] /= total
		}
		return frac
	}
	head := keys
	if head > exactZipfKeys {
		head = exactZipfKeys
	}
	var total float64
	for k := 0; k < head; k++ {
		w := zipfWeight(uint64(k), skew)
		frac[(k+1)&(np-1)] += w
		total += w
	}
	if keys > head {
		tail := zipfTailWeight(head, keys, skew)
		for p := range frac {
			frac[p] += tail / float64(np)
		}
		total += tail
	}
	for i := range frac {
		frac[i] /= total
	}
	return frac
}

// zipfTailWeight approximates Σ_{k'=from}^{to-1} (1+k')^{-s} by the
// integral of the weight function (midpoint-corrected). s == 1 is the
// harmonic singularity of the closed form and integrates to a log.
func zipfTailWeight(from, to int, s float64) float64 {
	a, b := 1.0+float64(from), 1.0+float64(to)
	var integral float64
	if math.Abs(s-1) < 1e-9 {
		integral = math.Log(b / a)
	} else {
		integral = (pow(a, 1-s) - pow(b, 1-s)) / (s - 1)
	}
	correction := (pow(a, -s) - pow(b, -s)) / 2
	return integral + correction
}
