package datagen

import "math/rand"

// ZipfAlias is a seeded O(1)-per-tuple Zipf sampler built on a
// precomputed Walker/Vose alias table. The rejection sampler behind
// rand.NewZipf evaluates pow() per attempt — the dominant cost of
// materialising skewed benchmark workloads — and is undefined for skew
// factors s ≤ 1. The alias table pays one pow() per key at build time
// and then draws each tuple with one Intn and one Float64, for any
// skew ≥ 0, from exactly the distribution the simulator's analytic
// histograms assume: w(k) = (1+k')^{-s} over keys k = k'+1 in [1, keys].
type ZipfAlias struct {
	keys  int
	prob  []float64 // acceptance probability of each column
	alias []int32   // fallback key index of each column
}

// NewZipfAlias builds the alias table for a Zipf(skew) distribution over
// [1, keys]. Build cost is O(keys); keys must fit int32 (the relation
// layer indexes tuples with int anyway).
func NewZipfAlias(keys int, skew float64) *ZipfAlias {
	return newAlias(keys, ZipfWeights(keys, skew))
}

// newAlias runs Vose's stable construction over arbitrary non-negative
// weights: scale to mean 1, then pair each under-full column with an
// over-full one.
func newAlias(keys int, weights []float64) *ZipfAlias {
	n := len(weights)
	var sum float64
	for _, w := range weights {
		sum += w
	}
	a := &ZipfAlias{
		keys:  keys,
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers are exactly 1 up to rounding.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Sample draws one key in [1, keys] using the supplied seeded source:
// one uniform column pick, one acceptance test, no pow().
func (a *ZipfAlias) Sample(rng *rand.Rand) uint64 {
	i := rng.Intn(len(a.prob))
	if rng.Float64() >= a.prob[i] {
		i = int(a.alias[i])
	}
	return uint64(i) + 1
}

// TopKeyShares returns the global frequency share of the `top` hottest
// keys of a Zipf(skew) column over [1, keys]: element k is the share of
// key k+1 (keys are dense in hotness order by construction, key 1 the
// hottest). The simulator uses it to place heavy hitters analytically;
// skew == 0 yields the uniform share for each.
func TopKeyShares(keys int, skew float64, top int) []float64 {
	if top > keys {
		top = keys
	}
	out := make([]float64, top)
	if skew == 0 {
		for i := range out {
			out[i] = 1 / float64(keys)
		}
		return out
	}
	head := keys
	if head > exactZipfKeys {
		head = exactZipfKeys
	}
	var total float64
	for k := 0; k < head; k++ {
		total += zipfWeight(uint64(k), skew)
	}
	if keys > head {
		total += zipfTailWeight(head, keys, skew)
	}
	for k := 0; k < top; k++ {
		out[k] = zipfWeight(uint64(k), skew) / total
	}
	return out
}
