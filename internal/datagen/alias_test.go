package datagen

import (
	"math"
	"math/rand"
	"testing"
)

// TestAliasDistributionShape: empirical head-key frequencies of the
// alias sampler must match the analytic Zipf shares within sampling
// error, across skew factors on both sides of the s=1 boundary the old
// rejection sampler could not cross.
func TestAliasDistributionShape(t *testing.T) {
	const keys, draws = 1 << 10, 1 << 19
	for _, skew := range []float64{0.5, 0.75, 1.0, 1.25, SkewHigh} {
		a := NewZipfAlias(keys, skew)
		rng := rand.New(rand.NewSource(11))
		counts := make([]int, keys+1)
		for i := 0; i < draws; i++ {
			k := a.Sample(rng)
			if k < 1 || k > keys {
				t.Fatalf("skew %.2f: sampled key %d out of [1,%d]", skew, k, keys)
			}
			counts[k]++
		}
		want := TopKeyShares(keys, skew, 16)
		for k := 0; k < 16; k++ {
			got := float64(counts[k+1]) / draws
			// Head keys carry enough mass for a tight relative check; allow
			// 10% relative or 0.002 absolute slack for the lighter shares.
			if math.Abs(got-want[k]) > 0.1*want[k]+0.002 {
				t.Fatalf("skew %.2f key %d: empirical %.5f vs analytic %.5f", skew, k+1, got, want[k])
			}
		}
	}
}

// TestAliasMatchesPartitionFractions: radix-partitioning alias-sampled
// keys must reproduce the simulator's analytic partition histogram —
// the contract that lets sim experiments stand in for generated data.
func TestAliasMatchesPartitionFractions(t *testing.T) {
	const keys, draws, bits = 1 << 12, 1 << 18, 4
	np := 1 << bits
	for _, skew := range []float64{0.75, SkewLow, 1.5} {
		a := NewZipfAlias(keys, skew)
		rng := rand.New(rand.NewSource(5))
		got := make([]float64, np)
		for i := 0; i < draws; i++ {
			got[int(a.Sample(rng))&(np-1)]++
		}
		for p := range got {
			got[p] /= draws
		}
		want := PartitionFractions(keys, skew, bits)
		for p := range got {
			if math.Abs(got[p]-want[p]) > 0.01 {
				t.Fatalf("skew %.2f partition %d: sampled %.4f vs analytic %.4f", skew, p, got[p], want[p])
			}
		}
	}
}

// TestAliasDeterministic: same seed → same stream; different seed →
// different stream.
func TestAliasDeterministic(t *testing.T) {
	a := NewZipfAlias(1<<8, 1.1)
	r1, r2, r3 := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9)), rand.New(rand.NewSource(10))
	diff := false
	for i := 0; i < 1000; i++ {
		k1, k2, k3 := a.Sample(r1), a.Sample(r2), a.Sample(r3)
		if k1 != k2 {
			t.Fatal("same seed diverged")
		}
		if k1 != k3 {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestTopKeyShares: shares are decreasing, key 1 dominates under heavy
// skew, and the uniform case returns the flat share.
func TestTopKeyShares(t *testing.T) {
	s := TopKeyShares(1<<20, SkewHigh, 8)
	for i := 1; i < len(s); i++ {
		if s[i] >= s[i-1] {
			t.Fatalf("shares not decreasing at %d", i)
		}
	}
	if s[0] < 0.1 {
		t.Fatalf("Zipf 1.2 hottest key share %.3f too small", s[0])
	}
	u := TopKeyShares(100, 0, 3)
	for _, v := range u {
		if math.Abs(v-0.01) > 1e-12 {
			t.Fatalf("uniform share %v", v)
		}
	}
}

// TestZipfTailWeightAtOne: the harmonic case s=1 must be finite (the
// closed form divides by s-1), exercised through PartitionFractions on
// a domain past the exact-head threshold.
func TestZipfTailWeightAtOne(t *testing.T) {
	f := PartitionFractions(exactZipfKeys*2, 1.0, 4)
	var sum float64
	for _, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("non-finite fraction %v at s=1", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
}
