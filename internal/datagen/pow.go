package datagen

import "math"

// pow is a trivial wrapper kept separate so hot loops in this package have
// a single call site to replace if profiling ever demands a cheaper
// approximation for the Zipf weight computation.
func pow(x, y float64) float64 { return math.Pow(x, y) }
