// Package sim is a discrete-event simulator of the distributed radix hash
// join at paper scale. It replays the exact per-buffer event structure of
// the network partitioning pass — buffer fills at calibrated partitioning
// speed, per-partition buffer credits, FIFO egress/ingress links with the
// paper's bandwidth figures, blocking on buffer reuse — and models the
// remaining phases with the calibrated per-thread rates, including
// task-level makespan effects under skew.
//
// The simulator substitutes for the InfiniBand clusters the paper measured
// on (DESIGN.md §2): billions of tuples are represented by their exact
// per-partition histograms (computed analytically for Zipf workloads by
// datagen.PartitionFractions), so a 2×4096M-tuple join simulates in
// seconds of host time while exhibiting the interleaving, congestion,
// saturation and skew behaviour of Sections 6.2–6.8.
package sim

import (
	"fmt"
	"sort"

	"rackjoin/internal/datagen"
	"rackjoin/internal/model"
	"rackjoin/internal/netsched"
	"rackjoin/internal/phase"
)

// Mode selects the communication behaviour of the network pass
// (Figure 5b's three variants).
type Mode int

const (
	// ModeInterleaved overlaps partitioning with transfers using
	// per-partition buffer credits (the paper's algorithm).
	ModeInterleaved Mode = iota
	// ModeNonInterleaved waits for each transfer before continuing.
	ModeNonInterleaved
	// ModeStream models the TCP/IP (IPoIB) implementation: sender-side
	// copy cost, per-message kernel overhead, synchronous sends, reduced
	// bandwidth.
	ModeStream
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeInterleaved:
		return "interleaved"
	case ModeNonInterleaved:
		return "non-interleaved"
	case ModeStream:
		return "stream"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes one simulated join execution.
type Config struct {
	Machines int
	Cores    int
	Net      model.Network
	Cal      model.Calibration

	// Workload.
	RTuples    int64
	STuples    int64
	TupleWidth int
	// Skew is the Zipf factor of the outer foreign-key column (0 =
	// uniform). The key domain is [1, RTuples].
	Skew float64

	// Algorithm parameters (paper defaults via Defaults()).
	NetworkBits         uint
	LocalBits           uint
	BufferSize          int
	BuffersPerPartition int
	Mode                Mode
	// SizeSortedAssignment enables the dynamic size-sorted
	// partition→machine assignment of Section 6.5.
	SizeSortedAssignment bool
	// SkewSplit enables intra-machine build-probe task splitting
	// (Section 4.3); without it a machine's phase time is bounded below
	// by its largest partition task.
	SkewSplit bool
	// SkewEngine models core's heavy-hitter skew engine
	// (core.Config.Skew = SkewSplit): keys whose outer share crosses
	// SkewThreshold mark their partition for split-and-replicate — the
	// inner side replicates to every machine, the outer side is dealt
	// round-robin instead of converging on the owner, and build-probe
	// tasks split mid-run (implies SkewSplit).
	SkewEngine bool
	// SkewThreshold is the heavy-hitter frequency threshold as a fraction
	// of the outer relation (0 = core's default, 4/2^NetworkBits).
	SkewThreshold float64
	// Pipeline models partition-ready execution (core.Config.Pipeline):
	// during the network pass, partitioning threads are idle whenever they
	// are blocked on the link or waiting for stragglers — pipelined
	// execution fills that window with local-partition/build-probe work of
	// already-complete partitions, shortening the exposed tail after the
	// pass. False models the barrier between phases 2 and 3.
	Pipeline bool
	// BroadcastFactor enables the inter-machine work sharing the paper
	// proposes as future work (selective broadcast, matching
	// core.Config.BroadcastFactor): hot partitions keep their outer
	// tuples local and replicate the inner side instead. 0 disables.
	BroadcastFactor float64

	// NetSched selects the application-level communication schedule of
	// the network pass (core.Config.NetSched): senders confine each
	// transfer's wire entry to the pairing windows of the plan, so a
	// receiver sees (near) one sender at a time. Off disables.
	NetSched netsched.Policy
	// SwitchContention models receiver-side congestion: the ingress
	// service time of a transfer inflates by
	// 1 + SwitchContention × min(queue/service, 16) when the transfer
	// found the ingress link busy. The paper's switch-contention
	// measurements (Section 3) motivate the term; 0 (the default)
	// disables it and preserves the calibrated uncongested model.
	SwitchContention float64

	// RemoteCPUFactor scales the partitioning speed applied to
	// remote-destined bytes (buffer management, flush bookkeeping; fitted
	// to the measured FDR network pass — see DESIGN.md §7). 1.0 disables.
	RemoteCPUFactor float64
	// LinkEfficiency is the fraction of nominal link bandwidth usable by
	// tuple payload (protocol headers, imperfect communication
	// scheduling; fitted to the QDR scale-out measurements). 1.0 disables.
	LinkEfficiency float64

	// Faults is the fault-injection plan (nil = none). Populate it with
	// DegradeLink / SlowMachine / DropBuffers / DropBuffersAt.
	Faults *Faults
}

// Defaults fills in the paper's evaluation parameters.
func (c Config) Defaults() Config {
	if c.Cal == (model.Calibration{}) {
		c.Cal = model.DefaultCalibration()
	}
	if c.TupleWidth == 0 {
		c.TupleWidth = 16
	}
	if c.NetworkBits == 0 {
		c.NetworkBits = 10
	}
	if c.LocalBits == 0 {
		c.LocalBits = 10
	}
	if c.BufferSize == 0 {
		c.BufferSize = 64 << 10
	}
	if c.BuffersPerPartition == 0 {
		c.BuffersPerPartition = 2
	}
	if c.RemoteCPUFactor == 0 {
		c.RemoteCPUFactor = 0.72
	}
	if c.LinkEfficiency == 0 {
		c.LinkEfficiency = 0.89
	}
	return c
}

func (c Config) validate() error {
	if c.Machines < 1 || c.Cores < 1 {
		return fmt.Errorf("sim: need machines ≥ 1 and cores ≥ 1, got %d×%d", c.Machines, c.Cores)
	}
	if c.Machines > 1 && c.Cores < 2 {
		return fmt.Errorf("sim: channel semantics need ≥ 2 cores per machine")
	}
	if 1<<c.NetworkBits < c.Machines {
		return fmt.Errorf("sim: 2^%d partitions < %d machines", c.NetworkBits, c.Machines)
	}
	if c.RTuples < 0 || c.STuples < 0 {
		return fmt.Errorf("sim: negative tuple counts")
	}
	if c.NetSched < netsched.Off || c.NetSched > netsched.Weighted {
		return fmt.Errorf("sim: unknown NetSched policy %v", c.NetSched)
	}
	if c.SwitchContention < 0 {
		return fmt.Errorf("sim: negative SwitchContention")
	}
	return c.validateFaults()
}

// Result reports the simulated execution.
type Result struct {
	// Phases is the cluster-level breakdown (per-phase maximum across
	// machines, phases being barrier-separated).
	Phases phase.Times
	// PerMachine holds each machine's own breakdown.
	PerMachine []phase.Times
	// RemoteMB is the data shipped between machines during the network
	// pass, in MB.
	RemoteMB float64
	// Stalls counts sender blocks on buffer reuse.
	Stalls uint64
	// MaxLinkQueueSec is the largest time any transfer spent queued
	// behind other traffic on a receiver's ingress link — the per-link
	// queueing delay communication scheduling is designed to cap.
	MaxLinkQueueSec float64
	// AvgLinkQueueSec is the mean ingress queueing delay over all
	// transfers.
	AvgLinkQueueSec float64
	// PartitionsPerMachine is the assignment cardinality.
	PartitionsPerMachine []int
	// Detail is the network-pass ledger the health plane's post-run
	// evaluation consumes (nil for single-machine runs).
	Detail *NetDetail
}

// NetDetail is the per-link / per-machine ledger of the network pass, in
// the shape health.FromSim consumes: who shipped what over which link,
// how long the wire was busy with it, and where the senders stalled.
type NetDetail struct {
	// ExpectedMBps is the calibrated payload bandwidth of one host link.
	ExpectedMBps float64
	// LinkMB[src][dst] is the payload shipped on each directed link, MB.
	LinkMB [][]float64
	// LinkBusySec[src][dst] is the ingress wire time that payload
	// occupied (fault- and contention-inflated).
	LinkBusySec [][]float64
	// Stalls, Flushes and Retransmits are per sender machine.
	Stalls      []uint64
	Flushes     []uint64
	Retransmits []uint64
	// PacedWaitSec[dst] is the time transfers spent parked by the
	// pairing discipline waiting for dst's ingress backlog (scheduled
	// runs only).
	PacedWaitSec []float64
	// PartitionMB is the payload shipped per network partition, MB.
	PartitionMB map[int]float64
	// Scheduled reports whether a communication schedule was active.
	Scheduled bool
	// SplitPartitions are the partitions the skew engine processed in
	// split-and-replicate mode (empty unless Config.SkewEngine).
	SplitPartitions []int
	// ReplicatedMB is the split-partition traffic: inner replicas plus
	// dealt outer tuples.
	ReplicatedMB float64
}

// Run simulates the join.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	np := 1 << cfg.NetworkBits
	w := model.WorkloadTuples(cfg.RTuples, cfg.STuples, cfg.TupleWidth)

	// Exact expected per-partition histograms. Inner keys are dense and
	// distinct (uniform over partitions); outer keys follow the workload
	// distribution over the inner key domain.
	keyDomain := int(cfg.RTuples)
	if keyDomain < 1 {
		keyDomain = 1
	}
	fracR := datagen.PartitionFractions(keyDomain, 0, int(cfg.NetworkBits))
	fracS := datagen.PartitionFractions(keyDomain, cfg.Skew, int(cfg.NetworkBits))

	partMBR := make([]float64, np)
	partMBS := make([]float64, np)
	for p := 0; p < np; p++ {
		partMBR[p] = w.R * fracR[p]
		partMBS[p] = w.S * fracS[p]
	}
	owner := assign(partMBR, partMBS, cfg.Machines, cfg.SizeSortedAssignment)
	broadcast := markBroadcast(partMBR, partMBS, cfg)
	split := markSplit(cfg, keyDomain, np)

	res := &Result{
		PerMachine:           make([]phase.Times, cfg.Machines),
		PartitionsPerMachine: make([]int, cfg.Machines),
	}
	for p, o := range owner {
		if split[p] || broadcast[p] {
			for m := range res.PartitionsPerMachine {
				res.PartitionsPerMachine[m]++
			}
			continue
		}
		res.PartitionsPerMachine[o]++
	}

	cores := float64(cfg.Cores)
	localMB := w.Total() / float64(cfg.Machines) // per-machine input share

	// Phase 1: histogram scan of the local chunks, all cores.
	histSec := localMB / (cores * cfg.Cal.PsHist)

	// Phase 2: network partitioning pass (event simulation).
	netSec, busySec, nps := simulateNetworkPass(cfg, partMBR, partMBS, owner, broadcast, split)

	// Phases 3+4 are machine-local; per machine m the received partition
	// set determines the work.
	localSec := make([]float64, cfg.Machines)
	bpSec := make([]float64, cfg.Machines)
	passes := cfg.Cal.Passes
	maxTaskLocal := make([]float64, cfg.Machines)
	maxTaskBP := make([]float64, cfg.Machines)
	addTask := func(m int, lpMB, rMB, sMB float64) {
		lp := 0.0
		if passes > 1 {
			lp = float64(passes-1) * lpMB / cfg.Cal.PsLocal
		}
		bp := rMB/cfg.Cal.HbThread + sMB/cfg.Cal.HpThread
		localSec[m] += lp
		bpSec[m] += bp
		if lp > maxTaskLocal[m] {
			maxTaskLocal[m] = lp
		}
		if bp > maxTaskBP[m] {
			maxTaskBP[m] = bp
		}
	}
	for p := 0; p < np; p++ {
		if split[p] || broadcast[p] {
			// Work sharing: every machine joins a 1/nm outer share (its
			// own under broadcast, its dealt-in share under the skew
			// engine) against the full replicated inner partition.
			sShare := partMBS[p] / float64(cfg.Machines)
			for m := 0; m < cfg.Machines; m++ {
				addTask(m, partMBR[p]+sShare, partMBR[p], sShare)
			}
			continue
		}
		addTask(owner[p], partMBR[p]+partMBS[p], partMBR[p], partMBS[p])
	}
	// Convert aggregate thread-seconds into machine phase times
	// (task-queue makespan). The local scatter of one partition is an
	// indivisible single-threaded task, so it always bounds the local
	// phase from below — under skew this is the dominant local cost of
	// Figure 8. Section 4.3's skew splitting divides only build-probe
	// tasks (range probes, multiple hash tables); without it an
	// oversized build-probe task bounds that phase too.
	for m := 0; m < cfg.Machines; m++ {
		l := localSec[m] / cores
		if maxTaskLocal[m] > l {
			l = maxTaskLocal[m]
		}
		b := bpSec[m] / cores
		if !cfg.SkewSplit && !cfg.SkewEngine && maxTaskBP[m] > b {
			b = maxTaskBP[m]
		}
		// A slowed machine runs all its compute phases at a fraction of
		// the calibrated rates (the network pass already applied the
		// factor to its partitioning threads).
		if f := cfg.machineFactor(m); f < 1 {
			l /= f
			b /= f
		}
		if cfg.Pipeline {
			// Partition-ready execution: the idle window of the network
			// pass (wall clock minus the threads' own compute) absorbs
			// local-join work of already-complete partitions; the exposed
			// local/build-probe tail shrinks by what was reclaimed. This is
			// the critical-path view core reports, so sim and measurement
			// stay comparable.
			if avail := netSec[m] - busySec[m]; avail > 0 && l+b > 0 {
				reclaim := avail
				if reclaim > l+b {
					reclaim = l + b
				}
				scale := (l + b - reclaim) / (l + b)
				l *= scale
				b *= scale
			}
		}
		res.PerMachine[m] = phase.FromSeconds(histSec/cfg.machineFactor(m), netSec[m], l, b)
	}
	res.Stalls = nps.stalls
	res.RemoteMB = nps.remoteMB
	res.MaxLinkQueueSec = nps.maxQueueSec
	if nps.numTransfers > 0 {
		res.AvgLinkQueueSec = nps.sumQueueSec / float64(nps.numTransfers)
	}
	if cfg.Machines > 1 {
		// Shipped bytes per network partition: every machine holds 1/nm
		// of each partition and ships the non-resident share to the
		// owner; broadcast partitions replicate the inner side instead.
		partMB := make(map[int]float64, np)
		nm := float64(cfg.Machines)
		var splitParts []int
		var replMB float64
		for p := 0; p < np; p++ {
			var mb float64
			switch {
			case split[p]:
				mb = partMBR[p]*(nm-1) + partMBS[p]*(nm-1)/nm
				splitParts = append(splitParts, p)
				replMB += mb
			case broadcast[p]:
				mb = partMBR[p] * (nm - 1)
			default:
				mb = (partMBR[p] + partMBS[p]) * (nm - 1) / nm
			}
			if mb > 0 {
				partMB[p] = mb
			}
		}
		res.Detail = &NetDetail{
			ExpectedMBps: cfg.Net.Bandwidth(cfg.Machines) * cfg.LinkEfficiency,
			LinkMB:       nps.linkMB,
			LinkBusySec:  nps.linkBusySec,
			Stalls:       nps.machStalls,
			Flushes:      nps.flushes,
			Retransmits:  nps.retransmits,
			PacedWaitSec: nps.pacedWaitSec,
			PartitionMB:     partMB,
			Scheduled:       cfg.NetSched != netsched.Off,
			SplitPartitions: splitParts,
			ReplicatedMB:    replMB,
		}
	}

	for _, pm := range res.PerMachine {
		if pm.Histogram > res.Phases.Histogram {
			res.Phases.Histogram = pm.Histogram
		}
		if pm.NetworkPartition > res.Phases.NetworkPartition {
			res.Phases.NetworkPartition = pm.NetworkPartition
		}
		if pm.LocalPartition > res.Phases.LocalPartition {
			res.Phases.LocalPartition = pm.LocalPartition
		}
		if pm.BuildProbe > res.Phases.BuildProbe {
			res.Phases.BuildProbe = pm.BuildProbe
		}
	}
	return res, nil
}

// assign reproduces core's partition→machine assignment on histograms:
// static round-robin, or size-sorted round-robin for skew.
func assign(partMBR, partMBS []float64, machines int, sizeSorted bool) []int {
	np := len(partMBR)
	owner := make([]int, np)
	if !sizeSorted {
		for p := 0; p < np; p++ {
			owner[p] = p % machines
		}
		return owner
	}
	idx := make([]int, np)
	for p := range idx {
		idx[p] = p
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa := partMBR[idx[a]] + partMBS[idx[a]]
		sb := partMBR[idx[b]] + partMBS[idx[b]]
		if sa != sb {
			return sa > sb
		}
		return idx[a] < idx[b]
	})
	for i, p := range idx {
		owner[p] = i % machines
	}
	return owner
}

// markSplit flags the partitions core's skew engine would split: the
// analytic counterpart of the space-saving detection. Zipf key shares are
// monotone in rank, so keys are walked hottest-first until one falls
// below the threshold; each hot key marks its partition (key & (np-1),
// core's radix placement at shift 0).
func markSplit(cfg Config, keyDomain, np int) []bool {
	split := make([]bool, np)
	if !cfg.SkewEngine || cfg.Machines <= 1 || cfg.Skew <= 0 {
		return split
	}
	thr := cfg.SkewThreshold
	if thr <= 0 {
		thr = 4 / float64(np)
	}
	// Fewer than 1/thr keys can each hold a ≥ thr share.
	top := int(1/thr) + 1
	if top > keyDomain {
		top = keyDomain
	}
	for i, s := range datagen.TopKeyShares(keyDomain, cfg.Skew, top) {
		if s < thr {
			break
		}
		split[(i+1)&(np-1)] = true
	}
	return split
}

// markBroadcast flags the partitions that qualify for selective broadcast
// under cfg.BroadcastFactor (see core.Config.BroadcastFactor).
func markBroadcast(partMBR, partMBS []float64, cfg Config) []bool {
	b := make([]bool, len(partMBR))
	if cfg.BroadcastFactor <= 0 || cfg.Machines <= 1 {
		return b
	}
	var totalS float64
	for _, v := range partMBS {
		totalS += v
	}
	avg := totalS / float64(len(partMBS))
	for p := range b {
		if partMBS[p] > cfg.BroadcastFactor*avg && partMBS[p] > float64(cfg.Machines)*partMBR[p] {
			b[p] = true
		}
	}
	return b
}
