package sim

import (
	"testing"
	"time"

	"rackjoin/internal/model"
)

func simTraceFixture(t *testing.T) (Config, *Result) {
	t.Helper()
	cfg := Config{
		Machines: 4, Cores: 8, Net: model.QDR(),
		RTuples: 64 << 20, STuples: 64 << 20, TupleWidth: 16,
		NetworkBits: 10, BufferSize: 64 << 10, BuffersPerPartition: 2,
		Mode: ModeInterleaved, Pipeline: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return cfg, res
}

// TestBuildTraceNormalizesClockSkew checks the sim-fabric analogue of
// clock synchronisation: the same simulated run traced through heavily
// skewed per-machine clocks exports the identical span timeline once the
// recorder's registered offsets are normalized out.
func TestBuildTraceNormalizesClockSkew(t *testing.T) {
	cfg, res := simTraceFixture(t)

	aligned := BuildTrace(cfg, res, nil)
	skewed := BuildTrace(cfg, res, TraceSkews(cfg.Machines, 40*time.Second))

	ae, se := aligned.Events(), skewed.Events()
	if len(ae) == 0 || len(ae) != len(se) {
		t.Fatalf("event counts differ: aligned %d, skewed %d", len(ae), len(se))
	}
	// The two recorders have epochs a few ns apart (trace.New stamps
	// time.Now), so compare with a tolerance far below the 40 s skews
	// being normalized away.
	const tol = 100 * time.Millisecond
	for i := range ae {
		a, s := ae[i], se[i]
		if a.Machine != s.Machine || a.Kind != s.Kind || a.Label != s.Label {
			t.Fatalf("event %d identity differs: %+v vs %+v", i, a, s)
		}
		if d := a.Start - s.Start; d < -tol || d > tol {
			t.Errorf("event %d (%s m%d) start misaligned by %v", i, a.Label, a.Machine, d)
		}
		if d := a.End - s.End; d < -tol || d > tol {
			t.Errorf("event %d (%s m%d) end misaligned by %v", i, a.Label, a.Machine, d)
		}
	}
	if len(skewed.Flows()) != len(aligned.Flows()) {
		t.Fatalf("flow counts differ: %d vs %d", len(aligned.Flows()), len(skewed.Flows()))
	}
}

// TestBuildTraceCriticalPath checks that the critical path extracted
// from a synthetic simulation trace spans the simulated makespan: the
// wall clock equals the slowest machine's total and the causal chain
// accounts for (nearly) all of it.
func TestBuildTraceCriticalPath(t *testing.T) {
	cfg, res := simTraceFixture(t)

	var want time.Duration
	for _, pt := range res.PerMachine {
		if pt.Total() > want {
			want = pt.Total()
		}
	}

	tr := BuildTrace(cfg, res, TraceSkews(cfg.Machines, 10*time.Second))
	cp, err := tr.CriticalPath()
	if err != nil {
		t.Fatalf("CriticalPath: %v", err)
	}
	if d := cp.Wall - want; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("critical-path wall %v, want slowest machine total %v", cp.Wall, want)
	}
	if cp.Coverage < 0.95 {
		t.Fatalf("coverage %.3f, want >= 0.95 on a fully-connected synthetic DAG", cp.Coverage)
	}
	for _, phase := range []string{"histogram", "network partition"} {
		if cp.ByPhase[phase] <= 0 {
			t.Errorf("phase %q absent from critical-path attribution: %v", phase, cp.ByPhase)
		}
	}
}
