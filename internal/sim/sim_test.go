package sim

import (
	"math"
	"testing"
	"testing/quick"

	"rackjoin/internal/model"
	"rackjoin/internal/netsched"
)

// paperQDR builds the standard 2048M ⋈ 2048M QDR configuration.
func paperQDR(machines, cores int) Config {
	return Config{
		Machines: machines, Cores: cores, Net: model.QDR(),
		RTuples: 2048 << 20, STuples: 2048 << 20,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFigure7aScaleOut(t *testing.T) {
	// Figure 7a: measured totals on the QDR cluster, 8 cores/machine.
	paper := map[int]float64{
		2: 11.16, 3: 8.68, 4: 7.19, 5: 6.09, 6: 5.36,
		7: 5.02, 8: 4.46, 9: 4.14, 10: 3.84,
	}
	for nm, want := range paper {
		got := mustRun(t, paperQDR(nm, 8)).Phases.Total().Seconds()
		if math.Abs(got-want)/want > 0.08 {
			t.Errorf("QDR @%d machines: simulated %.2f s, paper %.2f s", nm, got, want)
		}
	}
}

func TestFigure5bVariantOrdering(t *testing.T) {
	// Figure 5b on 4 FDR machines: interleaved 5.75 < non-interleaved
	// 7.03 < TCP/IPoIB 15.69, with differences only in the network pass.
	base := Config{Machines: 4, Cores: 8, RTuples: 2048 << 20, STuples: 2048 << 20}

	inter := base
	inter.Net = model.FDR()
	inter.Mode = ModeInterleaved
	rInter := mustRun(t, inter)

	nonInter := inter
	nonInter.Mode = ModeNonInterleaved
	rNon := mustRun(t, nonInter)

	stream := base
	stream.Net = model.IPoIB()
	stream.Mode = ModeStream
	rStream := mustRun(t, stream)

	ti, tn, ts := rInter.Phases.Total().Seconds(), rNon.Phases.Total().Seconds(), rStream.Phases.Total().Seconds()
	if !(ti < tn && tn < ts) {
		t.Fatalf("ordering violated: interleaved=%.2f non-interleaved=%.2f stream=%.2f", ti, tn, ts)
	}
	// Within 15% of the paper's absolute numbers.
	for _, tc := range []struct {
		got, want float64
		name      string
	}{{ti, 5.75, "interleaved"}, {tn, 7.03, "non-interleaved"}, {ts, 15.69, "stream"}} {
		if math.Abs(tc.got-tc.want)/tc.want > 0.15 {
			t.Errorf("%s: %.2f s vs paper %.2f s", tc.name, tc.got, tc.want)
		}
	}
	// Non-network phases identical across the three variants.
	for _, pair := range []struct{ a, b *Result }{{rInter, rNon}, {rInter, rStream}} {
		if pair.a.Phases.Histogram != pair.b.Phases.Histogram ||
			pair.a.Phases.LocalPartition != pair.b.Phases.LocalPartition ||
			pair.a.Phases.BuildProbe != pair.b.Phases.BuildProbe {
			t.Error("non-network phases must not depend on the transport")
		}
	}
}

func TestInterleavingBenefitIsNetworkPassOnly(t *testing.T) {
	inter := mustRun(t, Config{Machines: 4, Cores: 8, Net: model.FDR(), RTuples: 2048 << 20, STuples: 2048 << 20})
	non := mustRun(t, Config{Machines: 4, Cores: 8, Net: model.FDR(), RTuples: 2048 << 20, STuples: 2048 << 20, Mode: ModeNonInterleaved})
	gain := non.Phases.NetworkPartition.Seconds() - inter.Phases.NetworkPartition.Seconds()
	if gain <= 0 {
		t.Fatalf("interleaving should shorten the network pass (gain %.2f s)", gain)
	}
	// Section 6.3: interleaving brings the network pass down by ~35%
	// (i.e. non-interleaved ≈ 1.5× interleaved); accept 1.2×–1.8×.
	ratio := non.Phases.NetworkPartition.Seconds() / inter.Phases.NetworkPartition.Seconds()
	if ratio < 1.2 || ratio > 1.8 {
		t.Fatalf("non-interleaved/interleaved network pass ratio %.2f outside [1.2, 1.8]", ratio)
	}
}

func TestFigure6aLargeToLarge(t *testing.T) {
	// Execution time doubles with data size (factors 1.98 / 1.92 in the
	// paper) and decreases with machines.
	for _, nm := range []int{4, 8} {
		cfg := paperQDR(nm, 8)
		t2048 := mustRun(t, cfg).Phases.Total().Seconds()
		cfg.RTuples, cfg.STuples = 1024<<20, 1024<<20
		t1024 := mustRun(t, cfg).Phases.Total().Seconds()
		f := t2048 / t1024
		if f < 1.85 || f > 2.1 {
			t.Errorf("@%d machines: doubling factor %.2f outside [1.85, 2.1]", nm, f)
		}
	}
	t4 := mustRun(t, paperQDR(4, 8)).Phases.Total()
	t10 := mustRun(t, paperQDR(10, 8)).Phases.Total()
	if t10 >= t4 {
		t.Fatalf("more machines should be faster: 4→%v 10→%v", t4, t10)
	}
	// Section 6.4.3: overall speed-up from 2 to 10 machines is sub-linear
	// (paper: 2.91× instead of 5×).
	t2 := mustRun(t, paperQDR(2, 8)).Phases.Total().Seconds()
	speedup := t2 / mustRun(t, paperQDR(10, 8)).Phases.Total().Seconds()
	if speedup < 2.2 || speedup > 3.6 {
		t.Fatalf("2→10 machines speed-up %.2f, paper reports 2.91", speedup)
	}
}

func TestFigure6bSmallToLarge(t *testing.T) {
	// Outer fixed at 2048M, inner shrinking 2048M→256M: time shrinks by
	// roughly half at 1:8 (Figure 6b).
	cfg := paperQDR(4, 8)
	t11 := mustRun(t, cfg).Phases.Total().Seconds()
	prev := t11
	for _, inner := range []int64{1024 << 20, 512 << 20, 256 << 20} {
		c := cfg
		c.RTuples = inner
		got := mustRun(t, c).Phases.Total().Seconds()
		if got >= prev {
			t.Fatalf("smaller inner relation should be faster (%d: %.2f ≥ %.2f)", inner>>20, got, prev)
		}
		prev = got
	}
	ratio := prev / t11
	if ratio < 0.45 || ratio > 0.70 {
		t.Fatalf("1:8 vs 1:1 ratio %.2f, expect ≈ 0.5–0.65", ratio)
	}
}

func TestFigure7bIncreasingWorkload(t *testing.T) {
	// 2×(1024+512·(N−2))M tuples on N machines: local phases constant,
	// network pass grows (Section 6.4.4; paper totals 5.69 → 9.97 s).
	total := func(nm int) (*Result, float64) {
		tuples := int64(1024+512*(nm-2)) << 20
		r := mustRun(t, Config{Machines: nm, Cores: 8, Net: model.QDR(), RTuples: tuples, STuples: tuples})
		return r, r.Phases.Total().Seconds()
	}
	r2, t2 := total(2)
	r10, t10 := total(10)
	if t10 <= t2 {
		t.Fatalf("network pass growth should raise total time: %.2f → %.2f", t2, t10)
	}
	// Paper: 5.69 s at 2 machines, 9.97 s at 10.
	if math.Abs(t2-5.69)/5.69 > 0.15 || math.Abs(t10-9.97)/9.97 > 0.15 {
		t.Errorf("increasing-workload totals %.2f/%.2f vs paper 5.69/9.97", t2, t10)
	}
	// Local pass and build-probe stay constant (±5%).
	l2 := r2.Phases.LocalPartition.Seconds() + r2.Phases.BuildProbe.Seconds()
	l10 := r10.Phases.LocalPartition.Seconds() + r10.Phases.BuildProbe.Seconds()
	if math.Abs(l2-l10)/l2 > 0.05 {
		t.Errorf("local phases should stay constant: %.2f vs %.2f", l2, l10)
	}
	// Network pass grows.
	if r10.Phases.NetworkPartition <= r2.Phases.NetworkPartition {
		t.Error("network pass should grow with machines+workload")
	}
}

func TestFigure8Skew(t *testing.T) {
	// 128M ⋈ 2048M on QDR with dynamic assignment and probe splitting.
	run := func(nm int, skew float64) float64 {
		return mustRun(t, Config{
			Machines: nm, Cores: 8, Net: model.QDR(),
			RTuples: 128 << 20, STuples: 2048 << 20,
			Skew: skew, SizeSortedAssignment: true, SkewSplit: true,
		}).Phases.Total().Seconds()
	}
	for _, nm := range []int{4, 8} {
		none, low, high := run(nm, 0), run(nm, 1.05), run(nm, 1.20)
		if !(none < low && low < high) {
			t.Fatalf("@%d machines: skew ordering violated: none=%.2f low=%.2f high=%.2f", nm, none, low, high)
		}
		// Paper @4 machines: none 2.49, low 4.41, high 8.19 — high skew
		// at least ~2.5× the uniform time.
		if nm == 4 && high/none < 2.0 {
			t.Errorf("@4 machines: high-skew penalty %.1f× too small (paper ≈ 3.3×)", high/none)
		}
	}
	// Skew penalties grow (or at least persist) with machine count: the
	// hot partition's single owner cannot be scaled out (Section 6.5).
	if run(8, 1.20) < 0.8*run(4, 1.20) {
		t.Error("high-skew time should not scale out well")
	}
}

func TestSkewSplitHelps(t *testing.T) {
	cfg := Config{
		Machines: 4, Cores: 8, Net: model.QDR(),
		RTuples: 128 << 20, STuples: 2048 << 20,
		Skew: 1.20, SizeSortedAssignment: true,
	}
	with := mustRun(t, func() Config { c := cfg; c.SkewSplit = true; return c }())
	without := mustRun(t, cfg)
	if with.Phases.BuildProbe >= without.Phases.BuildProbe {
		t.Fatalf("probe splitting should shorten build-probe under skew: %v vs %v",
			with.Phases.BuildProbe, without.Phases.BuildProbe)
	}
}

func TestFigure9ModelAgreement(t *testing.T) {
	// The closed-form model and the event simulation must agree like the
	// paper's Figure 9 (model vs measurement): we require ≤ 15% per
	// configuration on the QDR cluster sizes of Figure 9b.
	w := model.WorkloadTuples(2048<<20, 2048<<20, 16)
	for _, nm := range []int{4, 6, 8, 10} {
		simT := mustRun(t, paperQDR(nm, 8)).Phases.Total().Seconds()
		modelT := model.NewSystem(nm, 8, model.QDR()).Predict(w).Total().Seconds()
		if math.Abs(simT-modelT)/modelT > 0.15 {
			t.Errorf("@%d machines: sim %.2f vs model %.2f", nm, simT, modelT)
		}
	}
}

func TestFigure10CoreSaturation(t *testing.T) {
	// Figure 10a: on QDR, from ~5 machines on, 3 partitioning threads
	// saturate the network — 8 cores ≈ 4 cores for the network pass.
	netPass := func(nm, cores int) float64 {
		return mustRun(t, paperQDR(nm, cores)).Phases.NetworkPartition.Seconds()
	}
	at10c4, at10c8 := netPass(10, 4), netPass(10, 8)
	if math.Abs(at10c4-at10c8)/at10c8 > 0.12 {
		t.Errorf("QDR @10 machines: 4-core %.2f vs 8-core %.2f should converge", at10c4, at10c8)
	}
	// At 2 machines the QDR pass is CPU-bound: 8 cores clearly beat 4.
	at2c4, at2c8 := netPass(2, 4), netPass(2, 8)
	if at2c4 < 1.5*at2c8 {
		t.Errorf("QDR @2 machines: 4-core %.2f should be ≫ 8-core %.2f", at2c4, at2c8)
	}
	// Figure 10b: FDR is never saturated by 3 threads; 8 cores always win.
	fdr := func(nm, cores int) float64 {
		return mustRun(t, Config{Machines: nm, Cores: cores, Net: model.FDR(),
			RTuples: 2048 << 20, STuples: 2048 << 20}).Phases.NetworkPartition.Seconds()
	}
	for _, nm := range []int{2, 3, 4} {
		if fdr(nm, 4) < 1.4*fdr(nm, 8) {
			t.Errorf("FDR @%d machines: extra cores should speed the pass up", nm)
		}
	}
}

func TestWideTuplesConstantTime(t *testing.T) {
	// Section 6.7: same bytes, different tuple widths → identical times.
	base := mustRun(t, Config{Machines: 4, Cores: 8, Net: model.QDR(), RTuples: 2048 << 20, STuples: 2048 << 20, TupleWidth: 16})
	for _, tc := range []struct {
		tuples int64
		width  int
	}{{1024 << 20, 32}, {512 << 20, 64}} {
		r := mustRun(t, Config{Machines: 4, Cores: 8, Net: model.QDR(), RTuples: tc.tuples, STuples: tc.tuples, TupleWidth: tc.width})
		diff := math.Abs(r.Phases.Total().Seconds() - base.Phases.Total().Seconds())
		if diff/base.Phases.Total().Seconds() > 0.02 {
			t.Errorf("%d-byte tuples: %.2f s vs %.2f s", tc.width, r.Phases.Total().Seconds(), base.Phases.Total().Seconds())
		}
	}
}

func TestBufferSizeSweep(t *testing.T) {
	// Section 6.2: tiny buffers waste bandwidth on per-message overhead;
	// ≥ 8–64 KB buffers perform equivalently.
	get := func(buf int) float64 {
		return mustRun(t, Config{Machines: 4, Cores: 8, Net: model.QDR(),
			RTuples: 512 << 20, STuples: 512 << 20, BufferSize: buf}).Phases.NetworkPartition.Seconds()
	}
	tiny, small, big := get(512), get(8<<10), get(64<<10)
	if tiny <= small {
		t.Errorf("512 B buffers (%.2f s) should be slower than 8 KB (%.2f s)", tiny, small)
	}
	if math.Abs(small-big)/big > 0.10 {
		t.Errorf("8 KB (%.2f s) and 64 KB (%.2f s) should be comparable", small, big)
	}
}

func TestSingleBufferStalls(t *testing.T) {
	// With per-partition buffer pools and many partitions, the thread
	// revisits a partition long after its transfer completed, so a single
	// buffer per partition costs little throughput on a saturated link —
	// but it must stall strictly more often and never be faster.
	one := mustRun(t, func() Config { c := paperQDR(4, 8); c.BuffersPerPartition = 1; return c }())
	two := mustRun(t, paperQDR(4, 8))
	if float64(one.Phases.NetworkPartition) < 0.98*float64(two.Phases.NetworkPartition) {
		t.Fatalf("a single buffer per partition cannot beat double buffering: %v vs %v",
			one.Phases.NetworkPartition, two.Phases.NetworkPartition)
	}
	if one.Stalls <= two.Stalls {
		t.Fatalf("single buffering should stall more: %d vs %d", one.Stalls, two.Stalls)
	}
}

func TestSingleMachineNoNetwork(t *testing.T) {
	r := mustRun(t, Config{Machines: 1, Cores: 8, Net: model.QDR(), RTuples: 256 << 20, STuples: 256 << 20})
	if r.RemoteMB != 0 {
		t.Fatalf("single machine shipped %.1f MB", r.RemoteMB)
	}
	if r.Phases.Total() <= 0 {
		t.Fatal("no time simulated")
	}
}

func TestRemoteBytesFraction(t *testing.T) {
	// Uniform data over NM machines: (NM-1)/NM of the input crosses the
	// network.
	for _, nm := range []int{2, 4, 8} {
		r := mustRun(t, paperQDR(nm, 8))
		totalMB := float64(2*2048<<20) * 16 / (1 << 20)
		want := totalMB * float64(nm-1) / float64(nm)
		if math.Abs(r.RemoteMB-want)/want > 0.01 {
			t.Errorf("@%d machines: remote %.0f MB, want %.0f", nm, r.RemoteMB, want)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []Config{
		{Machines: 0, Cores: 8, Net: model.QDR()},
		{Machines: 2, Cores: 1, Net: model.QDR()},
		{Machines: 4, Cores: 8, Net: model.QDR(), NetworkBits: 1},
		{Machines: 2, Cores: 8, Net: model.QDR(), RTuples: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{ModeInterleaved, ModeNonInterleaved, ModeStream, Mode(7)} {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
}

// Property: simulated phase times are positive and finite, every machine
// gets partitions, and shipping less data never takes longer.
func TestPropertySimSane(t *testing.T) {
	f := func(nm8, cores8 uint8, scale uint8) bool {
		nm := int(nm8%9) + 2
		cores := int(cores8%7) + 2
		tuples := int64(scale%8+1) << 26
		cfg := Config{Machines: nm, Cores: cores, Net: model.QDR(), RTuples: tuples, STuples: tuples, NetworkBits: 8}
		r, err := Run(cfg)
		if err != nil {
			return false
		}
		tot := r.Phases.Total().Seconds()
		if !(tot > 0) || math.IsNaN(tot) || math.IsInf(tot, 0) {
			return false
		}
		for _, n := range r.PartitionsPerMachine {
			if n == 0 {
				return false
			}
		}
		half := cfg
		half.RTuples /= 2
		half.STuples /= 2
		rh, err := Run(half)
		if err != nil {
			return false
		}
		return rh.Phases.Total() <= r.Phases.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkSharingFixesSkew(t *testing.T) {
	// The extension the paper proposes in Sections 6.5/8: selective
	// broadcast must (a) dramatically shorten skewed executions, (b) make
	// them scale out again, and (c) leave uniform workloads untouched.
	base := Config{
		Machines: 4, Cores: 8, Net: model.QDR(),
		RTuples: 128 << 20, STuples: 2048 << 20,
		Skew: 1.20, SizeSortedAssignment: true, SkewSplit: true,
	}
	plain := mustRun(t, base)
	shared := base
	shared.BroadcastFactor = 4
	fixed := mustRun(t, shared)
	if fixed.Phases.Total().Seconds() > 0.5*plain.Phases.Total().Seconds() {
		t.Fatalf("work sharing should at least halve the high-skew time: %.2f vs %.2f",
			fixed.Phases.Total().Seconds(), plain.Phases.Total().Seconds())
	}
	// Scale-out restored: 8 machines beat 4 with sharing on.
	shared8 := shared
	shared8.Machines = 8
	fixed8 := mustRun(t, shared8)
	if fixed8.Phases.Total() >= fixed.Phases.Total() {
		t.Fatalf("with sharing, skewed joins should scale out: %v @4 vs %v @8",
			fixed.Phases.Total(), fixed8.Phases.Total())
	}
	// Less traffic too: the hot outer partition no longer moves.
	if fixed.RemoteMB >= plain.RemoteMB {
		t.Fatalf("sharing should reduce traffic: %.0f vs %.0f MB", fixed.RemoteMB, plain.RemoteMB)
	}
	// Uniform workloads are unaffected.
	uni := base
	uni.Skew = 0
	uniShared := uni
	uniShared.BroadcastFactor = 4
	a, b := mustRun(t, uni), mustRun(t, uniShared)
	if a.Phases.Total() != b.Phases.Total() {
		t.Fatalf("uniform workload must not change: %v vs %v", a.Phases.Total(), b.Phases.Total())
	}
}

// TestNetSchedSim validates the communication-scheduling model at rack
// scale (16–64 machines, FDR): scheduled runs bound the per-link ingress
// queueing delay at one pairing round, cost nothing without receiver-side
// congestion, and win once switch contention is modeled — the effect
// Section 3's cross-traffic measurements motivate.
func TestNetSchedSim(t *testing.T) {
	base := Config{
		Machines: 16, Cores: 8, Net: model.FDR(),
		RTuples: 2048 << 20, STuples: 2048 << 20,
		Skew: 1.05, SizeSortedAssignment: true, SkewSplit: true,
		SwitchContention: 0.03,
	}
	for _, nm := range []int{16, 32, 64} {
		cfg := base
		cfg.Machines = nm
		off := mustRun(t, cfg)
		cfg.NetSched = netsched.Weighted
		wgt := mustRun(t, cfg)
		cfg.NetSched = netsched.Rotate
		rot := mustRun(t, cfg)

		offNet := off.Phases.NetworkPartition.Seconds()
		wgtNet := wgt.Phases.NetworkPartition.Seconds()
		if wgtNet > offNet {
			t.Errorf("@%d machines: weighted network pass %.3fs slower than unscheduled %.3fs", nm, wgtNet, offNet)
		}
		if rotNet := rot.Phases.NetworkPartition.Seconds(); rotNet > offNet {
			t.Errorf("@%d machines: rotate network pass %.3fs slower than unscheduled %.3fs", nm, rotNet, offNet)
		}
		if wgt.MaxLinkQueueSec >= off.MaxLinkQueueSec {
			t.Errorf("@%d machines: weighted max queue %.4fs not below unscheduled %.4fs",
				nm, wgt.MaxLinkQueueSec, off.MaxLinkQueueSec)
		}
		if wgt.RemoteMB != off.RemoteMB {
			t.Errorf("@%d machines: scheduling changed shipped volume: %.1f vs %.1f MB", nm, wgt.RemoteMB, off.RemoteMB)
		}
	}

	// Without modeled contention, the pairing discipline must cost
	// (essentially) nothing: parking keeps every link work-conserving.
	cfg := base
	cfg.SwitchContention = 0
	off := mustRun(t, cfg)
	cfg.NetSched = netsched.Weighted
	wgt := mustRun(t, cfg)
	offNet := off.Phases.NetworkPartition.Seconds()
	wgtNet := wgt.Phases.NetworkPartition.Seconds()
	if wgtNet > 1.01*offNet {
		t.Errorf("uncongested: weighted network pass %.3fs, unscheduled %.3fs — scheduling must be free", wgtNet, offNet)
	}
	if wgt.MaxLinkQueueSec >= off.MaxLinkQueueSec {
		t.Errorf("uncongested: weighted max queue %.4fs not below unscheduled %.4fs",
			wgt.MaxLinkQueueSec, off.MaxLinkQueueSec)
	}
}
